// One strict command-line option parser shared by every bench binary
// (the unified runner and the per-figure shims). Replaces the ad-hoc
// strtoul loops that silently parsed "abc" as 0: unknown options,
// missing values, and malformed or out-of-range numerics are all hard
// errors with a usage line.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mpciot::bench_core {

/// Strict decimal parse of a full token into an unsigned integer.
/// Rejects empty strings, signs, trailing garbage ("12abc"), and values
/// above `max`.
bool parse_u64(const std::string& text, std::uint64_t* out,
               std::uint64_t max = UINT64_MAX);
bool parse_u32(const std::string& text, std::uint32_t* out);

class OptionParser {
 public:
  /// `summary` is a one-line description printed atop the usage text.
  explicit OptionParser(std::string summary);

  /// All add_* calls borrow `out`; it must outlive parse().
  void add_flag(const std::string& name, bool* out, const std::string& help);
  void add_u32(const std::string& name, std::uint32_t* out,
               const std::string& help);
  void add_u64(const std::string& name, std::uint64_t* out,
               const std::string& help);
  void add_string(const std::string& name, std::string* out,
                  const std::string& help);
  /// Repeatable "key=value" option (e.g. --param max_ntx=12).
  void add_key_value_list(const std::string& name,
                          std::vector<std::pair<std::string, std::string>>* out,
                          const std::string& help);

  /// Returns true when every argv token was consumed; on failure,
  /// error() describes the first offending token.
  bool parse(int argc, char** argv);

  const std::string& error() const { return error_; }
  std::string usage(const char* argv0) const;

 private:
  enum class Type { kFlag, kU32, kU64, kString, kKeyValueList };
  struct Option {
    std::string name;
    Type type;
    void* out;
    std::string help;
  };

  const Option* find(const std::string& name) const;

  std::string summary_;
  std::vector<Option> options_;
  std::string error_;
};

}  // namespace mpciot::bench_core
