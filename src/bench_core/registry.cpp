#include "bench_core/registry.hpp"

#include "bench_core/options.hpp"
#include "common/assert.hpp"

namespace mpciot::bench_core {

std::uint32_t ScenarioContext::param_u32(const std::string& key,
                                         std::uint32_t def) const {
  for (const auto& [k, v] : params) {
    if (k == key) {
      std::uint32_t out = 0;
      MPCIOT_REQUIRE(parse_u32(v, &out),
                     "ScenarioContext: param '" + key + "' has malformed "
                     "value '" + v + "' (CLI validation bypassed)");
      return out;
    }
  }
  return def;
}

void Registry::add(ScenarioSpec spec) {
  MPCIOT_REQUIRE(!spec.name.empty(), "Registry: scenario name empty");
  MPCIOT_REQUIRE(static_cast<bool>(spec.run),
                 "Registry: scenario has no run function");
  MPCIOT_REQUIRE(find(spec.name) == nullptr,
                 "Registry: duplicate scenario name " + spec.name);
  scenarios_.push_back(std::move(spec));
}

const ScenarioSpec* Registry::find(const std::string& name) const {
  for (const ScenarioSpec& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const ScenarioSpec*> Registry::match(
    const std::string& filter) const {
  std::vector<const ScenarioSpec*> out;
  for (const ScenarioSpec& s : scenarios_) {
    if (filter.empty() || s.name.find(filter) != std::string::npos) {
      out.push_back(&s);
    }
  }
  return out;
}

}  // namespace mpciot::bench_core
