#include "bench_core/runner.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>

#include "metrics/experiment.hpp"
#include "metrics/table.hpp"

namespace mpciot::bench_core {

std::vector<ScenarioRun> run_scenarios(
    const std::vector<const ScenarioSpec*>& scenarios,
    const ScenarioContext& ctx, std::ostream* progress) {
  std::vector<ScenarioRun> runs;
  runs.reserve(scenarios.size());
  for (const ScenarioSpec* spec : scenarios) {
    ScenarioContext resolved = ctx;
    if (resolved.reps == 0) resolved.reps = spec->default_reps;
    const auto start = std::chrono::steady_clock::now();
    ScenarioRun run;
    run.spec = spec;
    run.rows = spec->run(resolved);
    const auto end = std::chrono::steady_clock::now();
    run.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (progress) {
      // Peak RSS rides on the progress stream (stderr), never in the
      // deterministic result document: it is a process-wide high-water
      // mark that depends on host allocator behavior and job count.
      *progress << spec->name << ": " << run.rows.size() << " rows, reps="
                << resolved.reps << ", wall " << run.wall_ms << " ms"
                << ", peak_rss_mb "
                << metrics::peak_rss_bytes() / (1024.0 * 1024.0) << "\n";
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

JsonValue results_to_json(const std::vector<ScenarioRun>& runs,
                          std::uint32_t reps, std::uint64_t seed) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "mpciot-bench/1");
  doc.set("seed", seed);
  if (reps == 0) {
    doc.set("reps", "scenario-default");
  } else {
    doc.set("reps", reps);
  }
  JsonValue scenarios = JsonValue::array();
  for (const ScenarioRun& run : runs) {
    JsonValue s = JsonValue::object();
    s.set("name", run.spec->name);
    s.set("description", run.spec->description);
    s.set("deterministic", run.spec->deterministic);
    JsonValue rows = JsonValue::array();
    for (const Row& row : run.rows) rows.push_back(row.json());
    s.set("rows", std::move(rows));
    scenarios.push_back(std::move(s));
  }
  doc.set("scenarios", std::move(scenarios));
  return doc;
}

std::string cell_to_text(const JsonValue& v) {
  if (v.kind() == JsonValue::Kind::kString) return v.as_string();
  return v.dump_string();
}

namespace {

/// Column set of a scenario: the union of every row's cells in
/// first-seen order, so rows with extra columns (e.g. chain_scaling's
/// sim_grid rows) don't lose data to the first row's key set.
std::vector<std::string> collect_headers(const Rows& rows) {
  std::vector<std::string> headers;
  for (const Row& row : rows) {
    for (const auto& [key, value] : row.json().as_object()) {
      (void)value;
      if (std::find(headers.begin(), headers.end(), key) == headers.end()) {
        headers.push_back(key);
      }
    }
  }
  return headers;
}

void write_csv(const std::vector<ScenarioRun>& runs, std::ostream& os) {
  for (const ScenarioRun& run : runs) {
    os << "# scenario " << run.spec->name << '\n';
    if (run.rows.empty()) continue;
    const std::vector<std::string> headers = collect_headers(run.rows);
    metrics::Table table(headers);
    for (const Row& row : run.rows) {
      std::vector<std::string> cells;
      cells.reserve(headers.size());
      for (const std::string& h : headers) {
        const JsonValue* v = row.json().find(h);
        cells.push_back(v ? cell_to_text(*v) : "");
      }
      table.add_row(std::move(cells));
    }
    table.print_csv(os);
  }
}

}  // namespace

bool write_output_file(const std::string& path,
                       const std::vector<ScenarioRun>& runs,
                       std::uint32_t reps, std::uint64_t seed,
                       std::string* error) {
  const bool json = path.ends_with(".json");
  const bool csv = path.ends_with(".csv");
  if (!json && !csv) {
    *error = "--out path must end in .json or .csv: " + path;
    return false;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    *error = "cannot open '" + path + "' for writing";
    return false;
  }
  if (json) {
    const JsonValue doc = results_to_json(runs, reps, seed);
    doc.dump(out, /*indent=*/2);
    out << '\n';
  } else {
    write_csv(runs, out);
  }
  out.flush();  // surface buffered write errors (ENOSPC) before the check
  if (!out.good()) {
    *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

void print_results(const std::vector<ScenarioRun>& runs, std::ostream& os,
                   bool csv) {
  for (const ScenarioRun& run : runs) {
    os << "== " << run.spec->name << " — " << run.spec->description
       << " ==\n";
    if (run.rows.empty()) {
      os << "(no rows)\n\n";
      continue;
    }
    const std::vector<std::string> headers = collect_headers(run.rows);
    metrics::Table table(headers);
    for (const Row& row : run.rows) {
      std::vector<std::string> cells;
      cells.reserve(headers.size());
      for (const std::string& h : headers) {
        const JsonValue* v = row.json().find(h);
        cells.push_back(v ? cell_to_text(*v) : "");
      }
      table.add_row(std::move(cells));
    }
    table.print(os);
    if (csv) {
      os << "-- CSV --\n";
      table.print_csv(os);
    }
    os << "\n";
  }
}

}  // namespace mpciot::bench_core
