// Drives registered scenarios and renders their rows: a machine-read-
// able JSON document (the BENCH_*.json format CI archives) and/or
// aligned human tables.
//
// The JSON document deliberately contains no wall-clock times and no
// job count — only seed-determined simulation results — so the same
// (scenario set, reps, seed) produces byte-identical files for any
// --jobs value. Wall-clock per scenario goes to the progress stream.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bench_core/registry.hpp"

namespace mpciot::bench_core {

struct ScenarioRun {
  const ScenarioSpec* spec = nullptr;
  Rows rows;
  double wall_ms = 0.0;  // progress reporting only; never serialized
};

/// Run each scenario serially (trial-level parallelism happens inside a
/// scenario via ctx.jobs). `progress`, when non-null, receives one line
/// per scenario with its wall-clock time.
std::vector<ScenarioRun> run_scenarios(
    const std::vector<const ScenarioSpec*>& scenarios,
    const ScenarioContext& ctx, std::ostream* progress);

/// Assemble the "mpciot-bench/1" document. `reps` 0 means "per-scenario
/// default" and is recorded as such.
JsonValue results_to_json(const std::vector<ScenarioRun>& runs,
                          std::uint32_t reps, std::uint64_t seed);

/// Pretty tables, one per scenario; column order follows the first
/// row's cell order. `csv` additionally emits a CSV copy per table.
void print_results(const std::vector<ScenarioRun>& runs, std::ostream& os,
                   bool csv);

/// Render one JSON cell for a table: numbers via the deterministic JSON
/// number formatter, strings unquoted.
std::string cell_to_text(const JsonValue& v);

/// Write results straight to `path` so CI needs no shell redirection:
/// ".json" gets the "mpciot-bench/1" document, ".csv" one CSV table per
/// scenario (prefixed by a "# scenario <name>" comment line). Returns
/// false and fills `*error` on an unsupported extension, an unwritable
/// path, or a failed write.
bool write_output_file(const std::string& path,
                       const std::vector<ScenarioRun>& runs,
                       std::uint32_t reps, std::uint64_t seed,
                       std::string* error);

}  // namespace mpciot::bench_core
