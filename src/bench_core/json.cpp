#include "bench_core/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace mpciot::bench_core {

namespace {

/// Shortest representation that parses back to the same double
/// (std::to_chars general form), with "-0" normalized and non-finite
/// values mapped to null per RFC 8259.
void append_double(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_number(const JsonValue& v, std::string& out) {
  char buf[32];
  switch (v.kind()) {
    case JsonValue::Kind::kInt: {
      const auto res = std::to_chars(buf, buf + sizeof(buf), v.as_int());
      out.append(buf, res.ptr);
      break;
    }
    case JsonValue::Kind::kUint: {
      const auto res = std::to_chars(buf, buf + sizeof(buf), v.as_uint());
      out.append(buf, res.ptr);
      break;
    }
    default:
      append_double(v.as_double(), out);
      break;
  }
}

}  // namespace

double JsonValue::as_double() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kDouble:
      return double_;
    default:
      return 0.0;
  }
}

void JsonValue::push_back(JsonValue v) {
  MPCIOT_REQUIRE(kind_ == Kind::kArray, "JsonValue: push_back on non-array");
  array_.push_back(std::move(v));
}

void JsonValue::set(std::string_view key, JsonValue v) {
  MPCIOT_REQUIRE(kind_ == Kind::kObject, "JsonValue: set on non-object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::string(key), std::move(v));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void escape_json_string(std::string_view s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched.
        }
        break;
    }
  }
  out += '"';
}

void JsonValue::dump_impl(std::ostream& os, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent > 0) {
      os << '\n';
      for (int i = 0; i < indent * d; ++i) os << ' ';
    }
  };
  std::string scratch;
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
    case Kind::kUint:
    case Kind::kDouble:
      append_number(*this, scratch);
      os << scratch;
      break;
    case Kind::kString:
      escape_json_string(string_, scratch);
      os << scratch;
      break;
    case Kind::kArray:
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) os << ',';
        newline_pad(depth + 1);
        array_[i].dump_impl(os, indent, depth + 1);
      }
      if (!array_.empty()) newline_pad(depth);
      os << ']';
      break;
    case Kind::kObject:
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) os << ',';
        newline_pad(depth + 1);
        scratch.clear();
        escape_json_string(object_[i].first, scratch);
        os << scratch << (indent > 0 ? ": " : ":");
        object_[i].second.dump_impl(os, indent, depth + 1);
      }
      if (!object_.empty()) newline_pad(depth);
      os << '}';
      break;
  }
}

void JsonValue::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string JsonValue::dump_string(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.is_number() && b.is_number()) {
    return a.as_double() == b.as_double();
  }
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case JsonValue::Kind::kNull:
      return true;
    case JsonValue::Kind::kBool:
      return a.bool_ == b.bool_;
    case JsonValue::Kind::kString:
      return a.string_ == b.string_;
    case JsonValue::Kind::kArray:
      return a.array_ == b.array_;
    case JsonValue::Kind::kObject:
      return a.object_ == b.object_;
    default:
      return false;  // number kinds handled above
  }
}

namespace {

/// Recursive-descent parser over a string_view cursor. Nesting is
/// capped: the parser recurses once per container level, so an
/// adversarial "[[[[..." document would otherwise overflow the stack
/// long before exhausting memory.
constexpr int kMaxParseDepth = 192;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse_document() {
    skip_ws();
    std::optional<JsonValue> v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

  const std::string& error() const { return error_; }

 private:
  void fail(const char* msg) {
    if (error_.empty()) {
      error_ = msg;
      error_ += " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{' || c == '[') {
      if (depth_ >= kMaxParseDepth) {
        fail("nesting too deep");
        return std::nullopt;
      }
    }
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      std::optional<std::string> s = parse_string();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (consume_literal("null")) return JsonValue();
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    return parse_number();
  }

  std::optional<JsonValue> parse_object() {
    ++depth_;
    std::optional<JsonValue> v = parse_object_body();
    --depth_;
    return v;
  }

  std::optional<JsonValue> parse_object_body() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (consume('}')) return obj;
    for (;;) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' in object");
        return std::nullopt;
      }
      skip_ws();
      std::optional<JsonValue> v = parse_value();
      if (!v) return std::nullopt;
      obj.set(*key, std::move(*v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return obj;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_array() {
    ++depth_;
    std::optional<JsonValue> v = parse_array_body();
    --depth_;
    return v;
  }

  std::optional<JsonValue> parse_array_body() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (consume(']')) return arr;
    for (;;) {
      skip_ws();
      std::optional<JsonValue> v = parse_value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return arr;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          const auto res = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc() || res.ptr != text_.data() + pos_ + 4) {
            fail("bad \\u escape");
            return std::nullopt;
          }
          pos_ += 4;
          // The writer only emits \u00XX for control bytes; decode the
          // BMP code point as UTF-8 so round-trips are faithful.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_integer = true;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E') {
        is_integer = false;
      }
      ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") {
      fail("expected value");
      return std::nullopt;
    }
    if (is_integer) {
      if (tok[0] == '-') {
        std::int64_t v = 0;
        const auto res =
            std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
          return JsonValue(v);
        }
      } else {
        std::uint64_t v = 0;
        const auto res =
            std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
          return JsonValue(v);
        }
      }
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      fail("malformed number");
      return std::nullopt;
    }
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  Parser p(text);
  std::optional<JsonValue> v = p.parse_document();
  if (!v && error) *error = p.error();
  return v;
}

}  // namespace mpciot::bench_core
