// Scenario registry for the unified benchmark runner.
//
// A scenario is a named, parameterized experiment that returns its
// results as data (rows of key->JSON-value pairs) instead of printing
// them. The runner turns rows into the BENCH JSON document and/or a
// human table; the legacy per-figure binaries are thin shims that run a
// single scenario through the same path.
//
// Registration is explicit (bench/scenarios/ exposes
// register_all_scenarios) rather than via static initializers, so
// scenarios linked from a static library cannot be silently dropped by
// the linker.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_core/json.hpp"

namespace mpciot::bench_core {

/// One result row: an insertion-ordered set of named cells. The cell
/// order of the first row defines the column order of printed tables.
class Row {
 public:
  Row& set(std::string_view key, JsonValue v) {
    value_.set(key, std::move(v));
    return *this;
  }

  const JsonValue& json() const { return value_; }

 private:
  JsonValue value_ = JsonValue::object();
};

using Rows = std::vector<Row>;

/// Everything a scenario needs to run. `reps`/`seed`/`jobs` come from
/// the CLI; `params` carries scenario-specific overrides (--param k=v).
struct ScenarioContext {
  std::uint32_t reps = 0;
  std::uint64_t seed = 1;
  /// Worker threads for trial-level parallelism (ExperimentSpec::jobs):
  /// 1 = serial, 0 = hardware concurrency. Scenarios must stay
  /// jobs-invariant: same rows for any value.
  unsigned jobs = 1;
  std::vector<std::pair<std::string, std::string>> params;

  /// Typed param lookup with default. A present-but-malformed value is
  /// a contract violation: the CLI validates params up front, so a bad
  /// value reaching here means a caller bypassed that validation.
  std::uint32_t param_u32(const std::string& key, std::uint32_t def) const;
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  /// Used when the CLI does not override --reps.
  std::uint32_t default_reps = 10;
  /// False for wall-clock benches (e.g. he_vs_mpc) whose rows differ
  /// run to run; the determinism CI check skips those.
  bool deterministic = true;
  /// Names of the --param keys this scenario reads (all u32-valued).
  /// The CLI rejects keys no selected scenario declares, so typos
  /// cannot silently fall back to defaults.
  std::vector<std::string> param_names;
  std::function<Rows(const ScenarioContext&)> run;
};

class Registry {
 public:
  /// Rejects duplicate names (contract violation).
  void add(ScenarioSpec spec);

  const std::vector<ScenarioSpec>& all() const { return scenarios_; }
  const ScenarioSpec* find(const std::string& name) const;
  /// Case-sensitive substring match on the scenario name; empty filter
  /// matches everything. Order of registration is preserved.
  std::vector<const ScenarioSpec*> match(const std::string& filter) const;

 private:
  std::vector<ScenarioSpec> scenarios_;
};

}  // namespace mpciot::bench_core
