#include "bench_core/options.hpp"

#include <charconv>
#include <sstream>

namespace mpciot::bench_core {

bool parse_u64(const std::string& text, std::uint64_t* out,
               std::uint64_t max) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto res = std::from_chars(begin, end, value);
  if (res.ec != std::errc() || res.ptr != end) return false;
  if (value > max) return false;
  *out = value;
  return true;
}

bool parse_u32(const std::string& text, std::uint32_t* out) {
  std::uint64_t wide = 0;
  if (!parse_u64(text, &wide, UINT32_MAX)) return false;
  *out = static_cast<std::uint32_t>(wide);
  return true;
}

OptionParser::OptionParser(std::string summary)
    : summary_(std::move(summary)) {}

void OptionParser::add_flag(const std::string& name, bool* out,
                            const std::string& help) {
  options_.push_back(Option{name, Type::kFlag, out, help});
}

void OptionParser::add_u32(const std::string& name, std::uint32_t* out,
                           const std::string& help) {
  options_.push_back(Option{name, Type::kU32, out, help});
}

void OptionParser::add_u64(const std::string& name, std::uint64_t* out,
                           const std::string& help) {
  options_.push_back(Option{name, Type::kU64, out, help});
}

void OptionParser::add_string(const std::string& name, std::string* out,
                              const std::string& help) {
  options_.push_back(Option{name, Type::kString, out, help});
}

void OptionParser::add_key_value_list(
    const std::string& name,
    std::vector<std::pair<std::string, std::string>>* out,
    const std::string& help) {
  options_.push_back(Option{name, Type::kKeyValueList, out, help});
}

const OptionParser::Option* OptionParser::find(const std::string& name) const {
  for (const Option& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

bool OptionParser::parse(int argc, char** argv) {
  error_.clear();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const Option* opt = find(arg);
    if (!opt) {
      error_ = "unknown option '" + arg + "'";
      return false;
    }
    if (opt->type == Type::kFlag) {
      *static_cast<bool*>(opt->out) = true;
      continue;
    }
    if (i + 1 >= argc) {
      error_ = "option '" + arg + "' needs a value";
      return false;
    }
    const std::string value = argv[++i];
    switch (opt->type) {
      case Type::kU32:
        if (!parse_u32(value, static_cast<std::uint32_t*>(opt->out))) {
          error_ = "option '" + arg + "' needs an unsigned 32-bit decimal, " +
                   "got '" + value + "'";
          return false;
        }
        break;
      case Type::kU64:
        if (!parse_u64(value, static_cast<std::uint64_t*>(opt->out))) {
          error_ = "option '" + arg + "' needs an unsigned 64-bit decimal, " +
                   "got '" + value + "'";
          return false;
        }
        break;
      case Type::kString:
        *static_cast<std::string*>(opt->out) = value;
        break;
      case Type::kKeyValueList: {
        const std::size_t eq = value.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
          error_ = "option '" + arg + "' needs key=value, got '" + value + "'";
          return false;
        }
        auto* list = static_cast<
            std::vector<std::pair<std::string, std::string>>*>(opt->out);
        list->emplace_back(value.substr(0, eq), value.substr(eq + 1));
        break;
      }
      case Type::kFlag:
        break;  // handled above
    }
  }
  return true;
}

std::string OptionParser::usage(const char* argv0) const {
  std::ostringstream os;
  os << summary_ << "\nusage: " << argv0;
  for (const Option& opt : options_) {
    os << " [" << opt.name;
    switch (opt.type) {
      case Type::kFlag:
        break;
      case Type::kU32:
      case Type::kU64:
        os << " N";
        break;
      case Type::kString:
        os << " S";
        break;
      case Type::kKeyValueList:
        os << " k=v";
        break;
    }
    os << "]";
  }
  os << "\n";
  for (const Option& opt : options_) {
    os << "  " << opt.name << "  " << opt.help << "\n";
  }
  return os.str();
}

}  // namespace mpciot::bench_core
