// Minimal JSON document model for the benchmark runner: enough to emit
// the BENCH_*.json result files deterministically (insertion-ordered
// object keys, shortest-round-trip number formatting, full string
// escaping) plus a small parser so tests can round-trip what the writer
// produced. Not a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mpciot::bench_core {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Insertion-ordered: emission order is the order keys were set, so
  /// output bytes never depend on hashing or locale.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(unsigned v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }

  bool as_bool() const { return bool_; }
  /// Numeric value widened to double (valid for any number kind).
  double as_double() const;
  std::int64_t as_int() const { return int_; }
  std::uint64_t as_uint() const { return uint_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }

  /// Array append (value must be an array).
  void push_back(JsonValue v);
  /// Object set: overwrites an existing key in place, appends otherwise
  /// (value must be an object).
  void set(std::string_view key, JsonValue v);
  /// Object lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Serialize. `indent` = 0 emits compact single-line JSON; > 0 emits
  /// pretty-printed output with that many spaces per level. Output is a
  /// pure function of the value tree (deterministic across platforms).
  void dump(std::ostream& os, int indent = 0) const;
  std::string dump_string(int indent = 0) const;

  /// Structural equality; numbers compare by widened double value.
  friend bool operator==(const JsonValue& a, const JsonValue& b);

 private:
  void dump_impl(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Append the JSON string-literal encoding of `s` (quotes included,
/// control characters as \uXXXX) to `out`.
void escape_json_string(std::string_view s, std::string& out);

/// Parse a complete JSON document. Returns nullopt on malformed input,
/// trailing garbage, or container nesting deeper than an internal cap
/// (the parser recurses once per level; the cap turns adversarial
/// "[[[[..." documents into a clean error instead of a stack overflow).
/// When `error` is non-null, stores a short description of the first
/// problem.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace mpciot::bench_core
