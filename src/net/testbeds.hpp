// Synthetic stand-ins for the two public testbeds the paper evaluates on.
//
// We cannot use the real FlockLab / DCube deployments (physical
// infrastructure), so we generate layouts that match their published
// macro characteristics — node count, indoor office scale, multi-hop
// diameter class — which are the properties CT-protocol performance
// actually depends on. See DESIGN.md "Substitutions".
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/topology.hpp"

namespace mpciot::net::testbeds {

/// Retry scaffold shared by every generator: calls `build(attempt)` for
/// attempt in [0, max_attempts), skipping candidates whose construction
/// throws (a partitioned placement fails the Topology connectivity
/// contract) and candidates rejected by `accept` (when provided).
/// Throws ContractViolation tagged `what` once attempts are exhausted.
Topology retry_topology(const char* what, std::uint64_t max_attempts,
                        const std::function<Topology(std::uint64_t)>& build,
                        const std::function<bool(const Topology&)>& accept = {});

/// FlockLab-like: 26 nodes over an office floor (~70 m x 35 m),
/// irregular placement, 3-4 good-link hops across.
Topology flocklab(std::uint64_t seed = 0xF10C'1AB0ull);

/// DCube-like: 45 nodes over a denser multi-room floor (~55 m x 45 m),
/// ~4 good-link hops across.
Topology dcube(std::uint64_t seed = 0xDC0B'E000ull);

/// Parametric generators used by tests and scaling benches. All
/// generators retry placement seeds until the topology is connected.
Topology grid(std::uint32_t rows, std::uint32_t cols, double spacing_m,
              std::uint64_t seed, RadioParams radio = {},
              TopologyOptions options = {});
Topology random_uniform(std::uint32_t count, double width_m, double height_m,
                        std::uint64_t seed, RadioParams radio = {});
Topology line(std::uint32_t count, double spacing_m, std::uint64_t seed,
              RadioParams radio = {});

}  // namespace mpciot::net::testbeds
