// Per-node radio-on-time and energy accounting.
//
// "Radio-on time" is the paper's second metric: the total time a node's
// radio spends in RX or TX during a round. The meter also converts to
// charge (mC) with the nRF52840 current figures so reports can show
// battery impact.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "net/radio_model.hpp"

namespace mpciot::net {

class EnergyMeter {
 public:
  EnergyMeter(std::size_t node_count, const RadioParams& radio)
      : radio_(radio), rx_us_(node_count, 0), tx_us_(node_count, 0) {}

  void add_rx(NodeId node, SimTime duration_us) {
    rx_us_[node] += duration_us;
  }
  void add_tx(NodeId node, SimTime duration_us) {
    tx_us_[node] += duration_us;
  }

  SimTime radio_on_us(NodeId node) const { return rx_us_[node] + tx_us_[node]; }
  SimTime rx_us(NodeId node) const { return rx_us_[node]; }
  SimTime tx_us(NodeId node) const { return tx_us_[node]; }

  /// Sum over all nodes.
  SimTime total_radio_on_us() const;
  /// Largest per-node radio-on time (the paper's per-round figure).
  SimTime max_radio_on_us() const;
  /// Mean per-node radio-on time.
  double mean_radio_on_us() const;

  /// Charge consumed by `node` in millicoulombs.
  double charge_mc(NodeId node) const {
    return (static_cast<double>(rx_us_[node]) * radio_.rx_current_ma +
            static_cast<double>(tx_us_[node]) * radio_.tx_current_ma) /
           1e6;
  }

  std::size_t node_count() const { return rx_us_.size(); }

  /// Merge another meter (e.g. accumulate phases of a protocol round).
  void merge(const EnergyMeter& other);

 private:
  RadioParams radio_;
  std::vector<SimTime> rx_us_;
  std::vector<SimTime> tx_us_;
};

}  // namespace mpciot::net
