// Time-varying channel and membership seams for the network layer.
//
// The frozen link tables a `Topology` draws at construction are the
// degenerate *static* channel: every PRR holds for the whole experiment.
// Real testbed links burst and drift, and real nodes crash and recover
// mid-round. Two small interfaces let the engines consume both without
// binding the net layer to any particular model:
//
//  * `ChannelModel` — a deterministic epoch-indexed rewrite of the link
//    tables. Concrete models (e.g. the Gilbert–Elliott engine in
//    sim::dynamics) advance per-link state epoch by epoch; a null model
//    means "the frozen snapshot, forever".
//  * `LivenessModel` — a node-level crash/recover schedule queried at a
//    simulated time. A down node's radio is silent: it neither transmits
//    nor receives, and is charged no radio-on time while down.
//
// Model instances are const and thread-safe; all evolving per-round
// state lives in a `ChannelView`, the per-round cursor the CT hot path
// reads. The view caches one epoch's materialized tables (receiver-major
// PRR rows + audibility bitmaps, mirroring Topology's layout) and
// re-materializes only when the epoch advances, so the bitmap hot loop
// keeps its contiguous-row reads regardless of the model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/topology.hpp"

namespace mpciot::net {

/// Materialized link tables for one dynamics epoch, plus the opaque
/// model state the epoch chain is walked with. Owned by a ChannelView
/// (one per concurrent round), never by the shared model instance.
struct LinkEpochTables {
  static constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};

  /// Epoch the tables currently describe; kNoEpoch before the first
  /// materialization.
  std::uint64_t epoch = kNoEpoch;
  std::vector<double> prr;               // [tx * n + rx]
  std::vector<double> prr_in;            // [rx * n + tx], transposed
  std::vector<std::uint64_t> rx_words;   // audibility bitmaps, like Topology
  /// Sparse-tier epoch payloads, aligned with the topology's stored-link
  /// orders (out_prr: link_index order; in_prr: the in_prr_data order
  /// the audibility word runs index). The word runs themselves stay the
  /// topology's frozen lists: a stored link whose epoch PRR decays to 0
  /// keeps its audibility bit and contributes p = 0, and dynamics never
  /// resurrect a link the sparse build culled (see ARCHITECTURE.md).
  std::vector<double> out_prr;
  std::vector<double> in_prr;
  /// Model scratch (e.g. per-link burst state / drift / stream keys):
  /// layout is the model's business, persistence across epochs is the
  /// view's.
  std::vector<std::uint64_t> state_bits;
  std::vector<std::uint64_t> state_keys;
  std::vector<double> state_reals;
};

/// Deterministic time-varying channel: link tables indexed by epoch.
class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// Dynamics advance granularity (> 0). Time t falls in epoch
  /// t / epoch_us(); negative times clamp to epoch 0.
  virtual SimTime epoch_us() const = 0;

  /// Fill `tables` for `epoch` over `topo`'s link set. Called with
  /// non-decreasing epochs on any given tables instance; the model may
  /// keep chain state in tables.state_* and must produce the same
  /// tables for the same (topo, epoch) regardless of which epochs were
  /// materialized before (callers rely on this for jobs-invariance).
  virtual void materialize(const Topology& topo, std::uint64_t epoch,
                           LinkEpochTables& tables) const = 0;
};

/// Node crash/recover schedule. Deterministic and thread-safe.
class LivenessModel {
 public:
  virtual ~LivenessModel() = default;

  /// True while `node`'s radio is dead at simulated time `t`.
  virtual bool is_down(NodeId node, SimTime t) const = 0;
};

/// Per-round cursor over the (possibly time-varying) channel. Bind it to
/// a topology + model, seek() it forward as the round's clock advances,
/// and read the same row accessors the static Topology exposes. With a
/// null model every accessor aliases the topology's frozen tables —
/// zero copies, zero branches in the row reads.
class ChannelView {
 public:
  ChannelView() = default;

  /// (Re)bind to a topology and model. Rebinding the same (topology,
  /// model) pair keeps the walked chain state, so sequential rounds of
  /// a trial sharing one view (e.g. via a reused RoundContext) continue
  /// the epoch walk instead of replaying it; any other binding resets
  /// the cursor (table capacity is kept either way).
  void bind(const Topology& topo, const ChannelModel* model);

  /// Advance to the epoch containing time `t`, re-materializing the
  /// cached tables when the epoch changed. Forward seeks continue the
  /// epoch walk; a backwards seek (legal right after a rebind, e.g. a
  /// round booked earlier on a less-loaded channel) restarts the walk
  /// from epoch 0 — identical tables, re-walk cost only, since epoch
  /// state is a pure function of (model seed, epoch, link).
  void seek(SimTime t);

  bool dynamic() const { return model_ != nullptr; }

  /// True when the bound topology stores the sparse tier: row accessors
  /// (prr_into / audible_words) are unavailable — iterate
  /// audible_entries + in_prr instead.
  bool sparse() const { return sparse_; }

  /// Receiver-major PRR row at the current epoch (see Topology). Dense
  /// bindings only.
  const double* prr_into(NodeId r) const { return prr_in_base_ + r * n_; }
  /// Inbound audibility bitmap row at the current epoch (see Topology).
  /// Dense bindings only.
  const std::uint64_t* audible_words(NodeId r) const {
    return rx_words_base_ + r * words_;
  }
  /// Sparse bindings: the topology's frozen audibility word runs (their
  /// prr_off fields index in_prr()).
  std::span<const AudWord> audible_entries(NodeId r) const {
    return topo_->audible_entries(r);
  }
  /// Sparse bindings: inbound PRR payloads at the current epoch, in the
  /// order the audibility word runs index.
  const double* in_prr() const { return in_prr_base_; }
  /// PRR a -> b at the current epoch.
  double prr(NodeId a, NodeId b) const {
    if (!sparse_) return prr_base_[a * n_ + b];
    const std::size_t i = topo_->link_index(a, b);
    return i == Topology::kNoLink ? 0.0 : out_prr_base_[i];
  }

 private:
  /// Re-point the tier-appropriate base pointers at tables_.
  void point_at_tables();

  const Topology* topo_ = nullptr;
  const ChannelModel* model_ = nullptr;
  LinkEpochTables tables_;
  const double* prr_base_ = nullptr;
  const double* prr_in_base_ = nullptr;
  const std::uint64_t* rx_words_base_ = nullptr;
  const double* out_prr_base_ = nullptr;
  const double* in_prr_base_ = nullptr;
  bool sparse_ = false;
  std::size_t n_ = 0;
  std::size_t words_ = 0;
};

}  // namespace mpciot::net
