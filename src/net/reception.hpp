// Per-sub-slot reception arbitration: given the set of concurrent
// transmitters, decide for each listening node whether it decodes the
// packet.
//
// Three regimes, matching the CT literature (Glossy, survey by
// Zimmerling et al.):
//  * single transmitter     -> Bernoulli(static link PRR + fast fade)
//  * identical payloads (CT) -> constructive interference: the receiver
//    succeeds unless *all* incoming copies fail; correlation knob makes
//    the copies less-than-independent
//  * differing payloads     -> capture: the strongest signal must beat
//    the power sum of the rest by `capture_threshold_db`
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "crypto/prng.hpp"
#include "net/channel_model.hpp"
#include "net/topology.hpp"

namespace mpciot::net {

/// One concurrent transmission inside a sub-slot. `content_id` identifies
/// the payload bits; equal ids mean bit-identical packets (the CT case).
struct Transmission {
  NodeId sender = kInvalidNode;
  std::uint64_t content_id = 0;
};

struct ReceptionOutcome {
  bool received = false;
  NodeId from = kInvalidNode;       // decoded sender
  std::uint64_t content_id = 0;     // decoded payload id
};

class ReceptionModel {
 public:
  explicit ReceptionModel(const Topology& topo) : topo_(&topo) {}

  /// Arbitrate a sub-slot for `receiver`. `transmitters` must not contain
  /// the receiver itself (half-duplex radio). `view`, when non-null,
  /// supplies the current epoch's PRRs instead of the frozen tables
  /// (capture power ratios still use the frozen RSSI: bursts are modeled
  /// as loss, not as a change in who captures).
  ReceptionOutcome arbitrate(NodeId receiver,
                             const std::vector<Transmission>& transmitters,
                             crypto::Xoshiro256& rng,
                             const ChannelView* view = nullptr) const;

 private:
  const Topology* topo_;
};

}  // namespace mpciot::net
