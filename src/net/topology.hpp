// Network topology: node positions plus the derived static link table
// (RSSI with frozen shadowing, static PRR, connectivity graph, hop
// distances).
//
// The shadowing term is frozen per link at construction — the same
// assumption testbed people make when they speak of "the" PRR of a link —
// while fast fading is redrawn per packet by the reception model.
//
// Two storage tiers live behind one accessor surface (see
// docs/ARCHITECTURE.md "Memory model & scaling"):
//
//  * **dense leaf** (n <= kDenseMaxNodes, or forced): the historic
//    O(n^2) tables — full RSSI/PRR matrices, transposed PRR rows,
//    audibility bitmap rows and the all-pairs hop matrix. Hot-path
//    layout and every derived byte are unchanged from before the split.
//  * **sparse root** (above the threshold, or forced): only links with
//    non-zero PRR are stored — CSR outbound adjacency with per-link
//    PRR/RSSI payloads, per-receiver audibility *word-lists* (64-bit
//    word runs + an index into a flat inbound-PRR array) instead of
//    n^2/64-bit rows, and lazy BFS hop rows (forward and reverse,
//    cached per queried endpoint) instead of the n^2 hop matrix. At
//    n = 10^5 the dense tables would be ~320 GB; the sparse form is
//    O(n + links).
//
// Link draws are an orthogonal knob: the historic *sequential* stream
// draws one Box–Muller shadowing value per (a < b) pair in order (exact
// O(n^2) work, bit-identical to the dense seed for either storage), and
// the *keyed* generator derives an independent stream per pair from the
// pair's global ids and skips pairs beyond a conservative cull radius
// (the distance at which even a +5 sigma shadowing draw cannot lift the
// link above the audibility floor) — O(n) with a spatial hash, which is
// what makes 10^5..10^6-node topologies constructible at all.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "net/radio_model.hpp"

namespace mpciot::net {

class ChannelModel;

struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// Storage tier selection (kAuto: dense up to kDenseMaxNodes).
enum class TopologyStorage : std::uint8_t { kAuto, kDense, kSparse };

/// Shadowing-draw generator selection (kAuto: sequential up to
/// kDenseMaxNodes — the historic stream — keyed-and-culled above).
enum class LinkDraw : std::uint8_t { kAuto, kSequential, kKeyed };

struct TopologyOptions {
  TopologyStorage storage = TopologyStorage::kAuto;
  LinkDraw draw = LinkDraw::kAuto;
};

/// One 64-transmitter word of a receiver's inbound audibility bitmap
/// (sparse storage only). Bit b of `bits` set means transmitter
/// word*64+b is audible; its inbound PRR sits at
/// in_prr_data()[prr_off + popcount(bits & ((1 << b) - 1))]. Scanning a
/// receiver's word-list in order visits transmitters in ascending id
/// order — exactly the dense bitmap-row scan order, so CT arbitration
/// consumes identical float sequences and RNG draws on either tier.
struct AudWord {
  std::uint32_t word = 0;
  std::uint32_t prr_off = 0;
  std::uint64_t bits = 0;
};

class Topology {
 public:
  /// Auto threshold: topologies at or below this node count store dense
  /// tables (all pre-existing testbeds and scenarios are <= 1024, so
  /// their bytes are untouched by the two-tier split).
  static constexpr std::size_t kDenseMaxNodes = 2048;

  /// Keyed-draw cull bound: pairs whose deterministic path loss cannot
  /// reach the audibility floor even with a +kCullSigmas shadowing draw
  /// are never drawn. P(gauss > 5 sigma) ~ 3e-7 per pair — a handful of
  /// the weakest possible fringe links across millions of pairs.
  static constexpr double kCullSigmas = 5.0;

  /// Build a topology from node positions. `shadow_seed` freezes the
  /// per-link shadowing draw. Postcondition: the PRR graph (links with
  /// prr >= link_floor_prr) is connected — throws otherwise, because a
  /// partitioned testbed cannot run any of the protocols.
  ///
  /// `rx_noise_penalty_db` (optional, one entry per node) models nodes
  /// deployed in RF-noisy spots: their *receiver* sees the channel
  /// `penalty` dB worse while their transmissions are unaffected — link
  /// PRR becomes directional, as on real testbeds with local
  /// interference (e.g. DCube's JamLab generators).
  ///
  /// `options` selects the storage tier and draw generator; the
  /// defaults reproduce the historic behaviour bit for bit at historic
  /// sizes and switch to sparse/keyed above kDenseMaxNodes.
  Topology(std::vector<Position> positions, RadioParams radio,
           std::uint64_t shadow_seed,
           std::vector<double> rx_noise_penalty_db = {},
           TopologyOptions options = {});

  Topology(Topology&&) noexcept;
  Topology& operator=(Topology&&) noexcept;
  ~Topology();

  /// Build the subtopology induced by `members` (ascending, unique parent
  /// node ids): node i of the result is members[i], and every link keeps
  /// the parent's frozen RSSI/PRR — the same radios, restricted to
  /// in-group traffic (e.g. one group of a hierarchical round on its own
  /// channel). Derived tables (CSR adjacency, hop distances, center) are
  /// rebuilt for the subgraph. From a sparse parent this is
  /// O(members + links); the child picks its own tier by size, so leaf
  /// groups of a giant deployment come out dense (bit-identical hot
  /// paths) while intermediate slices stay sparse. Throws like the main
  /// constructor when the induced usable-link graph is not connected.
  static Topology induced(const Topology& parent,
                          const std::vector<NodeId>& members);

  std::size_t size() const { return positions_.size(); }
  const RadioParams& radio() const { return radio_; }
  const Position& position(NodeId n) const { return positions_[n]; }

  /// True when this topology stores the sparse tier (no dense rows; use
  /// the word-list / point-query / lazy-hop accessors).
  bool sparse() const { return sparse_; }

  double distance(NodeId a, NodeId b) const;

  /// Frozen received power on a -> b (symmetric shadowing). Sparse tier:
  /// -200 dBm for pairs with no stored link in either direction (the
  /// value dense tables hold for never-drawn pairs).
  double rssi(NodeId a, NodeId b) const;

  /// Static packet reception rate a -> b; 0 for a == b.
  double prr(NodeId a, NodeId b) const;

  /// Time-indexed PRR a -> b at simulated time `t` under `model`; the
  /// frozen snapshot is the degenerate static model (model == nullptr
  /// returns prr(a, b) for every t). One-shot convenience for tests and
  /// diagnostics — it walks the model's epoch chain from 0 on every
  /// call. Hot paths bind a ChannelView instead, which caches the
  /// current epoch's tables across an entire round.
  double prr_at(NodeId a, NodeId b, SimTime t,
                const ChannelModel* model = nullptr) const;

  /// Raw row-major static PRR table: prr(a, b) == prr_data()[a*size()+b].
  /// Backing store for ChannelView's static (null-model) binding.
  /// Dense tier only.
  const double* prr_data() const {
    MPCIOT_DCHECK(!sparse_, "Topology: prr_data is dense-only");
    return prr_.data();
  }

  /// Receiver-side noise penalty (dB) degrading node n's inbound links
  /// (see the constructor); 0 for quiet spots. Channel models re-apply
  /// it when they recompute PRR from drifted RSSI.
  double rx_noise_penalty_db(NodeId n) const { return rx_penalty_[n]; }

  /// Identity of node n in the *root* topology: the identity map for a
  /// directly constructed topology, the member's original id for an
  /// induced() subtopology (composed through nested inductions).
  /// Channel models key their per-link fade streams by global ids, so a
  /// group round on a subtopology sees the same physical link in the
  /// same state as a parent-level flood at the same instant.
  NodeId global_id(NodeId n) const { return global_ids_[n]; }

  /// Receiver-major PRR row: prr_into(r)[t] == prr(t, r). Contiguous per
  /// receiver, so per-sub-slot arbitration walks it cache-friendly.
  /// Dense tier only (sparse arbitration walks audible_entries +
  /// in_prr_data instead).
  const double* prr_into(NodeId r) const {
    MPCIOT_DCHECK(!sparse_, "Topology: prr_into is dense-only");
    return prr_in_.data() + static_cast<std::size_t>(r) * positions_.size();
  }

  bool has_link(NodeId a, NodeId b) const {
    return a != b && prr(a, b) >= radio_.link_floor_prr;
  }

  /// Neighbours with a usable outbound link (prr(n, nb) >= floor), in
  /// ascending id order. Backed by the CSR adjacency (both tiers).
  std::span<const NodeId> neighbors(NodeId n) const {
    return {csr_neighbors_.data() + csr_offsets_[n],
            csr_neighbors_.data() + csr_offsets_[n + 1]};
  }

  /// Outbound link payloads aligned with neighbors(n): out_prr(n)[i] is
  /// the PRR of the link to neighbors(n)[i] (both tiers).
  std::span<const double> out_prr(NodeId n) const {
    return {out_prr_.data() + csr_offsets_[n],
            out_prr_.data() + csr_offsets_[n + 1]};
  }

  /// Flat base of the outbound PRR payloads (link_index order).
  const double* out_prr_data() const { return out_prr_.data(); }

  /// Total stored directed links (== sum of neighbor-list lengths).
  std::size_t num_links() const { return csr_neighbors_.size(); }

  /// Words per node-indexed bitmap row (ceil(size / 64)).
  std::size_t node_words() const { return node_words_; }

  /// Inbound audibility bitmap of receiver `r`: bit t set iff
  /// prr(t, r) > 0, i.e. transmitter t can be heard by r at all. One row
  /// of `node_words()` 64-bit words; the CT engines intersect it with
  /// the per-sub-slot transmitter set to skip deaf receivers without
  /// scanning the transmitter list. Dense tier only.
  const std::uint64_t* audible_words(NodeId r) const {
    MPCIOT_DCHECK(!sparse_, "Topology: audible_words is dense-only");
    return rx_words_.data() + static_cast<std::size_t>(r) * node_words_;
  }

  /// Sparse-tier audibility word-list of receiver `r` (see AudWord):
  /// the non-zero words of the bitmap row audible_words would hold, in
  /// ascending word order.
  std::span<const AudWord> audible_entries(NodeId r) const {
    return {aud_words_.data() + aud_offsets_[r],
            aud_words_.data() + aud_offsets_[r + 1]};
  }

  /// Flat inbound-PRR array the AudWord prr_off fields index (sparse
  /// tier): receiver-major, ascending transmitter within a receiver.
  const double* in_prr_data() const { return in_prr_.data(); }

  /// Index of the directed link a -> b in the flat outbound payload
  /// order (csr_neighbors_ / out_prr order), or kNoLink when the link
  /// is not stored. Both tiers; used by sparse channel models to align
  /// epoch payloads with the static CSR.
  static constexpr std::size_t kNoLink = static_cast<std::size_t>(-1);
  std::size_t link_index(NodeId a, NodeId b) const;

  /// Index of the inbound link t -> r in the in_prr_data() order, or
  /// kNoLink. Sparse tier only.
  std::size_t in_index(NodeId r, NodeId t) const;

  /// Hop distance over "good" links (prr >= 0.5); kInvalidHops if
  /// unreachable over good links. Dense: an O(1) matrix read. Sparse:
  /// served from the lazy per-endpoint BFS caches — a forward row for
  /// `a` or a reverse row for `b` if either exists, else a reverse BFS
  /// to `b` is run and cached (the common sparse pattern is many
  /// sources asking about one target, e.g. hops to the center).
  /// Thread-safe on both tiers.
  static constexpr std::uint32_t kInvalidHops = 0xFFFFFFFFu;
  std::uint32_t hops(NodeId a, NodeId b) const;

  /// Row of hop distances from `src` to every node (source-major
  /// callers: partition seeding, holder election, initiator choice).
  /// Dense: the matrix row. Sparse: a lazily built, cached forward BFS
  /// row. The pointer stays valid for the topology's lifetime;
  /// thread-safe.
  const std::uint32_t* hops_from(NodeId src) const;

  /// Network diameter in good-link hops. Sparse tier above
  /// kDenseMaxNodes: a double-sweep lower bound (exact on trees, within
  /// a small factor on geometric graphs) — callers use it to scale NTX
  /// and slot budgets, not for correctness.
  std::uint32_t diameter() const { return diameter_; }

  /// Node with the minimum eccentricity (typical CT initiator choice).
  /// Sparse tier above kDenseMaxNodes: the minimizer of
  /// max(dist to the two sweep poles) — a near-central node.
  NodeId center_node() const { return center_; }

 private:
  /// Uninitialized shell for induced(): link tables are filled by copy,
  /// then build_derived_tables() / build_sparse_derived() completes
  /// construction.
  Topology() = default;

  /// One stored directed link during construction (sorted into CSR /
  /// word-list form by the sparse builders).
  struct LinkDrawRecord {
    NodeId tx = 0;
    NodeId rx = 0;
    double prr = 0.0;
    double rssi = 0.0;
  };
  struct HopCache;

  std::size_t idx(NodeId a, NodeId b) const {
    return static_cast<std::size_t>(a) * positions_.size() + b;
  }
  /// Draw the frozen per-link RSSI/PRR tables from the radio model
  /// (dense storage, sequential stream — the historic builder).
  void build_link_tables(std::uint64_t shadow_seed);
  /// Everything derivable from rssi_/prr_: transposed PRR, CSR adjacency,
  /// audibility bitmaps, hop distances, connectivity check, center.
  void build_derived_tables();

  /// Sequential-stream link draws collected as sparse records (same RNG
  /// consumption and floats as build_link_tables, different storage).
  std::vector<LinkDrawRecord> draw_links_sequential(std::uint64_t shadow_seed);
  /// Keyed-and-culled link draws: independent stream per global pair id,
  /// spatial-hash candidate enumeration within the cull radius.
  std::vector<LinkDrawRecord> draw_links_keyed(std::uint64_t shadow_seed);
  /// Build the sparse tier (CSR + payloads + word-lists + center) from
  /// a (tx, rx)-sorted record list; shared by construction and induced().
  void build_sparse_from_links(std::vector<LinkDrawRecord> links);
  /// Fill the dense tables from sparse records (forced-dense + keyed
  /// draws, and dense children of sparse parents): unstored pairs keep
  /// the never-drawn values (0 PRR, -200 dBm).
  void fill_dense_from_links(const std::vector<LinkDrawRecord>& links);

  /// Good-link BFS (prr >= 0.5) over the CSR, forward or reverse.
  void bfs_row(NodeId start, bool reverse, std::vector<std::uint32_t>& dist,
               std::vector<NodeId>& queue) const;
  /// Sparse center/diameter: exact eccentricities up to kDenseMaxNodes,
  /// double-sweep approximation above.
  void sparse_center_and_diameter();
  std::uint32_t sparse_hops(NodeId a, NodeId b) const;

  std::vector<Position> positions_;
  RadioParams radio_;
  std::vector<double> rx_penalty_;
  std::vector<NodeId> global_ids_;
  bool sparse_ = false;

  // --- dense tier ---
  std::vector<double> rssi_;
  std::vector<double> prr_;
  std::vector<double> prr_in_;  // transposed: [receiver][transmitter]
  std::size_t node_words_ = 0;
  std::vector<std::uint64_t> rx_words_;
  std::vector<std::uint32_t> hops_;

  // --- both tiers ---
  /// CSR adjacency over usable outbound links: neighbors of node n are
  /// csr_neighbors_[csr_offsets_[n] .. csr_offsets_[n+1]).
  std::vector<std::uint32_t> csr_offsets_;
  std::vector<NodeId> csr_neighbors_;
  /// Outbound link payloads aligned with csr_neighbors_ (sparse tier;
  /// dense keeps the matrices authoritative but fills these too so
  /// out_prr()/link_index() work uniformly).
  std::vector<double> out_prr_;

  // --- sparse tier ---
  std::vector<double> out_rssi_;            // aligned with csr_neighbors_
  std::vector<std::uint32_t> aud_offsets_;  // n+1 offsets into aud_words_
  std::vector<AudWord> aud_words_;
  std::vector<double> in_prr_;  // inbound PRRs, receiver-major
  std::unique_ptr<HopCache> hop_cache_;

  std::uint32_t diameter_ = 0;
  NodeId center_ = 0;
};

}  // namespace mpciot::net
