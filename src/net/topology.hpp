// Network topology: node positions plus the derived static link table
// (RSSI with frozen shadowing, static PRR, connectivity graph, hop
// distances).
//
// The shadowing term is frozen per link at construction — the same
// assumption testbed people make when they speak of "the" PRR of a link —
// while fast fading is redrawn per packet by the reception model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "net/radio_model.hpp"

namespace mpciot::net {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

class Topology {
 public:
  /// Build a topology from node positions. `shadow_seed` freezes the
  /// per-link shadowing draw. Postcondition: the PRR graph (links with
  /// prr >= link_floor_prr) is connected — throws otherwise, because a
  /// partitioned testbed cannot run any of the protocols.
  ///
  /// `rx_noise_penalty_db` (optional, one entry per node) models nodes
  /// deployed in RF-noisy spots: their *receiver* sees the channel
  /// `penalty` dB worse while their transmissions are unaffected — link
  /// PRR becomes directional, as on real testbeds with local
  /// interference (e.g. DCube's JamLab generators).
  Topology(std::vector<Position> positions, RadioParams radio,
           std::uint64_t shadow_seed,
           std::vector<double> rx_noise_penalty_db = {});

  std::size_t size() const { return positions_.size(); }
  const RadioParams& radio() const { return radio_; }
  const Position& position(NodeId n) const { return positions_[n]; }

  double distance(NodeId a, NodeId b) const;

  /// Frozen received power on a -> b (symmetric shadowing).
  double rssi(NodeId a, NodeId b) const { return rssi_[idx(a, b)]; }

  /// Static packet reception rate a -> b; 0 for a == b.
  double prr(NodeId a, NodeId b) const { return prr_[idx(a, b)]; }

  bool has_link(NodeId a, NodeId b) const {
    return a != b && prr(a, b) >= radio_.link_floor_prr;
  }

  /// Neighbours with a usable link (prr >= floor).
  const std::vector<NodeId>& neighbors(NodeId n) const {
    return neighbors_[n];
  }

  /// Hop distance over "good" links (prr >= 0.5); kInvalidHops if
  /// unreachable over good links.
  static constexpr std::uint32_t kInvalidHops = 0xFFFFFFFFu;
  std::uint32_t hops(NodeId a, NodeId b) const { return hops_[idx(a, b)]; }

  /// Network diameter in good-link hops.
  std::uint32_t diameter() const { return diameter_; }

  /// Node with the minimum eccentricity (typical CT initiator choice).
  NodeId center_node() const { return center_; }

 private:
  std::size_t idx(NodeId a, NodeId b) const {
    return static_cast<std::size_t>(a) * positions_.size() + b;
  }
  void build_tables(std::uint64_t shadow_seed);

  std::vector<Position> positions_;
  RadioParams radio_;
  std::vector<double> rx_penalty_;
  std::vector<double> rssi_;
  std::vector<double> prr_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<std::uint32_t> hops_;
  std::uint32_t diameter_ = 0;
  NodeId center_ = 0;
};

}  // namespace mpciot::net
