// Network topology: node positions plus the derived static link table
// (RSSI with frozen shadowing, static PRR, connectivity graph, hop
// distances).
//
// The shadowing term is frozen per link at construction — the same
// assumption testbed people make when they speak of "the" PRR of a link —
// while fast fading is redrawn per packet by the reception model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/radio_model.hpp"

namespace mpciot::net {

class ChannelModel;

struct Position {
  double x = 0.0;
  double y = 0.0;
};

class Topology {
 public:
  /// Build a topology from node positions. `shadow_seed` freezes the
  /// per-link shadowing draw. Postcondition: the PRR graph (links with
  /// prr >= link_floor_prr) is connected — throws otherwise, because a
  /// partitioned testbed cannot run any of the protocols.
  ///
  /// `rx_noise_penalty_db` (optional, one entry per node) models nodes
  /// deployed in RF-noisy spots: their *receiver* sees the channel
  /// `penalty` dB worse while their transmissions are unaffected — link
  /// PRR becomes directional, as on real testbeds with local
  /// interference (e.g. DCube's JamLab generators).
  Topology(std::vector<Position> positions, RadioParams radio,
           std::uint64_t shadow_seed,
           std::vector<double> rx_noise_penalty_db = {});

  /// Build the subtopology induced by `members` (ascending, unique parent
  /// node ids): node i of the result is members[i], and every link keeps
  /// the parent's frozen RSSI/PRR — the same radios, restricted to
  /// in-group traffic (e.g. one group of a hierarchical round on its own
  /// channel). Derived tables (CSR adjacency, hop distances, center) are
  /// rebuilt for the subgraph. Throws like the main constructor when the
  /// induced usable-link graph is not connected.
  static Topology induced(const Topology& parent,
                          const std::vector<NodeId>& members);

  std::size_t size() const { return positions_.size(); }
  const RadioParams& radio() const { return radio_; }
  const Position& position(NodeId n) const { return positions_[n]; }

  double distance(NodeId a, NodeId b) const;

  /// Frozen received power on a -> b (symmetric shadowing).
  double rssi(NodeId a, NodeId b) const { return rssi_[idx(a, b)]; }

  /// Static packet reception rate a -> b; 0 for a == b.
  double prr(NodeId a, NodeId b) const { return prr_[idx(a, b)]; }

  /// Time-indexed PRR a -> b at simulated time `t` under `model`; the
  /// frozen snapshot is the degenerate static model (model == nullptr
  /// returns prr(a, b) for every t). One-shot convenience for tests and
  /// diagnostics — it walks the model's epoch chain from 0 on every
  /// call. Hot paths bind a ChannelView instead, which caches the
  /// current epoch's tables across an entire round.
  double prr_at(NodeId a, NodeId b, SimTime t,
                const ChannelModel* model = nullptr) const;

  /// Raw row-major static PRR table: prr(a, b) == prr_data()[a*size()+b].
  /// Backing store for ChannelView's static (null-model) binding.
  const double* prr_data() const { return prr_.data(); }

  /// Receiver-side noise penalty (dB) degrading node n's inbound links
  /// (see the constructor); 0 for quiet spots. Channel models re-apply
  /// it when they recompute PRR from drifted RSSI.
  double rx_noise_penalty_db(NodeId n) const { return rx_penalty_[n]; }

  /// Identity of node n in the *root* topology: the identity map for a
  /// directly constructed topology, the member's original id for an
  /// induced() subtopology (composed through nested inductions).
  /// Channel models key their per-link fade streams by global ids, so a
  /// group round on a subtopology sees the same physical link in the
  /// same state as a parent-level flood at the same instant.
  NodeId global_id(NodeId n) const { return global_ids_[n]; }

  /// Receiver-major PRR row: prr_into(r)[t] == prr(t, r). Contiguous per
  /// receiver, so per-sub-slot arbitration walks it cache-friendly.
  const double* prr_into(NodeId r) const {
    return prr_in_.data() + static_cast<std::size_t>(r) * positions_.size();
  }

  bool has_link(NodeId a, NodeId b) const {
    return a != b && prr(a, b) >= radio_.link_floor_prr;
  }

  /// Neighbours with a usable outbound link (prr(n, nb) >= floor), in
  /// ascending id order. Backed by the CSR adjacency.
  std::span<const NodeId> neighbors(NodeId n) const {
    return {csr_neighbors_.data() + csr_offsets_[n],
            csr_neighbors_.data() + csr_offsets_[n + 1]};
  }

  /// Words per node-indexed bitmap row (ceil(size / 64)).
  std::size_t node_words() const { return node_words_; }

  /// Inbound audibility bitmap of receiver `r`: bit t set iff
  /// prr(t, r) > 0, i.e. transmitter t can be heard by r at all. One row
  /// of `node_words()` 64-bit words; the CT engines intersect it with
  /// the per-sub-slot transmitter set to skip deaf receivers without
  /// scanning the transmitter list.
  const std::uint64_t* audible_words(NodeId r) const {
    return rx_words_.data() + static_cast<std::size_t>(r) * node_words_;
  }

  /// Hop distance over "good" links (prr >= 0.5); kInvalidHops if
  /// unreachable over good links.
  static constexpr std::uint32_t kInvalidHops = 0xFFFFFFFFu;
  std::uint32_t hops(NodeId a, NodeId b) const { return hops_[idx(a, b)]; }

  /// Network diameter in good-link hops.
  std::uint32_t diameter() const { return diameter_; }

  /// Node with the minimum eccentricity (typical CT initiator choice).
  NodeId center_node() const { return center_; }

 private:
  /// Uninitialized shell for induced(): link tables are filled by copy,
  /// then build_derived_tables() completes construction.
  Topology() = default;

  std::size_t idx(NodeId a, NodeId b) const {
    return static_cast<std::size_t>(a) * positions_.size() + b;
  }
  /// Draw the frozen per-link RSSI/PRR tables from the radio model.
  void build_link_tables(std::uint64_t shadow_seed);
  /// Everything derivable from rssi_/prr_: transposed PRR, CSR adjacency,
  /// audibility bitmaps, hop distances, connectivity check, center.
  void build_derived_tables();

  std::vector<Position> positions_;
  RadioParams radio_;
  std::vector<double> rx_penalty_;
  std::vector<NodeId> global_ids_;
  std::vector<double> rssi_;
  std::vector<double> prr_;
  std::vector<double> prr_in_;  // transposed: [receiver][transmitter]
  /// CSR adjacency over usable outbound links: neighbors of node n are
  /// csr_neighbors_[csr_offsets_[n] .. csr_offsets_[n+1]).
  std::vector<std::uint32_t> csr_offsets_;
  std::vector<NodeId> csr_neighbors_;
  std::size_t node_words_ = 0;
  std::vector<std::uint64_t> rx_words_;
  std::vector<std::uint32_t> hops_;
  std::uint32_t diameter_ = 0;
  NodeId center_ = 0;
};

}  // namespace mpciot::net
