#include "net/channel_model.hpp"

#include "common/assert.hpp"
#include "net/topology.hpp"

namespace mpciot::net {

void ChannelView::bind(const Topology& topo, const ChannelModel* model) {
  // Rebinding the same (topo, model) keeps the walked chain state: a
  // trial is a sequence of rounds with (mostly) increasing start times,
  // so the next round's first seek usually continues the walk instead
  // of replaying it from epoch 0. (A backwards seek after such a rebind
  // restarts the walk — see seek().)
  const bool same = topo_ == &topo && model_ == model;
  topo_ = &topo;
  model_ = model;
  sparse_ = topo.sparse();
  n_ = topo.size();
  words_ = topo.node_words();
  if (model_ == nullptr) {
    // Static channel: alias the frozen tables, nothing ever re-fills.
    tables_.epoch = LinkEpochTables::kNoEpoch;
    if (sparse_) {
      out_prr_base_ = topo.out_prr_data();
      in_prr_base_ = topo.in_prr_data();
    } else {
      prr_base_ = topo.prr_data();
      prr_in_base_ = topo.prr_into(0);
      rx_words_base_ = topo.audible_words(0);
    }
    return;
  }
  MPCIOT_REQUIRE(model_->epoch_us() > 0,
                 "ChannelView: model epoch must be positive");
  if (!same || tables_.epoch == LinkEpochTables::kNoEpoch) {
    tables_.epoch = LinkEpochTables::kNoEpoch;
    tables_.state_bits.clear();
    tables_.state_keys.clear();
    tables_.state_reals.clear();
    seek(0);
    return;
  }
  // Same binding with walked state: leave the cursor where it is — the
  // round's first seek() continues (or, if earlier, restarts) the walk.
  point_at_tables();
}

void ChannelView::seek(SimTime t) {
  if (model_ == nullptr) return;
  const std::uint64_t epoch =
      t <= 0 ? 0 : static_cast<std::uint64_t>(t / model_->epoch_us());
  if (tables_.epoch != LinkEpochTables::kNoEpoch) {
    if (epoch == tables_.epoch) return;
    if (epoch < tables_.epoch) {
      // Backwards seek (a later-bound round that starts earlier, e.g. a
      // group on a less-loaded channel): restart the walk from scratch.
      // Epoch state is a pure function of (seed, epoch, link), so this
      // reproduces the exact same tables — it only costs the re-walk.
      tables_.epoch = LinkEpochTables::kNoEpoch;
      tables_.state_bits.clear();
      tables_.state_keys.clear();
      tables_.state_reals.clear();
    }
  }
  model_->materialize(*topo_, epoch, tables_);
  tables_.epoch = epoch;
  point_at_tables();
}

void ChannelView::point_at_tables() {
  if (sparse_) {
    out_prr_base_ = tables_.out_prr.data();
    in_prr_base_ = tables_.in_prr.data();
  } else {
    prr_base_ = tables_.prr.data();
    prr_in_base_ = tables_.prr_in.data();
    rx_words_base_ = tables_.rx_words.data();
  }
}

}  // namespace mpciot::net
