#include "net/topology.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "common/assert.hpp"
#include "crypto/prng.hpp"
#include "net/channel_model.hpp"

namespace mpciot::net {
namespace {

/// Stream tag for keyed per-pair shadowing draws ("LINK").
constexpr std::uint64_t kStreamLinkShadow = 0x4C494E4B;

}  // namespace

/// Lazily built good-link BFS rows (sparse tier). Forward rows answer
/// hops_from(src); reverse rows answer hops(*, dst) for a hot target
/// (e.g. "hops to the center" across the whole network). Node-based map
/// storage keeps row pointers stable across later insertions.
struct Topology::HopCache {
  std::mutex mu;
  std::unordered_map<NodeId, std::vector<std::uint32_t>> fwd;
  std::unordered_map<NodeId, std::vector<std::uint32_t>> rev;
};

Topology::Topology(Topology&&) noexcept = default;
Topology& Topology::operator=(Topology&&) noexcept = default;
Topology::~Topology() = default;

Topology::Topology(std::vector<Position> positions, RadioParams radio,
                   std::uint64_t shadow_seed,
                   std::vector<double> rx_noise_penalty_db,
                   TopologyOptions options)
    : positions_(std::move(positions)),
      radio_(radio),
      rx_penalty_(std::move(rx_noise_penalty_db)) {
  MPCIOT_REQUIRE(positions_.size() >= 2, "Topology: need at least 2 nodes");
  MPCIOT_REQUIRE(rx_penalty_.empty() || rx_penalty_.size() == positions_.size(),
                 "Topology: one rx noise penalty per node (or none)");
  if (rx_penalty_.empty()) rx_penalty_.assign(positions_.size(), 0.0);
  global_ids_.resize(positions_.size());
  for (NodeId i = 0; i < positions_.size(); ++i) global_ids_[i] = i;

  const bool auto_dense = positions_.size() <= kDenseMaxNodes;
  const bool dense = options.storage == TopologyStorage::kDense ||
                     (options.storage == TopologyStorage::kAuto && auto_dense);
  const bool sequential =
      options.draw == LinkDraw::kSequential ||
      (options.draw == LinkDraw::kAuto && auto_dense);
  sparse_ = !dense;

  if (dense && sequential) {
    // The historic path, untouched: every derived byte is identical to
    // the pre-split implementation.
    build_link_tables(shadow_seed);
    build_derived_tables();
  } else if (dense) {
    fill_dense_from_links(draw_links_keyed(shadow_seed));
    build_derived_tables();
  } else {
    build_sparse_from_links(sequential ? draw_links_sequential(shadow_seed)
                                       : draw_links_keyed(shadow_seed));
  }
}

Topology Topology::induced(const Topology& parent,
                           const std::vector<NodeId>& members) {
  const std::size_t m = members.size();
  MPCIOT_REQUIRE(m >= 2, "Topology::induced: need at least 2 members");
  for (std::size_t i = 0; i < m; ++i) {
    MPCIOT_REQUIRE(members[i] < parent.size(),
                   "Topology::induced: member id out of range");
    MPCIOT_REQUIRE(i == 0 || members[i - 1] < members[i],
                   "Topology::induced: members must be ascending and unique");
  }

  Topology sub;
  sub.radio_ = parent.radio_;
  sub.positions_.reserve(m);
  sub.rx_penalty_.reserve(m);
  for (const NodeId p : members) {
    sub.positions_.push_back(parent.positions_[p]);
    sub.rx_penalty_.push_back(parent.rx_penalty_[p]);
    sub.global_ids_.push_back(parent.global_ids_[p]);
  }
  // The child picks its own tier by size: leaf groups of a sparse root
  // come out dense (bit-identical hot paths), intermediate slices of a
  // giant deployment stay sparse.
  sub.sparse_ = m > kDenseMaxNodes;

  if (!sub.sparse_ && !parent.sparse_) {
    // Dense child of a dense parent: the historic O(m^2) row copy.
    sub.rssi_.assign(m * m, -200.0);
    sub.prr_.assign(m * m, 0.0);
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = 0; b < m; ++b) {
        if (a == b) continue;
        sub.rssi_[a * m + b] = parent.rssi(members[a], members[b]);
        sub.prr_[a * m + b] = parent.prr(members[a], members[b]);
      }
    }
    sub.build_derived_tables();
    return sub;
  }

  // Sparse parent (or a sparse child of a huge forced-dense parent):
  // walk only the parent's stored links that stay inside the member
  // set — O(members + links), never O(parent^2).
  std::vector<NodeId> local_of(parent.size(), kInvalidNode);
  for (std::size_t i = 0; i < m; ++i) {
    local_of[members[i]] = static_cast<NodeId>(i);
  }

  std::vector<LinkDrawRecord> links;
  if (parent.sparse_) {
    for (std::size_t a = 0; a < m; ++a) {
      const NodeId pa = members[a];
      for (std::uint32_t i = parent.csr_offsets_[pa];
           i < parent.csr_offsets_[pa + 1]; ++i) {
        const NodeId lb = local_of[parent.csr_neighbors_[i]];
        if (lb == kInvalidNode) continue;
        links.push_back({static_cast<NodeId>(a), lb, parent.out_prr_[i],
                         parent.out_rssi_[i]});
      }
    }
  } else {
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = 0; b < m; ++b) {
        if (a == b) continue;
        const double p = parent.prr(members[a], members[b]);
        if (p <= 0.0) continue;
        links.push_back({static_cast<NodeId>(a), static_cast<NodeId>(b), p,
                         parent.rssi(members[a], members[b])});
      }
    }
  }

  if (sub.sparse_) {
    sub.build_sparse_from_links(std::move(links));
  } else {
    sub.fill_dense_from_links(links);
    sub.build_derived_tables();
  }
  return sub;
}

double Topology::prr_at(NodeId a, NodeId b, SimTime t,
                        const ChannelModel* model) const {
  if (model == nullptr) return prr(a, b);
  ChannelView view;
  view.bind(*this, model);
  view.seek(t);
  return view.prr(a, b);
}

double Topology::distance(NodeId a, NodeId b) const {
  const double dx = positions_[a].x - positions_[b].x;
  const double dy = positions_[a].y - positions_[b].y;
  return std::sqrt(dx * dx + dy * dy);
}

double Topology::rssi(NodeId a, NodeId b) const {
  if (!sparse_) return rssi_[idx(a, b)];
  if (a == b) return -200.0;
  // Shadowing is symmetric, so either stored direction carries the
  // frozen power; unstored pairs report the never-drawn dense value.
  std::size_t i = link_index(a, b);
  if (i == kNoLink) i = link_index(b, a);
  return i == kNoLink ? -200.0 : out_rssi_[i];
}

double Topology::prr(NodeId a, NodeId b) const {
  if (!sparse_) return prr_[idx(a, b)];
  if (a == b) return 0.0;
  const std::size_t i = link_index(a, b);
  return i == kNoLink ? 0.0 : out_prr_[i];
}

std::size_t Topology::link_index(NodeId a, NodeId b) const {
  const NodeId* begin = csr_neighbors_.data() + csr_offsets_[a];
  const NodeId* end = csr_neighbors_.data() + csr_offsets_[a + 1];
  const NodeId* it = std::lower_bound(begin, end, b);
  if (it == end || *it != b) return kNoLink;
  return static_cast<std::size_t>(it - csr_neighbors_.data());
}

std::size_t Topology::in_index(NodeId r, NodeId t) const {
  const auto entries = audible_entries(r);
  const std::uint32_t w = t / 64;
  const auto* it = std::lower_bound(
      entries.data(), entries.data() + entries.size(), w,
      [](const AudWord& e, std::uint32_t word) { return e.word < word; });
  if (it == entries.data() + entries.size() || it->word != w) return kNoLink;
  const std::uint64_t bit = std::uint64_t{1} << (t % 64);
  if ((it->bits & bit) == 0) return kNoLink;
  return it->prr_off +
         static_cast<std::size_t>(std::popcount(it->bits & (bit - 1)));
}

void Topology::build_link_tables(std::uint64_t shadow_seed) {
  const std::size_t n = positions_.size();
  rssi_.assign(n * n, -200.0);
  prr_.assign(n * n, 0.0);
  crypto::Xoshiro256 rng(shadow_seed);

  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      // Box-Muller for the lognormal shadowing term, frozen per link.
      const double u1 = std::max(rng.next_double(), 1e-12);
      const double u2 = rng.next_double();
      const double gauss =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
      const double shadow = gauss * radio_.shadowing_sigma_db;
      const double power = radio_.rx_power_dbm(distance(a, b), shadow);
      rssi_[idx(a, b)] = rssi_[idx(b, a)] = power;
      // PRR is directional when the receiving end sits in local noise.
      double p_ab = radio_.prr_from_rssi(power - rx_penalty_[b]);  // a -> b
      double p_ba = radio_.prr_from_rssi(power - rx_penalty_[a]);  // b -> a
      if (p_ab < radio_.link_floor_prr) p_ab = 0.0;
      if (p_ba < radio_.link_floor_prr) p_ba = 0.0;
      prr_[idx(a, b)] = p_ab;
      prr_[idx(b, a)] = p_ba;
    }
  }
}

std::vector<Topology::LinkDrawRecord> Topology::draw_links_sequential(
    std::uint64_t shadow_seed) {
  // The exact RNG consumption and arithmetic of build_link_tables —
  // every pair is drawn in (a, b) order from one stream — collected as
  // sparse records instead of matrix writes. O(n^2) time, O(links)
  // memory: usable up to a few hundred thousand nodes, and the anchor
  // for the sparse-vs-dense bit-identity suite.
  const std::size_t n = positions_.size();
  crypto::Xoshiro256 rng(shadow_seed);
  std::vector<LinkDrawRecord> links;

  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      const double u1 = std::max(rng.next_double(), 1e-12);
      const double u2 = rng.next_double();
      const double gauss =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
      const double shadow = gauss * radio_.shadowing_sigma_db;
      const double power = radio_.rx_power_dbm(distance(a, b), shadow);
      double p_ab = radio_.prr_from_rssi(power - rx_penalty_[b]);
      double p_ba = radio_.prr_from_rssi(power - rx_penalty_[a]);
      if (p_ab < radio_.link_floor_prr) p_ab = 0.0;
      if (p_ba < radio_.link_floor_prr) p_ba = 0.0;
      if (p_ab > 0.0) links.push_back({a, b, p_ab, power});
      if (p_ba > 0.0) links.push_back({b, a, p_ba, power});
    }
  }
  return links;
}

std::vector<Topology::LinkDrawRecord> Topology::draw_links_keyed(
    std::uint64_t shadow_seed) {
  const std::size_t n = positions_.size();

  // Cull radius: beyond this distance even a +kCullSigmas shadowing
  // draw cannot lift received power to the PRR floor (receiver noise
  // penalties only push links further down), so the pair can never
  // produce a stored link and is skipped without drawing.
  double span_x = 0.0, span_y = 0.0, min_x = 0.0, min_y = 0.0;
  {
    double max_x = positions_[0].x, max_y = positions_[0].y;
    min_x = positions_[0].x;
    min_y = positions_[0].y;
    for (const Position& p : positions_) {
      min_x = std::min(min_x, p.x);
      min_y = std::min(min_y, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
    span_x = max_x - min_x;
    span_y = max_y - min_y;
  }
  const double diagonal = std::sqrt(span_x * span_x + span_y * span_y);
  double cull_m = diagonal + 1.0;  // no cull unless the floor gives one
  if (radio_.link_floor_prr > 0.0 && radio_.link_floor_prr < 1.0) {
    const double rssi_floor =
        radio_.prr_mid_dbm +
        radio_.prr_width_db *
            std::log(radio_.link_floor_prr / (1.0 - radio_.link_floor_prr));
    const double budget = radio_.tx_power_dbm - radio_.path_loss_at_1m_db +
                          kCullSigmas * radio_.shadowing_sigma_db - rssi_floor;
    cull_m = std::clamp(
        std::pow(10.0, budget / (10.0 * radio_.path_loss_exponent)), 1.0,
        diagonal + 1.0);
  }

  // Spatial hash with cell size == cull radius: candidates for node a
  // live in the 3x3 cell block around it.
  const double cell = cull_m;
  auto cell_key =
      [&](const Position& p) -> std::pair<std::int64_t, std::int64_t> {
    return {static_cast<std::int64_t>(std::floor((p.x - min_x) / cell)),
            static_cast<std::int64_t>(std::floor((p.y - min_y) / cell))};
  };
  std::unordered_map<std::uint64_t, std::vector<NodeId>> buckets;
  buckets.reserve(n / 4 + 1);
  auto bucket_of = [&](std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(cx) << 32) ^
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  };
  for (NodeId i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_key(positions_[i]);
    buckets[bucket_of(cx, cy)].push_back(i);
  }

  std::vector<LinkDrawRecord> links;
  for (NodeId a = 0; a < n; ++a) {
    const auto [cx, cy] = cell_key(positions_[a]);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = buckets.find(bucket_of(cx + dx, cy + dy));
        if (it == buckets.end()) continue;
        for (const NodeId b : it->second) {
          if (b <= a) continue;  // each unordered pair exactly once
          if (distance(a, b) > cull_m) continue;
          // Independent stream per *global* pair id: the draw depends
          // only on the physical pair, not on enumeration order or on
          // which slice of the deployment is being built.
          const std::uint64_t lo = std::min(global_ids_[a], global_ids_[b]);
          const std::uint64_t hi = std::max(global_ids_[a], global_ids_[b]);
          crypto::Xoshiro256 rng(crypto::derive_seed(
              shadow_seed, kStreamLinkShadow, (lo << 32) | hi));
          const double u1 = std::max(rng.next_double(), 1e-12);
          const double u2 = rng.next_double();
          const double gauss =
              std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
          const double shadow = gauss * radio_.shadowing_sigma_db;
          const double power = radio_.rx_power_dbm(distance(a, b), shadow);
          double p_ab = radio_.prr_from_rssi(power - rx_penalty_[b]);
          double p_ba = radio_.prr_from_rssi(power - rx_penalty_[a]);
          if (p_ab < radio_.link_floor_prr) p_ab = 0.0;
          if (p_ba < radio_.link_floor_prr) p_ba = 0.0;
          if (p_ab > 0.0) links.push_back({a, b, p_ab, power});
          if (p_ba > 0.0) links.push_back({b, a, p_ba, power});
        }
      }
    }
  }
  return links;
}

void Topology::fill_dense_from_links(const std::vector<LinkDrawRecord>& links) {
  const std::size_t n = positions_.size();
  rssi_.assign(n * n, -200.0);
  prr_.assign(n * n, 0.0);
  for (const LinkDrawRecord& l : links) {
    prr_[idx(l.tx, l.rx)] = l.prr;
    // Shadowing (and thus RSSI) is symmetric; both directions of a
    // stored pair carry the same power.
    rssi_[idx(l.tx, l.rx)] = rssi_[idx(l.rx, l.tx)] = l.rssi;
  }
}

void Topology::build_sparse_from_links(std::vector<LinkDrawRecord> links) {
  const std::size_t n = positions_.size();
  std::sort(links.begin(), links.end(),
            [](const LinkDrawRecord& x, const LinkDrawRecord& y) {
              return x.tx != y.tx ? x.tx < y.tx : x.rx < y.rx;
            });

  // Outbound CSR with aligned PRR/RSSI payloads.
  const std::size_t e = links.size();
  csr_offsets_.assign(n + 1, 0);
  csr_neighbors_.resize(e);
  out_prr_.resize(e);
  out_rssi_.resize(e);
  for (std::size_t i = 0; i < e; ++i) {
    ++csr_offsets_[links[i].tx + 1];
    csr_neighbors_[i] = links[i].rx;
    out_prr_[i] = links[i].prr;
    out_rssi_[i] = links[i].rssi;
  }
  for (std::size_t i = 0; i < n; ++i) csr_offsets_[i + 1] += csr_offsets_[i];

  // Inbound lists by counting sort on receiver. Walking the (tx, rx)-
  // sorted records keeps each receiver's transmitters ascending — the
  // order the dense bitmap-row scan visits them, which the CT
  // arbitration identity depends on.
  std::vector<std::uint32_t> in_off(n + 1, 0);
  for (const LinkDrawRecord& l : links) ++in_off[l.rx + 1];
  for (std::size_t i = 0; i < n; ++i) in_off[i + 1] += in_off[i];
  std::vector<NodeId> in_tx(e);
  in_prr_.resize(e);
  {
    std::vector<std::uint32_t> cursor(in_off.begin(), in_off.end() - 1);
    for (const LinkDrawRecord& l : links) {
      const std::uint32_t pos = cursor[l.rx]++;
      in_tx[pos] = l.tx;
      in_prr_[pos] = l.prr;
    }
  }

  // Pack each receiver's transmitter list into audibility word runs.
  node_words_ = (n + 63) / 64;
  aud_offsets_.assign(n + 1, 0);
  aud_words_.clear();
  for (std::size_t r = 0; r < n; ++r) {
    aud_offsets_[r] = static_cast<std::uint32_t>(aud_words_.size());
    for (std::uint32_t k = in_off[r]; k < in_off[r + 1]; ++k) {
      const NodeId t = in_tx[k];
      const std::uint32_t w = t / 64;
      if (aud_words_.empty() || aud_offsets_[r] == aud_words_.size() ||
          aud_words_.back().word != w) {
        aud_words_.push_back({w, k, 0});
      }
      aud_words_.back().bits |= std::uint64_t{1} << (t % 64);
    }
  }
  aud_offsets_[n] = static_cast<std::uint32_t>(aud_words_.size());

  // Connectivity over usable links must hold, as on the dense tier.
  {
    std::vector<bool> reachable(n, false);
    std::deque<NodeId> queue{0};
    reachable[0] = true;
    std::size_t count = 1;
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      for (NodeId nb : neighbors(cur)) {
        if (!reachable[nb]) {
          reachable[nb] = true;
          ++count;
          queue.push_back(nb);
        }
      }
    }
    MPCIOT_REQUIRE(count == n, "Topology: network is partitioned");
  }

  hop_cache_ = std::make_unique<HopCache>();
  sparse_center_and_diameter();
}

void Topology::build_derived_tables() {
  const std::size_t n = positions_.size();
  prr_in_.assign(n * n, 0.0);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) prr_in_[idx(b, a)] = prr_[idx(a, b)];
  }
  // CSR adjacency over usable outbound links, plus the inbound
  // audibility bitmaps the CT hot loop intersects per sub-slot.
  csr_offsets_.assign(n + 1, 0);
  csr_neighbors_.clear();
  csr_neighbors_.reserve(n * 4);
  out_prr_.clear();
  out_prr_.reserve(n * 4);
  node_words_ = (n + 63) / 64;
  rx_words_.assign(n * node_words_, 0);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a != b && prr_[idx(a, b)] >= radio_.link_floor_prr) {
        csr_neighbors_.push_back(b);
        out_prr_.push_back(prr_[idx(a, b)]);
      }
      if (a != b && prr_[idx(b, a)] > 0.0) {
        rx_words_[a * node_words_ + b / 64] |= std::uint64_t{1} << (b % 64);
      }
    }
    csr_offsets_[a + 1] = static_cast<std::uint32_t>(csr_neighbors_.size());
  }

  // Hop distances by BFS over good links (prr >= 0.5).
  hops_.assign(n * n, kInvalidHops);
  for (NodeId src = 0; src < n; ++src) {
    hops_[idx(src, src)] = 0;
    std::deque<NodeId> queue{src};
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      for (NodeId nb : neighbors(cur)) {
        if (prr_[idx(cur, nb)] < 0.5) continue;
        if (hops_[idx(src, nb)] != kInvalidHops) continue;
        hops_[idx(src, nb)] = hops_[idx(src, cur)] + 1;
        queue.push_back(nb);
      }
    }
  }

  // Connectivity over usable links (floor PRR) must hold; over *good*
  // links we additionally compute diameter/center when connected.
  std::vector<bool> reachable(n, false);
  std::deque<NodeId> queue{0};
  reachable[0] = true;
  std::size_t count = 1;
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (NodeId nb : neighbors(cur)) {
      if (!reachable[nb]) {
        reachable[nb] = true;
        ++count;
        queue.push_back(nb);
      }
    }
  }
  MPCIOT_REQUIRE(count == n, "Topology: network is partitioned");

  diameter_ = 0;
  std::uint32_t best_ecc = kInvalidHops;
  center_ = 0;
  for (NodeId a = 0; a < n; ++a) {
    std::uint32_t ecc = 0;
    for (NodeId b = 0; b < n; ++b) {
      const std::uint32_t h = hops_[idx(a, b)];
      if (h != kInvalidHops && h > ecc) ecc = h;
      if (h != kInvalidHops && h > diameter_) diameter_ = h;
    }
    if (ecc < best_ecc) {
      best_ecc = ecc;
      center_ = a;
    }
  }
}

void Topology::bfs_row(NodeId start, bool reverse,
                       std::vector<std::uint32_t>& dist,
                       std::vector<NodeId>& queue) const {
  const std::size_t n = positions_.size();
  dist.assign(n, kInvalidHops);
  dist[start] = 0;
  queue.clear();
  queue.push_back(start);
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId cur = queue[head++];
    const std::uint32_t next = dist[cur] + 1;
    if (!reverse) {
      for (std::uint32_t i = csr_offsets_[cur]; i < csr_offsets_[cur + 1];
           ++i) {
        if (out_prr_[i] < 0.5) continue;
        const NodeId nb = csr_neighbors_[i];
        if (dist[nb] != kInvalidHops) continue;
        dist[nb] = next;
        queue.push_back(nb);
      }
    } else {
      // In-edges of cur: decode the audibility word runs, reading each
      // transmitter's inbound PRR by rank within its word.
      for (const AudWord& e : audible_entries(cur)) {
        std::uint64_t bits = e.bits;
        std::uint32_t rank = 0;
        while (bits != 0) {
          const int b = std::countr_zero(bits);
          bits &= bits - 1;
          const NodeId t = e.word * 64 + static_cast<std::uint32_t>(b);
          const double p = in_prr_[e.prr_off + rank];
          ++rank;
          if (p < 0.5 || dist[t] != kInvalidHops) continue;
          dist[t] = next;
          queue.push_back(t);
        }
      }
    }
  }
}

void Topology::sparse_center_and_diameter() {
  const std::size_t n = positions_.size();
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> queue;
  diameter_ = 0;
  center_ = 0;

  if (n <= kDenseMaxNodes) {
    // Exact eccentricities (n BFS runs), replicating the dense
    // tie-break: strict improvement keeps the lowest node id.
    std::uint32_t best_ecc = kInvalidHops;
    for (NodeId a = 0; a < n; ++a) {
      bfs_row(a, /*reverse=*/false, dist, queue);
      std::uint32_t ecc = 0;
      for (NodeId b = 0; b < n; ++b) {
        const std::uint32_t h = dist[b];
        if (h != kInvalidHops && h > ecc) ecc = h;
        if (h != kInvalidHops && h > diameter_) diameter_ = h;
      }
      if (ecc < best_ecc) {
        best_ecc = ecc;
        center_ = a;
      }
    }
    return;
  }

  // Double sweep: BFS from node 0 finds a far pole u; BFS from u finds
  // the opposite pole w and a diameter lower bound; the center estimate
  // minimizes the worse of the two pole distances. Exact on trees and
  // close on geometric graphs — consumers scale NTX/slot budgets with
  // it, they do not rely on exactness.
  auto farthest = [&](const std::vector<std::uint32_t>& d) {
    NodeId best = 0;
    std::uint32_t best_h = 0;
    for (NodeId i = 0; i < n; ++i) {
      if (d[i] != kInvalidHops && d[i] > best_h) {
        best_h = d[i];
        best = i;
      }
    }
    return std::pair<NodeId, std::uint32_t>{best, best_h};
  };

  bfs_row(0, false, dist, queue);
  const auto [u, h0] = farthest(dist);
  std::vector<std::uint32_t> du;
  bfs_row(u, false, du, queue);
  const auto [w, h1] = farthest(du);
  bfs_row(w, false, dist, queue);  // dist == dw from here on
  const auto [w2, h2] = farthest(dist);
  (void)w2;
  diameter_ = std::max({h0, h1, h2});

  std::uint32_t best_ecc = kInvalidHops;
  for (NodeId x = 0; x < n; ++x) {
    const std::uint32_t a = du[x] == kInvalidHops ? 0 : du[x];
    const std::uint32_t b = dist[x] == kInvalidHops ? 0 : dist[x];
    const std::uint32_t ecc = std::max(a, b);
    if (ecc < best_ecc) {
      best_ecc = ecc;
      center_ = x;
    }
  }
}

const std::uint32_t* Topology::hops_from(NodeId src) const {
  if (!sparse_) {
    return hops_.data() + static_cast<std::size_t>(src) * positions_.size();
  }
  HopCache& cache = *hop_cache_;
  std::lock_guard<std::mutex> lock(cache.mu);
  auto it = cache.fwd.find(src);
  if (it == cache.fwd.end()) {
    std::vector<std::uint32_t> dist;
    std::vector<NodeId> queue;
    bfs_row(src, /*reverse=*/false, dist, queue);
    it = cache.fwd.emplace(src, std::move(dist)).first;
  }
  return it->second.data();
}

std::uint32_t Topology::hops(NodeId a, NodeId b) const {
  if (!sparse_) return hops_[idx(a, b)];
  return sparse_hops(a, b);
}

std::uint32_t Topology::sparse_hops(NodeId a, NodeId b) const {
  HopCache& cache = *hop_cache_;
  std::lock_guard<std::mutex> lock(cache.mu);
  if (const auto it = cache.fwd.find(a); it != cache.fwd.end()) {
    return it->second[b];
  }
  auto it = cache.rev.find(b);
  if (it == cache.rev.end()) {
    // Build the reverse row: the common sparse pattern is many sources
    // asking about one hot target (the network center), so one reverse
    // BFS answers them all.
    std::vector<std::uint32_t> dist;
    std::vector<NodeId> queue;
    bfs_row(b, /*reverse=*/true, dist, queue);
    it = cache.rev.emplace(b, std::move(dist)).first;
  }
  return it->second[a];
}

}  // namespace mpciot::net
