#include "net/topology.hpp"

#include <cmath>
#include <deque>

#include "common/assert.hpp"
#include "crypto/prng.hpp"
#include "net/channel_model.hpp"

namespace mpciot::net {

Topology::Topology(std::vector<Position> positions, RadioParams radio,
                   std::uint64_t shadow_seed,
                   std::vector<double> rx_noise_penalty_db)
    : positions_(std::move(positions)),
      radio_(radio),
      rx_penalty_(std::move(rx_noise_penalty_db)) {
  MPCIOT_REQUIRE(positions_.size() >= 2, "Topology: need at least 2 nodes");
  MPCIOT_REQUIRE(rx_penalty_.empty() || rx_penalty_.size() == positions_.size(),
                 "Topology: one rx noise penalty per node (or none)");
  if (rx_penalty_.empty()) rx_penalty_.assign(positions_.size(), 0.0);
  global_ids_.resize(positions_.size());
  for (NodeId i = 0; i < positions_.size(); ++i) global_ids_[i] = i;
  build_link_tables(shadow_seed);
  build_derived_tables();
}

Topology Topology::induced(const Topology& parent,
                           const std::vector<NodeId>& members) {
  const std::size_t m = members.size();
  MPCIOT_REQUIRE(m >= 2, "Topology::induced: need at least 2 members");
  for (std::size_t i = 0; i < m; ++i) {
    MPCIOT_REQUIRE(members[i] < parent.size(),
                   "Topology::induced: member id out of range");
    MPCIOT_REQUIRE(i == 0 || members[i - 1] < members[i],
                   "Topology::induced: members must be ascending and unique");
  }

  Topology sub;
  sub.radio_ = parent.radio_;
  sub.positions_.reserve(m);
  sub.rx_penalty_.reserve(m);
  for (const NodeId p : members) {
    sub.positions_.push_back(parent.positions_[p]);
    sub.rx_penalty_.push_back(parent.rx_penalty_[p]);
    sub.global_ids_.push_back(parent.global_ids_[p]);
  }
  sub.rssi_.assign(m * m, -200.0);
  sub.prr_.assign(m * m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      if (a == b) continue;
      sub.rssi_[a * m + b] = parent.rssi(members[a], members[b]);
      sub.prr_[a * m + b] = parent.prr(members[a], members[b]);
    }
  }
  sub.build_derived_tables();
  return sub;
}

double Topology::prr_at(NodeId a, NodeId b, SimTime t,
                        const ChannelModel* model) const {
  if (model == nullptr) return prr(a, b);
  ChannelView view;
  view.bind(*this, model);
  view.seek(t);
  return view.prr(a, b);
}

double Topology::distance(NodeId a, NodeId b) const {
  const double dx = positions_[a].x - positions_[b].x;
  const double dy = positions_[a].y - positions_[b].y;
  return std::sqrt(dx * dx + dy * dy);
}

void Topology::build_link_tables(std::uint64_t shadow_seed) {
  const std::size_t n = positions_.size();
  rssi_.assign(n * n, -200.0);
  prr_.assign(n * n, 0.0);
  crypto::Xoshiro256 rng(shadow_seed);

  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      // Box-Muller for the lognormal shadowing term, frozen per link.
      const double u1 = std::max(rng.next_double(), 1e-12);
      const double u2 = rng.next_double();
      const double gauss =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
      const double shadow = gauss * radio_.shadowing_sigma_db;
      const double power = radio_.rx_power_dbm(distance(a, b), shadow);
      rssi_[idx(a, b)] = rssi_[idx(b, a)] = power;
      // PRR is directional when the receiving end sits in local noise.
      double p_ab = radio_.prr_from_rssi(power - rx_penalty_[b]);  // a -> b
      double p_ba = radio_.prr_from_rssi(power - rx_penalty_[a]);  // b -> a
      if (p_ab < radio_.link_floor_prr) p_ab = 0.0;
      if (p_ba < radio_.link_floor_prr) p_ba = 0.0;
      prr_[idx(a, b)] = p_ab;
      prr_[idx(b, a)] = p_ba;
    }
  }
}

void Topology::build_derived_tables() {
  const std::size_t n = positions_.size();
  prr_in_.assign(n * n, 0.0);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) prr_in_[idx(b, a)] = prr_[idx(a, b)];
  }
  // CSR adjacency over usable outbound links, plus the inbound
  // audibility bitmaps the CT hot loop intersects per sub-slot.
  csr_offsets_.assign(n + 1, 0);
  csr_neighbors_.clear();
  csr_neighbors_.reserve(n * 4);
  node_words_ = (n + 63) / 64;
  rx_words_.assign(n * node_words_, 0);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a != b && prr_[idx(a, b)] >= radio_.link_floor_prr) {
        csr_neighbors_.push_back(b);
      }
      if (a != b && prr_[idx(b, a)] > 0.0) {
        rx_words_[a * node_words_ + b / 64] |= std::uint64_t{1} << (b % 64);
      }
    }
    csr_offsets_[a + 1] = static_cast<std::uint32_t>(csr_neighbors_.size());
  }

  // Hop distances by BFS over good links (prr >= 0.5).
  hops_.assign(n * n, kInvalidHops);
  for (NodeId src = 0; src < n; ++src) {
    hops_[idx(src, src)] = 0;
    std::deque<NodeId> queue{src};
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      for (NodeId nb : neighbors(cur)) {
        if (prr_[idx(cur, nb)] < 0.5) continue;
        if (hops_[idx(src, nb)] != kInvalidHops) continue;
        hops_[idx(src, nb)] = hops_[idx(src, cur)] + 1;
        queue.push_back(nb);
      }
    }
  }

  // Connectivity over usable links (floor PRR) must hold; over *good*
  // links we additionally compute diameter/center when connected.
  std::vector<bool> reachable(n, false);
  std::deque<NodeId> queue{0};
  reachable[0] = true;
  std::size_t count = 1;
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (NodeId nb : neighbors(cur)) {
      if (!reachable[nb]) {
        reachable[nb] = true;
        ++count;
        queue.push_back(nb);
      }
    }
  }
  MPCIOT_REQUIRE(count == n, "Topology: network is partitioned");

  diameter_ = 0;
  std::uint32_t best_ecc = kInvalidHops;
  center_ = 0;
  for (NodeId a = 0; a < n; ++a) {
    std::uint32_t ecc = 0;
    for (NodeId b = 0; b < n; ++b) {
      const std::uint32_t h = hops_[idx(a, b)];
      if (h != kInvalidHops && h > ecc) ecc = h;
      if (h != kInvalidHops && h > diameter_) diameter_ = h;
    }
    if (ecc < best_ecc) {
      best_ecc = ecc;
      center_ = a;
    }
  }
}

}  // namespace mpciot::net
