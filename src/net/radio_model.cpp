#include "net/radio_model.hpp"

#include <algorithm>
#include <cmath>

namespace mpciot::net {

double RadioParams::rx_power_dbm(double distance_m, double shadow_db) const {
  const double d = std::max(distance_m, 0.1);
  const double pl =
      path_loss_at_1m_db + 10.0 * path_loss_exponent * std::log10(d);
  return tx_power_dbm - pl + shadow_db;
}

double RadioParams::prr_from_rssi(double rssi_dbm) const {
  const double z = (rssi_dbm - prr_mid_dbm) / prr_width_db;
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace mpciot::net
