// Spatial partitioning of a Topology into connected groups — the
// substrate of hierarchical multi-group aggregation (one CT chain per
// group on its own channel, group sums recombined up a tree).
//
// Two clustering strategies, both deterministic for a given topology:
//   * grid_blocks    — tile the deployment's bounding box into roughly
//                      square blocks, seed one group per occupied block,
//                      and grow the groups over usable links so every
//                      group is connected even when a block's nodes are
//                      not (RF holes, jittered placements).
//   * greedy_radius  — farthest-point-sample `target_groups` seed nodes
//                      (maximizing pairwise hop distance), then grow
//                      balls around the seeds over usable links.
// Both guarantee the partition invariants checked by validate():
// every node in exactly one group, every group at least min_group_size
// nodes, every group's induced usable-link subgraph connected.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "net/topology.hpp"

namespace mpciot::net::partition {

struct Partition {
  /// Non-empty groups; members ascending within each group.
  std::vector<std::vector<NodeId>> groups;
  /// node -> index into `groups`.
  std::vector<std::uint32_t> group_of;

  std::size_t size() const { return groups.size(); }
};

/// Grid-block clustering. `target_groups` is an upper bound: blocks left
/// empty by the placement, or groups merged up to reach
/// `min_group_size`, can reduce the count.
Partition grid_blocks(const Topology& topo, std::uint32_t target_groups,
                      std::uint32_t min_group_size = 2);

/// Greedy radius clustering around farthest-point-sampled seeds. Same
/// `target_groups` / `min_group_size` semantics as grid_blocks.
Partition greedy_radius(const Topology& topo, std::uint32_t target_groups,
                        std::uint32_t min_group_size = 2);

/// True iff the subgraph induced by `members` (over usable links,
/// prr >= link_floor_prr) is connected. Empty/singleton member sets are
/// trivially connected.
bool subgraph_connected(const Topology& topo,
                        const std::vector<NodeId>& members);

/// Check the partition invariants (exact cover, group_of consistency,
/// min size 1, per-group connectivity); throws ContractViolation on the
/// first violation.
void validate(const Topology& topo, const Partition& p);

}  // namespace mpciot::net::partition
