#include "net/partition.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/assert.hpp"

namespace mpciot::net::partition {

namespace {

constexpr std::uint32_t kUnassigned = 0xFFFFFFFFu;

/// Links usable in *both* directions. PRR is directional (receiver-side
/// noise penalties), and group connectivity must survive a BFS from the
/// group's smallest member in whatever direction the edges happen to
/// run — growing only across bidirectionally usable links makes every
/// group's spanning tree traversable either way. With receiver-penalty
/// asymmetry, any inbound-usable link is also outbound-usable, so this
/// never strands a node the Topology connectivity contract admits.
bool usable_both_ways(const Topology& topo, NodeId a, NodeId b) {
  return topo.has_link(a, b) && topo.has_link(b, a);
}

/// Grow groups from per-group seed sets: multi-source BFS over
/// bidirectionally usable links, processed one layer at a time in
/// ascending node order, so every node attaches to the group that
/// reaches it first (ties: the lower-id claimant of the previous
/// layer). Each attachment follows a two-way link into its group, so
/// every grown group stays connected in both edge directions.
/// Precondition: `assignment` marks the (non-empty, internally
/// connected) seed sets; the parent topology is connected, so the BFS
/// reaches every node.
void grow_groups(const Topology& topo, std::vector<std::uint32_t>& assignment) {
  const std::size_t n = topo.size();
  std::vector<NodeId> frontier;
  for (NodeId i = 0; i < n; ++i) {
    if (assignment[i] != kUnassigned) frontier.push_back(i);
  }
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    next.clear();
    for (const NodeId at : frontier) {
      for (const NodeId nb : topo.neighbors(at)) {
        if (assignment[nb] != kUnassigned) continue;
        if (!usable_both_ways(topo, at, nb)) continue;
        assignment[nb] = assignment[at];
        next.push_back(nb);
      }
    }
    std::sort(next.begin(), next.end());
    frontier = next;
  }
  for (NodeId i = 0; i < n; ++i) {
    MPCIOT_ENSURE(assignment[i] != kUnassigned,
                  "partition: connected topology must be fully reachable "
                  "over two-way usable links");
  }
}

/// Connected components of the subgraph induced by one group's current
/// assignment; returns component index per node (kUnassigned outside the
/// group), components numbered in order of their smallest node id.
std::vector<std::uint32_t> group_components(
    const Topology& topo, const std::vector<std::uint32_t>& assignment,
    std::uint32_t group, std::uint32_t& component_count) {
  const std::size_t n = topo.size();
  std::vector<std::uint32_t> comp(n, kUnassigned);
  component_count = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (assignment[start] != group || comp[start] != kUnassigned) continue;
    const std::uint32_t c = component_count++;
    comp[start] = c;
    std::deque<NodeId> queue{start};
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      for (const NodeId nb : topo.neighbors(cur)) {
        if (assignment[nb] == group && comp[nb] == kUnassigned &&
            usable_both_ways(topo, cur, nb)) {
          comp[nb] = c;
          queue.push_back(nb);
        }
      }
    }
  }
  return comp;
}

/// Keep, per group, only the component containing the group's seed node
/// (fallback: the component of the group's smallest id); release every
/// other member back to kUnassigned for regrowth.
void keep_anchored_components(const Topology& topo,
                              std::vector<std::uint32_t>& assignment,
                              std::uint32_t num_groups,
                              const std::vector<NodeId>& seed_of_group) {
  const std::size_t n = topo.size();
  for (std::uint32_t g = 0; g < num_groups; ++g) {
    std::uint32_t components = 0;
    const std::vector<std::uint32_t> comp =
        group_components(topo, assignment, g, components);
    if (components <= 1) continue;
    const std::uint32_t keep = comp[seed_of_group[g]];
    for (NodeId i = 0; i < n; ++i) {
      if (assignment[i] == g && comp[i] != keep) assignment[i] = kUnassigned;
    }
  }
}

Partition finalize(const Topology& topo, std::vector<std::uint32_t> assignment,
                   std::uint32_t num_groups, std::uint32_t min_group_size) {
  const std::size_t n = topo.size();

  // Merge undersized groups into the neighbouring group they are best
  // linked to; merging along a usable link preserves connectivity on
  // both sides. Iterate until every surviving group is large enough.
  std::vector<std::size_t> group_size(num_groups, 0);
  for (NodeId i = 0; i < n; ++i) ++group_size[assignment[i]];
  for (;;) {
    std::uint32_t small = kUnassigned;
    for (std::uint32_t g = 0; g < num_groups; ++g) {
      if (group_size[g] > 0 && group_size[g] < min_group_size) {
        small = g;
        break;
      }
    }
    if (small == kUnassigned) break;
    double best_prr = -1.0;
    std::uint32_t target = kUnassigned;
    for (NodeId i = 0; i < n; ++i) {
      if (assignment[i] != small) continue;
      for (const NodeId nb : topo.neighbors(i)) {
        if (assignment[nb] == small) continue;
        if (!usable_both_ways(topo, i, nb)) continue;
        const double p = topo.prr(i, nb);
        if (p > best_prr) {
          best_prr = p;
          target = assignment[nb];
        }
      }
    }
    MPCIOT_ENSURE(target != kUnassigned,
                  "partition: undersized group has no outside link");
    for (NodeId i = 0; i < n; ++i) {
      if (assignment[i] == small) assignment[i] = target;
    }
    group_size[target] += group_size[small];
    group_size[small] = 0;
  }

  // Compact group indices (drop empty groups, keep relative order).
  std::vector<std::uint32_t> remap(num_groups, kUnassigned);
  std::uint32_t compact = 0;
  for (std::uint32_t g = 0; g < num_groups; ++g) {
    if (group_size[g] > 0) remap[g] = compact++;
  }

  Partition p;
  p.groups.resize(compact);
  p.group_of.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    const std::uint32_t g = remap[assignment[i]];
    p.group_of[i] = g;
    p.groups[g].push_back(i);  // ascending: i iterates in order
  }
  validate(topo, p);
  return p;
}

}  // namespace

Partition grid_blocks(const Topology& topo, std::uint32_t target_groups,
                      std::uint32_t min_group_size) {
  const std::size_t n = topo.size();
  MPCIOT_REQUIRE(target_groups >= 1, "grid_blocks: need at least one group");
  MPCIOT_REQUIRE(static_cast<std::size_t>(target_groups) * min_group_size <= n,
                 "grid_blocks: too many groups for the node count");

  double min_x = std::numeric_limits<double>::max();
  double max_x = std::numeric_limits<double>::lowest();
  double min_y = min_x;
  double max_y = max_x;
  for (NodeId i = 0; i < n; ++i) {
    const Position& pos = topo.position(i);
    min_x = std::min(min_x, pos.x);
    max_x = std::max(max_x, pos.x);
    min_y = std::min(min_y, pos.y);
    max_y = std::max(max_y, pos.y);
  }
  const double width = std::max(max_x - min_x, 1e-9);
  const double height = std::max(max_y - min_y, 1e-9);

  // Pick the block grid (rows x cols == target_groups) whose cells are
  // closest to square for this bounding box.
  std::uint32_t best_rows = 1;
  double best_badness = std::numeric_limits<double>::max();
  for (std::uint32_t rows = 1; rows <= target_groups; ++rows) {
    if (target_groups % rows != 0) continue;
    const std::uint32_t cols = target_groups / rows;
    const double cell_w = width / cols;
    const double cell_h = height / rows;
    const double badness = std::abs(std::log(cell_w / cell_h));
    if (badness < best_badness) {
      best_badness = badness;
      best_rows = rows;
    }
  }
  const std::uint32_t rows = best_rows;
  const std::uint32_t cols = target_groups / rows;

  const auto block_of = [&](NodeId i) {
    const Position& pos = topo.position(i);
    std::uint32_t c = static_cast<std::uint32_t>((pos.x - min_x) / width *
                                                 static_cast<double>(cols));
    std::uint32_t r = static_cast<std::uint32_t>((pos.y - min_y) / height *
                                                 static_cast<double>(rows));
    c = std::min(c, cols - 1);
    r = std::min(r, rows - 1);
    return r * cols + c;
  };

  std::vector<std::uint32_t> assignment(n);
  for (NodeId i = 0; i < n; ++i) assignment[i] = block_of(i);

  // Seed per block: the node closest to the block center (ties: lower
  // id). Empty blocks simply produce no group.
  std::vector<NodeId> seed(target_groups, kInvalidNode);
  std::vector<double> seed_dist(target_groups,
                                std::numeric_limits<double>::max());
  for (NodeId i = 0; i < n; ++i) {
    const std::uint32_t b = assignment[i];
    const double cx = min_x + (b % cols + 0.5) * width / cols;
    const double cy = min_y + (b / cols + 0.5) * height / rows;
    const double dx = topo.position(i).x - cx;
    const double dy = topo.position(i).y - cy;
    const double d2 = dx * dx + dy * dy;
    if (d2 < seed_dist[b]) {
      seed_dist[b] = d2;
      seed[b] = i;
    }
  }

  // A block's nodes need not induce a connected subgraph: keep each
  // block's seed-anchored component and regrow the strays over usable
  // links, which attaches every stray to a connected group.
  keep_anchored_components(topo, assignment, target_groups, seed);
  grow_groups(topo, assignment);
  return finalize(topo, std::move(assignment), target_groups, min_group_size);
}

Partition greedy_radius(const Topology& topo, std::uint32_t target_groups,
                        std::uint32_t min_group_size) {
  const std::size_t n = topo.size();
  MPCIOT_REQUIRE(target_groups >= 1, "greedy_radius: need at least one group");
  MPCIOT_REQUIRE(static_cast<std::size_t>(target_groups) * min_group_size <= n,
                 "greedy_radius: too many groups for the node count");

  // Farthest-point sampling on good-link hop distance: start from the
  // network center, then repeatedly add the node farthest from every
  // chosen seed (ties: lower id; good-link-unreachable counts as
  // farthest, so isolated pockets get their own seed first).
  std::vector<NodeId> seeds{topo.center_node()};
  std::vector<std::uint64_t> dist(n, 0);
  // Whole rows via hops_from: on the sparse tier each seed costs one
  // BFS instead of n point queries.
  const auto hop_or_max = [](const std::uint32_t* row, NodeId b) {
    const std::uint32_t h = row[b];
    return h == Topology::kInvalidHops ? std::uint64_t{1} << 32
                                       : std::uint64_t{h};
  };
  const std::uint32_t* row = topo.hops_from(seeds[0]);
  for (NodeId i = 0; i < n; ++i) dist[i] = hop_or_max(row, i);
  while (seeds.size() < target_groups) {
    NodeId far = 0;
    for (NodeId i = 1; i < n; ++i) {
      if (dist[i] > dist[far]) far = i;
    }
    seeds.push_back(far);
    row = topo.hops_from(far);
    for (NodeId i = 0; i < n; ++i) {
      dist[i] = std::min(dist[i], hop_or_max(row, i));
    }
  }

  std::vector<std::uint32_t> assignment(n, kUnassigned);
  for (std::uint32_t g = 0; g < seeds.size(); ++g) assignment[seeds[g]] = g;
  grow_groups(topo, assignment);
  return finalize(topo, std::move(assignment), target_groups, min_group_size);
}

bool subgraph_connected(const Topology& topo,
                        const std::vector<NodeId>& members) {
  if (members.size() <= 1) return true;
  std::vector<char> in_set(topo.size(), 0);
  for (const NodeId m : members) {
    MPCIOT_REQUIRE(m < topo.size(), "subgraph_connected: id out of range");
    in_set[m] = 1;
  }
  std::vector<char> seen(topo.size(), 0);
  std::deque<NodeId> queue{members[0]};
  seen[members[0]] = 1;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (const NodeId nb : topo.neighbors(cur)) {
      if (in_set[nb] && !seen[nb]) {
        seen[nb] = 1;
        ++reached;
        queue.push_back(nb);
      }
    }
  }
  return reached == members.size();
}

void validate(const Topology& topo, const Partition& p) {
  const std::size_t n = topo.size();
  MPCIOT_REQUIRE(p.group_of.size() == n,
                 "partition: group_of must cover every node");
  std::size_t total = 0;
  for (std::uint32_t g = 0; g < p.groups.size(); ++g) {
    const std::vector<NodeId>& members = p.groups[g];
    MPCIOT_REQUIRE(!members.empty(), "partition: empty group");
    total += members.size();
    for (std::size_t i = 0; i < members.size(); ++i) {
      MPCIOT_REQUIRE(members[i] < n, "partition: member id out of range");
      MPCIOT_REQUIRE(i == 0 || members[i - 1] < members[i],
                     "partition: group members must be ascending and unique");
      MPCIOT_REQUIRE(p.group_of[members[i]] == g,
                     "partition: group_of disagrees with groups");
    }
    MPCIOT_REQUIRE(subgraph_connected(topo, members),
                   "partition: group subgraph is not connected");
  }
  MPCIOT_REQUIRE(total == n, "partition: groups must cover every node once");
}

}  // namespace mpciot::net::partition
