// Radio timing and propagation model for an nRF52840-class
// IEEE 802.15.4 radio (250 kbit/s, 32 us per byte), which is what the
// paper's Contiki port runs on.
//
// Propagation is log-distance path loss with per-link lognormal
// shadowing; packet reception rate (PRR) follows a logistic curve on
// received power, which reproduces the sharp-but-soft reception edge of
// real testbed links (good core, unstable fringe).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace mpciot::net {

struct RadioParams {
  // --- timing (802.15.4 @ 250 kbit/s) ---
  SimTime us_per_byte = 32;
  /// PHY overhead: 4B preamble + 1B SFD + 1B length.
  std::uint32_t phy_overhead_bytes = 6;
  /// MAC/CRC overhead carried by every sub-slot packet.
  std::uint32_t mac_overhead_bytes = 9;
  /// RX/TX turnaround + guard between sub-slots (12 symbols = 192 us,
  /// padded for software latency, per Glossy/MiniCast slot budgets).
  SimTime turnaround_us = 208;

  // --- propagation ---
  double tx_power_dbm = 0.0;        // nRF52840 default
  double path_loss_at_1m_db = 40.0; // 2.4 GHz reference loss
  double path_loss_exponent = 3.5;  // indoor office with walls
  double shadowing_sigma_db = 4.5;  // per-link, frozen at deployment
  /// Logistic PRR curve: PRR(rssi) = 1 / (1 + exp(-(rssi - mid)/width)).
  double prr_mid_dbm = -87.0;
  double prr_width_db = 1.5;
  /// Links with static PRR below this are treated as nonexistent.
  double link_floor_prr = 0.05;

  // --- concurrent transmissions ---
  /// Extra success probability factor when >= 2 synchronized transmitters
  /// send identical bytes (constructive interference / capture): the
  /// effective loss is the product of per-link losses, scaled by this
  /// correlation factor (1 = fully independent, > 1 = worse than
  /// independent because timing offsets correlate failures).
  double ct_loss_correlation = 1.2;
  /// Power advantage (dB) required for capture when payloads differ.
  double capture_threshold_db = 3.0;
  /// Probability that a trigger-ready node misses its transmit slot
  /// (packet-detection failure / Rx-Tx turnaround miss) and listens
  /// instead. Besides being physically real, this is what breaks the
  /// phase-locked cliques dense CT networks otherwise fall into (whole
  /// neighbourhoods transmitting on the same parity never hear each
  /// other).
  double tx_defer_prob = 0.15;

  // --- energy (for radio-on -> charge conversions in reports) ---
  double rx_current_ma = 6.5;  // nRF52840 radio RX @ 0 dBm class
  double tx_current_ma = 8.5;

  /// Airtime of a packet with `payload_bytes` of MAC payload.
  SimTime airtime_us(std::uint32_t payload_bytes) const {
    return static_cast<SimTime>(
        (phy_overhead_bytes + mac_overhead_bytes + payload_bytes) *
        static_cast<std::uint32_t>(us_per_byte));
  }

  /// Full sub-slot duration (airtime + turnaround/guard).
  SimTime subslot_us(std::uint32_t payload_bytes) const {
    return airtime_us(payload_bytes) + turnaround_us;
  }

  /// Received power over a link of length `distance_m` with frozen
  /// shadowing `shadow_db`.
  double rx_power_dbm(double distance_m, double shadow_db) const;

  /// Static PRR for a given received power.
  double prr_from_rssi(double rssi_dbm) const;
};

}  // namespace mpciot::net
