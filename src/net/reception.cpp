#include "net/reception.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace mpciot::net {

ReceptionOutcome ReceptionModel::arbitrate(
    NodeId receiver, const std::vector<Transmission>& transmitters,
    crypto::Xoshiro256& rng, const ChannelView* view) const {
  ReceptionOutcome out;
  if (transmitters.empty()) return out;

  // Partition audible transmitters (link exists) and check payload
  // homogeneity.
  double best_prr = 0.0;
  NodeId best_sender = kInvalidNode;
  double best_rssi = -300.0;
  double power_sum_mw = 0.0;
  bool homogeneous = true;
  const std::uint64_t first_content = transmitters.front().content_id;
  std::size_t audible = 0;
  double fail_product = 1.0;

  for (const Transmission& t : transmitters) {
    MPCIOT_DCHECK(t.sender != receiver,
                  "reception: half-duplex node cannot receive own slot");
    if (t.content_id != first_content) homogeneous = false;
    const double p = view != nullptr ? view->prr(t.sender, receiver)
                                     : topo_->prr(t.sender, receiver);
    if (p <= 0.0) continue;
    ++audible;
    const double rssi = topo_->rssi(t.sender, receiver);
    power_sum_mw += std::pow(10.0, rssi / 10.0);
    fail_product *= (1.0 - p);
    if (rssi > best_rssi) {
      best_rssi = rssi;
      best_prr = p;
      best_sender = t.sender;
    }
  }
  if (audible == 0) return out;

  const RadioParams& radio = topo_->radio();
  double success_prob;
  if (audible == 1) {
    success_prob = best_prr;
  } else if (homogeneous) {
    // Constructive interference: all copies must fail for the slot to
    // fail; correlation > 1 degrades towards the single-best case.
    const double independent_fail = fail_product;
    const double correlated_fail =
        std::pow(independent_fail, 1.0 / radio.ct_loss_correlation);
    success_prob = 1.0 - correlated_fail;
  } else {
    // Capture: strongest must dominate the power sum of the others.
    const double others_mw =
        std::max(power_sum_mw - std::pow(10.0, best_rssi / 10.0), 1e-30);
    const double sir_db = best_rssi - 10.0 * std::log10(others_mw);
    if (sir_db < radio.capture_threshold_db) return out;
    success_prob = best_prr;
  }

  if (rng.next_bool(success_prob)) {
    out.received = true;
    out.from = best_sender;
    out.content_id = homogeneous ? first_content
                                 : /* captured strongest */ [&] {
                                     for (const Transmission& t : transmitters) {
                                       if (t.sender == best_sender)
                                         return t.content_id;
                                     }
                                     return first_content;
                                   }();
  }
  return out;
}

}  // namespace mpciot::net
