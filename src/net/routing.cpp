#include "net/routing.hpp"

namespace mpciot::net::routing {

namespace {

/// next_hop that steers around blocked relays: first unblocked
/// equal-cost candidate on the good-link shortest path, kInvalidNode
/// when every candidate is blocked. Identical to next_hop for a null
/// or empty mask. `down_at` (with `env`) additionally skips relays that
/// are churn-down at that instant — but never the destination itself,
/// whose downness is resolved per attempt by the ack.
NodeId next_hop_avoiding(const Topology& topo, NodeId from, NodeId dst,
                         const std::vector<char>* blocked,
                         const WalkEnv* env = nullptr, SimTime down_at = 0) {
  if (from == dst) return dst;
  const std::uint32_t d = topo.hops(from, dst);
  if (d == Topology::kInvalidHops) return kInvalidNode;
  for (NodeId nb : topo.neighbors(from)) {
    if (topo.prr(from, nb) < 0.5) continue;
    // Guard before the +1: a good-link-partitioned neighbour reports
    // kInvalidHops (UINT32_MAX), which the arithmetic would wrap to 0.
    const std::uint32_t nb_hops = topo.hops(nb, dst);
    if (nb_hops == Topology::kInvalidHops || nb_hops + 1 != d) continue;
    if (blocked != nullptr && !blocked->empty() && (*blocked)[nb] != 0) {
      continue;
    }
    if (env != nullptr && env->liveness != nullptr && nb != dst &&
        env->liveness->is_down(nb, down_at)) {
      continue;
    }
    return nb;
  }
  return kInvalidNode;
}

}  // namespace

NodeId next_hop(const Topology& topo, NodeId from, NodeId dst) {
  return next_hop_avoiding(topo, from, dst, nullptr);
}

HopTiming hop_timing(const RadioParams& radio, std::uint32_t payload_bytes,
                     const MacParams& mac) {
  const SimTime data_us = radio.airtime_us(payload_bytes);
  const SimTime ack_us = radio.airtime_us(mac.ack_payload_bytes);
  HopTiming timing;
  timing.exchange_us =
      data_us + radio.turnaround_us + ack_us + radio.turnaround_us;
  timing.hop_us = mac.wakeup_interval_us / 2 + timing.exchange_us;
  return timing;
}

bool walk_route(const Topology& topo, NodeId src, NodeId dst,
                const HopTiming& timing, std::uint32_t max_retries_per_hop,
                crypto::Xoshiro256& rng, std::vector<SimTime>& radio_on_us,
                SimTime& elapsed_us, std::vector<std::uint32_t>* tx_count,
                const std::vector<char>* blocked, const WalkEnv* env) {
  const LivenessModel* churn = env != nullptr ? env->liveness : nullptr;
  const auto now = [&] {
    return (env != nullptr ? env->base_us : 0) + elapsed_us;
  };
  NodeId at = src;
  while (at != dst) {
    // A sender that crashed mid-walk drops the message where it stands.
    if (churn != nullptr && churn->is_down(at, now())) return false;
    const NodeId hop = next_hop_avoiding(topo, at, dst, blocked, env, now());
    if (hop == kInvalidNode) return false;
    const double prr = topo.prr(at, hop);
    bool hop_ok = false;
    for (std::uint32_t attempt = 0; attempt <= max_retries_per_hop;
         ++attempt) {
      // One attempt occupies the (single) channel for the rendezvous
      // strobe plus data + ack airtime; the receiver's radio only opens
      // for the actual exchange.
      elapsed_us += timing.hop_us;
      radio_on_us[at] += timing.hop_us;
      if (tx_count != nullptr) ++(*tx_count)[at];
      if (churn != nullptr && churn->is_down(hop, now())) {
        // Dead ear: no exchange, no ack, no randomness consumed — the
        // sender just burns the strobe and retries.
        continue;
      }
      radio_on_us[hop] += timing.exchange_us;
      double p = prr;
      if (env != nullptr && env->view != nullptr) {
        env->view->seek(now());
        p = env->view->prr(at, hop);
      }
      if (rng.next_bool(p)) {
        hop_ok = true;
        break;
      }
    }
    if (!hop_ok) return false;
    at = hop;
  }
  return true;
}

}  // namespace mpciot::net::routing
