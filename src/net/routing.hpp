// Multi-hop unicast routing over the topology's good-link shortest
// paths, with the stop-and-wait ARQ + duty-cycled rendezvous timing of a
// ContikiMAC-class low-power stack. Shared by the unicast SSS baseline
// (core::run_unicast_sss) and the unicast transport behind the
// ct::Transport seam, so both model the exact same per-hop behaviour.
//
// Single collision domain: transmissions serialize network-wide, so a
// walk simply accumulates elapsed airtime (conservative for dense indoor
// testbeds, documented in DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "crypto/prng.hpp"
#include "net/channel_model.hpp"
#include "net/topology.hpp"

namespace mpciot::net::routing {

/// Next hop on a shortest good-link (prr >= 0.5) path from `from` to
/// `dst`, or kInvalidNode when unreachable over good links.
NodeId next_hop(const Topology& topo, NodeId from, NodeId dst);

/// MAC parameters of the duty-cycled unicast stack.
struct MacParams {
  std::uint32_t max_retries_per_hop = 8;
  std::uint32_t ack_payload_bytes = 2;
  /// Receiver wake-up interval (ContikiMAC default: 8 Hz). A sender
  /// strobes for half of it on average before the receiver's ear opens.
  SimTime wakeup_interval_us = 125000;
};

/// Timing of one hop attempt, derived from radio + MAC parameters.
struct HopTiming {
  /// Data + ack airtime with turnarounds: the span the receiver's radio
  /// is actually open.
  SimTime exchange_us = 0;
  /// Rendezvous strobe plus the exchange: the span the sender is busy
  /// (and the channel occupied) per attempt.
  SimTime hop_us = 0;
};
HopTiming hop_timing(const RadioParams& radio, std::uint32_t payload_bytes,
                     const MacParams& mac);

/// Walk one message src -> dst hop by hop. Every attempt draws
/// Bernoulli(link PRR) from `rng`, charges the hop sender `hop_us` and
/// the hop receiver `exchange_us` of radio-on time, advances
/// `elapsed_us` by `hop_us`, and (when `tx_count` is non-null) counts
/// one transmission for the hop sender. Gives up after
/// `max_retries_per_hop` failed retries on any hop, or when no good-link
/// route exists (which consumes neither time nor randomness). Returns
/// true on delivery.
///
/// Dynamics environment of a walk: maps the walk's local `elapsed_us`
/// onto the trial clock (base_us + elapsed) and supplies the
/// time-varying PRR view and/or churn schedule there. Per hop attempt,
/// the view is seeked to the current time and the link PRR re-read; a
/// hop receiver that is down cannot ack (the attempt fails without
/// consuming randomness, the sender still pays strobe + retry time),
/// and down relays are routed around like `blocked` ones.
struct WalkEnv {
  SimTime base_us = 0;
  ChannelView* view = nullptr;
  const LivenessModel* liveness = nullptr;
};

/// `blocked` (optional, one flag per node) marks dead relays: a blocked
/// next hop is skipped in favour of an equal-cost alternative on the
/// good-link shortest path, and the message is dropped when none
/// exists — dead nodes never forward and are never charged radio time.
bool walk_route(const Topology& topo, NodeId src, NodeId dst,
                const HopTiming& timing, std::uint32_t max_retries_per_hop,
                crypto::Xoshiro256& rng, std::vector<SimTime>& radio_on_us,
                SimTime& elapsed_us,
                std::vector<std::uint32_t>* tx_count = nullptr,
                const std::vector<char>* blocked = nullptr,
                const WalkEnv* env = nullptr);

}  // namespace mpciot::net::routing
