#include "net/testbeds.hpp"

#include "common/assert.hpp"
#include "crypto/prng.hpp"

namespace mpciot::net::testbeds {

Topology retry_topology(const char* what, std::uint64_t max_attempts,
                        const std::function<Topology(std::uint64_t)>& build,
                        const std::function<bool(const Topology&)>& accept) {
  for (std::uint64_t attempt = 0; attempt < max_attempts; ++attempt) {
    try {
      Topology topo = build(attempt);
      if (!accept || accept(topo)) return topo;
    } catch (const ContractViolation&) {
      continue;
    }
  }
  MPCIOT_REQUIRE(false, what);
  throw std::logic_error("unreachable");
}

namespace {

/// Jittered-grid placement: deterministic for a seed, irregular enough to
/// look like a real deployment, and guaranteed non-degenerate spacing.
std::vector<Position> jittered_grid(std::uint32_t rows, std::uint32_t cols,
                                    std::uint32_t count, double cell_w,
                                    double cell_h, double jitter_frac,
                                    std::uint64_t seed) {
  crypto::Xoshiro256 rng(seed);
  std::vector<Position> pos;
  pos.reserve(count);
  for (std::uint32_t r = 0; r < rows && pos.size() < count; ++r) {
    for (std::uint32_t c = 0; c < cols && pos.size() < count; ++c) {
      const double jx = (rng.next_double() - 0.5) * 2.0 * jitter_frac * cell_w;
      const double jy = (rng.next_double() - 0.5) * 2.0 * jitter_frac * cell_h;
      pos.push_back(Position{(c + 0.5) * cell_w + jx, (r + 0.5) * cell_h + jy});
    }
  }
  return pos;
}

/// FlockLab-specific validation, mirroring dcube_ok: the two
/// basement/attic nodes (ids 24, 25) must reach the office floor
/// comfortably outbound but be hard to cover inbound, and the office
/// core must stay redundantly meshed.
bool flocklab_ok(const Topology& topo) {
  if (topo.diameter() < 3 || topo.diameter() > 6) return false;
  for (NodeId a = 24; a < 26; ++a) {
    double best_out = 0.0;
    double best_in = 0.0;
    std::size_t usable_in = 0;
    for (NodeId nb = 0; nb < topo.size(); ++nb) {
      if (nb == a) continue;
      best_out = std::max(best_out, topo.prr(a, nb));
      const double pin = topo.prr(nb, a);
      best_in = std::max(best_in, pin);
      if (pin >= 0.10) ++usable_in;
    }
    if (best_out < 0.60) return false;
    if (usable_in < 1) return false;
    if (best_in < 0.20 || best_in > 0.60) return false;
  }
  for (NodeId n = 0; n < 24; ++n) {
    std::size_t good = 0;
    for (NodeId nb : topo.neighbors(n)) {
      if (nb < 24 && topo.prr(n, nb) >= 0.6) ++good;
    }
    if (good < 2) return false;
  }
  return true;
}

}  // namespace

Topology flocklab(std::uint64_t seed) {
  // 26 nodes over an office building ~96 m x 36 m: a 24-node office-floor
  // grid plus two nodes in the basement/attic class the real ETH
  // deployment is known for — reachable outbound, noisy inbound (thick
  // concrete + machine rooms), modelled as a 5 dB receiver penalty.
  auto placer = [](std::uint64_t s) {
    std::vector<Position> pos =
        jittered_grid(/*rows=*/4, /*cols=*/6, /*count=*/24,
                      /*cell_w=*/16.0, /*cell_h=*/9.0, /*jitter_frac=*/0.4,
                      s);
    crypto::Xoshiro256 rng(s ^ 0xF10Cul);
    const double w = 6 * 16.0;
    const double h = 4 * 9.0;
    const double off = 9.0;
    const Position spots[2] = {{-off, -off}, {w + off, h + off}};
    for (const Position& c : spots) {
      pos.push_back(Position{c.x + (rng.next_double() - 0.5) * 5.0,
                             c.y + (rng.next_double() - 0.5) * 5.0});
    }
    return pos;
  };
  RadioParams radio;
  std::vector<double> rx_penalty(26, 0.0);
  rx_penalty[24] = 5.0;
  rx_penalty[25] = 5.0;
  return retry_topology(
      "flocklab: could not build a valid topology", 4096,
      [&](std::uint64_t attempt) {
        return Topology(placer(seed + attempt), radio,
                        seed ^ (attempt * 0x9E37u), rx_penalty);
      },
      flocklab_ok);
}

namespace {

/// DCube-specific validation. The four annex nodes (ids 41..44) sit in
/// RF-noisy rooms: their receivers are degraded (directional PRR), so
///  * outbound they must reach the core comfortably (S4 only needs their
///    shares to escape at low NTX), while
///  * inbound they must be genuinely hard to cover (naive full coverage
///    has to fight the noise — §III's long NTX tail).
/// The 41-node core must stay tightly meshed so CT works at low NTX.
bool dcube_ok(const Topology& topo) {
  if (topo.diameter() < 3 || topo.diameter() > 7) return false;
  for (NodeId a = 41; a < 45; ++a) {
    double best_out = 0.0;
    double best_in = 0.0;
    std::size_t usable_in = 0;
    for (NodeId nb = 0; nb < topo.size(); ++nb) {
      if (nb == a) continue;
      best_out = std::max(best_out, topo.prr(a, nb));
      const double pin = topo.prr(nb, a);
      best_in = std::max(best_in, pin);
      if (pin >= 0.10) ++usable_in;
    }
    if (best_out < 0.60) return false;  // shares must escape at low NTX
    if (usable_in < 1) return false;    // annex must not be deaf
    if (best_in < 0.20 || best_in > 0.60) return false;  // hard to cover
  }
  for (NodeId n = 0; n < 41; ++n) {
    std::size_t good = 0;
    for (NodeId nb : topo.neighbors(n)) {
      if (nb < 41 && topo.prr(n, nb) >= 0.6) ++good;
    }
    if (good < 3) return false;
  }
  return true;
}

}  // namespace

Topology dcube(std::uint64_t seed) {
  // 45 nodes: a dense, well-meshed 41-node core over ~78 m x 44 m plus
  // four "annex" nodes in RF-noisy rooms off the corners (the real DCube
  // runs controlled interference — JamLab — during its dependability
  // competitions). Annex receivers see the channel ~5 dB worse, so the
  // core hears them fine (S4's sharing works at NTX = 5) but covering
  // them with the full O(n^2) chain takes a large NTX — exactly the
  // asymmetry §III exploits.
  auto placer = [](std::uint64_t s) {
    std::vector<Position> pos =
        jittered_grid(/*rows=*/5, /*cols=*/9, /*count=*/41,
                      /*cell_w=*/8.7, /*cell_h=*/8.8, /*jitter_frac=*/0.35,
                      s);
    crypto::Xoshiro256 rng(s ^ 0xA22Eul);
    const double w = 9 * 8.7;
    const double h = 5 * 8.8;
    // Annex-to-corner distance ~19 m: a solid link when the receiver is
    // quiet, a struggling one through the annex's local noise.
    const double off = 9.0;
    const Position corners[4] = {{-off, -off},
                                 {w + off, -off},
                                 {-off, h + off},
                                 {w + off, h + off}};
    for (const Position& c : corners) {
      pos.push_back(Position{c.x + (rng.next_double() - 0.5) * 5.0,
                             c.y + (rng.next_double() - 0.5) * 5.0});
    }
    return pos;
  };
  RadioParams radio;
  radio.shadowing_sigma_db = 4.0;
  std::vector<double> rx_penalty(45, 0.0);
  for (NodeId a = 41; a < 45; ++a) rx_penalty[a] = 5.0;
  return retry_topology(
      "dcube: could not build a valid topology", 4096,
      [&](std::uint64_t attempt) {
        return Topology(placer(seed + attempt), radio,
                        seed ^ (attempt * 0x9E37u), rx_penalty);
      },
      dcube_ok);
}

Topology grid(std::uint32_t rows, std::uint32_t cols, double spacing_m,
              std::uint64_t seed, RadioParams radio,
              TopologyOptions options) {
  MPCIOT_REQUIRE(rows * cols >= 2, "grid: need at least 2 nodes");
  std::vector<Position> pos;
  pos.reserve(rows * cols);
  crypto::Xoshiro256 rng(seed);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const double jx = (rng.next_double() - 0.5) * 0.2 * spacing_m;
      const double jy = (rng.next_double() - 0.5) * 0.2 * spacing_m;
      pos.push_back(Position{c * spacing_m + jx, r * spacing_m + jy});
    }
  }
  return Topology(std::move(pos), radio, seed, /*rx_noise_penalty_db=*/{},
                  options);
}

Topology random_uniform(std::uint32_t count, double width_m, double height_m,
                        std::uint64_t seed, RadioParams radio) {
  MPCIOT_REQUIRE(count >= 2, "random_uniform: need at least 2 nodes");
  return retry_topology(
      "random_uniform: could not build connected topology", 256,
      [&](std::uint64_t attempt) {
        crypto::Xoshiro256 rng(seed + attempt);
        std::vector<Position> pos;
        pos.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          pos.push_back(Position{rng.next_double() * width_m,
                                 rng.next_double() * height_m});
        }
        return Topology(std::move(pos), radio, seed + attempt);
      });
}

Topology line(std::uint32_t count, double spacing_m, std::uint64_t seed,
              RadioParams radio) {
  MPCIOT_REQUIRE(count >= 2, "line: need at least 2 nodes");
  std::vector<Position> pos;
  pos.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    pos.push_back(Position{i * spacing_m, 0.0});
  }
  return Topology(std::move(pos), radio, seed);
}

}  // namespace mpciot::net::testbeds
