#include "net/energy.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mpciot::net {

SimTime EnergyMeter::total_radio_on_us() const {
  SimTime total = 0;
  for (std::size_t i = 0; i < rx_us_.size(); ++i) {
    total += rx_us_[i] + tx_us_[i];
  }
  return total;
}

SimTime EnergyMeter::max_radio_on_us() const {
  SimTime best = 0;
  for (std::size_t i = 0; i < rx_us_.size(); ++i) {
    best = std::max(best, rx_us_[i] + tx_us_[i]);
  }
  return best;
}

double EnergyMeter::mean_radio_on_us() const {
  if (rx_us_.empty()) return 0.0;
  return static_cast<double>(total_radio_on_us()) /
         static_cast<double>(rx_us_.size());
}

void EnergyMeter::merge(const EnergyMeter& other) {
  MPCIOT_REQUIRE(other.rx_us_.size() == rx_us_.size(),
                 "EnergyMeter: merging meters of different sizes");
  for (std::size_t i = 0; i < rx_us_.size(); ++i) {
    rx_us_[i] += other.rx_us_[i];
    tx_us_[i] += other.tx_us_[i];
  }
}

}  // namespace mpciot::net
