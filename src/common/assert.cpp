#include "common/assert.hpp"

#include <sstream>

namespace mpciot::detail {

void raise_contract_violation(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw ContractViolation(os.str());
}

}  // namespace mpciot::detail
