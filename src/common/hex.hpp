// Hex encoding/decoding helpers, used by crypto tests (FIPS/RFC vectors)
// and by debug logging.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mpciot {

/// Encode bytes as lowercase hex ("deadbeef").
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Decode a hex string (case-insensitive, optional whitespace between byte
/// pairs). Throws ContractViolation on malformed input.
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace mpciot
