#include "common/hex.hpp"

#include <cctype>

#include "common/assert.hpp"

namespace mpciot {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0F]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  int hi = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      MPCIOT_REQUIRE(hi < 0, "whitespace inside a hex byte pair");
      continue;
    }
    const int v = nibble(c);
    MPCIOT_REQUIRE(v >= 0, "invalid hex character");
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  MPCIOT_REQUIRE(hi < 0, "odd number of hex digits");
  return out;
}

}  // namespace mpciot
