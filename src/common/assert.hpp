// Lightweight contract checking for mpciot.
//
// MPCIOT_REQUIRE / MPCIOT_ENSURE throw `mpciot::ContractViolation` so that
// precondition failures are testable (gtest EXPECT_THROW) instead of
// aborting the process. MPCIOT_DCHECK compiles out in release builds and is
// meant for internal invariants on hot paths.
#pragma once

#include <stdexcept>
#include <string>

namespace mpciot {

/// Thrown when a documented precondition or postcondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void raise_contract_violation(const char* kind, const char* expr,
                                           const char* file, int line,
                                           const std::string& msg);
}  // namespace detail

}  // namespace mpciot

#define MPCIOT_REQUIRE(expr, msg)                                              \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::mpciot::detail::raise_contract_violation("precondition", #expr,        \
                                                 __FILE__, __LINE__, (msg));   \
    }                                                                          \
  } while (false)

#define MPCIOT_ENSURE(expr, msg)                                               \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::mpciot::detail::raise_contract_violation("postcondition", #expr,       \
                                                 __FILE__, __LINE__, (msg));   \
    }                                                                          \
  } while (false)

#ifdef NDEBUG
#define MPCIOT_DCHECK(expr, msg) \
  do {                           \
  } while (false)
#else
#define MPCIOT_DCHECK(expr, msg) MPCIOT_REQUIRE(expr, msg)
#endif
