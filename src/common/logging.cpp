#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace mpciot {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace mpciot
