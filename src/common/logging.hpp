// Minimal leveled logger. Disabled (Warn) by default so simulations stay
// quiet; examples flip it to Info for narrative output.
#pragma once

#include <sstream>
#include <string>

namespace mpciot {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace mpciot

#define MPCIOT_LOG(level, stream_expr)                          \
  do {                                                          \
    if (static_cast<int>(level) >=                              \
        static_cast<int>(::mpciot::log_level())) {              \
      std::ostringstream mpciot_log_os;                         \
      mpciot_log_os << stream_expr;                             \
      ::mpciot::detail::log_emit(level, mpciot_log_os.str());   \
    }                                                           \
  } while (false)

#define MPCIOT_LOG_DEBUG(s) MPCIOT_LOG(::mpciot::LogLevel::Debug, s)
#define MPCIOT_LOG_INFO(s) MPCIOT_LOG(::mpciot::LogLevel::Info, s)
#define MPCIOT_LOG_WARN(s) MPCIOT_LOG(::mpciot::LogLevel::Warn, s)
#define MPCIOT_LOG_ERROR(s) MPCIOT_LOG(::mpciot::LogLevel::Error, s)
