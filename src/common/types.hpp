// Fundamental vocabulary types shared across the library.
#pragma once

#include <cstdint>
#include <vector>

namespace mpciot {

/// Identifier of a node in the network. Node ids are dense, 0-based.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Simulated time in microseconds. Signed so durations subtract safely.
using SimTime = std::int64_t;

/// One microsecond tick helpers.
inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * 1000;

/// Raw byte buffer used for packets/ciphertexts.
using Bytes = std::vector<std::uint8_t>;

}  // namespace mpciot
