#include "crypto/aes_ctr.hpp"

#include "common/assert.hpp"

namespace mpciot::crypto {

namespace {
void increment_be(Aes128::Block& ctr) {
  for (std::size_t i = ctr.size(); i-- > 0;) {
    if (++ctr[i] != 0) break;
  }
}

void put_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
}  // namespace

void AesCtr::crypt(const Nonce& nonce, std::span<const std::uint8_t> data,
                   std::span<std::uint8_t> out) const {
  MPCIOT_REQUIRE(out.size() >= data.size(), "AesCtr: output too small");
  Aes128::Block counter = nonce;
  Aes128::Block keystream{};
  std::size_t off = 0;
  while (off < data.size()) {
    cipher_.encrypt_block(
        std::span<const std::uint8_t, Aes128::kBlockSize>{counter},
        std::span<std::uint8_t, Aes128::kBlockSize>{keystream});
    const std::size_t chunk =
        std::min<std::size_t>(Aes128::kBlockSize, data.size() - off);
    for (std::size_t i = 0; i < chunk; ++i) {
      out[off + i] = static_cast<std::uint8_t>(data[off + i] ^ keystream[i]);
    }
    increment_be(counter);
    off += chunk;
  }
}

std::vector<std::uint8_t> AesCtr::crypt(
    const Nonce& nonce, std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> out(data.size());
  crypt(nonce, data, out);
  return out;
}

AesCtr::Nonce AesCtr::make_nonce(std::uint32_t sender, std::uint32_t receiver,
                                 std::uint32_t round, std::uint32_t sequence) {
  Nonce n{};
  put_be32(n.data() + 0, sender);
  put_be32(n.data() + 4, receiver);
  put_be32(n.data() + 8, round);
  put_be32(n.data() + 12, sequence);
  return n;
}

}  // namespace mpciot::crypto
