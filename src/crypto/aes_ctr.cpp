#include "crypto/aes_ctr.hpp"

#include <array>
#include <cstring>

#include "common/assert.hpp"

namespace mpciot::crypto {

namespace {
void increment_be(Aes128::Block& ctr) {
  for (std::size_t i = ctr.size(); i-- > 0;) {
    if (++ctr[i] != 0) break;
  }
}

void put_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
}  // namespace

void AesCtr::crypt(const Nonce& nonce, std::span<const std::uint8_t> data,
                   std::span<std::uint8_t> out) const {
  MPCIOT_REQUIRE(out.size() >= data.size(), "AesCtr: output too small");
  // Materialise a batch of counter blocks and push them through the
  // cipher in one encrypt_blocks call (8-wide AES-NI interleave when
  // available). CTR's counters are known upfront — the mode has no
  // feedback — so batching changes nothing about the keystream: same
  // per-block big-endian increment, same bytes out.
  constexpr std::size_t kBatchBlocks = 8;
  std::array<std::uint8_t, kBatchBlocks * Aes128::kBlockSize> counters;
  std::array<std::uint8_t, kBatchBlocks * Aes128::kBlockSize> keystream;
  Aes128::Block counter = nonce;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t want = data.size() - off;
    const std::size_t nblocks = std::min<std::size_t>(
        kBatchBlocks, (want + Aes128::kBlockSize - 1) / Aes128::kBlockSize);
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::memcpy(counters.data() + Aes128::kBlockSize * b, counter.data(),
                  Aes128::kBlockSize);
      increment_be(counter);
    }
    cipher_.encrypt_blocks(counters.data(), keystream.data(), nblocks);
    const std::size_t chunk =
        std::min<std::size_t>(nblocks * Aes128::kBlockSize, want);
    for (std::size_t i = 0; i < chunk; ++i) {
      out[off + i] = static_cast<std::uint8_t>(data[off + i] ^ keystream[i]);
    }
    off += chunk;
  }
}

std::vector<std::uint8_t> AesCtr::crypt(
    const Nonce& nonce, std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> out(data.size());
  crypt(nonce, data, out);
  return out;
}

AesCtr::Nonce AesCtr::make_nonce(std::uint32_t sender, std::uint32_t receiver,
                                 std::uint32_t round, std::uint32_t sequence) {
  Nonce n{};
  put_be32(n.data() + 0, sender);
  put_be32(n.data() + 4, receiver);
  put_be32(n.data() + 8, round);
  put_be32(n.data() + 12, sequence);
  return n;
}

}  // namespace mpciot::crypto
