// Feldman verifiable secret sharing (Feldman, FOCS 1987) layered on the
// Shamir dealing in core::shamir.
//
// A dealer with polynomial P(x) = a_0 + a_1 x + ... + a_k x^k publishes
// the commitment vector C_j = g^{a_j} in a group where discrete log is
// hard. Any holder of the share y = P(x) checks
//
//   g^y  ==  C_0 * C_1^x * C_2^{x^2} * ... * C_k^{x^k}
//
// (Horner in the exponent), which holds iff y really is P(x): a cheating
// dealer that hands out a value off its committed polynomial is caught
// at share-accept time, before the bad share ever poisons a holder sum.
// The commitments are additively homomorphic — componentwise products
// commit to the sum polynomial — so the same check verifies the
// aggregated point-sums the reconstruction phase floods.
//
// Group: shares live in Fp61 (p = 2^61 - 1), so exponents are mod p and
// the commitment group must have order exactly p. No 64-bit prime
// q = h*p + 1 exists (h in {2, 4, 6} are the only cofactors that fit,
// none of which gives a prime), so we use the order-p subgroup of Z_q^*
// for the 127-bit prime q = h*p + 1, h = 73786976294838206446, with
// generator g = 2^h mod q. Elements are 16 bytes on the wire; arithmetic
// is fixed-width Montgomery multiplication on unsigned __int128 (no
// heap, constant-time-shaped), fast enough to verify every share of
// every simulated round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "field/fp61.hpp"
#include "field/polynomial.hpp"

namespace mpciot::crypto::feldman {

/// An element of the order-p subgroup of Z_q^*, in canonical (non-
/// Montgomery) representation: value = hi * 2^64 + lo, 0 < value < q.
struct GroupElement {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const GroupElement&, const GroupElement&) = default;
};

/// The subgroup generator g (order exactly p = Fp61::kModulus).
GroupElement generator();

/// g^e for e in [0, p).
GroupElement power_of_g(field::Fp61 e);

/// a * b in the group.
GroupElement mul(const GroupElement& a, const GroupElement& b);

/// a^e for a 64-bit exponent.
GroupElement pow(const GroupElement& a, std::uint64_t e);

/// Membership test: 0 < v < q and v^p == 1 (one 61-bit exponentiation;
/// used by deserializers and tests, not by the verify hot path).
bool in_group(const GroupElement& v);

/// Commitment to one dealer polynomial: element j is g^{coeffs[j]},
/// low-degree-first, exactly degree+1 elements.
struct Commitment {
  /// Wire bytes per element (two big-endian u64 words).
  static constexpr std::size_t kElementBytes = 16;

  std::vector<GroupElement> elements;

  std::size_t degree() const { return elements.size() - 1; }
  /// On-air size when attached to a sharing packet.
  std::size_t wire_size() const {
    return elements.size() * kElementBytes;
  }

  friend bool operator==(const Commitment&, const Commitment&) = default;
};

/// Commit to a dealer polynomial. Precondition: poly not zero.
Commitment commit(const field::Polynomial& poly);

/// Verify that `share` is the committed polynomial's value at point `x`
/// (for core::shamir, x = public_point(holder)).
bool verify_share(const Commitment& commitment, field::Fp61 x,
                  field::Fp61 share);

/// Montgomery-form cache of one commitment for verifying many shares
/// against the same dealer. verify_share converts every element to
/// Montgomery form on each call; a round that checks one dealer's
/// commitment at every holder point repeats those conversions k+1 times
/// per holder. The context converts once and replays the identical
/// Horner-in-the-exponent check, so verdicts match verify_share exactly.
class VerifyContext {
 public:
  VerifyContext() = default;
  explicit VerifyContext(const Commitment& commitment);

  /// Same result as verify_share(commitment, x, share).
  bool verify(field::Fp61 x, field::Fp61 share) const;

  bool empty() const { return mont_elements_.empty(); }

 private:
  // Commitment elements in Montgomery form (GroupElement reused as a
  // plain hi/lo pair; these are NOT canonical representatives).
  std::vector<GroupElement> mont_elements_;
};

/// Componentwise product: the commitment to the sum of the committed
/// polynomials. Precondition: all commitments present, equal degree.
Commitment combine(const std::vector<const Commitment*>& parts);

/// Big-endian serialization (kElementBytes per element), the layout the
/// sharing packets would carry.
std::vector<std::uint8_t> serialize(const Commitment& commitment);

/// Parse + validate: size a positive multiple of kElementBytes and every
/// element a member of the subgroup. Returns an empty commitment (no
/// elements) on any malformed input.
Commitment deserialize(const std::uint8_t* data, std::size_t size);

}  // namespace mpciot::crypto::feldman
