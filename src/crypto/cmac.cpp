#include "crypto/cmac.hpp"

#include <cstring>

namespace mpciot::crypto {

namespace {
// Left-shift a 128-bit value by one bit and conditionally XOR Rb = 0x87,
// as specified by the CMAC subkey generation algorithm.
Aes128::Block shift_xor_rb(const Aes128::Block& in) {
  Aes128::Block out{};
  std::uint8_t carry = 0;
  for (std::size_t i = in.size(); i-- > 0;) {
    out[i] = static_cast<std::uint8_t>((in[i] << 1) | carry);
    carry = static_cast<std::uint8_t>(in[i] >> 7);
  }
  if (carry) out[15] = static_cast<std::uint8_t>(out[15] ^ 0x87);
  return out;
}
}  // namespace

Cmac::Cmac(const Aes128::Key& key) : cipher_(key) {
  Aes128::Block zero{};
  const Aes128::Block l = cipher_.encrypt_block(zero);
  k1_ = shift_xor_rb(l);
  k2_ = shift_xor_rb(k1_);
}

Cmac::Tag Cmac::compute(std::span<const std::uint8_t> message) const {
  const std::size_t n = message.size();
  const std::size_t full_blocks = n / Aes128::kBlockSize;
  const std::size_t rem = n % Aes128::kBlockSize;
  const bool last_complete = (n != 0) && (rem == 0);
  const std::size_t head_blocks =
      last_complete ? full_blocks - 1 : full_blocks;

  Aes128::Block x{};
  for (std::size_t b = 0; b < head_blocks; ++b) {
    for (std::size_t i = 0; i < Aes128::kBlockSize; ++i) {
      x[i] = static_cast<std::uint8_t>(
          x[i] ^ message[b * Aes128::kBlockSize + i]);
    }
    x = cipher_.encrypt_block(x);
  }

  Aes128::Block last{};
  if (last_complete) {
    std::memcpy(last.data(), message.data() + head_blocks * Aes128::kBlockSize,
                Aes128::kBlockSize);
    for (std::size_t i = 0; i < last.size(); ++i) {
      last[i] = static_cast<std::uint8_t>(last[i] ^ k1_[i]);
    }
  } else {
    const std::size_t tail = n - head_blocks * Aes128::kBlockSize;
    if (tail > 0) {
      std::memcpy(last.data(), message.data() + head_blocks * Aes128::kBlockSize,
                  tail);
    }
    last[tail] = 0x80;  // 10* padding
    for (std::size_t i = 0; i < last.size(); ++i) {
      last[i] = static_cast<std::uint8_t>(last[i] ^ k2_[i]);
    }
  }

  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<std::uint8_t>(x[i] ^ last[i]);
  }
  return cipher_.encrypt_block(x);
}

bool Cmac::verify(const Tag& a, const Tag& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = static_cast<std::uint8_t>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

}  // namespace mpciot::crypto
