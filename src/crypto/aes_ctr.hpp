// AES-128 in counter (CTR) mode, per NIST SP 800-38A.
//
// CTR keeps ciphertext exactly as long as plaintext — the property the
// paper's sharing phase relies on to keep MiniCast sub-slot airtime fixed.
// The counter block is a 16-byte big-endian value incremented per block.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes128.hpp"

namespace mpciot::crypto {

class AesCtr {
 public:
  using Nonce = Aes128::Block;

  explicit AesCtr(const Aes128::Key& key) : cipher_(key) {}

  /// XOR `data` with the AES-CTR keystream for (nonce). Encryption and
  /// decryption are the same operation. `out` may alias `data`.
  void crypt(const Nonce& nonce, std::span<const std::uint8_t> data,
             std::span<std::uint8_t> out) const;

  /// Convenience: returns a fresh buffer.
  std::vector<std::uint8_t> crypt(const Nonce& nonce,
                                  std::span<const std::uint8_t> data) const;

  /// Build a nonce from a (sender, receiver, round, sequence) tuple — the
  /// per-share uniqueness discipline used by the protocols so no (key,
  /// nonce) pair ever repeats across rounds.
  static Nonce make_nonce(std::uint32_t sender, std::uint32_t receiver,
                          std::uint32_t round, std::uint32_t sequence);

 private:
  Aes128 cipher_;
};

}  // namespace mpciot::crypto
