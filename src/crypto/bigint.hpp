// Arbitrary-precision unsigned integers.
//
// Built to support the Paillier homomorphic-encryption baseline the paper
// argues against in §I ("most existing PPDA solutions rely on highly
// computation-intensive Homomorphic Encryption"). Magnitude-only (no
// sign); 32-bit limbs, little-endian limb order; division is Knuth
// Algorithm D. Throughput is deliberately plain-C — representative of
// what an IoT-class MCU without a bignum accelerator would run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mpciot::crypto {

class BigInt;

/// Quotient and remainder of a BigInt division (defined after BigInt —
/// a nested struct cannot hold members of the still-incomplete class).
struct BigIntDivMod;

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a 64-bit value.
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor) — numeric literal ergonomics

  /// Parse from decimal ("12345") or hex with 0x prefix ("0xffa3").
  static BigInt from_string(std::string_view text);
  static BigInt from_hex(std::string_view hex);

  /// Random value with exactly `bits` bits (msb set). `draw` must return
  /// uniform 64-bit values.
  template <typename Rng>
  static BigInt random_bits(std::size_t bits, Rng& rng);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  /// Low 64 bits (for converting small results back to machine ints).
  std::uint64_t to_u64() const;

  std::string to_decimal_string() const;
  std::string to_hex_string() const;

  // Comparisons.
  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return !(a == b); }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return cmp(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return cmp(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return cmp(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return cmp(a, b) >= 0;
  }

  // Arithmetic (magnitude; operator- requires a >= b).
  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }

  friend BigInt operator<<(const BigInt& a, std::size_t bits);
  friend BigInt operator>>(const BigInt& a, std::size_t bits);

  /// Quotient and remainder in one pass. Precondition: divisor non-zero.
  static BigIntDivMod divmod(const BigInt& num, const BigInt& den);

  /// (a * b) mod m.
  static BigInt mulmod(const BigInt& a, const BigInt& b, const BigInt& m);

  /// base^exp mod m (square-and-multiply). Precondition: m non-zero.
  static BigInt powmod(const BigInt& base, const BigInt& exp, const BigInt& m);

  static BigInt gcd(BigInt a, BigInt b);
  static BigInt lcm(const BigInt& a, const BigInt& b);

  /// Modular inverse of a mod m; returns zero BigInt if gcd(a, m) != 1.
  static BigInt modinv(const BigInt& a, const BigInt& m);

  /// Miller-Rabin probabilistic primality, `rounds` random bases drawn
  /// from `rng`. Error probability <= 4^-rounds.
  template <typename Rng>
  static bool is_probable_prime(const BigInt& n, int rounds, Rng& rng);

  /// Random prime with exactly `bits` bits.
  template <typename Rng>
  static BigInt random_prime(std::size_t bits, Rng& rng, int mr_rounds = 24);

  const std::vector<std::uint32_t>& limbs() const { return limbs_; }

 private:
  static int cmp(const BigInt& a, const BigInt& b);
  void trim();

  // Little-endian 32-bit limbs; empty means zero; top limb nonzero.
  std::vector<std::uint32_t> limbs_;
};

std::ostream& operator<<(std::ostream& os, const BigInt& v);

struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

// ---- templates ----

template <typename Rng>
BigInt BigInt::random_bits(std::size_t bits, Rng& rng) {
  if (bits == 0) return BigInt{};
  BigInt out;
  const std::size_t limb_count = (bits + 31) / 32;
  out.limbs_.resize(limb_count);
  for (std::size_t i = 0; i < limb_count; i += 2) {
    const std::uint64_t v = rng.next_u64();
    out.limbs_[i] = static_cast<std::uint32_t>(v);
    if (i + 1 < limb_count) {
      out.limbs_[i + 1] = static_cast<std::uint32_t>(v >> 32);
    }
  }
  const std::size_t top_bit = (bits - 1) % 32;
  // Clear above the requested width, then force the msb so the width is
  // exact.
  out.limbs_.back() &= (top_bit == 31)
                           ? 0xFFFFFFFFu
                           : ((std::uint32_t{1} << (top_bit + 1)) - 1);
  out.limbs_.back() |= (std::uint32_t{1} << top_bit);
  out.trim();
  return out;
}

template <typename Rng>
bool BigInt::is_probable_prime(const BigInt& n, int rounds, Rng& rng) {
  if (n < BigInt{2}) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull, 41ull, 43ull}) {
    const BigInt bp{p};
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  // n - 1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt{1};
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  const std::size_t nbits = n.bit_length();
  for (int round = 0; round < rounds; ++round) {
    // Uniform-ish base in [2, n-2]: draw nbits and reduce.
    BigInt a = random_bits(nbits, rng) % n;
    if (a < BigInt{2}) a = BigInt{2};
    BigInt x = powmod(a, d, n);
    if (x == BigInt{1} || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = mulmod(x, x, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

template <typename Rng>
BigInt BigInt::random_prime(std::size_t bits, Rng& rng, int mr_rounds) {
  for (;;) {
    BigInt candidate = random_bits(bits, rng);
    if (!candidate.is_odd()) candidate += BigInt{1};
    if (is_probable_prime(candidate, mr_rounds, rng)) return candidate;
  }
}

}  // namespace mpciot::crypto
