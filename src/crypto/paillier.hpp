// Paillier additively-homomorphic encryption.
//
// This is the computation-intensive PPDA baseline the paper's introduction
// argues is unsuitable for IoT-class hardware. We implement the standard
// scheme with g = n + 1:
//   KeyGen: n = p*q, lambda = lcm(p-1, q-1), mu = lambda^-1 mod n
//   Enc(m; r) = (1 + m*n) * r^n mod n^2
//   Dec(c)    = L(c^lambda mod n^2) * mu mod n,  L(x) = (x-1)/n
//   Add(c1,c2) = c1*c2 mod n^2  (ciphertext product = plaintext sum)
//
// Key sizes here (256-2048 bit n) are a *benchmark knob*, not a security
// recommendation; bench_he_vs_mpc sweeps them to chart the compute gap
// versus Shamir shares.
#pragma once

#include <cstdint>

#include "crypto/bigint.hpp"
#include "crypto/prng.hpp"

namespace mpciot::crypto {

struct PaillierPublicKey {
  BigInt n;
  BigInt n_squared;
};

struct PaillierPrivateKey {
  BigInt lambda;
  BigInt mu;
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

class Paillier {
 public:
  /// Generate a key pair with an n of roughly `modulus_bits` bits.
  /// Precondition: modulus_bits >= 64 and even.
  static PaillierKeyPair generate(std::size_t modulus_bits, Xoshiro256& rng);

  /// Encrypt m (< n) under pub with fresh randomness from rng.
  static BigInt encrypt(const PaillierPublicKey& pub, const BigInt& m,
                        Xoshiro256& rng);

  /// Decrypt a ciphertext.
  static BigInt decrypt(const PaillierPublicKey& pub,
                        const PaillierPrivateKey& priv, const BigInt& c);

  /// Homomorphic addition: Dec(add(c1, c2)) == Dec(c1) + Dec(c2) mod n.
  static BigInt add(const PaillierPublicKey& pub, const BigInt& c1,
                    const BigInt& c2);

  /// Homomorphic scalar multiply: Dec(scale(c, k)) == k * Dec(c) mod n.
  static BigInt scale(const PaillierPublicKey& pub, const BigInt& c,
                      const BigInt& k);
};

}  // namespace mpciot::crypto
