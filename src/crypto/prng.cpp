#include "crypto/prng.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace mpciot::crypto {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream_tag,
                          std::uint64_t index) {
  std::uint64_t state = base;
  state = splitmix64(state) ^ stream_tag;
  state = splitmix64(state) ^ index;
  return splitmix64(state);
}

namespace {
std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Xoshiro256::next_u64() {
  const std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  MPCIOT_REQUIRE(bound > 0, "next_below: bound must be positive");
  // Rejection sampling over the largest multiple of bound.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double Xoshiro256::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

field::Fp61 Xoshiro256::next_fp61() {
  // Draw 61 bits; reject the single out-of-range value p (= 2^61 - 1).
  std::uint64_t v;
  do {
    v = next_u64() >> 3;
  } while (v >= field::Fp61::kModulus);
  return field::Fp61{v};
}

bool Xoshiro256::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

CtrDrbg::CtrDrbg(const Aes128::Key& seed_key, std::uint64_t personalization)
    : cipher_(seed_key) {
  for (int i = 0; i < 8; ++i) {
    counter_[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(personalization >> (56 - 8 * i));
  }
}

CtrDrbg::CtrDrbg(std::uint64_t seed, std::uint64_t personalization)
    : CtrDrbg(
          [&] {
            Aes128::Key key{};
            std::uint64_t sm = seed;
            const std::uint64_t a = splitmix64(sm);
            const std::uint64_t b = splitmix64(sm);
            std::memcpy(key.data(), &a, 8);
            std::memcpy(key.data() + 8, &b, 8);
            return key;
          }(),
          personalization) {}

void CtrDrbg::fill(std::uint8_t* out, std::size_t len) {
  while (len > 0) {
    if (buffered_ == 0 && len >= Aes128::kBlockSize) {
      // Bulk path: write whole keystream blocks straight into `out`,
      // batched through encrypt_blocks (8-wide AES-NI interleave when
      // available). Same counter sequence and same bytes as the
      // one-block path below — only the staging buffer is skipped.
      constexpr std::size_t kBatchBlocks = 8;
      std::uint8_t counters[kBatchBlocks * Aes128::kBlockSize];
      const std::size_t nblocks =
          std::min<std::size_t>(kBatchBlocks, len / Aes128::kBlockSize);
      for (std::size_t b = 0; b < nblocks; ++b) {
        std::memcpy(counters + Aes128::kBlockSize * b, counter_.data(),
                    counter_.size());
        for (std::size_t i = counter_.size(); i-- > 8;) {
          if (++counter_[i] != 0) break;
        }
      }
      cipher_.encrypt_blocks(counters, out, nblocks);
      out += nblocks * Aes128::kBlockSize;
      len -= nblocks * Aes128::kBlockSize;
      continue;
    }
    if (buffered_ == 0) {
      // Encrypt the counter block, then bump the low 64 bits.
      buffer_ = cipher_.encrypt_block(counter_);
      for (std::size_t i = counter_.size(); i-- > 8;) {
        if (++counter_[i] != 0) break;
      }
      buffered_ = buffer_.size();
    }
    const std::size_t take = std::min(len, buffered_);
    const std::size_t offset = buffer_.size() - buffered_;
    std::memcpy(out, buffer_.data() + offset, take);
    buffered_ -= take;
    out += take;
    len -= take;
  }
}

std::uint64_t CtrDrbg::next_u64() {
  std::uint8_t bytes[8];
  fill(bytes, sizeof bytes);
  // Little-endian interpretation of the keystream bytes (not a memcpy
  // into a host integer): heterogeneous hosts seeded identically must
  // draw identical u64s, or distributed dealers would disagree with the
  // simulator. Identical to the historic memcpy on little-endian hosts.
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return v;
}

std::uint64_t CtrDrbg::next_below(std::uint64_t bound) {
  MPCIOT_REQUIRE(bound > 0, "next_below: bound must be positive");
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

field::Fp61 CtrDrbg::next_fp61() {
  std::uint64_t v;
  do {
    v = next_u64() >> 3;
  } while (v >= field::Fp61::kModulus);
  return field::Fp61{v};
}

}  // namespace mpciot::crypto
