#include "crypto/paillier.hpp"

#include "common/assert.hpp"

namespace mpciot::crypto {

PaillierKeyPair Paillier::generate(std::size_t modulus_bits,
                                   Xoshiro256& rng) {
  MPCIOT_REQUIRE(modulus_bits >= 64 && modulus_bits % 2 == 0,
                 "Paillier: modulus_bits must be even and >= 64");
  const std::size_t prime_bits = modulus_bits / 2;
  for (;;) {
    const BigInt p = BigInt::random_prime(prime_bits, rng);
    const BigInt q = BigInt::random_prime(prime_bits, rng);
    if (p == q) continue;
    const BigInt n = p * q;
    // Require gcd(n, (p-1)(q-1)) == 1 (holds for equal-length primes).
    const BigInt p1 = p - BigInt{1};
    const BigInt q1 = q - BigInt{1};
    if (BigInt::gcd(n, p1 * q1) != BigInt{1}) continue;
    const BigInt lambda = BigInt::lcm(p1, q1);
    const BigInt mu = BigInt::modinv(lambda % n, n);
    if (mu.is_zero()) continue;
    PaillierKeyPair kp;
    kp.pub.n = n;
    kp.pub.n_squared = n * n;
    kp.priv.lambda = lambda;
    kp.priv.mu = mu;
    return kp;
  }
}

BigInt Paillier::encrypt(const PaillierPublicKey& pub, const BigInt& m,
                         Xoshiro256& rng) {
  MPCIOT_REQUIRE(m < pub.n, "Paillier: plaintext must be < n");
  // r uniform in [1, n) with gcd(r, n) == 1.
  BigInt r;
  do {
    r = BigInt::random_bits(pub.n.bit_length(), rng) % pub.n;
  } while (r.is_zero() || BigInt::gcd(r, pub.n) != BigInt{1});
  // (1 + m*n) mod n^2 avoids a full powmod for the g^m term (g = n+1).
  const BigInt gm = (BigInt{1} + m * pub.n) % pub.n_squared;
  const BigInt rn = BigInt::powmod(r, pub.n, pub.n_squared);
  return BigInt::mulmod(gm, rn, pub.n_squared);
}

BigInt Paillier::decrypt(const PaillierPublicKey& pub,
                         const PaillierPrivateKey& priv, const BigInt& c) {
  MPCIOT_REQUIRE(c < pub.n_squared, "Paillier: ciphertext out of range");
  const BigInt x = BigInt::powmod(c, priv.lambda, pub.n_squared);
  const BigInt l = (x - BigInt{1}) / pub.n;
  return BigInt::mulmod(l, priv.mu, pub.n);
}

BigInt Paillier::add(const PaillierPublicKey& pub, const BigInt& c1,
                     const BigInt& c2) {
  return BigInt::mulmod(c1, c2, pub.n_squared);
}

BigInt Paillier::scale(const PaillierPublicKey& pub, const BigInt& c,
                       const BigInt& k) {
  return BigInt::powmod(c, k, pub.n_squared);
}

}  // namespace mpciot::crypto
