#include "crypto/aes128.hpp"

#include <cstring>

namespace mpciot::crypto {

namespace {

// --- GF(2^8) arithmetic modulo the AES polynomial x^8+x^4+x^3+x+1 ---

constexpr std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1B : 0x00));
}

constexpr std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) result ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return result;
}

// a^254 == a^-1 in GF(2^8)* (and maps 0 -> 0, as FIPS-197 requires).
constexpr std::uint8_t ginv(std::uint8_t a) {
  std::uint8_t result = 1;
  std::uint8_t acc = a;
  int e = 254;
  while (e) {
    if (e & 1) result = gmul(result, acc);
    acc = gmul(acc, acc);
    e >>= 1;
  }
  return result;
}

constexpr std::uint8_t rotl8(std::uint8_t x, int n) {
  return static_cast<std::uint8_t>((x << n) | (x >> (8 - n)));
}

constexpr std::uint8_t affine(std::uint8_t x) {
  return static_cast<std::uint8_t>(x ^ rotl8(x, 1) ^ rotl8(x, 2) ^
                                   rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63);
}

struct SboxTables {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};
};

constexpr SboxTables make_sboxes() {
  SboxTables t{};
  for (int i = 0; i < 256; ++i) {
    const auto s = affine(ginv(static_cast<std::uint8_t>(i)));
    t.fwd[static_cast<std::size_t>(i)] = s;
    t.inv[s] = static_cast<std::uint8_t>(i);
  }
  return t;
}

constexpr SboxTables kSbox = make_sboxes();

// Round constants for AES-128 key expansion.
constexpr std::array<std::uint8_t, 10> kRcon = {0x01, 0x02, 0x04, 0x08, 0x10,
                                                0x20, 0x40, 0x80, 0x1B, 0x36};

using State = std::array<std::uint8_t, 16>;  // column-major, FIPS order

void add_round_key(State& s, const std::uint8_t* rk) {
  for (int i = 0; i < 16; ++i) s[static_cast<std::size_t>(i)] ^= rk[i];
}

void sub_bytes(State& s) {
  for (auto& b : s) b = kSbox.fwd[b];
}

void inv_sub_bytes(State& s) {
  for (auto& b : s) b = kSbox.inv[b];
}

// State layout: s[4*c + r] is row r, column c (matches the byte order of
// the input block: block[i] -> s[i]).
void shift_rows(State& s) {
  State t = s;
  for (int c = 0; c < 4; ++c) {
    for (int r = 1; r < 4; ++r) {
      s[static_cast<std::size_t>(4 * c + r)] =
          t[static_cast<std::size_t>(4 * ((c + r) % 4) + r)];
    }
  }
}

void inv_shift_rows(State& s) {
  State t = s;
  for (int c = 0; c < 4; ++c) {
    for (int r = 1; r < 4; ++r) {
      s[static_cast<std::size_t>(4 * ((c + r) % 4) + r)] =
          t[static_cast<std::size_t>(4 * c + r)];
    }
  }
}

void mix_columns(State& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s.data() + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void inv_mix_columns(State& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s.data() + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gmul(a0, 0x0E) ^ gmul(a1, 0x0B) ^
                                       gmul(a2, 0x0D) ^ gmul(a3, 0x09));
    col[1] = static_cast<std::uint8_t>(gmul(a0, 0x09) ^ gmul(a1, 0x0E) ^
                                       gmul(a2, 0x0B) ^ gmul(a3, 0x0D));
    col[2] = static_cast<std::uint8_t>(gmul(a0, 0x0D) ^ gmul(a1, 0x09) ^
                                       gmul(a2, 0x0E) ^ gmul(a3, 0x0B));
    col[3] = static_cast<std::uint8_t>(gmul(a0, 0x0B) ^ gmul(a1, 0x0D) ^
                                       gmul(a2, 0x09) ^ gmul(a3, 0x0E));
  }
}

}  // namespace

std::uint8_t Aes128::sbox(std::uint8_t x) { return kSbox.fwd[x]; }
std::uint8_t Aes128::inv_sbox(std::uint8_t x) { return kSbox.inv[x]; }

Aes128::Aes128(const Key& key) {
  // FIPS-197 key expansion, word-oriented (4 bytes per word).
  std::memcpy(round_keys_.data(), key.data(), kKeySize);
  for (int i = 4; i < 4 * (kRounds + 1); ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + 4 * (i - 1), 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox.fwd[temp[1]] ^
                                          kRcon[static_cast<std::size_t>(i / 4 - 1)]);
      temp[1] = kSbox.fwd[temp[2]];
      temp[2] = kSbox.fwd[temp[3]];
      temp[3] = kSbox.fwd[t0];
    }
    for (int b = 0; b < 4; ++b) {
      round_keys_[static_cast<std::size_t>(4 * i + b)] =
          static_cast<std::uint8_t>(round_keys_[static_cast<std::size_t>(4 * (i - 4) + b)] ^ temp[b]);
    }
  }
}

void Aes128::encrypt_block(std::span<const std::uint8_t, kBlockSize> in,
                           std::span<std::uint8_t, kBlockSize> out) const {
  State s;
  std::memcpy(s.data(), in.data(), kBlockSize);
  add_round_key(s, round_keys_.data());
  for (int round = 1; round < kRounds; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, round_keys_.data() + 16 * round);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, round_keys_.data() + 16 * kRounds);
  std::memcpy(out.data(), s.data(), kBlockSize);
}

void Aes128::decrypt_block(std::span<const std::uint8_t, kBlockSize> in,
                           std::span<std::uint8_t, kBlockSize> out) const {
  State s;
  std::memcpy(s.data(), in.data(), kBlockSize);
  add_round_key(s, round_keys_.data() + 16 * kRounds);
  for (int round = kRounds - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, round_keys_.data() + 16 * round);
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, round_keys_.data());
  std::memcpy(out.data(), s.data(), kBlockSize);
}

Aes128::Block Aes128::encrypt_block(const Block& in) const {
  Block out{};
  encrypt_block(std::span<const std::uint8_t, kBlockSize>{in},
                std::span<std::uint8_t, kBlockSize>{out});
  return out;
}

Aes128::Block Aes128::decrypt_block(const Block& in) const {
  Block out{};
  decrypt_block(std::span<const std::uint8_t, kBlockSize>{in},
                std::span<std::uint8_t, kBlockSize>{out});
  return out;
}

}  // namespace mpciot::crypto
