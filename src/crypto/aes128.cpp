#include "crypto/aes128.hpp"

#include <atomic>
#include <cstring>

// The AES-NI kernels are compiled whenever the build enables CTAGG_SIMD
// on an x86-64 GCC/Clang toolchain (per-function target attributes, so
// no TU-wide -maes flag) and selected at runtime iff the CPU reports
// the AES extension. aesenc/aesenclast compute exactly the FIPS-197
// SubBytes+ShiftRows+MixColumns+AddRoundKey composition, so ciphertext
// is bit-identical to the byte-oriented core.
#if defined(CTAGG_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CTAGG_HAVE_AESNI_KERNELS 1
#include <immintrin.h>
#endif

namespace mpciot::crypto {

namespace {

// --- GF(2^8) arithmetic modulo the AES polynomial x^8+x^4+x^3+x+1 ---

constexpr std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1B : 0x00));
}

constexpr std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) result ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return result;
}

// a^254 == a^-1 in GF(2^8)* (and maps 0 -> 0, as FIPS-197 requires).
constexpr std::uint8_t ginv(std::uint8_t a) {
  std::uint8_t result = 1;
  std::uint8_t acc = a;
  int e = 254;
  while (e) {
    if (e & 1) result = gmul(result, acc);
    acc = gmul(acc, acc);
    e >>= 1;
  }
  return result;
}

constexpr std::uint8_t rotl8(std::uint8_t x, int n) {
  return static_cast<std::uint8_t>((x << n) | (x >> (8 - n)));
}

constexpr std::uint8_t affine(std::uint8_t x) {
  return static_cast<std::uint8_t>(x ^ rotl8(x, 1) ^ rotl8(x, 2) ^
                                   rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63);
}

struct SboxTables {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};
};

constexpr SboxTables make_sboxes() {
  SboxTables t{};
  for (int i = 0; i < 256; ++i) {
    const auto s = affine(ginv(static_cast<std::uint8_t>(i)));
    t.fwd[static_cast<std::size_t>(i)] = s;
    t.inv[s] = static_cast<std::uint8_t>(i);
  }
  return t;
}

constexpr SboxTables kSbox = make_sboxes();

// Round constants for AES-128 key expansion.
constexpr std::array<std::uint8_t, 10> kRcon = {0x01, 0x02, 0x04, 0x08, 0x10,
                                                0x20, 0x40, 0x80, 0x1B, 0x36};

using State = std::array<std::uint8_t, 16>;  // column-major, FIPS order

void add_round_key(State& s, const std::uint8_t* rk) {
  for (int i = 0; i < 16; ++i) s[static_cast<std::size_t>(i)] ^= rk[i];
}

void sub_bytes(State& s) {
  for (auto& b : s) b = kSbox.fwd[b];
}

void inv_sub_bytes(State& s) {
  for (auto& b : s) b = kSbox.inv[b];
}

// State layout: s[4*c + r] is row r, column c (matches the byte order of
// the input block: block[i] -> s[i]).
void shift_rows(State& s) {
  State t = s;
  for (int c = 0; c < 4; ++c) {
    for (int r = 1; r < 4; ++r) {
      s[static_cast<std::size_t>(4 * c + r)] =
          t[static_cast<std::size_t>(4 * ((c + r) % 4) + r)];
    }
  }
}

void inv_shift_rows(State& s) {
  State t = s;
  for (int c = 0; c < 4; ++c) {
    for (int r = 1; r < 4; ++r) {
      s[static_cast<std::size_t>(4 * ((c + r) % 4) + r)] =
          t[static_cast<std::size_t>(4 * c + r)];
    }
  }
}

void mix_columns(State& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s.data() + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void inv_mix_columns(State& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s.data() + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gmul(a0, 0x0E) ^ gmul(a1, 0x0B) ^
                                       gmul(a2, 0x0D) ^ gmul(a3, 0x09));
    col[1] = static_cast<std::uint8_t>(gmul(a0, 0x09) ^ gmul(a1, 0x0E) ^
                                       gmul(a2, 0x0B) ^ gmul(a3, 0x0D));
    col[2] = static_cast<std::uint8_t>(gmul(a0, 0x0D) ^ gmul(a1, 0x09) ^
                                       gmul(a2, 0x0E) ^ gmul(a3, 0x0B));
    col[3] = static_cast<std::uint8_t>(gmul(a0, 0x0B) ^ gmul(a1, 0x0D) ^
                                       gmul(a2, 0x09) ^ gmul(a3, 0x0E));
  }
}

#if defined(CTAGG_HAVE_AESNI_KERNELS)

#define CTAGG_AESNI __attribute__((target("aes,sse2")))

// One block through the expanded schedule: whitening xor, nine full
// rounds, final round without MixColumns — the FIPS-197 cipher.
CTAGG_AESNI inline __m128i aesni_one(const __m128i rk[11], __m128i s) {
  s = _mm_xor_si128(s, rk[0]);
  for (int r = 1; r < Aes128::kRounds; ++r) s = _mm_aesenc_si128(s, rk[r]);
  return _mm_aesenclast_si128(s, rk[Aes128::kRounds]);
}

// ECB over consecutive blocks, 8 at a time. Independent blocks share no
// state, so interleaving them keeps the aesenc pipeline full (latency
// ~4 cycles, throughput 1-2/cycle) instead of serialising on one block.
CTAGG_AESNI void aesni_encrypt_blocks(const std::uint8_t* round_keys,
                                      const std::uint8_t* in,
                                      std::uint8_t* out, std::size_t nblocks) {
  __m128i rk[11];
  for (int r = 0; r <= Aes128::kRounds; ++r) {
    rk[r] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_keys + 16 * r));
  }
  while (nblocks >= 8) {
    __m128i s[8];
    for (int i = 0; i < 8; ++i) {
      s[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
      s[i] = _mm_xor_si128(s[i], rk[0]);
    }
    for (int r = 1; r < Aes128::kRounds; ++r) {
      for (int i = 0; i < 8; ++i) s[i] = _mm_aesenc_si128(s[i], rk[r]);
    }
    for (int i = 0; i < 8; ++i) {
      s[i] = _mm_aesenclast_si128(s[i], rk[Aes128::kRounds]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i), s[i]);
    }
    in += 8 * 16;
    out += 8 * 16;
    nblocks -= 8;
  }
  while (nblocks > 0) {
    const __m128i s =
        aesni_one(rk, _mm_loadu_si128(reinterpret_cast<const __m128i*>(in)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
    in += 16;
    out += 16;
    --nblocks;
  }
}

#endif  // CTAGG_HAVE_AESNI_KERNELS

bool detect_aesni() {
#if defined(CTAGG_HAVE_AESNI_KERNELS)
  return __builtin_cpu_supports("aes") && __builtin_cpu_supports("sse2");
#else
  return false;
#endif
}

std::atomic<bool> g_aesni{detect_aesni()};

}  // namespace

namespace aes_backend {

bool aesni_supported() { return detect_aesni(); }

bool aesni_active() { return g_aesni.load(std::memory_order_relaxed); }

bool force_aesni(bool on) {
  if (on && !detect_aesni()) return false;
  g_aesni.store(on, std::memory_order_relaxed);
  return true;
}

const char* active_name() { return aesni_active() ? "aesni" : "scalar"; }

}  // namespace aes_backend

std::uint8_t Aes128::sbox(std::uint8_t x) { return kSbox.fwd[x]; }
std::uint8_t Aes128::inv_sbox(std::uint8_t x) { return kSbox.inv[x]; }

Aes128::Aes128(const Key& key) {
  // FIPS-197 key expansion, word-oriented (4 bytes per word).
  std::memcpy(round_keys_.data(), key.data(), kKeySize);
  for (int i = 4; i < 4 * (kRounds + 1); ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + 4 * (i - 1), 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox.fwd[temp[1]] ^
                                          kRcon[static_cast<std::size_t>(i / 4 - 1)]);
      temp[1] = kSbox.fwd[temp[2]];
      temp[2] = kSbox.fwd[temp[3]];
      temp[3] = kSbox.fwd[t0];
    }
    for (int b = 0; b < 4; ++b) {
      round_keys_[static_cast<std::size_t>(4 * i + b)] =
          static_cast<std::uint8_t>(round_keys_[static_cast<std::size_t>(4 * (i - 4) + b)] ^ temp[b]);
    }
  }
}

void Aes128::encrypt_block(std::span<const std::uint8_t, kBlockSize> in,
                           std::span<std::uint8_t, kBlockSize> out) const {
  encrypt_blocks(in.data(), out.data(), 1);
}

void Aes128::encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                            std::size_t nblocks) const {
#if defined(CTAGG_HAVE_AESNI_KERNELS)
  if (g_aesni.load(std::memory_order_relaxed)) {
    aesni_encrypt_blocks(round_keys_.data(), in, out, nblocks);
    return;
  }
#endif
  for (std::size_t b = 0; b < nblocks; ++b) {
    State s;
    std::memcpy(s.data(), in + kBlockSize * b, kBlockSize);
    add_round_key(s, round_keys_.data());
    for (int round = 1; round < kRounds; ++round) {
      sub_bytes(s);
      shift_rows(s);
      mix_columns(s);
      add_round_key(s, round_keys_.data() + 16 * round);
    }
    sub_bytes(s);
    shift_rows(s);
    add_round_key(s, round_keys_.data() + 16 * kRounds);
    std::memcpy(out + kBlockSize * b, s.data(), kBlockSize);
  }
}

void Aes128::decrypt_block(std::span<const std::uint8_t, kBlockSize> in,
                           std::span<std::uint8_t, kBlockSize> out) const {
  State s;
  std::memcpy(s.data(), in.data(), kBlockSize);
  add_round_key(s, round_keys_.data() + 16 * kRounds);
  for (int round = kRounds - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, round_keys_.data() + 16 * round);
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, round_keys_.data());
  std::memcpy(out.data(), s.data(), kBlockSize);
}

Aes128::Block Aes128::encrypt_block(const Block& in) const {
  Block out{};
  encrypt_block(std::span<const std::uint8_t, kBlockSize>{in},
                std::span<std::uint8_t, kBlockSize>{out});
  return out;
}

Aes128::Block Aes128::decrypt_block(const Block& in) const {
  Block out{};
  decrypt_block(std::span<const std::uint8_t, kBlockSize>{in},
                std::span<std::uint8_t, kBlockSize>{out});
  return out;
}

}  // namespace mpciot::crypto
