// Pairwise key pre-distribution.
//
// The paper assumes pairwise AES keys are "already shared with the
// destination node during the bootstrapping phase". We model the standard
// way a deployment tool provisions such keys: every pair (i, j) gets
// K_{i,j} = CMAC(master, min(i,j) || max(i,j) || "pairwise"), so the key
// is symmetric in the pair, derivable offline, and compromise of one node
// reveals only that node's O(n) keys.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "crypto/aes128.hpp"
#include "crypto/cmac.hpp"

namespace mpciot::crypto {

class KeyStore {
 public:
  /// Create a keystore rooted at `master_key` for `node_count` nodes.
  KeyStore(const Aes128::Key& master_key, std::uint32_t node_count);

  /// Derive from a 64-bit deployment seed (test/simulation convenience).
  KeyStore(std::uint64_t deployment_seed, std::uint32_t node_count);

  std::uint32_t node_count() const { return node_count_; }

  /// Pairwise key shared by nodes a and b. Symmetric: key(a,b)==key(b,a).
  /// Precondition: a != b, both < node_count.
  Aes128::Key pairwise_key(NodeId a, NodeId b) const;

  /// Per-node key for data only that node may read (e.g. DRBG seeding).
  Aes128::Key node_key(NodeId node) const;

  /// Network-wide group key (used for integrity tags on plaintext
  /// reconstruction-phase packets).
  Aes128::Key group_key() const;

 private:
  Cmac kdf_;
  std::uint32_t node_count_;
};

}  // namespace mpciot::crypto
