// AES-CMAC per RFC 4493 / NIST SP 800-38B.
//
// Used by the key-distribution layer as a PRF: pairwise keys and the
// deterministic DRBG personalisation strings are derived with CMAC, which
// is the derivation a Contiki deployment with an AES peripheral would use.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/aes128.hpp"

namespace mpciot::crypto {

class Cmac {
 public:
  using Tag = Aes128::Block;

  explicit Cmac(const Aes128::Key& key);

  /// Compute the 128-bit CMAC tag of `message`.
  Tag compute(std::span<const std::uint8_t> message) const;

  /// Constant-time tag comparison.
  static bool verify(const Tag& a, const Tag& b);

 private:
  Aes128 cipher_;
  Aes128::Block k1_{};
  Aes128::Block k2_{};
};

}  // namespace mpciot::crypto
