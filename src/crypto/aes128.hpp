// AES-128 block cipher, implemented from the FIPS-197 specification.
//
// The S-box is *derived* at compile time from its algebraic definition
// (multiplicative inverse in GF(2^8) modulo x^8+x^4+x^3+x+1 followed by
// the affine transform) instead of a transcribed table; the FIPS-197 and
// NIST SP 800-38A known-answer vectors in tests/crypto pin the result.
//
// This models the AES hardware block of the nRF52840 used by the paper:
// the sharing phase encrypts every share packet with a pairwise AES key.
// The portable core is a straightforward table-free byte-oriented
// implementation (constant code path, no T-tables); when the build
// enables CTAGG_SIMD on x86-64 and the CPU reports AES-NI, encryption
// dispatches to an AES-NI path at runtime — same FIPS-197 permutation,
// bit-identical ciphertext, pinned by the same known-answer vectors.
// The byte-oriented core remains the authoritative definition.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mpciot::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  using Block = std::array<std::uint8_t, kBlockSize>;
  using Key = std::array<std::uint8_t, kKeySize>;

  /// Expand the key schedule once; encrypt/decrypt reuse it.
  explicit Aes128(const Key& key);

  /// Encrypt one 16-byte block (out may alias in).
  void encrypt_block(std::span<const std::uint8_t, kBlockSize> in,
                     std::span<std::uint8_t, kBlockSize> out) const;

  /// Encrypt `nblocks` consecutive 16-byte blocks from `in` to `out`
  /// (out may alias in). On the AES-NI path blocks run 8-wide through
  /// the round pipeline — the block cipher has no cross-block state, so
  /// the interleave is free parallelism; the portable path processes
  /// them sequentially. Output is byte-identical to calling
  /// encrypt_block per block on either path.
  void encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                      std::size_t nblocks) const;

  /// Decrypt one 16-byte block (out may alias in).
  void decrypt_block(std::span<const std::uint8_t, kBlockSize> in,
                     std::span<std::uint8_t, kBlockSize> out) const;

  Block encrypt_block(const Block& in) const;
  Block decrypt_block(const Block& in) const;

  /// Forward S-box value (exposed for tests pinning the derivation).
  static std::uint8_t sbox(std::uint8_t x);
  static std::uint8_t inv_sbox(std::uint8_t x);

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, kBlockSize*(kRounds + 1)> round_keys_{};
};

/// Runtime backend control for the AES encryption path (mirror of
/// field::fp61_batch's dispatch). The AES-NI and byte-oriented cores
/// produce identical ciphertext; the hooks exist for benchmarks and the
/// cross-backend equivalence tests.
namespace aes_backend {
/// True when this build + CPU can run the AES-NI path.
bool aesni_supported();
/// True when encryption currently dispatches to AES-NI.
bool aesni_active();
/// Force the path on/off; returns false (and changes nothing) when
/// asking for AES-NI on a build/CPU without it.
bool force_aesni(bool on);
/// "aesni" or "scalar".
const char* active_name();
}  // namespace aes_backend

}  // namespace mpciot::crypto
