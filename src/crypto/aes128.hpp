// AES-128 block cipher, implemented from the FIPS-197 specification.
//
// The S-box is *derived* at compile time from its algebraic definition
// (multiplicative inverse in GF(2^8) modulo x^8+x^4+x^3+x+1 followed by
// the affine transform) instead of a transcribed table; the FIPS-197 and
// NIST SP 800-38A known-answer vectors in tests/crypto pin the result.
//
// This models the AES hardware block of the nRF52840 used by the paper:
// the sharing phase encrypts every share packet with a pairwise AES key.
// It is a straightforward table-free byte-oriented implementation —
// portable and constant-code-path, not optimized with T-tables or AES-NI.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mpciot::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  using Block = std::array<std::uint8_t, kBlockSize>;
  using Key = std::array<std::uint8_t, kKeySize>;

  /// Expand the key schedule once; encrypt/decrypt reuse it.
  explicit Aes128(const Key& key);

  /// Encrypt one 16-byte block (out may alias in).
  void encrypt_block(std::span<const std::uint8_t, kBlockSize> in,
                     std::span<std::uint8_t, kBlockSize> out) const;

  /// Decrypt one 16-byte block (out may alias in).
  void decrypt_block(std::span<const std::uint8_t, kBlockSize> in,
                     std::span<std::uint8_t, kBlockSize> out) const;

  Block encrypt_block(const Block& in) const;
  Block decrypt_block(const Block& in) const;

  /// Forward S-box value (exposed for tests pinning the derivation).
  static std::uint8_t sbox(std::uint8_t x);
  static std::uint8_t inv_sbox(std::uint8_t x);

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, kBlockSize*(kRounds + 1)> round_keys_{};
};

}  // namespace mpciot::crypto
