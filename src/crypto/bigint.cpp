#include "crypto/bigint.hpp"

#include <algorithm>
#include <ostream>

#include "common/assert.hpp"

namespace mpciot::crypto {

namespace {
constexpr std::uint64_t kBase = std::uint64_t{1} << 32;
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(v));
    if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
  }
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

int BigInt::cmp(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

std::uint64_t BigInt::to_u64() const {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t s = carry;
    if (i < a.limbs_.size()) s += a.limbs_[i];
    if (i < b.limbs_.size()) s += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(s);
    carry = s >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) {
  MPCIOT_REQUIRE(a >= b, "BigInt: subtraction underflow (magnitude-only)");
  BigInt out;
  out.limbs_.resize(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t s = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) s -= b.limbs_[i];
    if (s < 0) {
      s += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(s);
  }
  out.trim();
  return out;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt{};
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      std::uint64_t cur = out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt operator<<(const BigInt& a, std::size_t bits) {
  if (a.is_zero() || bits == 0) {
    BigInt out = a;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(a.limbs_[i])
                            << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt operator>>(const BigInt& a, std::size_t bits) {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= a.limbs_.size()) return BigInt{};
  BigInt out;
  out.limbs_.resize(a.limbs_.size() - limb_shift);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<std::uint64_t>(a.limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

BigIntDivMod BigInt::divmod(const BigInt& num, const BigInt& den) {
  MPCIOT_REQUIRE(!den.is_zero(), "BigInt: division by zero");
  if (num < den) return {BigInt{}, num};

  // Single-limb divisor fast path.
  if (den.limbs_.size() == 1) {
    const std::uint64_t d = den.limbs_[0];
    BigInt q;
    q.limbs_.resize(num.limbs_.size());
    std::uint64_t rem = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | num.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigInt{rem}};
  }

  // Knuth Algorithm D (TAOCP vol. 2, 4.3.1) with 32-bit digits.
  const int shift =
      static_cast<int>(32 - (den.bit_length() - (den.limbs_.size() - 1) * 32));
  const BigInt u = num << static_cast<std::size_t>(shift);
  const BigInt v = den << static_cast<std::size_t>(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.resize(u.limbs_.size() + 1, 0);  // extra high digit
  const std::vector<std::uint32_t>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate qhat from the top two digits of the current remainder.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = numerator / vn[n - 1];
    std::uint64_t rhat = numerator % vn[n - 1];
    if (qhat >= kBase) {
      qhat = kBase - 1;
      rhat = numerator - qhat * vn[n - 1];
    }
    while (rhat < kBase &&
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
    }

    // Multiply-subtract qhat * v from un[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                       static_cast<std::int64_t>(p & 0xFFFFFFFFu) - borrow;
      if (t < 0) {
        t += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      un[i + j] = static_cast<std::uint32_t>(t);
    }
    std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                     static_cast<std::int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large: add v back and decrement qhat.
      t += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t c2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s = static_cast<std::uint64_t>(un[i + j]) +
                                vn[i] + c2;
        un[i + j] = static_cast<std::uint32_t>(s);
        c2 = s >> 32;
      }
      t += static_cast<std::int64_t>(c2);
      t &= static_cast<std::int64_t>(0xFFFFFFFFll);
    }
    un[j + n] = static_cast<std::uint32_t>(t);
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  q.trim();
  BigInt r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = r >> static_cast<std::size_t>(shift);
  return {q, r};
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).quotient;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).remainder;
}

BigInt BigInt::mulmod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b) % m;
}

BigInt BigInt::powmod(const BigInt& base, const BigInt& exp, const BigInt& m) {
  MPCIOT_REQUIRE(!m.is_zero(), "BigInt: powmod modulus is zero");
  if (m == BigInt{1}) return BigInt{};
  BigInt result{1};
  BigInt acc = base % m;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mulmod(result, acc, m);
    if (i + 1 < bits) acc = mulmod(acc, acc, m);
  }
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt{};
  return (a / gcd(a, b)) * b;
}

BigInt BigInt::modinv(const BigInt& a, const BigInt& m) {
  // Extended Euclid on magnitudes, tracking the sign of the Bezout
  // coefficient for `a` explicitly.
  BigInt r0 = m, r1 = a % m;
  BigInt t0{}, t1{1};
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    const BigIntDivMod dm = divmod(r0, r1);
    // (t0 - q*t1) with signed semantics.
    const BigInt qt1 = dm.quotient * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // same sign: t0 - q*t1 may flip sign
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
    r0 = std::move(r1);
    r1 = dm.remainder;
  }
  if (r0 != BigInt{1}) return BigInt{};  // not invertible
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

BigInt BigInt::from_hex(std::string_view hex) {
  BigInt out;
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      MPCIOT_REQUIRE(false, "BigInt: invalid hex digit");
      v = 0;
    }
    out = (out << 4) + BigInt{static_cast<std::uint64_t>(v)};
  }
  return out;
}

BigInt BigInt::from_string(std::string_view text) {
  MPCIOT_REQUIRE(!text.empty(), "BigInt: empty string");
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    return from_hex(text.substr(2));
  }
  BigInt out;
  const BigInt ten{10};
  for (char c : text) {
    MPCIOT_REQUIRE(c >= '0' && c <= '9', "BigInt: invalid decimal digit");
    out = out * ten + BigInt{static_cast<std::uint64_t>(c - '0')};
  }
  return out;
}

std::string BigInt::to_hex_string() const {
  if (is_zero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(digits[(limbs_[i] >> shift) & 0xF]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::string BigInt::to_decimal_string() const {
  if (is_zero()) return "0";
  BigInt v = *this;
  const BigInt billion{1000000000ull};
  std::vector<std::uint32_t> chunks;
  while (!v.is_zero()) {
    const BigIntDivMod dm = divmod(v, billion);
    chunks.push_back(static_cast<std::uint32_t>(dm.remainder.to_u64()));
    v = dm.quotient;
  }
  std::string out = std::to_string(chunks.back());
  for (std::size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(9 - part.size(), '0') + part;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.to_decimal_string();
}

}  // namespace mpciot::crypto
