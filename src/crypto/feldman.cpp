#include "crypto/feldman.hpp"

#include "common/assert.hpp"

namespace mpciot::crypto::feldman {

namespace {

using u128 = unsigned __int128;

constexpr u128 make_u128(std::uint64_t hi, std::uint64_t lo) {
  return (static_cast<u128>(hi) << 64) | lo;
}

// q = h * p + 1 for p = 2^61 - 1 and cofactor h = 73786976294838206446:
// the largest 127-bit prime with p | q - 1, found by descending even h
// from floor((2^127 - 1) / p). All remaining constants derive from it.
constexpr u128 kQ =
    make_u128(0x7ffffffffffffff9ull, 0xc000000000000013ull);
// g = 2^h mod q: order exactly p (g != 1, g^p == 1).
constexpr u128 kG =
    make_u128(0x7c9284355f8078f1ull, 0x4db63a7d75ead392ull);
// Montgomery constants for R = 2^128: -q^{-1} mod R, R^2 mod q, R mod q.
constexpr u128 kQInv =
    make_u128(0x7b41f33c46ea0441ull, 0x39435e50d79435e5ull);
constexpr u128 kR2 =
    make_u128(0x40000000000003e7ull, 0xffffffffffffee7cull);
constexpr u128 kOneMont =
    make_u128(0x000000000000000cull, 0x7fffffffffffffdaull);

/// Full 128x128 -> 256 bit product via 64-bit limbs.
void mul_wide(u128 a, u128 b, u128& hi, u128& lo) {
  const u128 a0 = static_cast<std::uint64_t>(a);
  const u128 a1 = a >> 64;
  const u128 b0 = static_cast<std::uint64_t>(b);
  const u128 b1 = b >> 64;
  const u128 ll = a0 * b0;
  const u128 lh = a0 * b1;
  const u128 hl = a1 * b0;
  const u128 mid = (ll >> 64) + static_cast<std::uint64_t>(lh) +
                   static_cast<std::uint64_t>(hl);
  lo = (mid << 64) | static_cast<std::uint64_t>(ll);
  hi = a1 * b1 + (lh >> 64) + (hl >> 64) + (mid >> 64);
}

/// Montgomery product abR^{-1} mod q for a, b < q in Montgomery form.
u128 mont_mul(u128 a, u128 b) {
  u128 t_hi;
  u128 t_lo;
  mul_wide(a, b, t_hi, t_lo);
  const u128 m = t_lo * kQInv;  // wraps mod 2^128 by design
  u128 mq_hi;
  u128 mq_lo;
  mul_wide(m, kQ, mq_hi, mq_lo);
  const u128 s = t_lo + mq_lo;  // always 0 mod 2^128; keep the carry
  u128 u = t_hi + mq_hi + (s < t_lo ? 1 : 0);
  if (u >= kQ) u -= kQ;
  return u;
}

u128 to_mont(u128 x) { return mont_mul(x, kR2); }
u128 from_mont(u128 x) { return mont_mul(x, 1); }

/// a^e mod q (a in Montgomery form, result in Montgomery form).
u128 mont_pow(u128 a, std::uint64_t e) {
  u128 acc = kOneMont;
  u128 base = a;
  while (e != 0) {
    if (e & 1) acc = mont_mul(acc, base);
    base = mont_mul(base, base);
    e >>= 1;
  }
  return acc;
}

u128 unpack(const GroupElement& v) { return make_u128(v.hi, v.lo); }

GroupElement pack(u128 v) {
  return GroupElement{static_cast<std::uint64_t>(v >> 64),
                      static_cast<std::uint64_t>(v)};
}

const u128 kGMont = to_mont(kG);

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

GroupElement generator() { return pack(kG); }

GroupElement power_of_g(field::Fp61 e) {
  return pack(from_mont(mont_pow(kGMont, e.value())));
}

GroupElement mul(const GroupElement& a, const GroupElement& b) {
  return pack(from_mont(mont_mul(to_mont(unpack(a)), to_mont(unpack(b)))));
}

GroupElement pow(const GroupElement& a, std::uint64_t e) {
  return pack(from_mont(mont_pow(to_mont(unpack(a)), e)));
}

bool in_group(const GroupElement& v) {
  const u128 x = unpack(v);
  if (x == 0 || x >= kQ) return false;
  return mont_pow(to_mont(x), field::Fp61::kModulus) == kOneMont;
}

Commitment commit(const field::Polynomial& poly) {
  MPCIOT_REQUIRE(!poly.is_zero(), "feldman: cannot commit to the zero poly");
  Commitment c;
  c.elements.reserve(poly.coefficients().size());
  for (const field::Fp61 coeff : poly.coefficients()) {
    c.elements.push_back(pack(from_mont(mont_pow(kGMont, coeff.value()))));
  }
  return c;
}

bool verify_share(const Commitment& commitment, field::Fp61 x,
                  field::Fp61 share) {
  if (commitment.elements.empty()) return false;
  // Horner in the exponent: rhs = ((C_k)^x * C_{k-1})^x * ... * C_0.
  const std::uint64_t xe = x.value();
  u128 rhs = to_mont(unpack(commitment.elements.back()));
  for (std::size_t j = commitment.elements.size() - 1; j-- > 0;) {
    rhs = mont_mul(mont_pow(rhs, xe),
                   to_mont(unpack(commitment.elements[j])));
  }
  return mont_pow(kGMont, share.value()) == rhs;
}

VerifyContext::VerifyContext(const Commitment& commitment) {
  mont_elements_.reserve(commitment.elements.size());
  for (const GroupElement& e : commitment.elements) {
    mont_elements_.push_back(pack(to_mont(unpack(e))));
  }
}

bool VerifyContext::verify(field::Fp61 x, field::Fp61 share) const {
  if (mont_elements_.empty()) return false;
  const std::uint64_t xe = x.value();
  u128 rhs = unpack(mont_elements_.back());
  for (std::size_t j = mont_elements_.size() - 1; j-- > 0;) {
    rhs = mont_mul(mont_pow(rhs, xe), unpack(mont_elements_[j]));
  }
  return mont_pow(kGMont, share.value()) == rhs;
}

Commitment combine(const std::vector<const Commitment*>& parts) {
  MPCIOT_REQUIRE(!parts.empty(), "feldman: nothing to combine");
  const std::size_t width = parts.front()->elements.size();
  Commitment out;
  out.elements.reserve(width);
  for (std::size_t j = 0; j < width; ++j) {
    u128 acc = kOneMont;
    for (const Commitment* part : parts) {
      MPCIOT_REQUIRE(part != nullptr && part->elements.size() == width,
                     "feldman: combine needs equal-degree commitments");
      acc = mont_mul(acc, to_mont(unpack(part->elements[j])));
    }
    out.elements.push_back(pack(from_mont(acc)));
  }
  return out;
}

std::vector<std::uint8_t> serialize(const Commitment& commitment) {
  std::vector<std::uint8_t> out(commitment.wire_size());
  std::uint8_t* p = out.data();
  for (const GroupElement& e : commitment.elements) {
    put_u64(p, e.hi);
    put_u64(p + 8, e.lo);
    p += Commitment::kElementBytes;
  }
  return out;
}

Commitment deserialize(const std::uint8_t* data, std::size_t size) {
  Commitment out;
  if (size == 0 || size % Commitment::kElementBytes != 0) return out;
  const std::size_t count = size / Commitment::kElementBytes;
  out.elements.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t* p = data + i * Commitment::kElementBytes;
    const GroupElement e{get_u64(p), get_u64(p + 8)};
    if (!in_group(e)) {
      out.elements.clear();
      return out;
    }
    out.elements.push_back(e);
  }
  return out;
}

}  // namespace mpciot::crypto::feldman
