#include "crypto/keystore.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "crypto/prng.hpp"

namespace mpciot::crypto {

namespace {
void put_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

Aes128::Key key_from_seed(std::uint64_t seed) {
  Aes128::Key key{};
  std::uint64_t sm = seed;
  const std::uint64_t a = splitmix64(sm);
  const std::uint64_t b = splitmix64(sm);
  // Explicit little-endian serialization: a memcpy of the host integers
  // would derive different keys on a big-endian host, silently breaking
  // cross-host deployments (bytes identical to the historic memcpy on
  // little-endian machines, so existing golden outputs are unchanged).
  put_le64(key.data(), a);
  put_le64(key.data() + 8, b);
  return key;
}

void put_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
}  // namespace

KeyStore::KeyStore(const Aes128::Key& master_key, std::uint32_t node_count)
    : kdf_(master_key), node_count_(node_count) {
  MPCIOT_REQUIRE(node_count >= 2, "KeyStore: need at least two nodes");
}

KeyStore::KeyStore(std::uint64_t deployment_seed, std::uint32_t node_count)
    : KeyStore(key_from_seed(deployment_seed), node_count) {}

Aes128::Key KeyStore::pairwise_key(NodeId a, NodeId b) const {
  MPCIOT_REQUIRE(a != b, "KeyStore: pairwise key of a node with itself");
  MPCIOT_REQUIRE(a < node_count_ && b < node_count_,
                 "KeyStore: node id out of range");
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  std::uint8_t msg[16] = {};
  put_be32(msg + 0, lo);
  put_be32(msg + 4, hi);
  std::memcpy(msg + 8, "pairwise", 8);
  return kdf_.compute(std::span<const std::uint8_t>{msg, sizeof msg});
}

Aes128::Key KeyStore::node_key(NodeId node) const {
  MPCIOT_REQUIRE(node < node_count_, "KeyStore: node id out of range");
  std::uint8_t msg[12] = {};
  put_be32(msg + 0, node);
  std::memcpy(msg + 4, "node-key", 8);
  return kdf_.compute(std::span<const std::uint8_t>{msg, sizeof msg});
}

Aes128::Key KeyStore::group_key() const {
  std::uint8_t msg[9] = {};
  std::memcpy(msg, "group-key", 9);
  return kdf_.compute(std::span<const std::uint8_t>{msg, sizeof msg});
}

}  // namespace mpciot::crypto
