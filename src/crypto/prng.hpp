// Random number generation.
//
// Two generators with distinct roles:
//  * `Xoshiro256` — fast statistical PRNG for the *simulator* (link fades,
//    topology jitter). Never used for secrets.
//  * `CtrDrbg` — AES-CTR based deterministic random bit generator used for
//    *secret* material (polynomial coefficients, keys). Deterministic by
//    design so experiments are reproducible; a deployment would seed it
//    from a hardware TRNG instead.
//
// Both expose uniform Fp61 sampling via rejection (no modulo bias).
#pragma once

#include <cstdint>

#include "crypto/aes128.hpp"
#include "field/fp61.hpp"

namespace mpciot::crypto {

/// splitmix64, used to expand a single 64-bit seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// Collision-free stream-seed derivation: mixes (base, stream_tag, index)
/// through three rounds of the splitmix64 finalizer. Use this wherever a
/// per-trial or per-stream RNG is seeded. Arithmetic derivations such as
/// `base + index` or `base * K + index` alias across sweeps — e.g.
/// (base, index+1) and (base+1, index) seed the *same* generator — which
/// silently correlates trials that should be independent. Distinct
/// (base, stream_tag, index) tuples map to distinct seeds except with
/// the ~2^-64 probability of a finalizer collision. `stream_tag`
/// domain-separates independent streams drawn from the same base seed
/// (sim channel vs. secrets vs. failure picks, ...).
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream_tag,
                          std::uint64_t index);

/// xoshiro256** — the simulator's statistical PRNG.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). Precondition: bound > 0. Rejection-sampled.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform field element (rejection from 61-bit draws).
  field::Fp61 next_fp61();

  /// Bernoulli(p).
  bool next_bool(double p);

  // UniformRandomBitGenerator interface (for std::shuffle etc.).
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

/// AES-CTR DRBG (simplified SP 800-90A shape: fixed key schedule per seed,
/// incrementing counter, no reseed interval — documented in DESIGN.md).
class CtrDrbg {
 public:
  /// Seed from 16 bytes of keying material plus a personalization string
  /// that separates independent streams (e.g. per node id).
  CtrDrbg(const Aes128::Key& seed_key, std::uint64_t personalization);

  /// Convenience: derive the seed key from a 64-bit seed via splitmix64.
  explicit CtrDrbg(std::uint64_t seed, std::uint64_t personalization = 0);

  void fill(std::uint8_t* out, std::size_t len);
  std::uint64_t next_u64();
  std::uint64_t next_below(std::uint64_t bound);
  field::Fp61 next_fp61();

 private:
  Aes128 cipher_;
  Aes128::Block counter_{};
  Aes128::Block buffer_{};
  std::size_t buffered_ = 0;  // valid bytes remaining in buffer_ tail
};

}  // namespace mpciot::crypto
