// Simulation context: event queue + RNG streams + run bookkeeping.
//
// One `Simulator` owns the clock for one experiment run. Protocol code
// takes a Simulator& and never touches wall-clock time or global RNGs,
// which keeps runs deterministic and parallelizable at the process level.
#pragma once

#include <cstdint>

#include "crypto/prng.hpp"
#include "sim/event_queue.hpp"

namespace mpciot::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);

  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }
  SimTime now() const { return events_.now(); }

  /// Channel/link randomness (statistical PRNG).
  crypto::Xoshiro256& channel_rng() { return channel_rng_; }

  /// Per-node secret randomness stream, domain-separated by node id.
  crypto::CtrDrbg secret_rng(std::uint32_t node_id) const {
    return crypto::CtrDrbg{seed_, 0x5EC0000000000000ull | node_id};
  }

  std::uint64_t seed() const { return seed_; }

  /// Run to completion (or until `until`).
  std::size_t run(SimTime until = INT64_MAX) { return events_.run(until); }

 private:
  std::uint64_t seed_;
  EventQueue events_;
  crypto::Xoshiro256 channel_rng_;
};

}  // namespace mpciot::sim
