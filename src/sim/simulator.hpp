// Simulation context: event queue + RNG streams + run bookkeeping.
//
// One `Simulator` owns the clock for one experiment run. Protocol code
// takes a Simulator& and never touches wall-clock time or global RNGs,
// which keeps runs deterministic and parallelizable at the process level.
#pragma once

#include <cstdint>

#include "crypto/prng.hpp"
#include "net/channel_model.hpp"
#include "sim/event_queue.hpp"

namespace mpciot::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);

  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }
  SimTime now() const { return events_.now(); }

  /// Channel/link randomness (statistical PRNG).
  crypto::Xoshiro256& channel_rng() { return channel_rng_; }

  /// Per-node secret randomness stream, domain-separated by node id.
  crypto::CtrDrbg secret_rng(std::uint32_t node_id) const {
    return crypto::CtrDrbg{seed_, 0x5EC0000000000000ull | node_id};
  }

  std::uint64_t seed() const { return seed_; }

  /// Time-varying channel model of this run; null = the frozen static
  /// snapshot. Owned by the caller (typically a per-trial
  /// sim::dynamics::LinkDynamics) and must outlive the run. Protocols
  /// read it here and thread it into every transport round.
  void set_channel_model(const net::ChannelModel* model) {
    channel_model_ = model;
  }
  const net::ChannelModel* channel_model() const { return channel_model_; }

  /// Node crash/recover schedule of this run; null = no churn. Owned by
  /// the caller (typically a per-trial sim::dynamics::NodeChurn).
  void set_liveness(const net::LivenessModel* liveness) {
    liveness_ = liveness;
  }
  const net::LivenessModel* liveness() const { return liveness_; }

  /// Run to completion (or until `until`).
  std::size_t run(SimTime until = INT64_MAX) { return events_.run(until); }

 private:
  std::uint64_t seed_;
  EventQueue events_;
  crypto::Xoshiro256 channel_rng_;
  const net::ChannelModel* channel_model_ = nullptr;
  const net::LivenessModel* liveness_ = nullptr;
};

}  // namespace mpciot::sim
