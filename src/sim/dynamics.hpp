// sim::dynamics — deterministic time-varying link and membership models.
//
// Everything before this module freezes the world at construction: PRR
// and RSSI are sampled once and links never flap, so no scenario can ask
// how the protocols degrade when real testbed links burst or nodes die
// mid-round. This module supplies the two concrete models behind the
// net-layer seams:
//
//  * `LinkDynamics` (net::ChannelModel) — per-link Gilbert–Elliott
//    two-state bursty loss plus a slow bounded RSSI random walk. Each
//    undirected link carries a good/bad Markov state advanced once per
//    epoch; in the bad state the link loses `bad_extra_loss_db` of
//    signal (a deep fade / interference burst), and on top of that the
//    link's RSSI drifts as a reflected random walk. Effective PRR is
//    recomputed from the drifted RSSI through the same logistic curve
//    and receiver-noise penalty the frozen tables were built with, so a
//    link with zero drift in the good state reproduces its static PRR
//    bit for bit — the frozen snapshot is literally the degenerate
//    member of this family.
//
//  * `NodeChurn` (net::LivenessModel) — an alternating-renewal
//    crash/recover schedule per node: up durations ~ Exp(1/rate), down
//    durations ~ Exp(mean_downtime). Crashed nodes are radio-silent
//    (the CT engines neither schedule nor charge them) and rejoin
//    mid-round through the slot-synchronized timeout path.
//
// Determinism / jobs-invariance: every draw is keyed by
// crypto::derive_seed on (epoch, global link identity) or (node) —
// never by a shared sequential stream — so the state at any epoch is a
// pure function of (seed, epoch, link) and concurrent trials that
// materialize different epoch prefixes still agree everywhere. Links
// are identified by their *root-topology* node ids
// (net::Topology::global_id), so a hierarchical group round bound to
// an induced subtopology sees each physical link in exactly the state
// a parent-level flood sees at the same instant, and equal-sized
// groups do not fade in lockstep. Model instances are const after
// construction and thread-safe; per-round evolution lives in the
// caller's net::ChannelView.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "net/channel_model.hpp"

namespace mpciot::sim::dynamics {

struct LinkDynamicsParams {
  /// Seed of the model's derive_seed streams (per trial, typically
  /// derived from the trial sim seed).
  std::uint64_t seed = 1;
  /// Dynamics advance granularity. CT rounds last tens of ms; the
  /// default keeps several epochs per protocol round.
  SimTime epoch_us = 50 * kMillisecond;
  /// Gilbert–Elliott per-epoch transition probabilities. Mean burst
  /// length is epoch_us / p_bad_to_good; stationary bad fraction is
  /// p_good_to_bad / (p_good_to_bad + p_bad_to_good).
  double p_good_to_bad = 0.05;
  double p_bad_to_good = 0.5;
  /// Signal lost while a link is in the bad state (dB).
  double bad_extra_loss_db = 10.0;
  /// Per-epoch sigma of the RSSI random walk (dB); 0 disables drift.
  double drift_sigma_db = 0.3;
  /// The walk reflects at +/- this bound (dB), keeping links from
  /// wandering permanently out of (or into) range.
  double drift_limit_db = 4.0;
};

class LinkDynamics final : public net::ChannelModel {
 public:
  explicit LinkDynamics(LinkDynamicsParams params);

  SimTime epoch_us() const override { return params_.epoch_us; }
  void materialize(const net::Topology& topo, std::uint64_t epoch,
                   net::LinkEpochTables& tables) const override;

  const LinkDynamicsParams& params() const { return params_; }

 private:
  LinkDynamicsParams params_;
};

struct NodeChurnParams {
  /// Seed of the per-node schedule streams.
  std::uint64_t seed = 1;
  /// Crash rate per node (events per second of up-time). 0 = no churn.
  double crashes_per_sec = 0.0;
  /// Mean downtime per crash (exponential).
  SimTime mean_downtime_us = 500 * kMillisecond;
  /// Schedules are precomputed up to this horizon; nodes are up beyond
  /// it. Keep it past the longest round the trial will run.
  SimTime horizon_us = 120 * kSecond;
  /// A node exempt from churn (e.g. a round initiator whose permanent
  /// death the scenario models separately); kInvalidNode exempts none.
  NodeId immortal = kInvalidNode;
};

class NodeChurn final : public net::LivenessModel {
 public:
  NodeChurn(std::size_t node_count, NodeChurnParams params);

  bool is_down(NodeId node, SimTime t) const override;

  /// Precomputed [crash, recover) intervals of `node`, ascending.
  const std::vector<std::pair<SimTime, SimTime>>& downtime(
      NodeId node) const {
    return down_[node];
  }
  /// Crashes scheduled for `node` within the horizon.
  std::size_t crash_count(NodeId node) const { return down_[node].size(); }

  const NodeChurnParams& params() const { return params_; }

 private:
  NodeChurnParams params_;
  std::vector<std::vector<std::pair<SimTime, SimTime>>> down_;
};

}  // namespace mpciot::sim::dynamics
