#include "sim/event_queue.hpp"

#include "common/assert.hpp"

namespace mpciot::sim {

EventId EventQueue::schedule_at(SimTime at, EventFn fn) {
  MPCIOT_REQUIRE(at >= now_, "EventQueue: cannot schedule in the past");
  MPCIOT_REQUIRE(fn != nullptr, "EventQueue: null event function");
  EventId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    callbacks_[id] = std::move(fn);
  } else {
    id = callbacks_.size();
    callbacks_.push_back(std::move(fn));
  }
  heap_.push(Entry{at, next_seq_++, id});
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id < callbacks_.size() && callbacks_[id] != nullptr) {
    callbacks_[id] = nullptr;
    free_slots_.push_back(id);
    --live_count_;
    // The heap entry stays and is skipped lazily on pop.
  }
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    if (callbacks_[top.id] == nullptr) continue;  // cancelled
    now_ = top.at;
    EventFn fn = std::move(callbacks_[top.id]);
    callbacks_[top.id] = nullptr;
    free_slots_.push_back(top.id);
    --live_count_;
    fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::run(SimTime until) {
  std::size_t count = 0;
  while (!heap_.empty()) {
    // Skip cancelled heads without advancing time.
    const Entry& top = heap_.top();
    if (callbacks_[top.id] == nullptr) {
      heap_.pop();
      continue;
    }
    if (top.at > until) break;
    step();
    ++count;
  }
  return count;
}

}  // namespace mpciot::sim
