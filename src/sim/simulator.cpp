#include "sim/simulator.hpp"

namespace mpciot::sim {

Simulator::Simulator(std::uint64_t seed)
    : seed_(seed), channel_rng_(seed ^ 0xC0FFEE1234567890ull) {}

}  // namespace mpciot::sim
