#include "sim/dynamics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "common/assert.hpp"
#include "crypto/prng.hpp"
#include "net/topology.hpp"

namespace mpciot::sim::dynamics {

namespace {

/// derive_seed stream tags of the dynamics models.
constexpr std::uint64_t kStreamGeInit = 0x47454930ull;   // "GEI0": epoch-0 draw
constexpr std::uint64_t kStreamGeStep = 0x47455354ull;   // "GEST": chain steps
constexpr std::uint64_t kStreamChurn = 0x43485255ull;    // "CHRU": schedules

/// Index of undirected pair (a, b), a < b, in the packed triangle.
std::size_t pair_index(std::size_t n, std::size_t a, std::size_t b) {
  return a * n - a * (a + 1) / 2 + (b - a - 1);
}

/// Exponential draw with the given mean; never returns less than 1 us so
/// schedules always advance.
SimTime draw_exp_us(crypto::Xoshiro256& rng, double mean_us) {
  const double u = rng.next_double();  // [0, 1)
  const double v = -std::log(1.0 - u) * mean_us;
  return std::max<SimTime>(1, static_cast<SimTime>(v));
}

}  // namespace

LinkDynamics::LinkDynamics(LinkDynamicsParams params) : params_(params) {
  MPCIOT_REQUIRE(params_.epoch_us > 0,
                 "LinkDynamics: epoch_us must be positive");
  MPCIOT_REQUIRE(params_.p_good_to_bad >= 0.0 && params_.p_good_to_bad <= 1.0,
                 "LinkDynamics: p_good_to_bad must be a probability");
  MPCIOT_REQUIRE(params_.p_bad_to_good > 0.0 && params_.p_bad_to_good <= 1.0,
                 "LinkDynamics: p_bad_to_good must be in (0, 1]");
  MPCIOT_REQUIRE(params_.bad_extra_loss_db >= 0.0 &&
                     params_.drift_sigma_db >= 0.0 &&
                     params_.drift_limit_db >= 0.0,
                 "LinkDynamics: dB knobs must be non-negative");
}

void LinkDynamics::materialize(const net::Topology& topo, std::uint64_t epoch,
                               net::LinkEpochTables& tables) const {
  const std::size_t n = topo.size();
  const bool sparse = topo.sparse();

  // Sparse tier: the chain walks only the *stored* undirected pairs, in
  // canonical ascending (a, b) order — a deterministic function of the
  // topology, so re-enumeration on every call indexes the persisted
  // state arrays identically. Links the sparse build culled never enter
  // the walk: drift cannot resurrect a link that was never stored (see
  // ARCHITECTURE.md).
  std::vector<std::pair<NodeId, NodeId>> stored_pairs;
  std::vector<NodeId> in_tmp;
  if (sparse) {
    stored_pairs.reserve(topo.num_links() / 2 + 1);
    for (NodeId a = 0; a < n; ++a) {
      // Ascending out-neighbors > a, merged (dedup) with ascending
      // in-transmitters > a decoded from the audibility word runs.
      in_tmp.clear();
      for (const net::AudWord& e : topo.audible_entries(a)) {
        std::uint64_t bits = e.bits;
        while (bits != 0) {
          const NodeId t = e.word * 64 +
                           static_cast<NodeId>(std::countr_zero(bits));
          bits &= bits - 1;
          if (t > a) in_tmp.push_back(t);
        }
      }
      const auto nbrs = topo.neighbors(a);
      std::size_t i = 0;
      while (i < nbrs.size() && nbrs[i] <= a) ++i;
      std::size_t j = 0;
      while (i < nbrs.size() || j < in_tmp.size()) {
        NodeId b;
        if (j >= in_tmp.size() || (i < nbrs.size() && nbrs[i] <= in_tmp[j])) {
          b = nbrs[i];
          if (j < in_tmp.size() && in_tmp[j] == b) ++j;
          ++i;
        } else {
          b = in_tmp[j++];
        }
        stored_pairs.emplace_back(a, b);
      }
    }
  }

  const std::size_t pairs = sparse ? stored_pairs.size() : n * (n - 1) / 2;
  const std::size_t pair_words = (pairs + 63) / 64;

  // state_bits: one bad-state bit per undirected pair; state_reals: the
  // pair's drift (dB); state_keys: the pair's fade-stream key — its
  // *global* link identity (root-topology node ids, packed hi << 32 |
  // lo). Keying by global identity means an induced subtopology (a
  // group round on its own channel) sees the same physical link in the
  // same state as a parent-level flood, and no two links ever share a
  // stream; local pair order preserves global order because induced()
  // members are ascending. tables.epoch is the previously materialized
  // epoch (kNoEpoch on a fresh view), which tells us where the chain
  // stands.
  std::uint64_t next_step;
  if (tables.epoch == net::LinkEpochTables::kNoEpoch) {
    tables.state_bits.assign(pair_words, 0);
    tables.state_reals.assign(pairs, 0.0);
    tables.state_keys.resize(pairs);
    if (sparse) {
      for (std::size_t p = 0; p < pairs; ++p) {
        tables.state_keys[p] =
            (static_cast<std::uint64_t>(topo.global_id(stored_pairs[p].first))
             << 32) |
            topo.global_id(stored_pairs[p].second);
      }
    } else {
      for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
          tables.state_keys[pair_index(n, a, b)] =
              (static_cast<std::uint64_t>(
                   topo.global_id(static_cast<NodeId>(a)))
               << 32) |
              topo.global_id(static_cast<NodeId>(b));
        }
      }
    }
    const double stationary_bad =
        params_.p_good_to_bad /
        (params_.p_good_to_bad + params_.p_bad_to_good);
    const std::uint64_t init_base =
        crypto::derive_seed(params_.seed, kStreamGeInit, 0);
    for (std::size_t p = 0; p < pairs; ++p) {
      crypto::Xoshiro256 rng(
          crypto::derive_seed(init_base, tables.state_keys[p], 0));
      if (rng.next_bool(stationary_bad)) {
        tables.state_bits[p / 64] |= std::uint64_t{1} << (p % 64);
      }
    }
    next_step = 1;
  } else {
    MPCIOT_REQUIRE(epoch >= tables.epoch,
                   "LinkDynamics: epochs must be materialized in order");
    next_step = tables.epoch + 1;
  }

  // Walk the Gilbert–Elliott chain (and the drift walk) up to `epoch`.
  // Each (link, step) gets its own derive_seed stream, so the state at
  // `epoch` depends on neither the walk's starting point nor the
  // topology the view is bound to.
  for (std::uint64_t e = next_step; e <= epoch; ++e) {
    const std::uint64_t step_base =
        crypto::derive_seed(params_.seed, kStreamGeStep, e);
    for (std::size_t p = 0; p < pairs; ++p) {
      crypto::Xoshiro256 rng(
          crypto::derive_seed(step_base, tables.state_keys[p], 0));
      const std::uint64_t mask = std::uint64_t{1} << (p % 64);
      const bool bad = (tables.state_bits[p / 64] & mask) != 0;
      const bool flip =
          rng.next_bool(bad ? params_.p_bad_to_good : params_.p_good_to_bad);
      if (flip) tables.state_bits[p / 64] ^= mask;
      // Box-Muller; both uniforms are always consumed so the draw
      // schedule stays fixed even with drift disabled.
      const double u1 = std::max(rng.next_double(), 1e-12);
      const double u2 = rng.next_double();
      if (params_.drift_sigma_db > 0.0) {
        const double gauss =
            std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
        double d = tables.state_reals[p] + gauss * params_.drift_sigma_db;
        const double lim = params_.drift_limit_db;
        // Reflect into [-lim, lim].
        if (d > lim) d = 2.0 * lim - d;
        if (d < -lim) d = -2.0 * lim - d;
        tables.state_reals[p] = std::clamp(d, -lim, lim);
      }
    }
  }

  // Materialize the effective link tables: drifted RSSI through the same
  // logistic curve + receiver penalty + floor rule the frozen tables
  // used, so delta == 0 reproduces the static PRR exactly.
  const net::RadioParams& radio = topo.radio();
  if (sparse) {
    // Sparse payloads aligned with the topology's stored-link orders. A
    // direction that was not stored statically is dropped even if its
    // drifted PRR would clear the floor (no resurrection); a stored
    // direction whose drifted PRR sinks below the floor stays in the
    // lists with p = 0.
    tables.out_prr.assign(topo.num_links(), 0.0);
    tables.in_prr.assign(topo.num_links(), 0.0);
    for (std::size_t p = 0; p < pairs; ++p) {
      const auto [a, b] = stored_pairs[p];
      const bool bad = (tables.state_bits[p / 64] &
                        (std::uint64_t{1} << (p % 64))) != 0;
      const double delta = tables.state_reals[p] -
                           (bad ? params_.bad_extra_loss_db : 0.0);
      const double power = topo.rssi(a, b) + delta;
      double p_ab = radio.prr_from_rssi(power - topo.rx_noise_penalty_db(b));
      double p_ba = radio.prr_from_rssi(power - topo.rx_noise_penalty_db(a));
      if (p_ab < radio.link_floor_prr) p_ab = 0.0;
      if (p_ba < radio.link_floor_prr) p_ba = 0.0;
      const std::size_t iab = topo.link_index(a, b);
      if (iab != net::Topology::kNoLink) {
        tables.out_prr[iab] = p_ab;
        tables.in_prr[topo.in_index(b, a)] = p_ab;
      }
      const std::size_t iba = topo.link_index(b, a);
      if (iba != net::Topology::kNoLink) {
        tables.out_prr[iba] = p_ba;
        tables.in_prr[topo.in_index(a, b)] = p_ba;
      }
    }
    return;
  }
  tables.prr.assign(n * n, 0.0);
  tables.prr_in.assign(n * n, 0.0);
  tables.rx_words.assign(n * topo.node_words(), 0);
  const std::size_t words = topo.node_words();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const std::size_t p = pair_index(n, a, b);
      const bool bad = (tables.state_bits[p / 64] &
                        (std::uint64_t{1} << (p % 64))) != 0;
      const double delta = tables.state_reals[p] -
                           (bad ? params_.bad_extra_loss_db : 0.0);
      const double power = topo.rssi(static_cast<NodeId>(a),
                                     static_cast<NodeId>(b)) + delta;
      double p_ab = radio.prr_from_rssi(
          power - topo.rx_noise_penalty_db(static_cast<NodeId>(b)));
      double p_ba = radio.prr_from_rssi(
          power - topo.rx_noise_penalty_db(static_cast<NodeId>(a)));
      if (p_ab < radio.link_floor_prr) p_ab = 0.0;
      if (p_ba < radio.link_floor_prr) p_ba = 0.0;
      tables.prr[a * n + b] = p_ab;
      tables.prr[b * n + a] = p_ba;
      tables.prr_in[b * n + a] = p_ab;
      tables.prr_in[a * n + b] = p_ba;
      if (p_ab > 0.0) {
        tables.rx_words[b * words + a / 64] |= std::uint64_t{1} << (a % 64);
      }
      if (p_ba > 0.0) {
        tables.rx_words[a * words + b / 64] |= std::uint64_t{1} << (b % 64);
      }
    }
  }
}

NodeChurn::NodeChurn(std::size_t node_count, NodeChurnParams params)
    : params_(params), down_(node_count) {
  MPCIOT_REQUIRE(params_.crashes_per_sec >= 0.0,
                 "NodeChurn: crash rate must be non-negative");
  MPCIOT_REQUIRE(params_.mean_downtime_us > 0,
                 "NodeChurn: mean downtime must be positive");
  MPCIOT_REQUIRE(params_.horizon_us > 0,
                 "NodeChurn: horizon must be positive");
  if (params_.crashes_per_sec <= 0.0) return;

  const double mean_up_us =
      static_cast<double>(kSecond) / params_.crashes_per_sec;
  for (NodeId node = 0; node < node_count; ++node) {
    if (node == params_.immortal) continue;
    crypto::Xoshiro256 rng(
        crypto::derive_seed(params_.seed, kStreamChurn, node));
    SimTime t = 0;
    while (t < params_.horizon_us) {
      t += draw_exp_us(rng, mean_up_us);
      if (t >= params_.horizon_us) break;
      const SimTime dur =
          draw_exp_us(rng, static_cast<double>(params_.mean_downtime_us));
      down_[node].emplace_back(t, t + dur);
      t += dur;
    }
  }
}

bool NodeChurn::is_down(NodeId node, SimTime t) const {
  const auto& intervals = down_[node];
  if (intervals.empty()) return false;
  // First interval starting after t; the candidate is its predecessor.
  auto it = std::upper_bound(
      intervals.begin(), intervals.end(), t,
      [](SimTime v, const std::pair<SimTime, SimTime>& iv) {
        return v < iv.first;
      });
  if (it == intervals.begin()) return false;
  --it;
  return t < it->second;
}

}  // namespace mpciot::sim::dynamics
