// Deterministic discrete-event queue.
//
// Events at equal timestamps pop in insertion order (a strict tiebreak on
// a monotone sequence number), which makes every simulation bit-for-bit
// reproducible for a given seed — a property the test suite pins.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace mpciot::sim {

using EventFn = std::function<void()>;

/// Handle used to cancel a scheduled event.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedule `fn` at absolute time `at`. Precondition: at >= now().
  EventId schedule_at(SimTime at, EventFn fn);

  /// Schedule `fn` `delay` after now.
  EventId schedule_in(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Current simulated time.
  SimTime now() const { return now_; }

  bool empty() const { return live_count_ == 0; }
  std::size_t pending() const { return live_count_; }

  /// Pop and run the next event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or `until` is passed (events strictly
  /// after `until` stay queued). Returns the number of events run.
  std::size_t run(SimTime until = INT64_MAX);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    EventId id;
    // Ordered as a min-heap via operator> in the priority queue.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  // Callbacks are stored out-of-line so cancel() is O(1).
  std::vector<EventFn> callbacks_;
  std::vector<EventId> free_slots_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace mpciot::sim
