// mpciot-node: one deployed node of the distributed runtime. Connects
// to the coordinator on 127.0.0.1, joins its generation, and plays the
// share+sum rounds until Shutdown. Exit codes: 0 clean, 1 failure,
// 2 injected crash, 3 Hello refused.
#include <cstdio>
#include <string>

#include "bench_core/options.hpp"
#include "rt/node.hpp"

int main(int argc, char** argv) {
  using mpciot::bench_core::OptionParser;
  mpciot::rt::NodeConfig config;
  std::uint32_t node = 0;
  std::uint32_t port = 0;
  std::uint32_t crash_at_round = mpciot::rt::NodeConfig::kNoCrash;
  std::uint32_t generation = 1;
  std::uint64_t seed = 1;
  std::uint32_t node_count = 0;

  OptionParser parser("mpciot-node: distributed runtime node daemon");
  parser.add_u32("--node", &node, "this node's id (0-based, required)");
  parser.add_u32("--nodes", &node_count, "deployment node count (required)");
  parser.add_u32("--port", &port, "coordinator TCP port (required)");
  parser.add_u32("--generation", &generation, "deployment generation (1)");
  parser.add_u64("--seed", &seed, "deployment seed (1)");
  parser.add_u32("--crash-at-round", &crash_at_round,
                 "fault injection: die mid-round in this round (off)");
  if (!parser.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", parser.error().c_str(),
                 parser.usage(argv[0]).c_str());
    return 1;
  }
  if (node_count < 2 || node >= node_count || port == 0 || port > 0xFFFF) {
    std::fprintf(stderr,
                 "mpciot-node: --nodes >= 2, --node < --nodes and a valid "
                 "--port are required\n");
    return 1;
  }
  config.node = node;
  config.node_count = node_count;
  config.generation = generation;
  config.deployment_seed = seed;
  config.port = static_cast<std::uint16_t>(port);
  config.crash_at_round = crash_at_round;
  return mpciot::rt::run_node(config);
}
