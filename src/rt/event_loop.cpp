#include "rt/event_loop.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"

namespace mpciot::rt {

namespace {

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  MPCIOT_ENSURE(flags >= 0, "rt: fcntl(F_GETFL)");
  MPCIOT_ENSURE(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "rt: fcntl(F_SETFL)");
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

std::int64_t steady_now_ms() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

Connection::Connection(int fd, std::uint64_t id) : fd_(fd), id_(id) {
  set_nonblocking(fd_);
  // Latency matters more than packet count for the tiny control frames.
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Connection::~Connection() {
  if (fd_ >= 0) close(fd_);
}

bool Connection::send_frame(FrameType type, const Bytes& payload) {
  if (dead_ || close_when_flushed_) return false;
  encode_frame(type, payload, out_);
  if (out_.size() - offset_ > kMaxSendQueue) {
    dead_ = true;
    return false;
  }
  return flush();
}

bool Connection::flush() {
  if (dead_) return false;
  while (offset_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + offset_,
                             out_.size() - offset_, MSG_NOSIGNAL);
    if (n > 0) {
      offset_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    dead_ = true;
    return false;
  }
  if (offset_ == out_.size() && offset_ > 0) {
    out_.clear();
    offset_ = 0;
  }
  return true;
}

bool Connection::read_some() {
  if (dead_) return false;
  std::uint8_t buf[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) return true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    dead_ = true;  // EOF (n == 0) or fatal error
    return false;
  }
}

EventLoop::~EventLoop() {
  if (listen_fd_ >= 0) close(listen_fd_);
}

std::uint16_t EventLoop::listen_local(std::uint16_t port) {
  MPCIOT_REQUIRE(listen_fd_ < 0, "rt: listen_local called twice");
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  MPCIOT_ENSURE(listen_fd_ >= 0, "rt: socket()");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  MPCIOT_ENSURE(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
                "rt: bind(127.0.0.1)");
  MPCIOT_ENSURE(listen(listen_fd_, 512) == 0, "rt: listen()");
  socklen_t len = sizeof(addr);
  MPCIOT_ENSURE(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len) == 0,
                "rt: getsockname()");
  set_nonblocking(listen_fd_);
  return ntohs(addr.sin_port);
}

std::optional<std::uint64_t> EventLoop::connect_local(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr = loopback_addr(port);
  for (;;) {
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    close(fd);
    return std::nullopt;
  }
  const std::uint64_t id = next_conn_id_++;
  conns_.push_back(std::make_unique<Connection>(fd, id));
  return id;
}

Connection* EventLoop::find(std::uint64_t conn) {
  for (auto& c : conns_) {
    if (c->id() == conn) return c.get();
  }
  return nullptr;
}

bool EventLoop::send_frame(std::uint64_t conn, FrameType type,
                           const Bytes& payload) {
  Connection* c = find(conn);
  if (c == nullptr) return false;
  return c->send_frame(type, payload);
}

void EventLoop::close_after_flush(std::uint64_t conn) {
  Connection* c = find(conn);
  if (c != nullptr) c->close_when_flushed();
}

std::uint64_t EventLoop::add_timer(std::int64_t delay_ms, TimerFn fn) {
  const std::uint64_t token = next_timer_token_++;
  timers_.emplace(steady_now_ms() + std::max<std::int64_t>(0, delay_ms),
                  Timer{token, std::move(fn)});
  return token;
}

void EventLoop::cancel_timer(std::uint64_t token) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.token == token) {
      timers_.erase(it);
      return;
    }
  }
}

void EventLoop::accept_pending() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient
    }
    const std::uint64_t id = next_conn_id_++;
    conns_.push_back(std::make_unique<Connection>(fd, id));
    if (on_accept_) on_accept_(id);
  }
}

void EventLoop::reap(std::uint64_t conn) {
  const auto it = std::find_if(
      conns_.begin(), conns_.end(),
      [conn](const std::unique_ptr<Connection>& c) {
        return c->id() == conn;
      });
  if (it == conns_.end()) return;
  const bool was_dead = (*it)->dead();
  conns_.erase(it);  // unregister first: handler sees it gone
  if (was_dead && on_close_) on_close_(conn);
}

void EventLoop::run() {
  stopped_ = false;
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> ids;
  while (!stopped_) {
    // 1. Fire due timers (deadline order; re-check stop between).
    const std::int64_t now = steady_now_ms();
    while (!timers_.empty() && timers_.begin()->first <= now && !stopped_) {
      TimerFn fn = std::move(timers_.begin()->second.fn);
      timers_.erase(timers_.begin());
      fn();
    }
    if (stopped_) break;

    // 2. Poll.
    fds.clear();
    ids.clear();
    if (listen_fd_ >= 0) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      ids.push_back(0);
    }
    for (const auto& c : conns_) {
      short events = POLLIN;
      if (c->wants_write()) events |= POLLOUT;
      fds.push_back(pollfd{c->fd(), events, 0});
      ids.push_back(c->id());
    }
    int timeout_ms = 1000;
    if (!timers_.empty()) {
      timeout_ms = static_cast<int>(std::clamp<std::int64_t>(
          timers_.begin()->first - now, 0, 1000));
    }
    const int nready = poll(fds.data(), static_cast<nfds_t>(fds.size()),
                            timeout_ms);
    if (nready < 0 && errno != EINTR) {
      MPCIOT_ENSURE(false, "rt: poll() failed");
    }
    if (nready <= 0) continue;

    // 3. Dispatch. Connections may be added by handlers (accept) but
    //    are only removed in step 4, so indices into `ids` stay valid.
    for (std::size_t i = 0; i < fds.size() && !stopped_; ++i) {
      if (fds[i].revents == 0) continue;
      if (ids[i] == 0) {
        accept_pending();
        continue;
      }
      Connection* c = find(ids[i]);
      if (c == nullptr) continue;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Drain what the kernel still buffers before declaring EOF.
        c->read_some();
      } else if (fds[i].revents & POLLIN) {
        c->read_some();
      }
      while (!stopped_) {
        std::optional<Frame> f = c->decoder().next();
        if (!f.has_value()) break;
        if (on_frame_) on_frame_(ids[i], std::move(*f));
        c = find(ids[i]);  // handler may have closed it
        if (c == nullptr) break;
      }
      if (c != nullptr && c->decoder().corrupt()) c->mark_dead();
      if (c != nullptr && (fds[i].revents & POLLOUT)) c->flush();
    }

    // 4. Reap dead / drained-for-close connections.
    std::vector<std::uint64_t> to_reap;
    for (const auto& c : conns_) {
      if (c->should_close()) to_reap.push_back(c->id());
    }
    for (const std::uint64_t id : to_reap) reap(id);
  }
}

}  // namespace mpciot::rt
