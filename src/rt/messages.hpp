// Typed payloads of the runtime's control frames. Every message has an
// `encode() -> Bytes` and a strict `decode(payload) -> optional` that
// rejects short, oversized, or internally inconsistent payloads (a
// decoder never trusts list lengths without bounding them first).
//
// The two data-plane messages, ShareFwd and SumReport, carry the
// existing core::wire packets verbatim: the coordinator relays
// SharePackets end-to-end without holding the pairwise AES keys of the
// (source, holder) pair, so the star topology adds no trust — exactly
// the paper's model where the network sees only ciphertext.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/wire.hpp"
#include "rt/frame.hpp"

namespace mpciot::rt {

/// node -> coordinator, first frame on a connection. The coordinator
/// refuses a Hello whose generation does not match its own — a node
/// left over from a previous deployment (e.g. across a coordinator
/// restart) must not join the new one.
struct Hello {
  std::uint32_t generation = 0;
  NodeId node = 0;
  std::uint32_t node_count = 0;
  std::uint64_t deployment_seed = 0;

  Bytes encode() const;
  static std::optional<Hello> decode(const Bytes& payload);
};

/// coordinator -> node: the Hello was rejected; the connection closes.
struct Refuse {
  std::uint32_t generation = 0;  ///< the coordinator's generation

  Bytes encode() const;
  static std::optional<Refuse> decode(const Bytes& payload);
};

/// coordinator -> node: the node's group assignment for the deployment.
/// Sources and holders are global ids in schedule order; bit i of every
/// contributor mask refers to sources[i].
struct Assign {
  std::uint32_t group = 0;
  std::uint32_t degree = 1;
  std::vector<NodeId> sources;
  std::vector<NodeId> holders;

  Bytes encode() const;
  static std::optional<Assign> decode(const Bytes& payload);
};

/// coordinator -> nodes: begin round `round`. Secrets are derived, not
/// carried: every party computes deterministic_secret(seed, round, id).
struct RoundStart {
  std::uint16_t round = 0;

  Bytes encode() const;
  static std::optional<RoundStart> decode(const Bytes& payload);
};

/// Relayed SharePacket. node -> coordinator: deliver to `dst`;
/// coordinator -> node: a share addressed to you. The 18-byte packet
/// stays AES-CTR + CMAC protected under the (source, dst) pairwise key
/// end to end.
struct ShareFwd {
  NodeId dst = 0;
  Bytes packet;  ///< exactly core::SharePacket::kWireSize bytes

  Bytes encode() const;
  static std::optional<ShareFwd> decode(const Bytes& payload);
};

/// holder -> coordinator: the holder's (partial or complete) point-sum.
struct SumReport {
  Bytes packet;  ///< exactly core::SumPacket::kWireSize bytes

  Bytes encode() const;
  static std::optional<SumReport> decode(const Bytes& payload);
};

/// coordinator -> holder: report your point-sum now, complete or not
/// (straggler re-request after the phase timeout).
struct SumRequest {
  std::uint16_t round = 0;

  Bytes encode() const;
  static std::optional<SumRequest> decode(const Bytes& payload);
};

/// coordinator -> nodes: the round's outcome (informational; nodes use
/// it to discard round state).
struct RoundResult {
  std::uint16_t round = 0;
  std::uint8_t ok = 0;
  std::uint64_t aggregate = 0;  ///< canonical Fp61 value; 0 when !ok

  Bytes encode() const;
  static std::optional<RoundResult> decode(const Bytes& payload);
};

/// coordinator -> nodes: campaign complete, exit cleanly. Empty payload.
struct Shutdown {
  Bytes encode() const { return {}; }
  static std::optional<Shutdown> decode(const Bytes& payload);
};

/// Encode `msg` into a full frame appended to `out`.
template <typename Message>
void encode_message_frame(FrameType type, const Message& msg, Bytes& out) {
  encode_frame(type, msg.encode(), out);
}

}  // namespace mpciot::rt
