// Length-prefixed typed framing for the distributed runtime's TCP
// streams. Every frame is
//
//   offset  size  field
//   0       2     magic 0x4D43 ("CM"), little-endian
//   2       1     protocol version (kVersion)
//   3       1     frame type (FrameType)
//   4       4     payload length, little-endian
//   8       len   payload
//
// All multi-byte fields are little-endian by explicit byte shifts,
// matching core::wire, so heterogeneous hosts interoperate. The decoder
// is an incremental byte-stream consumer (TCP gives arbitrary read
// boundaries) with hard rejects: a bad magic, unknown version or type,
// or a length above kMaxPayload poisons the stream permanently — a
// desynchronized peer cannot be trusted to resynchronize, the
// connection must be dropped.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"

namespace mpciot::rt {

inline constexpr std::uint16_t kMagic = 0x4D43;
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 8;
/// Hard cap on a frame payload. The largest legitimate payload is an
/// Assign for a 64-source group (a few hundred bytes); 64 KiB leaves
/// headroom for future messages while bounding a malicious peer's
/// memory commitment per connection.
inline constexpr std::uint32_t kMaxPayload = 64 * 1024;

/// Put/get helpers shared by the frame header and message payloads.
void put_u16(Bytes& out, std::uint16_t v);
void put_u32(Bytes& out, std::uint32_t v);
void put_u64(Bytes& out, std::uint64_t v);

/// Bounded cursor over a received payload. All reads fail (returning
/// false and leaving `out` untouched) once the cursor has overrun.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const Bytes& b) : Reader(b.data(), b.size()) {}

  bool u8(std::uint8_t* out);
  bool u16(std::uint16_t* out);
  bool u32(std::uint32_t* out);
  bool u64(std::uint64_t* out);
  /// Copy `n` raw bytes into `out` (resized to n).
  bool raw(std::size_t n, Bytes* out);

  /// True iff every byte was consumed and nothing overran — decoders
  /// require this so trailing garbage is rejected, not ignored.
  bool exhausted() const { return !failed_ && pos_ == size_; }
  std::size_t remaining() const { return failed_ ? 0 : size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

enum class FrameType : std::uint8_t {
  kHello = 1,       ///< node -> coordinator: join a generation
  kRefuse = 2,      ///< coordinator -> node: join rejected, close
  kAssign = 3,      ///< coordinator -> node: group round spec
  kRoundStart = 4,  ///< coordinator -> nodes: begin round r
  kShareFwd = 5,    ///< node <-> coordinator: relayed SharePacket
  kSumReport = 6,   ///< holder -> coordinator: SumPacket
  kSumRequest = 7,  ///< coordinator -> holder: report now (straggler)
  kRoundResult = 8, ///< coordinator -> nodes: round outcome
  kShutdown = 9,    ///< coordinator -> nodes: campaign over, exit
};

/// True iff `t` names a FrameType the decoder accepts.
bool frame_type_known(std::uint8_t t);

struct Frame {
  FrameType type = FrameType::kHello;
  Bytes payload;
};

/// Append one encoded frame (header + payload) to `out`.
/// Precondition: payload.size() <= kMaxPayload.
void encode_frame(FrameType type, const Bytes& payload, Bytes& out);

/// Incremental frame decoder over a TCP byte stream.
class FrameDecoder {
 public:
  /// Append received bytes. No-op once the stream is poisoned.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Extract the next complete frame, or nullopt if more bytes are
  /// needed or the stream is poisoned (check corrupt()).
  std::optional<Frame> next();

  /// The stream violated the framing contract; drop the connection.
  bool corrupt() const { return corrupt_; }

  /// Bytes currently buffered (bounded by kHeaderSize + kMaxPayload:
  /// next() must be drained between feeds; feed() itself never grows
  /// the buffer past one maximal frame plus the fed chunk).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  Bytes buffer_;
  std::size_t consumed_ = 0;
  bool corrupt_ = false;
};

}  // namespace mpciot::rt
