#include "rt/node.hpp"

#include <unistd.h>

#include <utility>

#include "crypto/prng.hpp"
#include "rt/deployment.hpp"

namespace mpciot::rt {

namespace {

/// Dealer-DRBG stream tag (node-local; the coordinator never needs it).
constexpr std::uint64_t kStreamDeal = 0x5254444Cull;  // "RTDL"

class NodeDaemon {
 public:
  explicit NodeDaemon(const NodeConfig& config)
      : config_(config), keys_(config.deployment_seed, config.node_count) {}

  int run() {
    const auto conn = loop_.connect_local(config_.port);
    if (!conn.has_value()) return kExitError;
    conn_ = *conn;

    Hello hello;
    hello.generation = config_.generation;
    hello.node = config_.node;
    hello.node_count = config_.node_count;
    hello.deployment_seed = config_.deployment_seed;
    if (!loop_.send_frame(conn_, FrameType::kHello, hello.encode())) {
      return kExitError;
    }

    loop_.set_on_frame([this](std::uint64_t c, Frame&& f) {
      if (c == conn_) on_frame(std::move(f));
    });
    loop_.set_on_close([this](std::uint64_t c) {
      // Coordinator gone without Shutdown: a failure unless refused.
      if (c == conn_ && exit_code_ == kExitError) loop_.stop();
    });
    loop_.run();
    return exit_code_;
  }

 private:
  void on_frame(Frame&& frame) {
    switch (frame.type) {
      case FrameType::kRefuse:
        exit_code_ = kExitRefused;
        loop_.stop();
        return;
      case FrameType::kAssign: {
        auto msg = Assign::decode(frame.payload);
        if (!msg.has_value()) return fail();
        assign_ = std::move(*msg);
        return;
      }
      case FrameType::kRoundStart: {
        const auto msg = RoundStart::decode(frame.payload);
        if (!msg.has_value() || !assign_.has_value()) return fail();
        return start_round(msg->round);
      }
      case FrameType::kShareFwd: {
        const auto msg = ShareFwd::decode(frame.payload);
        if (!msg.has_value()) return fail();
        return on_share(*msg);
      }
      case FrameType::kSumRequest: {
        const auto msg = SumRequest::decode(frame.payload);
        if (!msg.has_value()) return fail();
        if (holder_.has_value() && round_ == msg->round) report_sum();
        return;
      }
      case FrameType::kRoundResult:
        // Informational; round state is replaced on the next RoundStart.
        return;
      case FrameType::kShutdown:
        exit_code_ = kExitOk;
        loop_.stop();
        return;
      default:
        return fail();  // peer sent a node-only message back
    }
  }

  void start_round(std::uint16_t round) {
    round_ = round;
    core::roles::RoundSpec spec;
    spec.sources = assign_->sources;
    spec.holders = assign_->holders;
    spec.degree = assign_->degree;
    spec.round = round;

    holder_.reset();
    reported_ = false;
    const auto holder_idx = core::roles::index_of(spec.holders, config_.node);
    if (holder_idx.has_value()) holder_.emplace(spec, config_.node);

    if (core::roles::index_of(spec.sources, config_.node).has_value()) {
      const field::Fp61 secret = deterministic_secret(
          config_.deployment_seed, round, config_.node);
      crypto::CtrDrbg drbg(
          crypto::derive_seed(config_.deployment_seed, kStreamDeal,
                              config_.node),
          round);
      const core::roles::SourceRole source(spec, config_.node, secret, drbg);

      const bool crash_now = config_.crash_at_round == round;
      Bytes wire;
      for (std::size_t i = 0; i < spec.holders.size(); ++i) {
        // Crash injection: deal to fewer than degree+1 holders, then
        // die — no surviving holder set can reconstruct a mask that
        // includes this node, forcing threshold recovery on the rest.
        if (crash_now && i >= spec.degree) break;
        if (source.encode_share_for(i, keys_, wire)) {
          ShareFwd fwd;
          fwd.dst = spec.holders[i];
          fwd.packet = wire;
          if (!loop_.send_frame(conn_, FrameType::kShareFwd, fwd.encode())) {
            return fail();
          }
        } else if (holder_.has_value()) {
          holder_->accept_local(config_.node, source.self_share());
        }
      }
      if (crash_now) _exit(kExitCrashed);
    }
    maybe_report();
  }

  void on_share(const ShareFwd& msg) {
    if (!holder_.has_value() || msg.dst != config_.node) return;
    holder_->accept_wire(msg.packet, keys_);
    maybe_report();
  }

  /// Report the point-sum once, as soon as every group source is in.
  void maybe_report() {
    if (holder_.has_value() && !reported_ && holder_->complete()) {
      report_sum();
    }
  }

  void report_sum() {
    if (holder_->contributor_mask() == 0) return;  // nothing to report
    SumReport report;
    report.packet = holder_->sum_packet().encode();
    if (!loop_.send_frame(conn_, FrameType::kSumReport, report.encode())) {
      return fail();
    }
    reported_ = true;
  }

  void fail() {
    exit_code_ = kExitError;
    loop_.stop();
  }

  NodeConfig config_;
  crypto::KeyStore keys_;
  EventLoop loop_;
  std::uint64_t conn_ = 0;
  std::optional<Assign> assign_;
  std::optional<core::roles::HolderRole> holder_;
  std::uint16_t round_ = 0;
  bool reported_ = false;
  int exit_code_ = kExitError;
};

}  // namespace

int run_node(const NodeConfig& config) {
  NodeDaemon daemon(config);
  return daemon.run();
}

}  // namespace mpciot::rt
