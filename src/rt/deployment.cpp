#include "rt/deployment.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "crypto/prng.hpp"
#include "net/partition.hpp"
#include "net/testbeds.hpp"

namespace mpciot::rt {

namespace {

/// Target group size: one SumPacket bitmap comfortably covers it and a
/// chain round stays short, while groups stay large enough that losing
/// a node keeps the threshold reachable.
constexpr std::uint32_t kTargetGroupSize = 48;
constexpr std::uint32_t kMaxGroupSize = 64;
constexpr std::uint32_t kMinGroupSize = 4;

}  // namespace

DeploymentPlan plan_deployment(std::uint64_t deployment_seed,
                               std::uint32_t node_count) {
  MPCIOT_REQUIRE(node_count >= 2, "rt: a deployment needs >= 2 nodes");
  // Constant-density uniform placement (~8 m spacing), same generator
  // the simulator testbeds use; random_uniform retries internally until
  // the topology is connected.
  const double side =
      std::max(16.0, std::sqrt(static_cast<double>(node_count)) * 8.0);
  const net::Topology topo = net::testbeds::random_uniform(
      node_count, side, side,
      crypto::derive_seed(deployment_seed, kStreamPlacement, node_count));

  std::uint32_t target_groups =
      std::max<std::uint32_t>(1, (node_count + kTargetGroupSize - 1) /
                                     kTargetGroupSize);
  net::partition::Partition part;
  for (;;) {
    part = net::partition::grid_blocks(
        topo, target_groups,
        std::min(kMinGroupSize, std::max(2u, node_count / 2)));
    bool oversized = false;
    for (const auto& g : part.groups) {
      if (g.size() > kMaxGroupSize) oversized = true;
    }
    if (!oversized) break;
    // grid_blocks may merge below the target; asking for more blocks
    // strictly shrinks the largest group eventually (bounded by n).
    ++target_groups;
    MPCIOT_ENSURE(target_groups <= node_count,
                  "rt: could not partition below the 64-source cap");
  }

  DeploymentPlan plan;
  plan.group_of = part.group_of;
  plan.groups.reserve(part.groups.size());
  for (const auto& members : part.groups) {
    core::roles::RoundSpec spec;
    spec.sources = members;  // S3 arrangement: every member deals...
    spec.holders = members;  // ...and every member holds a point-sum.
    // Threshold degree+1 stays below the group size whenever the group
    // has >= 3 members, so one holder crash never loses the group.
    spec.degree = std::max<std::size_t>(
        1, std::min<std::size_t>(2, members.size() - 2));
    core::roles::validate(spec);
    plan.groups.push_back(std::move(spec));
  }
  return plan;
}

field::Fp61 deterministic_secret(std::uint64_t deployment_seed,
                                 std::uint32_t round, NodeId node) {
  crypto::Xoshiro256 rng(crypto::derive_seed(
      deployment_seed, kStreamSecret,
      (static_cast<std::uint64_t>(round) << 32) | node));
  return rng.next_fp61();
}

field::Fp61 expected_sum(std::uint64_t deployment_seed, std::uint32_t round,
                         const core::roles::RoundSpec& spec,
                         std::uint64_t contributor_mask) {
  field::Fp61 sum{0};
  for (std::size_t i = 0; i < spec.sources.size(); ++i) {
    if (contributor_mask & (std::uint64_t{1} << i)) {
      sum += deterministic_secret(deployment_seed, round, spec.sources[i]);
    }
  }
  return sum;
}

}  // namespace mpciot::rt
