// The coordinator daemon: accepts one connection per node, computes the
// deployment plan (net::partition over the seeded placement), assigns
// groups, and drives the round state machine:
//
//                 +-- all Hellos --+
//   [joining] ----+                +---> [round r: sharing+summing]
//       |  stale/duplicate Hello         |        |           |
//       |  -> Refuse, count it           | early  | T1        | T2
//       v                                v        v           v
//   (refused peers closed)          finalize   SumRequest  finalize
//                                   (full-mask (straggler  (best
//                                   threshold)  re-request) effort)
//                                        |
//                                        +--> RoundResult -> next round
//                                             ... -> Shutdown, report
//
// Determinism: the emitted JSON document is a pure function of the
// campaign outcome — aggregates are reconstructed through
// core::roles::AggregatorRole (arrival-order independent), rows carry
// no wall-clock fields (timing goes to stderr), and per-round expected
// sums are recomputed locally from rt::deterministic_secret. Two runs
// of the same healthy deployment produce byte-identical reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <vector>

#include "bench_core/json.hpp"
#include "common/types.hpp"
#include "core/roles.hpp"
#include "rt/deployment.hpp"
#include "rt/event_loop.hpp"
#include "rt/messages.hpp"

namespace mpciot::rt {

struct CoordinatorConfig {
  std::uint32_t node_count = 0;
  std::uint32_t rounds = 1;
  std::uint32_t generation = 1;
  std::uint64_t deployment_seed = 1;
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  /// Phase timeouts (wall clock; they bound recovery, never the JSON).
  std::int64_t t1_straggler_ms = 2000;  ///< round start -> SumRequest
  std::int64_t t2_finalize_ms = 4000;   ///< round start -> best effort
  std::int64_t join_timeout_ms = 60000;
};

/// One group's outcome in one round.
struct GroupOutcome {
  bool ok = false;  ///< reconstructed and matched the expected sum
  std::uint64_t aggregate = 0;
  std::uint64_t contributor_mask = 0;
  std::uint32_t sums_used = 0;
};

/// One round's outcome.
struct RoundOutcome {
  std::uint32_t round = 0;
  bool ok = false;           ///< every group ok
  bool full_coverage = false;  ///< every source of every group covered
  std::uint64_t aggregate = 0;  ///< sum over reconstructed groups
  std::uint64_t expected = 0;   ///< expected sum for the covered masks
  std::uint32_t contributors = 0;
  std::vector<GroupOutcome> groups;
  std::vector<NodeId> crashed;  ///< nodes lost during this round, sorted
};

class Coordinator {
 public:
  explicit Coordinator(const CoordinatorConfig& config);

  /// Bind the listen socket; returns the bound port. Call before run().
  std::uint16_t bind();
  std::uint16_t port() const { return port_; }

  /// Drive the campaign to completion. Returns the process exit code
  /// (0 iff every round of every group reconstructed and matched).
  /// `progress` (may be null) receives human-readable timing lines —
  /// never part of the deterministic report.
  int run(std::ostream* progress);

  /// The deterministic campaign report ("mpciot-bench/1" schema).
  const bench_core::JsonValue& report() const { return report_; }
  const std::vector<RoundOutcome>& outcomes() const { return outcomes_; }
  std::uint32_t refused_hellos() const { return refused_hellos_; }

 private:
  enum class State { kJoining, kRunning, kDone };

  void on_accept(std::uint64_t conn);
  void on_frame(std::uint64_t conn, Frame&& frame);
  void on_close(std::uint64_t conn);
  void on_hello(std::uint64_t conn, const Hello& hello);
  void start_campaign();
  void start_round();
  void on_share_fwd(std::uint64_t conn, const ShareFwd& msg);
  void on_sum_report(std::uint64_t conn, const SumReport& msg);
  void maybe_finalize_early(std::uint32_t group);
  void request_stragglers();
  void finalize_round();
  void finish_campaign();
  void build_report();

  core::roles::RoundSpec spec_for_round(std::uint32_t group) const;

  CoordinatorConfig config_;
  DeploymentPlan plan_;
  EventLoop loop_;
  std::uint16_t port_ = 0;
  State state_ = State::kJoining;

  std::vector<std::uint64_t> conn_of_node_;  ///< 0 = not connected
  std::map<std::uint64_t, NodeId> node_of_conn_;
  std::uint32_t joined_ = 0;
  std::uint32_t refused_hellos_ = 0;
  std::vector<char> crashed_;  ///< per node

  std::uint32_t round_ = 0;
  std::vector<std::optional<core::roles::AggregatorRole>> aggregators_;
  std::vector<char> group_final_;
  std::vector<std::optional<GroupOutcome>> group_outcome_;
  std::vector<char> reported_;  ///< per node, this round
  std::vector<NodeId> crashed_this_round_;
  std::uint64_t t1_token_ = 0;
  std::uint64_t t2_token_ = 0;
  std::int64_t campaign_start_ms_ = 0;

  std::vector<RoundOutcome> outcomes_;
  bench_core::JsonValue report_;
  std::ostream* progress_ = nullptr;
  int exit_code_ = 0;
};

}  // namespace mpciot::rt
