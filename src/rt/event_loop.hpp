// Single-threaded poll(2) event loop driving the runtime's TCP
// connections — small enough to audit, with the three properties the
// round state machines rely on:
//
//   * nonblocking writes behind a bounded per-connection send queue: a
//     peer that stops reading can delay only its own traffic, and a
//     queue overrunning kMaxSendQueue marks the connection dead instead
//     of growing without bound;
//   * per-frame dispatch: complete frames (rt::FrameDecoder) are handed
//     to the frame handler one at a time, in arrival order;
//   * deterministic one-shot timers on the monotonic clock, fired in
//     (deadline, insertion) order — the coordinator's phase timeouts.
//
// Loopback only by construction: sockets bind/connect 127.0.0.1. The
// runtime is a measurement harness, not an internet-facing service.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "rt/frame.hpp"

namespace mpciot::rt {

/// Monotonic clock, milliseconds.
std::int64_t steady_now_ms();

/// One nonblocking TCP connection with a bounded send queue.
class Connection {
 public:
  /// Queue bound: one full round of relayed shares for the largest
  /// group is ~120 KiB; 4 MiB absorbs bursts while still catching a
  /// wedged peer quickly.
  static constexpr std::size_t kMaxSendQueue = 4 * 1024 * 1024;

  /// Takes ownership of `fd` (already connected) and makes it
  /// nonblocking.
  explicit Connection(int fd, std::uint64_t id);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  std::uint64_t id() const { return id_; }
  int fd() const { return fd_; }

  /// Queue one frame. Attempts an eager flush; returns false (and marks
  /// the connection dead) if the queue bound would be exceeded or the
  /// socket failed.
  bool send_frame(FrameType type, const Bytes& payload);

  /// Flush as much queued output as the socket accepts. Returns false
  /// on a fatal socket error (connection marked dead).
  bool flush();

  bool wants_write() const { return out_.size() > offset_; }
  bool dead() const { return dead_; }
  void mark_dead() { dead_ = true; }

  /// Close once the send queue drains (used for Refuse / Shutdown).
  void close_when_flushed() { close_when_flushed_ = true; }
  bool should_close() const {
    return dead_ || (close_when_flushed_ && !wants_write());
  }

  FrameDecoder& decoder() { return decoder_; }

  /// Read whatever the socket holds into the frame decoder. Returns
  /// false on EOF or a fatal error (connection marked dead).
  bool read_some();

 private:
  int fd_;
  std::uint64_t id_;
  Bytes out_;
  std::size_t offset_ = 0;  ///< bytes of out_ already written
  FrameDecoder decoder_;
  bool dead_ = false;
  bool close_when_flushed_ = false;
};

/// The loop. Handlers are plain std::functions set once before run().
class EventLoop {
 public:
  using FrameHandler = std::function<void(std::uint64_t conn, Frame&&)>;
  using ConnHandler = std::function<void(std::uint64_t conn)>;
  using TimerFn = std::function<void()>;

  EventLoop() = default;
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Bind + listen on 127.0.0.1:`port` (0 = ephemeral). Returns the
  /// actually bound port. Call at most once.
  std::uint16_t listen_local(std::uint16_t port);

  /// Connect to 127.0.0.1:`port` (blocking connect, then nonblocking).
  /// Returns the connection id, or nullopt on failure.
  std::optional<std::uint64_t> connect_local(std::uint16_t port);

  void set_on_frame(FrameHandler h) { on_frame_ = std::move(h); }
  void set_on_accept(ConnHandler h) { on_accept_ = std::move(h); }
  /// Fired once per connection on EOF, fatal error, framing corruption,
  /// or queue overrun — after the connection is unregistered, so
  /// send_frame(conn) inside the handler is a no-op returning false.
  void set_on_close(ConnHandler h) { on_close_ = std::move(h); }

  /// Queue a frame on `conn`. Returns false if the connection is gone
  /// or its queue overran (the close handler will fire next tick).
  bool send_frame(std::uint64_t conn, FrameType type, const Bytes& payload);

  /// Close `conn` once its pending output drains.
  void close_after_flush(std::uint64_t conn);

  /// One-shot timer `delay_ms` from now; returns a cancel token.
  std::uint64_t add_timer(std::int64_t delay_ms, TimerFn fn);
  void cancel_timer(std::uint64_t token);

  std::size_t connection_count() const { return conns_.size(); }

  /// Run until stop(). Dispatches, in each tick: due timers, readable
  /// frames, writable flushes, closes.
  void run();
  void stop() { stopped_ = true; }

 private:
  struct Timer {
    std::uint64_t token;
    TimerFn fn;
  };

  Connection* find(std::uint64_t conn);
  void accept_pending();
  void reap(std::uint64_t conn);

  int listen_fd_ = -1;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::multimap<std::int64_t, Timer> timers_;  ///< deadline_ms -> timer
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t next_timer_token_ = 1;
  bool stopped_ = false;
  FrameHandler on_frame_;
  ConnHandler on_accept_;
  ConnHandler on_close_;
};

}  // namespace mpciot::rt
