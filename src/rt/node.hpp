// The node daemon: one process per deployed node, speaking the rt
// framing to the coordinator over loopback TCP. The coordinator is a
// star relay only — SharePackets stay encrypted under the pairwise
// (source, holder) AES keys end to end, so the daemon trusts it for
// liveness, never for confidentiality.
//
// Per round the daemon plays the core::roles phases of its group:
// SourceRole (deal + send ShareFwd per holder), HolderRole (accumulate
// relayed shares, report the point-sum when complete or when the
// coordinator re-requests), while the coordinator plays AggregatorRole.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/types.hpp"
#include "core/roles.hpp"
#include "crypto/keystore.hpp"
#include "rt/event_loop.hpp"
#include "rt/messages.hpp"

namespace mpciot::rt {

/// Node exit codes, distinguishable by the launcher and the tests.
inline constexpr int kExitOk = 0;        ///< clean Shutdown
inline constexpr int kExitError = 1;     ///< protocol/socket failure
inline constexpr int kExitCrashed = 2;   ///< --crash-at-round fired
inline constexpr int kExitRefused = 3;   ///< coordinator refused Hello

struct NodeConfig {
  NodeId node = 0;
  std::uint32_t node_count = 0;
  std::uint32_t generation = 1;
  std::uint64_t deployment_seed = 1;
  std::uint16_t port = 0;  ///< coordinator port on 127.0.0.1
  /// Fault injection: on this round's RoundStart, deal shares to fewer
  /// than degree+1 holders, then _exit(kExitCrashed) mid-round (so the
  /// partial masks force the coordinator down the threshold-recovery
  /// path). kNoCrash = never.
  std::uint32_t crash_at_round = kNoCrash;

  static constexpr std::uint32_t kNoCrash = 0xFFFFFFFFu;
};

/// Runs the full daemon life cycle (connect, Hello, Assign, rounds,
/// Shutdown) and returns the process exit code.
int run_node(const NodeConfig& config);

}  // namespace mpciot::rt
