#include "rt/messages.hpp"

namespace mpciot::rt {

namespace {

/// Cap on Assign list lengths: one round addresses at most 64 sources
/// (the SumPacket bitmap width); holders are bounded by the same group.
constexpr std::uint32_t kMaxAssignList = 64;

void put_id_list(Bytes& out, const std::vector<NodeId>& ids) {
  put_u16(out, static_cast<std::uint16_t>(ids.size()));
  for (const NodeId id : ids) put_u32(out, id);
}

bool get_id_list(Reader& r, std::vector<NodeId>* ids) {
  std::uint16_t n = 0;
  if (!r.u16(&n)) return false;
  if (n == 0 || n > kMaxAssignList) return false;
  // Bound before trusting: n u32s must actually be present.
  if (r.remaining() < 4u * n) return false;
  ids->clear();
  ids->reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    std::uint32_t id = 0;
    if (!r.u32(&id)) return false;
    ids->push_back(id);
  }
  return true;
}

}  // namespace

Bytes Hello::encode() const {
  Bytes out;
  put_u32(out, generation);
  put_u32(out, node);
  put_u32(out, node_count);
  put_u64(out, deployment_seed);
  return out;
}

std::optional<Hello> Hello::decode(const Bytes& payload) {
  Reader r(payload);
  Hello m;
  if (!r.u32(&m.generation) || !r.u32(&m.node) || !r.u32(&m.node_count) ||
      !r.u64(&m.deployment_seed) || !r.exhausted()) {
    return std::nullopt;
  }
  return m;
}

Bytes Refuse::encode() const {
  Bytes out;
  put_u32(out, generation);
  return out;
}

std::optional<Refuse> Refuse::decode(const Bytes& payload) {
  Reader r(payload);
  Refuse m;
  if (!r.u32(&m.generation) || !r.exhausted()) return std::nullopt;
  return m;
}

Bytes Assign::encode() const {
  Bytes out;
  put_u32(out, group);
  put_u32(out, degree);
  put_id_list(out, sources);
  put_id_list(out, holders);
  return out;
}

std::optional<Assign> Assign::decode(const Bytes& payload) {
  Reader r(payload);
  Assign m;
  std::uint32_t degree = 0;
  if (!r.u32(&m.group) || !r.u32(&degree)) return std::nullopt;
  if (degree == 0 || degree > kMaxAssignList) return std::nullopt;
  m.degree = degree;
  if (!get_id_list(r, &m.sources) || !get_id_list(r, &m.holders) ||
      !r.exhausted()) {
    return std::nullopt;
  }
  if (m.degree + 1 > m.holders.size()) return std::nullopt;
  return m;
}

Bytes RoundStart::encode() const {
  Bytes out;
  put_u16(out, round);
  return out;
}

std::optional<RoundStart> RoundStart::decode(const Bytes& payload) {
  Reader r(payload);
  RoundStart m;
  if (!r.u16(&m.round) || !r.exhausted()) return std::nullopt;
  return m;
}

Bytes ShareFwd::encode() const {
  Bytes out;
  put_u32(out, dst);
  out.insert(out.end(), packet.begin(), packet.end());
  return out;
}

std::optional<ShareFwd> ShareFwd::decode(const Bytes& payload) {
  Reader r(payload);
  ShareFwd m;
  if (!r.u32(&m.dst) ||
      !r.raw(core::SharePacket::kWireSize, &m.packet) || !r.exhausted()) {
    return std::nullopt;
  }
  return m;
}

Bytes SumReport::encode() const { return packet; }

std::optional<SumReport> SumReport::decode(const Bytes& payload) {
  if (payload.size() != core::SumPacket::kWireSize) return std::nullopt;
  SumReport m;
  m.packet = payload;
  return m;
}

Bytes SumRequest::encode() const {
  Bytes out;
  put_u16(out, round);
  return out;
}

std::optional<SumRequest> SumRequest::decode(const Bytes& payload) {
  Reader r(payload);
  SumRequest m;
  if (!r.u16(&m.round) || !r.exhausted()) return std::nullopt;
  return m;
}

Bytes RoundResult::encode() const {
  Bytes out;
  put_u16(out, round);
  out.push_back(ok);
  put_u64(out, aggregate);
  return out;
}

std::optional<RoundResult> RoundResult::decode(const Bytes& payload) {
  Reader r(payload);
  RoundResult m;
  if (!r.u16(&m.round) || !r.u8(&m.ok) || !r.u64(&m.aggregate) ||
      !r.exhausted()) {
    return std::nullopt;
  }
  if (m.ok > 1) return std::nullopt;
  return m;
}

std::optional<Shutdown> Shutdown::decode(const Bytes& payload) {
  if (!payload.empty()) return std::nullopt;
  return Shutdown{};
}

}  // namespace mpciot::rt
