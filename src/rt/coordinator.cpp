#include "rt/coordinator.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

#include "common/assert.hpp"
#include "core/wire.hpp"
#include "field/fp61.hpp"

namespace mpciot::rt {

Coordinator::Coordinator(const CoordinatorConfig& config)
    : config_(config),
      plan_(plan_deployment(config.deployment_seed, config.node_count)),
      conn_of_node_(config.node_count, 0),
      crashed_(config.node_count, 0),
      reported_(config.node_count, 0) {
  MPCIOT_REQUIRE(config_.rounds >= 1 && config_.rounds <= 0xFFFF,
                 "coordinator: rounds must fit the u16 wire round");
  aggregators_.resize(plan_.groups.size());
  group_final_.assign(plan_.groups.size(), 0);
  group_outcome_.resize(plan_.groups.size());
}

std::uint16_t Coordinator::bind() {
  port_ = loop_.listen_local(config_.port);
  return port_;
}

core::roles::RoundSpec Coordinator::spec_for_round(
    std::uint32_t group) const {
  core::roles::RoundSpec spec = plan_.groups[group];
  spec.round = static_cast<std::uint16_t>(round_);
  return spec;
}

int Coordinator::run(std::ostream* progress) {
  progress_ = progress;
  MPCIOT_REQUIRE(port_ != 0, "coordinator: bind() before run()");
  campaign_start_ms_ = steady_now_ms();
  loop_.set_on_accept([this](std::uint64_t c) { on_accept(c); });
  loop_.set_on_frame(
      [this](std::uint64_t c, Frame&& f) { on_frame(c, std::move(f)); });
  loop_.set_on_close([this](std::uint64_t c) { on_close(c); });
  loop_.add_timer(config_.join_timeout_ms, [this] {
    if (state_ == State::kJoining) {
      if (progress_ != nullptr) {
        *progress_ << "coordinator: join timeout with " << joined_ << "/"
                   << config_.node_count << " nodes\n";
      }
      exit_code_ = 1;
      loop_.stop();
    }
  });
  loop_.run();
  build_report();
  return exit_code_;
}

void Coordinator::on_accept(std::uint64_t) {
  // Nothing until the Hello arrives; unknown peers can only cost one
  // connection slot and one bounded decode buffer until then.
}

void Coordinator::on_frame(std::uint64_t conn, Frame&& frame) {
  if (frame.type == FrameType::kHello) {
    const auto hello = Hello::decode(frame.payload);
    if (!hello.has_value()) {
      loop_.close_after_flush(conn);
      return;
    }
    on_hello(conn, *hello);
    return;
  }
  // Every other frame requires an identified, joined node.
  const auto it = node_of_conn_.find(conn);
  if (it == node_of_conn_.end()) {
    loop_.close_after_flush(conn);
    return;
  }
  switch (frame.type) {
    case FrameType::kShareFwd: {
      const auto msg = ShareFwd::decode(frame.payload);
      if (msg.has_value() && state_ == State::kRunning) {
        on_share_fwd(conn, *msg);
      }
      return;
    }
    case FrameType::kSumReport: {
      const auto msg = SumReport::decode(frame.payload);
      if (msg.has_value() && state_ == State::kRunning) {
        on_sum_report(conn, *msg);
      }
      return;
    }
    default:
      return;  // coordinator-only message echoed back: ignore
  }
}

void Coordinator::on_hello(std::uint64_t conn, const Hello& hello) {
  const bool stale = hello.generation != config_.generation;
  const bool bad_id = hello.node >= config_.node_count;
  const bool mismatched = hello.node_count != config_.node_count ||
                          hello.deployment_seed != config_.deployment_seed;
  const bool duplicate = !bad_id && conn_of_node_[hello.node] != 0;
  if (stale || bad_id || mismatched || duplicate) {
    ++refused_hellos_;
    Refuse refuse;
    refuse.generation = config_.generation;
    loop_.send_frame(conn, FrameType::kRefuse, refuse.encode());
    loop_.close_after_flush(conn);
    return;
  }
  conn_of_node_[hello.node] = conn;
  node_of_conn_[conn] = hello.node;
  ++joined_;
  if (state_ == State::kJoining && joined_ == config_.node_count) {
    start_campaign();
  }
}

void Coordinator::start_campaign() {
  state_ = State::kRunning;
  if (progress_ != nullptr) {
    *progress_ << "coordinator: " << joined_ << " nodes joined after "
               << steady_now_ms() - campaign_start_ms_ << " ms, "
               << plan_.groups.size() << " groups\n";
  }
  for (std::uint32_t g = 0; g < plan_.groups.size(); ++g) {
    Assign assign;
    assign.group = g;
    assign.degree = static_cast<std::uint32_t>(plan_.groups[g].degree);
    assign.sources = plan_.groups[g].sources;
    assign.holders = plan_.groups[g].holders;
    const Bytes payload = assign.encode();
    for (const NodeId node : plan_.groups[g].sources) {
      loop_.send_frame(conn_of_node_[node], FrameType::kAssign, payload);
    }
  }
  round_ = 0;
  start_round();
}

void Coordinator::start_round() {
  for (std::uint32_t g = 0; g < plan_.groups.size(); ++g) {
    aggregators_[g].emplace(spec_for_round(g));
    group_final_[g] = 0;
    group_outcome_[g].reset();
  }
  reported_.assign(config_.node_count, 0);
  crashed_this_round_.clear();

  RoundStart msg;
  msg.round = static_cast<std::uint16_t>(round_);
  const Bytes payload = msg.encode();
  for (NodeId n = 0; n < config_.node_count; ++n) {
    if (conn_of_node_[n] != 0) {
      loop_.send_frame(conn_of_node_[n], FrameType::kRoundStart, payload);
    }
  }
  t1_token_ = loop_.add_timer(config_.t1_straggler_ms,
                              [this] { request_stragglers(); });
  t2_token_ =
      loop_.add_timer(config_.t2_finalize_ms, [this] { finalize_round(); });
}

void Coordinator::on_share_fwd(std::uint64_t, const ShareFwd& msg) {
  // Pure relay: the packet stays opaque ciphertext; routing uses only
  // the ShareFwd dst. Shares for crashed destinations are dropped, the
  // roles' mask bookkeeping absorbs the loss.
  if (msg.dst >= config_.node_count) return;
  const std::uint64_t dst_conn = conn_of_node_[msg.dst];
  if (dst_conn == 0) return;
  loop_.send_frame(dst_conn, FrameType::kShareFwd, msg.encode());
}

void Coordinator::on_sum_report(std::uint64_t conn, const SumReport& msg) {
  const NodeId node = node_of_conn_[conn];
  const auto pkt = core::SumPacket::decode(msg.packet);
  if (!pkt.has_value() || pkt->holder != node) return;
  const std::uint32_t group = plan_.group_of[node];
  if (group_final_[group] || !aggregators_[group].has_value()) return;
  if (aggregators_[group]->accept(*pkt)) {
    reported_[node] = 1;
    maybe_finalize_early(group);
  }
}

void Coordinator::maybe_finalize_early(std::uint32_t group) {
  if (group_final_[group] || state_ != State::kRunning) return;
  // Fast paths that cannot change the report relative to waiting for
  // T2: (a) >= degree+1 full-mask sums — reconstruction is already at
  // maximum coverage and the value is the same for any threshold
  // subset; (b) every still-connected holder has reported — no further
  // report can arrive before T2.
  bool ready = aggregators_[group]->full_mask_threshold();
  if (!ready) {
    ready = true;
    for (const NodeId holder : plan_.groups[group].holders) {
      if (conn_of_node_[holder] != 0 && !reported_[holder]) {
        ready = false;
        break;
      }
    }
  }
  if (!ready) return;
  const auto out = aggregators_[group]->try_reconstruct();
  if (!out.has_value()) return;  // below threshold; T2 records the loss
  GroupOutcome outcome;
  outcome.aggregate = out->aggregate.value();
  outcome.contributor_mask = out->contributor_mask;
  outcome.sums_used = out->sums_used;
  outcome.ok =
      out->aggregate == expected_sum(config_.deployment_seed, round_,
                                     plan_.groups[group],
                                     out->contributor_mask);
  group_outcome_[group] = outcome;
  group_final_[group] = 1;
  if (std::all_of(group_final_.begin(), group_final_.end(),
                  [](char f) { return f != 0; })) {
    finalize_round();
  }
}

void Coordinator::request_stragglers() {
  SumRequest msg;
  msg.round = static_cast<std::uint16_t>(round_);
  const Bytes payload = msg.encode();
  for (std::uint32_t g = 0; g < plan_.groups.size(); ++g) {
    if (group_final_[g]) continue;
    for (const NodeId holder : plan_.groups[g].holders) {
      if (!reported_[holder] && conn_of_node_[holder] != 0) {
        loop_.send_frame(conn_of_node_[holder], FrameType::kSumRequest,
                         payload);
      }
    }
  }
}

void Coordinator::finalize_round() {
  if (state_ != State::kRunning) return;
  loop_.cancel_timer(t1_token_);
  loop_.cancel_timer(t2_token_);

  RoundOutcome outcome;
  outcome.round = round_;
  outcome.ok = true;
  outcome.full_coverage = true;
  field::Fp61 aggregate{0};
  field::Fp61 expected{0};
  for (std::uint32_t g = 0; g < plan_.groups.size(); ++g) {
    if (!group_final_[g]) {
      // T2 best effort: reconstruct from whatever reported.
      const auto out = aggregators_[g]->try_reconstruct();
      if (out.has_value()) {
        GroupOutcome go;
        go.aggregate = out->aggregate.value();
        go.contributor_mask = out->contributor_mask;
        go.sums_used = out->sums_used;
        go.ok = out->aggregate ==
                expected_sum(config_.deployment_seed, round_,
                             plan_.groups[g], out->contributor_mask);
        group_outcome_[g] = go;
      }
      group_final_[g] = 1;
    }
    const auto& go = group_outcome_[g];
    if (go.has_value()) {
      outcome.groups.push_back(*go);
      outcome.ok = outcome.ok && go->ok;
      aggregate += field::Fp61{go->aggregate};
      expected += expected_sum(config_.deployment_seed, round_,
                               plan_.groups[g], go->contributor_mask);
      outcome.contributors += static_cast<std::uint32_t>(
          std::popcount(go->contributor_mask));
      const std::size_t n = plan_.groups[g].sources.size();
      const std::uint64_t full =
          n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
      if (go->contributor_mask != full) outcome.full_coverage = false;
    } else {
      outcome.groups.push_back(GroupOutcome{});
      outcome.ok = false;
      outcome.full_coverage = false;
    }
  }
  outcome.aggregate = aggregate.value();
  outcome.expected = expected.value();
  outcome.crashed = crashed_this_round_;
  std::sort(outcome.crashed.begin(), outcome.crashed.end());
  if (!outcome.ok) exit_code_ = 1;
  outcomes_.push_back(std::move(outcome));

  RoundResult result;
  result.round = static_cast<std::uint16_t>(round_);
  result.ok = outcomes_.back().ok ? 1 : 0;
  result.aggregate = outcomes_.back().aggregate;
  const Bytes payload = result.encode();
  for (NodeId n = 0; n < config_.node_count; ++n) {
    if (conn_of_node_[n] != 0) {
      loop_.send_frame(conn_of_node_[n], FrameType::kRoundResult, payload);
    }
  }
  if (progress_ != nullptr) {
    *progress_ << "coordinator: round " << round_ << " "
               << (outcomes_.back().ok ? "ok" : "FAILED") << " after "
               << steady_now_ms() - campaign_start_ms_ << " ms\n";
  }

  ++round_;
  if (round_ < config_.rounds) {
    start_round();
  } else {
    finish_campaign();
  }
}

void Coordinator::finish_campaign() {
  state_ = State::kDone;
  const Bytes payload = Shutdown{}.encode();
  for (NodeId n = 0; n < config_.node_count; ++n) {
    if (conn_of_node_[n] != 0) {
      loop_.send_frame(conn_of_node_[n], FrameType::kShutdown, payload);
      loop_.close_after_flush(conn_of_node_[n]);
    }
  }
  // Stop once every peer drained (or after a short grace for laggards).
  const auto poll_done = [this](auto&& self) -> void {
    if (loop_.connection_count() == 0) {
      loop_.stop();
      return;
    }
    loop_.add_timer(20, [this, self] { self(self); });
  };
  poll_done(poll_done);
  loop_.add_timer(2000, [this] { loop_.stop(); });
}

void Coordinator::on_close(std::uint64_t conn) {
  const auto it = node_of_conn_.find(conn);
  if (it == node_of_conn_.end()) return;
  const NodeId node = it->second;
  node_of_conn_.erase(it);
  conn_of_node_[node] = 0;
  if (crashed_[node]) return;
  crashed_[node] = 1;
  if (state_ == State::kRunning) {
    crashed_this_round_.push_back(node);
    if (progress_ != nullptr) {
      *progress_ << "coordinator: node " << node << " lost in round "
                 << round_ << "\n";
    }
    // The loss may make its group's remaining holders the complete set.
    maybe_finalize_early(plan_.group_of[node]);
  } else if (state_ == State::kJoining) {
    // A joined node dying before the campaign can never complete a
    // full join; give up immediately rather than waiting out the
    // join timeout.
    exit_code_ = 1;
    loop_.stop();
  }
}

void Coordinator::build_report() {
  using bench_core::JsonValue;
  JsonValue doc = JsonValue::object();
  doc.set("schema", "mpciot-bench/1");
  doc.set("seed", config_.deployment_seed);
  doc.set("reps", config_.rounds);
  JsonValue scenarios = JsonValue::array();
  JsonValue s = JsonValue::object();
  s.set("name", "distributed_rt");
  s.set("description",
        "real-socket share+sum rounds over the rt star relay");
  s.set("deterministic", true);
  JsonValue rows = JsonValue::array();
  for (const RoundOutcome& r : outcomes_) {
    JsonValue row = JsonValue::object();
    row.set("round", r.round);
    row.set("nodes", config_.node_count);
    row.set("groups", static_cast<std::uint64_t>(r.groups.size()));
    row.set("ok", r.ok);
    row.set("full_coverage", r.full_coverage);
    row.set("contributors", r.contributors);
    row.set("aggregate", r.aggregate);
    row.set("expected", r.expected);
    JsonValue groups = JsonValue::array();
    for (const GroupOutcome& g : r.groups) {
      JsonValue gv = JsonValue::object();
      gv.set("ok", g.ok);
      gv.set("aggregate", g.aggregate);
      gv.set("mask", g.contributor_mask);
      gv.set("sums_used", g.sums_used);
      groups.push_back(std::move(gv));
    }
    row.set("group_outcomes", std::move(groups));
    JsonValue crashed = JsonValue::array();
    for (const NodeId n : r.crashed) crashed.push_back(n);
    row.set("crashed", std::move(crashed));
    rows.push_back(std::move(row));
  }
  s.set("rows", std::move(rows));
  scenarios.push_back(std::move(s));
  doc.set("scenarios", std::move(scenarios));
  doc.set("refused_hellos", refused_hellos_);
  report_ = std::move(doc);
}

}  // namespace mpciot::rt
