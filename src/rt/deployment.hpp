// Deterministic deployment planning shared by the coordinator, the
// node daemons, and the tests: everything is a pure function of
// (deployment_seed, node_count), so every party independently computes
// the same placements, group specs, and per-round secrets — the
// distributed runtime never ships a topology over the wire, only the
// compact Assign lists.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/roles.hpp"
#include "field/fp61.hpp"

namespace mpciot::rt {

/// Seed-derivation stream tags of the rt layer (see crypto::derive_seed).
inline constexpr std::uint64_t kStreamPlacement = 0x52545450ull;  // "RTTP"
inline constexpr std::uint64_t kStreamSecret = 0x52545343ull;     // "RTSC"

/// The plan of one deployment: nodes partitioned into aggregation
/// groups, each group a self-contained share+sum round (sources ==
/// holders, S3 style). Groups are capped at 64 sources (the SumPacket
/// contributor bitmap width) and sized toward ~48 nodes.
struct DeploymentPlan {
  std::vector<core::roles::RoundSpec> groups;  ///< round field left 0
  std::vector<std::uint32_t> group_of;         ///< node -> group index
};

/// Compute the plan for `node_count` nodes: place them uniformly at
/// constant density (seeded by `deployment_seed`), partition with
/// net::partition::grid_blocks, and derive each group's Shamir degree
/// (max(1, min(2, group_size - 2)): at most 3 sums reconstruct, and any
/// group of >= 3 members survives one holder crash).
/// Deterministic: same inputs, same plan, on every host.
DeploymentPlan plan_deployment(std::uint64_t deployment_seed,
                               std::uint32_t node_count);

/// The secret node `node` contributes in round `round` — a pure
/// function all parties compute locally, which is what lets the
/// coordinator (and tests) check the reconstructed aggregate against
/// the exact expected sum without any side channel.
field::Fp61 deterministic_secret(std::uint64_t deployment_seed,
                                 std::uint32_t round, NodeId node);

/// Sum of deterministic_secret over the sources of `spec` selected by
/// `contributor_mask` (bit i -> spec.sources[i]).
field::Fp61 expected_sum(std::uint64_t deployment_seed, std::uint32_t round,
                         const core::roles::RoundSpec& spec,
                         std::uint64_t contributor_mask);

}  // namespace mpciot::rt
