#include "rt/frame.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace mpciot::rt {

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

bool Reader::u8(std::uint8_t* out) {
  if (failed_ || size_ - pos_ < 1) {
    failed_ = true;
    return false;
  }
  *out = data_[pos_++];
  return true;
}

bool Reader::u16(std::uint16_t* out) {
  if (failed_ || size_ - pos_ < 2) {
    failed_ = true;
    return false;
  }
  *out = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return true;
}

bool Reader::u32(std::uint32_t* out) {
  if (failed_ || size_ - pos_ < 4) {
    failed_ = true;
    return false;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return true;
}

bool Reader::u64(std::uint64_t* out) {
  if (failed_ || size_ - pos_ < 8) {
    failed_ = true;
    return false;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return true;
}

bool Reader::raw(std::size_t n, Bytes* out) {
  if (failed_ || size_ - pos_ < n) {
    failed_ = true;
    return false;
  }
  out->assign(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return true;
}

bool frame_type_known(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kShutdown);
}

void encode_frame(FrameType type, const Bytes& payload, Bytes& out) {
  MPCIOT_REQUIRE(payload.size() <= kMaxPayload, "rt: frame payload too big");
  put_u16(out, kMagic);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (corrupt_) return;
  // Compact lazily: drop fully-consumed prefix before appending so the
  // buffer stays bounded by one maximal frame plus the incoming chunk.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
  if (corrupt_) return std::nullopt;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kHeaderSize) return std::nullopt;
  const std::uint8_t* h = buffer_.data() + consumed_;
  const std::uint16_t magic =
      static_cast<std::uint16_t>(h[0] | (h[1] << 8));
  const std::uint8_t version = h[2];
  const std::uint8_t type = h[3];
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(h[4 + i]) << (8 * i);
  }
  if (magic != kMagic || version != kVersion || !frame_type_known(type) ||
      length > kMaxPayload) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (avail < kHeaderSize + length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(h + kHeaderSize, h + kHeaderSize + length);
  consumed_ += kHeaderSize + length;
  return frame;
}

}  // namespace mpciot::rt
