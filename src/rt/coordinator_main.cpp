// mpciot-coordinator: accepts the deployment's node daemons, assigns
// aggregation groups (net::partition over the seeded placement), and
// drives share+sum rounds to completion. The deterministic campaign
// report ("mpciot-bench/1" JSON, no wall-clock fields) goes to --out or
// stdout; timing lines go to stderr. Exit 0 iff every round of every
// group reconstructed its expected aggregate.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_core/options.hpp"
#include "rt/coordinator.hpp"

int main(int argc, char** argv) {
  using mpciot::bench_core::OptionParser;
  std::uint32_t nodes = 0;
  std::uint32_t rounds = 1;
  std::uint32_t generation = 1;
  std::uint64_t seed = 1;
  std::uint32_t port = 0;
  std::uint32_t t1_ms = 2000;
  std::uint32_t t2_ms = 4000;
  std::uint32_t join_timeout_ms = 60000;
  std::string out_path;
  std::string port_file;

  OptionParser parser(
      "mpciot-coordinator: distributed runtime coordinator daemon");
  parser.add_u32("--nodes", &nodes, "deployment node count (required)");
  parser.add_u32("--rounds", &rounds, "aggregation rounds to run (1)");
  parser.add_u32("--generation", &generation, "deployment generation (1)");
  parser.add_u64("--seed", &seed, "deployment seed (1)");
  parser.add_u32("--port", &port, "TCP port on 127.0.0.1 (0 = ephemeral)");
  parser.add_u32("--t1-ms", &t1_ms, "straggler re-request timeout (2000)");
  parser.add_u32("--t2-ms", &t2_ms, "round finalize timeout (4000)");
  parser.add_u32("--join-timeout-ms", &join_timeout_ms,
                 "abort if nodes have not all joined (60000)");
  parser.add_string("--out", &out_path, "report path (default: stdout)");
  parser.add_string("--port-file", &port_file,
                    "write the bound port here once listening");
  if (!parser.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", parser.error().c_str(),
                 parser.usage(argv[0]).c_str());
    return 1;
  }
  if (nodes < 2 || rounds == 0 || rounds > 0xFFFF || port > 0xFFFF) {
    std::fprintf(stderr,
                 "mpciot-coordinator: --nodes >= 2 and 1 <= --rounds <= "
                 "65535 are required\n");
    return 1;
  }

  mpciot::rt::CoordinatorConfig config;
  config.node_count = nodes;
  config.rounds = rounds;
  config.generation = generation;
  config.deployment_seed = seed;
  config.port = static_cast<std::uint16_t>(port);
  config.t1_straggler_ms = t1_ms;
  config.t2_finalize_ms = t2_ms;
  config.join_timeout_ms = join_timeout_ms;

  mpciot::rt::Coordinator coordinator(config);
  const std::uint16_t bound = coordinator.bind();
  if (!port_file.empty()) {
    // The port file is the launcher handshake: written atomically
    // enough for a same-host reader (tiny single write + close).
    std::ofstream pf(port_file);
    if (!pf) {
      std::fprintf(stderr, "mpciot-coordinator: cannot write %s\n",
                   port_file.c_str());
      return 1;
    }
    pf << bound << "\n";
  }
  std::fprintf(stderr, "mpciot-coordinator: listening on 127.0.0.1:%u\n",
               bound);

  const int code = coordinator.run(&std::cerr);

  if (out_path.empty()) {
    coordinator.report().dump(std::cout, 2);
    std::cout << "\n";
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "mpciot-coordinator: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    coordinator.report().dump(out, 2);
    out << "\n";
  }
  return code;
}
