// Non-CT comparison baseline: Shamir Secret Sharing over conventional
// multi-hop unicast (collection-tree style routing with per-hop ARQ),
// the kind of stack a non-CT Contiki deployment would use.
//
// The paper's premise is that SMPC is communication-heavy and CT makes
// that affordable; this baseline quantifies the premise. Model:
//   * shortest-path routing over good links (from the topology tables);
//   * per-hop stop-and-wait ARQ: data + ack airtime, Bernoulli(link PRR)
//     per attempt, bounded retries;
//   * single collision domain (transmissions serialize network-wide) —
//     conservative for dense indoor testbeds, documented in DESIGN.md;
//   * radio-on per node = its own TX/RX time + an idle-listening duty
//     cycle for the rest of the round (low-power-listening stacks pay
//     this to stay addressable).
//
// Implemented on the discrete-event engine (sim::EventQueue).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/protocol.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mpciot::core {

struct UnicastParams {
  std::uint32_t max_retries_per_hop = 8;
  std::uint32_t ack_payload_bytes = 2;
  /// Fraction of elapsed round time a node's radio is on just to stay
  /// addressable (ContikiMAC-class duty cycling).
  double idle_duty_cycle = 0.01;
  /// Receiver wake-up interval of the duty-cycled MAC (ContikiMAC
  /// default: 8 Hz). A sender must strobe for half of it on average
  /// before the receiver's ear is open — the dominant per-hop latency of
  /// low-power unicast, and the cost CT protocols avoid by keeping the
  /// whole network time-synchronized.
  SimTime wakeup_interval_us = 125000;
};

struct UnicastResult {
  /// Messages that reached their destination / total messages.
  double delivery_ratio = 0.0;
  SimTime total_duration_us = 0;
  std::vector<SimTime> radio_on_us;  // per node
  std::vector<NodeOutcome> nodes;    // aggregate availability per node
  double success_ratio() const;
  SimTime max_radio_on_us() const;
};

/// Run one full SSS aggregation round (sharing + reconstruction) over
/// unicast routing. Configuration reuses ProtocolConfig (NTX fields are
/// ignored; retries come from UnicastParams).
UnicastResult run_unicast_sss(const net::Topology& topo,
                              const ProtocolConfig& config,
                              const std::vector<field::Fp61>& secrets,
                              const UnicastParams& params,
                              sim::Simulator& sim);

}  // namespace mpciot::core
