// Hierarchical multi-group aggregation: the scaling layer over the
// paper's single-chain protocol.
//
// The flat protocol aggregates all n sources in one CT chain, which is
// O(n^2) chain entries and caps deployments at testbed scale. The
// hierarchical protocol shards the network into G spatially-clustered
// groups (net::partition), runs the SSS share+sum chain *inside each
// group* on the group's induced subtopology (net::Topology::induced), and
// lays the group rounds out on orthogonal radio channels: groups on
// distinct channels aggregate concurrently, groups sharing a channel are
// serialized (ct::ChannelTimeline). Group sums then travel up a
// recombination tree — pairwise merge rounds between group leaders over
// the full topology — to a global root, which floods the network-wide
// aggregate back to every node.
//
// Threshold semantics are the paper's, preserved *within each group*:
// every group round is a core::SssProtocol round with
// degree = paper_degree(sources) and an elected holder set, so
// compromising fewer than degree+1 holders of a group reveals nothing
// about that group's individual readings. Groups larger than the
// 64-source round limit are split into sequential batches on the same
// chain; a single group covering the whole network (G = 1) is exactly
// the flat baseline, batched.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/protocol.hpp"
#include "crypto/keystore.hpp"
#include "ct/transport.hpp"
#include "field/fp61.hpp"
#include "net/partition.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mpciot::core {

struct HierarchicalConfig {
  /// Spatial grouping of the whole topology (validated on construction).
  net::partition::Partition partition;
  /// Orthogonal radio channels available to the group phase. Group g
  /// runs on channel g % num_channels; same-channel groups serialize.
  std::uint16_t num_channels = 1;
  /// Sources per SSS round (the SumPacket contributor-bitmap width caps
  /// this at 64). Larger groups run ceil(size / max_batch) rounds.
  std::size_t max_batch = 64;
  std::uint32_t ntx_sharing = 6;
  std::uint32_t ntx_reconstruction = 6;
  /// Raise a group's NTX to diameter/2 + 2 when its subtopology is
  /// deeper than the base NTX covers (the paper calibrates NTX per
  /// deployment; this is the cheap static stand-in — without it, wide
  /// groups leave too few holders with complete sums to reconstruct).
  bool scale_ntx_with_diameter = true;
  /// NTX of the final result flood (full topology, typically deeper than
  /// a group, so it gets its own knob).
  std::uint32_t result_flood_ntx = 4;
  /// Extra share holders beyond degree+1 per group round.
  std::size_t holder_slack = 2;
  /// S4's early radio shutdown inside group rounds.
  bool early_radio_off = true;
  /// A group leader that cannot reconstruct (fewer than degree+1
  /// consistent sums arrived) re-runs the failed batch round with fresh
  /// channel randomness, up to this many extra attempts; likewise a
  /// recombination flood whose target missed it. Retries are charged to
  /// the group's channel time and everyone's radio-on — failure handling
  /// is paid for, not assumed away.
  std::uint32_t max_retries = 2;
  std::uint32_t max_chain_slots = 512;
  /// Seeds the per-group keystores (pairwise keys are a deployment
  /// artifact, not per-trial randomness).
  std::uint64_t key_seed = 0x6B657973ull;
  /// Active-misbehaviour model. Attacker ids are PARENT ids: each group
  /// round maps the attackers among its members onto local ids, and the
  /// recombination/result floods are jammed over the full topology
  /// (kJamSlots). Byzantine *leaders* (misreporting a whole group sum)
  /// are out of scope — the threat model is member-level, matching the
  /// flat protocol's.
  AdversaryConfig adversary;
  /// Feldman VSS inside every group round (see ProtocolConfig).
  bool feldman_vss = false;
  /// Depth of the recursive group tree. 1 is the historic single level:
  /// every group runs its SSS batch rounds directly. At depth d > 1 a
  /// group with at least `min_nested_size` members becomes a *subtree*:
  /// a nested HierarchicalProtocol over the group's subtopology
  /// (partitioned into ~`fanout` subgroups by net::partition), running
  /// at depth d - 1. The nested round's own result flood hands the
  /// group aggregate to the group's deputies, and the parent level
  /// recombines group aggregates exactly as it always did — so the
  /// leader-tree recombination happens per level, and ChannelTimeline
  /// bookings / ChannelView epoch walks thread through every level on
  /// the shared trial clock.
  std::uint32_t depth = 1;
  /// Target subgroup count when a group nests (net::partition
  /// target_groups at each inner level).
  std::uint32_t fanout = 16;
  /// Groups smaller than this run their batch rounds directly even when
  /// depth allows nesting (a tiny subtree costs channel switches and
  /// recombination floods without relieving any chain).
  std::size_t min_nested_size = 256;
};

struct GroupOutcome {
  NodeId leader = kInvalidNode;  // parent node id
  std::uint16_t channel = 0;
  std::uint32_t batches = 0;
  /// Batch rounds re-run after a failed leader reconstruction.
  std::uint32_t retries = 0;
  /// Times the group switched to a fresh leader because the incumbent
  /// was churn-down when a round (re)started.
  std::uint32_t leader_reelections = 0;
  /// Leader reconstructed an aggregate in every batch round.
  bool has_sum = false;
  /// ... and every one equalled the sum of the group's secrets.
  bool sum_correct = false;
  field::Fp61 sum;
  /// Serialized on-channel time of this group's rounds.
  SimTime duration_us = 0;
  /// When the group's last round finished on the shared timeline.
  SimTime finish_us = 0;
};

struct HierarchicalResult {
  std::vector<GroupOutcome> groups;
  /// Sum of the secrets that actually entered the round: every source
  /// dealing in an accepted batch round. Without churn this is the sum
  /// over all nodes' secrets; under churn, sources down at their
  /// round's start are excluded (like SssProtocol's failed_nodes), so
  /// a consistent reduced aggregate still flags aggregate_correct.
  field::Fp61 expected_sum;
  /// The global root's aggregate (valid when has_aggregate).
  bool has_aggregate = false;
  field::Fp61 aggregate;
  /// Every group contributed and the total matches expected_sum.
  bool aggregate_correct = false;

  SimTime group_phase_us = 0;  // channel-timeline makespan
  SimTime recombine_us = 0;    // sum of recombination-level rounds
  SimTime flood_us = 0;        // result flood
  SimTime total_duration_us = 0;
  /// Absolute trial-clock bounds of the round. In the classic
  /// (non-pipelined) mode round_end_us - round_start_us equals
  /// total_duration_us; in a pipelined campaign the end can sit later
  /// when the shared flood lane is still draining a previous round.
  SimTime round_start_us = 0;
  SimTime round_end_us = 0;
  /// Leader hand-offs across all phases (group rounds + recombination +
  /// result flood) forced by churn-down leaders.
  std::uint32_t leader_reelections = 0;

  /// Byzantine bookkeeping summed over every group round run (retries
  /// included); all zero without an adversary and with VSS off.
  std::uint32_t shares_rejected = 0;
  std::uint32_t sums_rejected = 0;
  /// Per parent node: flagged as a cheater (share- or sum-level) by
  /// commitment verification in at least one group round.
  std::vector<char> cheater_nodes;

  /// Per parent node: radio-on time across every round the node took
  /// part in, and the time at which it first held the global aggregate.
  /// A node that never received it (has_result 0) is charged the full
  /// round duration, matching AggregationResult's latency convention.
  std::vector<SimTime> radio_on_us;
  std::vector<SimTime> latency_us;
  std::vector<char> has_result;

  /// Fraction of nodes holding the correct global aggregate.
  double success_ratio() const;
  SimTime max_latency_us() const;
  SimTime max_radio_on_us() const;
  double mean_radio_on_us() const;
};

/// Warm per-round state of the hierarchical engine, owned by a
/// core::Session (or by a deprecated shim's stack frame). The flat
/// RoundWorkspace inside is shared by every group's batch rounds — each
/// inner round re-initializes what it uses, so one workspace serves any
/// group shape.
struct HierWorkspace {
  RoundWorkspace flat;       // inner SSS batch rounds
  ct::RoundContext scratch;  // chain/flood engine scratch
  HierarchicalResult result;
  /// Channel timeline of a classic (non-pipelined) run; pipelined
  /// campaigns bring their own persistent timeline via RoundEnv.
  ct::ChannelTimeline local_timeline{1};
  std::vector<field::Fp61> batch_secrets;
  std::vector<std::vector<char>> deputies;
  ct::GlossyResult flood;         // recombination floods
  ct::GlossyResult result_flood;  // phase C
  /// Epoch-rotated per-group keystores, rebuilt once per key epoch
  /// (epoch 0 uses the construction keystores and leaves this empty).
  std::uint32_t cached_epoch = 0;
  std::vector<std::unique_ptr<crypto::KeyStore>> epoch_keys;
  /// Per-group nested workspaces (depth > 1 only): entry g is the warm
  /// state of group g's subtree and stays null for leaf groups.
  std::vector<std::unique_ptr<HierWorkspace>> nested;
};

class HierarchicalProtocol {
 public:
  /// Validates the partition against `topo` and precomputes the induced
  /// subtopologies, per-group keystores and per-batch round configs.
  /// `transport` selects the substrate every round runs on (null = the
  /// paper's MiniCast/Glossy substrate) and must outlive the protocol.
  HierarchicalProtocol(const net::Topology& topo, HierarchicalConfig config,
                       const ct::Transport* transport = nullptr);

  /// Run one hierarchical aggregation. secrets[i] belongs to node i
  /// (every node is a source). Thread-safe: concurrent calls may share
  /// one protocol instance as long as each uses its own Simulator.
  /// Reads the dynamics environment (channel model, churn) off `sim`.
  ///
  /// Deprecated: construct a core::Session over this protocol and call
  /// Session::run_round — it owns the warm state, issues monotone
  /// round/nonce ids, and rotates key epochs. This shim runs the same
  /// engine with a cold workspace (byte-identical results).
  [[deprecated("use core::Session::run_round")]] HierarchicalResult run(
      const std::vector<field::Fp61>& secrets, sim::Simulator& sim) const;

  /// As above with an explicit environment. Group rounds are placed on
  /// the trial clock at their channel-timeline offsets, the parent
  /// churn schedule is mapped onto each group's local ids, and a
  /// churn-down leader is replaced before a round or recombination
  /// flood runs: group rounds re-elect the most central up member;
  /// recombination and the result flood re-elect among the *deputies*
  /// of a partial sum — the nodes that provably hold the same value
  /// (reconstructed every batch, or heard the merging floods). A
  /// partial whose holders are all down is lost for the round, exactly
  /// like an exhausted retry.
  ///
  /// Deprecated: see the two-argument overload.
  [[deprecated("use core::Session::run_round")]] HierarchicalResult run(
      const std::vector<field::Fp61>& secrets, sim::Simulator& sim,
      const RoundEnv& env) const;

  const HierarchicalConfig& config() const { return config_; }
  /// Group g's leader (parent node id): the most central node of the
  /// group's subtopology; it accumulates the group sum.
  NodeId group_leader(std::size_t g) const;
  std::size_t num_groups() const { return groups_.size(); }
  std::size_t group_size(std::size_t g) const;
  /// Largest per-group batch count. A Session clamps its epoch length so
  /// rounds_per_epoch * max_round_batches() fits the 16-bit wire-round
  /// window — inner round ids (round-in-epoch * batches + batch) must
  /// stay nonce-unique within an epoch.
  std::uint32_t max_round_batches() const;

 private:
  friend class Session;
  friend class Campaign;

  /// The engine behind every entry point: one hierarchical aggregation
  /// into `ws` (result returned by reference into ws.result). With a
  /// null env.timeline this reproduces the historic run() overloads bit
  /// for bit; a Session timeline switches the group phase and the
  /// recombination/result floods to absolute channel bookings that
  /// overlap across campaign rounds.
  const HierarchicalResult& run_round(const std::vector<field::Fp61>& secrets,
                                      sim::Simulator& sim, const RoundEnv& env,
                                      HierWorkspace& ws) const;
  struct Group {
    std::vector<NodeId> members;          // parent ids, ascending
    std::unique_ptr<net::Topology> owned; // null when members == whole topo
    const net::Topology* sub = nullptr;   // induced subtopology (or parent)
    std::unique_ptr<crypto::KeyStore> keys;
    std::vector<SssProtocol> batch_rounds;  // local-id configs
    /// Non-null when this group is a subtree (depth > 1 and the group
    /// is large enough): a full hierarchical protocol over `sub`, one
    /// level shallower. batch_rounds/keys stay empty then — the subtree
    /// runs its own groups, recombination and result flood.
    std::unique_ptr<HierarchicalProtocol> nested;
    NodeId leader_local = 0;
    NodeId leader = 0;  // parent id
    std::uint16_t channel = 0;
  };

  const net::Topology* topo_;
  HierarchicalConfig config_;
  const ct::Transport* transport_;
  std::vector<Group> groups_;
};

}  // namespace mpciot::core
