#include "core/wire.hpp"

#include <bit>
#include <cstring>

#include "common/assert.hpp"

namespace mpciot::core {

namespace {

// All multi-byte wire fields are little-endian by explicit byte shifts
// (never memcpy of a host integer), so frames decode identically on
// heterogeneous hosts. Pinned by the FixedByteLayout regression tests.
void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

Bytes SharePacket::encode(const crypto::KeyStore& keys) const {
  Bytes wire;
  encode_into(keys, wire);
  return wire;
}

void SharePacket::encode_into(const crypto::KeyStore& keys,
                              Bytes& wire) const {
  MPCIOT_REQUIRE(source != destination,
                 "SharePacket: self-shares do not travel on air");
  MPCIOT_REQUIRE(source <= 0xFFFF && destination <= 0xFFFF,
                 "SharePacket: node ids are u16 on the wire");
  wire.assign(kWireSize, 0);
  put_u16(wire.data(), static_cast<std::uint16_t>(source));
  put_u16(wire.data() + 2, static_cast<std::uint16_t>(destination));
  put_u16(wire.data() + 4, round);

  // Encrypt the 8-byte share value with AES-CTR under the pairwise key.
  const auto key = keys.pairwise_key(source, destination);
  const crypto::AesCtr ctr(key);
  std::uint8_t plain[8];
  put_u64(plain, share.value());
  const auto nonce = crypto::AesCtr::make_nonce(source, destination, round,
                                                /*sequence=*/0);
  ctr.crypt(nonce, std::span<const std::uint8_t>{plain, 8},
            std::span<std::uint8_t>{wire.data() + 6, 8});

  // Truncated CMAC over header + ciphertext.
  const crypto::Cmac mac(key);
  const auto tag =
      mac.compute(std::span<const std::uint8_t>{wire.data(), 14});
  std::memcpy(wire.data() + 14, tag.data(), 4);
}

std::optional<SharePacket> SharePacket::decode(const Bytes& wire,
                                               const crypto::KeyStore& keys) {
  if (wire.size() != kWireSize) return std::nullopt;
  SharePacket pkt;
  pkt.source = get_u16(wire.data());
  pkt.destination = get_u16(wire.data() + 2);
  pkt.round = get_u16(wire.data() + 4);
  if (pkt.source == pkt.destination) return std::nullopt;
  if (pkt.source >= keys.node_count() || pkt.destination >= keys.node_count()) {
    return std::nullopt;
  }

  const auto key = keys.pairwise_key(pkt.source, pkt.destination);
  const crypto::Cmac mac(key);
  const auto tag =
      mac.compute(std::span<const std::uint8_t>{wire.data(), 14});
  crypto::Cmac::Tag sent{};
  std::memcpy(sent.data(), wire.data() + 14, 4);
  crypto::Cmac::Tag expect{};
  std::memcpy(expect.data(), tag.data(), 4);
  if (!crypto::Cmac::verify(sent, expect)) return std::nullopt;

  const crypto::AesCtr ctr(key);
  std::uint8_t plain[8];
  const auto nonce = crypto::AesCtr::make_nonce(pkt.source, pkt.destination,
                                                pkt.round, /*sequence=*/0);
  ctr.crypt(nonce, std::span<const std::uint8_t>{wire.data() + 6, 8},
            std::span<std::uint8_t>{plain, 8});
  // Canonical field encoding only: Fp61's constructor would silently
  // reduce an out-of-range word, letting a non-canonical encoding alias
  // a legitimate share (the truncated tag makes forgery cheap enough
  // that defense in depth here is warranted).
  const std::uint64_t share_raw = get_u64(plain);
  if (share_raw >= field::Fp61::kModulus) return std::nullopt;
  pkt.share = field::Fp61{share_raw};
  return pkt;
}

Bytes SumPacket::encode() const {
  Bytes wire;
  encode_into(wire);
  return wire;
}

void SumPacket::encode_into(Bytes& wire) const {
  MPCIOT_REQUIRE(holder <= 0xFFFF, "SumPacket: node ids are u16 on the wire");
  wire.assign(kWireSize, 0);
  put_u16(wire.data(), static_cast<std::uint16_t>(holder));
  wire[2] = contribution_count;
  put_u16(wire.data() + 3, round);
  put_u64(wire.data() + 5, sum.value());
  put_u64(wire.data() + 13, contributors);
}

std::optional<SumPacket> SumPacket::decode(const Bytes& wire) {
  if (wire.size() != kWireSize) return std::nullopt;
  SumPacket pkt;
  pkt.holder = get_u16(wire.data());
  pkt.contribution_count = wire[2];
  pkt.round = get_u16(wire.data() + 3);
  // SumPackets travel in plaintext, so internal consistency is the only
  // line of defense: the sum must be a canonical field encoding and the
  // explicit count must match the bitmap it summarizes.
  const std::uint64_t sum_raw = get_u64(wire.data() + 5);
  if (sum_raw >= field::Fp61::kModulus) return std::nullopt;
  pkt.sum = field::Fp61{sum_raw};
  pkt.contributors = get_u64(wire.data() + 13);
  if (pkt.contribution_count !=
      static_cast<std::uint8_t>(std::popcount(pkt.contributors))) {
    return std::nullopt;
  }
  return pkt;
}

}  // namespace mpciot::core
