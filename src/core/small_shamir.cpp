#include "core/small_shamir.hpp"

#include <unordered_set>

#include "common/assert.hpp"

namespace mpciot::core {

SmallShamirDealer::SmallShamirDealer(const field::PrimeField& fieldd,
                                     std::uint64_t secret, std::size_t degree,
                                     crypto::CtrDrbg& drbg)
    : field_(&fieldd) {
  MPCIOT_REQUIRE(degree >= 1, "SmallShamir: degree must be >= 1");
  MPCIOT_REQUIRE(secret < fieldd.modulus(),
                 "SmallShamir: secret must be < field modulus");
  MPCIOT_REQUIRE(degree + 1 < fieldd.modulus(),
                 "SmallShamir: field too small for this degree");
  coeffs_.resize(degree + 1);
  coeffs_[0] = secret;
  for (std::size_t i = 1; i <= degree; ++i) {
    coeffs_[i] = drbg.next_below(fieldd.modulus());
  }
  while (coeffs_[degree] == 0) {
    coeffs_[degree] = drbg.next_below(fieldd.modulus());
  }
}

SmallShare SmallShamirDealer::share_for(NodeId holder) const {
  const std::uint64_t x = field_->reduce(static_cast<std::uint64_t>(holder) + 1);
  MPCIOT_REQUIRE(x != 0, "SmallShamir: holder id maps to point 0");
  // Horner.
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = field_->add(field_->mul(acc, x), coeffs_[i]);
  }
  return SmallShare{holder, acc};
}

std::uint64_t small_reconstruct(const field::PrimeField& fieldd,
                                const std::vector<SmallShare>& shares,
                                std::size_t degree) {
  MPCIOT_REQUIRE(shares.size() >= degree + 1,
                 "SmallShamir: need at least degree+1 shares");
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> xs;
  xs.reserve(degree + 1);
  for (std::size_t i = 0; i <= degree; ++i) {
    const std::uint64_t x =
        fieldd.reduce(static_cast<std::uint64_t>(shares[i].holder) + 1);
    MPCIOT_REQUIRE(x != 0, "SmallShamir: share at point 0");
    MPCIOT_REQUIRE(seen.insert(x).second,
                   "SmallShamir: duplicate holder point");
    xs.push_back(x);
  }
  // Lagrange at zero, batched like field::reconstruct_at_zero: the k+1
  // basis denominators go through ONE Montgomery-style batch inversion
  // (1 field inverse + 3k multiplications) and the numerators come from
  // prefix/suffix products. Exact modular arithmetic — same value as
  // the historic per-basis inv() formulation.
  const std::size_t count = degree + 1;
  std::vector<std::uint64_t> denom(count, 1);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = 0; j < count; ++j) {
      if (j == i) continue;
      denom[i] = fieldd.mul(denom[i], fieldd.sub(xs[j], xs[i]));
    }
  }
  std::vector<std::uint64_t> prefix(count);
  std::uint64_t acc = 1;
  for (std::size_t i = 0; i < count; ++i) {
    acc = fieldd.mul(acc, denom[i]);
    prefix[i] = acc;
  }
  std::vector<std::uint64_t> inv_denom(count);
  std::uint64_t inv_all = fieldd.inv(prefix.back());
  for (std::size_t i = count; i-- > 0;) {
    inv_denom[i] = fieldd.mul(inv_all, i == 0 ? 1 : prefix[i - 1]);
    inv_all = fieldd.mul(inv_all, denom[i]);
  }
  std::vector<std::uint64_t> suffix(count);
  acc = 1;
  for (std::size_t i = count; i-- > 0;) {
    suffix[i] = acc;  // product of x_j for j > i
    acc = fieldd.mul(acc, xs[i]);
  }
  std::uint64_t result = 0;
  acc = 1;  // running product of x_j for j < i
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t numer = fieldd.mul(acc, suffix[i]);
    const std::uint64_t basis = fieldd.mul(numer, inv_denom[i]);
    result = fieldd.add(result, fieldd.mul(shares[i].value, basis));
    acc = fieldd.mul(acc, xs[i]);
  }
  return result;
}

std::size_t small_share_bytes(const field::PrimeField& fieldd) {
  std::size_t bits = 0;
  std::uint64_t p = fieldd.modulus() - 1;
  while (p) {
    ++bits;
    p >>= 1;
  }
  return (bits + 7) / 8;
}

}  // namespace mpciot::core
