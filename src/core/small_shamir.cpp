#include "core/small_shamir.hpp"

#include <unordered_set>

#include "common/assert.hpp"

namespace mpciot::core {

SmallShamirDealer::SmallShamirDealer(const field::PrimeField& fieldd,
                                     std::uint64_t secret, std::size_t degree,
                                     crypto::CtrDrbg& drbg)
    : field_(&fieldd) {
  MPCIOT_REQUIRE(degree >= 1, "SmallShamir: degree must be >= 1");
  MPCIOT_REQUIRE(secret < fieldd.modulus(),
                 "SmallShamir: secret must be < field modulus");
  MPCIOT_REQUIRE(degree + 1 < fieldd.modulus(),
                 "SmallShamir: field too small for this degree");
  coeffs_.resize(degree + 1);
  coeffs_[0] = secret;
  for (std::size_t i = 1; i <= degree; ++i) {
    coeffs_[i] = drbg.next_below(fieldd.modulus());
  }
  while (coeffs_[degree] == 0) {
    coeffs_[degree] = drbg.next_below(fieldd.modulus());
  }
}

SmallShare SmallShamirDealer::share_for(NodeId holder) const {
  const std::uint64_t x = field_->reduce(static_cast<std::uint64_t>(holder) + 1);
  MPCIOT_REQUIRE(x != 0, "SmallShamir: holder id maps to point 0");
  // Horner.
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = field_->add(field_->mul(acc, x), coeffs_[i]);
  }
  return SmallShare{holder, acc};
}

std::uint64_t small_reconstruct(const field::PrimeField& fieldd,
                                const std::vector<SmallShare>& shares,
                                std::size_t degree) {
  MPCIOT_REQUIRE(shares.size() >= degree + 1,
                 "SmallShamir: need at least degree+1 shares");
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> xs;
  xs.reserve(degree + 1);
  for (std::size_t i = 0; i <= degree; ++i) {
    const std::uint64_t x =
        fieldd.reduce(static_cast<std::uint64_t>(shares[i].holder) + 1);
    MPCIOT_REQUIRE(x != 0, "SmallShamir: share at point 0");
    MPCIOT_REQUIRE(seen.insert(x).second,
                   "SmallShamir: duplicate holder point");
    xs.push_back(x);
  }
  // Lagrange at zero.
  std::uint64_t result = 0;
  for (std::size_t i = 0; i <= degree; ++i) {
    std::uint64_t numer = 1;
    std::uint64_t denom = 1;
    for (std::size_t j = 0; j <= degree; ++j) {
      if (j == i) continue;
      numer = fieldd.mul(numer, xs[j]);
      denom = fieldd.mul(denom, fieldd.sub(xs[j], xs[i]));
    }
    const std::uint64_t basis = fieldd.mul(numer, fieldd.inv(denom));
    result = fieldd.add(result, fieldd.mul(shares[i].value, basis));
  }
  return result;
}

std::size_t small_share_bytes(const field::PrimeField& fieldd) {
  std::size_t bits = 0;
  std::uint64_t p = fieldd.modulus() - 1;
  while (p) {
    ++bits;
    p >>= 1;
  }
  return (bits + 7) / 8;
}

}  // namespace mpciot::core
