#include "core/protocol.hpp"

#include <algorithm>
#include <bit>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.hpp"
#include "core/bootstrap.hpp"
#include "core/wire.hpp"
#include "crypto/feldman.hpp"
#include "ct/chain_schedule.hpp"
#include "ct/glossy.hpp"

namespace mpciot::core {

namespace {

/// derive_seed stream tag mixing the trial seed into the jam schedule.
constexpr std::uint64_t kStreamJamTrial = 0x41445654ull;  // "ADVT"

/// derive_seed stream tag re-deriving dealer DRBG seeds once a session
/// leaves the historic (epoch 0, round < 2^16) window.
constexpr std::uint64_t kStreamDealerEpoch = 0x5EC5EED0ull;

/// A MiniCast round must start from a node that owns at least one chain
/// entry (an empty first chain would trigger nobody). Pick the candidate
/// closest to the preferred initiator, skipping dead nodes and (when a
/// churn schedule is given) preferring candidates that are up at the
/// phase start; if every candidate is churn-down right now, fall back to
/// the closest non-failed one — the phase then limps along on timeouts
/// as nodes recover.
NodeId pick_phase_initiator(const net::Topology& topo, NodeId preferred,
                            const std::vector<NodeId>& candidates,
                            const std::vector<char>& dead,
                            const net::LivenessModel* liveness = nullptr,
                            SimTime at_us = 0) {
  NodeId best = kInvalidNode;
  std::uint32_t best_h = net::Topology::kInvalidHops;
  NodeId fallback = kInvalidNode;
  std::uint32_t fallback_h = net::Topology::kInvalidHops;
  // One hop row for the preferred source (row[preferred] == 0): on the
  // sparse tier this is a single BFS, not |candidates| point queries.
  const std::uint32_t* hops_row = topo.hops_from(preferred);
  for (NodeId c : candidates) {
    if (dead[c]) continue;
    const std::uint32_t h = hops_row[c];
    if (h < fallback_h || (h == fallback_h && c < fallback)) {
      fallback_h = h;
      fallback = c;
    }
    if (liveness != nullptr && liveness->is_down(c, at_us)) continue;
    if (h < best_h || (h == best_h && c < best)) {
      best_h = h;
      best = c;
    }
  }
  if (best != kInvalidNode) return best;
  MPCIOT_REQUIRE(fallback != kInvalidNode,
                 "protocol: no live node can initiate the phase");
  return fallback;
}

}  // namespace

double AggregationResult::success_ratio() const {
  if (nodes.empty()) return 0.0;
  std::size_t live = 0;
  std::size_t ok = 0;
  for (const NodeOutcome& o : nodes) {
    if (o.radio_on_us == 0 && !o.has_aggregate && o.latency_us == 0) {
      // dead node (never participated)
      continue;
    }
    ++live;
    if (o.has_aggregate && o.aggregate_correct) ++ok;
  }
  return live == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(live);
}

SimTime AggregationResult::max_latency_us() const {
  SimTime best = 0;
  for (const NodeOutcome& o : nodes) best = std::max(best, o.latency_us);
  return best;
}

double AggregationResult::mean_latency_us() const {
  if (nodes.empty()) return 0.0;
  double total = 0.0;
  std::size_t count = 0;
  for (const NodeOutcome& o : nodes) {
    if (o.latency_us > 0) {
      total += static_cast<double>(o.latency_us);
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

SimTime AggregationResult::max_radio_on_us() const {
  SimTime best = 0;
  for (const NodeOutcome& o : nodes) best = std::max(best, o.radio_on_us);
  return best;
}

double AggregationResult::mean_radio_on_us() const {
  if (nodes.empty()) return 0.0;
  double total = 0.0;
  for (const NodeOutcome& o : nodes) {
    total += static_cast<double>(o.radio_on_us);
  }
  return total / static_cast<double>(nodes.size());
}

SssProtocol::SssProtocol(const net::Topology& topo,
                         const crypto::KeyStore& keys, ProtocolConfig config,
                         const ct::Transport* transport)
    : topo_(&topo),
      keys_(&keys),
      config_(std::move(config)),
      transport_(transport != nullptr ? transport
                                      : &ct::minicast_transport()),
      engine_(config_.adversary, topo.size()),
      sharing_(),
      recon_() {
  // SharePacket/SumPacket carry u16 node ids on the wire; a flat round
  // over a larger (sub)topology would silently alias ids if encoding
  // truncated. Reject at construction instead.
  MPCIOT_REQUIRE(topo.size() <= 0x10000,
                 "protocol: node ids are u16 on the wire; this topology "
                 "needs hierarchical grouping");
  MPCIOT_REQUIRE(!config_.sources.empty(), "protocol: no sources");
  MPCIOT_REQUIRE(config_.sources.size() <= 64,
                 "protocol: at most 64 sources per round");
  MPCIOT_REQUIRE(!config_.share_holders.empty(), "protocol: no holders");
  MPCIOT_REQUIRE(config_.degree >= 1, "protocol: degree must be >= 1");
  MPCIOT_REQUIRE(config_.degree < config_.sources.size() ||
                     config_.degree < config_.share_holders.size(),
                 "protocol: degree+1 sums must be collectible");
  MPCIOT_REQUIRE(config_.degree + 1 <= config_.share_holders.size(),
                 "protocol: need at least degree+1 share holders");
  std::unordered_set<NodeId> seen;
  for (NodeId s : config_.sources) {
    MPCIOT_REQUIRE(s < topo.size(), "protocol: source id out of range");
    MPCIOT_REQUIRE(seen.insert(s).second, "protocol: duplicate source");
  }
  seen.clear();
  for (NodeId h : config_.share_holders) {
    MPCIOT_REQUIRE(h < topo.size(), "protocol: holder id out of range");
    MPCIOT_REQUIRE(seen.insert(h).second, "protocol: duplicate holder");
  }
  MPCIOT_REQUIRE(config_.initiator < topo.size(),
                 "protocol: initiator out of range");
  // The chains are pure functions of the participant lists; build them
  // once (after validation) instead of per round.
  sharing_ = ct::make_sharing_schedule(config_.sources, config_.share_holders);
  recon_ = ct::make_reconstruction_schedule(config_.share_holders);
}

AggregationResult SssProtocol::run(const std::vector<field::Fp61>& secrets,
                                   sim::Simulator& sim) const {
  RoundEnv env;
  env.start_time_us = sim.now();
  env.channel_model = sim.channel_model();
  env.liveness = sim.liveness();
  RoundWorkspace ws;
  return run_round(secrets, sim, env, ws);
}

AggregationResult SssProtocol::run(const std::vector<field::Fp61>& secrets,
                                   sim::Simulator& sim,
                                   const RoundEnv& env) const {
  RoundWorkspace ws;
  return run_round(secrets, sim, env, ws);
}

const AggregationResult& SssProtocol::run_round(
    const std::vector<field::Fp61>& secrets, sim::Simulator& sim,
    const RoundEnv& env, RoundWorkspace& ws) const {
  MPCIOT_REQUIRE(secrets.size() == config_.sources.size(),
                 "protocol: one secret per source required");
  const std::size_t n = topo_->size();
  const std::size_t num_sources = config_.sources.size();
  const std::size_t num_holders = config_.share_holders.size();
  const std::size_t k = config_.degree;

  // Session round/nonce ids: the constructed base round unless a
  // Session override rides the environment. The wire (and the cold
  // adversary derivations) carry the low 16 bits; the Session rotates
  // the key epoch before that window can wrap, so a (key, wire round)
  // pair is never reused.
  const std::uint32_t session_round =
      env.round == RoundEnv::kInheritRound ? config_.round : env.round;
  const std::uint16_t wire_round =
      static_cast<std::uint16_t>(session_round & 0xFFFFu);
  const crypto::KeyStore& keys = env.keys != nullptr ? *env.keys : *keys_;

  std::vector<char>& dead = ws.dead;
  dead.assign(n, 0);
  for (NodeId f : config_.failed_nodes) {
    MPCIOT_REQUIRE(f < n, "protocol: failed node id out of range");
    dead[f] = 1;
  }
  MPCIOT_REQUIRE(!dead[config_.initiator],
                 "protocol: the round initiator must be alive");

  // Churn: a source that is down when the round starts reads no sensor
  // and deals nothing — for this round it is as absent as a failed node
  // (its crash may end mid-round; it then rejoins as a relay). Nodes
  // that crash later dealt normally; whatever shares they did not get
  // out surface as missing contributors downstream.
  std::vector<char>& down_at_start = ws.down_at_start;
  down_at_start.assign(n, 0);
  if (env.liveness != nullptr) {
    for (NodeId i = 0; i < n; ++i) {
      down_at_start[i] = env.liveness->is_down(i, env.start_time_us) ? 1 : 0;
    }
  }
  const auto participates = [&](NodeId i) {
    return !dead[i] && !down_at_start[i];
  };

  // kJamSlots: decorate the trial's channel model so every transport
  // inherits the jammers through the channel seam. The decorator lives
  // on this frame; `adv_env` shadows the environment for the round.
  std::optional<JammerChannel> jammer;
  RoundEnv adv_env = env;
  if (engine_.active() && engine_.kind() == AttackKind::kJamSlots) {
    jammer.emplace(env.channel_model, config_.adversary.attackers,
                   crypto::derive_seed(config_.adversary.seed,
                                       kStreamJamTrial, sim.seed()),
                   config_.adversary.jam_duty, config_.adversary.jam_epoch_us);
    adv_env.channel_model = &*jammer;
  }

  // Node id -> holder index (kNotHolder for relays), replacing the old
  // per-round hash map.
  ws.holder_pos.assign(n, RoundWorkspace::kNotHolder);
  for (std::size_t h = 0; h < num_holders; ++h) {
    ws.holder_pos[config_.share_holders[h]] = static_cast<std::uint32_t>(h);
  }

  // ---- Stage 0: deal shares locally (live sources only) ----
  ws.dealers.resize(num_sources);
  ws.dealt.assign(num_sources, 0);
  field::Fp61 expected_sum;
  std::uint64_t live_source_mask = 0;
  // Epoch 0 rounds below 2^16 keep the historic per-(round, node) DRBG
  // stream bit for bit; past that window the base seed is re-derived
  // from (epoch, round) so dealer streams never alias after a
  // wire-round wrap.
  const bool legacy_stream =
      env.key_epoch == 0 && session_round < 0x10000u;
  const std::uint64_t dealer_base_seed =
      legacy_stream
          ? sim.seed()
          : crypto::derive_seed(
                sim.seed(), kStreamDealerEpoch,
                (static_cast<std::uint64_t>(env.key_epoch) << 32) |
                    session_round);
  for (std::size_t i = 0; i < num_sources; ++i) {
    const NodeId src = config_.sources[i];
    if (!participates(src)) continue;
    // Domain-separate the DRBG by (round, node).
    crypto::CtrDrbg drbg(
        dealer_base_seed,
        0x5EC0000000000000ull |
            (static_cast<std::uint64_t>(wire_round) << 32) | src);
    ws.dealers[i].reset(secrets[i], k, drbg);
    ws.dealt[i] = 1;
    expected_sum += secrets[i];
    live_source_mask |= (std::uint64_t{1} << i);
  }

  const std::uint64_t attacker_source_bits =
      engine_.active() ? engine_.attacker_bits(config_.sources) : 0;
  // Honest nodes must end up with an aggregate covering at least these.
  const std::uint64_t required_mask = live_source_mask & ~attacker_source_bits;

  // Feldman VSS: one commitment per dealing source. Attackers commit to
  // their true polynomial — a forged commitment could only widen the
  // detection surface, so an honest commitment with tampered shares is
  // the verifier's worst case. Cold path: the commitment pool is only
  // materialized when VSS is on.
  const std::uint32_t vss_bytes =
      config_.feldman_vss
          ? static_cast<std::uint32_t>(
                (k + 1) * crypto::feldman::Commitment::kElementBytes)
          : 0;
  if (config_.feldman_vss) {
    ws.commitments.assign(num_sources, std::nullopt);
    ws.verify_ctx.assign(num_sources, crypto::feldman::VerifyContext{});
    for (std::size_t s = 0; s < num_sources; ++s) {
      if (ws.dealt[s]) {
        ws.commitments[s] = crypto::feldman::commit(ws.dealers[s].polynomial());
        // Montgomery-cached view for the per-holder verify loop below:
        // to_mont runs once per element here instead of once per
        // (holder, element) in stage 1b.
        ws.verify_ctx[s] = crypto::feldman::VerifyContext(*ws.commitments[s]);
      }
    }
  }

  // kInconsistentShares: the second polynomial each attacker source
  // deals to its equivocation targets (cold path).
  if (engine_.active() && engine_.kind() == AttackKind::kInconsistentShares) {
    ws.equiv_dealers.assign(num_sources, std::nullopt);
    for (std::size_t s = 0; s < num_sources; ++s) {
      if (ws.dealt[s] && engine_.is_attacker(config_.sources[s])) {
        ws.equiv_dealers[s] = engine_.equivocation_dealer(
            sim.seed(), wire_round, config_.sources[s], secrets[s], k);
      }
    }
  }

  // One context serves every phase of the round (and, when a Session or
  // composition layer provides one, the whole trial): buffers are
  // reused and the epoch-walked channel view continues instead of
  // replaying the dynamics chain from 0.
  ct::RoundContext* const round_scratch =
      env.scratch != nullptr ? env.scratch : &ws.ct;

  // ---- Stage 0b: round-start sync flood ----
  ct::GlossyConfig& sync_cfg = ws.sync_cfg;
  sync_cfg = ct::GlossyConfig{};
  sync_cfg.initiator = config_.initiator;
  sync_cfg.ntx = 3;
  sync_cfg.payload_bytes = 8;
  sync_cfg.start_time_us = env.start_time_us;
  sync_cfg.channel_model = adv_env.channel_model;
  sync_cfg.liveness = env.liveness;
  transport_->flood_into(*topo_, sync_cfg, sim.channel_rng(), round_scratch,
                         ws.sync);
  const ct::GlossyResult& sync = ws.sync;

  // ---- Stage 1: sharing phase ----
  const ct::SharingSchedule& sharing = sharing_;

  const SimTime share_start_us = env.start_time_us + sync.duration_us;
  ct::MiniCastConfig& share_cfg = ws.share_cfg;
  share_cfg.initiator =
      pick_phase_initiator(*topo_, config_.initiator, config_.sources, dead,
                           env.liveness, share_start_us);
  share_cfg.channel = 0;
  share_cfg.ntx = config_.ntx_sharing;
  share_cfg.payload_bytes = SharePacket::kWireSize + vss_bytes;
  share_cfg.max_chain_slots = config_.max_chain_slots;
  share_cfg.radio_policy = config_.early_radio_off
                               ? ct::RadioPolicy::kEarlyOff
                               : ct::RadioPolicy::kUntilQuiescence;
  share_cfg.disabled = dead;
  share_cfg.start_time_us = share_start_us;
  share_cfg.channel_model = adv_env.channel_model;
  share_cfg.liveness = env.liveness;
  // Slot-synced owners of the sharing chain: sources that actually
  // dealt (a source down at round start has nothing to inject even
  // after it recovers). Every live data owner is slot-synchronized:
  // Glossy-class systems maintain network-wide time across rounds, so
  // even a node that missed *this* round's sync flood still knows the
  // TDMA slot boundaries from earlier rounds (clock drift per round is
  // microseconds).
  share_cfg.scheduled_owners.clear();
  for (NodeId o : config_.sources) {
    if (participates(o)) share_cfg.scheduled_owners.push_back(o);
  }
  // Per-holder bitmap of the sharing-chain entries it must collect (its
  // own column, dealing sources only — dead or crashed-at-start sources
  // never deal). Flat layout: holder h's mask occupies words
  // [h * holder_need_words, (h+1) * holder_need_words).
  ws.holder_need_words = (sharing.entries.size() + 63) / 64;
  ws.holder_need.assign(num_holders * ws.holder_need_words, 0);
  for (std::size_t h = 0; h < num_holders; ++h) {
    std::uint64_t* mask = ws.holder_need.data() + h * ws.holder_need_words;
    for (std::size_t s = 0; s < num_sources; ++s) {
      if (participates(config_.sources[s])) {
        ct::bit_set(mask, sharing.entry_index(s, h));
      }
    }
  }
  // The predicate captures only the workspace pointer, so assigning it
  // stays within std::function's small-object storage (no allocation).
  RoundWorkspace* const wsp = &ws;
  share_cfg.done = [wsp](NodeId node, ct::BitView have) {
    const std::uint32_t h = wsp->holder_pos[node];
    if (h == RoundWorkspace::kNotHolder) return true;  // relays: nothing owed
    return have.covers(wsp->holder_need.data() + h * wsp->holder_need_words,
                       wsp->holder_need_words);
  };

  transport_->chain_round_into(*topo_, sharing.entries, share_cfg,
                               sim.channel_rng(), round_scratch,
                               ws.share_round);
  const ct::MiniCastResult& share_round = ws.share_round;

  // ---- Stage 1b: holders decrypt and sum what they got ----
  // (Parallel arrays replacing the old per-round HolderSum vector.)
  ws.holder_sum.assign(num_holders, field::Fp61{});
  ws.holder_contrib.assign(num_holders, 0);
  ws.holder_valid.assign(num_holders, 0);
  // Share matrix, dealt row by row: each dealing source evaluates its
  // polynomial at every holder point in one batched Horner pass instead
  // of num_holders independent share_for calls inside the (h, s) loop.
  // Exact field arithmetic — entries match share_for bit for bit.
  ws.holder_xs.resize(num_holders);
  for (std::size_t h = 0; h < num_holders; ++h) {
    ws.holder_xs[h] = public_point(config_.share_holders[h]);
  }
  ws.share_matrix.assign(num_sources * num_holders, field::Fp61{});
  for (std::size_t s = 0; s < num_sources; ++s) {
    if (!ws.dealt[s]) continue;
    ws.dealers[s].evaluate_at(
        ws.holder_xs,
        std::span<field::Fp61>{ws.share_matrix}.subspan(s * num_holders,
                                                        num_holders));
  }
  const auto matrix_share = [&](std::size_t s, std::size_t h) {
    return ws.share_matrix[s * num_holders + h];
  };
  std::size_t delivered = 0;
  std::size_t deliverable = 0;
  std::uint64_t cheater_sources_mask = 0;
  std::uint32_t shares_rejected = 0;

  for (std::size_t h = 0; h < num_holders; ++h) {
    const NodeId holder = config_.share_holders[h];
    if (dead[holder]) continue;
    ws.holder_valid[h] = 1;
    for (std::size_t s = 0; s < num_sources; ++s) {
      const NodeId src = config_.sources[s];
      if (!participates(src)) continue;
      ++deliverable;
      const std::size_t entry = sharing.entry_index(s, h);
      if (src == holder) {
        // Own share never travels on air (and is trivially consistent).
        ws.holder_sum[h] += matrix_share(s, h);
        ws.holder_contrib[h] |= (std::uint64_t{1} << s);
        ++delivered;
        continue;
      }
      if (!share_round.node_has(holder, entry)) continue;
      ++delivered;
      // The value the source put on the air: its honest share unless it
      // is an attacker misdealing to this holder.
      field::Fp61 on_air = matrix_share(s, h);
      if (engine_.is_attacker(src)) {
        if (engine_.kind() == AttackKind::kMalformedShares) {
          on_air = engine_.malformed_share(sim.seed(), wire_round, src,
                                           holder, on_air);
        } else if (engine_.kind() == AttackKind::kInconsistentShares &&
                   engine_.equivocation_target(src, h)) {
          on_air = ws.equiv_dealers[s]->share_for(holder).value;
        }
      }
      // Decode the actual wire bytes the source would have sent.
      SharePacket pkt;
      pkt.source = src;
      pkt.destination = holder;
      pkt.round = wire_round;
      pkt.share = on_air;
      pkt.encode_into(keys, ws.wire);
      const std::optional<SharePacket> decoded =
          SharePacket::decode(ws.wire, keys);
      MPCIOT_ENSURE(decoded.has_value(),
                    "protocol: AES/CMAC round-trip must succeed");
      // Share-accept verification (VSS on): drop anything off the
      // committed polynomial and remember the cheater.
      if (config_.feldman_vss && ws.commitments[s].has_value() &&
          !ws.verify_ctx[s].verify(public_point(holder), decoded->share)) {
        ++shares_rejected;
        cheater_sources_mask |= (std::uint64_t{1} << s);
        continue;
      }
      ws.holder_sum[h] += decoded->share;
      ws.holder_contrib[h] |= (std::uint64_t{1} << s);
    }
  }

  // kPollutedSums: attacker-held collectors fold a nonzero offset into
  // the point-sum they broadcast (contributor bitmap left honest).
  if (engine_.active() && engine_.kind() == AttackKind::kPollutedSums) {
    for (std::size_t h = 0; h < num_holders; ++h) {
      const NodeId holder = config_.share_holders[h];
      if (!ws.holder_valid[h] || !engine_.is_attacker(holder)) continue;
      ws.holder_sum[h] +=
          engine_.sum_pollution(sim.seed(), wire_round, holder);
    }
  }

  // Point-sum verdicts (observer-independent): with VSS on, a holder's
  // broadcast sum either matches the product of its contributors'
  // commitments or it does not. Which *observers* can apply a verdict
  // depends on the commitments they heard — resolved per node in stage
  // 3; the verdict itself is computed once here.
  ws.sum_bad.assign(num_holders, 0);
  if (config_.feldman_vss) {
    for (std::size_t h = 0; h < num_holders; ++h) {
      if (!ws.holder_valid[h] || ws.holder_contrib[h] == 0) continue;
      std::vector<const crypto::feldman::Commitment*> parts;
      for (std::size_t s = 0; s < num_sources; ++s) {
        if ((ws.holder_contrib[h] >> s) & 1) {
          parts.push_back(&*ws.commitments[s]);
        }
      }
      const crypto::feldman::Commitment product =
          crypto::feldman::combine(parts);
      ws.sum_bad[h] =
          crypto::feldman::verify_share(
              product, public_point(config_.share_holders[h]),
              ws.holder_sum[h])
              ? 0
              : 1;
    }
  }

  // ---- Stage 2: reconstruction phase ----
  const ct::ReconstructionSchedule& recon = recon_;

  // A holder with no live sum cannot inject its entry: model by marking
  // the holder disabled iff dead (a live holder with a partial sum still
  // transmits; receivers filter by the contributor bitmap).
  // Usable entries for the done-predicate: the largest group of live
  // holders with identical contributor sets. The common case — every
  // valid holder heard the same contributor set — needs no grouping at
  // all; the hash-map tally only runs on genuinely mixed rounds (and
  // reproduces the historic iteration order exactly).
  std::uint64_t best_mask = 0;
  {
    bool mixed = false;
    bool any = false;
    for (std::size_t h = 0; h < num_holders && !mixed; ++h) {
      if (!ws.holder_valid[h]) continue;
      if (!any) {
        best_mask = ws.holder_contrib[h];
        any = true;
      } else if (ws.holder_contrib[h] != best_mask) {
        mixed = true;
      }
    }
    if (mixed) {
      std::unordered_map<std::uint64_t, std::uint32_t> group_size;
      for (std::size_t h = 0; h < num_holders; ++h) {
        if (ws.holder_valid[h]) ++group_size[ws.holder_contrib[h]];
      }
      best_mask = 0;
      std::uint32_t best_count = 0;
      for (const auto& [mask, count] : group_size) {
        const int pc = std::popcount(mask);
        if (count > best_count ||
            (count == best_count && pc > std::popcount(best_mask))) {
          best_count = count;
          best_mask = mask;
        }
      }
    }
  }
  // Completion counts only sums a verifying receiver would accept: with
  // VSS on nodes verify point-sums on reception, so a known-bad sum does
  // not count toward the k+1 threshold and the radio stays on longer.
  ws.usable_mask.assign((num_holders + 63) / 64, 0);
  for (std::size_t h = 0; h < num_holders; ++h) {
    if (ws.holder_valid[h] && ws.holder_contrib[h] == best_mask &&
        !ws.sum_bad[h]) {
      ct::bit_set(ws.usable_mask.data(), h);
    }
  }
  ws.recon_threshold = k + 1;

  const SimTime recon_start_us = share_start_us + share_round.duration_us;
  ct::MiniCastConfig& recon_cfg = ws.recon_cfg;
  recon_cfg.initiator =
      pick_phase_initiator(*topo_, config_.initiator, config_.share_holders,
                           dead, env.liveness, recon_start_us);
  recon_cfg.channel = 0;
  recon_cfg.ntx = config_.ntx_reconstruction;
  recon_cfg.payload_bytes = SumPacket::kWireSize;
  recon_cfg.max_chain_slots = config_.max_chain_slots;
  recon_cfg.radio_policy = share_cfg.radio_policy;
  recon_cfg.disabled = dead;
  recon_cfg.start_time_us = recon_start_us;
  recon_cfg.channel_model = adv_env.channel_model;
  recon_cfg.liveness = env.liveness;
  recon_cfg.scheduled_owners.clear();
  for (NodeId o : config_.share_holders) {
    if (!dead[o]) recon_cfg.scheduled_owners.push_back(o);
  }
  recon_cfg.done = [wsp](NodeId /*node*/, ct::BitView have) {
    return have.count_and(wsp->usable_mask.data(), wsp->usable_mask.size()) >=
           wsp->recon_threshold;
  };

  transport_->chain_round_into(*topo_, recon.entries, recon_cfg,
                               sim.channel_rng(), round_scratch,
                               ws.recon_round);
  const ct::MiniCastResult& recon_round = ws.recon_round;

  // ---- Stage 3: per-node reconstruction from decoded SumPackets ----
  // The result is warm workspace: every field is re-initialized here so
  // nothing from the previous round leaks through.
  AggregationResult& result = ws.result;
  result.nodes.assign(n, NodeOutcome{});
  result.expected_sum = expected_sum;
  result.sync_duration_us = sync.duration_us;
  result.sharing_duration_us = share_round.duration_us;
  result.reconstruction_duration_us = recon_round.duration_us;
  result.total_duration_us =
      sync.duration_us + share_round.duration_us + recon_round.duration_us;
  result.share_delivery_ratio =
      deliverable == 0
          ? 1.0
          : static_cast<double>(delivered) / static_cast<double>(deliverable);
  result.complete_holders = 0;
  for (std::size_t h = 0; h < num_holders; ++h) {
    if (ws.holder_valid[h] && ws.holder_contrib[h] == live_source_mask) {
      ++result.complete_holders;
    }
  }
  result.cheater_sources_mask = cheater_sources_mask;
  result.cheater_holders_mask = 0;
  result.shares_rejected = shares_rejected;
  result.sums_rejected = 0;
  result.vss_commit_bytes = vss_bytes;

  const SimTime prefix_us = sync.duration_us + share_round.duration_us;
  for (NodeId node = 0; node < n; ++node) {
    NodeOutcome& out = result.nodes[node];
    if (dead[node]) continue;
    out.radio_on_us = sync.radio_on_us[node] + share_round.radio_on_us[node] +
                      recon_round.radio_on_us[node];

    // With VSS on, this node can apply a point-sum verdict only for
    // holders whose full contributor commitment set it heard during the
    // sharing phase (one sharing entry per source suffices: a dealer's
    // commitment rides every share packet it sends).
    std::uint64_t commit_bits = 0;
    if (config_.feldman_vss) {
      for (std::size_t s = 0; s < num_sources; ++s) {
        if (!ws.commitments[s].has_value()) continue;
        for (std::size_t hh = 0; hh < num_holders; ++hh) {
          if (share_round.node_has(node, sharing.entry_index(s, hh))) {
            commit_bits |= (std::uint64_t{1} << s);
            break;
          }
        }
      }
    }

    // Collect the sums this node decoded (own sum included for holders)
    // into flat parallel arrays; rounds where every accepted sum carries
    // the same contributor set — the common case — never touch a map.
    ws.node_mask.clear();
    ws.node_share.clear();
    for (std::size_t h = 0; h < num_holders; ++h) {
      if (!ws.holder_valid[h]) continue;
      const NodeId holder = config_.share_holders[h];
      const bool own = (holder == node);
      if (!own && !recon_round.node_has(node, h)) continue;
      // Decode the wire bytes the holder would have broadcast.
      SumPacket pkt;
      pkt.holder = holder;
      pkt.contribution_count =
          static_cast<std::uint8_t>(std::popcount(ws.holder_contrib[h]));
      pkt.round = wire_round;
      pkt.sum = ws.holder_sum[h];
      pkt.contributors = ws.holder_contrib[h];
      pkt.encode_into(ws.wire);
      const std::optional<SumPacket> decoded = SumPacket::decode(ws.wire);
      MPCIOT_ENSURE(decoded.has_value(), "protocol: SumPacket round-trip");
      if (config_.feldman_vss && ws.sum_bad[h] &&
          (decoded->contributors & ~commit_bits) == 0) {
        ++result.sums_rejected;
        result.cheater_holders_mask |= (std::uint64_t{1} << h);
        continue;
      }
      ws.node_mask.push_back(decoded->contributors);
      ws.node_share.push_back(Share{decoded->holder, decoded->sum});
    }

    // Pick the consistent group with the most contributors that has
    // enough points. Fast path: a single contributor set across every
    // accepted sum. Mixed rounds rebuild the historic hash-map grouping
    // (same insertion order, hence the same tie-break) so the selected
    // group is bit-for-bit the one the pre-session engine picked.
    std::unordered_map<std::uint64_t, std::vector<Share>> groups;
    const std::vector<Share>* chosen = nullptr;
    std::uint64_t chosen_mask = 0;
    bool mixed = false;
    for (std::size_t i = 1; i < ws.node_mask.size(); ++i) {
      if (ws.node_mask[i] != ws.node_mask[0]) {
        mixed = true;
        break;
      }
    }
    if (!mixed) {
      if (ws.node_share.size() >= k + 1) {
        chosen = &ws.node_share;
        chosen_mask = ws.node_mask[0];
      }
    } else {
      for (std::size_t i = 0; i < ws.node_mask.size(); ++i) {
        groups[ws.node_mask[i]].push_back(ws.node_share[i]);
      }
      for (const auto& [mask, shares] : groups) {
        if (shares.size() < k + 1) continue;
        if (chosen == nullptr ||
            std::popcount(mask) > std::popcount(chosen_mask)) {
          chosen = &shares;
          chosen_mask = mask;
        }
      }
    }
    if (chosen == nullptr) continue;

    out.has_aggregate = true;
    out.sums_used = static_cast<std::uint32_t>(chosen->size());
    out.aggregate = reconstruct(*chosen, k, ws.lagrange);
    out.contributor_mask = chosen_mask;
    // Correct = covers every live honest source (attackers may or may
    // not land in the aggregate — either is fine as long as the value
    // matches the contributor mask the node ended up with).
    field::Fp61 chosen_expected;
    for (std::size_t s = 0; s < num_sources; ++s) {
      if ((chosen_mask >> s) & 1) chosen_expected += secrets[s];
    }
    out.aggregate_correct =
        ((chosen_mask & required_mask) == required_mask) &&
        (out.aggregate == chosen_expected);

    const std::int32_t done_slot = recon_round.done_slot[node];
    if (done_slot >= 0) {
      out.latency_us = prefix_us + static_cast<SimTime>(done_slot + 1) *
                                       recon_round.chain_slot_us;
    } else {
      out.latency_us = result.total_duration_us;
    }
  }

  return result;
}

ProtocolConfig make_s3_config(const net::Topology& topo,
                              const std::vector<NodeId>& sources,
                              std::size_t degree, std::uint32_t ntx_full) {
  ProtocolConfig cfg;
  cfg.sources = sources;
  cfg.share_holders = sources;
  cfg.degree = degree;
  cfg.ntx_sharing = ntx_full;
  cfg.ntx_reconstruction = ntx_full;
  cfg.initiator = topo.center_node();
  cfg.early_radio_off = false;
  return cfg;
}

ProtocolConfig make_s4_config(const net::Topology& topo,
                              const std::vector<NodeId>& sources,
                              std::size_t degree, std::uint32_t ntx_low,
                              std::size_t holder_slack) {
  ProtocolConfig cfg;
  cfg.sources = sources;
  const std::size_t m =
      std::min(degree + 1 + holder_slack, topo.size());
  cfg.share_holders = elect_share_holders(topo, sources, m);
  cfg.degree = degree;
  cfg.ntx_sharing = ntx_low;
  cfg.ntx_reconstruction = ntx_low;
  cfg.initiator = topo.center_node();
  cfg.early_radio_off = true;
  return cfg;
}

std::size_t paper_degree(std::size_t source_count) {
  return std::max<std::size_t>(1, source_count / 3);
}

std::uint32_t suggest_s3_ntx(const net::Topology& topo,
                             const std::vector<NodeId>& sources,
                             std::uint32_t trials, crypto::Xoshiro256& rng,
                             std::uint32_t max_ntx) {
  const ct::SharingSchedule sharing =
      ct::make_sharing_schedule(sources, sources);

  ct::MiniCastConfig base;
  base.initiator = pick_phase_initiator(
      topo, topo.center_node(), sources,
      std::vector<char>(topo.size(), 0));
  base.payload_bytes = SharePacket::kWireSize;
  base.max_chain_slots = 512;
  base.scheduled_owners = sources;  // slot-synced sources may self-trigger
  // The naive protocol runs the flood "to attain full network coverage"
  // (§III): every node — holder or relay — ends up with the entire chain.
  // That is the condition we calibrate NTX against.
  base.done = [](NodeId, ct::BitView have) { return have.all(); };

  const NtxCalibration cal = calibrate_ntx(
      topo, sharing.entries, base, /*required_done_ratio=*/1.0, trials,
      max_ntx, rng);
  return cal.ntx;
}

}  // namespace mpciot::core
