// The paper's two protocols, S3 (naive SSS over MiniCast) and S4
// (scalable SSS), as one parameterized engine.
//
// A round runs three stages on the simulated CT network:
//   0. sync     — a short Glossy flood from the initiator (round start);
//   1. sharing  — MiniCast round over the (source x holder) chain, every
//                 sub-slot carrying an AES-128-protected SharePacket;
//   2. reconstruction — MiniCast round over the holder chain, carrying
//                 plaintext SumPackets.
// Aggregates are then reconstructed per node from whatever sums that node
// decoded, exactly as a deployed node would.
//
// S3 and S4 differ only in configuration:
//            holders            NTX                 radio policy
//   S3       all sources        full-coverage NTX   listen to round end
//   S4       m elected nodes    low (paper: 6/5)    early off
//
// Latency (paper metric 1) is per node: the time from round start until
// the node first holds >= degree+1 consistent sums. Radio-on time (paper
// metric 2) is summed over the stages.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/adversary.hpp"
#include "core/shamir.hpp"
#include "crypto/feldman.hpp"
#include "crypto/keystore.hpp"
#include "ct/chain_schedule.hpp"
#include "ct/minicast.hpp"
#include "ct/transport.hpp"
#include "field/fp61.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mpciot::core {

class Session;
class Campaign;
class SssProtocol;
class HierarchicalProtocol;

/// Per-run dynamics environment of one aggregation round. Protocol
/// instances are constructed once and shared across (possibly
/// concurrent) trials, so everything that varies per trial rides here:
/// where the round sits on the trial clock, the trial's time-varying
/// channel model, and its crash/recover schedule. The deprecated
/// two-argument run() derives it from the trial's Simulator; all-null
/// is the static world and reproduces frozen-topology rounds bit for
/// bit.
///
/// The session seam (scratch reuse, round/nonce overrides, epoch keys,
/// the pipelined-campaign timeline) is private: only core::Session and
/// the protocol engines can touch it, so external callers can no longer
/// desynchronize the AES-CTR nonce counter from the round sequence.
struct RoundEnv {
  SimTime start_time_us = 0;
  const net::ChannelModel* channel_model = nullptr;
  const net::LivenessModel* liveness = nullptr;

 private:
  friend class Session;
  friend class Campaign;
  friend class SssProtocol;
  friend class HierarchicalProtocol;

  /// "No session override": the engine falls back to the constructed
  /// ProtocolConfig::round.
  static constexpr std::uint32_t kInheritRound = 0xFFFFFFFFu;

  /// Caller-owned scratch shared across the trial's rounds: buffers are
  /// reused and, with a channel model, the epoch-walked ChannelView
  /// continues from round to round instead of replaying the dynamics
  /// chain from epoch 0 (see ct::RoundContext).
  ct::RoundContext* scratch = nullptr;
  /// Session round override (keys nonces and dealer DRBG streams).
  std::uint32_t round = kInheritRound;
  /// AES key epoch the round runs under (0 = the construction keystore).
  std::uint32_t key_epoch = 0;
  /// Epoch-rotated keystore override; null = the construction keystore.
  const crypto::KeyStore* keys = nullptr;
  /// Pipelined-campaign mode (hierarchical only): a persistent timeline
  /// whose channel bookings carry over between rounds, letting round
  /// r+1's group phase start while round r's recombination floods drain.
  ct::ChannelTimeline* timeline = nullptr;
};

struct ProtocolConfig {
  /// Nodes contributing a secret, in schedule order (max 64 per round —
  /// the SumPacket contributor bitmap width).
  std::vector<NodeId> sources;
  /// Share-holder (public-point) nodes, in schedule order. S3: the
  /// sources themselves. S4: the elected collector set.
  std::vector<NodeId> share_holders;
  /// Polynomial degree k (collusion threshold; k+1 sums reconstruct).
  std::size_t degree = 1;
  std::uint32_t ntx_sharing = 6;
  std::uint32_t ntx_reconstruction = 6;
  /// Base round counter (keys the AES-CTR nonces; reuse across rounds
  /// with the same key would break confidentiality). Widened from u16:
  /// the wire carries round & 0xFFFF, and core::Session rotates the key
  /// epoch before the 16-bit window can wrap, so a (key, wire round)
  /// pair is never reused — the u16 counter silently aliased nonces
  /// after 65,536 rounds. Fixed at construction; only a Session may
  /// override it per round (privately, via RoundEnv).
  std::uint32_t round = 0;
  NodeId initiator = 0;
  /// S4's energy optimization: radios off once NTX spent and local
  /// completion reached.
  bool early_radio_off = false;
  std::uint32_t max_chain_slots = 512;
  /// Failure injection: nodes dead for the entire round.
  std::vector<NodeId> failed_nodes;
  /// Active-misbehaviour model (kNone: every node honest — the default
  /// consumes no randomness and leaves frozen rounds byte-identical).
  AdversaryConfig adversary;
  /// Feldman VSS: dealers attach polynomial commitments to their
  /// sharing packets (raising the sharing payload by
  /// 16 * (degree + 1) bytes), holders verify every share at accept
  /// time and drop cheaters, and reconstructors verify point-sums they
  /// hold all contributor commitments for. Off by default: the paper's
  /// baseline protocol, byte-identical to previous revisions.
  bool feldman_vss = false;
};

struct NodeOutcome {
  bool has_aggregate = false;
  /// The aggregate covers every live honest source and equals the sum
  /// of the secrets its contributor mask claims. Without an adversary
  /// this is exactly "equals the sum over all live sources".
  bool aggregate_correct = false;
  field::Fp61 aggregate;
  /// Number of consistent sums the node reconstructed from.
  std::uint32_t sums_used = 0;
  /// Source-list bitmap the node's aggregate covers (bit i = sources[i]).
  std::uint64_t contributor_mask = 0;
  SimTime latency_us = 0;
  SimTime radio_on_us = 0;
};

struct AggregationResult {
  std::vector<NodeOutcome> nodes;  // one per network node
  field::Fp61 expected_sum;        // sum over live sources
  SimTime sync_duration_us = 0;
  SimTime sharing_duration_us = 0;
  SimTime reconstruction_duration_us = 0;
  SimTime total_duration_us = 0;
  /// Sharing-phase delivery: fraction of (live source -> live holder)
  /// shares that arrived.
  double share_delivery_ratio = 0.0;
  /// Holders that assembled a complete sum (all live sources).
  std::uint32_t complete_holders = 0;

  // Byzantine bookkeeping — all zero when no adversary is bound and
  // feldman_vss is off (the frozen baseline).
  /// Source-list bitmap of dealers whose share failed a commitment
  /// check at some holder.
  std::uint64_t cheater_sources_mask = 0;
  /// Holder-list bitmap of collectors whose point-sum failed the
  /// homomorphic commitment check at some verifying node.
  std::uint64_t cheater_holders_mask = 0;
  /// Share-accept rejections across all holders.
  std::uint32_t shares_rejected = 0;
  /// Point-sum rejections across all verifying nodes.
  std::uint32_t sums_rejected = 0;
  /// Commitment bytes attached to each sharing packet (0 without VSS).
  std::uint32_t vss_commit_bytes = 0;

  /// Fraction of live nodes holding a correct aggregate.
  double success_ratio() const;
  SimTime max_latency_us() const;
  double mean_latency_us() const;
  SimTime max_radio_on_us() const;
  double mean_radio_on_us() const;
};

/// Warm per-round state of the flat engine, owned by a core::Session
/// (or by a deprecated shim's stack frame). Buffers grow to the round
/// shape on first use and are reused thereafter: after the warm-up
/// round, the honest static path performs zero heap allocations.
struct RoundWorkspace {
  /// holder_pos sentinel: the node is not a share holder this round.
  static constexpr std::uint32_t kNotHolder = 0xFFFFFFFFu;

  ct::RoundContext ct;             // chain-engine + flood scratch
  ct::GlossyResult sync;           // stage 0b result
  ct::MiniCastResult share_round;  // stage 1 result
  ct::MiniCastResult recon_round;  // stage 2 result
  AggregationResult result;        // stage 3 result (returned by ref)

  std::vector<char> dead;
  std::vector<char> down_at_start;
  std::vector<ShamirDealer> dealers;  // one slot per source, re-dealt
  std::vector<char> dealt;            // which slots dealt this round
  std::vector<std::optional<crypto::feldman::Commitment>> commitments;
  std::vector<crypto::feldman::VerifyContext> verify_ctx;  // per source
  std::vector<std::optional<ShamirDealer>> equiv_dealers;
  std::vector<std::uint32_t> holder_pos;   // node id -> holder index
  std::vector<std::uint64_t> holder_need;  // flat per-holder entry masks
  std::size_t holder_need_words = 0;
  std::vector<field::Fp61> holder_sum;       // stage 1b accumulators
  std::vector<field::Fp61> holder_xs;    // holders' public points
  std::vector<field::Fp61> share_matrix; // [s * num_holders + h] = P_s(x_h)
  std::vector<std::uint64_t> holder_contrib;
  std::vector<char> holder_valid;
  std::vector<char> sum_bad;
  std::vector<std::uint64_t> usable_mask;
  std::size_t recon_threshold = 0;
  Bytes wire;  // packet encode/decode round-trip buffer
  std::vector<std::uint64_t> node_mask;  // stage 3: accepted sum masks
  std::vector<Share> node_share;         //   parallel decoded values
  field::LagrangeScratch lagrange;
  ct::GlossyConfig sync_cfg;
  ct::MiniCastConfig share_cfg;
  ct::MiniCastConfig recon_cfg;
};

class SssProtocol {
 public:
  /// Preconditions: sources/holders non-empty, ids in range and unique,
  /// 1 <= degree < sources.size() (degree >= sources would make even the
  /// all-sources holder set unable to reconstruct), sources <= 64.
  ///
  /// `transport` selects the communication substrate the round runs on
  /// (sync flood + both chain rounds); null means the paper's MiniCast/
  /// Glossy substrate. The transport must outlive the protocol.
  SssProtocol(const net::Topology& topo, const crypto::KeyStore& keys,
              ProtocolConfig config,
              const ct::Transport* transport = nullptr);

  /// Run one aggregation round. secrets[i] belongs to config.sources[i].
  /// Reads the dynamics environment off `sim` (channel model, liveness,
  /// start time = sim.now()).
  ///
  /// Deprecated: construct a core::Session over this protocol and call
  /// Session::run_round — it owns the warm state, issues monotone
  /// round/nonce ids, and rotates key epochs. This shim runs the same
  /// engine with a cold workspace (byte-identical results).
  [[deprecated("use core::Session::run_round")]] AggregationResult run(
      const std::vector<field::Fp61>& secrets, sim::Simulator& sim) const;

  /// As above with an explicit environment (e.g. a composition layer
  /// placing the round later on the trial clock, or mapping a parent
  /// churn schedule onto a subtopology). Under churn, sources that are
  /// down at round start never deal — they are excluded from the
  /// expected aggregate like failed_nodes — while nodes that crash
  /// mid-round simply fall silent: their undelivered shares surface as
  /// missing contributors and reconstruction falls back to the Shamir
  /// threshold path (any degree+1 consistent sums). Reported latencies
  /// stay relative to the round start.
  ///
  /// Deprecated: see the two-argument overload.
  [[deprecated("use core::Session::run_round")]] AggregationResult run(
      const std::vector<field::Fp61>& secrets, sim::Simulator& sim,
      const RoundEnv& env) const;

  const ProtocolConfig& config() const { return config_; }
  const ct::Transport& transport() const { return *transport_; }

 private:
  friend class Session;
  friend class Campaign;
  friend class HierarchicalProtocol;

  /// The engine behind every entry point: one aggregation round into
  /// `ws` (result returned by reference into ws.result). RNG draws,
  /// arithmetic and outcomes are identical to the historic run()
  /// overloads; the workspace only changes where buffers live.
  const AggregationResult& run_round(const std::vector<field::Fp61>& secrets,
                                     sim::Simulator& sim, const RoundEnv& env,
                                     RoundWorkspace& ws) const;

  const net::Topology* topo_;
  const crypto::KeyStore* keys_;
  ProtocolConfig config_;
  const ct::Transport* transport_;
  AdversaryEngine engine_;
  ct::SharingSchedule sharing_;        // fixed by config at construction
  ct::ReconstructionSchedule recon_;   // fixed by config at construction
};

/// Naive S3: holders = sources, no early radio-off. `ntx_full` should be
/// the full-coverage NTX (see bootstrap::calibrate_ntx or
/// suggest_s3_ntx).
ProtocolConfig make_s3_config(const net::Topology& topo,
                              const std::vector<NodeId>& sources,
                              std::size_t degree, std::uint32_t ntx_full);

/// Scalable S4: m = degree+1+slack elected holders, low NTX, early off.
ProtocolConfig make_s4_config(const net::Topology& topo,
                              const std::vector<NodeId>& sources,
                              std::size_t degree, std::uint32_t ntx_low,
                              std::size_t holder_slack = 2);

/// The paper's degree heuristic: k = max(1, floor(n/3)).
std::size_t paper_degree(std::size_t source_count);

/// Calibrate the full-coverage NTX for S3 on this topology/source set
/// (smallest NTX for which every holder assembles every share in
/// `trials` consecutive trials).
std::uint32_t suggest_s3_ntx(const net::Topology& topo,
                             const std::vector<NodeId>& sources,
                             std::uint32_t trials, crypto::Xoshiro256& rng,
                             std::uint32_t max_ntx = 24);

}  // namespace mpciot::core
