// Bootstrapping phase (§II/§III of the paper).
//
// Before any aggregation round, the deployment runs a one-time setup
// that (per the paper) distributes pairwise keys and records "which
// neighbour is reachable at what NTX value". From that information the
// scalable variant derives:
//   * the round initiator (the most central node),
//   * the m share-holder ("collector") nodes every source will address —
//     chosen for maximal reachability at low NTX so the trimmed sharing
//     phase still delivers every share (see DESIGN.md on why the holder
//     set must be common to all sources),
//   * a calibrated NTX for any delivery requirement (used to pick the
//     full-coverage NTX of naive S3 honestly, instead of hard-coding it).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "crypto/prng.hpp"
#include "ct/minicast.hpp"
#include "ct/transport.hpp"
#include "net/topology.hpp"

namespace mpciot::core {

/// Reachability table built from Glossy probe floods: probe[i][j] = the
/// smallest NTX at which node j received a probe initiated by node i in
/// all of `trials` trials (0xFFFFFFFF if never).
struct ReachabilityTable {
  static constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;
  std::vector<std::vector<std::uint32_t>> min_ntx;  // [initiator][receiver]
};

/// `transport` (here and below) selects the substrate probed/calibrated;
/// null means the paper's MiniCast/Glossy substrate.
ReachabilityTable probe_reachability(const net::Topology& topo,
                                     std::uint32_t max_ntx,
                                     std::uint32_t trials,
                                     crypto::Xoshiro256& rng,
                                     const ct::Transport* transport = nullptr);

/// Pick `count` share-holder nodes: the nodes with the smallest total
/// hop distance to all sources (ties by node id). This is the
/// deterministic equivalent of "the nodes everyone reaches at low NTX".
std::vector<NodeId> elect_share_holders(const net::Topology& topo,
                                        const std::vector<NodeId>& sources,
                                        std::size_t count);

/// Find the smallest NTX in [1, max_ntx] such that a sharing round over
/// `entries` reaches `required_ratio` of the per-node done-predicates in
/// every one of `trials` trials. Returns max_ntx if none suffices.
struct NtxCalibration {
  std::uint32_t ntx = 0;
  bool satisfied = false;
};
NtxCalibration calibrate_ntx(const net::Topology& topo,
                             const std::vector<ct::ChainEntry>& entries,
                             const ct::MiniCastConfig& base_config,
                             double required_done_ratio, std::uint32_t trials,
                             std::uint32_t max_ntx, crypto::Xoshiro256& rng,
                             const ct::Transport* transport = nullptr);

}  // namespace mpciot::core
