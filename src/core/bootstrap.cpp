#include "core/bootstrap.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "ct/glossy.hpp"

namespace mpciot::core {

ReachabilityTable probe_reachability(const net::Topology& topo,
                                     std::uint32_t max_ntx,
                                     std::uint32_t trials,
                                     crypto::Xoshiro256& rng,
                                     const ct::Transport* transport) {
  const ct::Transport& substrate =
      transport != nullptr ? *transport : ct::minicast_transport();
  const std::size_t n = topo.size();
  ReachabilityTable table;
  table.min_ntx.assign(
      n, std::vector<std::uint32_t>(n, ReachabilityTable::kUnreachable));

  for (NodeId initiator = 0; initiator < n; ++initiator) {
    table.min_ntx[initiator][initiator] = 0;
    for (std::uint32_t ntx = 1; ntx <= max_ntx; ++ntx) {
      // A receiver is "reachable at ntx" if it received the probe in
      // every trial at this ntx.
      std::vector<std::uint32_t> hits(n, 0);
      for (std::uint32_t t = 0; t < trials; ++t) {
        ct::GlossyConfig cfg;
        cfg.initiator = initiator;
        cfg.ntx = ntx;
        const ct::GlossyResult res = substrate.flood(topo, cfg, rng);
        for (NodeId r = 0; r < n; ++r) {
          if (res.first_rx_slot[r] != ct::MiniCastResult::kNever) ++hits[r];
        }
      }
      for (NodeId r = 0; r < n; ++r) {
        if (r != initiator && hits[r] == trials &&
            table.min_ntx[initiator][r] == ReachabilityTable::kUnreachable) {
          table.min_ntx[initiator][r] = ntx;
        }
      }
    }
  }
  return table;
}

std::vector<NodeId> elect_share_holders(const net::Topology& topo,
                                        const std::vector<NodeId>& sources,
                                        std::size_t count) {
  MPCIOT_REQUIRE(!sources.empty(), "elect_share_holders: no sources");
  MPCIOT_REQUIRE(count >= 1 && count <= topo.size(),
                 "elect_share_holders: bad holder count");

  // Score every node by total hop distance to the sources. Sources that
  // hang off the network through weak links only (no good-link path)
  // contribute a flat penalty instead of disqualifying the candidate —
  // they are equally awkward for every choice of holder.
  struct Candidate {
    NodeId node;
    std::uint64_t score;
  };
  const std::uint64_t penalty = topo.diameter() + 3;
  // Accumulate per source over whole hop rows (hops_from): the same
  // integer sums as the candidate-major loop, but one BFS per source on
  // the sparse tier instead of |sources| point queries per candidate.
  std::vector<std::uint64_t> scores(topo.size(), 0);
  for (NodeId src : sources) {
    const std::uint32_t* row = topo.hops_from(src);
    for (NodeId cand = 0; cand < topo.size(); ++cand) {
      const std::uint32_t h = row[cand];
      scores[cand] += (h == net::Topology::kInvalidHops) ? penalty : h;
    }
  }
  std::vector<Candidate> candidates;
  candidates.reserve(topo.size());
  for (NodeId cand = 0; cand < topo.size(); ++cand) {
    candidates.push_back(Candidate{cand, scores[cand]});
  }
  MPCIOT_REQUIRE(candidates.size() >= count,
                 "elect_share_holders: not enough candidates");

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.node < b.node;
            });
  std::vector<NodeId> holders;
  holders.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    holders.push_back(candidates[i].node);
  }
  std::sort(holders.begin(), holders.end());
  return holders;
}

NtxCalibration calibrate_ntx(const net::Topology& topo,
                             const std::vector<ct::ChainEntry>& entries,
                             const ct::MiniCastConfig& base_config,
                             double required_done_ratio, std::uint32_t trials,
                             std::uint32_t max_ntx, crypto::Xoshiro256& rng,
                             const ct::Transport* transport) {
  const ct::Transport& substrate =
      transport != nullptr ? *transport : ct::minicast_transport();
  // Common random numbers: every NTX candidate sees the same per-trial
  // channel draws, so the calibration is (near-)monotone in NTX instead
  // of jittering with independent channel luck.
  const std::uint64_t crn_base = rng.next_u64();
  ct::RoundContext scratch;
  for (std::uint32_t ntx = 1; ntx <= max_ntx; ++ntx) {
    bool all_ok = true;
    for (std::uint32_t t = 0; t < trials && all_ok; ++t) {
      ct::MiniCastConfig cfg = base_config;
      cfg.ntx = ntx;
      crypto::Xoshiro256 trial_rng(crn_base + t);
      const ct::MiniCastResult res =
          substrate.chain_round(topo, entries, cfg, trial_rng, &scratch);
      if (res.done_ratio() < required_done_ratio) all_ok = false;
    }
    if (all_ok) return NtxCalibration{ntx, true};
  }
  return NtxCalibration{max_ntx, false};
}

}  // namespace mpciot::core
