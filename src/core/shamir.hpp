// Shamir Secret Sharing over Fp61 (Shamir, CACM 1979), in the additive
// aggregation arrangement the paper uses:
//
//   * every node n_i holds a random degree-k polynomial P_i with
//     P_i(0) = S_i (its secret);
//   * node n_i's share *for public point x_j* is P_i(x_j);
//   * point-holder j sums the shares it received: sum_j = Σ_i P_i(x_j)
//     — a point of the sum polynomial P_s = Σ_i P_i;
//   * any k+1 complete sums reconstruct P_s(0) = Σ_i S_i.
//
// Public point for node id v is x = v + 1 (never 0 — x = 0 would leak
// the secret directly).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/prng.hpp"
#include "field/lagrange.hpp"
#include "field/polynomial.hpp"

namespace mpciot::core {

/// The public evaluation point assigned to a node id.
inline field::Fp61 public_point(NodeId node) {
  return field::Fp61{static_cast<std::uint64_t>(node) + 1};
}

/// One share: the evaluation of a (sum of) secret polynomial(s) at the
/// public point of `holder`.
struct Share {
  NodeId holder = kInvalidNode;
  field::Fp61 value;
};

/// A dealer-side sharing of one secret.
class ShamirDealer {
 public:
  /// Empty dealer for warm pools; call reset() before use.
  ShamirDealer() = default;

  /// Sample a fresh degree-`degree` polynomial with constant term
  /// `secret`, drawing coefficients from `drbg`.
  /// Precondition: degree >= 1 (degree 0 would broadcast the secret).
  ShamirDealer(field::Fp61 secret, std::size_t degree, crypto::CtrDrbg& drbg);

  /// Re-deal in place: identical draws and result as the constructor,
  /// but reuses the polynomial's storage (allocation-free when warm).
  void reset(field::Fp61 secret, std::size_t degree, crypto::CtrDrbg& drbg);

  /// The share destined for `holder`.
  Share share_for(NodeId holder) const;

  /// Shares for an explicit holder list.
  std::vector<Share> shares_for(const std::vector<NodeId>& holders) const;

  /// Batched evaluation at explicit points: out[i] = P(xs[i]), one
  /// Polynomial::evaluate_many pass over the fp61_batch kernels. Exact
  /// field arithmetic — each out[i] is bit-identical to share_for on
  /// the node whose public point is xs[i].
  void evaluate_at(std::span<const field::Fp61> xs,
                   std::span<field::Fp61> out) const;

  std::size_t degree() const {
    return static_cast<std::size_t>(poly_.degree());
  }
  const field::Polynomial& polynomial() const { return poly_; }

 private:
  field::Polynomial poly_;
};

/// Reconstruct the secret (the value at x = 0) from at least degree+1
/// shares at distinct points. Preconditions: shares.size() >= degree+1,
/// holders distinct.
field::Fp61 reconstruct(const std::vector<Share>& shares, std::size_t degree);

/// As above, allocation-free once `scratch` is warm. Same preconditions
/// (holder distinctness is NOT re-checked on this path).
field::Fp61 reconstruct(const std::vector<Share>& shares, std::size_t degree,
                        field::LagrangeScratch& scratch);

/// Add share values pointwise — the aggregation step. All shares must be
/// for the same holder.
field::Fp61 sum_shares(const std::vector<field::Fp61>& values);

}  // namespace mpciot::core
