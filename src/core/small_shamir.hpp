// Shamir Secret Sharing over a small runtime prime field.
//
// The default protocol shares Fp61 values (8-byte shares). Real IoT
// payloads are often 16-bit sensor readings; sharing them over
// GF(65521) makes every share exactly 2 bytes on air, shrinking the
// sharing-phase sub-slot and therefore the whole round (airtime is the
// currency of CT protocols). The trade-offs:
//   * the aggregate is computed mod p, so the sum of all inputs must
//     stay below p (65521) — fine for mean-style aggregates with
//     bounded inputs, caller's responsibility to range-check;
//   * 2-byte shares leak nothing extra (the scheme is still perfectly
//     hiding below the threshold — field size only bounds payload).
// bench_payload_size quantifies the airtime win.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "crypto/prng.hpp"
#include "field/prime_field.hpp"

namespace mpciot::core {

/// A share of a small-field sharing: holder + field value (< p).
struct SmallShare {
  NodeId holder = kInvalidNode;
  std::uint64_t value = 0;
};

/// Dealer for one secret over GF(p), p < 2^32. The field must outlive
/// the dealer.
class SmallShamirDealer {
 public:
  /// Precondition: 1 <= degree, secret < p, degree + 1 < p (need that
  /// many distinct non-zero points).
  SmallShamirDealer(const field::PrimeField& fieldd, std::uint64_t secret,
                    std::size_t degree, crypto::CtrDrbg& drbg);

  SmallShare share_for(NodeId holder) const;
  std::size_t degree() const { return coeffs_.size() - 1; }
  const field::PrimeField& field() const { return *field_; }

 private:
  const field::PrimeField* field_;
  std::vector<std::uint64_t> coeffs_;  // low-degree first; [0] = secret
};

/// Reconstruct the secret from >= degree+1 shares at distinct holders.
std::uint64_t small_reconstruct(const field::PrimeField& fieldd,
                                const std::vector<SmallShare>& shares,
                                std::size_t degree);

/// Wire size of one share in bytes (ceil(bits(p)/8)) — what a deployment
/// would put in the sub-slot payload.
std::size_t small_share_bytes(const field::PrimeField& fieldd);

}  // namespace mpciot::core
