// Wire formats for the two SSS phases, with the real cryptography the
// paper specifies: sharing-phase packets are AES-128 protected (CTR
// encryption + truncated CMAC tag under the pairwise key), reconstruction
// packets travel in plaintext with a group-key tag.
//
// Sizes drive the simulator's airtime, so the structs encode/decode to
// exact byte layouts (node ids are u16 on the wire — the hierarchical
// protocol runs deployments far beyond the 255-node ceiling u8 ids
// imposed). Every multi-byte field is serialized little-endian so the
// same frame decodes identically on heterogeneous hosts — a requirement
// now that the rt layer carries these packets over real sockets:
//
//   SharePacket (18 B):  src u16 | dst u16 | round u16 | ct u64 | tag u32
//   SumPacket   (21 B):  holder u16 | count u8 | round u16 | sum u64
//                        | contributors u64 (bitmap over the round's
//                          source list — lets reconstructors combine only
//                          sums over identical source sets, the condition
//                          for Lagrange interpolation to be meaningful
//                          when nodes fail mid-round)
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "crypto/aes_ctr.hpp"
#include "crypto/cmac.hpp"
#include "crypto/keystore.hpp"
#include "field/fp61.hpp"

namespace mpciot::core {

/// Encrypted share carried by one sharing-phase sub-slot.
struct SharePacket {
  static constexpr std::size_t kWireSize = 18;

  NodeId source = kInvalidNode;
  NodeId destination = kInvalidNode;
  std::uint16_t round = 0;
  field::Fp61 share;  // plaintext value (encrypted on the wire)

  /// Encrypt and serialize under the (source, destination) pairwise key.
  Bytes encode(const crypto::KeyStore& keys) const;

  /// As encode, reusing `wire`'s storage (allocation-free when warm).
  void encode_into(const crypto::KeyStore& keys, Bytes& wire) const;

  /// Parse + decrypt + authenticate. Returns nullopt on a size
  /// mismatch, out-of-range/self-addressed ids, a failed tag, or a
  /// non-canonical (>= p) share encoding.
  static std::optional<SharePacket> decode(const Bytes& wire,
                                           const crypto::KeyStore& keys);
};

/// Plaintext point-sum carried by one reconstruction-phase sub-slot.
struct SumPacket {
  static constexpr std::size_t kWireSize = 21;

  NodeId holder = kInvalidNode;
  /// Number of source contributions folded into `sum` (== popcount of
  /// `contributors`; kept explicit for cheap on-air filtering).
  std::uint8_t contribution_count = 0;
  std::uint16_t round = 0;
  field::Fp61 sum;
  /// Bit i set iff the i-th source of the round's schedule contributed.
  /// Limits a round to 64 sources — far above the 45-node testbeds.
  std::uint64_t contributors = 0;

  Bytes encode() const;
  /// As encode, reusing `wire`'s storage (allocation-free when warm).
  void encode_into(Bytes& wire) const;
  /// Returns nullopt on a size mismatch, a non-canonical (>= p) sum
  /// encoding, or a count that disagrees with the contributor bitmap.
  static std::optional<SumPacket> decode(const Bytes& wire);
};

}  // namespace mpciot::core
