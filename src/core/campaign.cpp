#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace mpciot::core {

double CampaignResult::aggregates_per_sec() const {
  if (makespan_us <= 0) return 0.0;
  return static_cast<double>(rounds) /
         (static_cast<double>(makespan_us) * 1e-6);
}

SimTime CampaignResult::latency_percentile_us(double q) const {
  if (round_latency_us.empty()) return 0;
  std::vector<SimTime> sorted = round_latency_us;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const std::size_t rank = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(std::ceil(clamped * sorted.size())) == 0
          ? 0
          : static_cast<std::size_t>(std::ceil(clamped * sorted.size())) - 1);
  return sorted[rank];
}

double CampaignResult::pipeline_speedup() const {
  if (makespan_us <= 0) return 0.0;
  return static_cast<double>(serial_us) / static_cast<double>(makespan_us);
}

Campaign::Campaign(Session& session, CampaignConfig config)
    : session_(&session), config_(config) {
  MPCIOT_REQUIRE(config_.rounds >= 1, "campaign: need at least one round");
}

const CampaignResult& Campaign::run(
    sim::Simulator& sim,
    const std::function<void(std::uint32_t, std::vector<field::Fp61>&)>&
        fill) {
  Session& session = *session_;
  result_.rounds = config_.rounds;
  result_.rounds_ok = 0;
  result_.makespan_us = 0;
  result_.serial_us = 0;
  result_.mean_success_ratio = 0.0;
  result_.round_latency_us.clear();
  result_.round_latency_us.reserve(config_.rounds);
  result_.round_ok.clear();
  result_.round_ok.reserve(config_.rounds);

  secrets_.assign(session.secret_count(), field::Fp61{});

  // Pipelined hierarchical streams book every round on one persistent
  // timeline; its channel ends are absolute trial-clock times, so
  // clearing it aligns lane zero-points with the campaign start.
  ct::ChannelTimeline* timeline = nullptr;
  const bool pipelined = config_.pipelined && session.hierarchical();
  if (pipelined) {
    timeline_.resize(static_cast<std::uint16_t>(
        session.hier_->config().num_channels + 1));
    timeline = &timeline_;
  }

  const SimTime t0 = sim.now();
  SimTime submit = t0;
  SimTime end = t0;
  double success_accum = 0.0;
  for (std::uint32_t r = 0; r < config_.rounds; ++r) {
    fill(r, secrets_);
    RoundEnv env;
    env.start_time_us = submit;
    env.channel_model = sim.channel_model();
    env.liveness = sim.liveness();
    env.timeline = timeline;
    const RoundReport& rep = session.run_round_at(secrets_, sim, env);
    result_.round_latency_us.push_back(rep.end_us - submit);
    result_.round_ok.push_back(rep.ok ? 1 : 0);
    if (rep.ok) ++result_.rounds_ok;
    success_accum += rep.success_ratio;
    result_.serial_us += rep.duration_us;
    end = std::max(end, rep.end_us);
    // Next round's submit time. Sequential: when this round's result
    // flood finished. Pipelined: when this round's group phase freed
    // the group lanes — its floods keep draining on the flood lane
    // while the next round's sharing chains run.
    if (pipelined && rep.hier != nullptr) {
      submit = rep.hier->round_start_us + rep.hier->group_phase_us;
    } else {
      submit = rep.end_us;
    }
  }
  result_.makespan_us = end - t0;
  result_.mean_success_ratio =
      success_accum / static_cast<double>(config_.rounds);
  return result_;
}

}  // namespace mpciot::core
