#include "core/session.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "crypto/prng.hpp"

namespace mpciot::core {

namespace {

/// derive_seed stream tag of the flat session's rotated keystores.
constexpr std::uint64_t kStreamSessionKeys = 0x53455353ull;  // "SESS"

}  // namespace

Session::Session(const SssProtocol& protocol, SessionConfig config)
    : flat_(&protocol),
      config_(config),
      next_round_(config.first_round),
      flat_ws_(std::make_unique<RoundWorkspace>()) {
  config_.rounds_per_epoch = std::clamp<std::uint32_t>(
      config_.rounds_per_epoch, 1, 1u << 16);
}

Session::Session(const HierarchicalProtocol& protocol, SessionConfig config)
    : hier_(&protocol),
      config_(config),
      next_round_(config.first_round),
      hier_ws_(std::make_unique<HierWorkspace>()) {
  const std::uint32_t batches = protocol.max_round_batches();
  MPCIOT_REQUIRE(batches <= (1u << 16),
                 "session: group batch count exceeds the wire-round window");
  const std::uint32_t cap = std::max(1u, (1u << 16) / batches);
  config_.rounds_per_epoch =
      std::clamp<std::uint32_t>(config_.rounds_per_epoch, 1, cap);
}

std::size_t Session::secret_count() const {
  return flat_ != nullptr ? flat_->config().sources.size()
                          : hier_->topo_->size();
}

const crypto::KeyStore* Session::flat_epoch_keys(std::uint32_t epoch) {
  if (epoch == 0) return nullptr;  // the construction keystore
  if (epoch_keys_ == nullptr || cached_epoch_ != epoch) {
    epoch_keys_ = std::make_unique<crypto::KeyStore>(
        crypto::derive_seed(config_.rotation_seed, kStreamSessionKeys, epoch),
        flat_->keys_->node_count());
    cached_epoch_ = epoch;
  }
  return epoch_keys_.get();
}

const RoundReport& Session::run_round(const std::vector<field::Fp61>& secrets,
                                      sim::Simulator& sim) {
  RoundEnv env;
  env.start_time_us = sim.now();
  env.channel_model = sim.channel_model();
  env.liveness = sim.liveness();
  return run_round_at(secrets, sim, env);
}

const RoundReport& Session::run_round_at(
    const std::vector<field::Fp61>& secrets, sim::Simulator& sim,
    RoundEnv env) {
  const std::uint32_t round = next_round_;
  ++next_round_;
  MPCIOT_REQUIRE(next_round_ != 0, "session: round counter exhausted");
  const std::uint32_t epoch = round / config_.rounds_per_epoch;
  const std::uint32_t r_in_epoch = round % config_.rounds_per_epoch;

  // A (key epoch, round) pair keys the AES-CTR nonces; reissuing one
  // would replay a keystream. The counter above is monotone by
  // construction — this guard pins that invariant in debug builds.
  const std::uint64_t issued =
      (static_cast<std::uint64_t>(epoch) << 32) | r_in_epoch;
  MPCIOT_DCHECK(last_issued_ == kNoneIssued || issued > last_issued_,
                "session: (key epoch, round) id reused");
  last_issued_ = issued;

  env.round = r_in_epoch;
  env.key_epoch = epoch;
  report_.round = round;
  report_.key_epoch = epoch;
  report_.start_us = env.start_time_us;
  if (flat_ != nullptr) {
    env.keys = flat_epoch_keys(epoch);
    const AggregationResult& r = flat_->run_round(secrets, sim, env, *flat_ws_);
    report_.flat = &r;
    report_.hier = nullptr;
    report_.success_ratio = r.success_ratio();
    report_.ok = report_.success_ratio > 0.0;
    report_.duration_us = r.total_duration_us;
    report_.end_us = env.start_time_us + r.total_duration_us;
  } else {
    const HierarchicalResult& r =
        hier_->run_round(secrets, sim, env, *hier_ws_);
    report_.flat = nullptr;
    report_.hier = &r;
    report_.success_ratio = r.success_ratio();
    report_.ok = r.has_aggregate && r.aggregate_correct;
    report_.duration_us = r.total_duration_us;
    report_.end_us = r.round_end_us;
  }
  return report_;
}

}  // namespace mpciot::core
