#include "core/shamir.hpp"

#include "common/assert.hpp"

namespace mpciot::core {

ShamirDealer::ShamirDealer(field::Fp61 secret, std::size_t degree,
                           crypto::CtrDrbg& drbg) {
  MPCIOT_REQUIRE(degree >= 1, "ShamirDealer: degree must be >= 1");
  poly_ = field::Polynomial::random_with_secret(
      secret, degree, [&drbg] { return drbg.next_fp61(); });
}

void ShamirDealer::reset(field::Fp61 secret, std::size_t degree,
                         crypto::CtrDrbg& drbg) {
  MPCIOT_REQUIRE(degree >= 1, "ShamirDealer: degree must be >= 1");
  poly_.assign_random_with_secret(secret, degree,
                                  [&drbg] { return drbg.next_fp61(); });
}

Share ShamirDealer::share_for(NodeId holder) const {
  return Share{holder, poly_.evaluate(public_point(holder))};
}

std::vector<Share> ShamirDealer::shares_for(
    const std::vector<NodeId>& holders) const {
  std::vector<field::Fp61> xs;
  xs.reserve(holders.size());
  for (NodeId h : holders) xs.push_back(public_point(h));
  std::vector<field::Fp61> ys(holders.size());
  evaluate_at(xs, ys);
  std::vector<Share> out;
  out.reserve(holders.size());
  for (std::size_t i = 0; i < holders.size(); ++i) {
    out.push_back(Share{holders[i], ys[i]});
  }
  return out;
}

void ShamirDealer::evaluate_at(std::span<const field::Fp61> xs,
                               std::span<field::Fp61> out) const {
  poly_.evaluate_many(xs, out);
}

field::Fp61 reconstruct(const std::vector<Share>& shares,
                        std::size_t degree) {
  MPCIOT_REQUIRE(shares.size() >= degree + 1,
                 "reconstruct: need at least degree+1 shares");
  std::vector<field::Sample> samples;
  samples.reserve(degree + 1);
  for (std::size_t i = 0; i <= degree; ++i) {
    samples.push_back(
        field::Sample{public_point(shares[i].holder), shares[i].value});
  }
  return field::interpolate_at_zero(samples);
}

field::Fp61 reconstruct(const std::vector<Share>& shares, std::size_t degree,
                        field::LagrangeScratch& scratch) {
  MPCIOT_REQUIRE(shares.size() >= degree + 1,
                 "reconstruct: need at least degree+1 shares");
  scratch.samples.clear();
  for (std::size_t i = 0; i <= degree; ++i) {
    scratch.samples.push_back(
        field::Sample{public_point(shares[i].holder), shares[i].value});
  }
  return field::interpolate_at_zero(scratch.samples, scratch);
}

field::Fp61 sum_shares(const std::vector<field::Fp61>& values) {
  field::Fp61 acc;
  for (field::Fp61 v : values) acc += v;
  return acc;
}

}  // namespace mpciot::core
