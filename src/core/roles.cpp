#include "core/roles.hpp"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "common/assert.hpp"

namespace mpciot::core::roles {

namespace {

std::uint64_t mask_for(std::size_t source_count) {
  return source_count == 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << source_count) - 1;
}

}  // namespace

void validate(const RoundSpec& spec) {
  MPCIOT_REQUIRE(!spec.sources.empty(), "RoundSpec: no sources");
  MPCIOT_REQUIRE(!spec.holders.empty(), "RoundSpec: no holders");
  MPCIOT_REQUIRE(spec.sources.size() <= 64,
                 "RoundSpec: the SumPacket contributor bitmap caps a round "
                 "at 64 sources");
  MPCIOT_REQUIRE(spec.degree >= 1, "RoundSpec: degree 0 would broadcast "
                                   "the secret");
  MPCIOT_REQUIRE(spec.degree + 1 <= spec.holders.size(),
                 "RoundSpec: fewer holders than the reconstruction "
                 "threshold");
  std::unordered_set<NodeId> uniq(spec.sources.begin(), spec.sources.end());
  MPCIOT_REQUIRE(uniq.size() == spec.sources.size(),
                 "RoundSpec: duplicate source");
  uniq.clear();
  uniq.insert(spec.holders.begin(), spec.holders.end());
  MPCIOT_REQUIRE(uniq.size() == spec.holders.size(),
                 "RoundSpec: duplicate holder");
}

std::optional<std::size_t> index_of(const std::vector<NodeId>& list,
                                    NodeId node) {
  const auto it = std::find(list.begin(), list.end(), node);
  if (it == list.end()) return std::nullopt;
  return static_cast<std::size_t>(it - list.begin());
}

SourceRole::SourceRole(const RoundSpec& spec, NodeId self, field::Fp61 secret,
                       crypto::CtrDrbg& drbg)
    : spec_(spec), self_(self), dealer_(secret, spec.degree, drbg) {
  validate(spec_);
  MPCIOT_REQUIRE(index_of(spec_.sources, self).has_value(),
                 "SourceRole: node is not a source of this round");
}

bool SourceRole::encode_share_for(std::size_t i, const crypto::KeyStore& keys,
                                  Bytes& wire) const {
  MPCIOT_REQUIRE(i < spec_.holders.size(), "SourceRole: holder index");
  const NodeId holder = spec_.holders[i];
  if (holder == self_) return false;
  SharePacket pkt;
  pkt.source = self_;
  pkt.destination = holder;
  pkt.round = spec_.round;
  pkt.share = dealer_.share_for(holder).value;
  pkt.encode_into(keys, wire);
  return true;
}

field::Fp61 SourceRole::self_share() const {
  return dealer_.share_for(self_).value;
}

HolderRole::HolderRole(const RoundSpec& spec, NodeId self)
    : spec_(spec), self_(self), sum_(field::Fp61{0}) {
  validate(spec_);
  MPCIOT_REQUIRE(index_of(spec_.holders, self).has_value(),
                 "HolderRole: node is not a holder of this round");
}

bool HolderRole::accept_local(NodeId source, field::Fp61 value) {
  const auto idx = index_of(spec_.sources, source);
  if (!idx) return false;
  const std::uint64_t bit = std::uint64_t{1} << *idx;
  if (mask_ & bit) return false;
  mask_ |= bit;
  sum_ = sum_ + value;
  return true;
}

bool HolderRole::accept_wire(const Bytes& wire, const crypto::KeyStore& keys) {
  const std::optional<SharePacket> pkt = SharePacket::decode(wire, keys);
  if (!pkt) return false;
  if (pkt->destination != self_) return false;
  if (pkt->round != spec_.round) return false;
  return accept_local(pkt->source, pkt->share);
}

bool HolderRole::complete() const {
  return mask_ == mask_for(spec_.sources.size());
}

std::uint32_t HolderRole::contributions() const {
  return static_cast<std::uint32_t>(std::popcount(mask_));
}

SumPacket HolderRole::sum_packet() const {
  MPCIOT_REQUIRE(mask_ != 0, "HolderRole: no contributions to sum yet");
  SumPacket pkt;
  pkt.holder = self_;
  pkt.contribution_count = static_cast<std::uint8_t>(std::popcount(mask_));
  pkt.round = spec_.round;
  pkt.sum = sum_;
  pkt.contributors = mask_;
  return pkt;
}

AggregatorRole::AggregatorRole(const RoundSpec& spec)
    : spec_(spec),
      full_mask_(mask_for(spec.sources.size())),
      seen_(spec.holders.size(), 0),
      sums_(spec.holders.size()),
      masks_(spec.holders.size(), 0) {
  validate(spec_);
}

bool AggregatorRole::accept(const SumPacket& pkt) {
  if (pkt.round != spec_.round) return false;
  if (pkt.contributors == 0) return false;
  if ((pkt.contributors & ~full_mask_) != 0) return false;
  const auto idx = index_of(spec_.holders, pkt.holder);
  if (!idx) return false;
  if (seen_[*idx]) return false;
  seen_[*idx] = 1;
  sums_[*idx] = pkt.sum;
  masks_[*idx] = pkt.contributors;
  return true;
}

std::uint32_t AggregatorRole::sums_received() const {
  std::uint32_t n = 0;
  for (const char s : seen_) n += s != 0;
  return n;
}

bool AggregatorRole::full_mask_threshold() const {
  std::size_t n = 0;
  for (std::size_t h = 0; h < seen_.size(); ++h) {
    if (seen_[h] && masks_[h] == full_mask_) ++n;
  }
  return n >= spec_.degree + 1;
}

std::optional<AggregateOutcome> AggregatorRole::try_reconstruct() const {
  // Pick the winning mask: maximal popcount, then maximal count of sums
  // carrying it, then numerically smallest. Holder lists are <= a group,
  // so the quadratic scan is cheap and allocation-light.
  std::uint64_t best_mask = 0;
  std::size_t best_count = 0;
  int best_pop = -1;
  for (std::size_t h = 0; h < seen_.size(); ++h) {
    if (!seen_[h]) continue;
    const std::uint64_t m = masks_[h];
    std::size_t count = 0;
    for (std::size_t k = 0; k < seen_.size(); ++k) {
      if (seen_[k] && masks_[k] == m) ++count;
    }
    if (count < spec_.degree + 1) continue;
    const int pop = std::popcount(m);
    if (pop > best_pop || (pop == best_pop && count > best_count) ||
        (pop == best_pop && count == best_count && m < best_mask)) {
      best_mask = m;
      best_count = count;
      best_pop = pop;
    }
  }
  if (best_pop < 0) return std::nullopt;

  // Interpolate the degree+1 sums of the winning mask with the smallest
  // holder ids: spec.holders is not necessarily sorted, so order by id.
  std::vector<std::size_t> idx;
  for (std::size_t h = 0; h < seen_.size(); ++h) {
    if (seen_[h] && masks_[h] == best_mask) idx.push_back(h);
  }
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return spec_.holders[a] < spec_.holders[b];
  });
  idx.resize(spec_.degree + 1);
  std::vector<Share> shares;
  shares.reserve(idx.size());
  for (const std::size_t h : idx) {
    shares.push_back(Share{spec_.holders[h], sums_[h]});
  }
  AggregateOutcome out;
  out.aggregate = reconstruct(shares, spec_.degree);
  out.contributor_mask = best_mask;
  out.sums_used = static_cast<std::uint32_t>(idx.size());
  return out;
}

}  // namespace mpciot::core::roles
