#include "core/adversary.hpp"

#include "common/assert.hpp"
#include "field/lagrange.hpp"

namespace mpciot::core {

std::optional<field::Polynomial> consistent_polynomial_for(
    const CollusionView& view, std::size_t degree,
    field::Fp61 candidate_secret) {
  const std::size_t observed = view.observed_shares.size();

  if (observed > degree) {
    // The view over-determines the polynomial: interpolate and check.
    std::vector<field::Sample> samples;
    samples.reserve(observed);
    for (const Share& s : view.observed_shares) {
      samples.push_back(field::Sample{public_point(s.holder), s.value});
    }
    const field::Polynomial p = field::interpolate(samples);
    if (p.constant_term() == candidate_secret) return p;
    return std::nullopt;
  }

  // Underdetermined: pin (0, candidate) plus the observed shares and pad
  // with arbitrary extra points until degree+1 constraints, then
  // interpolate. Any padding works; we use deterministic points beyond
  // the observed holders' x-range.
  std::vector<field::Sample> samples;
  samples.reserve(degree + 1);
  samples.push_back(field::Sample{field::Fp61::zero(), candidate_secret});
  std::uint64_t next_free_x = 1;
  for (const Share& s : view.observed_shares) {
    const field::Fp61 x = public_point(s.holder);
    samples.push_back(field::Sample{x, s.value});
    next_free_x = std::max(next_free_x, x.value() + 1);
  }
  while (samples.size() < degree + 1) {
    samples.push_back(
        field::Sample{field::Fp61{next_free_x}, field::Fp61{next_free_x}});
    ++next_free_x;
  }
  field::Polynomial p = field::interpolate(samples);
  MPCIOT_ENSURE(p.constant_term() == candidate_secret,
                "adversary: constructed polynomial must hit the candidate");
  return p;
}

}  // namespace mpciot::core
