#include "core/adversary.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "crypto/prng.hpp"
#include "field/lagrange.hpp"
#include "net/topology.hpp"

namespace mpciot::core {

namespace {

/// derive_seed stream tags of the adversary engine.
constexpr std::uint64_t kStreamMalformed = 0x4144564Dull;  // "ADVM"
constexpr std::uint64_t kStreamEquivPick = 0x41445645ull;  // "ADVE"
constexpr std::uint64_t kStreamEquivPoly = 0x41445650ull;  // "ADVP"
constexpr std::uint64_t kStreamPollution = 0x41445653ull;  // "ADVS"
constexpr std::uint64_t kStreamJam = 0x4144564Aull;        // "ADVJ"

/// Uniform [0, 1) from a derived seed (one finalizer pass, no state).
double unit_draw(std::uint64_t seed) {
  return static_cast<double>(seed >> 11) * 0x1.0p-53;
}

/// Mix (round, a, b) into one derive_seed index.
constexpr std::uint64_t mix_index(std::uint16_t round, std::uint64_t a,
                                  std::uint64_t b) {
  return (static_cast<std::uint64_t>(round) << 48) | (a << 24) | b;
}

}  // namespace

std::optional<field::Polynomial> consistent_polynomial_for(
    const CollusionView& view, std::size_t degree,
    field::Fp61 candidate_secret) {
  const std::size_t observed = view.observed_shares.size();

  if (observed > degree) {
    // The view over-determines the polynomial: interpolate and check.
    std::vector<field::Sample> samples;
    samples.reserve(observed);
    for (const Share& s : view.observed_shares) {
      samples.push_back(field::Sample{public_point(s.holder), s.value});
    }
    const field::Polynomial p = field::interpolate(samples);
    if (p.constant_term() == candidate_secret) return p;
    return std::nullopt;
  }

  // Underdetermined: pin (0, candidate) plus the observed shares and pad
  // with arbitrary extra points until degree+1 constraints, then
  // interpolate. Any padding works; we use deterministic points beyond
  // the observed holders' x-range.
  std::vector<field::Sample> samples;
  samples.reserve(degree + 1);
  samples.push_back(field::Sample{field::Fp61::zero(), candidate_secret});
  std::uint64_t next_free_x = 1;
  for (const Share& s : view.observed_shares) {
    const field::Fp61 x = public_point(s.holder);
    samples.push_back(field::Sample{x, s.value});
    next_free_x = std::max(next_free_x, x.value() + 1);
  }
  while (samples.size() < degree + 1) {
    samples.push_back(
        field::Sample{field::Fp61{next_free_x}, field::Fp61{next_free_x}});
    ++next_free_x;
  }
  field::Polynomial p = field::interpolate(samples);
  MPCIOT_ENSURE(p.constant_term() == candidate_secret,
                "adversary: constructed polynomial must hit the candidate");
  return p;
}

ReconstructionAttempt attempt_reconstruction(const CollusionView& view,
                                             std::size_t degree) {
  MPCIOT_REQUIRE(!view.observed_shares.empty(),
                 "adversary: an empty view has nothing to interpolate");
  std::vector<field::Sample> samples;
  samples.reserve(view.observed_shares.size());
  for (const Share& s : view.observed_shares) {
    samples.push_back(field::Sample{public_point(s.holder), s.value});
  }
  ReconstructionAttempt out;
  out.meets_threshold = can_reconstruct(degree, samples.size());
  out.value = field::interpolate_at_zero(samples);
  return out;
}

AdversaryEngine::AdversaryEngine(AdversaryConfig config,
                                 std::size_t node_count)
    : cfg_(std::move(config)), is_attacker_(node_count, 0) {
  for (const NodeId a : cfg_.attackers) {
    MPCIOT_REQUIRE(a < node_count, "adversary: attacker id out of range");
    is_attacker_[a] = 1;
  }
}

std::uint64_t AdversaryEngine::attacker_bits(
    const std::vector<NodeId>& schedule) const {
  MPCIOT_REQUIRE(schedule.size() <= 64,
                 "adversary: schedule exceeds the 64-entry bitmap");
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (is_attacker(schedule[i])) bits |= (std::uint64_t{1} << i);
  }
  return bits;
}

field::Fp61 AdversaryEngine::malformed_share(std::uint64_t trial_seed,
                                             std::uint16_t round,
                                             NodeId attacker, NodeId holder,
                                             field::Fp61 honest) const {
  // honest + uniform nonzero offset: always off the committed
  // polynomial, so a verifying holder detects every delivered share.
  crypto::Xoshiro256 rng(crypto::derive_seed(
      cfg_.seed ^ trial_seed, kStreamMalformed,
      mix_index(round, attacker, holder)));
  return honest + field::Fp61{1 + rng.next_below(field::Fp61::kModulus - 1)};
}

bool AdversaryEngine::equivocation_target(NodeId attacker,
                                          std::size_t holder_index) const {
  return (crypto::derive_seed(cfg_.seed, kStreamEquivPick,
                              mix_index(0, attacker, holder_index)) &
          1) != 0;
}

ShamirDealer AdversaryEngine::equivocation_dealer(std::uint64_t trial_seed,
                                                  std::uint16_t round,
                                                  NodeId attacker,
                                                  field::Fp61 secret,
                                                  std::size_t degree) const {
  crypto::CtrDrbg drbg(crypto::derive_seed(cfg_.seed ^ trial_seed,
                                           kStreamEquivPoly,
                                           mix_index(round, attacker, 0)));
  return ShamirDealer(secret, degree, drbg);
}

field::Fp61 AdversaryEngine::sum_pollution(std::uint64_t trial_seed,
                                           std::uint16_t round,
                                           NodeId attacker) const {
  crypto::Xoshiro256 rng(crypto::derive_seed(
      cfg_.seed ^ trial_seed, kStreamPollution,
      mix_index(round, attacker, 0)));
  return field::Fp61{1 + rng.next_below(field::Fp61::kModulus - 1)};
}

JammerChannel::JammerChannel(const net::ChannelModel* inner,
                             std::vector<NodeId> jammers, std::uint64_t seed,
                             double duty, SimTime epoch_us)
    : inner_(inner),
      jammers_(std::move(jammers)),
      seed_(seed),
      duty_(duty),
      epoch_us_(epoch_us) {
  MPCIOT_REQUIRE(duty_ >= 0.0 && duty_ <= 1.0,
                 "jammer: duty must be a probability");
  MPCIOT_REQUIRE(epoch_us_ > 0, "jammer: epoch must be positive");
}

SimTime JammerChannel::epoch_us() const {
  return inner_ != nullptr ? inner_->epoch_us() : epoch_us_;
}

bool JammerChannel::jam_active(NodeId jammer, std::uint64_t epoch) const {
  return unit_draw(crypto::derive_seed(seed_, kStreamJam,
                                       (epoch << 16) | jammer)) < duty_;
}

void JammerChannel::materialize(const net::Topology& topo,
                                std::uint64_t epoch,
                                net::LinkEpochTables& tables) const {
  // The jam overlay zeroes whole receiver rows of the dense tables;
  // adversary scenarios run on leaf-scale topologies where those rows
  // exist. Sparse-tier jamming would need a word-run overlay nobody
  // sweeps yet — fail loudly instead of silently not jamming.
  MPCIOT_REQUIRE(!topo.sparse(),
                 "jammer: sparse-tier topologies are not supported");
  const std::size_t n = topo.size();
  const std::size_t words = topo.node_words();
  if (inner_ != nullptr) {
    inner_->materialize(topo, epoch, tables);
  } else {
    // Static world: restart from the frozen snapshot each epoch (the
    // jam overlay below must not accumulate across epochs).
    tables.prr.assign(topo.prr_data(), topo.prr_data() + n * n);
    tables.prr_in.resize(n * n);
    tables.rx_words.resize(n * words);
    for (NodeId r = 0; r < n; ++r) {
      std::copy_n(topo.prr_into(r), n, tables.prr_in.data() + r * n);
      std::copy_n(topo.audible_words(r), words,
                  tables.rx_words.data() + r * words);
    }
  }
  tables.epoch = epoch;

  for (const NodeId j : jammers_) {
    MPCIOT_REQUIRE(j < n, "jammer: id out of range for this topology");
    if (!jam_active(j, epoch)) continue;
    // Noise from j deafens every receiver that can hear j at all (static
    // audibility — jamming reach is physics, not the inner model's
    // current fade), plus j itself: its radio is busy emitting noise.
    for (NodeId r = 0; r < n; ++r) {
      const bool in_range =
          (topo.audible_words(r)[j / 64] >> (j % 64)) & 1;
      if (!in_range && r != j) continue;
      for (std::size_t t = 0; t < n; ++t) {
        tables.prr_in[r * n + t] = 0.0;
        tables.prr[t * n + r] = 0.0;
      }
      std::fill_n(tables.rx_words.data() + r * words, words, 0);
    }
  }
}

}  // namespace mpciot::core
