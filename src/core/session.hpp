// Session: the stateful aggregation endpoint over a (stateless,
// shareable) protocol instance.
//
// A protocol object — flat SssProtocol or HierarchicalProtocol — is a
// pure description: topology, participant lists, NTX tuning. Running a
// round, however, has state the old run() overloads pushed onto every
// caller: the round/nonce counter feeding the AES-CTR nonces, the key
// epoch that must rotate before the 16-bit wire-round window wraps, and
// the warm buffers that make back-to-back rounds allocation-free. A
// Session owns all of it:
//
//   * monotone round ids — each run_round consumes the next id; a
//     (key epoch, round) pair is never issued twice (debug-asserted),
//     so AES-CTR keystreams never repeat;
//   * key rotation — epoch e = round / rounds_per_epoch; epoch 0 uses
//     the protocol's construction keystore (historic rounds stay
//     byte-identical), later epochs derive fresh keystores from
//     rotation_seed;
//   * warm state — one workspace reused across rounds: after the
//     warm-up round the honest static flat path performs zero heap
//     allocations per round.
//
// One Session serves one logical stream of rounds and is NOT
// thread-safe; concurrent trials use one Session each (the protocol
// underneath is shared freely).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/hierarchical.hpp"
#include "core/protocol.hpp"
#include "crypto/keystore.hpp"
#include "field/fp61.hpp"
#include "sim/simulator.hpp"

namespace mpciot::core {

struct SessionConfig {
  /// First round id this session issues (continuing a numbered stream).
  std::uint32_t first_round = 0;
  /// Rounds per AES key epoch. Clamped at construction so every wire
  /// round within an epoch is unique: to 2^16 for flat sessions, and to
  /// 2^16 / max_round_batches() for hierarchical ones (each session
  /// round spends `batches` inner wire rounds per group).
  std::uint32_t rounds_per_epoch = 1u << 16;
  /// Seeds the rotated keystores of epochs >= 1. A deployment artifact
  /// like the protocol's key seed, not per-trial randomness.
  std::uint64_t rotation_seed = 0x5E5510AAull;
};

/// What one session round produced, independent of protocol shape. The
/// shape-specific result stays reachable through exactly one of the two
/// pointers (valid until the next run_round on this session).
struct RoundReport {
  std::uint32_t round = 0;      ///< session round id
  std::uint32_t key_epoch = 0;  ///< AES epoch the round ran under
  /// The round produced a correct aggregate somewhere: flat — at least
  /// one live node reconstructed correctly; hierarchical — the global
  /// root's aggregate was correct.
  bool ok = false;
  double success_ratio = 0.0;
  /// Work time of the round (the protocol's total_duration_us).
  SimTime duration_us = 0;
  /// Absolute trial-clock bounds: start is the submit time, end is when
  /// the result (flood) finished — under a pipelined campaign end can
  /// trail the work time when the flood lane was still draining.
  SimTime start_us = 0;
  SimTime end_us = 0;
  const AggregationResult* flat = nullptr;
  const HierarchicalResult* hier = nullptr;
};

class Session {
 public:
  /// Flat session. The protocol must outlive the session.
  explicit Session(const SssProtocol& protocol, SessionConfig config = {});
  /// Hierarchical session. The protocol must outlive the session.
  explicit Session(const HierarchicalProtocol& protocol,
                   SessionConfig config = {});

  /// Run the next round of the stream: issues the next round id,
  /// rotates the key epoch when due, and runs the protocol engine on
  /// the warm workspace. Secrets are per config().sources for flat
  /// sessions, per node for hierarchical ones. The dynamics environment
  /// (clock, channel model, churn) is read off `sim`.
  const RoundReport& run_round(const std::vector<field::Fp61>& secrets,
                               sim::Simulator& sim);

  /// Round id the next run_round will issue.
  std::uint32_t next_round() const { return next_round_; }
  std::uint32_t rounds_per_epoch() const { return config_.rounds_per_epoch; }
  /// Key epoch the next round will run under.
  std::uint32_t next_epoch() const {
    return next_round_ / config_.rounds_per_epoch;
  }
  bool hierarchical() const { return hier_ != nullptr; }
  /// Number of secrets run_round expects.
  std::size_t secret_count() const;

 private:
  friend class Campaign;

  /// The engine entry shared with Campaign: run one round under a
  /// caller-built environment (the campaign sets the submit time and,
  /// for pipelined hierarchical streams, the persistent timeline).
  const RoundReport& run_round_at(const std::vector<field::Fp61>& secrets,
                                  sim::Simulator& sim, RoundEnv env);

  /// The epoch's keystore for the flat protocol (null for epoch 0: the
  /// construction keystore). Rebuilt once per epoch, then cached.
  const crypto::KeyStore* flat_epoch_keys(std::uint32_t epoch);

  const SssProtocol* flat_ = nullptr;
  const HierarchicalProtocol* hier_ = nullptr;
  SessionConfig config_;
  std::uint32_t next_round_ = 0;
  /// Nonce-reuse guard: highest (epoch << 32 | round-in-epoch) issued.
  std::uint64_t last_issued_ = kNoneIssued;
  static constexpr std::uint64_t kNoneIssued = ~std::uint64_t{0};

  std::unique_ptr<RoundWorkspace> flat_ws_;
  std::unique_ptr<HierWorkspace> hier_ws_;
  std::unique_ptr<crypto::KeyStore> epoch_keys_;
  std::uint32_t cached_epoch_ = 0;
  RoundReport report_;
};

}  // namespace mpciot::core
