// Campaign: streaming back-to-back aggregation rounds over one Session.
//
// A single aggregation answers "what is the sum right now"; a deployed
// network asks it continuously — one aggregate per sensing period,
// sustained for the deployment's lifetime. A Campaign drives a Session
// through N such rounds and measures the stream, not the round:
// aggregates per second, per-round submit-to-result latency, and how
// much wall-clock the stream saved over running the rounds strictly
// one after another.
//
// The saving comes from pipelining (hierarchical sessions): group
// phases of consecutive rounds book on the same persistent
// ct::ChannelTimeline, while each round's recombination + result
// floods serialize on a dedicated flood lane. Round r+1's sharing
// chains start the moment the group channels free up — while round r's
// floods are still draining — exactly the overlap a TDMA deployment
// with per-group channel allocations achieves. Flat sessions have a
// single chain occupying the whole band, so their campaign is the
// sequential baseline by construction.
//
// Secrets are produced per round by a caller-supplied fill function
// writing into a campaign-owned buffer, so the steady-state loop adds
// no per-round allocation of its own on top of the Session's
// zero-allocation round path.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "core/session.hpp"
#include "ct/transport.hpp"
#include "field/fp61.hpp"
#include "sim/simulator.hpp"

namespace mpciot::core {

struct CampaignConfig {
  /// Rounds to stream.
  std::uint32_t rounds = 16;
  /// Hierarchical sessions: overlap consecutive rounds on a persistent
  /// channel timeline (group lanes + one flood lane). Off = strictly
  /// sequential rounds, the round-at-a-time baseline. Ignored by flat
  /// sessions (one chain occupies the whole band either way).
  bool pipelined = true;
};

struct CampaignResult {
  std::uint32_t rounds = 0;
  std::uint32_t rounds_ok = 0;
  /// Submit of round 0 to result-flood end of the last round.
  SimTime makespan_us = 0;
  /// Sum of per-round work durations (the sequential cost).
  SimTime serial_us = 0;
  double mean_success_ratio = 0.0;
  /// Per round: submit-to-result latency and whether it produced a
  /// correct aggregate.
  std::vector<SimTime> round_latency_us;
  std::vector<char> round_ok;

  /// Sustained throughput of the stream.
  double aggregates_per_sec() const;
  /// Latency quantile over the rounds (q in [0, 1], nearest-rank).
  SimTime latency_percentile_us(double q) const;
  /// serial_us / makespan_us: > 1 iff pipelining overlapped rounds.
  double pipeline_speedup() const;
};

class Campaign {
 public:
  /// The session (and the protocol under it) must outlive the campaign.
  explicit Campaign(Session& session, CampaignConfig config = {});

  /// Stream config.rounds rounds. `fill(round, secrets)` writes round
  /// r's secrets into the campaign-owned buffer (pre-sized to the
  /// session's secret_count) before the round runs. Returns the
  /// campaign metrics (valid until the next run on this campaign).
  const CampaignResult& run(
      sim::Simulator& sim,
      const std::function<void(std::uint32_t, std::vector<field::Fp61>&)>&
          fill);

 private:
  Session* session_;
  CampaignConfig config_;
  /// Persistent pipelined timeline: group channels + one flood lane.
  ct::ChannelTimeline timeline_{1};
  std::vector<field::Fp61> secrets_;
  CampaignResult result_;
};

}  // namespace mpciot::core
