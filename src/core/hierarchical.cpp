#include "core/hierarchical.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"
#include "core/bootstrap.hpp"
#include "core/wire.hpp"
#include "crypto/prng.hpp"

namespace mpciot::core {

namespace {

/// derive_seed stream tags of the hierarchical round.
constexpr std::uint64_t kStreamGroupSim = 0x47525053ull;   // group-phase sims
constexpr std::uint64_t kStreamKeystore = 0x474B4559ull;   // per-group keys
constexpr std::uint64_t kStreamJamFlood = 0x41445648ull;   // flood jammers
constexpr std::uint64_t kStreamNestedKeys = 0x4E4B4559ull; // subtree keys
constexpr std::uint64_t kStreamNested = 0x4E455354ull;     // subtree sims

/// Churn schedule of an induced subtopology: local ids looked up in the
/// parent schedule. (Group rounds run on the trial clock, so times pass
/// through unchanged.)
class MappedLiveness final : public net::LivenessModel {
 public:
  MappedLiveness(const net::LivenessModel* base,
                 const std::vector<NodeId>* members)
      : base_(base), members_(members) {}
  bool is_down(NodeId local, SimTime t) const override {
    return base_->is_down((*members_)[local], t);
  }

 private:
  const net::LivenessModel* base_;
  const std::vector<NodeId>* members_;
};

/// Split `count` sources into balanced batches (sizes differ by at
/// most one) of at most ~max_batch each. The batch count is capped at
/// count/2 so no batch degenerates below the 2-source minimum an SSS
/// round needs — a degree-1 round over a single source would hand that
/// node's individual reading to the leader. The cap can only exceed
/// max_batch for toy values (max_batch < 4), never near the 64-source
/// SumPacket limit.
std::vector<std::pair<std::size_t, std::size_t>> batch_ranges(
    std::size_t count, std::size_t max_batch) {
  const std::size_t batches = std::max<std::size_t>(
      1, std::min((count + max_batch - 1) / max_batch, count / 2));
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(batches);
  std::size_t begin = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    const std::size_t size = count / batches + (b < count % batches ? 1 : 0);
    ranges.emplace_back(begin, begin + size);
    begin += size;
  }
  return ranges;
}

}  // namespace

double HierarchicalResult::success_ratio() const {
  if (has_result.empty()) return 0.0;
  std::size_t ok = 0;
  for (const char h : has_result) {
    if (h != 0) ++ok;
  }
  if (!aggregate_correct) return 0.0;
  return static_cast<double>(ok) / static_cast<double>(has_result.size());
}

SimTime HierarchicalResult::max_latency_us() const {
  SimTime best = 0;
  for (const SimTime t : latency_us) best = std::max(best, t);
  return best;
}

SimTime HierarchicalResult::max_radio_on_us() const {
  SimTime best = 0;
  for (const SimTime t : radio_on_us) best = std::max(best, t);
  return best;
}

double HierarchicalResult::mean_radio_on_us() const {
  if (radio_on_us.empty()) return 0.0;
  double total = 0.0;
  for (const SimTime t : radio_on_us) total += static_cast<double>(t);
  return total / static_cast<double>(radio_on_us.size());
}

HierarchicalProtocol::HierarchicalProtocol(const net::Topology& topo,
                                           HierarchicalConfig config,
                                           const ct::Transport* transport)
    : topo_(&topo),
      config_(std::move(config)),
      transport_(transport != nullptr ? transport
                                      : &ct::minicast_transport()) {
  MPCIOT_REQUIRE(config_.num_channels >= 1,
                 "hierarchical: need at least one channel");
  MPCIOT_REQUIRE(config_.max_batch >= 2 && config_.max_batch <= 64,
                 "hierarchical: max_batch must be in [2, 64]");
  for (const NodeId a : config_.adversary.attackers) {
    MPCIOT_REQUIRE(a < topo.size(),
                   "hierarchical: attacker id out of range");
  }
  net::partition::validate(topo, config_.partition);

  const std::size_t num_groups = config_.partition.groups.size();
  groups_.reserve(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    Group group;
    group.members = config_.partition.groups[g];
    group.channel = static_cast<std::uint16_t>(g % config_.num_channels);
    MPCIOT_REQUIRE(group.members.size() >= 2,
                   "hierarchical: groups must have at least 2 members");
    if (group.members.size() == topo.size()) {
      group.sub = &topo;  // G = 1: the flat baseline, no copy needed
    } else {
      group.owned = std::make_unique<net::Topology>(
          net::Topology::induced(topo, group.members));
      group.sub = group.owned.get();
    }
    group.leader_local = group.sub->center_node();
    group.leader = group.members[group.leader_local];

    // Deep groups become subtrees: a full hierarchical protocol over
    // the group's subtopology, one level shallower, with its own
    // partition, keystores (independent seed stream) and adversary
    // mapping. Its result flood plays the role the batch rounds play in
    // a leaf group — it leaves the group aggregate with the members
    // that heard it, and the parent recombines as usual.
    if (config_.depth > 1 &&
        group.members.size() >= config_.min_nested_size) {
      HierarchicalConfig ncfg;
      ncfg.partition = net::partition::grid_blocks(*group.sub,
                                                   config_.fanout);
      ncfg.num_channels = config_.num_channels;
      ncfg.max_batch = config_.max_batch;
      ncfg.ntx_sharing = config_.ntx_sharing;
      ncfg.ntx_reconstruction = config_.ntx_reconstruction;
      ncfg.scale_ntx_with_diameter = config_.scale_ntx_with_diameter;
      ncfg.result_flood_ntx = config_.result_flood_ntx;
      ncfg.holder_slack = config_.holder_slack;
      ncfg.early_radio_off = config_.early_radio_off;
      ncfg.max_retries = config_.max_retries;
      ncfg.max_chain_slots = config_.max_chain_slots;
      ncfg.key_seed =
          crypto::derive_seed(config_.key_seed, kStreamNestedKeys, g);
      ncfg.feldman_vss = config_.feldman_vss;
      ncfg.depth = config_.depth - 1;
      ncfg.fanout = config_.fanout;
      ncfg.min_nested_size = config_.min_nested_size;
      ncfg.adversary = config_.adversary;
      ncfg.adversary.attackers.clear();
      for (std::size_t i = 0; i < group.members.size(); ++i) {
        if (std::find(config_.adversary.attackers.begin(),
                      config_.adversary.attackers.end(),
                      group.members[i]) !=
            config_.adversary.attackers.end()) {
          ncfg.adversary.attackers.push_back(static_cast<NodeId>(i));
        }
      }
      group.nested = std::make_unique<HierarchicalProtocol>(
          *group.sub, std::move(ncfg), transport_);
      groups_.push_back(std::move(group));
      continue;
    }

    // Leaf groups run flat SSS rounds whose packets carry u16 local
    // ids; a bigger group must nest (raise depth, or lower
    // min_nested_size) rather than truncate ids on the wire.
    MPCIOT_REQUIRE(group.members.size() <= 0x10000,
                   "hierarchical: leaf group exceeds the u16 wire id "
                   "range; increase depth or fanout");
    group.keys = std::make_unique<crypto::KeyStore>(
        crypto::derive_seed(config_.key_seed, kStreamKeystore, g),
        static_cast<std::uint32_t>(group.members.size()));

    const auto ranges = batch_ranges(group.members.size(), config_.max_batch);
    for (std::size_t b = 0; b < ranges.size(); ++b) {
      ProtocolConfig cfg;
      for (std::size_t i = ranges[b].first; i < ranges[b].second; ++i) {
        cfg.sources.push_back(static_cast<NodeId>(i));  // local ids
      }
      cfg.degree = paper_degree(cfg.sources.size());
      const std::size_t holders = std::min(
          cfg.degree + 1 + config_.holder_slack, group.members.size());
      cfg.share_holders =
          elect_share_holders(*group.sub, cfg.sources, holders);
      std::uint32_t depth_ntx = 0;
      if (config_.scale_ntx_with_diameter) {
        depth_ntx = group.sub->diameter() / 2 + 2;
      }
      cfg.ntx_sharing = std::max(config_.ntx_sharing, depth_ntx);
      cfg.ntx_reconstruction =
          std::max(config_.ntx_reconstruction, depth_ntx);
      cfg.round = static_cast<std::uint32_t>(b);
      cfg.initiator = group.leader_local;
      cfg.early_radio_off = config_.early_radio_off;
      cfg.max_chain_slots = config_.max_chain_slots;
      // Attackers among this group's members, mapped to local ids; the
      // group round then tampers/verifies/jams exactly like the flat
      // protocol on its subtopology.
      cfg.adversary = config_.adversary;
      cfg.adversary.attackers.clear();
      for (std::size_t i = 0; i < group.members.size(); ++i) {
        if (std::find(config_.adversary.attackers.begin(),
                      config_.adversary.attackers.end(),
                      group.members[i]) !=
            config_.adversary.attackers.end()) {
          cfg.adversary.attackers.push_back(static_cast<NodeId>(i));
        }
      }
      cfg.feldman_vss = config_.feldman_vss;
      group.batch_rounds.emplace_back(*group.sub, *group.keys,
                                      std::move(cfg), transport_);
    }
    groups_.push_back(std::move(group));
  }
}

NodeId HierarchicalProtocol::group_leader(std::size_t g) const {
  MPCIOT_REQUIRE(g < groups_.size(), "hierarchical: group index out of range");
  return groups_[g].leader;
}

std::size_t HierarchicalProtocol::group_size(std::size_t g) const {
  MPCIOT_REQUIRE(g < groups_.size(), "hierarchical: group index out of range");
  return groups_[g].members.size();
}

std::uint32_t HierarchicalProtocol::max_round_batches() const {
  // The round-in-epoch id passes through subtree levels unchanged (the
  // flattening r * batches + b happens per level), so the 16-bit wire
  // window is governed by the largest batch count anywhere in the tree.
  std::size_t best = 1;
  for (const Group& group : groups_) {
    best = std::max(best,
                    group.nested != nullptr
                        ? static_cast<std::size_t>(
                              group.nested->max_round_batches())
                        : group.batch_rounds.size());
  }
  return static_cast<std::uint32_t>(best);
}

HierarchicalResult HierarchicalProtocol::run(
    const std::vector<field::Fp61>& secrets, sim::Simulator& sim) const {
  RoundEnv env;
  env.start_time_us = sim.now();
  env.channel_model = sim.channel_model();
  env.liveness = sim.liveness();
  HierWorkspace ws;
  return run_round(secrets, sim, env, ws);
}

HierarchicalResult HierarchicalProtocol::run(
    const std::vector<field::Fp61>& secrets, sim::Simulator& sim,
    const RoundEnv& env) const {
  HierWorkspace ws;
  return run_round(secrets, sim, env, ws);
}

const HierarchicalResult& HierarchicalProtocol::run_round(
    const std::vector<field::Fp61>& secrets, sim::Simulator& sim,
    const RoundEnv& env, HierWorkspace& ws) const {
  const std::size_t n = topo_->size();
  MPCIOT_REQUIRE(secrets.size() == n,
                 "hierarchical: one secret per node required");

  // Session round/epoch ids. env.round is the round index *within* the
  // key epoch (kept small enough that inner batch rounds stay inside
  // the 16-bit wire window); epoch 0, round 0 is the historic
  // single-shot round bit for bit.
  const std::uint32_t r_in_epoch =
      env.round == RoundEnv::kInheritRound ? 0 : env.round;
  const std::uint32_t epoch = env.key_epoch;

  // Epoch-rotated per-group keystores, rebuilt when the epoch changes
  // (amortized: once per epoch, not per round). Epoch 0 keeps the
  // construction keystores.
  if (epoch != 0 && (ws.epoch_keys.empty() || ws.cached_epoch != epoch)) {
    ws.epoch_keys.clear();
    ws.epoch_keys.reserve(groups_.size());
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      ws.epoch_keys.push_back(std::make_unique<crypto::KeyStore>(
          crypto::derive_seed(
              config_.key_seed, kStreamKeystore,
              g | (static_cast<std::uint64_t>(epoch) << 32)),
          static_cast<std::uint32_t>(groups_[g].members.size())));
    }
    ws.cached_epoch = epoch;
  }

  // The result is warm workspace: every field is re-initialized here.
  HierarchicalResult& result = ws.result;
  result.groups.assign(groups_.size(), GroupOutcome{});
  result.expected_sum = field::Fp61{};
  result.has_aggregate = false;
  result.aggregate = field::Fp61{};
  result.aggregate_correct = false;
  result.group_phase_us = 0;
  result.recombine_us = 0;
  result.flood_us = 0;
  result.total_duration_us = 0;
  result.round_start_us = env.start_time_us;
  result.round_end_us = env.start_time_us;
  result.leader_reelections = 0;
  result.shares_rejected = 0;
  result.sums_rejected = 0;
  result.radio_on_us.assign(n, 0);
  result.latency_us.assign(n, 0);
  result.has_result.assign(n, 0);
  result.cheater_nodes.assign(n, 0);

  // kJamSlots: the recombination and result floods run over the full
  // topology, so they get a parent-id jammer decoration; group rounds
  // jam themselves through their local adversary configs.
  std::optional<JammerChannel> flood_jammer;
  const net::ChannelModel* flood_channel = env.channel_model;
  if (config_.adversary.active() &&
      config_.adversary.kind == AttackKind::kJamSlots) {
    flood_jammer.emplace(
        env.channel_model, config_.adversary.attackers,
        crypto::derive_seed(config_.adversary.seed, kStreamJamFlood,
                            sim.seed()),
        config_.adversary.jam_duty, config_.adversary.jam_epoch_us);
    flood_channel = &*flood_jammer;
  }
  // expected_sum accumulates from the accepted batch rounds below: a
  // source that is churn-down at its round's start never deals and is
  // excluded (matching SssProtocol's failed_nodes semantics), so a
  // reduced-but-consistent aggregate still counts as correct. In the
  // static world every batch is accepted on attempt 0 with every
  // source dealing, so this equals the sum over all nodes' secrets.

  // ---- Phase A: per-group SSS rounds on orthogonal channels ----
  //
  // Each group draws its channel randomness from an independent stream
  // derived from the trial seed, so results do not depend on the (host)
  // order the groups are simulated in — they are concurrent in simulated
  // time whenever their channels differ.
  //
  // Classic mode books on a per-round local timeline starting at t=0;
  // a pipelined campaign hands in a persistent timeline whose channel
  // ends are absolute trial-clock times carried over from earlier
  // rounds, so this round's group phase starts the moment each channel
  // frees up — possibly while the previous round's recombination floods
  // are still draining on the dedicated flood lane.
  ct::ChannelTimeline* const ext = env.timeline;
  const bool pipelined = ext != nullptr;
  if (pipelined) {
    MPCIOT_REQUIRE(ext->num_channels() > config_.num_channels,
                   "hierarchical: a campaign timeline needs a flood lane "
                   "beyond the group channels");
  } else {
    ws.local_timeline.resize(config_.num_channels);
  }
  ct::ChannelTimeline& timeline = pipelined ? *ext : ws.local_timeline;
  // One scratch context for the whole trial: every group round and
  // recombination/result flood reuses its buffers, and with a channel
  // model the epoch-walked view continues across the rounds that share
  // a topology instead of replaying the dynamics chain from epoch 0.
  ct::RoundContext* const trial_scratch =
      env.scratch != nullptr ? env.scratch : &ws.scratch;
  // Deputies per group: members that reconstructed every accepted batch
  // round with the leader's value — under churn they are the nodes a
  // dead leader's duties can hand off to, because they provably hold
  // the same partial sum.
  ws.deputies.resize(groups_.size());
  // When this round's last group finishes (absolute trial clock).
  SimTime groups_end_abs = env.start_time_us;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const Group& group = groups_[g];
    GroupOutcome& out = result.groups[g];
    out.channel = group.channel;
    out.batches = static_cast<std::uint32_t>(group.batch_rounds.size());
    out.has_sum = true;
    out.sum_correct = true;

    // This group's rounds start when its channel frees up; booking after
    // the fact returns the same offset because groups book in order.
    const SimTime ch_start_abs =
        pipelined
            ? std::max(timeline.channel_end_us(group.channel),
                       env.start_time_us)
            : env.start_time_us + timeline.channel_end_us(group.channel);
    const std::optional<MappedLiveness> mapped =
        env.liveness != nullptr
            ? std::optional<MappedLiveness>(
                  std::in_place, env.liveness, &group.members)
            : std::nullopt;

    NodeId lead_local = group.leader_local;
    std::vector<char>& deputies = ws.deputies[g];
    deputies.assign(group.members.size(), 1);

    // Group channel randomness: the historic per-group stream for
    // (epoch 0, round 0); later campaign rounds fold the round id (and,
    // past the first rotation, the epoch) in so no round replays
    // another's fading.
    std::uint64_t group_seed = crypto::derive_seed(
        sim.seed(), kStreamGroupSim,
        g + (static_cast<std::uint64_t>(r_in_epoch) << 32));
    if (epoch != 0) {
      group_seed = crypto::derive_seed(group_seed, kStreamGroupSim, epoch);
    }

    // Subtree group: one nested hierarchical round stands in for the
    // batch rounds (batch_rounds is empty, so the loop below no-ops).
    // The subtree runs in classic mode on the trial clock — its own
    // group phases, recombination floods and result flood are booked on
    // its private timeline and land inside this group's channel
    // booking, so every level threads through the shared clock.
    if (group.nested != nullptr) {
      out.batches =
          static_cast<std::uint32_t>(group.nested->num_groups());
      if (ws.nested.size() != groups_.size()) {
        ws.nested.resize(groups_.size());
      }
      if (ws.nested[g] == nullptr) {
        ws.nested[g] = std::make_unique<HierWorkspace>();
      }
      std::vector<field::Fp61>& sub_secrets = ws.batch_secrets;
      sub_secrets.clear();
      sub_secrets.reserve(group.members.size());
      for (const NodeId m : group.members) {
        sub_secrets.push_back(secrets[m]);
      }
      bool sub_ok = false;
      for (std::uint32_t attempt = 0;
           attempt <= config_.max_retries && !sub_ok; ++attempt) {
        if (attempt > 0) ++out.retries;
        const SimTime t0 = ch_start_abs + out.duration_us;
        sim::Simulator nested_sim(
            crypto::derive_seed(group_seed, kStreamNested, attempt));
        RoundEnv nenv;
        nenv.start_time_us = t0;
        nenv.channel_model = env.channel_model;
        nenv.liveness = mapped.has_value() ? &*mapped : nullptr;
        nenv.scratch = trial_scratch;
        nenv.round = r_in_epoch;
        nenv.key_epoch = epoch;
        const HierarchicalResult& nres = group.nested->run_round(
            sub_secrets, nested_sim, nenv, *ws.nested[g]);
        out.duration_us += nres.total_duration_us;
        for (std::size_t local = 0; local < group.members.size();
             ++local) {
          result.radio_on_us[group.members[local]] +=
              nres.radio_on_us[local];
          if (nres.cheater_nodes[local] != 0) {
            result.cheater_nodes[group.members[local]] = 1;
          }
        }
        result.shares_rejected += nres.shares_rejected;
        result.sums_rejected += nres.sums_rejected;
        out.leader_reelections += nres.leader_reelections;
        if (!nres.has_aggregate) continue;
        sub_ok = true;
        out.sum += nres.aggregate;
        result.expected_sum += nres.expected_sum;
        if (!nres.aggregate_correct) out.sum_correct = false;
        // Members that heard the subtree's result flood hold the group
        // aggregate — they are this group's deputies, and the group
        // leader must be one of them so the recombination flood above
        // this level carries the right value.
        for (std::size_t local = 0; local < group.members.size();
             ++local) {
          deputies[local] = nres.has_result[local];
        }
        if (nres.has_result[lead_local] == 0) {
          NodeId best = kInvalidNode;
          std::uint32_t best_h = net::Topology::kInvalidHops;
          const NodeId center = group.sub->center_node();
          for (NodeId m = 0;
               m < static_cast<NodeId>(group.members.size()); ++m) {
            if (nres.has_result[m] == 0) continue;
            const std::uint32_t h = group.sub->hops(m, center);
            if (h < best_h || (h == best_h && m < best)) {
              best_h = h;
              best = m;
            }
          }
          if (best != kInvalidNode && best != lead_local) {
            lead_local = best;
            ++out.leader_reelections;
          }
        }
      }
      if (!sub_ok) {
        out.has_sum = false;
        out.sum_correct = false;
      }
    }
    sim::Simulator group_sim(group_seed);
    for (std::size_t b = 0; b < group.batch_rounds.size(); ++b) {
      const SssProtocol& round = group.batch_rounds[b];
      std::vector<field::Fp61>& batch_secrets = ws.batch_secrets;
      batch_secrets.clear();
      batch_secrets.reserve(round.config().sources.size());
      for (const NodeId local : round.config().sources) {
        batch_secrets.push_back(secrets[group.members[local]]);
      }
      // The leader knows when it failed to reconstruct; a real
      // deployment re-runs the round, so we do too (bounded).
      bool leader_ok = false;
      for (std::uint32_t attempt = 0;
           attempt <= config_.max_retries && !leader_ok; ++attempt) {
        if (attempt > 0) ++out.retries;
        const SimTime t0 = ch_start_abs + out.duration_us;
        // A leader that is churn-down when the round would start cannot
        // run it: hand off to the most central member that is up.
        if (env.liveness != nullptr &&
            env.liveness->is_down(group.members[lead_local], t0)) {
          NodeId best = kInvalidNode;
          std::uint32_t best_h = net::Topology::kInvalidHops;
          const NodeId center = group.sub->center_node();
          for (NodeId m = 0;
               m < static_cast<NodeId>(group.members.size()); ++m) {
            if (env.liveness->is_down(group.members[m], t0)) continue;
            const std::uint32_t h = group.sub->hops(m, center);
            if (h < best_h || (h == best_h && m < best)) {
              best_h = h;
              best = m;
            }
          }
          if (best != kInvalidNode && best != lead_local) {
            lead_local = best;
            ++out.leader_reelections;
          }
        }
        // Re-elected leaders run the same round config from their own
        // position; the SssProtocol is rebuilt only on a hand-off.
        const SssProtocol* round_to_run = &round;
        std::optional<SssProtocol> handed_off;
        if (lead_local != round.config().initiator) {
          ProtocolConfig cfg = round.config();
          cfg.initiator = lead_local;
          handed_off.emplace(*group.sub, *group.keys, std::move(cfg),
                             transport_);
          round_to_run = &*handed_off;
        }
        RoundEnv round_env;
        round_env.start_time_us = t0;
        round_env.channel_model = env.channel_model;
        round_env.liveness = mapped.has_value() ? &*mapped : nullptr;
        round_env.scratch = trial_scratch;
        // Inner round id: (round-in-epoch, batch) flattened. Equals the
        // constructed cfg.round = b for the historic single-shot case,
        // and stays nonce-unique within an epoch because the Session
        // clamps rounds_per_epoch * batches to the 16-bit window.
        round_env.round =
            r_in_epoch * static_cast<std::uint32_t>(
                             group.batch_rounds.size()) +
            static_cast<std::uint32_t>(b);
        round_env.key_epoch = epoch;
        round_env.keys = epoch == 0 ? nullptr : ws.epoch_keys[g].get();
        const AggregationResult& r =
            round_to_run->run_round(batch_secrets, group_sim, round_env,
                                    ws.flat);
        out.duration_us += r.total_duration_us;
        for (std::size_t local = 0; local < group.members.size(); ++local) {
          result.radio_on_us[group.members[local]] +=
              r.nodes[local].radio_on_us;
        }
        // Cheater bookkeeping, mapped back to parent ids.
        result.shares_rejected += r.shares_rejected;
        result.sums_rejected += r.sums_rejected;
        const ProtocolConfig& rcfg = round_to_run->config();
        for (std::size_t s = 0; s < rcfg.sources.size(); ++s) {
          if ((r.cheater_sources_mask >> s) & 1) {
            result.cheater_nodes[group.members[rcfg.sources[s]]] = 1;
          }
        }
        for (std::size_t h = 0; h < rcfg.share_holders.size(); ++h) {
          if ((r.cheater_holders_mask >> h) & 1) {
            result.cheater_nodes[group.members[rcfg.share_holders[h]]] = 1;
          }
        }
        const NodeOutcome& leader = r.nodes[lead_local];
        if (!leader.has_aggregate) continue;
        leader_ok = true;
        out.sum += leader.aggregate;
        // Expected covers what the leader's aggregate claims (detected
        // cheaters excluded); whether that claim suffices is
        // aggregate_correct's job. Honest rounds: the leader is correct
        // iff its mask is exactly the dealing sources, so this equals
        // the old "sum over dealing sources" accumulation whenever the
        // verdict below accepts.
        for (std::size_t s = 0; s < batch_secrets.size(); ++s) {
          if ((leader.contributor_mask >> s) & 1) {
            result.expected_sum += batch_secrets[s];
          }
        }
        if (!leader.aggregate_correct) out.sum_correct = false;
        for (std::size_t local = 0; local < group.members.size(); ++local) {
          if (!r.nodes[local].has_aggregate ||
              !(r.nodes[local].aggregate == leader.aggregate)) {
            deputies[local] = 0;
          }
        }
      }
      if (!leader_ok) {
        out.has_sum = false;
        out.sum_correct = false;
      }
    }
    out.leader = group.members[lead_local];
    result.leader_reelections += out.leader_reelections;
    // Classic mode books from t=0 (finish_us relative to the round
    // start); pipelined mode books at the absolute channel start, so
    // finish_us lands on the trial clock.
    const SimTime start = timeline.book(group.channel, out.duration_us,
                                        pipelined ? env.start_time_us : 0);
    out.finish_us = start + out.duration_us;
    groups_end_abs = std::max(groups_end_abs, ch_start_abs + out.duration_us);
  }
  result.group_phase_us = groups_end_abs - env.start_time_us;

  // ---- Phase B: recombination tree over group leaders ----
  //
  // Pair the surviving partial sums level by level; in each level the
  // non-surviving leader of every pair floods its partial over the
  // *full* topology (a single-origin Glossy flood reaches any diameter
  // at low NTX, which a many-origin chain round does not), and the
  // surviving leader — the one closer to the network center — absorbs
  // it. ceil(log2 G) levels bring everything to the global root. The
  // floods share one channel, so a level costs the sum of its floods;
  // that cost is tiny next to a group round (one 21-byte packet per
  // flood vs thousands of chain sub-slots).
  struct Partial {
    NodeId leader;
    field::Fp61 sum;
    bool complete;  // every contributing group's sum was correct
    std::vector<char> holders;  // nodes provably holding this sum
  };
  // Recombination and the result flood run on one lane. Classic mode:
  // right after the group phase. Pipelined mode: the dedicated flood
  // channel beyond the group channels, which may still be draining the
  // previous round's floods — the group phases of consecutive rounds
  // overlap with it, the floods themselves serialize.
  const std::uint16_t flood_ch = config_.num_channels;
  const SimTime flood_base_abs =
      pipelined ? std::max(timeline.channel_end_us(flood_ch), groups_end_abs)
                : groups_end_abs;

  std::vector<Partial> active;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const GroupOutcome& out = result.groups[g];
    if (!out.has_sum) continue;
    Partial p{out.leader, out.sum, out.sum_correct,
              std::vector<char>(n, 0)};
    for (std::size_t local = 0; local < groups_[g].members.size(); ++local) {
      if (ws.deputies[g][local] != 0) {
        p.holders[groups_[g].members[local]] = 1;
      }
    }
    p.holders[out.leader] = 1;
    active.push_back(std::move(p));
  }
  bool all_groups_in = active.size() == result.groups.size();

  const auto closer_to_center = [&](NodeId a, NodeId b) {
    const std::uint32_t ha = topo_->hops(a, topo_->center_node());
    const std::uint32_t hb = topo_->hops(b, topo_->center_node());
    return ha != hb ? ha < hb : a < b;
  };

  // Hand a partial to its most central up deputy when its leader is
  // churn-down at time `t` (no-op without churn, or when nobody
  // qualifies — the flood then runs from the dead leader and fails,
  // which the retry/loss accounting already covers).
  const auto reelect_holder = [&](Partial& p, SimTime t) {
    if (env.liveness == nullptr || !env.liveness->is_down(p.leader, t)) {
      return;
    }
    NodeId best = kInvalidNode;
    std::uint32_t best_h = net::Topology::kInvalidHops;
    for (NodeId i = 0; i < n; ++i) {
      if (p.holders[i] == 0 || env.liveness->is_down(i, t)) continue;
      const std::uint32_t h = topo_->hops(i, topo_->center_node());
      if (h < best_h || (h == best_h && i < best)) {
        best_h = h;
        best = i;
      }
    }
    if (best != kInvalidNode && best != p.leader) {
      p.leader = best;
      ++result.leader_reelections;
    }
  };

  while (active.size() > 1) {
    std::vector<Partial> next;
    for (std::size_t i = 0; i + 1 < active.size(); i += 2) {
      Partial& a = active[i];
      Partial& b = active[i + 1];
      const bool a_survives = closer_to_center(a.leader, b.leader);
      Partial& surv = a_survives ? a : b;
      Partial& sender = a_survives ? b : a;

      ct::GlossyConfig fcfg;
      fcfg.ntx = config_.result_flood_ntx;
      fcfg.payload_bytes = SumPacket::kWireSize;
      fcfg.max_slots = config_.max_chain_slots;
      fcfg.channel_model = flood_channel;
      fcfg.liveness = env.liveness;
      bool delivered = false;
      ct::GlossyResult& flood = ws.flood;
      for (std::uint32_t attempt = 0;
           attempt <= config_.max_retries && !delivered; ++attempt) {
        // Recombination floods share one channel after the group phase;
        // each starts where the previous one ended on the trial clock.
        const SimTime t0 = flood_base_abs + result.recombine_us;
        reelect_holder(sender, t0);
        reelect_holder(surv, t0);
        fcfg.initiator = sender.leader;
        fcfg.start_time_us = t0;
        transport_->flood_into(*topo_, fcfg, sim.channel_rng(),
                               trial_scratch, flood);
        result.recombine_us += flood.duration_us;
        for (NodeId node = 0; node < n; ++node) {
          result.radio_on_us[node] += flood.radio_on_us[node];
        }
        delivered =
            flood.first_rx_slot[surv.leader] != ct::MiniCastResult::kNever;
      }

      next.push_back(std::move(surv));
      if (delivered) {
        Partial& merged = next.back();
        merged.sum += sender.sum;
        merged.complete = merged.complete && sender.complete;
        // Only nodes that both held the survivor's sum and heard the
        // sender's flood hold the merged value.
        for (NodeId node = 0; node < n; ++node) {
          if (merged.holders[node] != 0 && node != merged.leader &&
              flood.first_rx_slot[node] == ct::MiniCastResult::kNever) {
            merged.holders[node] = 0;
          }
        }
        merged.holders[merged.leader] = 1;
      } else {
        // Partner partial never arrived: the final total misses it.
        all_groups_in = false;
      }
    }
    if (active.size() % 2 == 1) next.push_back(std::move(active.back()));
    active = std::move(next);
  }

  NodeId root = kInvalidNode;
  if (!active.empty()) {
    // A root that died between recombination and the result flood hands
    // off to an up deputy holding the final sum.
    reelect_holder(active.front(), flood_base_abs + result.recombine_us);
    root = active.front().leader;
    result.has_aggregate = true;
    result.aggregate = active.front().sum;
    result.aggregate_correct = all_groups_in && active.front().complete &&
                               result.aggregate == result.expected_sum;
  }

  // ---- Phase C: flood the aggregate back from the global root ----
  SimTime flood_slot_us = 0;
  ct::GlossyResult& flood = ws.result_flood;
  if (root != kInvalidNode) {
    ct::GlossyConfig fcfg;
    fcfg.initiator = root;
    fcfg.ntx = config_.result_flood_ntx;
    fcfg.payload_bytes = SumPacket::kWireSize;
    fcfg.max_slots = config_.max_chain_slots;
    fcfg.start_time_us = flood_base_abs + result.recombine_us;
    fcfg.channel_model = flood_channel;
    fcfg.liveness = env.liveness;
    transport_->flood_into(*topo_, fcfg, sim.channel_rng(), trial_scratch,
                           flood);
    result.flood_us = flood.duration_us;
    if (flood.slots_used > 0) {
      flood_slot_us = flood.duration_us /
                      static_cast<SimTime>(flood.slots_used);
    }
    for (NodeId i = 0; i < n; ++i) {
      result.radio_on_us[i] += flood.radio_on_us[i];
    }
  }
  result.total_duration_us =
      result.group_phase_us + result.recombine_us + result.flood_us;
  result.round_end_us = flood_base_abs + result.recombine_us + result.flood_us;
  if (pipelined) {
    // Serialize this round's floods on the shared lane so the next
    // round's recombination waits for them (its group phase does not).
    timeline.book(flood_ch, result.recombine_us + result.flood_us,
                  flood_base_abs);
  }

  const SimTime prefix_us =
      (flood_base_abs - env.start_time_us) + result.recombine_us;
  for (NodeId i = 0; i < n; ++i) {
    if (root == kInvalidNode) break;
    const std::int32_t rx = flood.first_rx_slot[i];
    if (i == root || rx == ct::MiniCastResult::kOwnEntry) {
      result.has_result[i] = 1;
      result.latency_us[i] = prefix_us;
    } else if (rx != ct::MiniCastResult::kNever) {
      result.has_result[i] = 1;
      result.latency_us[i] =
          prefix_us + static_cast<SimTime>(rx + 1) * flood_slot_us;
    } else {
      result.latency_us[i] = result.total_duration_us;
    }
  }
  return result;
}

}  // namespace mpciot::core
