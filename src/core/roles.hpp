// Single-node phase logic of one share+sum round, extracted so it is
// callable outside the full-topology simulator: the rt layer's node
// daemon plays exactly one of these roles per phase over real sockets,
// while SssProtocol keeps simulating every node of a round at once.
//
// The three roles compose into the paper's round:
//   * SourceRole      — deal a Shamir polynomial over the secret and
//                       emit one AES-protected SharePacket per holder;
//   * HolderRole      — authenticate + accumulate incoming shares into
//                       a point-sum, emit one SumPacket;
//   * AggregatorRole  — collect point-sums, pick the best consistent
//                       contributor mask, Lagrange-reconstruct the
//                       aggregate at x = 0.
//
// Reconstruction over any degree+1 sums with identical contributor
// masks yields the same field element (exact arithmetic over points of
// one polynomial), so the aggregate value is independent of message
// timing — the property the distributed runtime's determinism tests
// pin against the simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/shamir.hpp"
#include "core/wire.hpp"
#include "crypto/keystore.hpp"
#include "crypto/prng.hpp"
#include "field/fp61.hpp"

namespace mpciot::core::roles {

/// One group's round assignment, as a node daemon receives it. Sources
/// and holders are global node ids in schedule order; bit i of every
/// contributor mask refers to sources[i].
struct RoundSpec {
  std::vector<NodeId> sources;
  std::vector<NodeId> holders;
  std::size_t degree = 1;
  std::uint16_t round = 0;
};

/// Check the spec invariants (non-empty lists, <= 64 sources, unique
/// ids, 1 <= degree, degree + 1 <= holders). Throws ContractViolation.
void validate(const RoundSpec& spec);

/// Index of `node` in `list`, or nullopt.
std::optional<std::size_t> index_of(const std::vector<NodeId>& list,
                                    NodeId node);

/// Dealer side: shares `secret` out to the spec's holders.
class SourceRole {
 public:
  /// Deals a fresh degree-`spec.degree` polynomial with constant term
  /// `secret`, coefficients drawn from `drbg`. Precondition: `self` is
  /// one of spec.sources.
  SourceRole(const RoundSpec& spec, NodeId self, field::Fp61 secret,
             crypto::CtrDrbg& drbg);

  /// Encode the SharePacket for spec.holders[i] into `wire`. Returns
  /// false (leaving `wire` untouched) when that holder is this node:
  /// self-shares never travel — fetch the value via self_share().
  bool encode_share_for(std::size_t i, const crypto::KeyStore& keys,
                        Bytes& wire) const;

  /// The share destined for this node itself (valid whether or not the
  /// node is a holder this round).
  field::Fp61 self_share() const;

  const RoundSpec& spec() const { return spec_; }

 private:
  RoundSpec spec_;
  NodeId self_;
  ShamirDealer dealer_;
};

/// Share-collector side: accumulates authenticated shares into the
/// point-sum at this node's public point.
class HolderRole {
 public:
  /// Precondition: `self` is one of spec.holders.
  HolderRole(const RoundSpec& spec, NodeId self);

  /// Accept this node's own share without a wire round-trip (when the
  /// node is both source and holder). Returns false if `source` is not
  /// in the spec or already contributed.
  bool accept_local(NodeId source, field::Fp61 value);

  /// Decode + authenticate + validate one SharePacket addressed to this
  /// node. Returns false on any reject: wrong size, failed tag, wrong
  /// destination or round, unknown source, or a duplicate.
  bool accept_wire(const Bytes& wire, const crypto::KeyStore& keys);

  /// Every spec source has contributed.
  bool complete() const;
  std::uint32_t contributions() const;
  std::uint64_t contributor_mask() const { return mask_; }

  /// The current (partial or complete) point-sum. Precondition: at
  /// least one contribution.
  SumPacket sum_packet() const;

  const RoundSpec& spec() const { return spec_; }

 private:
  RoundSpec spec_;
  NodeId self_;
  field::Fp61 sum_;
  std::uint64_t mask_ = 0;
};

/// What a reconstruction produced.
struct AggregateOutcome {
  field::Fp61 aggregate;
  /// Bit i set iff sources[i] is covered by the aggregate.
  std::uint64_t contributor_mask = 0;
  /// Point-sums actually interpolated (always degree + 1).
  std::uint32_t sums_used = 0;
};

/// Reconstructor side: collects SumPackets and reconstructs the
/// aggregate from the best consistent subset.
class AggregatorRole {
 public:
  explicit AggregatorRole(const RoundSpec& spec);

  /// Accept one point-sum. Returns false on a reject: wrong round,
  /// unknown holder, a mask with bits beyond the source list, or a
  /// duplicate holder (first packet wins).
  bool accept(const SumPacket& pkt);

  std::uint32_t sums_received() const;

  /// True iff >= degree+1 sums carry the full all-sources mask (the
  /// no-failure fast path: reconstruction cannot improve further).
  bool full_mask_threshold() const;

  /// Reconstruct from the best mask having >= degree+1 identical-mask
  /// sums: maximal popcount, then maximal sum count, then numerically
  /// smallest mask; the degree+1 sums of the winning mask with the
  /// smallest holder ids are interpolated, making the outcome (value
  /// AND bookkeeping) independent of arrival order. nullopt while no
  /// mask reaches the threshold.
  std::optional<AggregateOutcome> try_reconstruct() const;

  const RoundSpec& spec() const { return spec_; }

 private:
  RoundSpec spec_;
  std::uint64_t full_mask_ = 0;
  std::vector<char> seen_;          // per holder index
  std::vector<field::Fp61> sums_;   // per holder index
  std::vector<std::uint64_t> masks_;
};

}  // namespace mpciot::core::roles
