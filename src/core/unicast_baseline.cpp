#include "core/unicast_baseline.hpp"

#include <algorithm>
#include <span>
#include <unordered_map>

#include "common/assert.hpp"
#include "core/wire.hpp"
#include "ct/chain_schedule.hpp"
#include "ct/transport.hpp"

namespace mpciot::core {

double UnicastResult::success_ratio() const {
  if (nodes.empty()) return 0.0;
  std::size_t ok = 0;
  for (const NodeOutcome& o : nodes) {
    if (o.has_aggregate && o.aggregate_correct) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(nodes.size());
}

SimTime UnicastResult::max_radio_on_us() const {
  SimTime best = 0;
  for (SimTime t : radio_on_us) best = std::max(best, t);
  return best;
}

UnicastResult run_unicast_sss(const net::Topology& topo,
                              const ProtocolConfig& config,
                              const std::vector<field::Fp61>& secrets,
                              const UnicastParams& params,
                              sim::Simulator& sim) {
  MPCIOT_REQUIRE(secrets.size() == config.sources.size(),
                 "unicast: one secret per source");
  const std::size_t n = topo.size();
  const std::size_t num_sources = config.sources.size();
  const std::size_t num_holders = config.share_holders.size();
  const std::size_t k = config.degree;

  // Deal shares exactly like the CT protocol does.
  std::vector<ShamirDealer> dealers;
  dealers.reserve(num_sources);
  field::Fp61 expected_sum;
  for (std::size_t i = 0; i < num_sources; ++i) {
    crypto::CtrDrbg drbg(
        sim.seed(),
        0x0D1C000000000000ull |
            (static_cast<std::uint64_t>(config.round) << 32) |
            config.sources[i]);
    dealers.emplace_back(secrets[i], k, drbg);
    expected_sum += secrets[i];
  }

  // Both phases run over the unicast substrate behind the transport
  // seam: the sharing chain routes each (source, holder) share
  // point-to-point, the reconstruction chain broadcasts each holder's
  // sum to every node — the same message pattern a non-CT collection-
  // tree deployment would generate, with identical per-hop ARQ walks.
  const ct::UnicastTransport transport(net::routing::MacParams{
      params.max_retries_per_hop, params.ack_payload_bytes,
      params.wakeup_interval_us});

  const ct::SharingSchedule sharing =
      ct::make_sharing_schedule(config.sources, config.share_holders);
  ct::MiniCastConfig share_cfg;
  share_cfg.payload_bytes = SharePacket::kWireSize;
  const ct::MiniCastResult share_round = transport.chain_round(
      topo, sharing.entries, share_cfg, sim.channel_rng(), nullptr);

  const ct::ReconstructionSchedule recon =
      ct::make_reconstruction_schedule(config.share_holders);
  ct::MiniCastConfig recon_cfg;
  recon_cfg.payload_bytes = SumPacket::kWireSize;
  const ct::MiniCastResult recon_round = transport.chain_round(
      topo, recon.entries, recon_cfg, sim.channel_rng(), nullptr);

  UnicastResult result;
  result.radio_on_us.assign(n, 0);
  result.nodes.assign(n, NodeOutcome{});
  for (NodeId i = 0; i < n; ++i) {
    result.radio_on_us[i] =
        share_round.radio_on_us[i] + recon_round.radio_on_us[i];
  }

  // Keep the simulation clock aligned with the channel occupancy the
  // two phases accumulated (single collision domain: walks serialize).
  result.total_duration_us = share_round.duration_us + recon_round.duration_us;
  sim.events().schedule_in(result.total_duration_us, [] {});
  sim.events().step();

  // Holder sums from delivered shares (own shares never travel on air).
  // Each dealer evaluates at all holder points in one batched pass; the
  // (h, s) loop then only reads the matrix.
  std::vector<field::Fp61> holder_xs(num_holders);
  for (std::size_t h = 0; h < num_holders; ++h) {
    holder_xs[h] = public_point(config.share_holders[h]);
  }
  std::vector<field::Fp61> share_matrix(num_sources * num_holders);
  for (std::size_t s = 0; s < num_sources; ++s) {
    dealers[s].evaluate_at(
        holder_xs, std::span<field::Fp61>{share_matrix}.subspan(
                       s * num_holders, num_holders));
  }
  std::vector<field::Fp61> holder_sum(num_holders);
  std::vector<std::uint64_t> holder_mask(num_holders, 0);
  std::size_t delivered = 0;
  std::size_t total_messages = 0;
  for (std::size_t h = 0; h < num_holders; ++h) {
    for (std::size_t s = 0; s < num_sources; ++s) {
      if (config.sources[s] == config.share_holders[h]) {
        holder_sum[h] += share_matrix[s * num_holders + h];
        holder_mask[h] |= (std::uint64_t{1} << s);
        continue;
      }
      ++total_messages;
      if (share_round.node_has(config.share_holders[h],
                               sharing.entry_index(s, h))) {
        ++delivered;
        holder_sum[h] += share_matrix[s * num_holders + h];
        holder_mask[h] |= (std::uint64_t{1} << s);
      }
    }
  }

  // Sum delivery per node (holders trivially have their own sum).
  for (std::size_t h = 0; h < num_holders; ++h) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == config.share_holders[h]) continue;
      ++total_messages;
      if (recon_round.node_has(dst, h)) ++delivered;
    }
  }
  result.delivery_ratio =
      total_messages == 0
          ? 1.0
          : static_cast<double>(delivered) /
                static_cast<double>(total_messages);

  // Idle-listening overhead.
  for (NodeId i = 0; i < n; ++i) {
    result.radio_on_us[i] += static_cast<SimTime>(
        params.idle_duty_cycle * static_cast<double>(result.total_duration_us));
  }

  // Per-node reconstruction, grouped by contributor mask like the CT path.
  const std::uint64_t full_mask =
      num_sources == 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << num_sources) - 1);
  for (NodeId node = 0; node < n; ++node) {
    std::unordered_map<std::uint64_t, std::vector<Share>> groups;
    for (std::size_t h = 0; h < num_holders; ++h) {
      const bool own = (config.share_holders[h] == node);
      if (!own && !recon_round.node_has(node, h)) continue;
      groups[holder_mask[h]].push_back(
          Share{config.share_holders[h], holder_sum[h]});
    }
    const std::vector<Share>* chosen = nullptr;
    std::uint64_t chosen_mask = 0;
    for (const auto& [mask, shares] : groups) {
      if (shares.size() < k + 1) continue;
      if (chosen == nullptr || mask == full_mask) {
        chosen = &shares;
        chosen_mask = mask;
      }
    }
    NodeOutcome& out = result.nodes[node];
    out.radio_on_us = result.radio_on_us[node];
    if (chosen == nullptr) continue;
    out.has_aggregate = true;
    out.sums_used = static_cast<std::uint32_t>(chosen->size());
    out.aggregate = reconstruct(*chosen, k);
    out.aggregate_correct =
        (chosen_mask == full_mask) && (out.aggregate == expected_sum);
    out.latency_us = result.total_duration_us;
  }
  return result;
}

}  // namespace mpciot::core
