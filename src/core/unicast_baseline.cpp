#include "core/unicast_baseline.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/assert.hpp"
#include "core/wire.hpp"

namespace mpciot::core {

namespace {

/// Next hop on a shortest good-link path src -> dst, or kInvalidNode.
NodeId next_hop(const net::Topology& topo, NodeId from, NodeId dst) {
  if (from == dst) return dst;
  const std::uint32_t d = topo.hops(from, dst);
  if (d == net::Topology::kInvalidHops) return kInvalidNode;
  for (NodeId nb : topo.neighbors(from)) {
    if (topo.prr(from, nb) < 0.5) continue;
    if (topo.hops(nb, dst) + 1 == d) return nb;
  }
  return kInvalidNode;
}

struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  NodeId at = kInvalidNode;  // current hop position
  std::uint32_t payload_bytes = 0;
  bool is_sum = false;
  std::size_t src_idx = 0;     // schedule index of the source (shares)
  std::size_t holder_idx = 0;  // schedule index of the holder (sums)
  bool delivered = false;
  bool dropped = false;
};

}  // namespace

double UnicastResult::success_ratio() const {
  if (nodes.empty()) return 0.0;
  std::size_t ok = 0;
  for (const NodeOutcome& o : nodes) {
    if (o.has_aggregate && o.aggregate_correct) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(nodes.size());
}

SimTime UnicastResult::max_radio_on_us() const {
  SimTime best = 0;
  for (SimTime t : radio_on_us) best = std::max(best, t);
  return best;
}

UnicastResult run_unicast_sss(const net::Topology& topo,
                              const ProtocolConfig& config,
                              const std::vector<field::Fp61>& secrets,
                              const UnicastParams& params,
                              sim::Simulator& sim) {
  MPCIOT_REQUIRE(secrets.size() == config.sources.size(),
                 "unicast: one secret per source");
  const std::size_t n = topo.size();
  const net::RadioParams& radio = topo.radio();
  const std::size_t k = config.degree;

  // Deal shares exactly like the CT protocol does.
  std::vector<ShamirDealer> dealers;
  dealers.reserve(config.sources.size());
  field::Fp61 expected_sum;
  for (std::size_t i = 0; i < config.sources.size(); ++i) {
    crypto::CtrDrbg drbg(
        sim.seed(),
        0x0D1C000000000000ull |
            (static_cast<std::uint64_t>(config.round) << 32) |
            config.sources[i]);
    dealers.emplace_back(secrets[i], k, drbg);
    expected_sum += secrets[i];
  }

  // Build the message list: sharing then reconstruction (sums go to every
  // node, matching the CT protocol's "everyone obtains the aggregate").
  std::deque<Message> queue;
  for (std::size_t s = 0; s < config.sources.size(); ++s) {
    for (std::size_t h = 0; h < config.share_holders.size(); ++h) {
      if (config.sources[s] == config.share_holders[h]) continue;
      Message m;
      m.src = config.sources[s];
      m.dst = config.share_holders[h];
      m.at = m.src;
      m.payload_bytes = SharePacket::kWireSize;
      m.src_idx = s;
      m.holder_idx = h;
      queue.push_back(m);
    }
  }

  UnicastResult result;
  result.radio_on_us.assign(n, 0);
  result.nodes.assign(n, NodeOutcome{});

  // Single collision domain: process messages hop-by-hop, serialized.
  // (An event-queue formulation with a busy-channel token; the queue
  //  drains deterministically.)
  sim::EventQueue& events = sim.events();
  std::size_t delivered = 0;
  std::size_t total_messages = queue.size();

  // holder sums filled as share messages arrive
  std::vector<field::Fp61> holder_sum(config.share_holders.size());
  std::vector<std::uint64_t> holder_mask(config.share_holders.size(), 0);
  // own shares are local
  for (std::size_t h = 0; h < config.share_holders.size(); ++h) {
    for (std::size_t s = 0; s < config.sources.size(); ++s) {
      if (config.sources[s] == config.share_holders[h]) {
        holder_sum[h] += dealers[s].share_for(config.share_holders[h]).value;
        holder_mask[h] |= (std::uint64_t{1} << s);
      }
    }
  }

  const SimTime data_us = radio.airtime_us(SharePacket::kWireSize);
  const SimTime ack_us = radio.airtime_us(params.ack_payload_bytes);
  // Each hop first rendezvouses with the duty-cycled receiver (expected
  // strobe time: half the wake-up interval), then exchanges data + ack.
  const SimTime exchange_us =
      data_us + radio.turnaround_us + ack_us + radio.turnaround_us;
  const SimTime hop_us = params.wakeup_interval_us / 2 + exchange_us;

  // Phase 1: drain sharing messages.
  auto process_queue = [&](std::deque<Message>& q) {
    while (!q.empty()) {
      Message m = q.front();
      q.pop_front();
      while (!m.delivered && !m.dropped) {
        const NodeId hop = next_hop(topo, m.at, m.dst);
        if (hop == kInvalidNode) {
          m.dropped = true;
          break;
        }
        const double prr = topo.prr(m.at, hop);
        bool hop_ok = false;
        for (std::uint32_t attempt = 0;
             attempt <= params.max_retries_per_hop; ++attempt) {
          // One attempt occupies the channel for data + ack airtime.
          events.schedule_in(hop_us, [] {});
          events.step();
          // The sender strobes for the whole rendezvous; the receiver's
          // radio only opens for the actual exchange.
          result.radio_on_us[m.at] += hop_us;
          result.radio_on_us[hop] += exchange_us;
          if (sim.channel_rng().next_bool(prr)) {
            hop_ok = true;
            break;
          }
        }
        if (!hop_ok) {
          m.dropped = true;
          break;
        }
        m.at = hop;
        if (m.at == m.dst) m.delivered = true;
      }
      if (m.delivered) {
        ++delivered;
        if (!m.is_sum) {
          holder_sum[m.holder_idx] +=
              dealers[m.src_idx].share_for(m.dst).value;
          holder_mask[m.holder_idx] |= (std::uint64_t{1} << m.src_idx);
        }
      }
    }
  };
  process_queue(queue);

  // Phase 2: every holder unicasts its sum to every other node.
  std::deque<Message> sum_queue;
  // received sums per node: (holder schedule idx -> present)
  std::vector<std::vector<char>> got_sum(
      n, std::vector<char>(config.share_holders.size(), 0));
  for (std::size_t h = 0; h < config.share_holders.size(); ++h) {
    got_sum[config.share_holders[h]][h] = 1;
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == config.share_holders[h]) continue;
      Message m;
      m.src = config.share_holders[h];
      m.dst = dst;
      m.at = m.src;
      m.payload_bytes = SumPacket::kWireSize;
      m.is_sum = true;
      m.holder_idx = h;
      sum_queue.push_back(m);
    }
  }
  total_messages += sum_queue.size();

  while (!sum_queue.empty()) {
    Message m = sum_queue.front();
    sum_queue.pop_front();
    while (!m.delivered && !m.dropped) {
      const NodeId hop = next_hop(topo, m.at, m.dst);
      if (hop == kInvalidNode) {
        m.dropped = true;
        break;
      }
      const double prr = topo.prr(m.at, hop);
      bool hop_ok = false;
      for (std::uint32_t attempt = 0; attempt <= params.max_retries_per_hop;
           ++attempt) {
        events.schedule_in(hop_us, [] {});
        events.step();
        result.radio_on_us[m.at] += hop_us;
        result.radio_on_us[hop] += exchange_us;
        if (sim.channel_rng().next_bool(prr)) {
          hop_ok = true;
          break;
        }
      }
      if (!hop_ok) {
        m.dropped = true;
        break;
      }
      m.at = hop;
      if (m.at == m.dst) m.delivered = true;
    }
    if (m.delivered) {
      ++delivered;
      got_sum[m.dst][m.holder_idx] = 1;
    }
  }

  result.total_duration_us = events.now();
  result.delivery_ratio =
      total_messages == 0
          ? 1.0
          : static_cast<double>(delivered) / static_cast<double>(total_messages);

  // Idle-listening overhead.
  for (NodeId i = 0; i < n; ++i) {
    result.radio_on_us[i] += static_cast<SimTime>(
        params.idle_duty_cycle * static_cast<double>(result.total_duration_us));
  }

  // Per-node reconstruction, grouped by contributor mask like the CT path.
  const std::uint64_t full_mask =
      config.sources.size() == 64
          ? ~std::uint64_t{0}
          : ((std::uint64_t{1} << config.sources.size()) - 1);
  for (NodeId node = 0; node < n; ++node) {
    std::unordered_map<std::uint64_t, std::vector<Share>> groups;
    for (std::size_t h = 0; h < config.share_holders.size(); ++h) {
      if (!got_sum[node][h]) continue;
      groups[holder_mask[h]].push_back(
          Share{config.share_holders[h], holder_sum[h]});
    }
    const std::vector<Share>* chosen = nullptr;
    std::uint64_t chosen_mask = 0;
    for (const auto& [mask, shares] : groups) {
      if (shares.size() < k + 1) continue;
      if (chosen == nullptr || mask == full_mask) {
        chosen = &shares;
        chosen_mask = mask;
      }
    }
    NodeOutcome& out = result.nodes[node];
    out.radio_on_us = result.radio_on_us[node];
    if (chosen == nullptr) continue;
    out.has_aggregate = true;
    out.sums_used = static_cast<std::uint32_t>(chosen->size());
    out.aggregate = reconstruct(*chosen, k);
    out.aggregate_correct =
        (chosen_mask == full_mask) && (out.aggregate == expected_sum);
    out.latency_us = result.total_duration_us;
  }
  return result;
}

}  // namespace mpciot::core
