// Semi-honest adversary model and privacy checks.
//
// The paper's privacy claim is the standard SSS one: any coalition of at
// most `degree` point-holders learns nothing about an honest node's
// secret. This module makes that claim *testable*:
//
//  * `CollusionView` collects exactly what a coalition observes in a
//    round (the shares addressed to its members);
//  * `consistent_polynomial_for` exhibits, for ANY candidate secret, a
//    polynomial consistent with the coalition's view — the
//    information-theoretic argument that the view reveals nothing;
//  * `can_reconstruct` is the threshold predicate.
//
// The eavesdropper case (no coalition membership, only the air
// interface) is handled by AES-128: an eavesdropper sees only
// ciphertext; tests/core/privacy_test exercises both adversaries.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/shamir.hpp"
#include "field/polynomial.hpp"

namespace mpciot::core {

/// The shares of one honest dealer observed by a coalition.
struct CollusionView {
  NodeId dealer = kInvalidNode;
  std::vector<Share> observed_shares;  // one per colluding holder
};

/// Threshold predicate: a coalition holding `shares_held` distinct
/// shares of a degree-`degree` polynomial can recover the secret iff
/// shares_held >= degree + 1.
constexpr bool can_reconstruct(std::size_t degree, std::size_t shares_held) {
  return shares_held >= degree + 1;
}

/// For a view with at most `degree` shares, return a degree-`degree`
/// polynomial that matches every observed share AND has constant term
/// `candidate_secret` — i.e. the view is consistent with any secret.
/// Returns nullopt when the view already determines the secret
/// (|shares| > degree) and the candidate doesn't match.
std::optional<field::Polynomial> consistent_polynomial_for(
    const CollusionView& view, std::size_t degree,
    field::Fp61 candidate_secret);

}  // namespace mpciot::core
