// Adversary models for the SSS aggregation round: the paper's
// semi-honest coalition plus the active (Byzantine) misbehaviours the
// robustness claims must survive.
//
// Passive side (the paper's privacy claim):
//  * `CollusionView` collects exactly what a coalition observes in a
//    round (the shares addressed to its members);
//  * `consistent_polynomial_for` exhibits, for ANY candidate secret, a
//    polynomial consistent with the coalition's view — the
//    information-theoretic argument that the view reveals nothing;
//  * `attempt_reconstruction` is the other direction: the best guess a
//    coalition can actually compute (Lagrange at x = 0 over its pooled
//    shares). At or above degree+1 shares this IS the secret; below, the
//    value is statistically independent of it (tests/core/privacy_test
//    sweeps the envelope and pins the exact boundary);
//  * `can_reconstruct` is the threshold predicate.
//
// Active side (threaded through SssProtocol/HierarchicalProtocol via
// ProtocolConfig::adversary):
//  * `AttackKind` enumerates the misbehaviours: garbage share values on
//    the air, equivocating dealers (different polynomials to different
//    holders), corrupted point-sums from attacker-held collectors, and
//    CT-slot jamming;
//  * `AdversaryEngine` derives every tamper value as a pure function of
//    (config seed, trial seed, round, attacker, target) — no shared RNG
//    streams, so trials stay deterministic and jobs-invariant, and a
//    config with kind == kNone changes nothing, byte for byte;
//  * `JammerChannel` decorates any net::ChannelModel with per-epoch
//    jammers that deafen every receiver in radio range — all four
//    transports inherit the attack through the channel-model seam.
//
// The eavesdropper case (no coalition membership, only the air
// interface) is handled by AES-128: an eavesdropper sees only
// ciphertext; tests/core/privacy_test exercises all adversaries.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/shamir.hpp"
#include "field/polynomial.hpp"
#include "net/channel_model.hpp"

namespace mpciot::core {

/// The shares of one honest dealer observed by a coalition.
struct CollusionView {
  NodeId dealer = kInvalidNode;
  std::vector<Share> observed_shares;  // one per colluding holder
};

/// Threshold predicate: a coalition holding `shares_held` distinct
/// shares of a degree-`degree` polynomial can recover the secret iff
/// shares_held >= degree + 1.
constexpr bool can_reconstruct(std::size_t degree, std::size_t shares_held) {
  return shares_held >= degree + 1;
}

/// For a view with at most `degree` shares, return a degree-`degree`
/// polynomial that matches every observed share AND has constant term
/// `candidate_secret` — i.e. the view is consistent with any secret.
/// Returns nullopt when the view already determines the secret
/// (|shares| > degree) and the candidate doesn't match.
std::optional<field::Polynomial> consistent_polynomial_for(
    const CollusionView& view, std::size_t degree,
    field::Fp61 candidate_secret);

/// What a coalition recovers by pooling its shares and interpolating at
/// x = 0 — the strongest attack available to a share-collecting
/// coalition (any other estimator can be computed from the same view).
struct ReconstructionAttempt {
  /// Shares held >= degree + 1: `value` is provably the secret.
  bool meets_threshold = false;
  /// Lagrange interpolation at x = 0 over every observed share. Below
  /// the threshold this is a deterministic function of the view that the
  /// dealer's fresh polynomial randomness decouples from the secret.
  field::Fp61 value;
};

/// Precondition: observed holders distinct; at least one share.
ReconstructionAttempt attempt_reconstruction(const CollusionView& view,
                                             std::size_t degree);

/// Active misbehaviours an attacker-controlled node can commit.
enum class AttackKind : std::uint8_t {
  kNone = 0,
  /// Dealers broadcast garbage share values (commitments untouched):
  /// every delivered share is off the committed polynomial.
  kMalformedShares,
  /// Equivocation: dealers commit to their real polynomial but deal a
  /// second polynomial (same secret, same degree) to ~half their
  /// holders, so holder sums silently diverge unless verified.
  kInconsistentShares,
  /// Attacker-held collectors broadcast corrupted point-sums under an
  /// honest contributor bitmap.
  kPollutedSums,
  /// Attackers jam CT slots: per-epoch radio noise deafening every
  /// receiver in range (see JammerChannel).
  kJamSlots,
};

struct AdversaryConfig {
  AttackKind kind = AttackKind::kNone;
  /// Attacker-controlled nodes (round-topology ids).
  std::vector<NodeId> attackers;
  /// Domain-separates every tamper draw; independent of the simulation
  /// seed so the same attack replays across trials.
  std::uint64_t seed = 0;
  /// kJamSlots: probability a jammer actively jams a given epoch
  /// (independent per (jammer, epoch)).
  double jam_duty = 0.2;
  /// kJamSlots: jam-schedule epoch length when no inner channel model
  /// dictates one.
  SimTime jam_epoch_us = 10 * kMillisecond;

  bool active() const {
    return kind != AttackKind::kNone && !attackers.empty();
  }
};

/// Deterministic attack oracle built from an AdversaryConfig. All draws
/// are pure functions of their arguments (derive_seed-keyed), so the
/// engine is stateless, thread-safe and jobs-invariant.
class AdversaryEngine {
 public:
  AdversaryEngine() = default;
  AdversaryEngine(AdversaryConfig config, std::size_t node_count);

  bool active() const { return cfg_.active(); }
  AttackKind kind() const { return cfg_.kind; }
  const AdversaryConfig& config() const { return cfg_; }

  bool is_attacker(NodeId node) const {
    return node < is_attacker_.size() && is_attacker_[node] != 0;
  }

  /// Bit i set iff schedule[i] is an attacker. Precondition:
  /// schedule.size() <= 64 (the round's source/holder lists).
  std::uint64_t attacker_bits(const std::vector<NodeId>& schedule) const;

  /// kMalformedShares: the garbage value dealt to `holder` in place of
  /// `honest`. Guaranteed different from `honest`, so a verifying holder
  /// always detects it.
  field::Fp61 malformed_share(std::uint64_t trial_seed, std::uint16_t round,
                              NodeId attacker, NodeId holder,
                              field::Fp61 honest) const;

  /// kInconsistentShares: true for the holder-list positions the
  /// attacker equivocates to (~half, deterministic per attacker).
  bool equivocation_target(NodeId attacker, std::size_t holder_index) const;

  /// kInconsistentShares: the second polynomial the attacker deals to
  /// its equivocation targets — same secret and degree, fresh
  /// coefficients, so only a commitment check can tell the shares apart.
  ShamirDealer equivocation_dealer(std::uint64_t trial_seed,
                                   std::uint16_t round, NodeId attacker,
                                   field::Fp61 secret,
                                   std::size_t degree) const;

  /// kPollutedSums: the nonzero offset an attacker-held collector folds
  /// into its broadcast point-sum.
  field::Fp61 sum_pollution(std::uint64_t trial_seed, std::uint16_t round,
                            NodeId attacker) const;

 private:
  AdversaryConfig cfg_;
  std::vector<char> is_attacker_;
};

/// Channel-model decorator: the inner model's link tables (or the
/// frozen static snapshot when inner is null) with per-epoch jammers
/// stamped on top. A jammer active in an epoch deafens every receiver
/// that can hear it at all — including itself, its radio being busy —
/// by zeroing the receiver's inbound PRR row and audibility bitmap.
/// Jam decisions are pure functions of (seed, epoch, jammer), so the
/// materialize() contract (same tables for the same (topo, epoch),
/// regardless of walk prefix) is preserved whenever the inner model
/// preserves it. Every transport consumes the channel-model seam, so
/// all four inherit the attack unchanged.
class JammerChannel final : public net::ChannelModel {
 public:
  /// `inner` may be null (jam the static topology) and must otherwise
  /// outlive this decorator. `jammers` are round-topology ids.
  JammerChannel(const net::ChannelModel* inner, std::vector<NodeId> jammers,
                std::uint64_t seed, double duty,
                SimTime epoch_us = 10 * kMillisecond);

  SimTime epoch_us() const override;
  void materialize(const net::Topology& topo, std::uint64_t epoch,
                   net::LinkEpochTables& tables) const override;

  /// The per-epoch jam decision (exposed for tests).
  bool jam_active(NodeId jammer, std::uint64_t epoch) const;

 private:
  const net::ChannelModel* inner_;
  std::vector<NodeId> jammers_;
  std::uint64_t seed_;
  double duty_;
  SimTime epoch_us_;
};

}  // namespace mpciot::core
