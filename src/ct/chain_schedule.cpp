#include "ct/chain_schedule.hpp"

#include <unordered_set>

#include "common/assert.hpp"

namespace mpciot::ct {

namespace {
void check_unique(const std::vector<NodeId>& nodes, const char* what) {
  std::unordered_set<NodeId> seen;
  for (NodeId n : nodes) {
    MPCIOT_REQUIRE(seen.insert(n).second, what);
  }
}
}  // namespace

SharingSchedule make_sharing_schedule(
    const std::vector<NodeId>& sources,
    const std::vector<NodeId>& destinations) {
  MPCIOT_REQUIRE(!sources.empty(), "sharing schedule: no sources");
  MPCIOT_REQUIRE(!destinations.empty(), "sharing schedule: no destinations");
  check_unique(sources, "sharing schedule: duplicate source");
  check_unique(destinations, "sharing schedule: duplicate destination");

  SharingSchedule sched;
  sched.sources = sources;
  sched.destinations = destinations;
  sched.entries.reserve(sources.size() * destinations.size());
  for (NodeId src : sources) {
    for (std::size_t d = 0; d < destinations.size(); ++d) {
      // The destination is advisory: broadcast substrates deliver every
      // entry to whoever hears it, point-to-point substrates route by it.
      sched.entries.push_back(ChainEntry{src, destinations[d]});
    }
  }
  return sched;
}

ReconstructionSchedule make_reconstruction_schedule(
    const std::vector<NodeId>& holders) {
  MPCIOT_REQUIRE(!holders.empty(), "reconstruction schedule: no holders");
  check_unique(holders, "reconstruction schedule: duplicate holder");
  ReconstructionSchedule sched;
  sched.holders = holders;
  sched.entries.reserve(holders.size());
  for (NodeId h : holders) {
    sched.entries.push_back(ChainEntry{h});
  }
  return sched;
}

}  // namespace mpciot::ct
