// MiniCast: concurrent-transmission many-to-many data sharing
// (Saha et al., DCOSS 2017), the communication substrate of the paper.
//
// MiniCast interleaves multiple Glossy-style floods by arranging all
// packets in a TDMA *chain*: a chain slot consists of E sub-slots, one
// per chain entry; a node that is transmitting in a chain slot sends, in
// sub-slot k, the entry-k packet if it has it (and stays silent in the
// sub-slots it cannot fill). Nodes transmit the full chain in the chain
// slot after one in which they received at least one packet — the
// Glossy trigger rule lifted to chains — and stop after NTX chain
// transmissions. The round starts from a designated initiator and ends
// at quiescence (no transmitter) or at `max_chain_slots`.
//
// The engine reports, for every (node, entry), the chain slot of first
// reception, plus per-node radio-on time under one of two shutdown
// policies (the S4 optimization switches the policy).
//
// Reception state is kept in packed 64-bit bitmaps (one bit per chain
// entry per node); `done` predicates observe them through `BitView`.
// Per-round scratch lives in a `RoundContext` so sweeps that run many
// rounds (NTX calibration, probe floods) reuse the allocations.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "crypto/prng.hpp"
#include "net/channel_model.hpp"
#include "net/energy.hpp"
#include "net/reception.hpp"
#include "net/topology.hpp"

namespace mpciot::ct {

/// One packet position in the TDMA chain.
struct ChainEntry {
  /// The node whose packet occupies this sub-slot. Only the origin can
  /// inject the entry; everyone else learns it over the air.
  NodeId origin = kInvalidNode;
  /// Intended recipient, or kInvalidNode for "everyone". Broadcast
  /// substrates (CT chains, gossip) deliver every entry to whoever
  /// hears it and ignore this; point-to-point substrates (the unicast
  /// transport) route the entry only to its destination.
  NodeId destination = kInvalidNode;
};

/// Read-only view of one node's packed reception bitmap, one bit per
/// chain entry. Bits above size() are guaranteed clear.
class BitView {
 public:
  BitView() = default;
  BitView(const std::uint64_t* words, std::size_t bits)
      : words_(words), bits_(bits) {}

  std::size_t size() const { return bits_; }
  bool test(std::size_t i) const {
    return ((words_[i / 64] >> (i % 64)) & 1u) != 0;
  }
  /// Number of entries present.
  std::size_t count() const;
  /// True when every entry is present.
  bool all() const;
  /// True when every bit set in `mask` (same width, padded with zeros)
  /// is present here.
  bool covers(const std::vector<std::uint64_t>& mask) const;
  /// Number of entries present among the bits set in `mask`.
  std::size_t count_and(const std::vector<std::uint64_t>& mask) const;
  /// Raw-word variants for callers keeping many masks in one flat
  /// buffer (e.g. the per-holder need masks of a warm session round).
  bool covers(const std::uint64_t* mask, std::size_t words) const;
  std::size_t count_and(const std::uint64_t* mask, std::size_t words) const;

 private:
  const std::uint64_t* words_ = nullptr;
  std::size_t bits_ = 0;
};

/// Build a packed mask sized for `bits` entries with the given bit
/// indices set (helper for `done` predicates working against BitView).
std::vector<std::uint64_t> make_entry_mask(std::size_t bits,
                                           const std::vector<std::size_t>& set);

/// Packed-bitmap primitives shared by every chain-round engine
/// (MiniCast, gossip, the transports).
inline bool bit_test(const std::uint64_t* words, std::size_t i) {
  return ((words[i / 64] >> (i % 64)) & 1u) != 0;
}
inline void bit_set(std::uint64_t* words, std::size_t i) {
  words[i / 64] |= std::uint64_t{1} << (i % 64);
}

/// When may a node switch its radio off during a round?
enum class RadioPolicy {
  /// Stay on until the round ends (the naive S3 behaviour: full-coverage
  /// rounds keep every node listening to the very end).
  kUntilQuiescence,
  /// Switch off once the node has (a) transmitted NTX chains and
  /// (b) satisfied its `done` predicate — the S4 energy optimization.
  kEarlyOff,
};

struct MiniCastConfig {
  NodeId initiator = 0;
  /// Radio channel the round runs on. Rounds on distinct channels are
  /// orthogonal — they can occupy the same simulated time without
  /// contending — while rounds sharing a channel must be serialized by
  /// the caller (see ct::ChannelTimeline). The engine itself simulates
  /// one round in isolation either way; the channel is carried into the
  /// result so composition layers can lay rounds out in time.
  std::uint16_t channel = 0;
  /// Number of full-chain transmissions per node.
  std::uint32_t ntx = 3;
  /// Payload bytes of each sub-slot packet (uniform across the chain).
  std::uint32_t payload_bytes = 16;
  /// Hard cap on chain slots (safety net; rounds normally end earlier).
  std::uint32_t max_chain_slots = 256;
  RadioPolicy radio_policy = RadioPolicy::kUntilQuiescence;
  /// Per-node completion predicate, given the node's current reception
  /// bitmap (indexed by entry). Used for `done_slot` reporting and, under
  /// kEarlyOff, for radio shutdown. Defaults to "has every entry".
  std::function<bool(NodeId, BitView have)> done;
  /// Failure injection: disabled[i] != 0 means node i is dead for the
  /// whole round (never transmits, never receives, radio off). Empty
  /// means all nodes alive; otherwise must have one flag per node.
  std::vector<char> disabled;
  /// Slot-synchronized data owners. CT rounds are started by a Glossy
  /// sync flood; every node that received it knows the TDMA schedule's
  /// absolute slot times. A node listed here additionally transmits on a
  /// *timeout*: if it has neither received nor transmitted for two
  /// consecutive chain slots (it is outside the current wave), it injects
  /// its chain at the next scheduled slot. This keeps poorly-reachable
  /// sources from being starved by the reception-trigger rule without
  /// ever producing an everyone-transmits (nobody-listens) slot.
  std::vector<NodeId> scheduled_owners;
  /// Round start on the trial clock (us): chain slot s runs at
  /// start_time_us + s * chain_slot_us. Only consulted by the dynamics
  /// seams below; a fully static round may leave it 0.
  SimTime start_time_us = 0;
  /// Time-varying channel the round runs under; null = the topology's
  /// frozen snapshot. The engine seeks a cached per-round view once per
  /// chain slot and re-materializes rows only when the model's epoch
  /// advances, so the bitmap hot path is untouched between epochs.
  const net::ChannelModel* channel_model = nullptr;
  /// Node crash/recover schedule; null = no churn. A node down for a
  /// chain slot neither transmits nor listens and is charged no
  /// radio-on time; it keeps what it already received, and a
  /// slot-synchronized owner rejoins through the timeout path after it
  /// recovers. Unlike `disabled` (dead for the whole round), liveness
  /// is evaluated per slot.
  const net::LivenessModel* liveness = nullptr;
};

struct MiniCastResult {
  /// rx_slot[node][entry]: chain slot of first reception; kOwnEntry for
  /// the origin's own entries; kNever if not received by round end.
  static constexpr std::int32_t kNever = -1;
  static constexpr std::int32_t kOwnEntry = -2;
  std::vector<std::vector<std::int32_t>> rx_slot;

  /// Chain transmissions performed per node.
  std::vector<std::uint32_t> tx_count;

  /// First chain slot at which the node's `done` predicate held
  /// (kNever if never). Origins whose predicate holds initially get 0.
  std::vector<std::int32_t> done_slot;

  /// Per-node radio-on time for this round (us).
  std::vector<SimTime> radio_on_us;

  std::uint32_t chain_slots_used = 0;
  SimTime chain_slot_us = 0;
  SimTime duration_us = 0;
  /// Channel the round ran on (echoed from the config).
  std::uint16_t channel = 0;

  bool node_has(NodeId n, std::size_t entry) const {
    return rx_slot[n][entry] != kNever;
  }

  /// Fraction of (node, entry) pairs delivered, own entries excluded.
  double delivery_ratio() const;

  /// Fraction of nodes whose `done` predicate held by round end.
  double done_ratio() const;
};

/// Reusable scratch for the chain engine. One context serves any number
/// of sequential rounds over any topologies; buffers grow to the largest
/// round seen and are reused thereafter.
struct RoundContext {
  std::vector<std::uint64_t> have;           // n x entry-words bitmaps
  std::vector<std::uint64_t> entry_senders;  // node-words: current sub-slot
  std::vector<NodeId> tx_nodes;              // this slot's transmitters
  std::vector<NodeId> listeners;             // this slot's radio-on listeners
  std::vector<char> radio_on;
  std::vector<char> tx_this_slot;
  std::vector<char> received_any;
  std::vector<char> tx_next;
  std::vector<char> scheduled;
  std::vector<std::uint32_t> silent_slots;
  std::vector<std::uint32_t> timeout_budget;
  net::ChannelView view;   // epoch-cached link tables (static: aliases)
  std::vector<char> down;  // per-slot churn mask (liveness rounds only)
  // Warm buffers for run_glossy_into: the one-entry chain and the chain
  // result a flood is internally run through.
  std::vector<ChainEntry> flood_entries;
  MiniCastResult flood_tmp;
};

/// Run one MiniCast round to quiescence. Deterministic given `rng` state.
MiniCastResult run_minicast(const net::Topology& topo,
                            const std::vector<ChainEntry>& entries,
                            const MiniCastConfig& config,
                            crypto::Xoshiro256& rng);

/// As above, reusing caller-owned scratch across rounds.
MiniCastResult run_minicast(const net::Topology& topo,
                            const std::vector<ChainEntry>& entries,
                            const MiniCastConfig& config,
                            crypto::Xoshiro256& rng, RoundContext& scratch);

/// As above, writing into a caller-owned result whose buffers are reused
/// across rounds — the steady-state entry point: after the first round
/// on a given shape, no heap allocation is performed.
void run_minicast_into(const net::Topology& topo,
                       const std::vector<ChainEntry>& entries,
                       const MiniCastConfig& config, crypto::Xoshiro256& rng,
                       RoundContext& scratch, MiniCastResult& out);

}  // namespace mpciot::ct
