#include "ct/gossip.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "net/reception.hpp"

namespace mpciot::ct {

MiniCastResult run_gossip(const net::Topology& topo,
                          const std::vector<ChainEntry>& entries,
                          const MiniCastConfig& config,
                          const GossipParams& params,
                          crypto::Xoshiro256& rng) {
  const std::size_t n = topo.size();
  const std::size_t num_entries = entries.size();
  MPCIOT_REQUIRE(num_entries > 0, "gossip: empty chain");
  MPCIOT_REQUIRE(config.ntx > 0, "gossip: ntx must be positive");
  MPCIOT_REQUIRE(params.tx_prob > 0.0 && params.tx_prob <= 1.0,
                 "gossip: tx_prob must be in (0, 1]");
  for (const ChainEntry& e : entries) {
    MPCIOT_REQUIRE(e.origin < n, "gossip: entry origin out of range");
  }
  MPCIOT_REQUIRE(config.disabled.empty() || config.disabled.size() == n,
                 "gossip: disabled mask size mismatch");
  const auto is_disabled = [&](NodeId i) {
    return !config.disabled.empty() && config.disabled[i] != 0;
  };

  const SimTime slot_us = topo.radio().subslot_us(config.payload_bytes);
  const auto done_fn =
      config.done ? config.done
                  : [](NodeId, BitView have) { return have.all(); };

  MiniCastResult result;
  result.rx_slot.assign(n, std::vector<std::int32_t>(
                               num_entries, MiniCastResult::kNever));
  result.tx_count.assign(n, 0);
  result.done_slot.assign(n, MiniCastResult::kNever);
  result.radio_on_us.assign(n, 0);
  result.chain_slot_us = slot_us;
  result.channel = config.channel;

  const std::size_t words = (num_entries + 63) / 64;
  std::vector<std::uint64_t> have(n * words, 0);
  const auto have_row = [&](NodeId i) { return have.data() + i * words; };
  const auto have_bit = [&](NodeId i, std::size_t e) {
    return bit_test(have_row(i), e);
  };
  for (std::size_t e = 0; e < num_entries; ++e) {
    bit_set(have_row(entries[e].origin), e);
    result.rx_slot[entries[e].origin][e] = MiniCastResult::kOwnEntry;
  }

  // Remaining transmissions per (node, entry), a round-robin cursor so a
  // node cycles through its sendable entries deterministically, and an
  // exact per-node count of sendable entries (held with budget left) so
  // the quiescence check is O(n).
  std::vector<std::uint8_t> budget(
      n * num_entries,
      static_cast<std::uint8_t>(std::min<std::uint32_t>(config.ntx, 255)));
  std::vector<std::size_t> cursor(n, 0);
  std::vector<std::uint32_t> sendable(n, 0);
  std::vector<std::uint32_t> held(n, 0);
  for (std::size_t e = 0; e < num_entries; ++e) {
    ++sendable[entries[e].origin];
    ++held[entries[e].origin];
  }
  std::vector<char> active(n, 1);  // radio on, still in the protocol
  for (NodeId i = 0; i < n; ++i) {
    if (is_disabled(i)) active[i] = 0;
  }
  // Initial done check. Nobody can leave here even under kEarlyOff:
  // every held entry starts with budget, so owners always inject first.
  for (NodeId i = 0; i < n; ++i) {
    if (active[i] && done_fn(i, BitView(have_row(i), num_entries))) {
      result.done_slot[i] = 0;
    }
  }

  /// Next sendable entry of node i (budget left, entry held), advancing
  /// the cursor; num_entries when nothing is sendable.
  const auto pick_entry = [&](NodeId i) {
    for (std::size_t step = 0; step < num_entries; ++step) {
      const std::size_t e = (cursor[i] + step) % num_entries;
      if (have_bit(i, e) && budget[i * num_entries + e] > 0) {
        cursor[i] = (e + 1) % num_entries;
        return e;
      }
    }
    return num_entries;
  };

  const net::ReceptionModel model(topo);
  // Dynamics seams (see MiniCastConfig): the view aliases the frozen
  // tables without a channel model; the churn mask only exists with a
  // liveness schedule. Static rounds draw exactly the same RNG stream
  // as before.
  net::ChannelView view;
  view.bind(topo, config.channel_model);
  const net::ChannelView* viewp =
      config.channel_model != nullptr ? &view : nullptr;
  const net::LivenessModel* churn = config.liveness;
  std::vector<char> down(churn != nullptr ? n : 0, 0);
  const std::uint64_t max_slots =
      static_cast<std::uint64_t>(params.max_slot_factor) * num_entries;
  std::vector<net::Transmission> slot_txs;
  std::vector<char> tx_this_slot(n, 0);
  std::uint64_t slot = 0;
  for (; slot < max_slots; ++slot) {
    const SimTime slot_start_us =
        config.start_time_us + static_cast<SimTime>(slot) * slot_us;
    if (config.channel_model != nullptr) view.seek(slot_start_us);
    if (churn != nullptr) {
      for (NodeId i = 0; i < n; ++i) {
        down[i] = churn->is_down(i, slot_start_us) ? 1 : 0;
      }
    }

    // Anyone still eligible to send? (No RNG consumed: pure state. When
    // nobody is, the dissemination has died out.) Down holders cannot
    // keep the round open while they are down.
    bool any_eligible = false;
    for (NodeId i = 0; i < n; ++i) {
      if (churn != nullptr && down[i]) continue;
      if (active[i] && sendable[i] > 0) {
        any_eligible = true;
        break;
      }
    }
    if (!any_eligible) break;

    slot_txs.clear();
    for (NodeId i = 0; i < n; ++i) {
      tx_this_slot[i] = 0;
      // A node with nothing sendable does not contend for the channel.
      if (!active[i] || sendable[i] == 0) continue;
      if (churn != nullptr && down[i]) continue;
      if (!rng.next_bool(params.tx_prob)) continue;
      const std::size_t e = pick_entry(i);
      if (e == num_entries) continue;  // defensive; sendable > 0 forbids it
      tx_this_slot[i] = 1;
      if (--budget[i * num_entries + e] == 0) --sendable[i];
      ++result.tx_count[i];
      slot_txs.push_back(
          net::Transmission{i, static_cast<std::uint64_t>(e)});
    }

    for (NodeId r = 0; r < n; ++r) {
      if (!active[r] || tx_this_slot[r]) continue;
      if (churn != nullptr && down[r]) continue;
      if (slot_txs.empty()) continue;
      const net::ReceptionOutcome outcome =
          model.arbitrate(r, slot_txs, rng, viewp);
      if (outcome.received) {
        const std::size_t e = static_cast<std::size_t>(outcome.content_id);
        if (!have_bit(r, e)) {
          bit_set(have_row(r), e);
          result.rx_slot[r][e] = static_cast<std::int32_t>(slot);
          ++sendable[r];  // fresh entry, full budget
          ++held[r];
        }
      }
    }

    // Radio accounting + completion. Down nodes are charged nothing and
    // cannot complete (their bitmap did not change).
    for (NodeId i = 0; i < n; ++i) {
      if (!active[i]) continue;
      if (churn != nullptr && down[i]) continue;
      result.radio_on_us[i] += slot_us;
      if (result.done_slot[i] == MiniCastResult::kNever &&
          done_fn(i, BitView(have_row(i), num_entries))) {
        result.done_slot[i] = static_cast<std::int32_t>(slot);
      }
      if (config.radio_policy == RadioPolicy::kEarlyOff &&
          result.done_slot[i] != MiniCastResult::kNever && held[i] > 0 &&
          sendable[i] == 0) {
        active[i] = 0;
      }
    }

    // No global completion check: a real gossip node cannot observe
    // network-wide done-ness. The round ends at budget quiescence (the
    // any_eligible probe above) or the slot cap.
  }

  result.chain_slots_used = static_cast<std::uint32_t>(slot);
  result.duration_us = static_cast<SimTime>(slot) * slot_us;
  return result;
}

}  // namespace mpciot::ct
