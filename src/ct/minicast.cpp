#include "ct/minicast.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mpciot::ct {

double MiniCastResult::delivery_ratio() const {
  std::size_t delivered = 0;
  std::size_t total = 0;
  for (const auto& row : rx_slot) {
    for (std::int32_t s : row) {
      if (s == kOwnEntry) continue;
      ++total;
      if (s != kNever) ++delivered;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(delivered) /
                                static_cast<double>(total);
}

double MiniCastResult::done_ratio() const {
  if (done_slot.empty()) return 1.0;
  std::size_t done = 0;
  for (std::int32_t s : done_slot) {
    if (s != kNever) ++done;
  }
  return static_cast<double>(done) / static_cast<double>(done_slot.size());
}

MiniCastResult run_minicast(const net::Topology& topo,
                            const std::vector<ChainEntry>& entries,
                            const MiniCastConfig& config,
                            crypto::Xoshiro256& rng) {
  const std::size_t n = topo.size();
  const std::size_t num_entries = entries.size();
  MPCIOT_REQUIRE(num_entries > 0, "minicast: empty chain");
  MPCIOT_REQUIRE(config.initiator < n, "minicast: initiator out of range");
  MPCIOT_REQUIRE(config.ntx > 0, "minicast: ntx must be positive");
  for (const ChainEntry& e : entries) {
    MPCIOT_REQUIRE(e.origin < n, "minicast: entry origin out of range");
  }
  MPCIOT_REQUIRE(config.disabled.empty() || config.disabled.size() == n,
                 "minicast: disabled mask size mismatch");
  const auto is_disabled = [&](NodeId i) {
    return !config.disabled.empty() && config.disabled[i] != 0;
  };

  const net::RadioParams& radio = topo.radio();
  const SimTime subslot_us = radio.subslot_us(config.payload_bytes);
  const SimTime chain_slot_us =
      subslot_us * static_cast<SimTime>(num_entries);

  const auto done_fn =
      config.done ? config.done
                  : [](NodeId, const std::vector<char>& have) {
                      return std::all_of(have.begin(), have.end(),
                                         [](char c) { return c != 0; });
                    };

  MiniCastResult result;
  result.rx_slot.assign(n, std::vector<std::int32_t>(
                               num_entries, MiniCastResult::kNever));
  result.tx_count.assign(n, 0);
  result.done_slot.assign(n, MiniCastResult::kNever);
  result.radio_on_us.assign(n, 0);
  result.chain_slot_us = chain_slot_us;

  // have[i]: reception bitmap of node i (char to avoid vector<bool>).
  std::vector<std::vector<char>> have(n, std::vector<char>(num_entries, 0));
  for (std::size_t e = 0; e < num_entries; ++e) {
    have[entries[e].origin][e] = 1;
    result.rx_slot[entries[e].origin][e] = MiniCastResult::kOwnEntry;
  }

  std::vector<char> radio_on(n, 1);
  std::vector<char> tx_this_slot(n, 0);
  std::vector<char> received_any(n, 0);
  std::vector<char> tx_next(n, 0);
  tx_next[config.initiator] = 1;
  std::vector<char> scheduled(n, 0);
  for (NodeId t : config.scheduled_owners) {
    MPCIOT_REQUIRE(t < n, "minicast: scheduled owner out of range");
    scheduled[t] = 1;
  }
  std::vector<std::uint32_t> silent_slots(n, 0);
  // Timeout transmissions are for injecting straggler data, not for
  // sustaining the flood: bound them so degenerate everyone-transmits
  // dynamics cannot arise.
  std::vector<std::uint32_t> timeout_budget(n, 4);
  for (NodeId i = 0; i < n; ++i) {
    if (is_disabled(i)) {
      radio_on[i] = 0;
      tx_next[i] = 0;
      scheduled[i] = 0;
    }
  }

  // Initial done check (origins of everything / trivial predicates).
  for (NodeId i = 0; i < n; ++i) {
    if (!is_disabled(i) && done_fn(i, have[i])) result.done_slot[i] = 0;
  }

  std::vector<net::Transmission> slot_txs;
  std::uint32_t slot = 0;
  for (; slot < config.max_chain_slots; ++slot) {
    // Who transmits this chain slot? Wave-triggered nodes, plus
    // scheduled owners that timed out of the wave. The timeout path uses
    // a randomized backoff (p = 1/2 per slot once timed out): a
    // deterministic timeout can synchronize all stragglers into an
    // everyone-transmits slot in which nobody listens and the flood dies.
    bool any_tx = false;
    for (NodeId i = 0; i < n; ++i) {
      // The defer draw models missing a *reception-derived* trigger; the
      // initiator's opening transmission is clock-scheduled and immune.
      const bool scheduled_start = (slot == 0 && i == config.initiator);
      const bool wave =
          tx_next[i] != 0 &&
          (scheduled_start || !rng.next_bool(radio.tx_defer_prob));
      bool timeout = false;
      if (!wave && scheduled[i] && timeout_budget[i] > 0 &&
          silent_slots[i] >= 2 && result.tx_count[i] < config.ntx &&
          rng.next_bool(0.5)) {
        timeout = true;
        --timeout_budget[i];
      }
      tx_this_slot[i] =
          ((wave || timeout) && result.tx_count[i] < config.ntx) ? 1 : 0;
      if (tx_this_slot[i]) any_tx = true;
      received_any[i] = 0;
    }
    if (!any_tx) {
      // Quiescence — unless a scheduled owner still has data credit, in
      // which case the provisioned round idles a slot and lets the
      // owner's timeout fire (its backoff draw may simply have deferred).
      bool pending_owner = false;
      for (NodeId i = 0; i < n; ++i) {
        if (scheduled[i] && result.tx_count[i] < config.ntx &&
            timeout_budget[i] > 0) {
          pending_owner = true;
          break;
        }
      }
      if (!pending_owner) break;
    }

    // Sub-slot by sub-slot arbitration.
    for (std::size_t e = 0; e < num_entries; ++e) {
      slot_txs.clear();
      for (NodeId i = 0; i < n; ++i) {
        if (tx_this_slot[i] && have[i][e]) {
          slot_txs.push_back(
              net::Transmission{i, static_cast<std::uint64_t>(e)});
        }
      }
      if (slot_txs.empty()) continue;
      const net::ReceptionModel model(topo);
      for (NodeId r = 0; r < n; ++r) {
        if (tx_this_slot[r] || !radio_on[r]) continue;
        const net::ReceptionOutcome outcome =
            model.arbitrate(r, slot_txs, rng);
        if (outcome.received) {
          received_any[r] = 1;
          if (!have[r][e]) {
            have[r][e] = 1;
            result.rx_slot[r][e] = static_cast<std::int32_t>(slot);
          }
        }
      }
    }

    // Accounting: transmitters spend the filled sub-slots in TX and the
    // rest listening; listeners spend the whole chain slot in RX.
    for (NodeId i = 0; i < n; ++i) {
      if (tx_this_slot[i]) {
        std::size_t filled = 0;
        for (std::size_t e = 0; e < num_entries; ++e) {
          if (have[i][e]) ++filled;
        }
        result.radio_on_us[i] += chain_slot_us;  // TX slots + guard listening
        ++result.tx_count[i];
        (void)filled;
      } else if (radio_on[i]) {
        result.radio_on_us[i] += chain_slot_us;
      }
    }

    // Completion tracking and (optionally) early radio shutdown.
    for (NodeId i = 0; i < n; ++i) {
      if (is_disabled(i)) continue;
      if (result.done_slot[i] == MiniCastResult::kNever &&
          done_fn(i, have[i])) {
        result.done_slot[i] = static_cast<std::int32_t>(slot);
      }
      if (config.radio_policy == RadioPolicy::kEarlyOff && radio_on[i] &&
          result.tx_count[i] >= config.ntx &&
          result.done_slot[i] != MiniCastResult::kNever) {
        radio_on[i] = 0;
      }
    }

    // Glossy trigger rule: transmit next chain slot iff received in this
    // one. (Transmitters received nothing — half duplex.)
    for (NodeId i = 0; i < n; ++i) {
      tx_next[i] = received_any[i];
      if (tx_this_slot[i] || received_any[i]) {
        silent_slots[i] = 0;
      } else {
        ++silent_slots[i];
      }
    }
  }

  result.chain_slots_used = slot;
  result.duration_us = static_cast<SimTime>(slot) * chain_slot_us;
  return result;
}

}  // namespace mpciot::ct
