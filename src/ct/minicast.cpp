#include "ct/minicast.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.hpp"

namespace mpciot::ct {

std::size_t BitView::count() const {
  std::size_t total = 0;
  for (std::size_t w = 0; w < (bits_ + 63) / 64; ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w]));
  }
  return total;
}

bool BitView::all() const { return count() == bits_; }

bool BitView::covers(const std::vector<std::uint64_t>& mask) const {
  return covers(mask.data(), mask.size());
}

std::size_t BitView::count_and(const std::vector<std::uint64_t>& mask) const {
  return count_and(mask.data(), mask.size());
}

bool BitView::covers(const std::uint64_t* mask, std::size_t words) const {
  for (std::size_t w = 0; w < words; ++w) {
    if ((mask[w] & ~words_[w]) != 0) return false;
  }
  return true;
}

std::size_t BitView::count_and(const std::uint64_t* mask,
                               std::size_t words) const {
  std::size_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w] & mask[w]));
  }
  return total;
}

std::vector<std::uint64_t> make_entry_mask(
    std::size_t bits, const std::vector<std::size_t>& set) {
  std::vector<std::uint64_t> mask((bits + 63) / 64, 0);
  for (std::size_t i : set) {
    MPCIOT_REQUIRE(i < bits, "make_entry_mask: bit index out of range");
    bit_set(mask.data(), i);
  }
  return mask;
}

double MiniCastResult::delivery_ratio() const {
  std::size_t delivered = 0;
  std::size_t total = 0;
  for (const auto& row : rx_slot) {
    for (std::int32_t s : row) {
      if (s == kOwnEntry) continue;
      ++total;
      if (s != kNever) ++delivered;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(delivered) /
                                static_cast<double>(total);
}

double MiniCastResult::done_ratio() const {
  if (done_slot.empty()) return 1.0;
  std::size_t done = 0;
  for (std::int32_t s : done_slot) {
    if (s != kNever) ++done;
  }
  return static_cast<double>(done) / static_cast<double>(done_slot.size());
}

MiniCastResult run_minicast(const net::Topology& topo,
                            const std::vector<ChainEntry>& entries,
                            const MiniCastConfig& config,
                            crypto::Xoshiro256& rng) {
  RoundContext scratch;
  return run_minicast(topo, entries, config, rng, scratch);
}

MiniCastResult run_minicast(const net::Topology& topo,
                            const std::vector<ChainEntry>& entries,
                            const MiniCastConfig& config,
                            crypto::Xoshiro256& rng, RoundContext& scratch) {
  MiniCastResult result;
  run_minicast_into(topo, entries, config, rng, scratch, result);
  return result;
}

void run_minicast_into(const net::Topology& topo,
                       const std::vector<ChainEntry>& entries,
                       const MiniCastConfig& config, crypto::Xoshiro256& rng,
                       RoundContext& scratch, MiniCastResult& result) {
  const std::size_t n = topo.size();
  const std::size_t num_entries = entries.size();
  MPCIOT_REQUIRE(num_entries > 0, "minicast: empty chain");
  MPCIOT_REQUIRE(config.initiator < n, "minicast: initiator out of range");
  MPCIOT_REQUIRE(config.ntx > 0, "minicast: ntx must be positive");
  for (const ChainEntry& e : entries) {
    MPCIOT_REQUIRE(e.origin < n, "minicast: entry origin out of range");
  }
  MPCIOT_REQUIRE(config.disabled.empty() || config.disabled.size() == n,
                 "minicast: disabled mask size mismatch");
  const auto is_disabled = [&](NodeId i) {
    return !config.disabled.empty() && config.disabled[i] != 0;
  };

  const net::RadioParams& radio = topo.radio();
  const SimTime subslot_us = radio.subslot_us(config.payload_bytes);
  const SimTime chain_slot_us =
      subslot_us * static_cast<SimTime>(num_entries);

  // The default predicate lives in a function-local static so binding it
  // never copies a std::function on the hot path.
  static const std::function<bool(NodeId, BitView)> kAllEntries =
      [](NodeId, BitView have) { return have.all(); };
  const std::function<bool(NodeId, BitView)>& done_fn =
      config.done ? config.done : kAllEntries;

  // Reset the (possibly warm) result in place: resize keeps each row's
  // capacity, so a steady-state round on a fixed shape never allocates.
  result.rx_slot.resize(n);
  for (auto& row : result.rx_slot) {
    row.assign(num_entries, MiniCastResult::kNever);
  }
  result.tx_count.assign(n, 0);
  result.done_slot.assign(n, MiniCastResult::kNever);
  result.radio_on_us.assign(n, 0);
  result.chain_slot_us = chain_slot_us;
  result.channel = config.channel;

  // have: packed reception bitmaps, `words` 64-bit words per node.
  const std::size_t words = (num_entries + 63) / 64;
  const std::size_t nwords = topo.node_words();
  scratch.have.assign(n * words, 0);
  const auto have_row = [&](NodeId i) {
    return scratch.have.data() + static_cast<std::size_t>(i) * words;
  };
  for (std::size_t e = 0; e < num_entries; ++e) {
    bit_set(have_row(entries[e].origin), e);
    result.rx_slot[entries[e].origin][e] = MiniCastResult::kOwnEntry;
  }

  scratch.radio_on.assign(n, 1);
  scratch.tx_this_slot.assign(n, 0);
  scratch.received_any.assign(n, 0);
  scratch.tx_next.assign(n, 0);
  scratch.tx_next[config.initiator] = 1;
  scratch.scheduled.assign(n, 0);
  for (NodeId t : config.scheduled_owners) {
    MPCIOT_REQUIRE(t < n, "minicast: scheduled owner out of range");
    scratch.scheduled[t] = 1;
  }
  scratch.silent_slots.assign(n, 0);
  // Timeout transmissions are for injecting straggler data, not for
  // sustaining the flood: bound them so degenerate everyone-transmits
  // dynamics cannot arise.
  scratch.timeout_budget.assign(n, 4);
  scratch.entry_senders.assign(nwords, 0);
  for (NodeId i = 0; i < n; ++i) {
    if (is_disabled(i)) {
      scratch.radio_on[i] = 0;
      scratch.tx_next[i] = 0;
      scratch.scheduled[i] = 0;
    }
  }

  // Dynamics seams: the view aliases the frozen tables when no channel
  // model is set, and the churn mask is only maintained when a liveness
  // schedule is present — a static round takes neither branch nor extra
  // RNG draws anywhere below.
  net::ChannelView& view = scratch.view;
  view.bind(topo, config.channel_model);
  const net::LivenessModel* churn = config.liveness;
  if (churn != nullptr) scratch.down.assign(n, 0);

  // Initial done check (origins of everything / trivial predicates).
  for (NodeId i = 0; i < n; ++i) {
    if (is_disabled(i)) continue;
    if (churn != nullptr && churn->is_down(i, config.start_time_us)) continue;
    if (done_fn(i, BitView(have_row(i), num_entries))) {
      result.done_slot[i] = 0;
    }
  }

  // Sparse-tier topologies have no audibility bitmap rows; their
  // listeners scan the per-receiver word runs instead. Hoisted so the
  // dense hot loop below stays branch-free.
  const bool sparse_topo = view.sparse();

  const double inv_corr = 1.0 / radio.ct_loss_correlation;
  // At the default correlation of 1.0 the exponent is exactly 1.0, and
  // IEEE-754 guarantees pow(x, 1.0) == x bit-for-bit — so the arbitration
  // loop can skip the libm call entirely without changing a single
  // delivered packet. Any other correlation keeps the pow.
  const bool corr_is_one = inv_corr == 1.0;
  std::uint32_t slot = 0;
  for (; slot < config.max_chain_slots; ++slot) {
    // Advance the dynamics clock to this slot: re-materialize the link
    // view when the epoch moved, refresh the churn mask. A node that
    // goes down loses any pending trigger (its radio heard nothing).
    const SimTime slot_start_us =
        config.start_time_us + static_cast<SimTime>(slot) * chain_slot_us;
    if (config.channel_model != nullptr) view.seek(slot_start_us);
    if (churn != nullptr) {
      for (NodeId i = 0; i < n; ++i) {
        const bool down = churn->is_down(i, slot_start_us);
        scratch.down[i] = down ? 1 : 0;
        if (down) scratch.tx_next[i] = 0;
      }
    }

    // Who transmits this chain slot? Wave-triggered nodes, plus
    // scheduled owners that timed out of the wave. The timeout path uses
    // a randomized backoff (p = 1/2 per slot once timed out): a
    // deterministic timeout can synchronize all stragglers into an
    // everyone-transmits slot in which nobody listens and the flood dies.
    bool any_tx = false;
    scratch.tx_nodes.clear();
    for (NodeId i = 0; i < n; ++i) {
      if (churn != nullptr && scratch.down[i]) {
        scratch.tx_this_slot[i] = 0;
        scratch.received_any[i] = 0;
        continue;
      }
      // The defer draw models missing a *reception-derived* trigger; the
      // initiator's opening transmission is clock-scheduled and immune.
      const bool scheduled_start = (slot == 0 && i == config.initiator);
      const bool wave =
          scratch.tx_next[i] != 0 &&
          (scheduled_start || !rng.next_bool(radio.tx_defer_prob));
      bool timeout = false;
      if (!wave && scratch.scheduled[i] && scratch.timeout_budget[i] > 0 &&
          scratch.silent_slots[i] >= 2 && result.tx_count[i] < config.ntx &&
          rng.next_bool(0.5)) {
        timeout = true;
        --scratch.timeout_budget[i];
      }
      const bool tx =
          (wave || timeout) && result.tx_count[i] < config.ntx;
      scratch.tx_this_slot[i] = tx ? 1 : 0;
      if (tx) {
        any_tx = true;
        scratch.tx_nodes.push_back(i);
      }
      scratch.received_any[i] = 0;
    }
    if (!any_tx) {
      // Quiescence — unless a scheduled owner still has data credit, in
      // which case the provisioned round idles a slot and lets the
      // owner's timeout fire (its backoff draw may simply have deferred).
      bool pending_owner = false;
      for (NodeId i = 0; i < n; ++i) {
        if (churn != nullptr && scratch.down[i]) continue;  // can't inject now
        if (scratch.scheduled[i] && result.tx_count[i] < config.ntx &&
            scratch.timeout_budget[i] > 0) {
          pending_owner = true;
          break;
        }
      }
      if (!pending_owner) break;
    }

    // Listener set is fixed for the whole chain slot (radio state only
    // changes at slot boundaries).
    scratch.listeners.clear();
    for (NodeId i = 0; i < n; ++i) {
      if (scratch.tx_this_slot[i] || !scratch.radio_on[i]) continue;
      if (churn != nullptr && scratch.down[i]) continue;
      scratch.listeners.push_back(i);
    }

    // Sub-slot by sub-slot arbitration. All concurrent copies of entry e
    // carry identical bytes, so this is always the constructive-
    // interference regime of net::ReceptionModel, inlined over the
    // packed transmitter set: a receiver fails only if every audible
    // copy fails, with the correlation knob degrading towards the
    // single-best case (same arithmetic, same RNG draws).
    for (std::size_t e = 0; e < num_entries; ++e) {
      std::fill(scratch.entry_senders.begin(), scratch.entry_senders.end(),
                0);
      std::size_t sender_count = 0;
      for (NodeId i : scratch.tx_nodes) {
        if (bit_test(have_row(i), e)) {
          bit_set(scratch.entry_senders.data(), i);
          ++sender_count;
        }
      }
      if (sender_count == 0) continue;
      for (NodeId r : scratch.listeners) {
        std::size_t heard = 0;
        double fail_product = 1.0;
        double single_prr = 0.0;
        if (sparse_topo) {
          // Sparse tier: only the receiver's stored in-links exist, as
          // word runs over the same ascending-transmitter order the
          // dense row scan visits — the fail_product chain and the RNG
          // draw below are identical either way.
          const double* in_prr = view.in_prr();
          for (const net::AudWord& aw : view.audible_entries(r)) {
            std::uint64_t m = aw.bits & scratch.entry_senders[aw.word];
            while (m != 0) {
              const std::uint64_t low = m & (~m + 1);
              m &= m - 1;
              const double p =
                  in_prr[aw.prr_off +
                         static_cast<std::size_t>(
                             std::popcount(aw.bits & (low - 1)))];
              ++heard;
              fail_product *= (1.0 - p);
              single_prr = p;
            }
          }
        } else {
          const std::uint64_t* audible = view.audible_words(r);
          const double* prr_in = view.prr_into(r);
          // Scan the sender/audibility masks four words per stride: one
          // OR rejects 256 absent transmitters at a time (the common
          // case — sender sets are sparse). Words within a surviving
          // stride are still visited in ascending order, so the
          // fail_product multiply chain — doubles, order-sensitive — is
          // untouched.
          const auto scan_word = [&](std::size_t w, std::uint64_t m) {
            while (m != 0) {
              const std::size_t t =
                  w * 64 + static_cast<std::size_t>(std::countr_zero(m));
              m &= m - 1;
              const double p = prr_in[t];
              ++heard;
              fail_product *= (1.0 - p);
              single_prr = p;
            }
          };
          std::size_t w = 0;
          for (; w + 4 <= nwords; w += 4) {
            const std::uint64_t m0 =
                scratch.entry_senders[w + 0] & audible[w + 0];
            const std::uint64_t m1 =
                scratch.entry_senders[w + 1] & audible[w + 1];
            const std::uint64_t m2 =
                scratch.entry_senders[w + 2] & audible[w + 2];
            const std::uint64_t m3 =
                scratch.entry_senders[w + 3] & audible[w + 3];
            if ((m0 | m1 | m2 | m3) == 0) continue;
            scan_word(w + 0, m0);
            scan_word(w + 1, m1);
            scan_word(w + 2, m2);
            scan_word(w + 3, m3);
          }
          for (; w < nwords; ++w) {
            scan_word(w, scratch.entry_senders[w] & audible[w]);
          }
        }
        if (heard == 0) continue;
        const double success_prob =
            heard == 1     ? single_prr
            : corr_is_one ? 1.0 - fail_product
                           : 1.0 - std::pow(fail_product, inv_corr);
        if (rng.next_bool(success_prob)) {
          scratch.received_any[r] = 1;
          if (!bit_test(have_row(r), e)) {
            bit_set(have_row(r), e);
            result.rx_slot[r][e] = static_cast<std::int32_t>(slot);
          }
        }
      }
    }

    // Accounting: transmitters spend the chain slot sending the filled
    // sub-slots and guard-listening the rest; listeners spend the whole
    // chain slot in RX.
    for (NodeId i : scratch.tx_nodes) {
      result.radio_on_us[i] += chain_slot_us;
      ++result.tx_count[i];
    }
    for (NodeId r : scratch.listeners) {
      result.radio_on_us[r] += chain_slot_us;
    }

    // Completion tracking and (optionally) early radio shutdown. Down
    // nodes are skipped: their bitmap cannot have changed, and a crashed
    // radio cannot be switched "more off".
    for (NodeId i = 0; i < n; ++i) {
      if (is_disabled(i)) continue;
      if (churn != nullptr && scratch.down[i]) continue;
      if (result.done_slot[i] == MiniCastResult::kNever &&
          done_fn(i, BitView(have_row(i), num_entries))) {
        result.done_slot[i] = static_cast<std::int32_t>(slot);
      }
      if (config.radio_policy == RadioPolicy::kEarlyOff &&
          scratch.radio_on[i] && result.tx_count[i] >= config.ntx &&
          result.done_slot[i] != MiniCastResult::kNever) {
        scratch.radio_on[i] = 0;
      }
    }

    // Glossy trigger rule: transmit next chain slot iff received in this
    // one. (Transmitters received nothing — half duplex.)
    for (NodeId i = 0; i < n; ++i) {
      scratch.tx_next[i] = scratch.received_any[i];
      if (scratch.tx_this_slot[i] || scratch.received_any[i]) {
        scratch.silent_slots[i] = 0;
      } else {
        ++scratch.silent_slots[i];
      }
    }
  }

  result.chain_slots_used = slot;
  result.duration_us = static_cast<SimTime>(slot) * chain_slot_us;
}

}  // namespace mpciot::ct
