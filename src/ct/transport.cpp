#include "ct/transport.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mpciot::ct {

namespace {

std::function<bool(NodeId, BitView)> done_or_default(
    const MiniCastConfig& config) {
  return config.done ? config.done
                     : [](NodeId, BitView have) { return have.all(); };
}

/// The paper's substrate: MiniCast chains with Glossy as the
/// single-entry special case.
class MiniCastTransport : public Transport {
 public:
  const char* name() const override { return "minicast"; }

  GlossyResult flood(const net::Topology& topo, const GlossyConfig& config,
                     crypto::Xoshiro256& rng,
                     RoundContext* scratch) const override {
    return run_glossy(topo, config, rng, scratch);
  }

  MiniCastResult chain_round(const net::Topology& topo,
                             const std::vector<ChainEntry>& entries,
                             const MiniCastConfig& config,
                             crypto::Xoshiro256& rng,
                             RoundContext* scratch) const override {
    if (scratch != nullptr) {
      return run_minicast(topo, entries, config, rng, *scratch);
    }
    return run_minicast(topo, entries, config, rng);
  }

  void flood_into(const net::Topology& topo, const GlossyConfig& config,
                  crypto::Xoshiro256& rng, RoundContext* scratch,
                  GlossyResult& out) const override {
    if (scratch != nullptr) {
      run_glossy_into(topo, config, rng, *scratch, out);
    } else {
      out = run_glossy(topo, config, rng, nullptr);
    }
  }

  void chain_round_into(const net::Topology& topo,
                        const std::vector<ChainEntry>& entries,
                        const MiniCastConfig& config, crypto::Xoshiro256& rng,
                        RoundContext* scratch,
                        MiniCastResult& out) const override {
    if (scratch != nullptr) {
      run_minicast_into(topo, entries, config, rng, *scratch, out);
    } else {
      out = run_minicast(topo, entries, config, rng);
    }
  }
};

/// LWB-style baseline: every entry pays a full sequential Glossy flood
/// from its origin — no chaining, so airtime and radio-on scale with
/// the entry count times the flood cost.
class GlossyFloodsTransport : public Transport {
 public:
  const char* name() const override { return "glossy_floods"; }

  GlossyResult flood(const net::Topology& topo, const GlossyConfig& config,
                     crypto::Xoshiro256& rng,
                     RoundContext* scratch) const override {
    return run_glossy(topo, config, rng, scratch);
  }

  MiniCastResult chain_round(const net::Topology& topo,
                             const std::vector<ChainEntry>& entries,
                             const MiniCastConfig& config,
                             crypto::Xoshiro256& rng,
                             RoundContext* scratch) const override {
    const std::size_t n = topo.size();
    const std::size_t num_entries = entries.size();
    MPCIOT_REQUIRE(num_entries > 0, "glossy_floods: empty chain");
    const auto is_disabled = [&](NodeId i) {
      return !config.disabled.empty() && config.disabled[i] != 0;
    };
    const auto done_fn = done_or_default(config);

    MiniCastResult result;
    result.rx_slot.assign(n, std::vector<std::int32_t>(
                                 num_entries, MiniCastResult::kNever));
    result.tx_count.assign(n, 0);
    result.done_slot.assign(n, MiniCastResult::kNever);
    result.radio_on_us.assign(n, 0);
    result.chain_slot_us = topo.radio().subslot_us(config.payload_bytes);
    result.channel = config.channel;

    const std::size_t words = (num_entries + 63) / 64;
    std::vector<std::uint64_t> have(n * words, 0);
    const auto have_row = [&](NodeId i) { return have.data() + i * words; };
    for (std::size_t e = 0; e < num_entries; ++e) {
      bit_set(have_row(entries[e].origin), e);
      result.rx_slot[entries[e].origin][e] = MiniCastResult::kOwnEntry;
    }
    const auto down_at = [&](NodeId i, SimTime t) {
      return config.liveness != nullptr && config.liveness->is_down(i, t);
    };
    for (NodeId i = 0; i < n; ++i) {
      if (is_disabled(i) || down_at(i, config.start_time_us)) continue;
      if (done_fn(i, BitView(have_row(i), num_entries))) {
        result.done_slot[i] = 0;
      }
    }

    RoundContext local;
    RoundContext& ctx = scratch != nullptr ? *scratch : local;
    std::uint32_t slots_so_far = 0;
    for (std::size_t e = 0; e < num_entries; ++e) {
      MiniCastConfig flood_cfg;
      flood_cfg.initiator = entries[e].origin;
      flood_cfg.channel = config.channel;
      flood_cfg.ntx = config.ntx;
      flood_cfg.payload_bytes = config.payload_bytes;
      flood_cfg.max_chain_slots = config.max_chain_slots;
      flood_cfg.radio_policy = config.radio_policy;
      flood_cfg.disabled = config.disabled;
      // Each entry's flood starts where the previous one ended on the
      // trial clock, so dynamics epochs line up across the sequence.
      flood_cfg.start_time_us = config.start_time_us + result.duration_us;
      flood_cfg.channel_model = config.channel_model;
      flood_cfg.liveness = config.liveness;
      // A dead origin's flood never starts (its entry is simply lost);
      // run_minicast quiesces immediately without consuming randomness.
      const std::vector<ChainEntry> one{ChainEntry{entries[e].origin}};
      const MiniCastResult sub = run_minicast(topo, one, flood_cfg, rng, ctx);

      for (NodeId r = 0; r < n; ++r) {
        if (sub.rx_slot[r][0] >= 0) {
          result.rx_slot[r][e] = static_cast<std::int32_t>(
              slots_so_far + static_cast<std::uint32_t>(sub.rx_slot[r][0]));
          bit_set(have_row(r), e);
        }
        result.tx_count[r] += sub.tx_count[r];
        result.radio_on_us[r] += sub.radio_on_us[r];
      }
      slots_so_far += sub.chain_slots_used;
      result.duration_us += sub.duration_us;

      const std::int32_t now_slot =
          slots_so_far == 0 ? 0 : static_cast<std::int32_t>(slots_so_far - 1);
      for (NodeId i = 0; i < n; ++i) {
        if (is_disabled(i)) continue;
        if (down_at(i, config.start_time_us + result.duration_us)) continue;
        if (result.done_slot[i] == MiniCastResult::kNever &&
            done_fn(i, BitView(have_row(i), num_entries))) {
          result.done_slot[i] = now_slot;
        }
      }
    }
    result.chain_slots_used = slots_so_far;
    return result;
  }
};

}  // namespace

GlossyResult GossipTransport::flood(const net::Topology& topo,
                                    const GlossyConfig& config,
                                    crypto::Xoshiro256& rng,
                                    RoundContext* /*scratch*/) const {
  MiniCastConfig mc;
  mc.initiator = config.initiator;
  mc.channel = config.channel;
  mc.ntx = config.ntx;
  mc.payload_bytes = config.payload_bytes;
  mc.max_chain_slots = config.max_slots;
  // Flood completion is per node: leave the round once the packet is in.
  mc.radio_policy = RadioPolicy::kEarlyOff;
  mc.start_time_us = config.start_time_us;
  mc.channel_model = config.channel_model;
  mc.liveness = config.liveness;
  const std::vector<ChainEntry> entries{ChainEntry{config.initiator}};
  const MiniCastResult r = run_gossip(topo, entries, mc, params_, rng);

  GlossyResult out;
  out.first_rx_slot.reserve(r.rx_slot.size());
  for (const auto& row : r.rx_slot) out.first_rx_slot.push_back(row[0]);
  out.tx_count = r.tx_count;
  out.radio_on_us = r.radio_on_us;
  out.slots_used = r.chain_slots_used;
  out.duration_us = r.duration_us;
  out.channel = r.channel;
  return out;
}

MiniCastResult GossipTransport::chain_round(
    const net::Topology& topo, const std::vector<ChainEntry>& entries,
    const MiniCastConfig& config, crypto::Xoshiro256& rng,
    RoundContext* /*scratch*/) const {
  return run_gossip(topo, entries, config, params_, rng);
}

GlossyResult UnicastTransport::flood(const net::Topology& topo,
                                     const GlossyConfig& config,
                                     crypto::Xoshiro256& rng,
                                     RoundContext* /*scratch*/) const {
  const std::size_t n = topo.size();
  const net::routing::HopTiming timing =
      net::routing::hop_timing(topo.radio(), config.payload_bytes, mac_);
  net::ChannelView view;
  net::routing::WalkEnv env;
  const net::routing::WalkEnv* envp = nullptr;
  if (config.channel_model != nullptr || config.liveness != nullptr) {
    view.bind(topo, config.channel_model);
    env.base_us = config.start_time_us;
    env.view = config.channel_model != nullptr ? &view : nullptr;
    env.liveness = config.liveness;
    envp = &env;
  }

  GlossyResult out;
  out.channel = config.channel;
  out.first_rx_slot.assign(n, MiniCastResult::kNever);
  out.first_rx_slot[config.initiator] = MiniCastResult::kOwnEntry;
  out.tx_count.assign(n, 0);
  out.radio_on_us.assign(n, 0);
  SimTime elapsed = 0;
  for (NodeId dst = 0; dst < n; ++dst) {
    if (dst == config.initiator) continue;
    if (net::routing::walk_route(topo, config.initiator, dst, timing,
                                 mac_.max_retries_per_hop, rng,
                                 out.radio_on_us, elapsed, &out.tx_count,
                                 nullptr, envp)) {
      out.first_rx_slot[dst] =
          static_cast<std::int32_t>(elapsed / kMillisecond);
    }
  }
  out.duration_us = elapsed;
  out.slots_used = static_cast<std::uint32_t>(elapsed / kMillisecond);
  return out;
}

MiniCastResult UnicastTransport::chain_round(
    const net::Topology& topo, const std::vector<ChainEntry>& entries,
    const MiniCastConfig& config, crypto::Xoshiro256& rng,
    RoundContext* /*scratch*/) const {
  const std::size_t n = topo.size();
  const std::size_t num_entries = entries.size();
  MPCIOT_REQUIRE(num_entries > 0, "unicast transport: empty chain");
  const auto is_disabled = [&](NodeId i) {
    return !config.disabled.empty() && config.disabled[i] != 0;
  };
  const auto done_fn = done_or_default(config);
  const net::routing::HopTiming timing =
      net::routing::hop_timing(topo.radio(), config.payload_bytes, mac_);
  net::ChannelView view;
  net::routing::WalkEnv env;
  const net::routing::WalkEnv* envp = nullptr;
  if (config.channel_model != nullptr || config.liveness != nullptr) {
    view.bind(topo, config.channel_model);
    env.base_us = config.start_time_us;
    env.view = config.channel_model != nullptr ? &view : nullptr;
    env.liveness = config.liveness;
    envp = &env;
  }

  MiniCastResult result;
  result.rx_slot.assign(n, std::vector<std::int32_t>(
                               num_entries, MiniCastResult::kNever));
  result.tx_count.assign(n, 0);
  result.done_slot.assign(n, MiniCastResult::kNever);
  result.radio_on_us.assign(n, 0);
  result.channel = config.channel;
  // Routed delivery has no TDMA slot grid; report rx/done positions as
  // cumulative elapsed milliseconds so latency math stays meaningful.
  result.chain_slot_us = kMillisecond;

  const std::size_t words = (num_entries + 63) / 64;
  std::vector<std::uint64_t> have(n * words, 0);
  const auto have_row = [&](NodeId i) { return have.data() + i * words; };
  for (std::size_t e = 0; e < num_entries; ++e) {
    bit_set(have_row(entries[e].origin), e);
    result.rx_slot[entries[e].origin][e] = MiniCastResult::kOwnEntry;
  }
  // Down nodes' done stamps are deferred until they are up, matching
  // the chain engines' convention.
  const auto down_at = [&](NodeId i, SimTime t) {
    return config.liveness != nullptr &&
           config.liveness->is_down(i, config.start_time_us + t);
  };
  for (NodeId i = 0; i < n; ++i) {
    if (is_disabled(i) || down_at(i, 0)) continue;
    if (done_fn(i, BitView(have_row(i), num_entries))) {
      result.done_slot[i] = 0;
    }
  }

  SimTime elapsed = 0;
  const std::vector<char>* blocked =
      config.disabled.empty() ? nullptr : &config.disabled;
  const auto deliver = [&](std::size_t e, NodeId origin, NodeId dst) {
    if (dst == origin || is_disabled(dst)) return;
    if (net::routing::walk_route(topo, origin, dst, timing,
                                 mac_.max_retries_per_hop, rng,
                                 result.radio_on_us, elapsed,
                                 &result.tx_count, blocked, envp)) {
      if (!bit_test(have_row(dst), e)) {
        bit_set(have_row(dst), e);
        result.rx_slot[dst][e] =
            static_cast<std::int32_t>(elapsed / kMillisecond);
      }
    }
  };

  for (std::size_t e = 0; e < num_entries; ++e) {
    const NodeId origin = entries[e].origin;
    if (is_disabled(origin)) continue;  // dead sources never send
    if (entries[e].destination != kInvalidNode) {
      deliver(e, origin, entries[e].destination);
    } else {
      for (NodeId dst = 0; dst < n; ++dst) deliver(e, origin, dst);
    }
    const std::int32_t now_ms =
        static_cast<std::int32_t>(elapsed / kMillisecond);
    for (NodeId i = 0; i < n; ++i) {
      if (is_disabled(i) || down_at(i, elapsed)) continue;
      if (result.done_slot[i] == MiniCastResult::kNever &&
          done_fn(i, BitView(have_row(i), num_entries))) {
        result.done_slot[i] = now_ms;
      }
    }
  }
  result.duration_us = elapsed;
  result.chain_slots_used = static_cast<std::uint32_t>(elapsed / kMillisecond);
  return result;
}

ChannelTimeline::ChannelTimeline(std::uint16_t num_channels)
    : end_(num_channels, 0) {
  MPCIOT_REQUIRE(num_channels >= 1,
                 "ChannelTimeline: need at least one channel");
}

SimTime ChannelTimeline::book(std::uint16_t channel, SimTime duration_us,
                              SimTime earliest_us) {
  MPCIOT_REQUIRE(channel < end_.size(),
                 "ChannelTimeline: channel out of range");
  MPCIOT_REQUIRE(duration_us >= 0 && earliest_us >= 0,
                 "ChannelTimeline: negative time");
  const SimTime start = std::max(end_[channel], earliest_us);
  end_[channel] = start + duration_us;
  return start;
}

SimTime ChannelTimeline::channel_end_us(std::uint16_t channel) const {
  MPCIOT_REQUIRE(channel < end_.size(),
                 "ChannelTimeline: channel out of range");
  return end_[channel];
}

SimTime ChannelTimeline::end_us() const {
  return *std::max_element(end_.begin(), end_.end());
}

void ChannelTimeline::reset() { std::fill(end_.begin(), end_.end(), 0); }

void ChannelTimeline::resize(std::uint16_t num_channels) {
  end_.assign(num_channels, 0);
}

const Transport& minicast_transport() {
  static const MiniCastTransport instance;
  return instance;
}

std::unique_ptr<Transport> make_transport(const std::string& name) {
  if (name == "minicast") return std::make_unique<MiniCastTransport>();
  if (name == "glossy_floods") {
    return std::make_unique<GlossyFloodsTransport>();
  }
  if (name == "gossip") return std::make_unique<GossipTransport>();
  if (name == "unicast") return std::make_unique<UnicastTransport>();
  MPCIOT_REQUIRE(false, "make_transport: unknown transport name");
  return nullptr;  // unreachable
}

std::vector<std::string> transport_names() {
  return {"minicast", "glossy_floods", "gossip", "unicast"};
}

}  // namespace mpciot::ct
