// Chain layout construction for the two SSS phases.
//
// The sharing phase of naive SSS (S3) needs one sub-slot per
// (source, destination) pair — the O(n^2) chain §II calls out. The
// scalable variant (S4) trims this to one sub-slot per
// (source, share-holder) pair, O(n·m) with m = k+1+slack. The
// reconstruction phase needs one sub-slot per point-sum holder.
//
// The schedule is a pure function of the participant lists, so every
// node derives the identical chain layout locally — the property TDMA
// requires.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "ct/minicast.hpp"

namespace mpciot::ct {

/// Sharing-phase chain: for each source (in order) one entry per
/// destination (in order). Entry index = src_idx * destinations.size()
/// + dst_idx; the origin of every entry is the *source* (it injects the
/// encrypted share destined for the destination).
struct SharingSchedule {
  std::vector<ChainEntry> entries;
  std::vector<NodeId> sources;
  std::vector<NodeId> destinations;

  std::size_t entry_index(std::size_t src_idx, std::size_t dst_idx) const {
    return src_idx * destinations.size() + dst_idx;
  }
  std::size_t size() const { return entries.size(); }
};

SharingSchedule make_sharing_schedule(const std::vector<NodeId>& sources,
                                      const std::vector<NodeId>& destinations);

/// Reconstruction-phase chain: one entry per point-sum holder, in order.
struct ReconstructionSchedule {
  std::vector<ChainEntry> entries;
  std::vector<NodeId> holders;

  std::size_t entry_index(std::size_t holder_idx) const { return holder_idx; }
  std::size_t size() const { return entries.size(); }
};

ReconstructionSchedule make_reconstruction_schedule(
    const std::vector<NodeId>& holders);

}  // namespace mpciot::ct
