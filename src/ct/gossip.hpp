// Lossy slotted gossip: a non-CT broadcast baseline for the transport
// seam. Where MiniCast packs all entries into one synchronized TDMA
// chain, gossip sends ONE entry per slot per transmitter, chosen
// round-robin from what the node holds, with a per-slot transmission
// probability — the classic push-gossip dissemination pattern on a
// shared channel. Concurrent transmitters usually carry *different*
// entries, so reception runs through the capture regime of
// net::ReceptionModel instead of constructive interference; collisions
// are real, which is exactly the cost CT chains avoid.
//
// Budget: a node transmits each entry at most `ntx` times (mirroring
// MiniCast's per-chain NTX). Under kEarlyOff a node leaves the
// protocol — radio off, no more relaying — once its `done` predicate
// holds AND it has fully spent its send budget on data it actually
// held, so owners always inject first (MiniCast's "NTX spent" rule);
// done nodes holding nothing yet stay on as relays-in-waiting. Under
// kUntilQuiescence everyone keeps relaying until the round ends. The
// round ends when nobody is eligible to transmit or at the sub-slot
// cap.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/prng.hpp"
#include "ct/minicast.hpp"
#include "net/topology.hpp"

namespace mpciot::ct {

struct GossipParams {
  /// Per-slot transmission probability of a node holding sendable data.
  double tx_prob = 0.35;
  /// Sub-slot cap as a multiple of the entry count (a MiniCast chain
  /// slot is `entries` sub-slots, so this compares 1:1 with
  /// MiniCastConfig::max_chain_slots).
  std::uint32_t max_slot_factor = 64;
};

/// Run one gossip round. Reuses MiniCastConfig for the shared knobs
/// (ntx = per-entry budget, payload_bytes, radio_policy, done, disabled;
/// initiator/scheduled_owners/max_chain_slots are ignored — gossip needs
/// no trigger wave). Results use the common chain-round schema with one
/// sub-slot per slot: chain_slot_us == subslot_us(payload).
MiniCastResult run_gossip(const net::Topology& topo,
                          const std::vector<ChainEntry>& entries,
                          const MiniCastConfig& config,
                          const GossipParams& params,
                          crypto::Xoshiro256& rng);

}  // namespace mpciot::ct
