#include "ct/glossy.hpp"

namespace mpciot::ct {

double GlossyResult::coverage() const {
  if (first_rx_slot.size() <= 1) return 1.0;
  std::size_t received = 0;
  std::size_t total = 0;
  for (std::int32_t s : first_rx_slot) {
    if (s == MiniCastResult::kOwnEntry) continue;  // initiator
    ++total;
    if (s != MiniCastResult::kNever) ++received;
  }
  return total == 0 ? 1.0 : static_cast<double>(received) /
                                static_cast<double>(total);
}

GlossyResult run_glossy(const net::Topology& topo, const GlossyConfig& config,
                        crypto::Xoshiro256& rng, RoundContext* scratch) {
  MiniCastConfig mc;
  mc.initiator = config.initiator;
  mc.channel = config.channel;
  mc.ntx = config.ntx;
  mc.payload_bytes = config.payload_bytes;
  mc.max_chain_slots = config.max_slots;
  mc.radio_policy = RadioPolicy::kUntilQuiescence;
  mc.start_time_us = config.start_time_us;
  mc.channel_model = config.channel_model;
  mc.liveness = config.liveness;

  const std::vector<ChainEntry> entries{ChainEntry{config.initiator}};
  const MiniCastResult r = scratch != nullptr
                               ? run_minicast(topo, entries, mc, rng, *scratch)
                               : run_minicast(topo, entries, mc, rng);

  GlossyResult out;
  out.first_rx_slot.reserve(r.rx_slot.size());
  for (const auto& row : r.rx_slot) out.first_rx_slot.push_back(row[0]);
  out.tx_count = r.tx_count;
  out.radio_on_us = r.radio_on_us;
  out.slots_used = r.chain_slots_used;
  out.duration_us = r.duration_us;
  out.channel = r.channel;
  return out;
}

void run_glossy_into(const net::Topology& topo, const GlossyConfig& config,
                     crypto::Xoshiro256& rng, RoundContext& scratch,
                     GlossyResult& out) {
  MiniCastConfig mc;
  mc.initiator = config.initiator;
  mc.channel = config.channel;
  mc.ntx = config.ntx;
  mc.payload_bytes = config.payload_bytes;
  mc.max_chain_slots = config.max_slots;
  mc.radio_policy = RadioPolicy::kUntilQuiescence;
  mc.start_time_us = config.start_time_us;
  mc.channel_model = config.channel_model;
  mc.liveness = config.liveness;

  scratch.flood_entries.assign(1, ChainEntry{config.initiator});
  MiniCastResult& r = scratch.flood_tmp;
  run_minicast_into(topo, scratch.flood_entries, mc, rng, scratch, r);

  out.first_rx_slot.clear();
  out.first_rx_slot.reserve(r.rx_slot.size());
  for (const auto& row : r.rx_slot) out.first_rx_slot.push_back(row[0]);
  out.tx_count = r.tx_count;
  out.radio_on_us = r.radio_on_us;
  out.slots_used = r.chain_slots_used;
  out.duration_us = r.duration_us;
  out.channel = r.channel;
}

}  // namespace mpciot::ct
