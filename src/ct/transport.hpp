// The transport seam: one interface over every communication substrate
// the aggregation protocols can run on.
//
// A transport provides the two primitives the paper's round structure
// needs — a one-to-all synchronization *flood* and a many-to-many
// *chain round* over a TDMA-style entry schedule — and returns the
// common result views (GlossyResult / MiniCastResult). core::protocol,
// core::bootstrap and core::unicast_baseline are written against this
// seam, so a new workload means registering a transport, not editing
// the protocol engine.
//
// Registered substrates:
//   * "minicast"      — MiniCast chains, Glossy sync floods (the paper's
//                       substrate; the default everywhere).
//   * "glossy_floods" — one sequential Glossy flood per entry, LWB
//                       style: no chaining, every packet pays its own
//                       flood.
//   * "gossip"        — lossy slotted push-gossip; one entry per slot,
//                       collisions resolved by capture (see gossip.hpp).
//   * "unicast"       — routed stop-and-wait unicast over good links
//                       (the duty-cycled baseline; honours per-entry
//                       destinations).
//
// Transports are stateless and thread-safe: concurrent trials may share
// one instance. Callers running many rounds can pass a RoundContext to
// chain_round to reuse scratch allocations where the substrate supports
// it.
//
// Every substrate honours the dynamics seams in its config
// (start_time_us + channel_model + liveness, see MiniCastConfig): link
// tables are queried per slot through an epoch-cached net::ChannelView
// and churn-down nodes fall silent mid-round. With the seams unset the
// substrates consume exactly the static RNG stream — frozen-topology
// results are byte-identical.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crypto/prng.hpp"
#include "ct/glossy.hpp"
#include "ct/gossip.hpp"
#include "ct/minicast.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace mpciot::ct {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Registry name (see the list above).
  virtual const char* name() const = 0;

  /// One-to-all synchronization flood from config.initiator. `scratch`
  /// follows the chain_round contract below; substrates that keep no
  /// per-round state ignore it.
  virtual GlossyResult flood(const net::Topology& topo,
                             const GlossyConfig& config,
                             crypto::Xoshiro256& rng,
                             RoundContext* scratch = nullptr) const = 0;

  /// One many-to-many round over the chain `entries`. `scratch`, when
  /// non-null, lets the substrate reuse per-round allocations; passing
  /// the same context from concurrent threads is the caller's bug.
  virtual MiniCastResult chain_round(const net::Topology& topo,
                                     const std::vector<ChainEntry>& entries,
                                     const MiniCastConfig& config,
                                     crypto::Xoshiro256& rng,
                                     RoundContext* scratch = nullptr) const = 0;

  /// Result-reusing variants for streaming callers (core::Session): the
  /// substrate writes into caller-owned results whose buffers persist
  /// across rounds. The default implementations fall back to the
  /// allocating primitives above; the MiniCast substrate overrides them
  /// with genuinely allocation-free engines, so a warmed-up session
  /// round performs zero heap allocations on the paper's substrate.
  virtual void flood_into(const net::Topology& topo,
                          const GlossyConfig& config, crypto::Xoshiro256& rng,
                          RoundContext* scratch, GlossyResult& out) const {
    out = flood(topo, config, rng, scratch);
  }
  virtual void chain_round_into(const net::Topology& topo,
                                const std::vector<ChainEntry>& entries,
                                const MiniCastConfig& config,
                                crypto::Xoshiro256& rng, RoundContext* scratch,
                                MiniCastResult& out) const {
    out = chain_round(topo, entries, config, rng, scratch);
  }
};

/// Time overlay for rounds running on orthogonal radio channels.
///
/// The chain engines simulate one round in isolation; when a composition
/// layer (e.g. core::HierarchicalProtocol) runs many rounds "at the same
/// time", rounds on distinct channels genuinely overlap while rounds
/// sharing a channel contend and must be serialized. ChannelTimeline
/// does that bookkeeping: book() appends a round to its channel's
/// timeline and returns the start offset; end_us() is the makespan over
/// all channels.
class ChannelTimeline {
 public:
  explicit ChannelTimeline(std::uint16_t num_channels);

  /// Reserve `duration_us` on `channel`, starting at the later of the
  /// channel's current end and `earliest_us` (e.g. a dependency on an
  /// earlier phase). Returns the booked start time.
  SimTime book(std::uint16_t channel, SimTime duration_us,
               SimTime earliest_us = 0);

  std::uint16_t num_channels() const {
    return static_cast<std::uint16_t>(end_.size());
  }
  SimTime channel_end_us(std::uint16_t channel) const;
  /// Makespan: when the busiest channel goes quiet.
  SimTime end_us() const;
  /// Clear every channel back to t=0, keeping the allocation — lets a
  /// streaming campaign reuse one timeline across trials.
  void reset();
  /// Re-shape to `num_channels` channels, all cleared to t=0 (the
  /// allocation is kept unless the channel count grows).
  void resize(std::uint16_t num_channels);

 private:
  std::vector<SimTime> end_;
};

/// The paper's substrate (MiniCast chains + Glossy floods), shared
/// process-wide. What every seam consumer defaults to when handed no
/// transport.
const Transport& minicast_transport();

/// Instantiate a registered substrate by name; throws ContractViolation
/// for unknown names. `gossip` / `unicast` take their tuning from
/// GossipParams / net::routing::MacParams defaults; construct
/// GossipTransport / UnicastTransport directly to override.
std::unique_ptr<Transport> make_transport(const std::string& name);

/// Names accepted by make_transport, in registry order.
std::vector<std::string> transport_names();

/// Lossy slotted push-gossip substrate (see gossip.hpp).
class GossipTransport : public Transport {
 public:
  explicit GossipTransport(GossipParams params = {}) : params_(params) {}
  const char* name() const override { return "gossip"; }
  GlossyResult flood(const net::Topology& topo, const GlossyConfig& config,
                     crypto::Xoshiro256& rng,
                     RoundContext* scratch) const override;
  MiniCastResult chain_round(const net::Topology& topo,
                             const std::vector<ChainEntry>& entries,
                             const MiniCastConfig& config,
                             crypto::Xoshiro256& rng,
                             RoundContext* scratch) const override;

 private:
  GossipParams params_;
};

/// Routed stop-and-wait unicast substrate over net::routing. Entries
/// with a destination go point-to-point; broadcast entries
/// (destination == kInvalidNode) are delivered to every node in turn.
/// Results use chain_slot_us == 1 ms, with rx/done "slots" being
/// cumulative elapsed milliseconds.
class UnicastTransport : public Transport {
 public:
  explicit UnicastTransport(net::routing::MacParams mac = {}) : mac_(mac) {}
  const char* name() const override { return "unicast"; }
  GlossyResult flood(const net::Topology& topo, const GlossyConfig& config,
                     crypto::Xoshiro256& rng,
                     RoundContext* scratch) const override;
  MiniCastResult chain_round(const net::Topology& topo,
                             const std::vector<ChainEntry>& entries,
                             const MiniCastConfig& config,
                             crypto::Xoshiro256& rng,
                             RoundContext* scratch) const override;

 private:
  net::routing::MacParams mac_;
};

}  // namespace mpciot::ct
