// Glossy (Ferrari et al., IPSN 2011): one-to-all concurrent-transmission
// flooding. In this library Glossy is the single-entry special case of
// the MiniCast chain engine — the trigger rule, NTX budget and timing are
// identical, so modelling it once keeps the two protocols consistent.
//
// Used directly by the bootstrapping phase (initiator election, NTX
// calibration) and by the NTX-vs-coverage bench that reproduces the
// non-linear behaviour §III exploits.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "crypto/prng.hpp"
#include "ct/minicast.hpp"
#include "net/topology.hpp"

namespace mpciot::ct {

struct GlossyConfig {
  NodeId initiator = 0;
  /// Radio channel (orthogonality metadata; see MiniCastConfig::channel).
  std::uint16_t channel = 0;
  std::uint32_t ntx = 3;
  std::uint32_t payload_bytes = 16;
  std::uint32_t max_slots = 256;
  /// Dynamics seams, mirroring MiniCastConfig: flood start on the trial
  /// clock, time-varying channel, and node churn. All default to the
  /// static world.
  SimTime start_time_us = 0;
  const net::ChannelModel* channel_model = nullptr;
  const net::LivenessModel* liveness = nullptr;
};

struct GlossyResult {
  /// Slot of first reception per node (kNever if missed; kOwnEntry for
  /// the initiator).
  std::vector<std::int32_t> first_rx_slot;
  std::vector<std::uint32_t> tx_count;
  std::vector<SimTime> radio_on_us;
  std::uint32_t slots_used = 0;
  SimTime duration_us = 0;
  /// Channel the flood ran on (echoed from the config).
  std::uint16_t channel = 0;

  /// Fraction of non-initiator nodes that received the flood.
  double coverage() const;
};

/// Run one Glossy flood. `scratch`, when non-null, reuses per-round
/// allocations and continues an epoch-walked channel view across
/// rounds (see RoundContext / ChannelView).
GlossyResult run_glossy(const net::Topology& topo, const GlossyConfig& config,
                        crypto::Xoshiro256& rng,
                        RoundContext* scratch = nullptr);

/// As above, writing into a caller-owned result. The one-entry chain and
/// the intermediate chain result live in `scratch`, so a warmed-up flood
/// performs zero heap allocations.
void run_glossy_into(const net::Topology& topo, const GlossyConfig& config,
                     crypto::Xoshiro256& rng, RoundContext& scratch,
                     GlossyResult& out);

}  // namespace mpciot::ct
