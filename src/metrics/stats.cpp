#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace mpciot::metrics {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_samples_.clear();
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  MPCIOT_REQUIRE(!samples_.empty(), "Summary: no samples");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  MPCIOT_REQUIRE(!samples_.empty(), "Summary: no samples");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::quantile(double q) const {
  MPCIOT_REQUIRE(!samples_.empty(), "Summary: no samples");
  MPCIOT_REQUIRE(q >= 0.0 && q <= 1.0, "Summary: quantile out of range");
  if (sorted_samples_.size() != samples_.size()) {
    sorted_samples_ = samples_;
    std::sort(sorted_samples_.begin(), sorted_samples_.end());
  }
  if (sorted_samples_.size() == 1) return sorted_samples_[0];
  const double pos = q * static_cast<double>(sorted_samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_samples_[lo] * (1.0 - frac) + sorted_samples_[hi] * frac;
}

double Summary::ci95_halfwidth() const {
  if (samples_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

}  // namespace mpciot::metrics
