#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/assert.hpp"

namespace mpciot::metrics {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_samples_.clear();
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  MPCIOT_REQUIRE(!samples_.empty(), "Summary: no samples");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  MPCIOT_REQUIRE(!samples_.empty(), "Summary: no samples");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::quantile(double q) const {
  MPCIOT_REQUIRE(!samples_.empty(), "Summary: no samples");
  MPCIOT_REQUIRE(q >= 0.0 && q <= 1.0, "Summary: quantile out of range");
  if (sorted_samples_.size() != samples_.size()) {
    sorted_samples_ = samples_;
    std::sort(sorted_samples_.begin(), sorted_samples_.end());
  }
  if (sorted_samples_.size() == 1) return sorted_samples_[0];
  const double pos = q * static_cast<double>(sorted_samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_samples_[lo] * (1.0 - frac) + sorted_samples_[hi] * frac;
}

double Summary::ci95_halfwidth() const {
  if (samples_.size() < 2) return 0.0;
  // Two-sided 97.5% Student-t critical values for df = n-1 in [1, 29].
  // The normal z = 1.96 understates the interval badly at bench-typical
  // sample sizes (n = 20 reps => t = 2.093, ~7% wider than z). Beyond
  // the table the normal value is used — still ~4% narrow at n = 31
  // and converging as n grows, an accepted approximation.
  static constexpr double kT975[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045};
  const std::size_t n = samples_.size();
  const std::size_t df = n - 1;
  const double critical = df <= std::size(kT975) ? kT975[df - 1] : 1.96;
  return critical * stddev() / std::sqrt(static_cast<double>(n));
}

}  // namespace mpciot::metrics
