#include "metrics/experiment.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "crypto/prng.hpp"
#include "sim/simulator.hpp"

namespace mpciot::metrics {

namespace {

/// Plain per-trial metric record; computed concurrently, folded serially.
struct TrialRecord {
  double latency_max_ms = 0.0;
  double latency_mean_ms = 0.0;
  double radio_on_max_ms = 0.0;
  double radio_on_mean_ms = 0.0;
  double success_ratio = 0.0;
  double share_delivery = 0.0;
  double total_duration_ms = 0.0;
};

TrialRecord run_one_trial(const core::SssProtocol& protocol,
                          const ExperimentSpec& spec, std::uint32_t trial,
                          std::size_t source_count) {
  const std::uint64_t seed = spec.base_seed + trial;
  sim::Simulator sim(seed);
  const std::vector<field::Fp61> secrets =
      spec.make_secrets ? spec.make_secrets(trial, source_count)
                        : random_secrets(seed * 7919 + 13, source_count);
  const core::AggregationResult res = protocol.run(secrets, sim);

  TrialRecord rec;
  rec.latency_max_ms = static_cast<double>(res.max_latency_us()) / 1e3;
  rec.latency_mean_ms = res.mean_latency_us() / 1e3;
  rec.radio_on_max_ms = static_cast<double>(res.max_radio_on_us()) / 1e3;
  rec.radio_on_mean_ms = res.mean_radio_on_us() / 1e3;
  rec.success_ratio = res.success_ratio();
  rec.share_delivery = res.share_delivery_ratio;
  rec.total_duration_ms = static_cast<double>(res.total_duration_us) / 1e3;
  return rec;
}

}  // namespace

std::vector<field::Fp61> random_secrets(std::uint64_t seed, std::size_t count,
                                        std::uint64_t bound) {
  crypto::Xoshiro256 rng(seed);
  std::vector<field::Fp61> secrets;
  secrets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    secrets.emplace_back(rng.next_below(bound));
  }
  return secrets;
}

unsigned resolve_jobs(unsigned jobs, std::uint32_t repetitions) {
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
    if (jobs == 0) jobs = 1;
  }
  if (repetitions > 0 && jobs > repetitions) jobs = repetitions;
  return jobs;
}

TrialStats run_trials(const core::SssProtocol& protocol,
                      const ExperimentSpec& spec) {
  const std::size_t source_count = protocol.config().sources.size();
  const unsigned jobs = resolve_jobs(spec.jobs, spec.repetitions);
  std::vector<TrialRecord> records(spec.repetitions);

  if (jobs <= 1) {
    for (std::uint32_t trial = 0; trial < spec.repetitions; ++trial) {
      records[trial] = run_one_trial(protocol, spec, trial, source_count);
    }
  } else {
    std::atomic<std::uint32_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    const auto worker = [&] {
      for (;;) {
        const std::uint32_t trial = next.fetch_add(1);
        if (trial >= spec.repetitions) return;
        try {
          records[trial] = run_one_trial(protocol, spec, trial, source_count);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // Fold in trial order so the Summary sample vectors — and therefore
  // every derived statistic — match the serial run exactly.
  TrialStats stats;
  for (const TrialRecord& rec : records) {
    stats.latency_max_ms.add(rec.latency_max_ms);
    stats.latency_mean_ms.add(rec.latency_mean_ms);
    stats.radio_on_max_ms.add(rec.radio_on_max_ms);
    stats.radio_on_mean_ms.add(rec.radio_on_mean_ms);
    stats.success_ratio.add(rec.success_ratio);
    stats.share_delivery.add(rec.share_delivery);
    stats.total_duration_ms.add(rec.total_duration_ms);
  }
  return stats;
}

}  // namespace mpciot::metrics
