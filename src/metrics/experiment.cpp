#include "metrics/experiment.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/session.hpp"
#include "crypto/prng.hpp"
#include "sim/simulator.hpp"

namespace mpciot::metrics {

namespace {

/// Plain per-trial metric record; computed concurrently, folded serially.
struct TrialRecord {
  double latency_max_ms = 0.0;
  double latency_mean_ms = 0.0;
  double radio_on_max_ms = 0.0;
  double radio_on_mean_ms = 0.0;
  double success_ratio = 0.0;
  double share_delivery = 0.0;
  double total_duration_ms = 0.0;
};

TrialRecord run_one_trial(const core::SssProtocol& protocol,
                          const ExperimentSpec& spec, std::uint32_t trial,
                          std::size_t source_count) {
  sim::Simulator sim(trial_sim_seed(spec.base_seed, trial));
  const std::vector<field::Fp61> secrets =
      spec.make_secrets
          ? spec.make_secrets(trial, source_count)
          : random_secrets(trial_secret_seed(spec.base_seed, trial),
                           source_count);
  // Fresh per-trial session: trials are independent streams, so each
  // starts at round 0 with cold warm-state — byte-identical to the
  // retired per-trial SssProtocol::run shim.
  core::Session session(protocol);
  const core::AggregationResult& res = *session.run_round(secrets, sim).flat;

  TrialRecord rec;
  rec.latency_max_ms = static_cast<double>(res.max_latency_us()) / 1e3;
  rec.latency_mean_ms = res.mean_latency_us() / 1e3;
  rec.radio_on_max_ms = static_cast<double>(res.max_radio_on_us()) / 1e3;
  rec.radio_on_mean_ms = res.mean_radio_on_us() / 1e3;
  rec.success_ratio = res.success_ratio();
  rec.share_delivery = res.share_delivery_ratio;
  rec.total_duration_ms = static_cast<double>(res.total_duration_us) / 1e3;
  return rec;
}

}  // namespace

std::uint64_t trial_sim_seed(std::uint64_t base_seed, std::uint32_t trial) {
  return crypto::derive_seed(base_seed, /*stream_tag=*/0x7153494Dull /*"qSIM"*/,
                             trial);
}

std::uint64_t trial_secret_seed(std::uint64_t base_seed, std::uint32_t trial) {
  return crypto::derive_seed(base_seed, /*stream_tag=*/0x73454352ull /*"sECR"*/,
                             trial);
}

std::vector<field::Fp61> random_secrets(std::uint64_t seed, std::size_t count,
                                        std::uint64_t bound) {
  crypto::Xoshiro256 rng(seed);
  std::vector<field::Fp61> secrets;
  secrets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    secrets.emplace_back(rng.next_below(bound));
  }
  return secrets;
}

unsigned resolve_jobs(unsigned jobs, std::uint32_t repetitions) {
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
    if (jobs == 0) jobs = 1;
  }
  if (repetitions > 0 && jobs > repetitions) jobs = repetitions;
  return jobs;
}

void parallel_for(std::size_t count, unsigned jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1) {
    for (std::size_t unit = 0; unit < count; ++unit) fn(unit);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t unit = next.fetch_add(1);
      if (unit >= count) return;
      try {
        fn(unit);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

TrialStats run_trials(const core::SssProtocol& protocol,
                      const ExperimentSpec& spec) {
  const std::size_t source_count = protocol.config().sources.size();
  const unsigned jobs = resolve_jobs(spec.jobs, spec.repetitions);
  std::vector<TrialRecord> records(spec.repetitions);
  parallel_for(spec.repetitions, jobs, [&](std::size_t trial) {
    records[trial] = run_one_trial(
        protocol, spec, static_cast<std::uint32_t>(trial), source_count);
  });

  // Fold in trial order so the Summary sample vectors — and therefore
  // every derived statistic — match the serial run exactly.
  TrialStats stats;
  for (const TrialRecord& rec : records) {
    stats.latency_max_ms.add(rec.latency_max_ms);
    stats.latency_mean_ms.add(rec.latency_mean_ms);
    stats.radio_on_max_ms.add(rec.radio_on_max_ms);
    stats.radio_on_mean_ms.add(rec.radio_on_mean_ms);
    stats.success_ratio.add(rec.success_ratio);
    stats.share_delivery.add(rec.share_delivery);
    stats.total_duration_ms.add(rec.total_duration_ms);
  }
  return stats;
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace mpciot::metrics
