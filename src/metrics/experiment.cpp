#include "metrics/experiment.hpp"

#include "crypto/prng.hpp"
#include "sim/simulator.hpp"

namespace mpciot::metrics {

std::vector<field::Fp61> random_secrets(std::uint64_t seed, std::size_t count,
                                        std::uint64_t bound) {
  crypto::Xoshiro256 rng(seed);
  std::vector<field::Fp61> secrets;
  secrets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    secrets.emplace_back(rng.next_below(bound));
  }
  return secrets;
}

TrialStats run_trials(const core::SssProtocol& protocol,
                      const ExperimentSpec& spec) {
  TrialStats stats;
  const std::size_t source_count = protocol.config().sources.size();

  for (std::uint32_t trial = 0; trial < spec.repetitions; ++trial) {
    const std::uint64_t seed = spec.base_seed + trial;
    sim::Simulator sim(seed);
    const std::vector<field::Fp61> secrets =
        spec.make_secrets ? spec.make_secrets(trial, source_count)
                          : random_secrets(seed * 7919 + 13, source_count);
    const core::AggregationResult res = protocol.run(secrets, sim);

    stats.latency_max_ms.add(static_cast<double>(res.max_latency_us()) / 1e3);
    stats.latency_mean_ms.add(res.mean_latency_us() / 1e3);
    stats.radio_on_max_ms.add(static_cast<double>(res.max_radio_on_us()) /
                              1e3);
    stats.radio_on_mean_ms.add(res.mean_radio_on_us() / 1e3);
    stats.success_ratio.add(res.success_ratio());
    stats.share_delivery.add(res.share_delivery_ratio);
    stats.total_duration_ms.add(static_cast<double>(res.total_duration_us) /
                                1e3);
  }
  return stats;
}

}  // namespace mpciot::metrics
