// Summary statistics for repeated-trial experiments.
#pragma once

#include <cstddef>
#include <vector>

namespace mpciot::metrics {

/// Streaming accumulator plus retained samples for quantiles.
///
/// Samples are kept in insertion order; quantiles sort a cached copy.
/// This keeps mean()/stddev() a pure function of the insertion
/// sequence (summation order never changes behind the caller's back),
/// which the parallel experiment engine relies on for its bit-for-bit
/// jobs-invariance guarantee.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Sample standard deviation (n-1); 0 for fewer than 2 samples.
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated quantile, q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  /// Half-width of the 95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

 private:
  std::vector<double> samples_;
  /// Lazily built sorted copy for quantile(); invalidated by add().
  mutable std::vector<double> sorted_samples_;
};

}  // namespace mpciot::metrics
