// Summary statistics for repeated-trial experiments.
#pragma once

#include <cstddef>
#include <vector>

namespace mpciot::metrics {

/// Streaming accumulator plus retained samples for quantiles.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Sample standard deviation (n-1); 0 for fewer than 2 samples.
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated quantile, q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  /// Half-width of the 95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace mpciot::metrics
