// Fixed-width table and CSV emission for the bench harness, so every
// bench binary prints paper-style rows plus a machine-readable copy.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mpciot::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Pretty print with aligned columns.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Format helpers.
  static std::string num(double v, int precision = 1);
  static std::string ms_from_us(double us, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpciot::metrics
