#include "metrics/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace mpciot::metrics {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MPCIOT_REQUIRE(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MPCIOT_REQUIRE(cells.size() == headers_.size(),
                 "Table: row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::ms_from_us(double us, int precision) {
  return num(us / 1000.0, precision);
}

}  // namespace mpciot::metrics
