// Repeated-trial experiment runner: the glue between the protocol engine
// and the paper's evaluation methodology (each point = many iterations
// with fresh randomness; the paper uses 2000, we default lower and let
// callers override).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/protocol.hpp"
#include "metrics/stats.hpp"
#include "net/topology.hpp"

namespace mpciot::metrics {

struct TrialStats {
  Summary latency_max_ms;     // per-trial max node latency
  Summary latency_mean_ms;    // per-trial mean node latency
  Summary radio_on_max_ms;    // per-trial max node radio-on
  Summary radio_on_mean_ms;   // per-trial mean node radio-on
  Summary success_ratio;      // per-trial fraction of correct aggregates
  Summary share_delivery;     // sharing-phase delivery ratio
  Summary total_duration_ms;  // full round duration
};

struct ExperimentSpec {
  std::uint32_t repetitions = 10;
  std::uint64_t base_seed = 1;
  /// Secrets per trial: defaults to uniform random sensor readings in
  /// [0, 2^16) drawn from the trial's DRBG.
  std::function<std::vector<field::Fp61>(std::uint32_t trial,
                                         std::size_t source_count)>
      make_secrets;
};

/// Run `spec.repetitions` aggregation rounds of `protocol` and fold the
/// paper's metrics. Each trial uses seed base_seed + trial.
TrialStats run_trials(const core::SssProtocol& protocol,
                      const ExperimentSpec& spec);

/// Convenience: uniform random secrets in [0, bound).
std::vector<field::Fp61> random_secrets(std::uint64_t seed,
                                        std::size_t count,
                                        std::uint64_t bound = 1u << 16);

}  // namespace mpciot::metrics
