// Repeated-trial experiment runner: the glue between the protocol engine
// and the paper's evaluation methodology (each point = many iterations
// with fresh randomness; the paper uses 2000, we default lower and let
// callers override).
//
// Trials are independent — per-trial seeds come from
// crypto::derive_seed(base_seed, stream, trial), so distinct
// (base_seed, trial) pairs never share a simulation stream — and they
// can run on a worker pool. Determinism is preserved regardless of
// `jobs`: every trial's metrics are computed into a per-trial record and
// folded into the summaries in trial order, so the resulting TrialStats
// are bit-for-bit identical for any job count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/protocol.hpp"
#include "metrics/stats.hpp"
#include "net/topology.hpp"

namespace mpciot::metrics {

struct TrialStats {
  Summary latency_max_ms;     // per-trial max node latency
  Summary latency_mean_ms;    // per-trial mean node latency
  Summary radio_on_max_ms;    // per-trial max node radio-on
  Summary radio_on_mean_ms;   // per-trial mean node radio-on
  Summary success_ratio;      // per-trial fraction of correct aggregates
  Summary share_delivery;     // sharing-phase delivery ratio
  Summary total_duration_ms;  // full round duration
};

struct ExperimentSpec {
  std::uint32_t repetitions = 10;
  std::uint64_t base_seed = 1;
  /// Worker threads for trial execution: 1 = serial (default), 0 = one
  /// worker per hardware thread. Any value yields bit-identical
  /// TrialStats; only wall-clock time changes.
  unsigned jobs = 1;
  /// Secrets per trial: defaults to uniform random sensor readings in
  /// [0, 2^16) drawn from the trial's DRBG. Must be safe to call from
  /// multiple threads when jobs != 1.
  std::function<std::vector<field::Fp61>(std::uint32_t trial,
                                         std::size_t source_count)>
      make_secrets;
};

/// Run `spec.repetitions` aggregation rounds of `protocol` and fold the
/// paper's metrics. Trial t simulates with trial_sim_seed(base_seed, t)
/// and (absent make_secrets) draws secrets from
/// trial_secret_seed(base_seed, t).
TrialStats run_trials(const core::SssProtocol& protocol,
                      const ExperimentSpec& spec);

/// The canonical per-trial seed streams, shared by run_trials and by
/// scenarios that run paired baselines next to it (same trial => same
/// simulated channel and same secrets). Both are collision-free across
/// (base_seed, trial) tuples via crypto::derive_seed.
std::uint64_t trial_sim_seed(std::uint64_t base_seed, std::uint32_t trial);
std::uint64_t trial_secret_seed(std::uint64_t base_seed, std::uint32_t trial);

/// Convenience: uniform random secrets in [0, bound).
std::vector<field::Fp61> random_secrets(std::uint64_t seed,
                                        std::size_t count,
                                        std::uint64_t bound = 1u << 16);

/// Number of worker threads `run_trials` will use for `spec`:
/// jobs == 0 resolves to the hardware concurrency, and the pool never
/// exceeds the trial count.
unsigned resolve_jobs(unsigned jobs, std::uint32_t repetitions);

/// Run fn(0) .. fn(count-1) across `jobs` worker threads (after
/// resolve_jobs; <= 1 runs serially, in order). Units are claimed from
/// an atomic counter, so callers keep the bit-for-bit jobs-invariance
/// guarantee by writing each unit's result to its own slot and folding
/// in unit order afterwards. The first exception thrown by any unit is
/// rethrown after the pool drains; `fn` must be thread-safe for
/// jobs > 1. This is the one fan-out loop behind run_trials and the
/// parallel bench scenarios.
void parallel_for(std::size_t count, unsigned jobs,
                  const std::function<void(std::size_t)>& fn);

/// Peak resident set size of this process in bytes (getrusage
/// ru_maxrss), or 0 where the platform does not report it. A
/// high-water mark, not a current figure — report it on stderr or in
/// sidecar notes, never inside deterministic result documents.
std::uint64_t peak_rss_bytes();

}  // namespace mpciot::metrics
