// Repeated-trial experiment runner: the glue between the protocol engine
// and the paper's evaluation methodology (each point = many iterations
// with fresh randomness; the paper uses 2000, we default lower and let
// callers override).
//
// Trials are independent (per-trial seed = base_seed + trial), so they
// can run on a worker pool. Determinism is preserved regardless of
// `jobs`: every trial's metrics are computed into a per-trial record and
// folded into the summaries in trial order, so the resulting TrialStats
// are bit-for-bit identical for any job count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/protocol.hpp"
#include "metrics/stats.hpp"
#include "net/topology.hpp"

namespace mpciot::metrics {

struct TrialStats {
  Summary latency_max_ms;     // per-trial max node latency
  Summary latency_mean_ms;    // per-trial mean node latency
  Summary radio_on_max_ms;    // per-trial max node radio-on
  Summary radio_on_mean_ms;   // per-trial mean node radio-on
  Summary success_ratio;      // per-trial fraction of correct aggregates
  Summary share_delivery;     // sharing-phase delivery ratio
  Summary total_duration_ms;  // full round duration
};

struct ExperimentSpec {
  std::uint32_t repetitions = 10;
  std::uint64_t base_seed = 1;
  /// Worker threads for trial execution: 1 = serial (default), 0 = one
  /// worker per hardware thread. Any value yields bit-identical
  /// TrialStats; only wall-clock time changes.
  unsigned jobs = 1;
  /// Secrets per trial: defaults to uniform random sensor readings in
  /// [0, 2^16) drawn from the trial's DRBG. Must be safe to call from
  /// multiple threads when jobs != 1.
  std::function<std::vector<field::Fp61>(std::uint32_t trial,
                                         std::size_t source_count)>
      make_secrets;
};

/// Run `spec.repetitions` aggregation rounds of `protocol` and fold the
/// paper's metrics. Each trial uses seed base_seed + trial.
TrialStats run_trials(const core::SssProtocol& protocol,
                      const ExperimentSpec& spec);

/// Convenience: uniform random secrets in [0, bound).
std::vector<field::Fp61> random_secrets(std::uint64_t seed,
                                        std::size_t count,
                                        std::uint64_t bound = 1u << 16);

/// Number of worker threads `run_trials` will use for `spec`:
/// jobs == 0 resolves to the hardware concurrency, and the pool never
/// exceeds the trial count.
unsigned resolve_jobs(unsigned jobs, std::uint32_t repetitions);

}  // namespace mpciot::metrics
