// PrimeField: GF(p) with a runtime modulus p < 2^32.
//
// Used for "wire-size" studies: an IoT deployment that ships 16-bit sensor
// readings can run Shamir over p = 65521 so each share is exactly 2 bytes
// on air. Elements are pairs (value, field*); mixing elements of different
// fields is a contract violation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/assert.hpp"

namespace mpciot::field {

/// A runtime-modulus prime field. Immutable after construction; element
/// handles keep a pointer to it, so the field must outlive its elements.
class PrimeField {
 public:
  /// Construct GF(p). Precondition: p is prime and 2 <= p < 2^32.
  /// Primality is checked (deterministic Miller-Rabin for 32-bit range).
  explicit PrimeField(std::uint64_t p);

  std::uint64_t modulus() const { return p_; }

  /// Deterministic primality test valid for all n < 2^64.
  static bool is_prime(std::uint64_t n);

  std::uint64_t add(std::uint64_t a, std::uint64_t b) const {
    std::uint64_t s = a + b;
    if (s >= p_) s -= p_;
    return s;
  }
  std::uint64_t sub(std::uint64_t a, std::uint64_t b) const {
    return a >= b ? a - b : a + p_ - b;
  }
  std::uint64_t neg(std::uint64_t a) const { return a == 0 ? 0 : p_ - a; }
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const {
    return (a * b) % p_;  // a,b < 2^32 so the product fits in 64 bits
  }
  std::uint64_t pow(std::uint64_t base, std::uint64_t exp) const;
  /// Precondition: a != 0.
  std::uint64_t inv(std::uint64_t a) const;

  /// Reduce an arbitrary 64-bit integer into the field.
  std::uint64_t reduce(std::uint64_t v) const { return v % p_; }

  friend bool operator==(const PrimeField& a, const PrimeField& b) {
    return a.p_ == b.p_;
  }

 private:
  std::uint64_t p_;
};

/// Element of a PrimeField. Regular value type; carries its field.
class FpElem {
 public:
  FpElem() : field_(nullptr), v_(0) {}
  FpElem(const PrimeField& field, std::uint64_t v)
      : field_(&field), v_(field.reduce(v)) {}

  std::uint64_t value() const { return v_; }
  const PrimeField* field() const { return field_; }
  bool is_zero() const { return v_ == 0; }

  friend FpElem operator+(FpElem a, FpElem b) {
    a.check_same(b);
    return FpElem::raw(*a.field_, a.field_->add(a.v_, b.v_));
  }
  friend FpElem operator-(FpElem a, FpElem b) {
    a.check_same(b);
    return FpElem::raw(*a.field_, a.field_->sub(a.v_, b.v_));
  }
  friend FpElem operator*(FpElem a, FpElem b) {
    a.check_same(b);
    return FpElem::raw(*a.field_, a.field_->mul(a.v_, b.v_));
  }
  friend FpElem operator/(FpElem a, FpElem b) {
    a.check_same(b);
    return FpElem::raw(*a.field_, a.field_->mul(a.v_, a.field_->inv(b.v_)));
  }
  friend bool operator==(FpElem a, FpElem b) {
    return a.v_ == b.v_ &&
           ((a.field_ == b.field_) ||
            (a.field_ && b.field_ && *a.field_ == *b.field_));
  }
  friend bool operator!=(FpElem a, FpElem b) { return !(a == b); }

 private:
  static FpElem raw(const PrimeField& f, std::uint64_t v) {
    FpElem e;
    e.field_ = &f;
    e.v_ = v;
    return e;
  }
  void check_same(const FpElem& other) const {
    MPCIOT_REQUIRE(field_ != nullptr && other.field_ != nullptr,
                   "FpElem: uninitialized element in arithmetic");
    MPCIOT_REQUIRE(*field_ == *other.field_,
                   "FpElem: elements of different fields");
  }

  const PrimeField* field_;
  std::uint64_t v_;
};

std::ostream& operator<<(std::ostream& os, const FpElem& x);

}  // namespace mpciot::field
