#include "field/lagrange.hpp"

#include <unordered_set>

#include "common/assert.hpp"

namespace mpciot::field {

namespace {

void check_distinct_x(const std::vector<Sample>& samples) {
  std::unordered_set<Fp61> seen;
  seen.reserve(samples.size());
  for (const auto& s : samples) {
    MPCIOT_REQUIRE(seen.insert(s.x).second,
                   "interpolation: duplicate x coordinate");
  }
}

}  // namespace

std::vector<Fp61> batch_inverse(const std::vector<Fp61>& in) {
  std::vector<Fp61> out(in.size());
  if (in.empty()) return out;
  // prefix[i] = in[0] * ... * in[i]
  std::vector<Fp61> prefix(in.size());
  Fp61 acc = Fp61::one();
  for (std::size_t i = 0; i < in.size(); ++i) {
    MPCIOT_REQUIRE(!in[i].is_zero(), "batch_inverse: zero input");
    acc *= in[i];
    prefix[i] = acc;
  }
  Fp61 inv_all = prefix.back().inverse();
  for (std::size_t i = in.size(); i-- > 0;) {
    const Fp61 left = i == 0 ? Fp61::one() : prefix[i - 1];
    out[i] = inv_all * left;
    inv_all *= in[i];
  }
  return out;
}

Polynomial interpolate(const std::vector<Sample>& samples) {
  MPCIOT_REQUIRE(!samples.empty(), "interpolate: no samples");
  check_distinct_x(samples);

  Polynomial result;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Build the i-th Lagrange basis polynomial L_i, scaled by y_i.
    Polynomial basis(std::vector<Fp61>{Fp61::one()});
    Fp61 denom = Fp61::one();
    for (std::size_t j = 0; j < samples.size(); ++j) {
      if (j == i) continue;
      basis = basis * Polynomial(std::vector<Fp61>{-samples[j].x, Fp61::one()});
      denom *= samples[i].x - samples[j].x;
    }
    result += (samples[i].y / denom) * basis;
  }
  return result;
}

Fp61 interpolate_at_zero(const std::vector<Sample>& samples) {
  MPCIOT_REQUIRE(!samples.empty(), "interpolate_at_zero: no samples");
  check_distinct_x(samples);

  // L_i(0) = prod_{j!=i} x_j / (x_j - x_i); result = sum_i y_i * L_i(0).
  const std::size_t k = samples.size();
  std::vector<Fp61> denoms(k);
  for (std::size_t i = 0; i < k; ++i) {
    MPCIOT_REQUIRE(!samples[i].x.is_zero(),
                   "interpolate_at_zero: sample at x = 0");
    Fp61 d = Fp61::one();
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      d *= samples[j].x - samples[i].x;
    }
    denoms[i] = d;
  }
  const std::vector<Fp61> inv_denoms = batch_inverse(denoms);

  Fp61 result = Fp61::zero();
  for (std::size_t i = 0; i < k; ++i) {
    Fp61 numer = Fp61::one();
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      numer *= samples[j].x;
    }
    result += samples[i].y * numer * inv_denoms[i];
  }
  return result;
}

Fp61 interpolate_at_zero(const std::vector<Sample>& samples,
                         LagrangeScratch& scratch) {
  MPCIOT_REQUIRE(!samples.empty(), "interpolate_at_zero: no samples");
  // Same arithmetic as the allocating overload (denominators, one
  // Montgomery batch inversion, numerator sweep), with every buffer —
  // including the inversion's prefix-product table — drawn from scratch.
  const std::size_t k = samples.size();
  scratch.denoms.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    MPCIOT_REQUIRE(!samples[i].x.is_zero(),
                   "interpolate_at_zero: sample at x = 0");
    Fp61 d = Fp61::one();
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      d *= samples[j].x - samples[i].x;
    }
    scratch.denoms[i] = d;
  }
  scratch.inv_denoms.resize(k);
  scratch.prefix.resize(k);
  Fp61 acc = Fp61::one();
  for (std::size_t i = 0; i < k; ++i) {
    MPCIOT_REQUIRE(!scratch.denoms[i].is_zero(), "batch_inverse: zero input");
    acc *= scratch.denoms[i];
    scratch.prefix[i] = acc;
  }
  Fp61 inv_all = scratch.prefix.back().inverse();
  for (std::size_t i = k; i-- > 0;) {
    const Fp61 left = i == 0 ? Fp61::one() : scratch.prefix[i - 1];
    scratch.inv_denoms[i] = inv_all * left;
    inv_all *= scratch.denoms[i];
  }

  Fp61 result = Fp61::zero();
  for (std::size_t i = 0; i < k; ++i) {
    Fp61 numer = Fp61::one();
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      numer *= samples[j].x;
    }
    result += samples[i].y * numer * scratch.inv_denoms[i];
  }
  return result;
}

}  // namespace mpciot::field
