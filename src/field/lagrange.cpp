#include "field/lagrange.hpp"

#include <unordered_set>

#include "common/assert.hpp"
#include "field/fp61_batch.hpp"

namespace mpciot::field {

namespace {

void check_distinct_x(const std::vector<Sample>& samples) {
  std::unordered_set<Fp61> seen;
  seen.reserve(samples.size());
  for (const auto& s : samples) {
    MPCIOT_REQUIRE(seen.insert(s.x).second,
                   "interpolation: duplicate x coordinate");
  }
}

}  // namespace

std::vector<Fp61> batch_inverse(const std::vector<Fp61>& in) {
  std::vector<Fp61> out(in.size());
  if (in.empty()) return out;
  // prefix[i] = in[0] * ... * in[i]
  std::vector<Fp61> prefix(in.size());
  Fp61 acc = Fp61::one();
  for (std::size_t i = 0; i < in.size(); ++i) {
    MPCIOT_REQUIRE(!in[i].is_zero(), "batch_inverse: zero input");
    acc *= in[i];
    prefix[i] = acc;
  }
  Fp61 inv_all = prefix.back().inverse();
  for (std::size_t i = in.size(); i-- > 0;) {
    const Fp61 left = i == 0 ? Fp61::one() : prefix[i - 1];
    out[i] = inv_all * left;
    inv_all *= in[i];
  }
  return out;
}

Polynomial interpolate(const std::vector<Sample>& samples) {
  MPCIOT_REQUIRE(!samples.empty(), "interpolate: no samples");
  check_distinct_x(samples);

  Polynomial result;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Build the i-th Lagrange basis polynomial L_i, scaled by y_i.
    Polynomial basis(std::vector<Fp61>{Fp61::one()});
    Fp61 denom = Fp61::one();
    for (std::size_t j = 0; j < samples.size(); ++j) {
      if (j == i) continue;
      basis = basis * Polynomial(std::vector<Fp61>{-samples[j].x, Fp61::one()});
      denom *= samples[i].x - samples[j].x;
    }
    result += (samples[i].y / denom) * basis;
  }
  return result;
}

Fp61 reconstruct_at_zero(std::span<const Sample> samples,
                         LagrangeScratch& scratch) {
  MPCIOT_REQUIRE(!samples.empty(), "interpolate_at_zero: no samples");
  const std::size_t k = samples.size();

  // De-interleave into the SoA views the batch kernels run over.
  scratch.xs.resize(k);
  scratch.ys.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    MPCIOT_REQUIRE(!samples[i].x.is_zero(),
                   "interpolate_at_zero: sample at x = 0");
    scratch.xs[i] = samples[i].x.value();
    scratch.ys[i] = samples[i].y.value();
  }

  // Denominators, column-wise: one pass per j updates every d_i with the
  // factor (x_j - x_i) across the whole batch; the i == j lane (which
  // would contribute the excluded zero factor) is patched to 1.
  scratch.denom.assign(k, 1);
  scratch.factor.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    fp61_batch::sub_from_scalar(scratch.xs[j], scratch.xs, scratch.factor);
    scratch.factor[j] = 1;
    fp61_batch::mul(scratch.denom, scratch.factor, scratch.denom);
  }

  // One Montgomery-style batch inversion: 1 Fermat inverse + 3(k-1)
  // multiplications. A zero denominator (duplicate x) trips the same
  // contract as the standalone batch_inverse helper.
  scratch.inv_denom.resize(k);
  scratch.prefix.resize(k);
  std::uint64_t acc = 1;
  for (std::size_t i = 0; i < k; ++i) {
    MPCIOT_REQUIRE(scratch.denom[i] != 0, "batch_inverse: zero input");
    acc = (Fp61{acc} * Fp61{scratch.denom[i]}).value();
    scratch.prefix[i] = acc;
  }
  std::uint64_t inv_all = Fp61{scratch.prefix.back()}.inverse().value();
  for (std::size_t i = k; i-- > 0;) {
    const std::uint64_t left = i == 0 ? 1 : scratch.prefix[i - 1];
    scratch.inv_denom[i] = (Fp61{inv_all} * Fp61{left}).value();
    inv_all = (Fp61{inv_all} * Fp61{scratch.denom[i]}).value();
  }

  // Numerators n_i = prod_{j != i} x_j from prefix/suffix products:
  // O(k) instead of re-scanning all other points per basis element.
  scratch.numer_pre.resize(k);
  scratch.numer_suf.resize(k);
  acc = 1;
  for (std::size_t i = 0; i < k; ++i) {
    acc = (Fp61{acc} * Fp61{scratch.xs[i]}).value();
    scratch.numer_pre[i] = acc;
  }
  acc = 1;
  for (std::size_t i = k; i-- > 0;) {
    scratch.numer_suf[i] = acc;  // product of x_j for j > i
    acc = (Fp61{acc} * Fp61{scratch.xs[i]}).value();
  }

  // term_i = y_i * n_i * d_i^-1, reduced to the secret. The factor
  // buffer is free again and hosts the terms.
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t pre = i == 0 ? 1 : scratch.numer_pre[i - 1];
    scratch.factor[i] = (Fp61{pre} * Fp61{scratch.numer_suf[i]}).value();
  }
  fp61_batch::mul(scratch.factor, scratch.ys, scratch.factor);
  fp61_batch::mul(scratch.factor, scratch.inv_denom, scratch.factor);
  return Fp61{fp61_batch::sum(scratch.factor)};
}

Fp61 interpolate_at_zero(const std::vector<Sample>& samples) {
  MPCIOT_REQUIRE(!samples.empty(), "interpolate_at_zero: no samples");
  check_distinct_x(samples);
  LagrangeScratch scratch;
  return reconstruct_at_zero(samples, scratch);
}

Fp61 interpolate_at_zero(const std::vector<Sample>& samples,
                         LagrangeScratch& scratch) {
  return reconstruct_at_zero(samples, scratch);
}

}  // namespace mpciot::field
