// Lagrange interpolation over Fp61.
//
// Two entry points:
//  * `interpolate` — full polynomial reconstruction (used by tests and by
//    the reference reconstruction path).
//  * `interpolate_at_zero` — only the constant term, the value Shamir
//    reconstruction actually needs; O(k^2) with a single batched inversion
//    pass, which is what a Cortex-M-class node would run.
#pragma once

#include <vector>

#include "field/fp61.hpp"
#include "field/polynomial.hpp"

namespace mpciot::field {

/// One interpolation sample: y = P(x).
struct Sample {
  Fp61 x;
  Fp61 y;
};

/// Full Lagrange interpolation through all samples. Preconditions:
/// samples non-empty, x values pairwise distinct.
Polynomial interpolate(const std::vector<Sample>& samples);

/// Evaluate the interpolating polynomial at x = 0 without building it.
/// Preconditions: samples non-empty, x values pairwise distinct and
/// non-zero (a sample at x=0 would *be* the secret — callers never have
/// one in Shamir).
Fp61 interpolate_at_zero(const std::vector<Sample>& samples);

/// Warm buffers for the allocation-free interpolation path. One scratch
/// serves any number of sequential calls; buffers grow to the largest
/// sample set seen and are reused thereafter.
struct LagrangeScratch {
  std::vector<Sample> samples;
  std::vector<Fp61> denoms;
  std::vector<Fp61> inv_denoms;
  std::vector<Fp61> prefix;
};

/// As interpolate_at_zero, but allocation-free once `scratch` is warm.
/// Additional precondition (NOT checked here, unlike the overload
/// above): x values pairwise distinct — Shamir holders are distinct by
/// construction, so the streaming path skips the hash-set check.
Fp61 interpolate_at_zero(const std::vector<Sample>& samples,
                         LagrangeScratch& scratch);

/// Batch-invert: out[i] = in[i]^-1 using Montgomery's trick (one field
/// inversion + 3(n-1) multiplications). Precondition: all inputs non-zero.
std::vector<Fp61> batch_inverse(const std::vector<Fp61>& in);

}  // namespace mpciot::field
