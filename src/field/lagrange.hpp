// Lagrange interpolation over Fp61.
//
// Two entry points:
//  * `interpolate` — full polynomial reconstruction (used by tests and by
//    the reference reconstruction path).
//  * `interpolate_at_zero` — only the constant term, the value Shamir
//    reconstruction actually needs; O(k^2) with a single batched inversion
//    pass, which is what a Cortex-M-class node would run.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "field/fp61.hpp"
#include "field/polynomial.hpp"

namespace mpciot::field {

/// One interpolation sample: y = P(x).
struct Sample {
  Fp61 x;
  Fp61 y;
};

/// Full Lagrange interpolation through all samples. Preconditions:
/// samples non-empty, x values pairwise distinct.
Polynomial interpolate(const std::vector<Sample>& samples);

/// Evaluate the interpolating polynomial at x = 0 without building it.
/// Preconditions: samples non-empty, x values pairwise distinct and
/// non-zero (a sample at x=0 would *be* the secret — callers never have
/// one in Shamir).
Fp61 interpolate_at_zero(const std::vector<Sample>& samples);

/// Warm buffers for the allocation-free interpolation path. One scratch
/// serves any number of sequential calls; buffers grow to the largest
/// sample set seen and are reused thereafter. The uint64 vectors are the
/// structure-of-arrays views the fp61_batch kernels run over.
struct LagrangeScratch {
  std::vector<Sample> samples;
  std::vector<std::uint64_t> xs;
  std::vector<std::uint64_t> ys;
  std::vector<std::uint64_t> factor;
  std::vector<std::uint64_t> denom;
  std::vector<std::uint64_t> inv_denom;
  std::vector<std::uint64_t> prefix;
  std::vector<std::uint64_t> numer_pre;
  std::vector<std::uint64_t> numer_suf;
};

/// As interpolate_at_zero, but allocation-free once `scratch` is warm.
/// Additional precondition (NOT checked here, unlike the overload
/// above): x values pairwise distinct — Shamir holders are distinct by
/// construction, so the streaming path skips the hash-set check. (A
/// duplicate still cannot yield a wrong value silently: it zeroes a
/// denominator and trips the batch-inversion contract.)
Fp61 interpolate_at_zero(const std::vector<Sample>& samples,
                         LagrangeScratch& scratch);

/// The batched reconstruction kernel both interpolate_at_zero overloads
/// run on: all k Lagrange basis coefficients at once —
///   * denominators d_i = prod_{j != i}(x_j - x_i) built column-wise
///     over the fp61_batch SoA kernels (SIMD when available),
///   * ONE Montgomery-style batch inversion (1 field inverse + 3(k-1)
///     multiplications) instead of k Fermat inversions,
///   * numerators n_i = prod_{j != i} x_j from prefix/suffix product
///     tables in O(k) instead of the O(k^2) rescan,
///   * result = sum_i y_i * n_i * d_i^-1.
/// Field arithmetic is exact, so the value is bit-identical to the
/// historic per-basis formulation for any evaluation order.
/// Preconditions: samples non-empty, x values distinct and non-zero.
Fp61 reconstruct_at_zero(std::span<const Sample> samples,
                         LagrangeScratch& scratch);

/// Batch-invert: out[i] = in[i]^-1 using Montgomery's trick (one field
/// inversion + 3(n-1) multiplications). Precondition: all inputs non-zero.
std::vector<Fp61> batch_inverse(const std::vector<Fp61>& in);

}  // namespace mpciot::field
