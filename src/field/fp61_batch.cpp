#include "field/fp61_batch.hpp"

#include <atomic>

#include "common/assert.hpp"
#include "field/fp61.hpp"

#if defined(CTAGG_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CTAGG_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#endif

namespace mpciot::field::fp61_batch {

namespace {

constexpr std::uint64_t kP = Fp61::kModulus;

// ---- scalar backend: the authoritative kernel definitions ----
//
// Raw-representative twins of the Fp61 operators (inputs canonical, so
// the class ctor's extra reduction is skipped).

inline std::uint64_t s_add(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a + b;  // < 2^62
  if (s >= kP) s -= kP;
  return s;
}

inline std::uint64_t s_sub(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a - b;
  if (a < b) s += kP;
  return s;
}

inline std::uint64_t s_mul(std::uint64_t a, std::uint64_t b) {
  const unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
  std::uint64_t lo = static_cast<std::uint64_t>(prod) & kP;
  std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  std::uint64_t s = lo + hi;  // < 2^62
  s = (s & kP) + (s >> 61);
  if (s >= kP) s -= kP;
  return s;
}

namespace scalar {

void add(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = s_add(a[i], b[i]);
}

void sub(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = s_sub(a[i], b[i]);
}

void mul(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = s_mul(a[i], b[i]);
}

void mul_scalar(const std::uint64_t* a, std::uint64_t s, std::uint64_t* out,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = s_mul(a[i], s);
}

void sub_from_scalar(std::uint64_t s, const std::uint64_t* a,
                     std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = s_sub(s, a[i]);
}

void horner_eval(const std::uint64_t* coeffs, std::size_t k,
                 const std::uint64_t* xs, std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t acc = 0;
    for (std::size_t j = k; j-- > 0;) {
      acc = s_add(s_mul(acc, xs[i]), coeffs[j]);
    }
    out[i] = acc;
  }
}

std::uint64_t sum(const std::uint64_t* a, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc = s_add(acc, a[i]);
  return acc;
}

}  // namespace scalar

#if CTAGG_HAVE_AVX2_KERNELS

// ---- avx2 backend: 4 lanes of 64-bit representatives ----
//
// All lane values stay < 2^62 between reductions, so signed 64-bit
// compares are safe everywhere a comparison is needed.

namespace avx2 {

#define CTAGG_AVX2 __attribute__((target("avx2")))

CTAGG_AVX2 inline __m256i v_p() { return _mm256_set1_epi64x(kP); }

/// Canonicalize s < 2^62: fold the top bit range once, then one
/// conditional subtract — the vector twin of Fp61::reduce64's tail.
CTAGG_AVX2 inline __m256i v_canon62(__m256i s) {
  const __m256i p = v_p();
  __m256i t = _mm256_add_epi64(_mm256_and_si256(s, p),
                               _mm256_srli_epi64(s, 61));  // <= p + 1
  const __m256i ge = _mm256_cmpgt_epi64(t, _mm256_sub_epi64(p, _mm256_set1_epi64x(1)));
  return _mm256_sub_epi64(t, _mm256_and_si256(ge, p));
}

/// a + b for canonical lanes: one conditional subtract.
CTAGG_AVX2 inline __m256i v_add(__m256i a, __m256i b) {
  const __m256i p = v_p();
  const __m256i s = _mm256_add_epi64(a, b);  // < 2^62
  const __m256i ge =
      _mm256_cmpgt_epi64(s, _mm256_sub_epi64(p, _mm256_set1_epi64x(1)));
  return _mm256_sub_epi64(s, _mm256_and_si256(ge, p));
}

/// a - b for canonical lanes.
CTAGG_AVX2 inline __m256i v_sub(__m256i a, __m256i b) {
  const __m256i p = v_p();
  const __m256i d = _mm256_sub_epi64(a, b);
  const __m256i borrow = _mm256_cmpgt_epi64(b, a);
  return _mm256_add_epi64(d, _mm256_and_si256(borrow, p));
}

/// a * b mod p for canonical lanes: 64x64 product by 32-bit cross
/// terms, then the double Mersenne fold of Fp61::operator*.
CTAGG_AVX2 inline __m256i v_mul(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);  // < 2^29
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);      // a_lo * b_lo
  const __m256i lh = _mm256_mul_epu32(a, b_hi);   // a_lo * b_hi  < 2^61
  const __m256i hl = _mm256_mul_epu32(a_hi, b);   // a_hi * b_lo  < 2^61
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);  // < 2^58
  const __m256i mid = _mm256_add_epi64(lh, hl);     // < 2^62, no overflow
  const __m256i lo = _mm256_add_epi64(ll, _mm256_slli_epi64(mid, 32));
  // Unsigned carry out of lo: ll > lo (unsigned) iff the add wrapped.
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i carry = _mm256_srli_epi64(
      _mm256_cmpgt_epi64(_mm256_xor_si256(ll, sign),
                         _mm256_xor_si256(lo, sign)),
      63);
  const __m256i hi = _mm256_add_epi64(
      _mm256_add_epi64(hh, _mm256_srli_epi64(mid, 32)), carry);  // < 2^58
  // (hi:lo) < 2^122: s = (lo & p) + (lo >> 61 | hi << 3) < 2^62.
  const __m256i top =
      _mm256_or_si256(_mm256_srli_epi64(lo, 61), _mm256_slli_epi64(hi, 3));
  const __m256i s = _mm256_add_epi64(_mm256_and_si256(lo, v_p()), top);
  return v_canon62(s);
}

CTAGG_AVX2 void add(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v_add(va, vb));
  }
  for (; i < n; ++i) out[i] = s_add(a[i], b[i]);
}

CTAGG_AVX2 void sub(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v_sub(va, vb));
  }
  for (; i < n; ++i) out[i] = s_sub(a[i], b[i]);
}

CTAGG_AVX2 void mul(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v_mul(va, vb));
  }
  for (; i < n; ++i) out[i] = s_mul(a[i], b[i]);
}

CTAGG_AVX2 void mul_scalar(const std::uint64_t* a, std::uint64_t s,
                           std::uint64_t* out, std::size_t n) {
  const __m256i vs = _mm256_set1_epi64x(static_cast<long long>(s));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v_mul(va, vs));
  }
  for (; i < n; ++i) out[i] = s_mul(a[i], s);
}

CTAGG_AVX2 void sub_from_scalar(std::uint64_t s, const std::uint64_t* a,
                                std::uint64_t* out, std::size_t n) {
  const __m256i vs = _mm256_set1_epi64x(static_cast<long long>(s));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v_sub(vs, va));
  }
  for (; i < n; ++i) out[i] = s_sub(s, a[i]);
}

CTAGG_AVX2 void horner_eval(const std::uint64_t* coeffs, std::size_t k,
                            const std::uint64_t* xs, std::uint64_t* out,
                            std::size_t n) {
  std::size_t i = 0;
  // 8 points per iteration (two vectors) hides the multiply latency of
  // the dependent acc = acc * x + c chain.
  for (; i + 8 <= n; i += 8) {
    const __m256i x0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    const __m256i x1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i + 4));
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    for (std::size_t j = k; j-- > 0;) {
      const __m256i c = _mm256_set1_epi64x(static_cast<long long>(coeffs[j]));
      acc0 = v_add(v_mul(acc0, x0), c);
      acc1 = v_add(v_mul(acc1, x1), c);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i x0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    __m256i acc0 = _mm256_setzero_si256();
    for (std::size_t j = k; j-- > 0;) {
      const __m256i c = _mm256_set1_epi64x(static_cast<long long>(coeffs[j]));
      acc0 = v_add(v_mul(acc0, x0), c);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), acc0);
  }
  if (i < n) scalar::horner_eval(coeffs, k, xs + i, out + i, n - i);
}

#undef CTAGG_AVX2

}  // namespace avx2

#endif  // CTAGG_HAVE_AVX2_KERNELS

bool cpu_has_avx2() {
#if CTAGG_HAVE_AVX2_KERNELS
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Backend detect_backend() {
  return cpu_has_avx2() ? Backend::kAvx2 : Backend::kScalar;
}

std::atomic<Backend> g_backend{detect_backend()};

}  // namespace

bool backend_supported(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
      return cpu_has_avx2();
  }
  return false;
}

Backend active_backend() { return g_backend.load(std::memory_order_relaxed); }

bool force_backend(Backend b) {
  if (!backend_supported(b)) return false;
  g_backend.store(b, std::memory_order_relaxed);
  return true;
}

const char* active_backend_name() {
  switch (active_backend()) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void add(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
         std::span<std::uint64_t> out) {
  MPCIOT_REQUIRE(a.size() == b.size() && a.size() == out.size(),
                 "fp61_batch: span size mismatch");
#if CTAGG_HAVE_AVX2_KERNELS
  if (active_backend() == Backend::kAvx2) {
    avx2::add(a.data(), b.data(), out.data(), a.size());
    return;
  }
#endif
  scalar::add(a.data(), b.data(), out.data(), a.size());
}

void sub(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
         std::span<std::uint64_t> out) {
  MPCIOT_REQUIRE(a.size() == b.size() && a.size() == out.size(),
                 "fp61_batch: span size mismatch");
#if CTAGG_HAVE_AVX2_KERNELS
  if (active_backend() == Backend::kAvx2) {
    avx2::sub(a.data(), b.data(), out.data(), a.size());
    return;
  }
#endif
  scalar::sub(a.data(), b.data(), out.data(), a.size());
}

void mul(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
         std::span<std::uint64_t> out) {
  MPCIOT_REQUIRE(a.size() == b.size() && a.size() == out.size(),
                 "fp61_batch: span size mismatch");
#if CTAGG_HAVE_AVX2_KERNELS
  if (active_backend() == Backend::kAvx2) {
    avx2::mul(a.data(), b.data(), out.data(), a.size());
    return;
  }
#endif
  scalar::mul(a.data(), b.data(), out.data(), a.size());
}

void mul_scalar(std::span<const std::uint64_t> a, std::uint64_t s,
                std::span<std::uint64_t> out) {
  MPCIOT_REQUIRE(a.size() == out.size(), "fp61_batch: span size mismatch");
#if CTAGG_HAVE_AVX2_KERNELS
  if (active_backend() == Backend::kAvx2) {
    avx2::mul_scalar(a.data(), s, out.data(), a.size());
    return;
  }
#endif
  scalar::mul_scalar(a.data(), s, out.data(), a.size());
}

void sub_from_scalar(std::uint64_t s, std::span<const std::uint64_t> a,
                     std::span<std::uint64_t> out) {
  MPCIOT_REQUIRE(a.size() == out.size(), "fp61_batch: span size mismatch");
#if CTAGG_HAVE_AVX2_KERNELS
  if (active_backend() == Backend::kAvx2) {
    avx2::sub_from_scalar(s, a.data(), out.data(), a.size());
    return;
  }
#endif
  scalar::sub_from_scalar(s, a.data(), out.data(), a.size());
}

void horner_eval(std::span<const std::uint64_t> coeffs,
                 std::span<const std::uint64_t> xs,
                 std::span<std::uint64_t> out) {
  MPCIOT_REQUIRE(xs.size() == out.size(), "fp61_batch: span size mismatch");
#if CTAGG_HAVE_AVX2_KERNELS
  if (active_backend() == Backend::kAvx2) {
    avx2::horner_eval(coeffs.data(), coeffs.size(), xs.data(), out.data(),
                      xs.size());
    return;
  }
#endif
  scalar::horner_eval(coeffs.data(), coeffs.size(), xs.data(), out.data(),
                      xs.size());
}

std::uint64_t sum(std::span<const std::uint64_t> a) {
  return scalar::sum(a.data(), a.size());
}

}  // namespace mpciot::field::fp61_batch
