#include "field/polynomial.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mpciot::field {

Polynomial::Polynomial(std::vector<Fp61> coeffs) : coeffs_(std::move(coeffs)) {
  trim();
}

void Polynomial::trim() {
  while (!coeffs_.empty() && coeffs_.back().is_zero()) {
    coeffs_.pop_back();
  }
}

Polynomial Polynomial::random_with_secret(Fp61 secret, std::size_t degree,
                                          const std::function<Fp61()>& rng) {
  std::vector<Fp61> coeffs(degree + 1);
  coeffs[0] = secret;
  for (std::size_t i = 1; i <= degree; ++i) {
    coeffs[i] = rng();
  }
  if (degree > 0) {
    // Force exact degree: a zero leading coefficient would silently lower
    // the privacy threshold.
    while (coeffs[degree].is_zero()) {
      coeffs[degree] = rng();
    }
  }
  return Polynomial(std::move(coeffs));
}

void Polynomial::assign_random_with_secret(Fp61 secret, std::size_t degree,
                                           const std::function<Fp61()>& rng) {
  coeffs_.assign(degree + 1, Fp61::zero());
  coeffs_[0] = secret;
  for (std::size_t i = 1; i <= degree; ++i) {
    coeffs_[i] = rng();
  }
  if (degree > 0) {
    while (coeffs_[degree].is_zero()) {
      coeffs_[degree] = rng();
    }
  }
  trim();
}

Fp61 Polynomial::evaluate(Fp61 x) const {
  Fp61 acc = Fp61::zero();
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) {
    acc = acc * x + *it;
  }
  return acc;
}

Polynomial operator+(const Polynomial& a, const Polynomial& b) {
  std::vector<Fp61> out(std::max(a.coeffs_.size(), b.coeffs_.size()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    Fp61 av = i < a.coeffs_.size() ? a.coeffs_[i] : Fp61::zero();
    Fp61 bv = i < b.coeffs_.size() ? b.coeffs_[i] : Fp61::zero();
    out[i] = av + bv;
  }
  return Polynomial(std::move(out));
}

Polynomial operator-(const Polynomial& a, const Polynomial& b) {
  std::vector<Fp61> out(std::max(a.coeffs_.size(), b.coeffs_.size()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    Fp61 av = i < a.coeffs_.size() ? a.coeffs_[i] : Fp61::zero();
    Fp61 bv = i < b.coeffs_.size() ? b.coeffs_[i] : Fp61::zero();
    out[i] = av - bv;
  }
  return Polynomial(std::move(out));
}

Polynomial operator*(const Polynomial& a, const Polynomial& b) {
  if (a.is_zero() || b.is_zero()) return Polynomial{};
  std::vector<Fp61> out(a.coeffs_.size() + b.coeffs_.size() - 1);
  for (std::size_t i = 0; i < a.coeffs_.size(); ++i) {
    for (std::size_t j = 0; j < b.coeffs_.size(); ++j) {
      out[i + j] += a.coeffs_[i] * b.coeffs_[j];
    }
  }
  return Polynomial(std::move(out));
}

Polynomial operator*(Fp61 s, const Polynomial& p) {
  std::vector<Fp61> out = p.coefficients();
  for (auto& c : out) c *= s;
  return Polynomial(std::move(out));
}

}  // namespace mpciot::field
