#include "field/polynomial.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "field/fp61_batch.hpp"

namespace mpciot::field {

Polynomial::Polynomial(std::vector<Fp61> coeffs) : coeffs_(std::move(coeffs)) {
  trim();
}

void Polynomial::trim() {
  while (!coeffs_.empty() && coeffs_.back().is_zero()) {
    coeffs_.pop_back();
  }
}

Polynomial Polynomial::random_with_secret(Fp61 secret, std::size_t degree,
                                          const std::function<Fp61()>& rng) {
  std::vector<Fp61> coeffs(degree + 1);
  coeffs[0] = secret;
  for (std::size_t i = 1; i <= degree; ++i) {
    coeffs[i] = rng();
  }
  if (degree > 0) {
    // Force exact degree: a zero leading coefficient would silently lower
    // the privacy threshold.
    while (coeffs[degree].is_zero()) {
      coeffs[degree] = rng();
    }
  }
  return Polynomial(std::move(coeffs));
}

void Polynomial::assign_random_with_secret(Fp61 secret, std::size_t degree,
                                           const std::function<Fp61()>& rng) {
  coeffs_.assign(degree + 1, Fp61::zero());
  coeffs_[0] = secret;
  for (std::size_t i = 1; i <= degree; ++i) {
    coeffs_[i] = rng();
  }
  if (degree > 0) {
    while (coeffs_[degree].is_zero()) {
      coeffs_[degree] = rng();
    }
  }
  trim();
}

Fp61 Polynomial::evaluate(Fp61 x) const {
  Fp61 acc = Fp61::zero();
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) {
    acc = acc * x + *it;
  }
  return acc;
}

void Polynomial::evaluate_many(std::span<const Fp61> xs,
                               std::span<Fp61> out) const {
  MPCIOT_REQUIRE(xs.size() == out.size(),
                 "evaluate_many: output size mismatch");
  // Fp61 is a transparent wrapper over one canonical uint64_t, so the
  // spans reinterpret directly as the raw-representative spans the
  // batch kernels take (pinned by the static_asserts below).
  static_assert(sizeof(Fp61) == sizeof(std::uint64_t));
  static_assert(alignof(Fp61) == alignof(std::uint64_t));
  fp61_batch::horner_eval(
      std::span<const std::uint64_t>(
          reinterpret_cast<const std::uint64_t*>(coeffs_.data()),
          coeffs_.size()),
      std::span<const std::uint64_t>(
          reinterpret_cast<const std::uint64_t*>(xs.data()), xs.size()),
      std::span<std::uint64_t>(reinterpret_cast<std::uint64_t*>(out.data()),
                               out.size()));
}

Polynomial operator+(const Polynomial& a, const Polynomial& b) {
  std::vector<Fp61> out(std::max(a.coeffs_.size(), b.coeffs_.size()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    Fp61 av = i < a.coeffs_.size() ? a.coeffs_[i] : Fp61::zero();
    Fp61 bv = i < b.coeffs_.size() ? b.coeffs_[i] : Fp61::zero();
    out[i] = av + bv;
  }
  return Polynomial(std::move(out));
}

Polynomial operator-(const Polynomial& a, const Polynomial& b) {
  std::vector<Fp61> out(std::max(a.coeffs_.size(), b.coeffs_.size()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    Fp61 av = i < a.coeffs_.size() ? a.coeffs_[i] : Fp61::zero();
    Fp61 bv = i < b.coeffs_.size() ? b.coeffs_[i] : Fp61::zero();
    out[i] = av - bv;
  }
  return Polynomial(std::move(out));
}

Polynomial operator*(const Polynomial& a, const Polynomial& b) {
  if (a.is_zero() || b.is_zero()) return Polynomial{};
  std::vector<Fp61> out(a.coeffs_.size() + b.coeffs_.size() - 1);
  for (std::size_t i = 0; i < a.coeffs_.size(); ++i) {
    for (std::size_t j = 0; j < b.coeffs_.size(); ++j) {
      out[i + j] += a.coeffs_[i] * b.coeffs_[j];
    }
  }
  return Polynomial(std::move(out));
}

Polynomial operator*(Fp61 s, const Polynomial& p) {
  std::vector<Fp61> out = p.coefficients();
  for (auto& c : out) c *= s;
  return Polynomial(std::move(out));
}

}  // namespace mpciot::field
