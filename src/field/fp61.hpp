// Fp61: the prime field GF(p) with p = 2^61 - 1 (a Mersenne prime).
//
// This is the default field for Shamir Secret Sharing in this library.
// The Mersenne structure gives a branch-light reduction: for any 122-bit
// product x, x mod p = (x & p) + (x >> 61), followed by one conditional
// subtraction. All operations are total (no exceptions) except inversion
// of zero, which is a contract violation.
//
// Values are kept canonical in [0, p). The class is a regular value type:
// cheap to copy, equality-comparable, hashable.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>

#include "common/assert.hpp"

namespace mpciot::field {

class Fp61 {
 public:
  /// The field modulus, 2^61 - 1 = 2305843009213693951.
  static constexpr std::uint64_t kModulus = (std::uint64_t{1} << 61) - 1;

  /// Zero element.
  constexpr Fp61() : v_(0) {}

  /// Construct from an arbitrary 64-bit integer (reduced mod p).
  constexpr explicit Fp61(std::uint64_t v) : v_(reduce64(v)) {}

  static constexpr Fp61 zero() { return Fp61{}; }
  static constexpr Fp61 one() { return Fp61{1}; }

  /// Raw canonical representative in [0, p).
  constexpr std::uint64_t value() const { return v_; }

  constexpr bool is_zero() const { return v_ == 0; }

  friend constexpr bool operator==(Fp61 a, Fp61 b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Fp61 a, Fp61 b) { return a.v_ != b.v_; }

  friend constexpr Fp61 operator+(Fp61 a, Fp61 b) {
    std::uint64_t s = a.v_ + b.v_;  // < 2^62, no overflow
    if (s >= kModulus) s -= kModulus;
    return from_canonical(s);
  }

  friend constexpr Fp61 operator-(Fp61 a, Fp61 b) {
    std::uint64_t s = a.v_ - b.v_;
    if (a.v_ < b.v_) s += kModulus;
    return from_canonical(s);
  }

  friend constexpr Fp61 operator-(Fp61 a) {
    return from_canonical(a.v_ == 0 ? 0 : kModulus - a.v_);
  }

  friend constexpr Fp61 operator*(Fp61 a, Fp61 b) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(a.v_) * b.v_;
    // prod < 2^122; fold twice to guarantee a canonical result.
    std::uint64_t lo = static_cast<std::uint64_t>(prod) & kModulus;
    std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
    std::uint64_t s = lo + hi;  // < 2^62
    s = (s & kModulus) + (s >> 61);
    if (s >= kModulus) s -= kModulus;
    return from_canonical(s);
  }

  Fp61& operator+=(Fp61 o) { return *this = *this + o; }
  Fp61& operator-=(Fp61 o) { return *this = *this - o; }
  Fp61& operator*=(Fp61 o) { return *this = *this * o; }

  /// a^e by square-and-multiply. pow(0, 0) == 1 by convention.
  static Fp61 pow(Fp61 base, std::uint64_t exponent);

  /// Multiplicative inverse via Fermat (a^(p-2)). Precondition: non-zero.
  Fp61 inverse() const;

  /// Division. Precondition: divisor non-zero.
  friend Fp61 operator/(Fp61 a, Fp61 b) { return a * b.inverse(); }

 private:
  static constexpr std::uint64_t reduce64(std::uint64_t v) {
    std::uint64_t s = (v & kModulus) + (v >> 61);
    if (s >= kModulus) s -= kModulus;
    return s;
  }

  static constexpr Fp61 from_canonical(std::uint64_t v) {
    Fp61 f;
    f.v_ = v;
    return f;
  }

  std::uint64_t v_;
};

std::ostream& operator<<(std::ostream& os, Fp61 x);

}  // namespace mpciot::field

template <>
struct std::hash<mpciot::field::Fp61> {
  std::size_t operator()(mpciot::field::Fp61 x) const noexcept {
    return std::hash<std::uint64_t>{}(x.value());
  }
};
