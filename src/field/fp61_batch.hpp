// Structure-of-arrays batch kernels over Fp61.
//
// Every simulated round bottoms out in long runs of identical field
// operations: a dealer evaluates one polynomial at every holder point, a
// reconstructor multiplies k basis coefficients, the Lagrange engine
// builds k denominators of k-1 factors each. The scalar Fp61 class pays
// full latency per element; these kernels take flat spans of canonical
// representatives (uint64_t in [0, p)) and process them W lanes at a
// time.
//
// Two backends:
//  * scalar — portable, always compiled, the authoritative definition of
//    every kernel (the AVX2 path is validated against it, never the
//    other way around);
//  * avx2 — 4x64-bit lanes via explicit intrinsics, compiled when the
//    build enables CTAGG_SIMD on x86-64 and selected at runtime iff the
//    CPU reports AVX2.
//
// Fp61 arithmetic is exact integer arithmetic, so the two backends are
// bit-identical by construction: there is no rounding, no reassociation
// hazard, and the dispatch can switch per call without affecting any
// deterministic output.
//
// All spans must hold canonical values (< p). Outputs are canonical.
// `out` may alias `a` or `b` elementwise (same offset), not partially.
#pragma once

#include <cstdint>
#include <span>

namespace mpciot::field::fp61_batch {

/// Which kernel implementation services batch calls.
enum class Backend {
  kScalar,
  kAvx2,
};

/// True when `b` can run on this build + CPU.
bool backend_supported(Backend b);

/// The backend batch calls currently dispatch to.
Backend active_backend();

/// Testing/benchmark hook: force a specific backend. Returns false (and
/// changes nothing) when the backend is not supported here. Pass
/// kScalar to pin the portable path; the default at startup is the
/// fastest supported backend.
bool force_backend(Backend b);

/// Human-readable name of the active backend ("scalar" / "avx2").
const char* active_backend_name();

/// out[i] = a[i] + b[i] mod p.
void add(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
         std::span<std::uint64_t> out);

/// out[i] = a[i] - b[i] mod p.
void sub(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
         std::span<std::uint64_t> out);

/// out[i] = a[i] * b[i] mod p.
void mul(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
         std::span<std::uint64_t> out);

/// out[i] = a[i] * s mod p.
void mul_scalar(std::span<const std::uint64_t> a, std::uint64_t s,
                std::span<std::uint64_t> out);

/// out[i] = s - a[i] mod p (broadcast minuend — the Lagrange
/// denominator factor shape).
void sub_from_scalar(std::uint64_t s, std::span<const std::uint64_t> a,
                     std::span<std::uint64_t> out);

/// Horner evaluation of one polynomial at many points:
/// out[i] = sum_j coeffs[j] * xs[i]^j, coefficients low-degree-first.
/// An empty coefficient span writes zeros.
void horner_eval(std::span<const std::uint64_t> coeffs,
                 std::span<const std::uint64_t> xs,
                 std::span<std::uint64_t> out);

/// Sum-reduce a span mod p. Exact field arithmetic: any summation order
/// yields the same element, so the backends are free to tree-reduce.
std::uint64_t sum(std::span<const std::uint64_t> a);

}  // namespace mpciot::field::fp61_batch
