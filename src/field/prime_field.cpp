#include "field/prime_field.hpp"

#include <ostream>

namespace mpciot::field {

namespace {

std::uint64_t mulmod64(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t powmod64(std::uint64_t base, std::uint64_t exp,
                       std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp != 0) {
    if (exp & 1u) result = mulmod64(result, base, m);
    base = mulmod64(base, base, m);
    exp >>= 1;
  }
  return result;
}

bool miller_rabin(std::uint64_t n, std::uint64_t a) {
  if (a % n == 0) return true;
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1u) == 0) {
    d >>= 1;
    ++r;
  }
  std::uint64_t x = powmod64(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 0; i < r - 1; ++i) {
    x = mulmod64(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool PrimeField::is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                          19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  // Deterministic witness set for n < 3.3 * 10^24 (Sorenson & Webster).
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                          19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (!miller_rabin(n, a)) return false;
  }
  return true;
}

PrimeField::PrimeField(std::uint64_t p) : p_(p) {
  MPCIOT_REQUIRE(p >= 2 && p < (std::uint64_t{1} << 32),
                 "PrimeField: modulus must satisfy 2 <= p < 2^32");
  MPCIOT_REQUIRE(is_prime(p), "PrimeField: modulus must be prime");
}

std::uint64_t PrimeField::pow(std::uint64_t base, std::uint64_t exp) const {
  return powmod64(base % p_, exp, p_);
}

std::uint64_t PrimeField::inv(std::uint64_t a) const {
  MPCIOT_REQUIRE(a % p_ != 0, "PrimeField: inverse of zero");
  return pow(a, p_ - 2);
}

std::ostream& operator<<(std::ostream& os, const FpElem& x) {
  return os << x.value();
}

}  // namespace mpciot::field
