#include "field/fp61.hpp"

#include <ostream>

namespace mpciot::field {

Fp61 Fp61::pow(Fp61 base, std::uint64_t exponent) {
  Fp61 result = Fp61::one();
  Fp61 acc = base;
  while (exponent != 0) {
    if (exponent & 1u) result *= acc;
    acc *= acc;
    exponent >>= 1;
  }
  return result;
}

Fp61 Fp61::inverse() const {
  MPCIOT_REQUIRE(!is_zero(), "Fp61: inverse of zero");
  return pow(*this, kModulus - 2);
}

std::ostream& operator<<(std::ostream& os, Fp61 x) { return os << x.value(); }

}  // namespace mpciot::field
