// Dense polynomials over Fp61.
//
// Coefficients are stored low-degree-first: coeffs[i] is the coefficient
// of x^i. The zero polynomial is represented by an empty coefficient
// vector and has degree() == -1 by convention.
//
// In Shamir Secret Sharing, each node holds a Polynomial whose constant
// term is its secret; `Polynomial::random_with_secret` builds exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "field/fp61.hpp"

namespace mpciot::field {

class Polynomial {
 public:
  /// The zero polynomial.
  Polynomial() = default;

  /// From low-degree-first coefficients; trailing zeros are trimmed.
  explicit Polynomial(std::vector<Fp61> coeffs);

  /// Random degree-`degree` polynomial with P(0) == secret.
  /// `rng` must return uniformly random field elements. The leading
  /// coefficient is forced non-zero so the degree is exact (required for
  /// the privacy threshold to be exactly `degree`).
  static Polynomial random_with_secret(Fp61 secret, std::size_t degree,
                                       const std::function<Fp61()>& rng);

  /// In-place variant of random_with_secret: identical draw order and
  /// result, but reuses this polynomial's coefficient storage so warm
  /// re-dealing allocates nothing.
  void assign_random_with_secret(Fp61 secret, std::size_t degree,
                                 const std::function<Fp61()>& rng);

  /// Degree; -1 for the zero polynomial.
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }

  const std::vector<Fp61>& coefficients() const { return coeffs_; }

  bool is_zero() const { return coeffs_.empty(); }

  /// Horner evaluation.
  Fp61 evaluate(Fp61 x) const;

  /// Batched Horner evaluation: out[i] = P(xs[i]) for every point in one
  /// structure-of-arrays pass through the fp61_batch kernels (SIMD when
  /// available; bit-identical to calling evaluate() per point either
  /// way). Requires out.size() == xs.size(); the spans may not overlap.
  void evaluate_many(std::span<const Fp61> xs, std::span<Fp61> out) const;

  /// Constant term P(0) (zero for the zero polynomial).
  Fp61 constant_term() const {
    return coeffs_.empty() ? Fp61::zero() : coeffs_.front();
  }

  friend Polynomial operator+(const Polynomial& a, const Polynomial& b);
  friend Polynomial operator-(const Polynomial& a, const Polynomial& b);
  friend Polynomial operator*(const Polynomial& a, const Polynomial& b);
  Polynomial& operator+=(const Polynomial& o) { return *this = *this + o; }

  /// Multiply by a scalar.
  friend Polynomial operator*(Fp61 s, const Polynomial& p);

  friend bool operator==(const Polynomial& a, const Polynomial& b) {
    return a.coeffs_ == b.coeffs_;
  }

 private:
  void trim();
  std::vector<Fp61> coeffs_;
};

}  // namespace mpciot::field
