#!/usr/bin/env python3
"""Loopback launcher for the distributed rt runtime.

Spawns one `mpciot-coordinator` plus N `mpciot-node` processes on this
machine (N can be hundreds), waits the campaign out, and prints a one-
line verdict per round from the coordinator's JSON report. The report
itself is deterministic — run the same deployment twice and `cmp` the
two output files to check byte-identity.

Usage:
  tools/distributed_launch.py --nodes 64 --rounds 3 --seed 1 \
      [--build-dir build] [--out report.json] [--crash NODE:ROUND ...] \
      [--t1-ms 2000] [--t2-ms 4000]

Exit codes: 0 campaign ok, 1 coordinator or node failure, 2 usage error.
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time


def parse_crash(spec):
    try:
        node, rnd = spec.split(":")
        return int(node), int(rnd)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--crash wants NODE:ROUND, got {spec!r}")


def wait_for_port(port_file, proc, timeout_s=15.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            sys.exit("coordinator exited before publishing its port")
        try:
            text = port_file.read_text().strip()
            if text:
                return int(text)
        except FileNotFoundError:
            pass
        time.sleep(0.02)
    sys.exit("timed out waiting for the coordinator port file")


def main():
    ap = argparse.ArgumentParser(
        description="Run a distributed rt campaign over loopback TCP.")
    ap.add_argument("--nodes", type=int, default=64)
    ap.add_argument("--rounds", type=int, default=1)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--generation", type=int, default=1)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build dir holding src/rt/mpciot-*")
    ap.add_argument("--out", default=None,
                    help="coordinator JSON report path (default: stdout)")
    ap.add_argument("--crash", type=parse_crash, action="append", default=[],
                    metavar="NODE:ROUND",
                    help="inject a mid-round crash (repeatable)")
    ap.add_argument("--t1-ms", type=int, default=2000)
    ap.add_argument("--t2-ms", type=int, default=4000)
    args = ap.parse_args()
    if args.nodes < 2:
        ap.error("--nodes must be >= 2")

    rt_dir = pathlib.Path(args.build_dir) / "src" / "rt"
    coordinator_bin = rt_dir / "mpciot-coordinator"
    node_bin = rt_dir / "mpciot-node"
    for binary in (coordinator_bin, node_bin):
        if not binary.exists():
            sys.exit(f"{binary} not built (cmake --build {args.build_dir} "
                     "--target mpciot-node mpciot-coordinator)")

    crash_of = dict(args.crash)
    with tempfile.TemporaryDirectory(prefix="mpciot_rt_") as tmp:
        port_file = pathlib.Path(tmp) / "port"
        out_file = args.out or str(pathlib.Path(tmp) / "report.json")
        coordinator = subprocess.Popen([
            str(coordinator_bin), "--nodes", str(args.nodes),
            "--rounds", str(args.rounds), "--seed", str(args.seed),
            "--generation", str(args.generation),
            "--t1-ms", str(args.t1_ms), "--t2-ms", str(args.t2_ms),
            "--port-file", str(port_file), "--out", out_file,
        ])
        port = wait_for_port(port_file, coordinator)

        nodes = []
        for n in range(args.nodes):
            cmd = [
                str(node_bin), "--node", str(n), "--nodes", str(args.nodes),
                "--port", str(port), "--seed", str(args.seed),
                "--generation", str(args.generation),
            ]
            if n in crash_of:
                cmd += ["--crash-at-round", str(crash_of[n])]
            nodes.append(subprocess.Popen(cmd))

        coordinator_exit = coordinator.wait()
        node_failures = 0
        for n, proc in enumerate(nodes):
            code = proc.wait()
            expected = 2 if n in crash_of else 0
            if code != expected:
                node_failures += 1
                print(f"node {n}: unexpected exit {code}", file=sys.stderr)

        report = json.loads(pathlib.Path(out_file).read_text())
        for row in report["scenarios"][0]["rows"]:
            verdict = "ok" if row["ok"] else "FAILED"
            crashed = f" crashed={row['crashed']}" if row["crashed"] else ""
            print(f"round {row['round']}: {verdict} "
                  f"contributors={row['contributors']}/{row['nodes']} "
                  f"aggregate={row['aggregate']}{crashed}")
        if args.out is None:
            print(json.dumps(report, indent=2))

    ok = coordinator_exit == 0 and node_failures == 0
    print(f"coordinator exit {coordinator_exit}, "
          f"{node_failures} unexpected node exits")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
