#!/usr/bin/env python3
"""Microbenchmark perf gate.

Runs the google-benchmark binary `bench_micro`, normalizes its JSON
output into a stable, diff-friendly shape, and either writes that as the
committed baseline (BENCH_micro.json) or compares against it and fails
on regression.

Normalization drops everything machine- and run-specific (timestamps,
load average, CPU cache shapes, iteration counts) and keeps one number
per benchmark: median-of-repetitions real time in nanoseconds. The
committed file is therefore byte-stable in *structure*; the values are
measurements and move with the hardware, which is why `check` applies a
ratio threshold instead of exact comparison.

Usage:
  perf_gate.py run   --bench <path> --out BENCH_micro.json
  perf_gate.py check --bench <path> --baseline BENCH_micro.json \
                     [--threshold 1.6] [--min-ns 50]

Exit codes: 0 ok, 1 regression(s) found, 2 usage/environment error.
"""

import argparse
import json
import subprocess
import sys

# Benchmarks are compared by ratio current/baseline; anything faster or
# within the threshold passes. Sub-`min_ns` benchmarks are skipped in
# `check`: a 4 ns kernel regressing to 7 ns is inside timer jitter on a
# shared CI runner, not a signal.
DEFAULT_THRESHOLD = 1.6
DEFAULT_MIN_NS = 50.0
REPETITIONS = 5


def run_bench(bench_path, bench_filter=None):
    cmd = [
        bench_path,
        "--benchmark_format=json",
        f"--benchmark_repetitions={REPETITIONS}",
        "--benchmark_report_aggregates_only=true",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        sys.exit(2)
    return json.loads(proc.stdout)


def normalize(doc):
    """One {name: median_real_time_ns} per benchmark, sorted by name."""
    times = {}
    for b in doc.get("benchmarks", []):
        # With report_aggregates_only we see <name>_mean/_median/_stddev
        # (and _cv on newer versions); keep the median.
        if b.get("aggregate_name") != "median":
            continue
        name = b["run_name"]
        if b.get("time_unit", "ns") != "ns":
            raise SystemExit(f"unexpected time unit for {name}")
        times[name] = round(float(b["real_time"]), 1)
    if not times:
        raise SystemExit("no benchmark medians found in output")
    return {"schema": "ctagg-bench-micro-v1",
            "time_unit": "ns",
            "repetitions": REPETITIONS,
            "benchmarks": dict(sorted(times.items()))}


def cmd_run(args):
    doc = normalize(run_bench(args.bench, args.filter))
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=False)
        f.write("\n")
    print(f"wrote {args.out} ({len(doc['benchmarks'])} benchmarks)")
    return 0


def cmd_check(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    base = baseline["benchmarks"]
    current = normalize(run_bench(args.bench, args.filter))["benchmarks"]

    failures = []
    missing = []
    for name, base_ns in sorted(base.items()):
        if name not in current:
            missing.append(name)
            continue
        cur_ns = current[name]
        if base_ns < args.min_ns:
            status = "skip (below min-ns)"
        elif cur_ns > base_ns * args.threshold:
            status = "REGRESSION"
            failures.append(name)
        else:
            status = "ok"
        ratio = cur_ns / base_ns if base_ns else float("inf")
        print(f"{name:45s} {base_ns:12.1f} -> {cur_ns:12.1f} ns  "
              f"x{ratio:5.2f}  {status}")
    for name in sorted(set(current) - set(base)):
        print(f"{name:45s} {'(new, no baseline)':>30s}")

    if missing:
        print(f"\nFAIL: {len(missing)} baseline benchmark(s) no longer "
              f"reported: {', '.join(missing)}")
        return 1
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond "
              f"x{args.threshold}: {', '.join(failures)}")
        return 1
    print(f"\nOK: {len(base)} benchmarks within x{args.threshold} "
          "of baseline")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="mode", required=True)
    for mode in ("run", "check"):
        p = sub.add_parser(mode)
        p.add_argument("--bench", required=True,
                       help="path to the bench_micro binary")
        p.add_argument("--filter", default=None,
                       help="optional --benchmark_filter regex")
        if mode == "run":
            p.add_argument("--out", default="BENCH_micro.json")
        else:
            p.add_argument("--baseline", default="BENCH_micro.json")
            p.add_argument("--threshold", type=float,
                           default=DEFAULT_THRESHOLD)
            p.add_argument("--min-ns", type=float, default=DEFAULT_MIN_NS)
    args = ap.parse_args()
    return cmd_run(args) if args.mode == "run" else cmd_check(args)


if __name__ == "__main__":
    sys.exit(main())
