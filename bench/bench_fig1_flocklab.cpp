// Reproduces Fig. 1 (a) Latency and (b) Radio-on time — FlockLab,
// 26 nodes, sources in {3, 6, 10, 24}, S4 NTX = 6 (the value the paper
// found sufficient on FlockLab).
#include "fig1_common.hpp"

#include "net/testbeds.hpp"

int main(int argc, char** argv) {
  using namespace mpciot;
  const bench::Fig1Options opt = bench::parse_fig1_options(argc, argv);
  const net::Topology topo = net::testbeds::flocklab();
  const crypto::KeyStore keys(opt.seed, topo.size());

  std::vector<bench::Fig1Row> rows;
  for (std::size_t sources : {3u, 6u, 10u, 24u}) {
    rows.push_back(
        bench::run_fig1_point(topo, keys, sources, /*s4_ntx=*/6, opt));
  }
  bench::print_fig1("FlockLab-like", topo, rows, opt);
  return 0;
}
