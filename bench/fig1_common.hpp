// Shared helpers for the Fig. 1 scenarios (bench/scenarios/
// scenario_fig1.cpp). Option parsing previously lived here as an
// ad-hoc strtoul loop that silently parsed malformed numbers as 0; all
// bench binaries now share the strict bench_core::OptionParser instead
// (see bench_core/options.hpp and scenarios/scenarios.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace mpciot::bench {

/// Pick `count` source nodes spread evenly over the id space (matches
/// "different number of source nodes" with spatial diversity).
inline std::vector<NodeId> spread_sources(std::size_t network,
                                          std::size_t count) {
  std::vector<NodeId> out;
  out.reserve(count);
  if (count >= network) {
    for (NodeId i = 0; i < network; ++i) out.push_back(i);
    return out;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<NodeId>(i * (network - 1) /
                                      (count > 1 ? count - 1 : 1)));
  }
  // De-duplicate collisions from rounding by linear probing.
  std::vector<char> used(network, 0);
  for (NodeId& n : out) {
    while (used[n]) n = (n + 1) % static_cast<NodeId>(network);
    used[n] = 1;
  }
  return out;
}

}  // namespace mpciot::bench
