// Shared harness for the two panels-pairs of Fig. 1: sweep the number of
// source nodes on a testbed, run S3 and S4 for `reps` iterations each,
// and print the latency / radio-on-time rows the paper plots (log-scale
// ms), plus the headline speedup ratios at the full-network point.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "crypto/keystore.hpp"
#include "metrics/experiment.hpp"
#include "metrics/table.hpp"
#include "net/topology.hpp"

namespace mpciot::bench {

struct Fig1Options {
  std::uint32_t reps = 20;
  std::uint64_t seed = 1;
  bool csv = false;
};

inline Fig1Options parse_fig1_options(int argc, char** argv) {
  Fig1Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      opt.reps = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--csv") {
      opt.csv = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--reps N] [--seed S] [--csv]\n", argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

/// Pick `count` source nodes spread evenly over the id space (matches
/// "different number of source nodes" with spatial diversity).
inline std::vector<NodeId> spread_sources(std::size_t network,
                                          std::size_t count) {
  std::vector<NodeId> out;
  out.reserve(count);
  if (count >= network) {
    for (NodeId i = 0; i < network; ++i) out.push_back(i);
    return out;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<NodeId>(i * (network - 1) / (count > 1 ? count - 1 : 1)));
  }
  // De-duplicate collisions from rounding by linear probing.
  std::vector<char> used(network, 0);
  for (NodeId& n : out) {
    while (used[n]) n = (n + 1) % static_cast<NodeId>(network);
    used[n] = 1;
  }
  return out;
}

struct Fig1Row {
  std::size_t sources;
  metrics::TrialStats s3;
  metrics::TrialStats s4;
  std::uint32_t s3_ntx;
  std::uint32_t s4_ntx;
  std::size_t degree;
  std::size_t holders;
};

inline Fig1Row run_fig1_point(const net::Topology& topo,
                              const crypto::KeyStore& keys,
                              std::size_t source_count,
                              std::uint32_t s4_ntx, const Fig1Options& opt) {
  Fig1Row row;
  row.sources = source_count;
  row.s4_ntx = s4_ntx;
  const std::vector<NodeId> sources =
      spread_sources(topo.size(), source_count);
  row.degree = core::paper_degree(sources.size());

  crypto::Xoshiro256 cal_rng(opt.seed ^ 0xCA11B007ull);
  row.s3_ntx = core::suggest_s3_ntx(topo, sources, /*trials=*/25, cal_rng);

  const core::SssProtocol s3(
      topo, keys, core::make_s3_config(topo, sources, row.degree, row.s3_ntx));
  const core::SssProtocol s4(
      topo, keys, core::make_s4_config(topo, sources, row.degree, s4_ntx));
  row.holders = s4.config().share_holders.size();

  metrics::ExperimentSpec spec;
  spec.repetitions = opt.reps;
  spec.base_seed = opt.seed;
  row.s3 = metrics::run_trials(s3, spec);
  row.s4 = metrics::run_trials(s4, spec);
  return row;
}

inline void print_fig1(const char* testbed_name, const net::Topology& topo,
                       const std::vector<Fig1Row>& rows,
                       const Fig1Options& opt) {
  std::printf("== Fig. 1 (%s, %zu nodes, diameter %u) — %u iterations/point ==\n",
              testbed_name, topo.size(), topo.diameter(), opt.reps);

  metrics::Table latency({"sources", "degree", "S3 ntx", "S4 ntx",
                          "S3 latency (ms)", "S4 latency (ms)", "speedup"});
  metrics::Table radio({"sources", "degree", "S3 radio-on (ms)",
                        "S4 radio-on (ms)", "reduction"});
  metrics::Table quality({"sources", "S3 success", "S4 success",
                          "S3 delivery", "S4 delivery"});

  for (const Fig1Row& r : rows) {
    const double s3_lat = r.s3.latency_max_ms.mean();
    const double s4_lat = r.s4.latency_max_ms.mean();
    const double s3_radio = r.s3.radio_on_max_ms.mean();
    const double s4_radio = r.s4.radio_on_max_ms.mean();
    latency.add_row({std::to_string(r.sources), std::to_string(r.degree),
                     std::to_string(r.s3_ntx), std::to_string(r.s4_ntx),
                     metrics::Table::num(s3_lat), metrics::Table::num(s4_lat),
                     metrics::Table::num(s3_lat / s4_lat, 2) + "x"});
    radio.add_row({std::to_string(r.sources), std::to_string(r.degree),
                   metrics::Table::num(s3_radio),
                   metrics::Table::num(s4_radio),
                   metrics::Table::num(s3_radio / s4_radio, 2) + "x"});
    quality.add_row({std::to_string(r.sources),
                     metrics::Table::num(r.s3.success_ratio.mean() * 100) + "%",
                     metrics::Table::num(r.s4.success_ratio.mean() * 100) + "%",
                     metrics::Table::num(r.s3.share_delivery.mean() * 100) + "%",
                     metrics::Table::num(r.s4.share_delivery.mean() * 100) + "%"});
  }

  std::printf("\n-- (a/c) Latency --\n");
  latency.print(std::cout);
  std::printf("\n-- (b/d) Radio-on time --\n");
  radio.print(std::cout);
  std::printf("\n-- correctness --\n");
  quality.print(std::cout);

  const Fig1Row& full = rows.back();
  std::printf("\nheadline (full network, %zu sources): S4 %.1fx faster, "
              "%.1fx less radio-on\n",
              full.sources,
              full.s3.latency_max_ms.mean() / full.s4.latency_max_ms.mean(),
              full.s3.radio_on_max_ms.mean() / full.s4.radio_on_max_ms.mean());

  if (opt.csv) {
    std::printf("\n-- CSV (latency) --\n");
    latency.print_csv(std::cout);
    std::printf("-- CSV (radio-on) --\n");
    radio.print_csv(std::cout);
  }
}

}  // namespace mpciot::bench
