// Reproduces the §II/§III chain-size claim: the naive sharing phase needs
// an O(n^2) chain while the scalable variant trims it to O(n * m) with
// m = k + 1 + slack, k = floor(n/3).
//
// Pure schedule arithmetic plus the resulting per-chain-slot airtime, so
// this bench is exact (no simulation noise).
#include <cstdio>
#include <iostream>

#include "core/protocol.hpp"
#include "core/wire.hpp"
#include "ct/chain_schedule.hpp"
#include "metrics/table.hpp"
#include "net/testbeds.hpp"

using namespace mpciot;

int main() {
  const net::RadioParams radio;
  const SimTime subslot =
      radio.subslot_us(core::SharePacket::kWireSize);

  std::printf("== Sharing-phase chain scaling (subslot = %lld us) ==\n",
              static_cast<long long>(subslot));
  metrics::Table table({"n sources", "degree k", "S3 chain", "S4 chain",
                        "ratio", "S3 slot (ms)", "S4 slot (ms)"});

  for (std::size_t n : {3u, 6u, 10u, 16u, 24u, 26u, 32u, 45u, 64u}) {
    std::vector<NodeId> sources(n);
    for (NodeId i = 0; i < n; ++i) sources[i] = i;
    const std::size_t k = core::paper_degree(n);
    const std::size_t m = std::min<std::size_t>(k + 3, n);

    const std::size_t s3_chain = n * n;
    const std::size_t s4_chain = n * m;
    table.add_row(
        {std::to_string(n), std::to_string(k), std::to_string(s3_chain),
         std::to_string(s4_chain),
         metrics::Table::num(static_cast<double>(s3_chain) /
                                 static_cast<double>(s4_chain),
                             2) +
             "x",
         metrics::Table::ms_from_us(
             static_cast<double>(s3_chain) * static_cast<double>(subslot)),
         metrics::Table::ms_from_us(
             static_cast<double>(s4_chain) * static_cast<double>(subslot))});
  }
  table.print(std::cout);

  // Cross-check against the real schedule builder on the two testbeds.
  for (const auto& [name, topo] :
       {std::pair<const char*, net::Topology>{"FlockLab",
                                              net::testbeds::flocklab()},
        std::pair<const char*, net::Topology>{"DCube",
                                              net::testbeds::dcube()}}) {
    std::vector<NodeId> sources(topo.size());
    for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;
    const std::size_t k = core::paper_degree(sources.size());
    const auto s3_cfg = core::make_s3_config(topo, sources, k, 8);
    const auto s4_cfg = core::make_s4_config(topo, sources, k, 6);
    const auto s3_sched =
        ct::make_sharing_schedule(s3_cfg.sources, s3_cfg.share_holders);
    const auto s4_sched =
        ct::make_sharing_schedule(s4_cfg.sources, s4_cfg.share_holders);
    std::printf("\n%s (n=%zu, k=%zu): S3 chain %zu sub-slots, S4 chain %zu "
                "sub-slots (%.2fx smaller)\n",
                name, sources.size(), k, s3_sched.size(), s4_sched.size(),
                static_cast<double>(s3_sched.size()) /
                    static_cast<double>(s4_sched.size()));
  }
  return 0;
}
