// Thin shim over the scenario registry: equivalent to
// `mpciot-bench --filter chain_scaling`. See
// scenarios/scenario_chain_scaling.cpp.
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  return mpciot::bench::run_legacy_shim("chain_scaling", argc, argv);
}
