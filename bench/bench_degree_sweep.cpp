// Reproduces the §IV remark: "further improvement in the latency and
// radio-on time would be visible in S4 compared to S3 for an even lesser
// degree of the polynomial used."
//
// Sweeps the polynomial degree k on the FlockLab testbed with all nodes
// as sources and reports S4 latency/radio-on versus k (S3 is shown once
// as the k-independent reference: its chain is n^2 regardless of k).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/protocol.hpp"
#include "crypto/keystore.hpp"
#include "metrics/experiment.hpp"
#include "metrics/table.hpp"
#include "net/testbeds.hpp"

using namespace mpciot;

int main(int argc, char** argv) {
  std::uint32_t reps = 15;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--reps N] [--seed S]\n", argv[0]);
      return 2;
    }
  }

  const net::Topology topo = net::testbeds::flocklab();
  const crypto::KeyStore keys(seed, topo.size());
  std::vector<NodeId> sources(topo.size());
  for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;

  metrics::ExperimentSpec spec;
  spec.repetitions = reps;
  spec.base_seed = seed;

  std::printf("== Degree sweep (FlockLab-like, %zu sources, S4 NTX=6) ==\n",
              sources.size());
  metrics::Table table({"degree k", "holders m", "S4 latency (ms)",
                        "S4 radio-on (ms)", "success", "privacy threshold"});

  for (std::size_t k : {1u, 2u, 4u, 8u, 12u, 16u, 20u}) {
    const core::SssProtocol s4(
        topo, keys, core::make_s4_config(topo, sources, k, /*ntx_low=*/6));
    const metrics::TrialStats stats = metrics::run_trials(s4, spec);
    table.add_row({std::to_string(k),
                   std::to_string(s4.config().share_holders.size()),
                   metrics::Table::num(stats.latency_max_ms.mean()),
                   metrics::Table::num(stats.radio_on_max_ms.mean()),
                   metrics::Table::num(stats.success_ratio.mean() * 100, 1) +
                       "%",
                   std::to_string(k) + " colluders"});
  }
  table.print(std::cout);

  // The S3 reference (k does not change its chain size).
  const std::size_t k_paper = core::paper_degree(sources.size());
  crypto::Xoshiro256 cal(seed);
  const std::uint32_t ntx_full = core::suggest_s3_ntx(topo, sources, 10, cal);
  const core::SssProtocol s3(
      topo, keys, core::make_s3_config(topo, sources, k_paper, ntx_full));
  const metrics::TrialStats s3_stats = metrics::run_trials(s3, spec);
  std::printf("\nS3 reference (any k): latency %.1f ms, radio-on %.1f ms "
              "(chain is n^2 regardless of degree)\n",
              s3_stats.latency_max_ms.mean(),
              s3_stats.radio_on_max_ms.mean());
  return 0;
}
