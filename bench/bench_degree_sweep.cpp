// Thin shim over the scenario registry: equivalent to
// `mpciot-bench --filter degree_sweep`. See
// scenarios/scenario_degree_sweep.cpp.
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  return mpciot::bench::run_legacy_shim("degree_sweep", argc, argv);
}
