// google-benchmark micro benchmarks for the compute substrates: field
// arithmetic, AES primitives, Shamir dealing/reconstruction, and the
// simulator's hot loop. These pin the constant factors behind every
// simulated round.
#include <benchmark/benchmark.h>

#include "core/protocol.hpp"
#include "core/shamir.hpp"
#include "crypto/aes_ctr.hpp"
#include "crypto/bigint.hpp"
#include "crypto/cmac.hpp"
#include "crypto/prng.hpp"
#include "ct/minicast.hpp"
#include "field/lagrange.hpp"
#include "net/testbeds.hpp"

using namespace mpciot;

static void BM_Fp61Mul(benchmark::State& state) {
  field::Fp61 a{0x123456789ABCDEFull};
  const field::Fp61 b{0xFEDCBA987654321ull};
  for (auto _ : state) {
    a *= b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Fp61Mul);

static void BM_Fp61Inverse(benchmark::State& state) {
  const field::Fp61 a{0x123456789ABCDEFull};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.inverse());
  }
}
BENCHMARK(BM_Fp61Inverse);

static void BM_PolynomialEvaluate(benchmark::State& state) {
  crypto::CtrDrbg drbg(1, 0);
  const auto poly = field::Polynomial::random_with_secret(
      field::Fp61{7}, static_cast<std::size_t>(state.range(0)),
      [&] { return drbg.next_fp61(); });
  const field::Fp61 x{12345};
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.evaluate(x));
  }
}
BENCHMARK(BM_PolynomialEvaluate)->Arg(8)->Arg(15)->Arg(31);

static void BM_LagrangeAtZero(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  crypto::Xoshiro256 rng(2);
  std::vector<field::Sample> samples;
  for (std::size_t i = 0; i <= k; ++i) {
    samples.push_back(field::Sample{field::Fp61{i + 1}, rng.next_fp61()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(field::interpolate_at_zero(samples));
  }
}
BENCHMARK(BM_LagrangeAtZero)->Arg(8)->Arg(15)->Arg(31);

static void BM_AesEncryptBlock(benchmark::State& state) {
  const crypto::Aes128 aes(crypto::Aes128::Key{});
  crypto::Aes128::Block block{};
  for (auto _ : state) {
    block = aes.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock);

static void BM_AesCtr64Bytes(benchmark::State& state) {
  const crypto::AesCtr ctr(crypto::Aes128::Key{});
  std::vector<std::uint8_t> buf(64, 0xAB);
  const auto nonce = crypto::AesCtr::make_nonce(1, 2, 3, 4);
  for (auto _ : state) {
    ctr.crypt(nonce, buf, buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_AesCtr64Bytes);

static void BM_Cmac16Bytes(benchmark::State& state) {
  const crypto::Cmac mac(crypto::Aes128::Key{});
  const std::vector<std::uint8_t> msg(16, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.compute(msg));
  }
}
BENCHMARK(BM_Cmac16Bytes);

static void BM_ShamirDealAllShares(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = core::paper_degree(n);
  for (auto _ : state) {
    crypto::CtrDrbg drbg(3, 0);
    const core::ShamirDealer dealer(field::Fp61{42}, k, drbg);
    for (NodeId h = 0; h < n; ++h) {
      benchmark::DoNotOptimize(dealer.share_for(h));
    }
  }
}
BENCHMARK(BM_ShamirDealAllShares)->Arg(26)->Arg(45);

static void BM_BigIntPowmod256(benchmark::State& state) {
  crypto::Xoshiro256 rng(4);
  const crypto::BigInt base = crypto::BigInt::random_bits(256, rng);
  const crypto::BigInt exp = crypto::BigInt::random_bits(256, rng);
  const crypto::BigInt mod = crypto::BigInt::random_bits(256, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigInt::powmod(base, exp, mod));
  }
}
BENCHMARK(BM_BigIntPowmod256);

static void BM_MiniCastRoundFlocklab(benchmark::State& state) {
  const net::Topology topo = net::testbeds::flocklab();
  std::vector<ct::ChainEntry> entries;
  for (NodeId i = 0; i < topo.size(); ++i) {
    for (std::size_t j = 0; j < 9; ++j) entries.push_back(ct::ChainEntry{i});
  }
  std::uint64_t seed = 0;
  for (auto _ : state) {
    crypto::Xoshiro256 rng(++seed);
    ct::MiniCastConfig cfg;
    cfg.initiator = topo.center_node();
    cfg.ntx = 6;
    benchmark::DoNotOptimize(run_minicast(topo, entries, cfg, rng));
  }
}
BENCHMARK(BM_MiniCastRoundFlocklab);

BENCHMARK_MAIN();
