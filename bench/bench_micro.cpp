// google-benchmark micro benchmarks for the compute substrates: field
// arithmetic, AES primitives, Shamir dealing/reconstruction, and the
// simulator's hot loop. These pin the constant factors behind every
// simulated round.
#include <benchmark/benchmark.h>

#include "core/protocol.hpp"
#include "core/shamir.hpp"
#include "crypto/aes_ctr.hpp"
#include "crypto/bigint.hpp"
#include "crypto/cmac.hpp"
#include "crypto/feldman.hpp"
#include "crypto/prng.hpp"
#include "ct/minicast.hpp"
#include "field/fp61_batch.hpp"
#include "field/lagrange.hpp"
#include "net/testbeds.hpp"

using namespace mpciot;

// Backend-parameterized benchmarks encode the requested backend in
// range(0) via these constants; a backend the build/CPU cannot run is
// reported as skipped rather than silently measured on the fallback.
namespace {
constexpr std::int64_t kBackendScalar = 0;
constexpr std::int64_t kBackendSimd = 1;

bool select_field_backend(benchmark::State& state) {
  const auto want = state.range(0) == kBackendSimd
                        ? field::fp61_batch::Backend::kAvx2
                        : field::fp61_batch::Backend::kScalar;
  if (!field::fp61_batch::force_backend(want)) {
    state.SkipWithError("AVX2 backend unavailable");
    return false;
  }
  return true;
}

bool select_aes_backend(benchmark::State& state) {
  if (!crypto::aes_backend::force_aesni(state.range(0) == kBackendSimd)) {
    state.SkipWithError("AES-NI backend unavailable");
    return false;
  }
  return true;
}

void backend_arg_names(benchmark::internal::Benchmark* b) {
  b->Arg(kBackendScalar)->Arg(kBackendSimd);
}
}  // namespace

static void BM_Fp61Mul(benchmark::State& state) {
  field::Fp61 a{0x123456789ABCDEFull};
  const field::Fp61 b{0xFEDCBA987654321ull};
  for (auto _ : state) {
    a *= b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Fp61Mul);

static void BM_Fp61Inverse(benchmark::State& state) {
  const field::Fp61 a{0x123456789ABCDEFull};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.inverse());
  }
}
BENCHMARK(BM_Fp61Inverse);

static void BM_PolynomialEvaluate(benchmark::State& state) {
  crypto::CtrDrbg drbg(1, 0);
  const auto poly = field::Polynomial::random_with_secret(
      field::Fp61{7}, static_cast<std::size_t>(state.range(0)),
      [&] { return drbg.next_fp61(); });
  const field::Fp61 x{12345};
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.evaluate(x));
  }
}
BENCHMARK(BM_PolynomialEvaluate)->Arg(8)->Arg(15)->Arg(31);

static void BM_LagrangeAtZero(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  crypto::Xoshiro256 rng(2);
  std::vector<field::Sample> samples;
  for (std::size_t i = 0; i <= k; ++i) {
    samples.push_back(field::Sample{field::Fp61{i + 1}, rng.next_fp61()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(field::interpolate_at_zero(samples));
  }
}
BENCHMARK(BM_LagrangeAtZero)->Arg(8)->Arg(15)->Arg(31);

static void BM_Fp61BatchMul1k(benchmark::State& state) {
  if (!select_field_backend(state)) return;
  crypto::Xoshiro256 rng(11);
  std::vector<std::uint64_t> a(1024), b(1024), out(1024);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.next_fp61().value();
    b[i] = rng.next_fp61().value();
  }
  for (auto _ : state) {
    field::fp61_batch::mul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
  field::fp61_batch::force_backend(field::fp61_batch::Backend::kAvx2);
}
BENCHMARK(BM_Fp61BatchMul1k)->Apply(backend_arg_names);

static void BM_Fp61BatchHorner1k(benchmark::State& state) {
  if (!select_field_backend(state)) return;
  crypto::Xoshiro256 rng(12);
  std::vector<std::uint64_t> coeffs(16), xs(1024), out(1024);
  for (auto& c : coeffs) c = rng.next_fp61().value();
  for (auto& x : xs) x = rng.next_fp61().value();
  for (auto _ : state) {
    field::fp61_batch::horner_eval(coeffs, xs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
  field::fp61_batch::force_backend(field::fp61_batch::Backend::kAvx2);
}
BENCHMARK(BM_Fp61BatchHorner1k)->Apply(backend_arg_names);

static void BM_EvaluateMany45(benchmark::State& state) {
  if (!select_field_backend(state)) return;
  crypto::CtrDrbg drbg(13, 0);
  const auto poly = field::Polynomial::random_with_secret(
      field::Fp61{7}, 15, [&] { return drbg.next_fp61(); });
  std::vector<field::Fp61> xs(45), out(45);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = field::Fp61{i + 1};
  for (auto _ : state) {
    poly.evaluate_many(xs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 45);
  field::fp61_batch::force_backend(field::fp61_batch::Backend::kAvx2);
}
BENCHMARK(BM_EvaluateMany45)->Apply(backend_arg_names);

static void BM_LagrangeAtZeroWarm(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  crypto::Xoshiro256 rng(14);
  std::vector<field::Sample> samples;
  for (std::size_t i = 0; i <= k; ++i) {
    samples.push_back(field::Sample{field::Fp61{i + 1}, rng.next_fp61()});
  }
  field::LagrangeScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(field::reconstruct_at_zero(samples, scratch));
  }
}
BENCHMARK(BM_LagrangeAtZeroWarm)->Arg(8)->Arg(15)->Arg(31);

static void BM_AesEncryptBlock(benchmark::State& state) {
  const crypto::Aes128 aes(crypto::Aes128::Key{});
  crypto::Aes128::Block block{};
  for (auto _ : state) {
    block = aes.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock);

static void BM_AesCtr64Bytes(benchmark::State& state) {
  const crypto::AesCtr ctr(crypto::Aes128::Key{});
  std::vector<std::uint8_t> buf(64, 0xAB);
  const auto nonce = crypto::AesCtr::make_nonce(1, 2, 3, 4);
  for (auto _ : state) {
    ctr.crypt(nonce, buf, buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_AesCtr64Bytes);

static void BM_AesEncryptBlocks64(benchmark::State& state) {
  if (!select_aes_backend(state)) return;
  const crypto::Aes128 aes(crypto::Aes128::Key{});
  std::vector<std::uint8_t> buf(64 * 16, 0x3C);
  for (auto _ : state) {
    aes.encrypt_blocks(buf.data(), buf.data(), 64);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          16);
  crypto::aes_backend::force_aesni(crypto::aes_backend::aesni_supported());
}
BENCHMARK(BM_AesEncryptBlocks64)->Apply(backend_arg_names);

static void BM_AesCtr1KiB(benchmark::State& state) {
  if (!select_aes_backend(state)) return;
  const crypto::AesCtr ctr(crypto::Aes128::Key{});
  std::vector<std::uint8_t> buf(1024, 0xAB);
  const auto nonce = crypto::AesCtr::make_nonce(1, 2, 3, 4);
  for (auto _ : state) {
    ctr.crypt(nonce, buf, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
  crypto::aes_backend::force_aesni(crypto::aes_backend::aesni_supported());
}
BENCHMARK(BM_AesCtr1KiB)->Apply(backend_arg_names);

static void BM_CtrDrbgFill1KiB(benchmark::State& state) {
  if (!select_aes_backend(state)) return;
  crypto::CtrDrbg drbg(21, 0);
  std::vector<std::uint8_t> buf(1024);
  for (auto _ : state) {
    drbg.fill(buf.data(), buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
  crypto::aes_backend::force_aesni(crypto::aes_backend::aesni_supported());
}
BENCHMARK(BM_CtrDrbgFill1KiB)->Apply(backend_arg_names);

static void BM_FeldmanVerifyShare(benchmark::State& state) {
  crypto::CtrDrbg drbg(22, 0);
  const auto poly = field::Polynomial::random_with_secret(
      field::Fp61{42}, 8, [&] { return drbg.next_fp61(); });
  const auto commitment = crypto::feldman::commit(poly);
  const field::Fp61 x{17};
  const field::Fp61 share = poly.evaluate(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::feldman::verify_share(commitment, x, share));
  }
}
BENCHMARK(BM_FeldmanVerifyShare);

static void BM_FeldmanVerifyCached(benchmark::State& state) {
  crypto::CtrDrbg drbg(22, 0);
  const auto poly = field::Polynomial::random_with_secret(
      field::Fp61{42}, 8, [&] { return drbg.next_fp61(); });
  const auto commitment = crypto::feldman::commit(poly);
  const crypto::feldman::VerifyContext ctx(commitment);
  const field::Fp61 x{17};
  const field::Fp61 share = poly.evaluate(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.verify(x, share));
  }
}
BENCHMARK(BM_FeldmanVerifyCached);

static void BM_Cmac16Bytes(benchmark::State& state) {
  const crypto::Cmac mac(crypto::Aes128::Key{});
  const std::vector<std::uint8_t> msg(16, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.compute(msg));
  }
}
BENCHMARK(BM_Cmac16Bytes);

static void BM_ShamirDealAllShares(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = core::paper_degree(n);
  for (auto _ : state) {
    crypto::CtrDrbg drbg(3, 0);
    const core::ShamirDealer dealer(field::Fp61{42}, k, drbg);
    for (NodeId h = 0; h < n; ++h) {
      benchmark::DoNotOptimize(dealer.share_for(h));
    }
  }
}
BENCHMARK(BM_ShamirDealAllShares)->Arg(26)->Arg(45);

static void BM_BigIntPowmod256(benchmark::State& state) {
  crypto::Xoshiro256 rng(4);
  const crypto::BigInt base = crypto::BigInt::random_bits(256, rng);
  const crypto::BigInt exp = crypto::BigInt::random_bits(256, rng);
  const crypto::BigInt mod = crypto::BigInt::random_bits(256, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigInt::powmod(base, exp, mod));
  }
}
BENCHMARK(BM_BigIntPowmod256);

static void BM_MiniCastRoundFlocklab(benchmark::State& state) {
  const net::Topology topo = net::testbeds::flocklab();
  std::vector<ct::ChainEntry> entries;
  for (NodeId i = 0; i < topo.size(); ++i) {
    for (std::size_t j = 0; j < 9; ++j) entries.push_back(ct::ChainEntry{i});
  }
  std::uint64_t seed = 0;
  for (auto _ : state) {
    crypto::Xoshiro256 rng(++seed);
    ct::MiniCastConfig cfg;
    cfg.initiator = topo.center_node();
    cfg.ntx = 6;
    benchmark::DoNotOptimize(run_minicast(topo, entries, cfg, rng));
  }
}
BENCHMARK(BM_MiniCastRoundFlocklab);

BENCHMARK_MAIN();
