// mpciot-bench: one CLI over every registered benchmark scenario.
//
//   mpciot-bench --list
//   mpciot-bench --filter fig1 --reps 2 --seed 3 --json bench.json
//   mpciot-bench --jobs 4              # trial-parallel, same JSON bytes
//
// The emitted JSON ("mpciot-bench/1") contains only seed-determined
// results — no wall-clock, no job count — so --jobs N and --jobs 1
// produce byte-identical files. Wall-clock per scenario is printed to
// stderr.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_core/options.hpp"
#include "bench_core/registry.hpp"
#include "bench_core/runner.hpp"
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace mpciot;

  bench_core::ScenarioContext ctx;
  ctx.reps = 0;  // per-scenario default
  bool list = false;
  bool csv = false;
  bool no_table = false;
  std::uint32_t jobs = 0;  // default: hardware concurrency
  std::string filter;
  std::string json_path;
  std::string out_path;

  bench_core::OptionParser parser(
      "Unified benchmark runner for the ctagg scenario registry.");
  parser.add_flag("--list", &list, "list scenarios and exit");
  parser.add_string("--filter", &filter, "substring filter on scenario names");
  parser.add_u32("--reps", &ctx.reps,
                 "rounds per configuration (0 = scenario default)");
  parser.add_u64("--seed", &ctx.seed, "base RNG seed");
  parser.add_u32("--jobs", &jobs,
                 "trial worker threads (0 = hardware concurrency, 1 = "
                 "serial); results are identical for any value");
  parser.add_string("--json", &json_path, "write results as JSON to this file");
  parser.add_string("--out", &out_path,
                    "write results to this file; format from the "
                    "extension (.json or .csv); errors if unwritable");
  parser.add_flag("--csv", &csv, "also emit CSV tables");
  parser.add_flag("--no-table", &no_table, "skip the human-readable tables");
  parser.add_key_value_list("--param", &ctx.params,
                            "scenario-specific override, e.g. max_ntx=12");
  if (!parser.parse(argc, argv)) {
    std::fprintf(stderr, "%s: %s\n%s", argv[0], parser.error().c_str(),
                 parser.usage(argv[0]).c_str());
    return 2;
  }
  ctx.jobs = jobs;

  bench_core::Registry registry;
  bench::register_all_scenarios(registry);

  if (list) {
    for (const bench_core::ScenarioSpec& s : registry.all()) {
      std::printf("%-18s %s%s\n", s.name.c_str(), s.description.c_str(),
                  s.deterministic ? "" : " [non-deterministic]");
    }
    return 0;
  }

  const std::vector<const bench_core::ScenarioSpec*> selected =
      registry.match(filter);
  if (selected.empty()) {
    std::fprintf(stderr, "%s: no scenario matches filter '%s' (see --list)\n",
                 argv[0], filter.c_str());
    return 1;
  }

  // Every --param key must be declared by a selected scenario and carry
  // a valid u32 value — a typo must not silently run with defaults.
  for (const auto& [key, value] : ctx.params) {
    bool known = false;
    for (const bench_core::ScenarioSpec* spec : selected) {
      for (const std::string& name : spec->param_names) {
        if (name == key) known = true;
      }
    }
    if (!known) {
      std::fprintf(stderr,
                   "%s: no selected scenario accepts --param '%s' (see "
                   "--list descriptions)\n",
                   argv[0], key.c_str());
      return 2;
    }
    std::uint32_t parsed = 0;
    if (!bench_core::parse_u32(value, &parsed)) {
      std::fprintf(stderr,
                   "%s: --param %s needs an unsigned 32-bit decimal value, "
                   "got '%s'\n",
                   argv[0], key.c_str(), value.c_str());
      return 2;
    }
  }

  // Pre-flight the --out path: a typo'd extension or unwritable
  // directory must fail in milliseconds, not after the full sweep.
  if (!out_path.empty()) {
    if (!out_path.ends_with(".json") && !out_path.ends_with(".csv")) {
      std::fprintf(stderr, "%s: --out path must end in .json or .csv: %s\n",
                   argv[0], out_path.c_str());
      return 1;
    }
    // Append-mode probe: verifies writability without truncating an
    // existing file before the new results exist.
    std::ofstream probe(out_path, std::ios::binary | std::ios::app);
    if (!probe) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                   out_path.c_str());
      return 1;
    }
  }

  const std::vector<bench_core::ScenarioRun> runs =
      bench_core::run_scenarios(selected, ctx, &std::cerr);

  if (!no_table) {
    bench_core::print_results(runs, std::cout, csv);
  }

  if (!json_path.empty()) {
    const bench_core::JsonValue doc =
        bench_core::results_to_json(runs, ctx.reps, ctx.seed);
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                   json_path.c_str());
      return 1;
    }
    doc.dump(out, /*indent=*/2);
    out << '\n';
    out.flush();  // surface buffered write errors (ENOSPC) before the check
    if (!out.good()) {
      std::fprintf(stderr, "%s: write to '%s' failed\n", argv[0],
                   json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }

  if (!out_path.empty()) {
    std::string error;
    if (!bench_core::write_output_file(out_path, runs, ctx.reps, ctx.seed,
                                       &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}
