// Thin shim over the scenario registry: equivalent to
// `mpciot-bench --filter fig1_dcube`. See scenarios/scenario_fig1.cpp.
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  return mpciot::bench::run_legacy_shim("fig1_dcube", argc, argv);
}
