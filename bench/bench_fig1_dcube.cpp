// Reproduces Fig. 1 (c) Latency and (d) Radio-on time — DCube, 45 nodes,
// sources in {5, 7, 12, 45}, S4 NTX = 5 (the value the paper found
// sufficient on DCube).
#include "fig1_common.hpp"

#include "net/testbeds.hpp"

int main(int argc, char** argv) {
  using namespace mpciot;
  const bench::Fig1Options opt = bench::parse_fig1_options(argc, argv);
  const net::Topology topo = net::testbeds::dcube();
  const crypto::KeyStore keys(opt.seed, topo.size());

  std::vector<bench::Fig1Row> rows;
  for (std::size_t sources : {5u, 7u, 12u, 45u}) {
    rows.push_back(
        bench::run_fig1_point(topo, keys, sources, /*s4_ntx=*/5, opt));
  }
  bench::print_fig1("DCube-like", topo, rows, opt);
  return 0;
}
