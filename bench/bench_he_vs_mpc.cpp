// Quantifies the paper's §I motivation: "most of the existing PPDA
// solutions rely on highly computation-intensive Homomorphic Encryption
// ... hence they mostly do not fit with resource-constrained IoT".
//
// Compares the per-node CPU cost of one aggregation round under
//  (a) Paillier HE (encrypt at every node, homomorphic-add chain,
//      decrypt once) at several modulus sizes, and
//  (b) Shamir share generation + point sums + Lagrange reconstruction
//      (this library's S3/S4 compute path).
// Results are wall times on this host plus an extrapolation to a
// 64 MHz Cortex-M4 class MCU (nRF52840) assuming cycle-count parity
// scaled by clock ratio — crude but the right order of magnitude.
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>

#include "core/protocol.hpp"
#include "core/shamir.hpp"
#include "crypto/paillier.hpp"
#include "metrics/table.hpp"

using namespace mpciot;

namespace {

double time_us(const std::function<void()>& fn, int iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         iters;
}

}  // namespace

int main() {
  constexpr int kNodes = 26;  // FlockLab-size round
  // Host clock estimate for the MCU extrapolation note.
  constexpr double kHostGhzOverMcu = 3.0e9 / 64.0e6;

  std::printf("== HE vs MPC compute cost, %d-node aggregation round ==\n",
              kNodes);
  metrics::Table table({"scheme", "per-node encrypt/share (us)",
                        "aggregate (us)", "decrypt/reconstruct (us)",
                        "~Cortex-M4 per-node (ms)"});

  // ---- Paillier at increasing modulus sizes ----
  for (std::size_t bits : {256u, 512u, 1024u}) {
    crypto::Xoshiro256 rng(bits);
    const auto kp = crypto::Paillier::generate(bits, rng);
    const crypto::BigInt m{12345};

    const double enc_us = time_us(
        [&] { crypto::Paillier::encrypt(kp.pub, m, rng); }, bits > 512 ? 3 : 10);
    crypto::BigInt c1 = crypto::Paillier::encrypt(kp.pub, m, rng);
    const crypto::BigInt c2 = crypto::Paillier::encrypt(kp.pub, m, rng);
    const double add_us = time_us(
        [&] { c1 = crypto::Paillier::add(kp.pub, c1, c2); }, 50);
    const double dec_us = time_us(
        [&] { crypto::Paillier::decrypt(kp.pub, kp.priv, c1); },
        bits > 512 ? 3 : 10);

    table.add_row({"Paillier-" + std::to_string(bits),
                   metrics::Table::num(enc_us),
                   metrics::Table::num(add_us * kNodes),
                   metrics::Table::num(dec_us),
                   metrics::Table::num(enc_us * kHostGhzOverMcu / 1000.0)});
  }

  // ---- Shamir (this library's compute path) ----
  {
    const std::size_t degree = core::paper_degree(kNodes);
    const double share_us = time_us(
        [&] {
          crypto::CtrDrbg drbg(1, 0);
          const core::ShamirDealer dealer(field::Fp61{12345}, degree, drbg);
          for (NodeId h = 0; h < kNodes; ++h) dealer.share_for(h);
        },
        200);
    // Point-sum aggregation: kNodes additions.
    std::vector<field::Fp61> vals(kNodes, field::Fp61{999});
    const double sum_us =
        time_us([&] { core::sum_shares(vals); }, 2000);
    // Reconstruction from degree+1 sums.
    crypto::CtrDrbg drbg(2, 0);
    const core::ShamirDealer dealer(field::Fp61{7}, degree, drbg);
    std::vector<core::Share> sums;
    for (NodeId h = 0; h < degree + 1; ++h) sums.push_back(dealer.share_for(h));
    const double rec_us = time_us(
        [&] { core::reconstruct(sums, degree); }, 500);

    table.add_row({"Shamir (k=" + std::to_string(degree) + ")",
                   metrics::Table::num(share_us, 2),
                   metrics::Table::num(sum_us, 2),
                   metrics::Table::num(rec_us, 2),
                   metrics::Table::num(share_us * kHostGhzOverMcu / 1000.0,
                                       3)});
  }

  table.print(std::cout);
  std::printf("\nnote: Paillier columns grow ~cubically with modulus size; "
              "the Shamir path is microseconds even on MCU-class silicon. "
              "SSS instead pays in *communication*, which is what the "
              "paper's CT substrate makes affordable (see bench_fig1_*).\n");
  return 0;
}
