// Thin shim over the scenario registry: equivalent to
// `mpciot-bench --filter he_vs_mpc`. See scenarios/scenario_he_vs_mpc.cpp.
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  return mpciot::bench::run_legacy_shim("he_vs_mpc", argc, argv);
}
