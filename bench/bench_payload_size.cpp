// Ablation: share width vs. round latency.
//
// CT round time is chain_slots x entries x subslot airtime, and airtime
// is linear in payload bytes — so the field the shares live in is a
// first-order performance knob. This bench compares the S4 sharing+
// reconstruction round on FlockLab for three share encodings:
//   * Fp61 shares (8 B value -> 16 B share packet, the library default),
//   * GF(65521) shares (2 B value -> 10 B packet) for 16-bit readings,
//   * GF(251) shares (1 B value -> 9 B packet) for tiny counters.
// The crypto and protocol logic are identical; only the sub-slot payload
// changes (header 4 B + ciphertext + 4 B tag).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/protocol.hpp"
#include "core/small_shamir.hpp"
#include "core/wire.hpp"
#include "ct/chain_schedule.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "net/testbeds.hpp"

using namespace mpciot;

int main(int argc, char** argv) {
  std::uint32_t reps = 10;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--reps N] [--seed S]\n", argv[0]);
      return 2;
    }
  }

  const net::Topology topo = net::testbeds::flocklab();
  std::vector<NodeId> sources(topo.size());
  for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;
  const std::size_t degree = core::paper_degree(sources.size());
  const auto cfg = core::make_s4_config(topo, sources, degree, 6);
  const auto sched =
      ct::make_sharing_schedule(cfg.sources, cfg.share_holders);

  std::printf("== Share width vs round time (FlockLab-like, S4, %u reps) ==\n",
              reps);
  metrics::Table table({"field", "share bytes", "packet bytes",
                        "sub-slot (us)", "sharing round (ms)",
                        "delivery"});

  struct Variant {
    const char* name;
    std::size_t value_bytes;
  };
  // Packet = 4 B header + ciphertext (share width) + 4 B tag.
  for (const Variant v : {Variant{"Fp61 (default)", 8},
                          Variant{"GF(65521), 16-bit", 2},
                          Variant{"GF(251), 8-bit", 1}}) {
    const std::uint32_t payload = static_cast<std::uint32_t>(8 + v.value_bytes);
    metrics::Summary round_ms;
    metrics::Summary delivery;
    for (std::uint32_t t = 0; t < reps; ++t) {
      crypto::Xoshiro256 rng(seed + t);
      ct::MiniCastConfig mc;
      mc.initiator = topo.center_node();
      mc.ntx = cfg.ntx_sharing;
      mc.payload_bytes = payload;
      mc.radio_policy = ct::RadioPolicy::kEarlyOff;
      mc.scheduled_owners = cfg.sources;
      const ct::MiniCastResult res =
          run_minicast(topo, sched.entries, mc, rng);
      round_ms.add(static_cast<double>(res.duration_us) / 1e3);
      delivery.add(res.delivery_ratio());
    }
    table.add_row({v.name, std::to_string(v.value_bytes),
                   std::to_string(payload),
                   std::to_string(topo.radio().subslot_us(payload)),
                   metrics::Table::num(round_ms.mean()),
                   metrics::Table::num(delivery.mean() * 100, 1) + "%"});
  }
  table.print(std::cout);

  // Correctness of the small-field path itself.
  const field::PrimeField f16(65521);
  std::vector<core::SmallShamirDealer> dealers;
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    crypto::CtrDrbg drbg(seed + i, i);
    const std::uint64_t reading = 100 + i;
    expected = f16.add(expected, reading);
    dealers.emplace_back(f16, reading, degree, drbg);
  }
  std::vector<core::SmallShare> sums;
  for (std::size_t h = 0; h <= degree; ++h) {
    std::uint64_t s = 0;
    for (const auto& d : dealers) {
      s = f16.add(s, d.share_for(static_cast<NodeId>(h)).value);
    }
    sums.push_back(core::SmallShare{static_cast<NodeId>(h), s});
  }
  std::printf("\n16-bit field end-to-end check: aggregate %llu (expected "
              "%llu) from %zu two-byte sums\n",
              static_cast<unsigned long long>(
                  core::small_reconstruct(f16, sums, degree)),
              static_cast<unsigned long long>(expected), sums.size());
  return 0;
}
