// Thin shim over the scenario registry: equivalent to
// `mpciot-bench --filter payload_size`. See
// scenarios/scenario_payload_size.cpp.
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  return mpciot::bench::run_legacy_shim("payload_size", argc, argv);
}
