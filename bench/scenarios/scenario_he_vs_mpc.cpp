// §I motivation: "most of the existing PPDA solutions rely on highly
// computation-intensive Homomorphic Encryption ... hence they mostly do
// not fit with resource-constrained IoT". Wall-clock comparison of
// Paillier HE versus this library's Shamir compute path, with a crude
// Cortex-M4 extrapolation. The only non-deterministic scenario: its
// rows are host timings and differ run to run.
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/shamir.hpp"
#include "crypto/paillier.hpp"
#include "scenarios/scenarios.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

double time_us(const std::function<void()>& fn, int iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         iters;
}

Rows run_he_vs_mpc(const ScenarioContext&) {
  constexpr int kNodes = 26;  // FlockLab-size round
  // Host clock estimate for the MCU extrapolation column.
  constexpr double kHostGhzOverMcu = 3.0e9 / 64.0e6;

  Rows rows;

  // ---- Paillier at increasing modulus sizes ----
  for (const std::size_t bits : {256u, 512u, 1024u}) {
    crypto::Xoshiro256 rng(bits);
    const auto kp = crypto::Paillier::generate(bits, rng);
    const crypto::BigInt m{12345};

    const double enc_us =
        time_us([&] { crypto::Paillier::encrypt(kp.pub, m, rng); },
                bits > 512 ? 3 : 10);
    crypto::BigInt c1 = crypto::Paillier::encrypt(kp.pub, m, rng);
    const crypto::BigInt c2 = crypto::Paillier::encrypt(kp.pub, m, rng);
    const double add_us =
        time_us([&] { c1 = crypto::Paillier::add(kp.pub, c1, c2); }, 50);
    const double dec_us =
        time_us([&] { crypto::Paillier::decrypt(kp.pub, kp.priv, c1); },
                bits > 512 ? 3 : 10);

    Row row;
    row.set("scheme", "paillier-" + std::to_string(bits))
        .set("encrypt_share_us", round3(enc_us))
        .set("aggregate_us", round3(add_us * kNodes))
        .set("decrypt_reconstruct_us", round3(dec_us))
        .set("mcu_per_node_ms", round3(enc_us * kHostGhzOverMcu / 1000.0));
    rows.push_back(std::move(row));
  }

  // ---- Shamir (this library's compute path) ----
  {
    const std::size_t degree = core::paper_degree(kNodes);
    const double share_us = time_us(
        [&] {
          crypto::CtrDrbg drbg(1, 0);
          const core::ShamirDealer dealer(field::Fp61{12345}, degree, drbg);
          for (NodeId h = 0; h < kNodes; ++h) dealer.share_for(h);
        },
        200);
    // Point-sum aggregation: kNodes additions.
    std::vector<field::Fp61> vals(kNodes, field::Fp61{999});
    const double sum_us = time_us([&] { core::sum_shares(vals); }, 2000);
    // Reconstruction from degree+1 sums.
    crypto::CtrDrbg drbg(2, 0);
    const core::ShamirDealer dealer(field::Fp61{7}, degree, drbg);
    std::vector<core::Share> sums;
    for (NodeId h = 0; h < degree + 1; ++h) {
      sums.push_back(dealer.share_for(h));
    }
    const double rec_us =
        time_us([&] { core::reconstruct(sums, degree); }, 500);

    Row row;
    row.set("scheme", "shamir-k" + std::to_string(degree))
        .set("encrypt_share_us", round3(share_us))
        .set("aggregate_us", round3(sum_us))
        .set("decrypt_reconstruct_us", round3(rec_us))
        .set("mcu_per_node_ms", round3(share_us * kHostGhzOverMcu / 1000.0));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

void register_he_vs_mpc(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "he_vs_mpc",
      "§I: Paillier HE vs Shamir compute cost (host wall-clock)",
      /*default_reps=*/1,
      /*deterministic=*/false,
      /*param_names=*/{}, run_he_vs_mpc});
}

}  // namespace mpciot::bench
