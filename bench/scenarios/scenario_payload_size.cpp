// Share-width ablation: CT round time is chain_slots x entries x
// sub-slot airtime, and airtime is linear in payload bytes — so the
// field the shares live in is a first-order performance knob. Compares
// the S4 sharing round on FlockLab for Fp61 (18 B packets), GF(65521)
// (12 B) and GF(251) (11 B) share encodings; the small-field Shamir path
// is additionally checked end-to-end.
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "core/protocol.hpp"
#include "core/small_shamir.hpp"
#include "core/wire.hpp"
#include "ct/chain_schedule.hpp"
#include "metrics/stats.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

Rows run_payload_size(const ScenarioContext& ctx) {
  const net::Topology topo = net::testbeds::flocklab();
  std::vector<NodeId> sources(topo.size());
  for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;
  const std::size_t degree = core::paper_degree(sources.size());
  const auto cfg = core::make_s4_config(topo, sources, degree, 6);
  const auto sched = ct::make_sharing_schedule(cfg.sources, cfg.share_holders);

  struct Variant {
    const char* name;
    std::size_t value_bytes;
  };

  Rows rows;
  // Packet = 6 B header (u16 ids) + ciphertext (share width) + 4 B tag.
  for (const Variant v : {Variant{"fp61", 8}, Variant{"gf65521", 2},
                          Variant{"gf251", 1}}) {
    const std::uint32_t payload =
        static_cast<std::uint32_t>(10 + v.value_bytes);
    metrics::Summary round_ms;
    metrics::Summary delivery;
    for (std::uint32_t t = 0; t < ctx.reps; ++t) {
      // Same trial stream for every payload width: the ablation is paired.
      crypto::Xoshiro256 rng(crypto::derive_seed(ctx.seed, 0x50415953ull, t));
      ct::MiniCastConfig mc;
      mc.initiator = topo.center_node();
      mc.ntx = cfg.ntx_sharing;
      mc.payload_bytes = payload;
      mc.radio_policy = ct::RadioPolicy::kEarlyOff;
      mc.scheduled_owners = cfg.sources;
      const ct::MiniCastResult res = run_minicast(topo, sched.entries, mc, rng);
      round_ms.add(static_cast<double>(res.duration_us) / 1e3);
      delivery.add(res.delivery_ratio());
    }
    Row row;
    row.set("field", v.name)
        .set("share_bytes", static_cast<std::uint64_t>(v.value_bytes))
        .set("packet_bytes", payload)
        .set("subslot_us",
             static_cast<std::uint64_t>(topo.radio().subslot_us(payload)))
        .set("sharing_round_ms", round3(round_ms.mean()))
        .set("delivery_pct", round3(delivery.mean() * 100));
    rows.push_back(std::move(row));
  }

  // Correctness of the small-field path itself (16-bit end-to-end).
  const field::PrimeField f16(65521);
  std::vector<core::SmallShamirDealer> dealers;
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    crypto::CtrDrbg drbg(ctx.seed + i, i);
    const std::uint64_t reading = 100 + i;
    expected = f16.add(expected, reading);
    dealers.emplace_back(f16, reading, degree, drbg);
  }
  std::vector<core::SmallShare> sums;
  for (std::size_t h = 0; h <= degree; ++h) {
    std::uint64_t s = 0;
    for (const auto& d : dealers) {
      s = f16.add(s, d.share_for(static_cast<NodeId>(h)).value);
    }
    sums.push_back(core::SmallShare{static_cast<NodeId>(h), s});
  }
  MPCIOT_ENSURE(core::small_reconstruct(f16, sums, degree) == expected,
                "payload_size: 16-bit field end-to-end check failed");
  return rows;
}

}  // namespace

void register_payload_size(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "payload_size",
      "Ablation: share width vs S4 sharing-round time (FlockLab-like)",
      /*default_reps=*/10,
      /*deterministic=*/true,
      /*param_names=*/{}, run_payload_size});
}

}  // namespace mpciot::bench
