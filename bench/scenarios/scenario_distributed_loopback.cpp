// Distributed loopback: the rt runtime measured end to end on this
// machine. Forks one real node process per deployed node (fork without
// exec — each child runs rt::run_node and _exits with the daemon's
// code), runs the rt::Coordinator in-process, and reports wall-clock
// round throughput over loopback TCP next to the correctness verdict
// (every group reconstructed and matched the expected sum).
//
// This is the one scenario whose rows carry wall-clock numbers — real
// sockets, real processes, real scheduler — so it is registered
// non-deterministic and excluded from the golden-JSON suite. The
// coordinator's own report stays deterministic; see the distributed
// integration test for the byte-identical pin.
// Params: nodes (default 16), rounds (default 4).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <vector>

#include "crypto/prng.hpp"
#include "rt/coordinator.hpp"
#include "rt/event_loop.hpp"
#include "rt/node.hpp"
#include "scenarios/scenarios.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

constexpr std::uint64_t kStreamDeploy = 0x444C4F4Full;  // "DLO0"

Rows run_distributed_loopback(const ScenarioContext& ctx) {
  const std::uint32_t reps = std::max<std::uint32_t>(ctx.reps, 1);
  const std::uint32_t nodes =
      std::max<std::uint32_t>(ctx.param_u32("nodes", 16), 2);
  const std::uint32_t rounds =
      std::max<std::uint32_t>(ctx.param_u32("rounds", 4), 1);

  Rows rows;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    rt::CoordinatorConfig config;
    config.node_count = nodes;
    config.rounds = rounds;
    config.deployment_seed = crypto::derive_seed(ctx.seed, kStreamDeploy, rep);
    rt::Coordinator coordinator(config);
    const std::uint16_t port = coordinator.bind();

    std::vector<pid_t> children;
    children.reserve(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
      const pid_t pid = fork();
      if (pid == 0) {
        rt::NodeConfig node;
        node.node = n;
        node.node_count = nodes;
        node.deployment_seed = config.deployment_seed;
        node.port = port;
        _exit(rt::run_node(node));
      }
      children.push_back(pid);
    }

    const std::int64_t start_ms = rt::steady_now_ms();
    const int exit_code = coordinator.run(nullptr);
    const std::int64_t elapsed_ms = rt::steady_now_ms() - start_ms;
    std::uint32_t node_failures = 0;
    for (const pid_t pid : children) {
      int status = 0;
      waitpid(pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != rt::kExitOk) {
        ++node_failures;
      }
    }

    std::uint32_t rounds_ok = 0;
    std::uint32_t rounds_matched = 0;
    for (const rt::RoundOutcome& outcome : coordinator.outcomes()) {
      if (outcome.ok) ++rounds_ok;
      if (outcome.aggregate == outcome.expected) ++rounds_matched;
    }
    const std::size_t groups =
        coordinator.outcomes().empty()
            ? 0
            : coordinator.outcomes().front().groups.size();

    Row row;
    row.set("nodes", static_cast<std::uint64_t>(nodes))
        .set("groups", static_cast<std::uint64_t>(groups))
        .set("rounds", static_cast<std::uint64_t>(rounds))
        .set("rounds_ok", static_cast<std::uint64_t>(rounds_ok))
        .set("rounds_matched", static_cast<std::uint64_t>(rounds_matched))
        .set("coordinator_exit", static_cast<std::uint64_t>(
                                     static_cast<unsigned>(exit_code)))
        .set("node_failures", static_cast<std::uint64_t>(node_failures))
        .set("elapsed_ms", static_cast<std::uint64_t>(elapsed_ms))
        .set("rounds_per_sec",
             round3(elapsed_ms > 0
                        ? 1000.0 * rounds / static_cast<double>(elapsed_ms)
                        : 0.0));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

void register_distributed_loopback(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "distributed_loopback",
      "Real-socket rt runtime over loopback TCP: forks one node process "
      "per deployed node, coordinator in-process; wall-clock round "
      "throughput + correctness verdict (params: nodes, rounds)",
      /*default_reps=*/3,
      /*deterministic=*/false,
      /*param_names=*/{"nodes", "rounds"}, run_distributed_loopback});
}

}  // namespace mpciot::bench
