#include "scenarios/scenarios.hpp"

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_core/options.hpp"
#include "bench_core/runner.hpp"

namespace mpciot::bench {

void register_all_scenarios(bench_core::Registry& registry) {
  register_fig1_scenarios(registry);
  register_adversary_sweep(registry);
  register_chain_scaling(registry);
  register_degree_sweep(registry);
  register_distributed_loopback(registry);
  register_dynamics_sweep(registry);
  register_fault_tolerance(registry);
  register_he_vs_mpc(registry);
  register_hierarchy_scaling(registry);
  register_ntx_coverage(registry);
  register_payload_size(registry);
  register_sustained_load(registry);
  register_transport_matrix(registry);
  register_unicast_vs_ct(registry);
}

int run_legacy_shim(const char* scenario_name, int argc, char** argv,
                    bool accept_max_ntx) {
  bench_core::ScenarioContext ctx;
  bool csv = false;
  std::uint32_t max_ntx = 20;  // scenario default; 0 = empty sweep

  bench_core::OptionParser parser(std::string("Runs the '") + scenario_name +
                                  "' scenario (shim over mpciot-bench).");
  parser.add_u32("--reps", &ctx.reps, "rounds per configuration "
                                      "(0 = scenario default)");
  parser.add_u64("--seed", &ctx.seed, "base RNG seed");
  parser.add_flag("--csv", &csv, "also emit CSV tables");
  std::uint32_t jobs = 1;
  parser.add_u32("--jobs", &jobs, "trial worker threads (1 = serial, "
                                  "0 = hardware concurrency)");
  if (accept_max_ntx) {
    parser.add_u32("--max-ntx", &max_ntx, "highest NTX to sweep");
  }
  if (!parser.parse(argc, argv)) {
    std::fprintf(stderr, "%s: %s\n%s", argv[0], parser.error().c_str(),
                 parser.usage(argv[0]).c_str());
    return 2;
  }
  ctx.jobs = jobs;
  // Forward unconditionally: --max-ntx 0 must mean an empty sweep (as
  // the pre-registry binary behaved), not "fall back to the default".
  if (accept_max_ntx) {
    ctx.params.emplace_back("max_ntx", std::to_string(max_ntx));
  }

  bench_core::Registry registry;
  register_all_scenarios(registry);
  const bench_core::ScenarioSpec* spec = registry.find(scenario_name);
  if (!spec) {
    std::fprintf(stderr, "%s: scenario '%s' not registered\n", argv[0],
                 scenario_name);
    return 1;
  }
  const std::vector<bench_core::ScenarioRun> runs =
      bench_core::run_scenarios({spec}, ctx, nullptr);
  bench_core::print_results(runs, std::cout, csv);
  return 0;
}

}  // namespace mpciot::bench
