// Transport matrix: the same S3/S4 aggregation rounds swept across
// every registered communication substrate (MiniCast chains, sequential
// Glossy floods, lossy slotted gossip, routed unicast) on both testbed
// stand-ins. The seam's proof-of-life: the protocol engine is identical
// in every cell, only the transport changes — and the paper's substrate
// choice shows up directly in the latency/radio columns.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "crypto/keystore.hpp"
#include "ct/transport.hpp"
#include "fig1_common.hpp"
#include "metrics/experiment.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

Rows run_transport_matrix(const ScenarioContext& ctx) {
  Rows rows;
  for (const char* testbed : {"flocklab", "dcube"}) {
    const net::Topology topo = std::string(testbed) == "flocklab"
                                   ? net::testbeds::flocklab()
                                   : net::testbeds::dcube();
    const crypto::KeyStore keys(ctx.seed, topo.size());
    // A fixed mid-size source set keeps the matrix affordable; the
    // fig1 scenarios own the full source-count sweeps.
    const std::vector<NodeId> sources = spread_sources(topo.size(), 8);
    const std::size_t degree = core::paper_degree(sources.size());

    for (const std::string& transport_name : ct::transport_names()) {
      const std::unique_ptr<ct::Transport> transport =
          ct::make_transport(transport_name);
      for (const char* protocol : {"s3", "s4"}) {
        // Fixed NTX per protocol class (calibration sweeps are CT-
        // specific and priced separately in fig1/ntx_coverage).
        const core::ProtocolConfig cfg =
            std::string(protocol) == "s3"
                ? core::make_s3_config(topo, sources, degree, /*ntx_full=*/8)
                : core::make_s4_config(topo, sources, degree, /*ntx_low=*/6);
        const core::SssProtocol engine(topo, keys, cfg, transport.get());

        metrics::ExperimentSpec spec;
        spec.repetitions = ctx.reps;
        spec.base_seed = ctx.seed;
        spec.jobs = ctx.jobs;
        const metrics::TrialStats stats = metrics::run_trials(engine, spec);

        Row row;
        row.set("testbed", testbed)
            .set("protocol", protocol)
            .set("transport", transport_name)
            .set("holders", static_cast<std::uint64_t>(
                                cfg.share_holders.size()))
            .set("latency_ms", round3(stats.latency_max_ms.mean()))
            .set("max_radio_on_ms", round3(stats.radio_on_max_ms.mean()))
            .set("success_pct", round3(stats.success_ratio.mean() * 100))
            .set("share_delivery_pct",
                 round3(stats.share_delivery.mean() * 100));
        rows.push_back(std::move(row));
      }
    }
  }
  return rows;
}

}  // namespace

void register_transport_matrix(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "transport_matrix",
      "Transport seam: S3/S4 x {minicast, glossy_floods, gossip, unicast} "
      "x testbed",
      /*default_reps=*/3,
      /*deterministic=*/true,
      /*param_names=*/{}, run_transport_matrix});
}

}  // namespace mpciot::bench
