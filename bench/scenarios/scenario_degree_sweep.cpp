// §IV degree remark: "further improvement in the latency and radio-on
// time would be visible in S4 compared to S3 for an even lesser degree
// of the polynomial used." Sweeps the polynomial degree k on FlockLab
// with all nodes as sources; the final row is the k-independent S3
// reference (its chain is n^2 regardless of k).
#include <cstdint>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "crypto/keystore.hpp"
#include "metrics/experiment.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

Rows run_degree_sweep(const ScenarioContext& ctx) {
  const net::Topology topo = net::testbeds::flocklab();
  const crypto::KeyStore keys(ctx.seed, topo.size());
  std::vector<NodeId> sources(topo.size());
  for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;

  metrics::ExperimentSpec spec;
  spec.repetitions = ctx.reps;
  spec.base_seed = ctx.seed;
  spec.jobs = ctx.jobs;

  Rows rows;
  for (const std::size_t k : {1u, 2u, 4u, 8u, 12u, 16u, 20u}) {
    const core::SssProtocol s4(
        topo, keys, core::make_s4_config(topo, sources, k, /*ntx_low=*/6));
    const metrics::TrialStats stats = metrics::run_trials(s4, spec);
    Row row;
    row.set("scheme", "s4")
        .set("degree", static_cast<std::uint64_t>(k))
        .set("holders",
             static_cast<std::uint64_t>(s4.config().share_holders.size()))
        .set("latency_ms", round3(stats.latency_max_ms.mean()))
        .set("radio_on_ms", round3(stats.radio_on_max_ms.mean()))
        .set("success_pct", round3(stats.success_ratio.mean() * 100));
    rows.push_back(std::move(row));
  }

  // The S3 reference (k does not change its chain size).
  const std::size_t k_paper = core::paper_degree(sources.size());
  crypto::Xoshiro256 cal(ctx.seed);
  const std::uint32_t ntx_full = core::suggest_s3_ntx(topo, sources, 10, cal);
  const core::SssProtocol s3(
      topo, keys, core::make_s3_config(topo, sources, k_paper, ntx_full));
  const metrics::TrialStats s3_stats = metrics::run_trials(s3, spec);
  Row ref;
  ref.set("scheme", "s3_ref")
      .set("degree", static_cast<std::uint64_t>(k_paper))
      .set("holders", static_cast<std::uint64_t>(sources.size()))
      .set("latency_ms", round3(s3_stats.latency_max_ms.mean()))
      .set("radio_on_ms", round3(s3_stats.radio_on_max_ms.mean()))
      .set("success_pct", round3(s3_stats.success_ratio.mean() * 100));
  rows.push_back(std::move(ref));
  return rows;
}

}  // namespace

void register_degree_sweep(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "degree_sweep",
      "§IV: S4 latency/radio-on vs polynomial degree k (FlockLab-like)",
      /*default_reps=*/15,
      /*deterministic=*/true,
      /*param_names=*/{}, run_degree_sweep});
}

}  // namespace mpciot::bench
