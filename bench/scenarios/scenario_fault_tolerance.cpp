// §III fault-tolerance claim: with a degree-k polynomial, "even the
// final polynomial can be formed by combining any k+1 sum values".
// Two failure axes over the same S3 / S4 (slack 2) / S4 (slack 0)
// comparison:
//  * permanent failures — f random nodes dead for the whole round
//    (never the initiator), the original sweep;
//  * churn — an alternating-renewal crash/recover schedule
//    (sim::dynamics::NodeChurn, 500 ms mean downtime, initiator
//    immortal) that silences nodes *mid-round*, so shares go missing
//    asymmetrically and reconstruction leans on the threshold path.
// Reported: fraction of live nodes still holding a correct aggregate of
// the dealing sources.
#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "core/session.hpp"
#include "crypto/keystore.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/dynamics.hpp"
#include "sim/simulator.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

std::vector<NodeId> pick_failures(const net::Topology& topo, NodeId initiator,
                                  std::size_t count, crypto::Xoshiro256& rng) {
  std::vector<NodeId> all;
  for (NodeId i = 0; i < topo.size(); ++i) {
    if (i != initiator) all.push_back(i);
  }
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < count && !all.empty(); ++i) {
    const std::size_t pick = rng.next_below(all.size());
    out.push_back(all[pick]);
    all.erase(all.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return out;
}

Rows run_fault_tolerance(const ScenarioContext& ctx) {
  const net::Topology topo = net::testbeds::flocklab();
  const crypto::KeyStore keys(ctx.seed, topo.size());
  std::vector<NodeId> sources(topo.size());
  for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;
  const std::size_t degree = core::paper_degree(sources.size());

  crypto::Xoshiro256 cal(ctx.seed);
  const std::uint32_t ntx_full = core::suggest_s3_ntx(topo, sources, 10, cal);

  Rows rows;
  for (const std::size_t failures : {0u, 1u, 2u, 3u, 5u, 8u}) {
    metrics::Summary s3_ok;
    metrics::Summary s4_ok;
    metrics::Summary s4tight_ok;
    for (std::uint32_t t = 0; t < ctx.reps; ++t) {
      // Failure draws are their own stream, additionally separated by the
      // failure count so each sweep point picks an independent set.
      crypto::Xoshiro256 frng(crypto::derive_seed(
          ctx.seed, 0xFA110000ull | failures, t));
      // Shared failure set per trial so the comparison is paired.
      auto base_s3 = core::make_s3_config(topo, sources, degree, ntx_full);
      const auto failed =
          pick_failures(topo, base_s3.initiator, failures, frng);

      const auto run_one = [&](core::ProtocolConfig cfg,
                               metrics::Summary& acc) {
        cfg.failed_nodes = failed;
        const core::SssProtocol proto(topo, keys, cfg);
        sim::Simulator sim(metrics::trial_sim_seed(ctx.seed, t));
        const auto secrets = metrics::random_secrets(
            metrics::trial_secret_seed(ctx.seed, t), sources.size());
        core::Session session(proto);
        acc.add(session.run_round(secrets, sim).success_ratio);
      };
      run_one(base_s3, s3_ok);
      run_one(core::make_s4_config(topo, sources, degree, 6, /*slack=*/2),
              s4_ok);
      run_one(core::make_s4_config(topo, sources, degree, 6, /*slack=*/0),
              s4tight_ok);
    }
    Row row;
    row.set("failed_nodes", static_cast<std::uint64_t>(failures))
        .set("churn_per_sec", 0.0)
        .set("s3_success_pct", round3(s3_ok.mean() * 100))
        .set("s4_success_pct", round3(s4_ok.mean() * 100))
        .set("s4_slack0_success_pct", round3(s4tight_ok.mean() * 100));
    rows.push_back(std::move(row));
  }

  // Churn axis: no permanent failures, nodes crash and recover
  // mid-round instead. rate_idx salts the per-trial schedule stream so
  // sweep points draw independent schedules.
  const std::vector<double> churn_rates{0.5, 1.0, 2.0};
  for (std::size_t rate_idx = 0; rate_idx < churn_rates.size(); ++rate_idx) {
    const double rate = churn_rates[rate_idx];
    metrics::Summary s3_ok;
    metrics::Summary s4_ok;
    metrics::Summary s4tight_ok;
    for (std::uint32_t t = 0; t < ctx.reps; ++t) {
      const auto base_s3 = core::make_s3_config(topo, sources, degree,
                                                ntx_full);
      sim::dynamics::NodeChurnParams cp;
      cp.seed = crypto::derive_seed(ctx.seed, 0xC4320000ull | rate_idx, t);
      cp.crashes_per_sec = rate;
      cp.mean_downtime_us = 500 * kMillisecond;
      cp.immortal = base_s3.initiator;
      const sim::dynamics::NodeChurn churn(topo.size(), cp);

      const auto run_one = [&](core::ProtocolConfig cfg,
                               metrics::Summary& acc) {
        const core::SssProtocol proto(topo, keys, cfg);
        sim::Simulator sim(metrics::trial_sim_seed(ctx.seed, t));
        sim.set_liveness(&churn);  // shared schedule: the axis is paired
        const auto secrets = metrics::random_secrets(
            metrics::trial_secret_seed(ctx.seed, t), sources.size());
        core::Session session(proto);
        acc.add(session.run_round(secrets, sim).success_ratio);
      };
      run_one(base_s3, s3_ok);
      run_one(core::make_s4_config(topo, sources, degree, 6, /*slack=*/2),
              s4_ok);
      run_one(core::make_s4_config(topo, sources, degree, 6, /*slack=*/0),
              s4tight_ok);
    }
    Row row;
    row.set("failed_nodes", std::uint64_t{0})
        .set("churn_per_sec", round3(rate))
        .set("s3_success_pct", round3(s3_ok.mean() * 100))
        .set("s4_success_pct", round3(s4_ok.mean() * 100))
        .set("s4_slack0_success_pct", round3(s4tight_ok.mean() * 100));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

void register_fault_tolerance(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "fault_tolerance",
      "§III: success under node failures — any k+1 sums reconstruct",
      /*default_reps=*/20,
      /*deterministic=*/true,
      /*param_names=*/{}, run_fault_tolerance});
}

}  // namespace mpciot::bench
