// Hierarchical multi-group aggregation at scale: n x G sweep on
// synthetic grid deployments. G = 1 is the flat single-chain baseline
// (one group covering the whole network, 64-source rounds back to back
// on one channel); G > 1 shards the network into grid-block groups that
// aggregate concurrently on orthogonal channels, recombine the group
// sums up a pairwise tree and flood the total back. The flat protocol's
// O(n^2) chain entries make n = 1024 infeasible in one chain; this
// scenario runs it as a routine bench row and reports how the sharded
// configurations beat the baseline on round latency and max radio-on.
//
// Above 1024 nodes the sweep switches to the sparse-tier topologies and
// recursive trees: depth x fanout configurations at n in {4096, 65536,
// 262144}, one rep each (a single trial at these sizes already costs
// minutes of wall-clock; the paired-seed scheme keeps it deterministic).
// Those rows carry extra `depth`/`fanout` columns and no vs-flat ratios
// (a flat chain over 2^16+ nodes would both overflow the u16 wire ids
// and never finish). Peak RSS for the big runs lands on the runner's
// stderr progress line, outside this deterministic document.
//
// Params: max_nodes (default 1024) trims the n sweep from above, e.g.
// for smoke runs on slow machines; min_nodes (default 0) trims it from
// below so CI can run exactly one big configuration; force_sparse
// (default 0) builds the dense-eligible (n <= 2048) topologies on the
// sparse tier with sequential link draws — output must stay
// byte-identical, which the sparse-vs-dense test suite pins.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/hierarchical.hpp"
#include "core/session.hpp"
#include "crypto/prng.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats.hpp"
#include "net/partition.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/simulator.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

struct GridSpec {
  std::uint32_t rows;
  std::uint32_t cols;
};

/// A recursive configuration of the big-n sweep: root partition target
/// plus the nesting knobs handed to HierarchicalConfig.
struct TreeSpec {
  std::uint32_t target_groups;
  std::uint32_t depth;
  std::uint32_t fanout;
};

struct SweepPoint {
  std::uint32_t n = 0;
  std::uint32_t target_groups = 0;
  std::uint32_t depth = 1;
  std::uint32_t fanout = 16;
  std::uint32_t reps = 1;
  bool big = false;  // big rows carry depth/fanout columns, no ratios
  std::unique_ptr<core::HierarchicalProtocol> protocol;
  std::uint32_t groups = 0;
  std::uint16_t channels = 0;
  std::uint32_t largest_group = 0;
};

struct TrialRecord {
  double latency_max_ms = 0.0;
  double radio_on_max_ms = 0.0;
  double radio_on_mean_ms = 0.0;
  double group_phase_ms = 0.0;
  double recombine_ms = 0.0;
  double success = 0.0;
};

TrialRecord run_one(const SweepPoint& point, std::uint64_t base_seed,
                    std::uint32_t trial) {
  // Seeds are derived per (n, trial) and shared across G so the G = 1
  // baseline and the sharded runs of the same n stay paired.
  const std::uint64_t base =
      crypto::derive_seed(base_seed, 0x48494552ull /*"HIER"*/, point.n);
  sim::Simulator sim(metrics::trial_sim_seed(base, trial));
  const std::vector<field::Fp61> secrets =
      metrics::random_secrets(metrics::trial_secret_seed(base, trial),
                              point.n);
  core::Session session(*point.protocol);
  const core::HierarchicalResult& res =
      *session.run_round(secrets, sim).hier;

  TrialRecord rec;
  rec.latency_max_ms = static_cast<double>(res.max_latency_us()) / 1e3;
  rec.radio_on_max_ms = static_cast<double>(res.max_radio_on_us()) / 1e3;
  rec.radio_on_mean_ms = res.mean_radio_on_us() / 1e3;
  rec.group_phase_ms = static_cast<double>(res.group_phase_us) / 1e3;
  rec.recombine_ms = static_cast<double>(res.recombine_us) / 1e3;
  rec.success = res.success_ratio();
  return rec;
}

Rows run_hierarchy_scaling(const ScenarioContext& ctx) {
  const std::uint32_t max_nodes = ctx.param_u32("max_nodes", 1024);
  const std::uint32_t min_nodes = ctx.param_u32("min_nodes", 0);
  const bool force_sparse = ctx.param_u32("force_sparse", 0) != 0;
  const std::uint32_t reps = std::max<std::uint32_t>(ctx.reps, 1);

  const auto build_topo = [&](std::uint32_t n, GridSpec grid) {
    net::TopologyOptions options;
    if (force_sparse && n <= net::Topology::kDenseMaxNodes) {
      // Sparse storage over the *sequential* draw stream: identical
      // link tables to the dense default, different representation.
      options.storage = net::TopologyStorage::kSparse;
      options.draw = net::LinkDraw::kSequential;
    }
    return std::make_shared<const net::Topology>(
        net::testbeds::retry_topology(
            "hierarchy_scaling: could not build grid", 64,
            [&, n, grid](std::uint64_t attempt) {
              return net::testbeds::grid(
                  grid.rows, grid.cols, /*spacing_m=*/12.0,
                  crypto::derive_seed(ctx.seed, 0x544F504Full /*"TOPO"*/,
                                      n + attempt),
                  net::RadioParams{}, options);
            }));
  };

  // Build the sweep: shared topology per n, one protocol per
  // configuration. `topos` is declared before `points` so the
  // topologies outlive the protocols that reference them.
  std::vector<std::shared_ptr<const net::Topology>> topos;
  std::vector<SweepPoint> points;
  const std::vector<std::pair<std::uint32_t, GridSpec>> sizes{
      {64, {8, 8}}, {256, {16, 16}}, {512, {16, 32}}, {1024, {32, 32}}};
  for (const auto& [n, grid] : sizes) {
    if (n > max_nodes || n < min_nodes) continue;
    auto topo = build_topo(n, grid);
    topos.push_back(topo);
    for (const std::uint32_t g : {1u, 4u, 16u}) {
      core::HierarchicalConfig cfg;
      cfg.partition = net::partition::grid_blocks(*topo, g);
      cfg.num_channels = static_cast<std::uint16_t>(
          std::min<std::size_t>(cfg.partition.size(), 16));
      // The paper's NTX = 6 is calibrated for its dense 26/45-node
      // testbeds; on these sparser 12 m grids, 8 is the smallest value
      // that reliably leaves >= degree+1 holders with identical
      // contributor sets in every group (deep groups are additionally
      // raised by the diameter rule in HierarchicalConfig).
      cfg.ntx_sharing = 8;
      cfg.ntx_reconstruction = 8;
      SweepPoint point;
      point.n = n;
      point.target_groups = g;
      point.reps = reps;
      point.groups = static_cast<std::uint32_t>(cfg.partition.size());
      point.channels = cfg.num_channels;
      for (const auto& members : cfg.partition.groups) {
        point.largest_group = std::max(
            point.largest_group, static_cast<std::uint32_t>(members.size()));
      }
      point.protocol = std::make_unique<core::HierarchicalProtocol>(
          *topo, std::move(cfg));
      points.push_back(std::move(point));
    }
  }

  // Big-n sweep: sparse-tier topologies, recursive trees, one rep. Root
  // groups are kept above the dense-leaf threshold (so their
  // subtopologies stay sparse) while the innermost leaf groups stay
  // small enough that their dense tables fit comfortably.
  struct BigSize {
    std::uint32_t n;
    GridSpec grid;
    std::vector<TreeSpec> trees;
  };
  const std::vector<BigSize> big_sizes{
      {4096, {64, 64}, {{16, 1, 16}, {4, 2, 16}, {8, 2, 8}}},
      {65536, {256, 256}, {{16, 2, 16}, {16, 2, 32}, {16, 3, 16}}},
      {262144, {512, 512}, {{64, 2, 16}}}};
  for (const BigSize& size : big_sizes) {
    if (size.n > max_nodes || size.n < min_nodes) continue;
    auto topo = build_topo(size.n, size.grid);
    topos.push_back(topo);
    for (const TreeSpec& tree : size.trees) {
      core::HierarchicalConfig cfg;
      cfg.partition = net::partition::grid_blocks(*topo, tree.target_groups);
      cfg.num_channels = static_cast<std::uint16_t>(
          std::min<std::size_t>(cfg.partition.size(), 16));
      cfg.ntx_sharing = 8;
      cfg.ntx_reconstruction = 8;
      cfg.depth = tree.depth;
      cfg.fanout = tree.fanout;
      SweepPoint point;
      point.n = size.n;
      point.target_groups = tree.target_groups;
      point.depth = tree.depth;
      point.fanout = tree.fanout;
      point.reps = 1;  // trimmed: one deterministic trial per big config
      point.big = true;
      point.groups = static_cast<std::uint32_t>(cfg.partition.size());
      point.channels = cfg.num_channels;
      for (const auto& members : cfg.partition.groups) {
        point.largest_group = std::max(
            point.largest_group, static_cast<std::uint32_t>(members.size()));
      }
      point.protocol = std::make_unique<core::HierarchicalProtocol>(
          *topo, std::move(cfg));
      points.push_back(std::move(point));
    }
  }

  // One unit per (sweep point, trial), computed possibly in parallel and
  // folded in unit order — rows are bit-identical for any job count.
  // Points carry different rep counts, so units map through prefix
  // offsets instead of a fixed stride.
  std::vector<std::size_t> offsets(points.size() + 1, 0);
  for (std::size_t p = 0; p < points.size(); ++p) {
    offsets[p + 1] = offsets[p] + points[p].reps;
  }
  const std::size_t units = offsets.back();
  std::vector<TrialRecord> records(units);
  const unsigned jobs =
      metrics::resolve_jobs(ctx.jobs, static_cast<std::uint32_t>(units));
  metrics::parallel_for(units, jobs, [&](std::size_t unit) {
    const std::size_t p =
        static_cast<std::size_t>(
            std::upper_bound(offsets.begin(), offsets.end(), unit) -
            offsets.begin()) -
        1;
    records[unit] = run_one(points[p], ctx.seed,
                            static_cast<std::uint32_t>(unit - offsets[p]));
  });

  Rows rows;
  std::uint32_t flat_n = 0;
  double flat_latency_ms = 0.0;
  double flat_radio_max_ms = 0.0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const SweepPoint& point = points[p];
    metrics::Summary latency;
    metrics::Summary radio_max;
    metrics::Summary radio_mean;
    metrics::Summary group_phase;
    metrics::Summary recombine;
    metrics::Summary success;
    for (std::uint32_t t = 0; t < point.reps; ++t) {
      const TrialRecord& rec = records[offsets[p] + t];
      latency.add(rec.latency_max_ms);
      radio_max.add(rec.radio_on_max_ms);
      radio_mean.add(rec.radio_on_mean_ms);
      group_phase.add(rec.group_phase_ms);
      recombine.add(rec.recombine_ms);
      success.add(rec.success);
    }
    if (point.target_groups == 1) {
      flat_n = point.n;
      flat_latency_ms = latency.mean();
      flat_radio_max_ms = radio_max.mean();
    }
    Row row;
    row.set("n_nodes", static_cast<std::uint64_t>(point.n))
        .set("groups", static_cast<std::uint64_t>(point.groups))
        .set("channels", static_cast<std::uint64_t>(point.channels))
        .set("largest_group", static_cast<std::uint64_t>(point.largest_group))
        .set("latency_ms", round3(latency.mean()))
        .set("group_phase_ms", round3(group_phase.mean()))
        .set("recombine_ms", round3(recombine.mean()))
        .set("max_radio_on_ms", round3(radio_max.mean()))
        .set("mean_radio_on_ms", round3(radio_mean.mean()))
        .set("success_pct", round3(success.mean() * 100));
    if (point.big) {
      // The big sizes have no flat comparator (a single chain past the
      // u16 wire window cannot exist); depth/fanout make the tree shape
      // explicit instead.
      row.set("depth", static_cast<std::uint64_t>(point.depth))
          .set("fanout", static_cast<std::uint64_t>(point.fanout));
    } else {
      const bool have_flat = flat_n == point.n;
      row.set("latency_vs_flat",
              have_flat
                  ? round3(flat_latency_ms / std::max(latency.mean(), 1e-9))
                  : 0.0)
          .set("radio_vs_flat",
               have_flat
                   ? round3(flat_radio_max_ms /
                            std::max(radio_max.mean(), 1e-9))
                   : 0.0);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

void register_hierarchy_scaling(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "hierarchy_scaling",
      // NOTE: the description is serialized into the deterministic
      // result documents; changing it would break their byte-identity.
      "Hierarchical multi-group aggregation: n x G sweep vs the flat "
      "single-chain baseline (params: max_nodes)",
      /*default_reps=*/3,
      /*deterministic=*/true,
      /*param_names=*/{"max_nodes", "min_nodes", "force_sparse"},
      run_hierarchy_scaling});
}

}  // namespace mpciot::bench
