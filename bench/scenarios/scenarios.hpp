// The benchmark scenarios, registered explicitly (no static-init
// tricks, so static-library linking cannot drop them). Each scenario
// returns rows of data; the bench_core runner renders JSON and tables.
#pragma once

#include <cmath>

#include "bench_core/registry.hpp"

namespace mpciot::bench {

/// Register every scenario: fig1_flocklab, fig1_dcube, adversary_sweep,
/// chain_scaling, degree_sweep, distributed_loopback, dynamics_sweep,
/// fault_tolerance, he_vs_mpc, hierarchy_scaling, ntx_coverage,
/// payload_size, sustained_load, transport_matrix, unicast_vs_ct.
void register_all_scenarios(bench_core::Registry& registry);

void register_fig1_scenarios(bench_core::Registry& registry);
void register_adversary_sweep(bench_core::Registry& registry);
void register_chain_scaling(bench_core::Registry& registry);
void register_degree_sweep(bench_core::Registry& registry);
void register_distributed_loopback(bench_core::Registry& registry);
void register_dynamics_sweep(bench_core::Registry& registry);
void register_fault_tolerance(bench_core::Registry& registry);
void register_he_vs_mpc(bench_core::Registry& registry);
void register_hierarchy_scaling(bench_core::Registry& registry);
void register_ntx_coverage(bench_core::Registry& registry);
void register_payload_size(bench_core::Registry& registry);
void register_sustained_load(bench_core::Registry& registry);
void register_transport_matrix(bench_core::Registry& registry);
void register_unicast_vs_ct(bench_core::Registry& registry);

/// Entry point for the legacy per-figure binaries: parse the historic
/// flags (--reps, --seed, --csv, plus --jobs and, when enabled,
/// --max-ntx) with the strict shared parser, run one scenario, print
/// its table. Returns the process exit code (2 on bad usage).
int run_legacy_shim(const char* scenario_name, int argc, char** argv,
                    bool accept_max_ntx = false);

/// Round to 3 decimals so JSON rows stay readable; deterministic.
inline double round3(double v) { return std::round(v * 1000.0) / 1000.0; }

}  // namespace mpciot::bench
