// Robustness under time-varying links and node churn: the sweep the
// static scenarios cannot run. Every trial attaches a per-trial
// sim::dynamics world to its Simulator — Gilbert–Elliott bursty loss
// with slow RSSI drift on every link (burst length x bad-state fraction
// axes) and an alternating-renewal crash/recover schedule (churn-rate
// axis) — and runs the paper's S4 round with all nodes as sources, on
// the FlockLab-like testbed and a sparser synthetic grid. Reported per
// configuration: success rate, max-latency and max-radio-on means, and
// their degradation relative to the same testbed's frozen-topology
// baseline row (burst 0 / churn 0, which runs with no models attached —
// literally the static engine).
//
// Determinism: one unit per (configuration, trial) over
// metrics::parallel_for, every seed derived per unit, rows folded in
// unit order — output is byte-identical for any --jobs value.
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/protocol.hpp"
#include "core/session.hpp"
#include "crypto/keystore.hpp"
#include "crypto/prng.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/dynamics.hpp"
#include "sim/simulator.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

/// derive_seed stream tags (per-trial model seeds).
constexpr std::uint64_t kStreamLink = 0x44594E4Cull;   // "DYNL"
constexpr std::uint64_t kStreamChurn = 0x44594E43ull;  // "DYNC"

struct DynamicsPoint {
  const char* testbed = nullptr;
  /// Gilbert–Elliott knobs; burst_epochs == 0 means no link dynamics.
  std::uint32_t burst_epochs = 0;
  double bad_fraction = 0.0;
  /// Crash rate per node; 0 means no churn.
  double churn_per_sec = 0.0;
};

struct TrialRecord {
  double success = 0.0;
  double latency_max_ms = 0.0;
  double radio_on_max_ms = 0.0;
  double share_delivery = 0.0;
};

sim::dynamics::LinkDynamicsParams link_params(const DynamicsPoint& pt,
                                              std::uint64_t seed) {
  sim::dynamics::LinkDynamicsParams p;
  p.seed = seed;
  // Mean burst = burst_epochs epochs; stationary bad-state fraction =
  // bad_fraction. Solving the two-state chain for its transition rates:
  p.p_bad_to_good = 1.0 / pt.burst_epochs;
  p.p_good_to_bad =
      p.p_bad_to_good * pt.bad_fraction / (1.0 - pt.bad_fraction);
  p.bad_extra_loss_db = 12.0;  // a burst takes the link effectively out
  p.drift_sigma_db = 0.3;
  p.drift_limit_db = 4.0;
  return p;
}

TrialRecord run_one(const core::SssProtocol& proto, const net::Topology& topo,
                    const DynamicsPoint& pt, std::uint64_t point_seed,
                    std::uint32_t trial) {
  const std::uint64_t tseed = metrics::trial_sim_seed(point_seed, trial);
  sim::Simulator sim(tseed);

  // Per-trial dynamics world; the static row attaches nothing and runs
  // the frozen-topology engine unchanged.
  std::optional<sim::dynamics::LinkDynamics> link;
  if (pt.burst_epochs > 0) {
    link.emplace(link_params(pt, crypto::derive_seed(tseed, kStreamLink, 0)));
    sim.set_channel_model(&*link);
  }
  std::optional<sim::dynamics::NodeChurn> churn;
  if (pt.churn_per_sec > 0.0) {
    sim::dynamics::NodeChurnParams cp;
    cp.seed = crypto::derive_seed(tseed, kStreamChurn, 0);
    cp.crashes_per_sec = pt.churn_per_sec;
    cp.mean_downtime_us = 500 * kMillisecond;
    churn.emplace(topo.size(), cp);
    sim.set_liveness(&*churn);
  }

  const std::vector<field::Fp61> secrets = metrics::random_secrets(
      metrics::trial_secret_seed(point_seed, trial),
      proto.config().sources.size());
  core::Session session(proto);
  const core::AggregationResult& res =
      *session.run_round(secrets, sim).flat;

  TrialRecord rec;
  rec.success = res.success_ratio();
  rec.latency_max_ms = static_cast<double>(res.max_latency_us()) / 1e3;
  rec.radio_on_max_ms = static_cast<double>(res.max_radio_on_us()) / 1e3;
  rec.share_delivery = res.share_delivery_ratio;
  return rec;
}

Rows run_dynamics_sweep(const ScenarioContext& ctx) {
  const std::uint32_t reps = std::max<std::uint32_t>(ctx.reps, 1);

  struct Bench {
    const char* name;
    net::Topology topo;
    std::uint32_t ntx;
    std::unique_ptr<crypto::KeyStore> keys;
    std::unique_ptr<core::SssProtocol> proto;
    std::uint64_t seed = 0;
  };
  // FlockLab-like office floor plus a sparser synthetic grid (the same
  // 12 m class the hierarchy benches use, where NTX 6 is too shallow).
  std::vector<Bench> benches;
  benches.push_back({"flocklab", net::testbeds::flocklab(), 6, {}, {}, 0});
  benches.push_back(
      {"grid6x6",
       net::testbeds::grid(6, 6, /*spacing_m=*/12.0,
                           crypto::derive_seed(ctx.seed, 0x544F504Full, 36)),
       8,
       {},
       {},
       0});
  for (Bench& bench : benches) {
    std::vector<NodeId> sources(bench.topo.size());
    for (NodeId i = 0; i < bench.topo.size(); ++i) sources[i] = i;
    const std::size_t degree = core::paper_degree(sources.size());
    bench.keys = std::make_unique<crypto::KeyStore>(
        ctx.seed, static_cast<std::uint32_t>(bench.topo.size()));
    // One protocol per testbed: the dynamics attach per *trial* via the
    // Simulator, so every sweep point shares the same instance.
    bench.proto = std::make_unique<core::SssProtocol>(
        bench.topo, *bench.keys,
        core::make_s4_config(bench.topo, sources, degree, bench.ntx));
    // Same simulated channels/secrets across the axis values of one
    // testbed, so the sweep is paired: only the dynamics differ.
    bench.seed = crypto::derive_seed(
        ctx.seed, 0x44594E30ull /*"DYN0"*/,
        static_cast<std::uint64_t>(bench.topo.size()));
  }

  // The sweep: static baseline first, then burst-length x bad-fraction
  // grid, each across the churn axis (innermost, so every printed block
  // is one degradation-vs-churn curve).
  const std::vector<std::pair<std::uint32_t, double>> link_axis = {
      {0, 0.0}, {2, 0.1}, {2, 0.3}, {8, 0.1}, {8, 0.3}};
  const std::vector<double> churn_axis = {0.0, 0.5, 2.0};

  struct Point {
    DynamicsPoint pt;
    const Bench* bench = nullptr;
  };
  std::vector<Point> points;
  for (const Bench& bench : benches) {
    for (const auto& [burst, frac] : link_axis) {
      for (const double churn : churn_axis) {
        points.push_back(
            Point{DynamicsPoint{bench.name, burst, frac, churn}, &bench});
      }
    }
  }

  const std::size_t units = points.size() * reps;
  std::vector<TrialRecord> records(units);
  const unsigned jobs =
      metrics::resolve_jobs(ctx.jobs, static_cast<std::uint32_t>(units));
  metrics::parallel_for(units, jobs, [&](std::size_t unit) {
    const Point& point = points[unit / reps];
    records[unit] =
        run_one(*point.bench->proto, point.bench->topo, point.pt,
                point.bench->seed, static_cast<std::uint32_t>(unit % reps));
  });

  Rows rows;
  double static_success = 0.0;
  double static_latency = 0.0;
  double static_radio = 0.0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const Point& point = points[p];
    metrics::Summary success;
    metrics::Summary latency;
    metrics::Summary radio;
    metrics::Summary delivery;
    for (std::uint32_t t = 0; t < reps; ++t) {
      const TrialRecord& rec = records[p * reps + t];
      success.add(rec.success);
      latency.add(rec.latency_max_ms);
      radio.add(rec.radio_on_max_ms);
      delivery.add(rec.share_delivery);
    }
    const bool is_static = point.pt.burst_epochs == 0 &&
                           point.pt.churn_per_sec == 0.0;
    if (is_static) {
      static_success = success.mean();
      static_latency = latency.mean();
      static_radio = radio.mean();
    }
    Row row;
    row.set("testbed", point.pt.testbed)
        .set("burst_epochs",
             static_cast<std::uint64_t>(point.pt.burst_epochs))
        .set("bad_frac_pct", round3(point.pt.bad_fraction * 100))
        .set("churn_per_sec", round3(point.pt.churn_per_sec))
        .set("success_pct", round3(success.mean() * 100))
        .set("latency_ms", round3(latency.mean()))
        .set("max_radio_on_ms", round3(radio.mean()))
        .set("delivery_pct", round3(delivery.mean() * 100))
        .set("success_vs_static_pct",
             round3((success.mean() - static_success) * 100))
        .set("latency_vs_static",
             round3(latency.mean() / std::max(static_latency, 1e-9)))
        .set("radio_vs_static",
             round3(radio.mean() / std::max(static_radio, 1e-9)));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

void register_dynamics_sweep(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "dynamics_sweep",
      "Bursty links (Gilbert-Elliott x drift) and node churn: S4 "
      "degradation curves vs the frozen-topology baseline",
      /*default_reps=*/10,
      /*deterministic=*/true,
      /*param_names=*/{}, run_dynamics_sweep});
}

}  // namespace mpciot::bench
