// §III non-linearity of MiniCast coverage in NTX: "with a short
// increase in NTX, a large amount of data becomes available in a node,
// while it takes a comparatively higher time (NTX) to have the full
// network coverage." All-to-all MiniCast rounds per testbed per NTX;
// reports mean delivery, full-coverage fraction, and delivery into the
// central share-holder set only — the asymmetry S4 exploits.
// Param: max_ntx (default 20) caps the sweep.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/bootstrap.hpp"
#include "core/protocol.hpp"
#include "core/wire.hpp"
#include "ct/chain_schedule.hpp"
#include "metrics/stats.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

void sweep(const char* name, const net::Topology& topo,
           const ScenarioContext& ctx, std::uint32_t max_ntx, Rows& rows) {
  std::vector<NodeId> sources(topo.size());
  for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;
  const ct::SharingSchedule sched = ct::make_sharing_schedule(sources, sources);

  const std::size_t degree = core::paper_degree(sources.size());
  const std::vector<NodeId> holders =
      core::elect_share_holders(topo, sources, degree + 3);

  for (std::uint32_t ntx = 1; ntx <= max_ntx; ++ntx) {
    metrics::Summary delivery;
    metrics::Summary full;
    metrics::Summary holder_delivery;
    metrics::Summary duration_ms;
    for (std::uint32_t t = 0; t < ctx.reps; ++t) {
      // Same trial stream for every NTX value: the sweep stays paired.
      crypto::Xoshiro256 rng(crypto::derive_seed(ctx.seed, 0x4E545843ull, t));
      ct::MiniCastConfig cfg;
      cfg.initiator = topo.center_node();
      cfg.ntx = ntx;
      cfg.payload_bytes = core::SharePacket::kWireSize;
      cfg.max_chain_slots = 512;
      const ct::MiniCastResult res =
          run_minicast(topo, sched.entries, cfg, rng);
      delivery.add(res.delivery_ratio());
      full.add(res.delivery_ratio() >= 1.0 ? 1.0 : 0.0);
      duration_ms.add(static_cast<double>(res.duration_us) / 1e3);

      std::size_t holder_got = 0;
      std::size_t holder_total = 0;
      for (std::size_t h = 0; h < holders.size(); ++h) {
        for (std::size_t s = 0; s < sources.size(); ++s) {
          const std::size_t entry = sched.entry_index(
              s, static_cast<std::size_t>(
                     std::find(sched.destinations.begin(),
                               sched.destinations.end(), holders[h]) -
                     sched.destinations.begin()));
          ++holder_total;
          if (res.node_has(holders[h], entry)) ++holder_got;
        }
      }
      holder_delivery.add(static_cast<double>(holder_got) /
                          static_cast<double>(holder_total));
    }
    Row row;
    row.set("testbed", name)
        .set("ntx", ntx)
        .set("delivery_pct", round3(delivery.mean() * 100))
        .set("full_coverage_pct", round3(full.mean() * 100))
        .set("holder_delivery_pct", round3(holder_delivery.mean() * 100))
        .set("round_ms", round3(duration_ms.mean()));
    rows.push_back(std::move(row));
  }
}

Rows run_ntx_coverage(const ScenarioContext& ctx) {
  const std::uint32_t max_ntx = ctx.param_u32("max_ntx", 20);
  Rows rows;
  sweep("flocklab", net::testbeds::flocklab(), ctx, max_ntx, rows);
  sweep("dcube", net::testbeds::dcube(), ctx, max_ntx, rows);
  return rows;
}

}  // namespace

void register_ntx_coverage(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "ntx_coverage",
      "§III: MiniCast coverage vs NTX (param max_ntx, default 20)",
      /*default_reps=*/10,
      /*deterministic=*/true,
      /*param_names=*/{"max_ntx"}, run_ntx_coverage});
}

}  // namespace mpciot::bench
