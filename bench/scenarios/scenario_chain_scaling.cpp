// §II/§III chain-size claim: the naive sharing phase needs an O(n^2)
// chain while the scalable variant trims it to O(n * m) with
// m = k + 1 + slack, k = floor(n/3). Analytic rows for a size sweep
// plus cross-check rows from the real schedule builder on both
// testbeds. Exact (no simulation noise), so reps is ignored.
#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/protocol.hpp"
#include "core/wire.hpp"
#include "ct/chain_schedule.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

Row make_row(const char* config, std::size_t n, std::size_t k,
             std::size_t s3_chain, std::size_t s4_chain, SimTime subslot) {
  Row row;
  row.set("config", config)
      .set("n_sources", static_cast<std::uint64_t>(n))
      .set("degree", static_cast<std::uint64_t>(k))
      .set("s3_chain_subslots", static_cast<std::uint64_t>(s3_chain))
      .set("s4_chain_subslots", static_cast<std::uint64_t>(s4_chain))
      .set("ratio", round3(static_cast<double>(s3_chain) /
                           static_cast<double>(s4_chain)))
      .set("s3_slot_ms", round3(static_cast<double>(s3_chain) *
                                static_cast<double>(subslot) / 1e3))
      .set("s4_slot_ms", round3(static_cast<double>(s4_chain) *
                                static_cast<double>(subslot) / 1e3));
  return row;
}

Rows run_chain_scaling(const ScenarioContext&) {
  const net::RadioParams radio;
  const SimTime subslot = radio.subslot_us(core::SharePacket::kWireSize);

  Rows rows;
  for (const std::size_t n : {3u, 6u, 10u, 16u, 24u, 26u, 32u, 45u, 64u}) {
    const std::size_t k = core::paper_degree(n);
    const std::size_t m = std::min<std::size_t>(k + 3, n);
    rows.push_back(make_row("analytic", n, k, n * n, n * m, subslot));
  }

  // Cross-check against the real schedule builder on the two testbeds.
  for (const auto& [name, topo] :
       {std::pair<const char*, net::Topology>{"flocklab",
                                              net::testbeds::flocklab()},
        std::pair<const char*, net::Topology>{"dcube",
                                              net::testbeds::dcube()}}) {
    std::vector<NodeId> sources(topo.size());
    for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;
    const std::size_t k = core::paper_degree(sources.size());
    const auto s3_cfg = core::make_s3_config(topo, sources, k, 8);
    const auto s4_cfg = core::make_s4_config(topo, sources, k, 6);
    const auto s3_sched =
        ct::make_sharing_schedule(s3_cfg.sources, s3_cfg.share_holders);
    const auto s4_sched =
        ct::make_sharing_schedule(s4_cfg.sources, s4_cfg.share_holders);
    rows.push_back(make_row(name, sources.size(), k, s3_sched.size(),
                            s4_sched.size(), subslot));
  }
  return rows;
}

}  // namespace

void register_chain_scaling(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "chain_scaling",
      "§II/§III: O(n^2) naive sharing chain vs O(n*m) scalable chain",
      /*default_reps=*/1,
      /*deterministic=*/true,
      /*param_names=*/{}, run_chain_scaling});
}

}  // namespace mpciot::bench
