// §II/§III chain-size claim: the naive sharing phase needs an O(n^2)
// chain while the scalable variant trims it to O(n * m) with
// m = k + 1 + slack, k = floor(n/3). Analytic rows for a size sweep,
// cross-check rows from the real schedule builder on both testbeds,
// and simulated "sim_grid" rows that actually run the O(n^2) sharing
// chain through the MiniCast engine on growing grids — the hot-path
// workload the bitmap engine rewrite targets. Deterministic; reps
// averages the simulated rows.
#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/protocol.hpp"
#include "core/wire.hpp"
#include "crypto/prng.hpp"
#include "ct/chain_schedule.hpp"
#include "ct/minicast.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

Row make_row(const char* config, std::size_t n, std::size_t k,
             std::size_t s3_chain, std::size_t s4_chain, SimTime subslot) {
  Row row;
  row.set("config", config)
      .set("n_sources", static_cast<std::uint64_t>(n))
      .set("degree", static_cast<std::uint64_t>(k))
      .set("s3_chain_subslots", static_cast<std::uint64_t>(s3_chain))
      .set("s4_chain_subslots", static_cast<std::uint64_t>(s4_chain))
      .set("ratio", round3(static_cast<double>(s3_chain) /
                           static_cast<double>(s4_chain)))
      .set("s3_slot_ms", round3(static_cast<double>(s3_chain) *
                                static_cast<double>(subslot) / 1e3))
      .set("s4_slot_ms", round3(static_cast<double>(s4_chain) *
                                static_cast<double>(subslot) / 1e3));
  return row;
}

/// One simulated all-to-all sharing round (the naive O(n^2) chain) on a
/// rows x cols jittered grid, repeated `reps` times; reports the mean
/// delivery/slot/duration so the row stays deterministic per seed.
Row run_sim_grid(std::uint32_t grid_rows, std::uint32_t grid_cols,
                 const ScenarioContext& ctx) {
  const net::Topology topo = net::testbeds::grid(
      grid_rows, grid_cols, /*spacing_m=*/12.0, /*seed=*/ctx.seed ^ 0x51D0u);
  const std::size_t n = topo.size();
  std::vector<NodeId> sources(n);
  for (NodeId i = 0; i < n; ++i) sources[i] = i;
  const ct::SharingSchedule sched = ct::make_sharing_schedule(sources, sources);

  ct::MiniCastConfig cfg;
  cfg.initiator = topo.center_node();
  cfg.ntx = 4;
  cfg.payload_bytes = core::SharePacket::kWireSize;
  cfg.max_chain_slots = 192;
  cfg.scheduled_owners = sources;

  const std::uint32_t reps = std::max<std::uint32_t>(ctx.reps, 1);
  double delivery = 0.0;
  double slots = 0.0;
  double duration_ms = 0.0;
  ct::RoundContext scratch;  // reused across reps (identical results)
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    crypto::Xoshiro256 rng(crypto::derive_seed(ctx.seed, n, rep));
    const ct::MiniCastResult res =
        run_minicast(topo, sched.entries, cfg, rng, scratch);
    delivery += res.delivery_ratio();
    slots += static_cast<double>(res.chain_slots_used);
    duration_ms += static_cast<double>(res.duration_us) / 1e3;
  }
  Row row;
  row.set("config", "sim_grid")
      .set("n_sources", static_cast<std::uint64_t>(n))
      .set("s3_chain_subslots", static_cast<std::uint64_t>(sched.size()))
      .set("sim_delivery_pct", round3(delivery / reps * 100.0))
      .set("sim_chain_slots", round3(slots / reps))
      .set("sim_duration_ms", round3(duration_ms / reps));
  return row;
}

Rows run_chain_scaling(const ScenarioContext& ctx) {
  const net::RadioParams radio;
  const SimTime subslot = radio.subslot_us(core::SharePacket::kWireSize);

  Rows rows;
  for (const std::size_t n : {3u, 6u, 10u, 16u, 24u, 26u, 32u, 45u, 64u}) {
    const std::size_t k = core::paper_degree(n);
    const std::size_t m = std::min<std::size_t>(k + 3, n);
    rows.push_back(make_row("analytic", n, k, n * n, n * m, subslot));
  }

  // Cross-check against the real schedule builder on the two testbeds.
  for (const auto& [name, topo] :
       {std::pair<const char*, net::Topology>{"flocklab",
                                              net::testbeds::flocklab()},
        std::pair<const char*, net::Topology>{"dcube",
                                              net::testbeds::dcube()}}) {
    std::vector<NodeId> sources(topo.size());
    for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;
    const std::size_t k = core::paper_degree(sources.size());
    const auto s3_cfg = core::make_s3_config(topo, sources, k, 8);
    const auto s4_cfg = core::make_s4_config(topo, sources, k, 6);
    const auto s3_sched =
        ct::make_sharing_schedule(s3_cfg.sources, s3_cfg.share_holders);
    const auto s4_sched =
        ct::make_sharing_schedule(s4_cfg.sources, s4_cfg.share_holders);
    rows.push_back(make_row(name, sources.size(), k, s3_sched.size(),
                            s4_sched.size(), subslot));
  }

  // Simulated hot-path rows: run the naive chain for real on grids up to
  // 100 nodes (a 10,000-entry chain). These are the engine-bound rows the
  // wall-clock speedup of the bitmap rewrite shows up on.
  for (const auto& [grid_rows, grid_cols] :
       {std::pair<std::uint32_t, std::uint32_t>{4u, 4u},
        std::pair<std::uint32_t, std::uint32_t>{6u, 6u},
        std::pair<std::uint32_t, std::uint32_t>{8u, 8u},
        std::pair<std::uint32_t, std::uint32_t>{10u, 10u}}) {
    rows.push_back(run_sim_grid(grid_rows, grid_cols, ctx));
  }
  return rows;
}

}  // namespace

void register_chain_scaling(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "chain_scaling",
      "§II/§III: O(n^2) naive sharing chain vs O(n*m) scalable chain",
      /*default_reps=*/1,
      /*deterministic=*/true,
      /*param_names=*/{}, run_chain_scaling});
}

}  // namespace mpciot::bench
