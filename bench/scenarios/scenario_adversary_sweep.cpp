// Byzantine robustness sweep: attacker fraction x attack kind x testbed
// x transport, with and without Feldman-VSS cheater detection.
//
// Every trial hands the S4 round an AdversaryConfig: a deterministic
// attacker subset (paired across attack kinds — the same nodes turn
// coat at the same fraction) committing one of the active
// misbehaviours: malformed share values, equivocating dealers,
// polluted point-sums, or CT-slot jamming (a JammerChannel decorating
// the trial's channel model, so all four transports inherit it).
// Reported per configuration: the detection rate commitment
// verification achieves against the attackers that actually misdealt,
// aggregate correctness among the honest nodes, the rejection
// counters, and the commitment overhead in sharing-payload bytes.
//
// The two frac-0 rows pin the baselines: VSS off is the frozen
// engine byte for byte, VSS on shows the pure overhead of carrying
// and checking commitments with nobody cheating. The VSS-off malformed
// rows show why verification exists: the same attack with detection
// disabled silently corrupts the aggregate.
//
// Determinism: one unit per (configuration, trial) over
// metrics::parallel_for, every seed derived per unit, rows folded in
// unit order — output is byte-identical for any --jobs value.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/adversary.hpp"
#include "core/protocol.hpp"
#include "core/session.hpp"
#include "crypto/keystore.hpp"
#include "crypto/prng.hpp"
#include "ct/transport.hpp"
#include "fig1_common.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/simulator.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

/// derive_seed stream tags.
constexpr std::uint64_t kStreamBench = 0x41445630ull;      // "ADV0"
constexpr std::uint64_t kStreamAttackers = 0x4144564Eull;  // "ADVN"
constexpr std::uint64_t kStreamAdvCfg = 0x41445643ull;     // "ADVC"

/// One cell of the (attack kind, VSS, attacker fraction) axis.
struct AxisPoint {
  core::AttackKind kind = core::AttackKind::kNone;
  bool vss = false;
  double frac = 0.0;
  std::size_t frac_index = 0;  // pairs attacker sets across kinds
};

const char* attack_name(core::AttackKind kind) {
  switch (kind) {
    case core::AttackKind::kNone:
      return "none";
    case core::AttackKind::kMalformedShares:
      return "malformed";
    case core::AttackKind::kInconsistentShares:
      return "inconsistent";
    case core::AttackKind::kPollutedSums:
      return "polluted";
    case core::AttackKind::kJamSlots:
      return "jam";
  }
  return "?";
}

struct TrialRecord {
  double honest_success = 0.0;
  double success = 0.0;
  double latency_max_ms = 0.0;
  double radio_on_max_ms = 0.0;
  std::uint32_t shares_rejected = 0;
  std::uint32_t sums_rejected = 0;
  std::uint32_t detected = 0;
  std::uint32_t detectable = 0;
  std::uint32_t commit_bytes = 0;
};

struct Bench {
  const char* name = nullptr;
  net::Topology topo;
  std::uint32_t ntx = 6;
  std::unique_ptr<crypto::KeyStore> keys;
  core::ProtocolConfig base_cfg;  // S4, mid-size sources, wide holder slack
  std::uint64_t seed = 0;
};

/// The attacker subset of one (testbed, fraction, trial): a partial
/// Fisher–Yates over the node list, so sets are nested-ish across
/// fractions only by accident but identical across attack kinds.
std::vector<NodeId> pick_attackers(const Bench& bench,
                                   const AxisPoint& ax, std::uint32_t trial) {
  const std::size_t n = bench.topo.size();
  const auto count = static_cast<std::size_t>(
      ax.frac * static_cast<double>(n) + 1e-9);
  std::vector<NodeId> ids(n);
  for (NodeId i = 0; i < n; ++i) ids[i] = i;
  crypto::Xoshiro256 rng(crypto::derive_seed(
      bench.seed, kStreamAttackers,
      (static_cast<std::uint64_t>(ax.frac_index) << 32) | trial));
  for (std::size_t i = 0; i < count; ++i) {
    std::swap(ids[i], ids[i + rng.next_below(n - i)]);
  }
  ids.resize(count);
  return ids;
}

TrialRecord run_one(const Bench& bench, const ct::Transport* transport,
                    const AxisPoint& ax, std::size_t axis_index,
                    std::uint32_t trial) {
  core::ProtocolConfig cfg = bench.base_cfg;
  cfg.feldman_vss = ax.vss;
  cfg.adversary.kind = ax.kind;
  cfg.adversary.attackers = pick_attackers(bench, ax, trial);
  cfg.adversary.seed = crypto::derive_seed(
      bench.seed, kStreamAdvCfg,
      (static_cast<std::uint64_t>(axis_index) << 32) | trial);
  const std::vector<NodeId> attackers = cfg.adversary.attackers;
  const core::SssProtocol proto(bench.topo, *bench.keys, std::move(cfg),
                                transport);

  sim::Simulator sim(metrics::trial_sim_seed(bench.seed, trial));
  const std::vector<field::Fp61> secrets = metrics::random_secrets(
      metrics::trial_secret_seed(bench.seed, trial),
      proto.config().sources.size());
  core::Session session(proto);
  const core::AggregationResult& res =
      *session.run_round(secrets, sim).flat;

  // Map attacker node ids onto the round's source-bit positions: bit s
  // of the cheater mask refers to the s-th entry of config().sources,
  // which is a strict subset of the node list here.
  std::vector<char> is_attacker(bench.topo.size(), 0);
  for (const NodeId a : attackers) is_attacker[a] = 1;
  const auto& sources = proto.config().sources;
  std::uint64_t attacker_source_bits = 0;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    if (is_attacker[sources[s]]) {
      attacker_source_bits |= (std::uint64_t{1} << s);
    }
  }

  TrialRecord rec;
  rec.success = res.success_ratio();
  std::size_t honest = 0;
  std::size_t honest_ok = 0;
  for (NodeId i = 0; i < bench.topo.size(); ++i) {
    if (is_attacker[i]) continue;
    ++honest;
    if (res.nodes[i].has_aggregate && res.nodes[i].aggregate_correct) {
      ++honest_ok;
    }
  }
  rec.honest_success = honest == 0 ? 0.0
                                   : static_cast<double>(honest_ok) /
                                         static_cast<double>(honest);
  rec.latency_max_ms = static_cast<double>(res.max_latency_us()) / 1e3;
  rec.radio_on_max_ms = static_cast<double>(res.max_radio_on_us()) / 1e3;
  rec.shares_rejected = res.shares_rejected;
  rec.sums_rejected = res.sums_rejected;
  rec.commit_bytes = res.vss_commit_bytes;

  // Detection accounting. Misdealing kinds are caught per source;
  // polluted sums per attacker-held collector; jamming never surfaces
  // at the crypto layer (detectable stays 0 and the row reports 0).
  if (ax.kind == core::AttackKind::kMalformedShares ||
      ax.kind == core::AttackKind::kInconsistentShares) {
    // Only attackers that actually deal shares can misdeal.
    rec.detectable =
        static_cast<std::uint32_t>(std::popcount(attacker_source_bits));
    rec.detected = static_cast<std::uint32_t>(
        std::popcount(res.cheater_sources_mask & attacker_source_bits));
  } else if (ax.kind == core::AttackKind::kPollutedSums) {
    const auto& holders = proto.config().share_holders;
    std::uint64_t attacker_holder_bits = 0;
    for (std::size_t h = 0; h < holders.size(); ++h) {
      if (is_attacker[holders[h]]) {
        attacker_holder_bits |= (std::uint64_t{1} << h);
      }
    }
    rec.detectable =
        static_cast<std::uint32_t>(std::popcount(attacker_holder_bits));
    rec.detected = static_cast<std::uint32_t>(
        std::popcount(res.cheater_holders_mask & attacker_holder_bits));
  }
  return rec;
}

Rows run_adversary_sweep(const ScenarioContext& ctx) {
  const std::uint32_t reps = std::max<std::uint32_t>(ctx.reps, 1);

  // FlockLab-like office floor plus the sparser synthetic grid the
  // dynamics sweep uses. Holder slack is wide (12 beyond degree+1): at
  // 30% attackers the honest remainder of the holder set must still
  // reach the degree+1 quorum after cheater exclusion.
  constexpr std::size_t kHolderSlack = 12;
  std::vector<Bench> benches;
  benches.push_back({"flocklab", net::testbeds::flocklab(), 6, {}, {}, 0});
  benches.push_back(
      {"grid6x6",
       net::testbeds::grid(6, 6, /*spacing_m=*/12.0,
                           crypto::derive_seed(ctx.seed, 0x544F504Full, 36)),
       8,
       {},
       {},
       0});
  for (Bench& bench : benches) {
    // A fixed mid-size source set, like transport_matrix: the gossip
    // substrate cannot carry an all-sources S4 round on these testbeds
    // even with nobody cheating, and a dead baseline would make every
    // adversary effect in those cells unreadable.
    const std::vector<NodeId> sources = spread_sources(bench.topo.size(), 16);
    const std::size_t degree = core::paper_degree(sources.size());
    bench.keys = std::make_unique<crypto::KeyStore>(
        ctx.seed, static_cast<std::uint32_t>(bench.topo.size()));
    bench.base_cfg = core::make_s4_config(bench.topo, sources, degree,
                                          bench.ntx, kHolderSlack);
    bench.seed = crypto::derive_seed(
        ctx.seed, kStreamBench, static_cast<std::uint64_t>(bench.topo.size()));
  }

  // The axis: both baselines, the undetected-corruption control
  // (malformed with VSS off), then every attack kind under VSS across
  // the attacker fractions.
  const std::vector<double> fracs = {0.1, 0.2, 0.3};
  std::vector<AxisPoint> axis;
  axis.push_back({core::AttackKind::kNone, false, 0.0, 0});
  axis.push_back({core::AttackKind::kNone, true, 0.0, 0});
  for (std::size_t f = 0; f < fracs.size(); ++f) {
    axis.push_back(
        {core::AttackKind::kMalformedShares, false, fracs[f], f + 1});
  }
  for (const core::AttackKind kind :
       {core::AttackKind::kMalformedShares,
        core::AttackKind::kInconsistentShares,
        core::AttackKind::kPollutedSums, core::AttackKind::kJamSlots}) {
    for (std::size_t f = 0; f < fracs.size(); ++f) {
      axis.push_back({kind, true, fracs[f], f + 1});
    }
  }

  const std::vector<std::string> transport_names = ct::transport_names();
  std::vector<std::unique_ptr<ct::Transport>> transports;
  transports.reserve(transport_names.size());
  for (const std::string& name : transport_names) {
    transports.push_back(ct::make_transport(name));
  }

  struct Point {
    const Bench* bench = nullptr;
    std::size_t transport = 0;
    std::size_t axis = 0;
  };
  std::vector<Point> points;
  for (const Bench& bench : benches) {
    for (std::size_t t = 0; t < transports.size(); ++t) {
      for (std::size_t a = 0; a < axis.size(); ++a) {
        points.push_back(Point{&bench, t, a});
      }
    }
  }

  const std::size_t units = points.size() * reps;
  std::vector<TrialRecord> records(units);
  const unsigned jobs =
      metrics::resolve_jobs(ctx.jobs, static_cast<std::uint32_t>(units));
  metrics::parallel_for(units, jobs, [&](std::size_t unit) {
    const Point& point = points[unit / reps];
    records[unit] = run_one(*point.bench, transports[point.transport].get(),
                            axis[point.axis], point.axis,
                            static_cast<std::uint32_t>(unit % reps));
  });

  Rows rows;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const Point& point = points[p];
    const AxisPoint& ax = axis[point.axis];
    metrics::Summary honest_success;
    metrics::Summary success;
    metrics::Summary latency;
    metrics::Summary radio;
    double shares_rej = 0.0;
    double sums_rej = 0.0;
    std::uint64_t detected = 0;
    std::uint64_t detectable = 0;
    std::uint32_t commit_bytes = 0;
    for (std::uint32_t t = 0; t < reps; ++t) {
      const TrialRecord& rec = records[p * reps + t];
      honest_success.add(rec.honest_success);
      success.add(rec.success);
      latency.add(rec.latency_max_ms);
      radio.add(rec.radio_on_max_ms);
      shares_rej += rec.shares_rejected;
      sums_rej += rec.sums_rejected;
      detected += rec.detected;
      detectable += rec.detectable;
      commit_bytes = rec.commit_bytes;
    }
    Row row;
    row.set("testbed", point.bench->name)
        .set("transport", transport_names[point.transport])
        .set("attack", attack_name(ax.kind))
        .set("vss", static_cast<std::uint64_t>(ax.vss ? 1 : 0))
        .set("attacker_pct", round3(ax.frac * 100))
        .set("detect_pct",
             round3(detectable == 0 ? 0.0
                                    : 100.0 * static_cast<double>(detected) /
                                          static_cast<double>(detectable)))
        .set("honest_success_pct", round3(honest_success.mean() * 100))
        .set("success_pct", round3(success.mean() * 100))
        .set("latency_ms", round3(latency.mean()))
        .set("max_radio_on_ms", round3(radio.mean()))
        .set("shares_rejected", round3(shares_rej / reps))
        .set("sums_rejected", round3(sums_rej / reps))
        .set("commit_bytes", static_cast<std::uint64_t>(commit_bytes));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

void register_adversary_sweep(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "adversary_sweep",
      "Byzantine attacks (malformed/equivocating shares, polluted sums, "
      "jamming) vs Feldman-VSS cheater detection across testbeds and "
      "transports",
      /*default_reps=*/10,
      /*deterministic=*/true,
      /*param_names=*/{}, run_adversary_sweep});
}

}  // namespace mpciot::bench
