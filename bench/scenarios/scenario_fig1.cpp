// Fig. 1 (a)-(d): S3 vs S4 latency and radio-on time per source count,
// on the FlockLab-like (26 nodes, S4 NTX 6) and DCube-like (45 nodes,
// S4 NTX 5) testbeds. One row per source count; trials fan out over
// ctx.jobs worker threads with jobs-invariant results.
#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "crypto/keystore.hpp"
#include "fig1_common.hpp"
#include "metrics/experiment.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

Rows run_fig1(const net::Topology& topo, const char* testbed,
              const std::vector<std::size_t>& source_counts,
              std::uint32_t s4_ntx, const ScenarioContext& ctx) {
  const crypto::KeyStore keys(ctx.seed, topo.size());
  Rows rows;
  for (const std::size_t source_count : source_counts) {
    const std::vector<NodeId> sources =
        spread_sources(topo.size(), source_count);
    const std::size_t degree = core::paper_degree(sources.size());
    crypto::Xoshiro256 cal_rng(ctx.seed ^ 0xCA11B007ull);
    const std::uint32_t s3_ntx =
        core::suggest_s3_ntx(topo, sources, /*trials=*/25, cal_rng);

    const core::SssProtocol s3(
        topo, keys, core::make_s3_config(topo, sources, degree, s3_ntx));
    const core::SssProtocol s4(
        topo, keys, core::make_s4_config(topo, sources, degree, s4_ntx));

    metrics::ExperimentSpec spec;
    spec.repetitions = ctx.reps;
    spec.base_seed = ctx.seed;
    spec.jobs = ctx.jobs;
    const metrics::TrialStats s3_stats = metrics::run_trials(s3, spec);
    const metrics::TrialStats s4_stats = metrics::run_trials(s4, spec);

    const double s3_lat = s3_stats.latency_max_ms.mean();
    const double s4_lat = s4_stats.latency_max_ms.mean();
    const double s3_radio = s3_stats.radio_on_max_ms.mean();
    const double s4_radio = s4_stats.radio_on_max_ms.mean();

    Row row;
    row.set("testbed", testbed)
        .set("sources", static_cast<std::uint64_t>(source_count))
        .set("degree", static_cast<std::uint64_t>(degree))
        .set("holders",
             static_cast<std::uint64_t>(s4.config().share_holders.size()))
        .set("s3_ntx", s3_ntx)
        .set("s4_ntx", s4_ntx)
        .set("s3_latency_ms", round3(s3_lat))
        .set("s4_latency_ms", round3(s4_lat))
        .set("latency_speedup", round3(s3_lat / s4_lat))
        .set("s3_radio_on_ms", round3(s3_radio))
        .set("s4_radio_on_ms", round3(s4_radio))
        .set("radio_reduction", round3(s3_radio / s4_radio))
        .set("s3_success_pct", round3(s3_stats.success_ratio.mean() * 100))
        .set("s4_success_pct", round3(s4_stats.success_ratio.mean() * 100))
        .set("s3_delivery_pct", round3(s3_stats.share_delivery.mean() * 100))
        .set("s4_delivery_pct", round3(s4_stats.share_delivery.mean() * 100));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

void register_fig1_scenarios(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "fig1_flocklab",
      "Fig. 1 (a,b): S3 vs S4 latency and radio-on, FlockLab-like testbed",
      /*default_reps=*/20,
      /*deterministic=*/true,
      /*param_names=*/{},
      [](const ScenarioContext& ctx) {
        return run_fig1(net::testbeds::flocklab(), "flocklab",
                        {3u, 6u, 10u, 24u}, /*s4_ntx=*/6, ctx);
      }});
  registry.add(bench_core::ScenarioSpec{
      "fig1_dcube",
      "Fig. 1 (c,d): S3 vs S4 latency and radio-on, DCube-like testbed",
      /*default_reps=*/20,
      /*deterministic=*/true,
      /*param_names=*/{},
      [](const ScenarioContext& ctx) {
        return run_fig1(net::testbeds::dcube(), "dcube", {5u, 7u, 12u, 45u},
                        /*s4_ntx=*/5, ctx);
      }});
}

}  // namespace mpciot::bench
