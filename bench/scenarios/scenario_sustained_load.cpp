// Sustained aggregation campaigns: the rounds/sec view of the engine.
//
// Every other scenario measures one round in isolation; a deployed
// network runs them back to back for the lifetime of the deployment.
// This scenario drives core::Campaign over core::Session — N rounds
// streamed on warm state — and reports throughput (aggregates/sec),
// the p50/p99 submit-to-result round latency, and the pipeline speedup
// of overlapping consecutive hierarchical rounds on the persistent
// channel timeline (round r+1's group phases start while round r's
// recombination + result floods drain on the flood lane).
//
// Axes: flat S4 on the FlockLab-like testbed vs hierarchical grid
// (16 groups on 16 channels), each under a static world and under
// Gilbert–Elliott bursty links + node churn, each streamed
// sequentially and pipelined. Flat sessions have one chain occupying
// the whole band, so their pipelined row is the sequential baseline by
// construction (speedup 1.0) — kept as the control.
//
// Determinism: one unit per (configuration, trial) over
// metrics::parallel_for, every seed derived per unit, rows folded in
// unit order — output is byte-identical for any --jobs value.
// Params: rounds (default 16) — rounds streamed per campaign.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "core/hierarchical.hpp"
#include "core/protocol.hpp"
#include "core/session.hpp"
#include "crypto/keystore.hpp"
#include "crypto/prng.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats.hpp"
#include "net/partition.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/dynamics.hpp"
#include "sim/simulator.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

/// derive_seed stream tags.
constexpr std::uint64_t kStreamPoint = 0x53555354ull;  // "SUST"
constexpr std::uint64_t kStreamLink = 0x44594E4Cull;   // "DYNL"
constexpr std::uint64_t kStreamChurn = 0x44594E43ull;  // "DYNC"
constexpr std::uint64_t kStreamRound = 0x524F554Eull;  // "ROUN"

struct LoadPoint {
  const char* engine = nullptr;   // "flat" | "hier"
  const char* world = nullptr;    // "static" | "dynamic"
  bool pipelined = false;
  bool dynamic = false;
  const core::SssProtocol* flat = nullptr;
  const core::HierarchicalProtocol* hier = nullptr;
  const net::Topology* topo = nullptr;
  std::uint64_t seed = 0;
};

struct CampaignRecord {
  double agg_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double success = 0.0;
  double speedup = 0.0;
  double rounds_ok = 0.0;
};

CampaignRecord run_one(const LoadPoint& pt, std::uint32_t rounds,
                       std::uint32_t trial) {
  const std::uint64_t tseed = metrics::trial_sim_seed(pt.seed, trial);
  sim::Simulator sim(tseed);

  std::optional<sim::dynamics::LinkDynamics> link;
  std::optional<sim::dynamics::NodeChurn> churn;
  if (pt.dynamic) {
    // Mean burst 8 epochs, 10% stationary bad fraction (mid-grade
    // conditions from the dynamics_sweep), plus moderate churn.
    sim::dynamics::LinkDynamicsParams lp;
    lp.seed = crypto::derive_seed(tseed, kStreamLink, 0);
    lp.p_bad_to_good = 1.0 / 8.0;
    lp.p_good_to_bad = lp.p_bad_to_good * 0.1 / 0.9;
    lp.bad_extra_loss_db = 12.0;
    lp.drift_sigma_db = 0.3;
    lp.drift_limit_db = 4.0;
    link.emplace(lp);
    sim.set_channel_model(&*link);
    sim::dynamics::NodeChurnParams cp;
    cp.seed = crypto::derive_seed(tseed, kStreamChurn, 0);
    cp.crashes_per_sec = 0.5;
    cp.mean_downtime_us = 500 * kMillisecond;
    churn.emplace(pt.topo->size(), cp);
    sim.set_liveness(&*churn);
  }

  core::Session session = pt.flat != nullptr
                              ? core::Session(*pt.flat)
                              : core::Session(*pt.hier);
  core::CampaignConfig ccfg;
  ccfg.rounds = rounds;
  ccfg.pipelined = pt.pipelined;
  core::Campaign campaign(session, ccfg);
  const std::uint64_t secret_base = metrics::trial_secret_seed(pt.seed, trial);
  const core::CampaignResult& res = campaign.run(
      sim, [&](std::uint32_t r, std::vector<field::Fp61>& secrets) {
        crypto::Xoshiro256 rng(
            crypto::derive_seed(secret_base, kStreamRound, r));
        for (field::Fp61& s : secrets) {
          s = field::Fp61(rng.next_below(1000));
        }
      });

  CampaignRecord rec;
  rec.agg_per_sec = res.aggregates_per_sec();
  rec.p50_ms = static_cast<double>(res.latency_percentile_us(0.50)) / 1e3;
  rec.p99_ms = static_cast<double>(res.latency_percentile_us(0.99)) / 1e3;
  rec.success = res.mean_success_ratio;
  rec.speedup = res.pipeline_speedup();
  rec.rounds_ok = static_cast<double>(res.rounds_ok);
  return rec;
}

Rows run_sustained_load(const ScenarioContext& ctx) {
  const std::uint32_t reps = std::max<std::uint32_t>(ctx.reps, 1);
  const std::uint32_t rounds =
      std::max<std::uint32_t>(ctx.param_u32("rounds", 16), 1);

  // Flat S4 on the FlockLab-like floor; hierarchical 16-group grid on
  // 16 orthogonal channels (same 12 m class as hierarchy_scaling).
  const net::Topology flocklab = net::testbeds::flocklab();
  std::vector<NodeId> sources(flocklab.size());
  for (NodeId i = 0; i < flocklab.size(); ++i) sources[i] = i;
  const crypto::KeyStore keys(crypto::derive_seed(ctx.seed, kStreamPoint, 0),
                              flocklab.size());
  const core::SssProtocol flat(
      flocklab, keys,
      core::make_s4_config(flocklab, sources,
                           core::paper_degree(sources.size()), /*ntx_low=*/6));

  const net::Topology grid = net::testbeds::retry_topology(
      "sustained_load: could not build grid", 64,
      [&](std::uint64_t attempt) {
        return net::testbeds::grid(
            8, 8, /*spacing_m=*/12.0,
            crypto::derive_seed(ctx.seed, 0x544F504Full /*"TOPO"*/,
                                64 + attempt));
      });
  // 16 small groups: the per-round group phase shrinks toward the cost
  // of one 4-node round while the recombination tree + result flood
  // stay network-wide, so pipelining has a real tail to hide.
  core::HierarchicalConfig hcfg;
  hcfg.partition = net::partition::grid_blocks(grid, 16);
  hcfg.num_channels = 16;
  hcfg.ntx_sharing = 8;
  hcfg.ntx_reconstruction = 8;
  const core::HierarchicalProtocol hier(grid, std::move(hcfg));

  std::vector<LoadPoint> points;
  for (const bool dynamic : {false, true}) {
    for (const bool pipelined : {false, true}) {
      for (const bool use_hier : {false, true}) {
        LoadPoint pt;
        pt.engine = use_hier ? "hier" : "flat";
        pt.world = dynamic ? "dynamic" : "static";
        pt.pipelined = pipelined;
        pt.dynamic = dynamic;
        pt.flat = use_hier ? nullptr : &flat;
        pt.hier = use_hier ? &hier : nullptr;
        pt.topo = use_hier ? &grid : &flocklab;
        pt.seed = crypto::derive_seed(
            ctx.seed, kStreamPoint,
            (dynamic ? 4u : 0u) | (use_hier ? 2u : 0u) | 1u);
        points.push_back(pt);
      }
    }
  }

  // One unit per (point, trial), folded in unit order: byte-identical
  // rows for any --jobs value.
  const std::size_t units = points.size() * reps;
  std::vector<CampaignRecord> records(units);
  const unsigned jobs =
      metrics::resolve_jobs(ctx.jobs, static_cast<std::uint32_t>(units));
  metrics::parallel_for(units, jobs, [&](std::size_t unit) {
    records[unit] = run_one(points[unit / reps], rounds,
                            static_cast<std::uint32_t>(unit % reps));
  });

  Rows rows;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const LoadPoint& pt = points[p];
    metrics::Summary agg;
    metrics::Summary p50;
    metrics::Summary p99;
    metrics::Summary success;
    metrics::Summary speedup;
    metrics::Summary ok;
    for (std::uint32_t t = 0; t < reps; ++t) {
      const CampaignRecord& rec = records[p * reps + t];
      agg.add(rec.agg_per_sec);
      p50.add(rec.p50_ms);
      p99.add(rec.p99_ms);
      success.add(rec.success);
      speedup.add(rec.speedup);
      ok.add(rec.rounds_ok);
    }
    Row row;
    row.set("engine", pt.engine)
        .set("world", pt.world)
        .set("mode", pt.pipelined ? "pipelined" : "sequential")
        .set("rounds", static_cast<std::uint64_t>(rounds))
        .set("agg_per_sec", round3(agg.mean()))
        .set("p50_ms", round3(p50.mean()))
        .set("p99_ms", round3(p99.mean()))
        .set("success_pct", round3(success.mean() * 100))
        .set("pipeline_speedup", round3(speedup.mean()))
        .set("rounds_ok", round3(ok.mean()));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

void register_sustained_load(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "sustained_load",
      "Streaming campaigns over the Session API: aggregates/sec and "
      "p50/p99 round latency, sequential vs pipelined, static vs "
      "bursty links + churn (params: rounds)",
      /*default_reps=*/3,
      /*deterministic=*/true,
      /*param_names=*/{"rounds"}, run_sustained_load});
}

}  // namespace mpciot::bench
