// Extra baseline (not in the paper's evaluation, but its premise): the
// same SSS aggregation run over a conventional duty-cycled multi-hop
// unicast stack versus the CT substrate. Quantifies why the paper
// builds on concurrent transmissions at all.
#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "core/unicast_baseline.hpp"
#include "crypto/keystore.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats.hpp"
#include "net/testbeds.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/simulator.hpp"

namespace mpciot::bench {

namespace {

using bench_core::Row;
using bench_core::Rows;
using bench_core::ScenarioContext;

Rows run_unicast_vs_ct(const ScenarioContext& ctx) {
  const net::Topology topo = net::testbeds::flocklab();
  const crypto::KeyStore keys(ctx.seed, topo.size());
  std::vector<NodeId> sources(topo.size());
  for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;
  const std::size_t degree = core::paper_degree(sources.size());

  // CT: the S4 protocol over the parallel trial engine.
  const core::SssProtocol s4(topo, keys,
                             core::make_s4_config(topo, sources, degree, 6));
  metrics::ExperimentSpec spec;
  spec.repetitions = ctx.reps;
  spec.base_seed = ctx.seed;
  spec.jobs = ctx.jobs;
  const metrics::TrialStats ct_stats = metrics::run_trials(s4, spec);

  // Unicast: same shares/sums over routed stop-and-wait hops.
  metrics::Summary uc_latency_ms;
  metrics::Summary uc_radio_ms;
  metrics::Summary uc_success;
  const auto uc_cfg = core::make_s4_config(topo, sources, degree, 6);
  for (std::uint32_t t = 0; t < ctx.reps; ++t) {
    // Mirror run_trials' per-trial streams so the baseline stays paired
    // with the CT run above (same secrets, same channel draws per trial).
    sim::Simulator sim(metrics::trial_sim_seed(ctx.seed, t));
    const auto secrets = metrics::random_secrets(
        metrics::trial_secret_seed(ctx.seed, t), sources.size());
    const core::UnicastResult res = core::run_unicast_sss(
        topo, uc_cfg, secrets, core::UnicastParams{}, sim);
    uc_latency_ms.add(static_cast<double>(res.total_duration_us) / 1e3);
    uc_radio_ms.add(static_cast<double>(res.max_radio_on_us()) / 1e3);
    uc_success.add(res.success_ratio());
  }

  Rows rows;
  Row ct_row;
  ct_row.set("substrate", "ct_minicast_s4")
      .set("latency_ms", round3(ct_stats.latency_max_ms.mean()))
      .set("max_radio_on_ms", round3(ct_stats.radio_on_max_ms.mean()))
      .set("success_pct", round3(ct_stats.success_ratio.mean() * 100));
  rows.push_back(std::move(ct_row));
  Row uc_row;
  uc_row.set("substrate", "unicast_routing")
      .set("latency_ms", round3(uc_latency_ms.mean()))
      .set("max_radio_on_ms", round3(uc_radio_ms.mean()))
      .set("success_pct", round3(uc_success.mean() * 100));
  rows.push_back(std::move(uc_row));
  return rows;
}

}  // namespace

void register_unicast_vs_ct(bench_core::Registry& registry) {
  registry.add(bench_core::ScenarioSpec{
      "unicast_vs_ct",
      "Baseline: SSS over duty-cycled unicast vs the CT substrate",
      /*default_reps=*/10,
      /*deterministic=*/true,
      /*param_names=*/{}, run_unicast_vs_ct});
}

}  // namespace mpciot::bench
