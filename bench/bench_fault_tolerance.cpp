// Thin shim over the scenario registry: equivalent to
// `mpciot-bench --filter fault_tolerance`. See
// scenarios/scenario_fault_tolerance.cpp.
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  return mpciot::bench::run_legacy_shim("fault_tolerance", argc, argv);
}
