// Reproduces the §III fault-tolerance claim: with a degree-k polynomial
// and k < n, "even the final polynomial can be formed by combining any
// k+1 sum values", so S4 (m = k+1+slack holders) survives holder
// failures that the naive holder-per-source arrangement shrugs off only
// while at least k+1 of its sums stay complete.
//
// We inject f random node failures per round (never the initiator) and
// report the fraction of live nodes that still obtain a correct
// aggregate of the surviving sources.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/protocol.hpp"
#include "crypto/keystore.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "net/testbeds.hpp"

using namespace mpciot;

namespace {

std::vector<NodeId> pick_failures(const net::Topology& topo, NodeId initiator,
                                  std::size_t count,
                                  crypto::Xoshiro256& rng) {
  std::vector<NodeId> all;
  for (NodeId i = 0; i < topo.size(); ++i) {
    if (i != initiator) all.push_back(i);
  }
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < count && !all.empty(); ++i) {
    const std::size_t pick = rng.next_below(all.size());
    out.push_back(all[pick]);
    all.erase(all.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t reps = 20;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--reps N] [--seed S]\n", argv[0]);
      return 2;
    }
  }

  const net::Topology topo = net::testbeds::flocklab();
  const crypto::KeyStore keys(seed, topo.size());
  std::vector<NodeId> sources(topo.size());
  for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;
  const std::size_t degree = core::paper_degree(sources.size());

  crypto::Xoshiro256 cal(seed);
  const std::uint32_t ntx_full =
      core::suggest_s3_ntx(topo, sources, 10, cal);

  std::printf("== Fault tolerance under node failures (FlockLab-like, "
              "k=%zu, %u reps) ==\n",
              degree, reps);
  metrics::Table table({"failed nodes", "S3 success", "S4 success",
                        "S4 slack-0 success"});

  for (std::size_t failures : {0u, 1u, 2u, 3u, 5u, 8u}) {
    metrics::Summary s3_ok;
    metrics::Summary s4_ok;
    metrics::Summary s4tight_ok;
    for (std::uint32_t t = 0; t < reps; ++t) {
      crypto::Xoshiro256 frng(seed * 1000 + t);
      // Shared failure set per trial so the comparison is paired.
      auto base_s3 = core::make_s3_config(topo, sources, degree, ntx_full);
      const auto failed =
          pick_failures(topo, base_s3.initiator, failures, frng);

      const auto run_one = [&](core::ProtocolConfig cfg,
                               metrics::Summary& acc) {
        cfg.failed_nodes = failed;
        const core::SssProtocol proto(topo, keys, cfg);
        sim::Simulator sim(seed + t);
        const auto secrets =
            metrics::random_secrets(seed * 77 + t, sources.size());
        acc.add(proto.run(secrets, sim).success_ratio());
      };
      run_one(base_s3, s3_ok);
      run_one(core::make_s4_config(topo, sources, degree, 6, /*slack=*/2),
              s4_ok);
      run_one(core::make_s4_config(topo, sources, degree, 6, /*slack=*/0),
              s4tight_ok);
    }
    table.add_row(
        {std::to_string(failures),
         metrics::Table::num(s3_ok.mean() * 100, 1) + "%",
         metrics::Table::num(s4_ok.mean() * 100, 1) + "%",
         metrics::Table::num(s4tight_ok.mean() * 100, 1) + "%"});
  }
  table.print(std::cout);
  std::printf("\nnote: success = live nodes holding a correct aggregate of "
              "the surviving sources. S4's holder slack buys tolerance to "
              "holder deaths; slack-0 shows the paper's bare k+1 holder "
              "set for contrast.\n");
  return 0;
}
