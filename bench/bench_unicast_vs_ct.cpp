// Thin shim over the scenario registry: equivalent to
// `mpciot-bench --filter unicast_vs_ct`. See
// scenarios/scenario_unicast_vs_ct.cpp.
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  return mpciot::bench::run_legacy_shim("unicast_vs_ct", argc, argv);
}
