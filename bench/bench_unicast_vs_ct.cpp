// Extra baseline (not in the paper's evaluation, but its premise): the
// same SSS aggregation run over a conventional duty-cycled multi-hop
// unicast stack versus the CT substrate. Quantifies why the paper builds
// on concurrent transmissions at all.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/protocol.hpp"
#include "core/unicast_baseline.hpp"
#include "crypto/keystore.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "net/testbeds.hpp"

using namespace mpciot;

int main(int argc, char** argv) {
  std::uint32_t reps = 10;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--reps N] [--seed S]\n", argv[0]);
      return 2;
    }
  }

  const net::Topology topo = net::testbeds::flocklab();
  const crypto::KeyStore keys(seed, topo.size());
  std::vector<NodeId> sources(topo.size());
  for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;
  const std::size_t degree = core::paper_degree(sources.size());

  std::printf("== Unicast (ContikiMAC-class) vs CT substrate, FlockLab-like, "
              "%zu sources ==\n",
              sources.size());

  // CT: the S4 protocol.
  const core::SssProtocol s4(topo, keys,
                             core::make_s4_config(topo, sources, degree, 6));
  metrics::ExperimentSpec spec;
  spec.repetitions = reps;
  spec.base_seed = seed;
  const metrics::TrialStats ct_stats = metrics::run_trials(s4, spec);

  // Unicast: same shares/sums over routed stop-and-wait hops.
  metrics::Summary uc_latency_ms;
  metrics::Summary uc_radio_ms;
  metrics::Summary uc_success;
  const auto uc_cfg = core::make_s4_config(topo, sources, degree, 6);
  for (std::uint32_t t = 0; t < reps; ++t) {
    sim::Simulator sim(seed + t);
    const auto secrets =
        metrics::random_secrets((seed + t) * 7919 + 13, sources.size());
    const core::UnicastResult res = core::run_unicast_sss(
        topo, uc_cfg, secrets, core::UnicastParams{}, sim);
    uc_latency_ms.add(static_cast<double>(res.total_duration_us) / 1e3);
    uc_radio_ms.add(static_cast<double>(res.max_radio_on_us()) / 1e3);
    uc_success.add(res.success_ratio());
  }

  metrics::Table table({"substrate", "latency (ms)", "max radio-on (ms)",
                        "success"});
  table.add_row({"CT / MiniCast (S4)",
                 metrics::Table::num(ct_stats.latency_max_ms.mean()),
                 metrics::Table::num(ct_stats.radio_on_max_ms.mean()),
                 metrics::Table::num(ct_stats.success_ratio.mean() * 100, 1) +
                     "%"});
  table.add_row({"Unicast routing",
                 metrics::Table::num(uc_latency_ms.mean()),
                 metrics::Table::num(uc_radio_ms.mean()),
                 metrics::Table::num(uc_success.mean() * 100, 1) + "%"});
  table.print(std::cout);
  std::printf("\nCT advantage: %.1fx latency, %.1fx max radio-on\n",
              uc_latency_ms.mean() / ct_stats.latency_max_ms.mean(),
              uc_radio_ms.mean() / ct_stats.radio_on_max_ms.mean());
  return 0;
}
