// Thin shim over the scenario registry: equivalent to
// `mpciot-bench --filter ntx_coverage --param max_ntx=M`. See
// scenarios/scenario_ntx_coverage.cpp.
#include "scenarios/scenarios.hpp"

int main(int argc, char** argv) {
  return mpciot::bench::run_legacy_shim("ntx_coverage", argc, argv,
                                        /*accept_max_ntx=*/true);
}
