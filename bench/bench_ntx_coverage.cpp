// Reproduces the §III claim that MiniCast coverage is *non-linear* in
// NTX: "with a short increase in NTX, a large amount of data becomes
// available in a node, while it takes a comparatively higher time (NTX)
// to have the full network coverage."
//
// For each testbed and each NTX we run all-to-all MiniCast rounds and
// report (a) mean delivery ratio, (b) fraction of trials with FULL
// network coverage, and (c) delivery into the central share-holder set
// only — the asymmetry S4 exploits.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/bootstrap.hpp"
#include "core/protocol.hpp"
#include "core/wire.hpp"
#include "ct/chain_schedule.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "net/testbeds.hpp"

using namespace mpciot;

namespace {

void sweep(const char* name, const net::Topology& topo, std::uint32_t reps,
           std::uint64_t seed, std::uint32_t max_ntx) {
  std::vector<NodeId> sources(topo.size());
  for (NodeId i = 0; i < topo.size(); ++i) sources[i] = i;
  const ct::SharingSchedule sched =
      ct::make_sharing_schedule(sources, sources);

  const std::size_t degree = core::paper_degree(sources.size());
  const std::vector<NodeId> holders =
      core::elect_share_holders(topo, sources, degree + 3);
  std::vector<char> is_holder(topo.size(), 0);
  for (NodeId h : holders) is_holder[h] = 1;

  metrics::Table table({"ntx", "delivery %", "full-coverage trials %",
                        "holder delivery %", "round (ms)"});

  for (std::uint32_t ntx = 1; ntx <= max_ntx; ++ntx) {
    metrics::Summary delivery;
    metrics::Summary full;
    metrics::Summary holder_delivery;
    metrics::Summary duration_ms;
    for (std::uint32_t t = 0; t < reps; ++t) {
      crypto::Xoshiro256 rng(seed + t);
      ct::MiniCastConfig cfg;
      cfg.initiator = topo.center_node();
      cfg.ntx = ntx;
      cfg.payload_bytes = core::SharePacket::kWireSize;
      cfg.max_chain_slots = 512;
      const ct::MiniCastResult res =
          run_minicast(topo, sched.entries, cfg, rng);
      delivery.add(res.delivery_ratio());
      full.add(res.delivery_ratio() >= 1.0 ? 1.0 : 0.0);
      duration_ms.add(static_cast<double>(res.duration_us) / 1e3);

      std::size_t holder_got = 0;
      std::size_t holder_total = 0;
      for (std::size_t h = 0; h < holders.size(); ++h) {
        for (std::size_t s = 0; s < sources.size(); ++s) {
          const std::size_t entry = sched.entry_index(
              s, static_cast<std::size_t>(
                     std::find(sched.destinations.begin(),
                               sched.destinations.end(), holders[h]) -
                     sched.destinations.begin()));
          ++holder_total;
          if (res.node_has(holders[h], entry)) ++holder_got;
        }
      }
      holder_delivery.add(static_cast<double>(holder_got) /
                          static_cast<double>(holder_total));
    }
    table.add_row({std::to_string(ntx),
                   metrics::Table::num(delivery.mean() * 100, 2),
                   metrics::Table::num(full.mean() * 100, 0),
                   metrics::Table::num(holder_delivery.mean() * 100, 2),
                   metrics::Table::num(duration_ms.mean())});
  }
  std::printf("== NTX vs coverage, %s (%zu nodes, diameter %u) ==\n", name,
              topo.size(), topo.diameter());
  table.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t reps = 10;
  std::uint64_t seed = 1;
  std::uint32_t max_ntx = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-ntx" && i + 1 < argc) {
      max_ntx =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--reps N] [--seed S] [--max-ntx M]\n",
                   argv[0]);
      return 2;
    }
  }
  const net::Topology flocklab = net::testbeds::flocklab();
  const net::Topology dcube = net::testbeds::dcube();
  sweep("FlockLab-like", flocklab, reps, seed, max_ntx);
  sweep("DCube-like", dcube, reps, seed, max_ntx);
  return 0;
}
