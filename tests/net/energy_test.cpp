#include "net/energy.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace mpciot::net {
namespace {

TEST(EnergyMeter, StartsAtZero) {
  const EnergyMeter meter(4, RadioParams{});
  EXPECT_EQ(meter.total_radio_on_us(), 0);
  EXPECT_EQ(meter.max_radio_on_us(), 0);
  EXPECT_EQ(meter.mean_radio_on_us(), 0.0);
}

TEST(EnergyMeter, AccumulatesRxAndTx) {
  EnergyMeter meter(3, RadioParams{});
  meter.add_rx(0, 100);
  meter.add_tx(0, 50);
  meter.add_rx(1, 10);
  EXPECT_EQ(meter.radio_on_us(0), 150);
  EXPECT_EQ(meter.rx_us(0), 100);
  EXPECT_EQ(meter.tx_us(0), 50);
  EXPECT_EQ(meter.radio_on_us(1), 10);
  EXPECT_EQ(meter.radio_on_us(2), 0);
  EXPECT_EQ(meter.total_radio_on_us(), 160);
  EXPECT_EQ(meter.max_radio_on_us(), 150);
  EXPECT_NEAR(meter.mean_radio_on_us(), 160.0 / 3.0, 1e-9);
}

TEST(EnergyMeter, ChargeUsesSeparateCurrents) {
  RadioParams radio;
  radio.rx_current_ma = 10.0;
  radio.tx_current_ma = 20.0;
  EnergyMeter meter(1, radio);
  meter.add_rx(0, 1000000);  // 1 s at 10 mA = 10 mC
  meter.add_tx(0, 500000);   // 0.5 s at 20 mA = 10 mC
  EXPECT_NEAR(meter.charge_mc(0), 20.0, 1e-9);
}

TEST(EnergyMeter, MergeAddsPerNode) {
  EnergyMeter a(2, RadioParams{});
  EnergyMeter b(2, RadioParams{});
  a.add_rx(0, 5);
  b.add_rx(0, 7);
  b.add_tx(1, 3);
  a.merge(b);
  EXPECT_EQ(a.radio_on_us(0), 12);
  EXPECT_EQ(a.radio_on_us(1), 3);
}

TEST(EnergyMeter, MergeSizeMismatchViolatesContract) {
  EnergyMeter a(2, RadioParams{});
  EnergyMeter b(3, RadioParams{});
  EXPECT_THROW(a.merge(b), ContractViolation);
}

}  // namespace
}  // namespace mpciot::net
