// Partition invariants for the hierarchical-aggregation substrate:
// every node lands in exactly one group, every group's usable-link
// subgraph is connected, and both clusterings are deterministic.
#include "net/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/assert.hpp"
#include "net/testbeds.hpp"

namespace mpciot::net::partition {
namespace {

void expect_invariants(const Topology& topo, const Partition& p,
                       std::uint32_t target_groups) {
  EXPECT_LE(p.size(), target_groups);
  EXPECT_GE(p.size(), 1u);
  // validate() throws on any broken invariant; run it and also re-check
  // the exact-cover property directly.
  validate(topo, p);
  std::set<NodeId> seen;
  for (const auto& members : p.groups) {
    EXPECT_GE(members.size(), 2u);
    for (const NodeId m : members) {
      EXPECT_TRUE(seen.insert(m).second) << "node in two groups: " << m;
    }
  }
  EXPECT_EQ(seen.size(), topo.size());
}

TEST(Partition, GridBlocksInvariantsOnGrids) {
  for (const auto& [rows, cols] :
       {std::pair{4u, 4u}, std::pair{8u, 8u}, std::pair{8u, 16u}}) {
    const Topology topo = testbeds::grid(rows, cols, 12.0, 99);
    for (const std::uint32_t g : {1u, 2u, 4u, 8u}) {
      expect_invariants(topo, grid_blocks(topo, g), g);
    }
  }
}

TEST(Partition, GreedyRadiusInvariantsOnGrids) {
  for (const auto& [rows, cols] :
       {std::pair{4u, 4u}, std::pair{8u, 8u}, std::pair{8u, 16u}}) {
    const Topology topo = testbeds::grid(rows, cols, 12.0, 99);
    for (const std::uint32_t g : {1u, 2u, 4u, 8u}) {
      expect_invariants(topo, greedy_radius(topo, g), g);
    }
  }
}

TEST(Partition, InvariantsOnIrregularTestbeds) {
  for (const Topology& topo : {testbeds::flocklab(), testbeds::dcube()}) {
    for (const std::uint32_t g : {2u, 4u}) {
      expect_invariants(topo, grid_blocks(topo, g), g);
      expect_invariants(topo, greedy_radius(topo, g), g);
    }
  }
}

TEST(Partition, SingleGroupIsTheWholeNetwork) {
  const Topology topo = testbeds::grid(4, 4, 12.0, 1);
  const Partition p = grid_blocks(topo, 1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.groups[0].size(), topo.size());
}

TEST(Partition, Deterministic) {
  const Topology topo = testbeds::grid(8, 8, 12.0, 7);
  const Partition a = grid_blocks(topo, 4);
  const Partition b = grid_blocks(topo, 4);
  EXPECT_EQ(a.groups, b.groups);
  const Partition c = greedy_radius(topo, 4);
  const Partition d = greedy_radius(topo, 4);
  EXPECT_EQ(c.groups, d.groups);
}

TEST(Partition, GridBlocksAreSpatiallyCoherent) {
  // On a clean 8x8 grid split into 4 blocks, group-mates should mostly
  // be mutual spatial neighbours: each group's bounding box must not
  // span the whole deployment.
  const Topology topo = testbeds::grid(8, 8, 12.0, 3);
  const Partition p = grid_blocks(topo, 4);
  for (const auto& members : p.groups) {
    double min_x = 1e18;
    double max_x = -1e18;
    double min_y = 1e18;
    double max_y = -1e18;
    for (const NodeId m : members) {
      min_x = std::min(min_x, topo.position(m).x);
      max_x = std::max(max_x, topo.position(m).x);
      min_y = std::min(min_y, topo.position(m).y);
      max_y = std::max(max_y, topo.position(m).y);
    }
    EXPECT_LT((max_x - min_x) * (max_y - min_y),
              0.5 * 7 * 12.0 * 7 * 12.0);
  }
}

TEST(Partition, SubgraphConnectedDetectsSplitSets) {
  // Line of 5: {0,1} connected, {0,2} not (node 1 missing bridges them).
  RadioParams radio;
  radio.shadowing_sigma_db = 0.0;
  std::vector<Position> pos;
  for (int i = 0; i < 5; ++i) pos.push_back(Position{i * 15.0, 0.0});
  const Topology topo(std::move(pos), radio, 1);
  EXPECT_TRUE(subgraph_connected(topo, {0, 1}));
  EXPECT_TRUE(subgraph_connected(topo, {1, 2, 3}));
  EXPECT_FALSE(subgraph_connected(topo, {0, 2}));
  EXPECT_FALSE(subgraph_connected(topo, {0, 1, 3, 4}));
  EXPECT_TRUE(subgraph_connected(topo, {2}));
}

TEST(Partition, ValidateRejectsBrokenPartitions) {
  const Topology topo = testbeds::grid(4, 4, 12.0, 1);
  Partition p = grid_blocks(topo, 4);
  // Claim a node into two groups.
  Partition dup = p;
  dup.groups[0].push_back(dup.groups[1][0]);
  std::sort(dup.groups[0].begin(), dup.groups[0].end());
  EXPECT_THROW(validate(topo, dup), ContractViolation);
  // Drop a node entirely.
  Partition missing = p;
  missing.groups[0].erase(missing.groups[0].begin());
  EXPECT_THROW(validate(topo, missing), ContractViolation);
}

TEST(Partition, TooManyGroupsViolatesContract) {
  const Topology topo = testbeds::grid(2, 2, 12.0, 1);
  EXPECT_THROW(grid_blocks(topo, 3), ContractViolation);
  EXPECT_THROW(greedy_radius(topo, 3), ContractViolation);
}

}  // namespace
}  // namespace mpciot::net::partition
