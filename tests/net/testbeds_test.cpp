#include "net/testbeds.hpp"

#include "common/assert.hpp"

#include <gtest/gtest.h>

namespace mpciot::net::testbeds {
namespace {

TEST(Testbeds, FlocklabMacroProperties) {
  const Topology topo = flocklab();
  EXPECT_EQ(topo.size(), 26u);
  EXPECT_GE(topo.diameter(), 3u);
  EXPECT_LE(topo.diameter(), 6u);
}

TEST(Testbeds, FlocklabAtticNodesAreDirectional) {
  const Topology topo = flocklab();
  for (NodeId a = 24; a < 26; ++a) {
    double best_out = 0.0;
    double best_in = 0.0;
    for (NodeId nb = 0; nb < topo.size(); ++nb) {
      if (nb == a) continue;
      best_out = std::max(best_out, topo.prr(a, nb));
      best_in = std::max(best_in, topo.prr(nb, a));
    }
    EXPECT_GE(best_out, 0.60) << "attic " << a;
    EXPECT_LE(best_in, 0.60) << "attic " << a;
    EXPECT_GE(best_in, 0.20) << "attic " << a;
  }
}

TEST(Testbeds, DcubeMacroProperties) {
  const Topology topo = dcube();
  EXPECT_EQ(topo.size(), 45u);
  EXPECT_GE(topo.diameter(), 3u);
  EXPECT_LE(topo.diameter(), 7u);
}

TEST(Testbeds, DcubeAnnexNodesAreDirectional) {
  const Topology topo = dcube();
  for (NodeId a = 41; a < 45; ++a) {
    double best_out = 0.0;
    double best_in = 0.0;
    for (NodeId nb = 0; nb < topo.size(); ++nb) {
      if (nb == a) continue;
      best_out = std::max(best_out, topo.prr(a, nb));
      best_in = std::max(best_in, topo.prr(nb, a));
    }
    EXPECT_GE(best_out, 0.60) << "annex " << a;
    EXPECT_LE(best_in, 0.60) << "annex " << a;
  }
}

TEST(Testbeds, DeterministicForDefaultSeed) {
  const Topology a = flocklab();
  const Topology b = flocklab();
  ASSERT_EQ(a.size(), b.size());
  for (NodeId i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.position(i).x, b.position(i).x);
    EXPECT_DOUBLE_EQ(a.position(i).y, b.position(i).y);
  }
  EXPECT_EQ(a.diameter(), b.diameter());
}

TEST(Testbeds, GridGeneratorShapes) {
  const Topology topo = grid(3, 4, 14.0, 7);
  EXPECT_EQ(topo.size(), 12u);
  EXPECT_GE(topo.diameter(), 1u);
}

TEST(Testbeds, LineGeneratorIsAChain) {
  const Topology topo = line(6, 15.0, 3);
  EXPECT_EQ(topo.size(), 6u);
  EXPECT_GE(topo.diameter(), 4u);
}

TEST(Testbeds, RandomUniformConnected) {
  const Topology topo = random_uniform(15, 60.0, 60.0, 11);
  EXPECT_EQ(topo.size(), 15u);
  // Construction would have thrown if partitioned.
}

TEST(Testbeds, GeneratorsRejectDegenerateInputs) {
  EXPECT_THROW(grid(1, 1, 10.0, 1), ContractViolation);
  EXPECT_THROW(line(1, 10.0, 1), ContractViolation);
  EXPECT_THROW(random_uniform(1, 10, 10, 1), ContractViolation);
}

}  // namespace
}  // namespace mpciot::net::testbeds
