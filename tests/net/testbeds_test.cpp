#include "net/testbeds.hpp"

#include "common/assert.hpp"

#include <gtest/gtest.h>

namespace mpciot::net::testbeds {
namespace {

TEST(Testbeds, FlocklabMacroProperties) {
  const Topology topo = flocklab();
  EXPECT_EQ(topo.size(), 26u);
  EXPECT_GE(topo.diameter(), 3u);
  EXPECT_LE(topo.diameter(), 6u);
}

TEST(Testbeds, FlocklabAtticNodesAreDirectional) {
  const Topology topo = flocklab();
  for (NodeId a = 24; a < 26; ++a) {
    double best_out = 0.0;
    double best_in = 0.0;
    for (NodeId nb = 0; nb < topo.size(); ++nb) {
      if (nb == a) continue;
      best_out = std::max(best_out, topo.prr(a, nb));
      best_in = std::max(best_in, topo.prr(nb, a));
    }
    EXPECT_GE(best_out, 0.60) << "attic " << a;
    EXPECT_LE(best_in, 0.60) << "attic " << a;
    EXPECT_GE(best_in, 0.20) << "attic " << a;
  }
}

TEST(Testbeds, DcubeMacroProperties) {
  const Topology topo = dcube();
  EXPECT_EQ(topo.size(), 45u);
  EXPECT_GE(topo.diameter(), 3u);
  EXPECT_LE(topo.diameter(), 7u);
}

TEST(Testbeds, DcubeAnnexNodesAreDirectional) {
  const Topology topo = dcube();
  for (NodeId a = 41; a < 45; ++a) {
    double best_out = 0.0;
    double best_in = 0.0;
    for (NodeId nb = 0; nb < topo.size(); ++nb) {
      if (nb == a) continue;
      best_out = std::max(best_out, topo.prr(a, nb));
      best_in = std::max(best_in, topo.prr(nb, a));
    }
    EXPECT_GE(best_out, 0.60) << "annex " << a;
    EXPECT_LE(best_in, 0.60) << "annex " << a;
  }
}

TEST(Testbeds, DeterministicForDefaultSeed) {
  const Topology a = flocklab();
  const Topology b = flocklab();
  ASSERT_EQ(a.size(), b.size());
  for (NodeId i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.position(i).x, b.position(i).x);
    EXPECT_DOUBLE_EQ(a.position(i).y, b.position(i).y);
  }
  EXPECT_EQ(a.diameter(), b.diameter());
}

TEST(Testbeds, GridGeneratorShapes) {
  const Topology topo = grid(3, 4, 14.0, 7);
  EXPECT_EQ(topo.size(), 12u);
  EXPECT_GE(topo.diameter(), 1u);
}

TEST(Testbeds, LineGeneratorIsAChain) {
  const Topology topo = line(6, 15.0, 3);
  EXPECT_EQ(topo.size(), 6u);
  EXPECT_GE(topo.diameter(), 4u);
}

TEST(Testbeds, RandomUniformConnected) {
  const Topology topo = random_uniform(15, 60.0, 60.0, 11);
  EXPECT_EQ(topo.size(), 15u);
  // Construction would have thrown if partitioned.
}

TEST(Testbeds, GeneratorsRejectDegenerateInputs) {
  EXPECT_THROW(grid(1, 1, 10.0, 1), ContractViolation);
  EXPECT_THROW(line(1, 10.0, 1), ContractViolation);
  EXPECT_THROW(random_uniform(1, 10, 10, 1), ContractViolation);
}

std::vector<Position> two_nodes() {
  return {Position{0.0, 0.0}, Position{10.0, 0.0}};
}

TEST(Testbeds, RetryTopologySkipsFailingAttempts) {
  // Attempts below 3 throw the connectivity contract (simulated by a
  // partitioned two-node placement); retry_topology must keep going and
  // hand back the first buildable candidate.
  std::uint64_t built_at = 0xFFFF;
  const Topology topo = retry_topology(
      "test: never", 10,
      [&](std::uint64_t attempt) {
        if (attempt < 3) {
          return Topology({Position{0.0, 0.0}, Position{500.0, 0.0}},
                          RadioParams{}, 1);  // out of range: partitioned
        }
        built_at = attempt;
        return Topology(two_nodes(), RadioParams{}, 1);
      });
  EXPECT_EQ(built_at, 3u);
  EXPECT_EQ(topo.size(), 2u);
}

TEST(Testbeds, RetryTopologyHonorsAcceptPredicate) {
  std::uint64_t accepted_attempt = 0xFFFF;
  const Topology topo = retry_topology(
      "test: never", 10,
      [&](std::uint64_t attempt) {
        accepted_attempt = attempt;
        return Topology(two_nodes(), RadioParams{}, 1);
      },
      [&](const Topology&) { return accepted_attempt >= 5; });
  EXPECT_EQ(accepted_attempt, 5u);
  EXPECT_EQ(topo.size(), 2u);
}

TEST(Testbeds, RetryTopologyThrowsWhenAttemptsExhausted) {
  EXPECT_THROW(retry_topology(
                   "test: exhausted", 4,
                   [&](std::uint64_t) {
                     return Topology(two_nodes(), RadioParams{}, 1);
                   },
                   [](const Topology&) { return false; }),
               ContractViolation);
}

TEST(Testbeds, FlocklabIsStableAcrossRefactors) {
  // Golden placement pin: the retry helper must reproduce the exact
  // pre-refactor attempt sequence (same placer seeds, same shadow
  // seeds, same acceptance order). Values frozen from the seed engine;
  // any change to the retry/seed derivation shifts them.
  const Topology topo = flocklab();
  ASSERT_EQ(topo.size(), 26u);
  EXPECT_DOUBLE_EQ(topo.position(0).x, 12.548162110730456);
  EXPECT_DOUBLE_EQ(topo.position(0).y, 1.3956577333979805);
  EXPECT_DOUBLE_EQ(topo.position(25).x, 103.75655505201533);
  EXPECT_DOUBLE_EQ(topo.position(25).y, 44.082706399380676);
  EXPECT_EQ(topo.diameter(), 6u);
  EXPECT_EQ(topo.center_node(), 2u);
}

}  // namespace
}  // namespace mpciot::net::testbeds
