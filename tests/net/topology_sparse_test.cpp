// Sparse-vs-dense bit-identity: the same placement, radio and shadow
// seed built on both storage tiers must answer every accessor question
// identically — link PRR, hop counts, neighbor lists, audibility and
// center/diameter. The sparse tier over *sequential* draws consumes the
// exact RNG stream of the dense builder, so the comparison is exact
// (==, not near), which is what lets kAuto pick a tier by size without
// perturbing any deterministic scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <vector>

#include "common/assert.hpp"
#include "ct/glossy.hpp"
#include "ct/transport.hpp"
#include "net/testbeds.hpp"
#include "net/topology.hpp"

namespace mpciot::net {
namespace {

TopologyOptions sparse_sequential() {
  TopologyOptions options;
  options.storage = TopologyStorage::kSparse;
  options.draw = LinkDraw::kSequential;
  return options;
}

/// Audible-transmitter set of receiver r, decoded from either tier.
std::vector<NodeId> audible_set(const Topology& topo, NodeId r) {
  std::vector<NodeId> out;
  if (topo.sparse()) {
    for (const AudWord& aw : topo.audible_entries(r)) {
      std::uint64_t bits = aw.bits;
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        out.push_back(static_cast<NodeId>(aw.word * 64 + b));
      }
    }
  } else {
    const std::uint64_t* words = topo.audible_words(r);
    for (NodeId t = 0; t < topo.size(); ++t) {
      if ((words[t / 64] >> (t % 64)) & 1) out.push_back(t);
    }
  }
  return out;
}

void expect_identical_answers(const Topology& dense, const Topology& sparse) {
  ASSERT_EQ(dense.size(), sparse.size());
  ASSERT_FALSE(dense.sparse());
  ASSERT_TRUE(sparse.sparse());
  const std::size_t n = dense.size();
  for (NodeId a = 0; a < n; ++a) {
    // Neighbor lists (CSR on both tiers) must match exactly.
    const auto dn = dense.neighbors(a);
    const auto sn = sparse.neighbors(a);
    ASSERT_EQ(dn.size(), sn.size()) << "node " << a;
    EXPECT_TRUE(std::equal(dn.begin(), dn.end(), sn.begin()));
    EXPECT_EQ(audible_set(dense, a), audible_set(sparse, a)) << "node " << a;
    for (NodeId b = 0; b < n; ++b) {
      // Bit-exact PRR (same RNG draws), identical BFS hop counts.
      ASSERT_EQ(dense.prr(a, b), sparse.prr(a, b))
          << "prr(" << a << "," << b << ")";
      ASSERT_EQ(dense.hops(a, b), sparse.hops(a, b))
          << "hops(" << a << "," << b << ")";
      if (dense.prr(a, b) > 0.0) {
        EXPECT_EQ(dense.rssi(a, b), sparse.rssi(a, b))
            << "rssi(" << a << "," << b << ")";
      }
    }
  }
  EXPECT_EQ(dense.center_node(), sparse.center_node());
  EXPECT_EQ(dense.diameter(), sparse.diameter());
}

TEST(TopologySparse, AnswersMatchDenseOnShadowedGrid) {
  const RadioParams radio;  // default shadowing: varied link qualities
  const Topology dense =
      testbeds::grid(12, 12, 12.0, /*seed=*/7, radio);
  const Topology sparse =
      testbeds::grid(12, 12, 12.0, /*seed=*/7, radio, sparse_sequential());
  expect_identical_answers(dense, sparse);
}

TEST(TopologySparse, KeyedDrawAgreesAcrossTiers) {
  // The keyed (per-pair seeded, culled) draw is a different RNG stream
  // than the sequential one, but dense and sparse storage over the
  // *same* keyed stream must still agree exactly.
  TopologyOptions dense_keyed;
  dense_keyed.storage = TopologyStorage::kDense;
  dense_keyed.draw = LinkDraw::kKeyed;
  TopologyOptions sparse_keyed;
  sparse_keyed.storage = TopologyStorage::kSparse;
  sparse_keyed.draw = LinkDraw::kKeyed;
  const RadioParams radio;
  const Topology dense =
      testbeds::grid(10, 10, 12.0, /*seed=*/21, radio, dense_keyed);
  const Topology sparse =
      testbeds::grid(10, 10, 12.0, /*seed=*/21, radio, sparse_keyed);
  expect_identical_answers(dense, sparse);
}

TEST(TopologySparse, InducedSubtopologyMatchesDenseInduced) {
  const RadioParams radio;
  const Topology dense = testbeds::grid(12, 12, 12.0, 7, radio);
  const Topology sparse =
      testbeds::grid(12, 12, 12.0, 7, radio, sparse_sequential());
  // A contiguous block plus a scattered set, extracted from both tiers.
  std::vector<NodeId> block;
  for (NodeId i = 0; i < 36; ++i) block.push_back(i);
  std::vector<NodeId> scattered;
  for (NodeId i = 0; i < dense.size(); i += 3) scattered.push_back(i);
  for (const std::vector<NodeId>& members : {block, scattered}) {
    const Topology a = Topology::induced(dense, members);
    const Topology b = Topology::induced(sparse, members);
    ASSERT_EQ(a.size(), b.size());
    for (NodeId x = 0; x < a.size(); ++x) {
      for (NodeId y = 0; y < a.size(); ++y) {
        ASSERT_EQ(a.prr(x, y), b.prr(x, y));
        ASSERT_EQ(a.hops(x, y), b.hops(x, y));
      }
    }
    EXPECT_EQ(a.center_node(), b.center_node());
    EXPECT_EQ(a.diameter(), b.diameter());
  }
}

TEST(TopologySparse, FloodResultsAreBitIdenticalAcrossTiers) {
  // The CT arbitration loop takes a different code path on the sparse
  // tier (word-list iteration instead of dense row scans) but must
  // consume the same RNG draws in the same order: identical first-rx
  // slots, durations and radio-on times.
  const RadioParams radio;
  const Topology dense = testbeds::grid(12, 12, 12.0, 7, radio);
  const Topology sparse =
      testbeds::grid(12, 12, 12.0, 7, radio, sparse_sequential());
  for (const NodeId initiator : {NodeId{0}, NodeId{77}}) {
    ct::GlossyConfig cfg;
    cfg.initiator = initiator;
    cfg.ntx = 3;
    crypto::Xoshiro256 rng_a(99);
    crypto::Xoshiro256 rng_b(99);
    const ct::GlossyResult a =
        ct::minicast_transport().flood(dense, cfg, rng_a);
    const ct::GlossyResult b =
        ct::minicast_transport().flood(sparse, cfg, rng_b);
    EXPECT_EQ(a.duration_us, b.duration_us);
    EXPECT_EQ(a.slots_used, b.slots_used);
    EXPECT_EQ(a.first_rx_slot, b.first_rx_slot);
    EXPECT_EQ(a.radio_on_us, b.radio_on_us);
  }
}

TEST(TopologySparse, DenseOnlyAccessorsRejectSparseTier) {
  const Topology sparse =
      testbeds::grid(8, 8, 12.0, 7, RadioParams{}, sparse_sequential());
  // rssi of an unstored pair degrades to the no-link sentinel instead
  // of a dense table read.
  double floor_rssi = 0.0;
  bool found_unstored = false;
  for (NodeId b = 1; b < sparse.size() && !found_unstored; ++b) {
    if (sparse.prr(0, b) == 0.0 && sparse.prr(b, 0) == 0.0) {
      floor_rssi = sparse.rssi(0, b);
      found_unstored = true;
    }
  }
  if (found_unstored) EXPECT_EQ(floor_rssi, -200.0);
}

TEST(TopologySparse, AutoTierSelectsBySize) {
  // kAuto keeps every existing (<= 2048 node) scenario on the dense
  // tier; the explicit override is what the tests above exercise.
  const Topology small = testbeds::grid(8, 8, 12.0, 7);
  EXPECT_FALSE(small.sparse());
  EXPECT_GT(Topology::kDenseMaxNodes, 1024u);
}

}  // namespace
}  // namespace mpciot::net
