// Shared unicast routing helpers (next_hop + stop-and-wait walk), the
// substrate of both the unicast baseline and the unicast transport.
#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace mpciot::net::routing {
namespace {

Topology make_line(std::size_t n = 5, double spacing = 14.0) {
  RadioParams radio;
  radio.shadowing_sigma_db = 0.0;
  std::vector<Position> pos;
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back(Position{static_cast<double>(i) * spacing, 0.0});
  }
  return Topology(std::move(pos), radio, 1);
}

TEST(Routing, NextHopWalksTowardsDestination) {
  const Topology topo = make_line();
  EXPECT_EQ(next_hop(topo, 2, 2), 2u);
  NodeId at = 0;
  std::uint32_t steps = 0;
  while (at != 4 && steps < 10) {
    const NodeId hop = next_hop(topo, at, 4);
    ASSERT_NE(hop, kInvalidNode);
    EXPECT_EQ(topo.hops(hop, 4) + 1, topo.hops(at, 4));
    at = hop;
    ++steps;
  }
  EXPECT_EQ(at, 4u);
  EXPECT_EQ(steps, topo.hops(0, 4));
}

TEST(Routing, HopTimingMatchesMacBudget) {
  RadioParams radio;
  MacParams mac;
  const HopTiming t = hop_timing(radio, 32, mac);
  const SimTime data = radio.airtime_us(32);
  const SimTime ack = radio.airtime_us(mac.ack_payload_bytes);
  EXPECT_EQ(t.exchange_us,
            data + radio.turnaround_us + ack + radio.turnaround_us);
  EXPECT_EQ(t.hop_us, mac.wakeup_interval_us / 2 + t.exchange_us);
}

TEST(Routing, WalkRouteChargesSenderAndReceiverPerAttempt) {
  const Topology topo = make_line();
  const MacParams mac;
  const HopTiming timing = hop_timing(topo.radio(), 16, mac);
  std::vector<SimTime> radio_on(topo.size(), 0);
  std::vector<std::uint32_t> tx_count(topo.size(), 0);
  SimTime elapsed = 0;
  crypto::Xoshiro256 rng(3);
  ASSERT_TRUE(walk_route(topo, 0, 4, timing, mac.max_retries_per_hop, rng,
                         radio_on, elapsed, &tx_count));
  const std::uint32_t attempts =
      std::accumulate(tx_count.begin(), tx_count.end(), 0u);
  EXPECT_GE(attempts, topo.hops(0, 4));
  EXPECT_EQ(elapsed, static_cast<SimTime>(attempts) * timing.hop_us);
  const SimTime total_radio =
      std::accumulate(radio_on.begin(), radio_on.end(), SimTime{0});
  EXPECT_EQ(total_radio, static_cast<SimTime>(attempts) *
                             (timing.hop_us + timing.exchange_us));
}

TEST(Routing, WalkRouteToUnreachableCostsNothing) {
  // Two far-apart pairs joined by a sub-0.5-PRR link do not appear in
  // the good-link hop table, so the walk gives up before spending any
  // time or randomness.
  RadioParams radio;
  radio.shadowing_sigma_db = 0.0;
  std::vector<Position> pos{{0.0, 0.0}, {14.0, 0.0}, {39.0, 0.0},
                            {53.0, 0.0}};
  const Topology topo(std::move(pos), radio, 1);
  ASSERT_EQ(topo.hops(0, 3), Topology::kInvalidHops);

  const MacParams mac;
  const HopTiming timing = hop_timing(topo.radio(), 16, mac);
  std::vector<SimTime> radio_on(topo.size(), 0);
  SimTime elapsed = 0;
  crypto::Xoshiro256 rng(5);
  const std::uint64_t before = rng.next_u64();
  crypto::Xoshiro256 rng2(5);
  EXPECT_FALSE(walk_route(topo, 0, 3, timing, mac.max_retries_per_hop, rng2,
                          radio_on, elapsed));
  EXPECT_EQ(elapsed, 0);
  EXPECT_EQ(rng2.next_u64(), before);  // no draws consumed
  for (SimTime t : radio_on) EXPECT_EQ(t, 0);
}

// Regression: a neighbour with a good *outbound* link from `from` can
// still be good-link-partitioned from the destination (directional PRR:
// its own transmissions are too weak), in which case hops() reports
// kInvalidHops. The candidate loop must skip it explicitly — the old
// `hops + 1 != d` arithmetic relied on UINT32_MAX wrapping to 0.
TEST(Routing, NextHopSkipsGoodLinkPartitionedNeighbor) {
  RadioParams radio;
  radio.shadowing_sigma_db = 0.0;
  // 0 -> 2 -> 3 is the good-link route; node 1 sits 18 m off to the
  // side. Nodes 0/2/3 carry a 5 dB receiver penalty, so 0 hears... is
  // heard by 1 fine (prr(0->1) ~ 0.89, a good link) while 1's own
  // transmissions land below 0.5 PRR everywhere — node 1 cannot
  // good-link-reach anything: hops(1, 3) == kInvalidHops.
  std::vector<Position> pos{
      {0.0, 0.0}, {0.0, 18.0}, {14.0, 0.0}, {28.0, 0.0}};
  const Topology topo(std::move(pos), radio, 1,
                      /*rx_noise_penalty_db=*/{5.0, 0.0, 5.0, 5.0});
  ASSERT_GE(topo.prr(0, 1), 0.5);  // 1 is a good-outbound neighbour of 0
  ASSERT_EQ(topo.hops(1, 3), Topology::kInvalidHops);
  ASSERT_EQ(topo.hops(0, 3), 2u);

  // Node 1 precedes node 2 in the candidate order; the invalid-hops
  // guard must reject it and the route must go through 2.
  EXPECT_EQ(next_hop(topo, 0, 3), 2u);
}

}  // namespace
}  // namespace mpciot::net::routing
