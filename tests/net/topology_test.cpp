#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace mpciot::net {
namespace {

std::vector<Position> line_positions(std::size_t n, double spacing) {
  std::vector<Position> pos;
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back(Position{static_cast<double>(i) * spacing, 0.0});
  }
  return pos;
}

RadioParams quiet_radio() {
  RadioParams radio;
  radio.shadowing_sigma_db = 0.0;  // deterministic links for these tests
  return radio;
}

TEST(Topology, RequiresTwoNodes) {
  EXPECT_THROW(Topology({Position{0, 0}}, quiet_radio(), 1),
               ContractViolation);
}

TEST(Topology, PartitionedNetworkViolatesContract) {
  // Two nodes 10 km apart have no link.
  EXPECT_THROW(Topology({Position{0, 0}, Position{10000, 0}}, quiet_radio(), 1),
               ContractViolation);
}

TEST(Topology, LineTopologyHopsAndDiameter) {
  // 5 nodes spaced 15 m: adjacent links strong, 2-hop links dead.
  const Topology topo(line_positions(5, 15.0), quiet_radio(), 1);
  EXPECT_EQ(topo.size(), 5u);
  EXPECT_EQ(topo.hops(0, 0), 0u);
  EXPECT_EQ(topo.hops(0, 1), 1u);
  EXPECT_EQ(topo.hops(0, 4), 4u);
  EXPECT_EQ(topo.diameter(), 4u);
}

TEST(Topology, CenterNodeMinimizesEccentricity) {
  const Topology topo(line_positions(5, 15.0), quiet_radio(), 1);
  EXPECT_EQ(topo.center_node(), 2u);
}

TEST(Topology, DistanceIsEuclidean) {
  const Topology topo({Position{0, 0}, Position{3, 4}}, quiet_radio(), 1);
  EXPECT_DOUBLE_EQ(topo.distance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(topo.distance(1, 0), 5.0);
}

TEST(Topology, RssiSymmetricWithoutPenalties) {
  const Topology topo(line_positions(4, 14.0), RadioParams{}, 99);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(topo.rssi(a, b), topo.rssi(b, a));
      EXPECT_DOUBLE_EQ(topo.prr(a, b), topo.prr(b, a));
    }
  }
}

TEST(Topology, RxPenaltyMakesPrrDirectional) {
  const Topology topo(line_positions(3, 16.0), quiet_radio(), 1,
                      {0.0, 0.0, 6.0});
  // Node 2's receiver is degraded: inbound prr strictly below outbound.
  EXPECT_LT(topo.prr(1, 2), topo.prr(2, 1));
  // RSSI stays symmetric (it is the physical channel).
  EXPECT_DOUBLE_EQ(topo.rssi(1, 2), topo.rssi(2, 1));
}

TEST(Topology, PenaltyVectorSizeMismatchViolatesContract) {
  EXPECT_THROW(
      Topology(line_positions(3, 10.0), quiet_radio(), 1, {1.0, 2.0}),
      ContractViolation);
}

TEST(Topology, NeighborsListMatchesPrrFloor) {
  const Topology topo(line_positions(5, 15.0), quiet_radio(), 1);
  for (NodeId a = 0; a < 5; ++a) {
    for (NodeId nb : topo.neighbors(a)) {
      EXPECT_TRUE(topo.has_link(a, nb));
      EXPECT_GE(topo.prr(a, nb), topo.radio().link_floor_prr);
    }
  }
  // Adjacent nodes are neighbors.
  const auto& n0 = topo.neighbors(0);
  EXPECT_NE(std::find(n0.begin(), n0.end(), 1u), n0.end());
}

TEST(Topology, PrrOfSelfIsZero) {
  const Topology topo(line_positions(3, 12.0), quiet_radio(), 1);
  for (NodeId a = 0; a < 3; ++a) {
    EXPECT_EQ(topo.prr(a, a), 0.0);
    EXPECT_FALSE(topo.has_link(a, a));
  }
}

TEST(Topology, SameSeedReproducesLinkTable) {
  const Topology a(line_positions(6, 13.0), RadioParams{}, 42);
  const Topology b(line_positions(6, 13.0), RadioParams{}, 42);
  for (NodeId x = 0; x < 6; ++x) {
    for (NodeId y = 0; y < 6; ++y) {
      if (x == y) continue;
      EXPECT_DOUBLE_EQ(a.prr(x, y), b.prr(x, y));
    }
  }
}

TEST(Topology, DifferentShadowSeedChangesLinks) {
  const Topology a(line_positions(6, 13.0), RadioParams{}, 42);
  const Topology b(line_positions(6, 13.0), RadioParams{}, 43);
  bool any_diff = false;
  for (NodeId x = 0; x < 6 && !any_diff; ++x) {
    for (NodeId y = 0; y < 6; ++y) {
      if (x != y && a.prr(x, y) != b.prr(x, y)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Topology, InducedPreservesParentLinks) {
  const Topology parent(line_positions(8, 15.0), quiet_radio(), 42);
  const std::vector<NodeId> members{2, 3, 4, 5};
  const Topology sub = Topology::induced(parent, members);
  ASSERT_EQ(sub.size(), 4u);
  for (NodeId a = 0; a < 4; ++a) {
    EXPECT_DOUBLE_EQ(sub.position(a).x, parent.position(members[a]).x);
    for (NodeId b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(sub.rssi(a, b), parent.rssi(members[a], members[b]));
      EXPECT_DOUBLE_EQ(sub.prr(a, b), parent.prr(members[a], members[b]));
    }
  }
}

TEST(Topology, InducedRebuildsDerivedTables) {
  const Topology parent(line_positions(8, 15.0), quiet_radio(), 42);
  const Topology sub = Topology::induced(parent, {1, 2, 3, 4, 5});
  // A 5-node line: hops and diameter are those of the *subgraph*, not
  // inherited from the parent.
  EXPECT_EQ(sub.hops(0, 4), 4u);
  EXPECT_EQ(sub.diameter(), 4u);
  EXPECT_EQ(sub.center_node(), 2u);
  EXPECT_EQ(sub.neighbors(0).size(), 1u);
  EXPECT_EQ(sub.neighbors(2).size(), 2u);
}

TEST(Topology, InducedRequiresConnectedSubgraph) {
  const Topology parent(line_positions(8, 15.0), quiet_radio(), 42);
  // {0, 5} has no usable link once the bridge nodes are excluded.
  EXPECT_THROW(Topology::induced(parent, {0, 5}), ContractViolation);
}

TEST(Topology, InducedValidatesMemberList) {
  const Topology parent(line_positions(8, 15.0), quiet_radio(), 42);
  EXPECT_THROW(Topology::induced(parent, {3}), ContractViolation);
  EXPECT_THROW(Topology::induced(parent, {3, 2}), ContractViolation);
  EXPECT_THROW(Topology::induced(parent, {3, 3}), ContractViolation);
  EXPECT_THROW(Topology::induced(parent, {3, 99}), ContractViolation);
}

}  // namespace
}  // namespace mpciot::net
