#include "net/reception.hpp"

#include <gtest/gtest.h>

namespace mpciot::net {
namespace {

RadioParams quiet_radio() {
  RadioParams radio;
  radio.shadowing_sigma_db = 0.0;
  return radio;
}

// Line of 3 nodes, 14 m apart: adjacent links near-perfect, 28 m link weak.
Topology make_line3() {
  return Topology({Position{0, 0}, Position{14, 0}, Position{28, 0}},
                  quiet_radio(), 1);
}

double empirical_rate(const Topology& topo, NodeId receiver,
                      const std::vector<Transmission>& txs, int trials) {
  const ReceptionModel model(topo);
  crypto::Xoshiro256 rng(99);
  int ok = 0;
  for (int i = 0; i < trials; ++i) {
    if (model.arbitrate(receiver, txs, rng).received) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

TEST(Reception, NoTransmittersNothingReceived) {
  const Topology topo = make_line3();
  const ReceptionModel model(topo);
  crypto::Xoshiro256 rng(1);
  EXPECT_FALSE(model.arbitrate(0, {}, rng).received);
}

TEST(Reception, SingleStrongLinkAlmostAlwaysDecodes) {
  const Topology topo = make_line3();
  const double rate = empirical_rate(topo, 1, {Transmission{0, 7}}, 2000);
  EXPECT_GT(rate, 0.95);
}

TEST(Reception, OutOfRangeTransmitterNeverDecodes) {
  // 0 -> 2 is 28 m with exponent 3.5: below the link floor.
  const Topology topo = make_line3();
  const double rate = empirical_rate(topo, 2, {Transmission{0, 7}}, 500);
  EXPECT_LT(rate, 0.2);
}

TEST(Reception, DecodedPacketCarriesSenderAndContent) {
  const Topology topo = make_line3();
  const ReceptionModel model(topo);
  crypto::Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto out = model.arbitrate(1, {Transmission{0, 42}}, rng);
    if (out.received) {
      EXPECT_EQ(out.from, 0u);
      EXPECT_EQ(out.content_id, 42u);
      return;
    }
  }
  FAIL() << "strong link never delivered in 50 tries";
}

TEST(Reception, ConstructiveInterferenceBeatsSingleWeakLink) {
  // Receiver 1 hears both 0 and 2 (14 m each) sending identical content;
  // union success must be >= the best single link.
  const Topology topo = make_line3();
  const double single = empirical_rate(topo, 1, {Transmission{0, 7}}, 3000);
  const double ct = empirical_rate(
      topo, 1, {Transmission{0, 7}, Transmission{2, 7}}, 3000);
  EXPECT_GE(ct + 0.02, single);
}

TEST(Reception, DifferingContentRequiresCapture) {
  // Two equidistant transmitters with different payloads: SIR is ~0 dB,
  // below the capture threshold, so the slot is lost.
  const Topology topo = make_line3();
  const double rate = empirical_rate(
      topo, 1, {Transmission{0, 1}, Transmission{2, 2}}, 500);
  EXPECT_EQ(rate, 0.0);
}

TEST(Reception, CaptureSucceedsWithDominantSignal) {
  // Receiver 1 at 14 m from node 0 and 21 m from node 2: node 0 is
  // ~6 dB stronger, above the capture threshold.
  const Topology topo({Position{0, 0}, Position{14, 0}, Position{35, 0}},
                      quiet_radio(), 1);
  const ReceptionModel model(topo);
  crypto::Xoshiro256 rng(13);
  int got_dominant = 0;
  int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const auto out =
        model.arbitrate(1, {Transmission{0, 10}, Transmission{2, 20}}, rng);
    if (out.received) {
      EXPECT_EQ(out.from, 0u);
      EXPECT_EQ(out.content_id, 10u);
      ++got_dominant;
    }
  }
  EXPECT_GT(got_dominant, trials / 2);
}

TEST(Reception, CtLossCorrelationDegradesUnion) {
  // With correlation > 1, two identical-content transmitters help less
  // than independent union; compare against a correlation-1 topology.
  RadioParams indep = quiet_radio();
  indep.ct_loss_correlation = 1.0;
  RadioParams corr = quiet_radio();
  corr.ct_loss_correlation = 3.0;
  // Distance tuned so each single link is mediocre (~50%).
  const std::vector<Position> pos{{0, 0}, {22, 0}, {44, 0}};
  const Topology t_indep(pos, indep, 1);
  const Topology t_corr(pos, corr, 1);
  const std::vector<Transmission> txs{Transmission{0, 7}, Transmission{2, 7}};
  const double rate_indep = empirical_rate(t_indep, 1, txs, 4000);
  const double rate_corr = empirical_rate(t_corr, 1, txs, 4000);
  EXPECT_GT(rate_indep, rate_corr + 0.03);
}

}  // namespace
}  // namespace mpciot::net
