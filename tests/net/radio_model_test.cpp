#include "net/radio_model.hpp"

#include <gtest/gtest.h>

namespace mpciot::net {
namespace {

TEST(RadioParams, AirtimeMatches802154Timing) {
  RadioParams radio;
  // 6B PHY + 9B MAC + 16B payload = 31 bytes at 32 us/byte.
  EXPECT_EQ(radio.airtime_us(16), 31 * 32);
  EXPECT_EQ(radio.subslot_us(16), 31 * 32 + radio.turnaround_us);
}

TEST(RadioParams, AirtimeGrowsLinearlyWithPayload) {
  RadioParams radio;
  const SimTime a = radio.airtime_us(10);
  const SimTime b = radio.airtime_us(20);
  EXPECT_EQ(b - a, 10 * radio.us_per_byte);
}

TEST(RadioParams, RxPowerDecreasesWithDistance) {
  RadioParams radio;
  const double p1 = radio.rx_power_dbm(5.0, 0.0);
  const double p2 = radio.rx_power_dbm(10.0, 0.0);
  const double p3 = radio.rx_power_dbm(40.0, 0.0);
  EXPECT_GT(p1, p2);
  EXPECT_GT(p2, p3);
}

TEST(RadioParams, PathLossSlopeMatchesExponent) {
  RadioParams radio;
  // Doubling distance costs 10 * n * log10(2) dB.
  const double drop =
      radio.rx_power_dbm(10.0, 0.0) - radio.rx_power_dbm(20.0, 0.0);
  EXPECT_NEAR(drop, 10.0 * radio.path_loss_exponent * 0.30103, 1e-6);
}

TEST(RadioParams, ShadowingShiftsPower) {
  RadioParams radio;
  EXPECT_NEAR(radio.rx_power_dbm(10.0, 3.0) - radio.rx_power_dbm(10.0, 0.0),
              3.0, 1e-9);
}

TEST(RadioParams, MinimumDistanceClamped) {
  RadioParams radio;
  // Zero distance must not produce +infinity.
  EXPECT_EQ(radio.rx_power_dbm(0.0, 0.0), radio.rx_power_dbm(0.1, 0.0));
}

TEST(RadioParams, PrrCurveIsMonotoneInRssi) {
  RadioParams radio;
  double prev = 0.0;
  for (double rssi = -110.0; rssi <= -60.0; rssi += 1.0) {
    const double p = radio.prr_from_rssi(rssi);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(RadioParams, PrrMidpointIsHalf) {
  RadioParams radio;
  EXPECT_NEAR(radio.prr_from_rssi(radio.prr_mid_dbm), 0.5, 1e-9);
}

TEST(RadioParams, PrrSaturatesAtExtremes) {
  RadioParams radio;
  EXPECT_GT(radio.prr_from_rssi(-60.0), 0.999);
  EXPECT_LT(radio.prr_from_rssi(-110.0), 0.001);
}

}  // namespace
}  // namespace mpciot::net
