#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"

namespace mpciot::metrics {
namespace {

TEST(Summary, EmptyDefaults) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Summary, EmptyQuantileViolatesContract) {
  const Summary s;
  EXPECT_THROW(s.quantile(0.5), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(7.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 7.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.median(), 7.0);
  EXPECT_EQ(s.min(), 7.0);
  EXPECT_EQ(s.max(), 7.0);
}

TEST(Summary, KnownStatistics) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample stddev of this classic dataset is sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Summary, QuantilesInterpolate) {
  Summary s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 20.0);
}

TEST(Summary, QuantileOutOfRangeViolatesContract) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), ContractViolation);
  EXPECT_THROW(s.quantile(1.1), ContractViolation);
}

TEST(Summary, QuantileUnaffectedByInsertionOrder) {
  Summary a;
  Summary b;
  for (double v : {5.0, 1.0, 3.0}) a.add(v);
  for (double v : {1.0, 3.0, 5.0}) b.add(v);
  EXPECT_EQ(a.median(), b.median());
}

TEST(Summary, AddAfterQuantileStillCorrect) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_EQ(s.median(), 2.0);
  s.add(100.0);
  EXPECT_EQ(s.median(), 3.0);
}

TEST(Summary, QuantileDoesNotPerturbMean) {
  // quantile() used to sort the sample vector in place, changing the
  // summation order — and thus the low bits — of a later mean()/
  // stddev(). The parallel experiment engine's bit-for-bit determinism
  // guarantee depends on mean() being a pure function of insertion
  // order.
  Summary a;
  Summary b;
  for (const double x : {727.472, 891.528, 620.472, 837.528, 674.472}) {
    a.add(x);
    b.add(x);
  }
  const double mean_before = a.mean();
  const double stddev_before = a.stddev();
  (void)a.quantile(0.25);
  (void)a.median();
  EXPECT_EQ(a.mean(), mean_before);
  EXPECT_EQ(a.stddev(), stddev_before);
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.quantile(0.75), b.quantile(0.75));
}

TEST(Summary, Ci95ShrinksWithSamples) {
  Summary small;
  Summary large;
  for (int i = 0; i < 4; ++i) small.add(i % 2 ? 1.0 : 2.0);
  for (int i = 0; i < 400; ++i) large.add(i % 2 ? 1.0 : 2.0);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Summary, Ci95UsesStudentTWhileTheTableCovers) {
  // Alternating 1/2 samples: stddev is an exact closed form, so the
  // halfwidth pins the critical value in use.
  const auto halfwidth = [](int n) {
    Summary s;
    for (int i = 0; i < n; ++i) s.add(i % 2 ? 1.0 : 2.0);
    return s.ci95_halfwidth();
  };
  const auto expected = [](int n, double critical) {
    Summary s;
    for (int i = 0; i < n; ++i) s.add(i % 2 ? 1.0 : 2.0);
    return critical * s.stddev() / std::sqrt(static_cast<double>(n));
  };
  // n = 2 (df 1), n = 20 (df 19, the default rep count), n = 30 (df 29,
  // the last table entry).
  EXPECT_DOUBLE_EQ(halfwidth(2), expected(2, 12.706));
  EXPECT_DOUBLE_EQ(halfwidth(20), expected(20, 2.093));
  EXPECT_DOUBLE_EQ(halfwidth(30), expected(30, 2.045));
  // Past the table, the normal approximation is used.
  EXPECT_DOUBLE_EQ(halfwidth(31), expected(31, 1.96));
  EXPECT_DOUBLE_EQ(halfwidth(100), expected(100, 1.96));
  // Student-t at 20 reps is ~6.8% wider than the old z = 1.96 claim.
  EXPECT_GT(halfwidth(20), expected(20, 1.96));
}

}  // namespace
}  // namespace mpciot::metrics
