#include "metrics/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"

namespace mpciot::metrics {
namespace {

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, RowWidthMustMatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), ContractViolation);
  EXPECT_NO_THROW(t.add_row({"1", "2"}));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, PrettyPrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| longer |"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  // Separator row present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(1234.5), "1234.5");
}

TEST(Table, MsFromUsConverts) {
  EXPECT_EQ(Table::ms_from_us(1500.0), "1.5");
  EXPECT_EQ(Table::ms_from_us(1234567.0, 0), "1235");
}

}  // namespace
}  // namespace mpciot::metrics
