#include "metrics/experiment.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "crypto/prng.hpp"
#include "net/testbeds.hpp"

namespace mpciot::metrics {
namespace {

net::Topology make_grid9() {
  net::RadioParams radio;
  radio.shadowing_sigma_db = 0.0;
  std::vector<net::Position> pos;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) pos.push_back({c * 12.0, r * 12.0});
  }
  return net::Topology(std::move(pos), radio, 7);
}

TEST(RandomSecrets, DeterministicAndBounded) {
  const auto a = random_secrets(5, 10, 1000);
  const auto b = random_secrets(5, 10, 1000);
  EXPECT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_LT(a[i].value(), 1000u);
  }
  const auto c = random_secrets(6, 10, 1000);
  EXPECT_NE(a, c);
}

TEST(RunTrials, CollectsAllMetrics) {
  const net::Topology topo = make_grid9();
  const crypto::KeyStore keys(1, topo.size());
  std::vector<NodeId> sources;
  for (NodeId i = 0; i < topo.size(); ++i) sources.push_back(i);
  const core::SssProtocol proto(
      topo, keys, core::make_s3_config(topo, sources, 2, 5));

  ExperimentSpec spec;
  spec.repetitions = 4;
  spec.base_seed = 100;
  const TrialStats stats = run_trials(proto, spec);
  EXPECT_EQ(stats.latency_max_ms.count(), 4u);
  EXPECT_EQ(stats.radio_on_max_ms.count(), 4u);
  EXPECT_EQ(stats.success_ratio.count(), 4u);
  EXPECT_GT(stats.latency_max_ms.mean(), 0.0);
  EXPECT_GT(stats.radio_on_max_ms.mean(), 0.0);
  EXPECT_GT(stats.success_ratio.mean(), 0.99);
  EXPECT_GE(stats.latency_max_ms.mean(), stats.latency_mean_ms.mean());
}

TEST(RunTrials, CustomSecretGeneratorIsUsed) {
  const net::Topology topo = make_grid9();
  const crypto::KeyStore keys(1, topo.size());
  std::vector<NodeId> sources;
  for (NodeId i = 0; i < topo.size(); ++i) sources.push_back(i);
  const core::SssProtocol proto(
      topo, keys, core::make_s3_config(topo, sources, 2, 5));
  ExperimentSpec spec;
  spec.repetitions = 2;
  int calls = 0;
  spec.make_secrets = [&](std::uint32_t, std::size_t count) {
    ++calls;
    return std::vector<field::Fp61>(count, field::Fp61{1});
  };
  run_trials(proto, spec);
  EXPECT_EQ(calls, 2);
}

TEST(ResolveJobs, MapsZeroToHardwareAndCapsAtTrialCount) {
  EXPECT_EQ(resolve_jobs(1, 100), 1u);
  EXPECT_EQ(resolve_jobs(4, 100), 4u);
  EXPECT_EQ(resolve_jobs(16, 3), 3u);  // never more workers than trials
  EXPECT_GE(resolve_jobs(0, 100), 1u);  // hardware concurrency, at least 1
}

// The determinism contract behind `mpciot-bench --jobs`: any worker
// count folds the same per-trial records in the same order, so every
// derived statistic matches the serial run bit for bit.
TEST(RunTrials, ParallelMatchesSerialBitForBit) {
  const net::Topology topo = make_grid9();
  const crypto::KeyStore keys(1, topo.size());
  std::vector<NodeId> sources;
  for (NodeId i = 0; i < topo.size(); ++i) sources.push_back(i);
  const core::SssProtocol proto(
      topo, keys, core::make_s4_config(topo, sources, 2, 5));

  ExperimentSpec spec;
  spec.repetitions = 9;
  spec.base_seed = 42;
  spec.jobs = 1;
  const TrialStats serial = run_trials(proto, spec);

  for (const unsigned jobs : {2u, 4u, 0u}) {
    spec.jobs = jobs;
    const TrialStats parallel = run_trials(proto, spec);
    const auto expect_identical = [](const Summary& a, const Summary& b) {
      ASSERT_EQ(a.count(), b.count());
      EXPECT_EQ(a.mean(), b.mean());
      EXPECT_EQ(a.stddev(), b.stddev());
      EXPECT_EQ(a.min(), b.min());
      EXPECT_EQ(a.max(), b.max());
      EXPECT_EQ(a.quantile(0.25), b.quantile(0.25));
      EXPECT_EQ(a.median(), b.median());
    };
    expect_identical(serial.latency_max_ms, parallel.latency_max_ms);
    expect_identical(serial.latency_mean_ms, parallel.latency_mean_ms);
    expect_identical(serial.radio_on_max_ms, parallel.radio_on_max_ms);
    expect_identical(serial.radio_on_mean_ms, parallel.radio_on_mean_ms);
    expect_identical(serial.success_ratio, parallel.success_ratio);
    expect_identical(serial.share_delivery, parallel.share_delivery);
    expect_identical(serial.total_duration_ms, parallel.total_duration_ms);
  }
}

TEST(RunTrials, ParallelRunsEveryTrialExactlyOnce) {
  const net::Topology topo = make_grid9();
  const crypto::KeyStore keys(1, topo.size());
  std::vector<NodeId> sources;
  for (NodeId i = 0; i < topo.size(); ++i) sources.push_back(i);
  const core::SssProtocol proto(
      topo, keys, core::make_s3_config(topo, sources, 2, 5));

  ExperimentSpec spec;
  spec.repetitions = 12;
  spec.jobs = 4;
  std::vector<std::atomic<int>> calls(spec.repetitions);
  spec.make_secrets = [&](std::uint32_t trial, std::size_t count) {
    calls[trial].fetch_add(1);
    return random_secrets(trial, count);
  };
  const TrialStats stats = run_trials(proto, spec);
  EXPECT_EQ(stats.latency_max_ms.count(), 12u);
  for (const auto& c : calls) EXPECT_EQ(c.load(), 1);
}

// Regression for the trial-seeding collision bug: the old derivations
// (base + trial, base * K + trial, (base + trial) * 7919 + 13) alias
// across sweeps — (seed = S, trial = t+1) and (seed = S+1, trial = t)
// fed the *same* stream into the simulator, silently correlating trials
// of adjacent sweep points. The canonical streams must keep every
// (base_seed, trial) tuple on its own stream.
TEST(TrialSeeds, AdjacentSweepPointsDoNotShareStreams) {
  for (std::uint64_t s = 1; s < 16; ++s) {
    for (std::uint32_t t = 0; t < 16; ++t) {
      EXPECT_NE(trial_sim_seed(s, t + 1), trial_sim_seed(s + 1, t));
      EXPECT_NE(trial_secret_seed(s, t + 1), trial_secret_seed(s + 1, t));
      // Sim and secret streams of the same trial are themselves distinct.
      EXPECT_NE(trial_sim_seed(s, t), trial_secret_seed(s, t));
    }
  }
}

TEST(TrialSeeds, DistinctPairsYieldDistinctFirst64Draws) {
  // The stream-level statement of the regression: the first 64 draws of
  // the simulation RNG must differ between any two distinct
  // (seed, trial) pairs that the old arithmetic aliased.
  const auto first_draws = [](std::uint64_t base, std::uint32_t trial) {
    crypto::Xoshiro256 rng(trial_sim_seed(base, trial));
    std::vector<std::uint64_t> draws(64);
    for (auto& d : draws) d = rng.next_u64();
    return draws;
  };
  for (std::uint64_t s = 1; s < 6; ++s) {
    for (std::uint32_t t = 0; t < 6; ++t) {
      EXPECT_NE(first_draws(s, t + 1), first_draws(s + 1, t))
          << "streams collide for (" << s << "," << t + 1 << ") vs ("
          << s + 1 << "," << t << ")";
    }
  }
}

TEST(TrialSeeds, RunTrialsUsesTheCanonicalStreams) {
  // Two specs whose (base_seed, trial) grids overlap under the old
  // arithmetic must produce entirely different trial records now.
  const net::Topology topo = make_grid9();
  const crypto::KeyStore keys(1, topo.size());
  std::vector<NodeId> sources;
  for (NodeId i = 0; i < topo.size(); ++i) sources.push_back(i);
  const core::SssProtocol proto(
      topo, keys, core::make_s4_config(topo, sources, 2, 5));

  ExperimentSpec a;
  a.repetitions = 4;
  a.base_seed = 100;
  ExperimentSpec b = a;
  b.base_seed = 101;
  const TrialStats sa = run_trials(proto, a);
  const TrialStats sb = run_trials(proto, b);
  // Old scheme: seeds {100..103} vs {101..104} share three of four
  // trials, so the multisets of per-trial latencies overlapped heavily.
  // With derived streams the shared-seed overlap is gone; the summaries
  // agreeing to the last bit would mean the fix regressed.
  EXPECT_NE(sa.latency_max_ms.mean(), sb.latency_max_ms.mean());
}

TEST(RunTrials, SameSpecReproduces) {
  const net::Topology topo = make_grid9();
  const crypto::KeyStore keys(1, topo.size());
  std::vector<NodeId> sources;
  for (NodeId i = 0; i < topo.size(); ++i) sources.push_back(i);
  const core::SssProtocol proto(
      topo, keys, core::make_s4_config(topo, sources, 2, 5));
  ExperimentSpec spec;
  spec.repetitions = 3;
  spec.base_seed = 7;
  const TrialStats a = run_trials(proto, spec);
  const TrialStats b = run_trials(proto, spec);
  EXPECT_EQ(a.latency_max_ms.mean(), b.latency_max_ms.mean());
  EXPECT_EQ(a.radio_on_max_ms.mean(), b.radio_on_max_ms.mean());
}

}  // namespace
}  // namespace mpciot::metrics
