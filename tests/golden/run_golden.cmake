# Golden-JSON regression driver, invoked as a ctest via
#   cmake -DBENCH=<mpciot-bench> -DFILTER=<scenario filter>
#         -DGOLDEN=<checked-in json> -DOUT=<scratch json>
#         -P run_golden.cmake
#
# Runs the scenario at --reps 2 --seed 1 --jobs 1 and byte-compares the
# JSON document against the checked-in golden. Any RNG-draw-order
# change in the engines, any schema or formatting drift in bench_core,
# and any seed-derivation change shows up here as a ctest failure —
# not only in CI's bench-smoke job.
foreach(var BENCH FILTER GOLDEN OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_golden.cmake: -D${var}=... is required")
  endif()
endforeach()

execute_process(
  COMMAND ${BENCH} --filter ${FILTER} --reps 2 --seed 1 --jobs 1
          --no-table --out ${OUT}
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_stdout
  ERROR_VARIABLE run_stderr)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR
    "mpciot-bench failed (${run_rc}) for filter '${FILTER}':\n"
    "${run_stdout}\n${run_stderr}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
    "golden mismatch for '${FILTER}': ${OUT} differs from ${GOLDEN}.\n"
    "If the change is intentional (e.g. a documented seeding or engine "
    "change), regenerate with:\n"
    "  mpciot-bench --filter ${FILTER} --reps 2 --seed 1 --jobs 1 "
    "--no-table --out ${GOLDEN}\n"
    "and record the reason in docs/BENCHMARKS.md.")
endif()
