#include "crypto/paillier.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace mpciot::crypto {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  PaillierTest() : rng_(42), kp_(Paillier::generate(128, rng_)) {}
  Xoshiro256 rng_;
  PaillierKeyPair kp_;
};

TEST_F(PaillierTest, KeyStructure) {
  EXPECT_GE(kp_.pub.n.bit_length(), 120u);
  EXPECT_EQ(kp_.pub.n_squared, kp_.pub.n * kp_.pub.n);
  EXPECT_FALSE(kp_.priv.lambda.is_zero());
  EXPECT_FALSE(kp_.priv.mu.is_zero());
}

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (std::uint64_t m : {0ull, 1ull, 42ull, 65535ull, 123456789ull}) {
    const BigInt ct = Paillier::encrypt(kp_.pub, BigInt{m}, rng_);
    EXPECT_EQ(Paillier::decrypt(kp_.pub, kp_.priv, ct).to_u64(), m);
  }
}

TEST_F(PaillierTest, EncryptionIsProbabilistic) {
  const BigInt c1 = Paillier::encrypt(kp_.pub, BigInt{7}, rng_);
  const BigInt c2 = Paillier::encrypt(kp_.pub, BigInt{7}, rng_);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(Paillier::decrypt(kp_.pub, kp_.priv, c1),
            Paillier::decrypt(kp_.pub, kp_.priv, c2));
}

TEST_F(PaillierTest, HomomorphicAddition) {
  const BigInt c1 = Paillier::encrypt(kp_.pub, BigInt{1000}, rng_);
  const BigInt c2 = Paillier::encrypt(kp_.pub, BigInt{2345}, rng_);
  const BigInt sum = Paillier::add(kp_.pub, c1, c2);
  EXPECT_EQ(Paillier::decrypt(kp_.pub, kp_.priv, sum).to_u64(), 3345u);
}

TEST_F(PaillierTest, HomomorphicAdditionChain) {
  // Aggregate 10 readings like the PPDA use case.
  BigInt acc = Paillier::encrypt(kp_.pub, BigInt{0}, rng_);
  std::uint64_t expected = 0;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    acc = Paillier::add(kp_.pub, acc,
                        Paillier::encrypt(kp_.pub, BigInt{i * 11}, rng_));
    expected += i * 11;
  }
  EXPECT_EQ(Paillier::decrypt(kp_.pub, kp_.priv, acc).to_u64(), expected);
}

TEST_F(PaillierTest, HomomorphicScalarMultiply) {
  const BigInt c = Paillier::encrypt(kp_.pub, BigInt{123}, rng_);
  const BigInt scaled = Paillier::scale(kp_.pub, c, BigInt{5});
  EXPECT_EQ(Paillier::decrypt(kp_.pub, kp_.priv, scaled).to_u64(), 615u);
}

TEST_F(PaillierTest, PlaintextOutOfRangeViolatesContract) {
  EXPECT_THROW(Paillier::encrypt(kp_.pub, kp_.pub.n, rng_),
               ContractViolation);
}

TEST_F(PaillierTest, CiphertextOutOfRangeViolatesContract) {
  EXPECT_THROW(Paillier::decrypt(kp_.pub, kp_.priv, kp_.pub.n_squared),
               ContractViolation);
}

TEST(Paillier, BadModulusBitsViolateContract) {
  Xoshiro256 rng(1);
  EXPECT_THROW(Paillier::generate(32, rng), ContractViolation);
  EXPECT_THROW(Paillier::generate(65, rng), ContractViolation);
}

class PaillierKeySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaillierKeySizes, RoundTripAndAdditivity) {
  Xoshiro256 rng(GetParam());
  const PaillierKeyPair kp = Paillier::generate(GetParam(), rng);
  const BigInt c1 = Paillier::encrypt(kp.pub, BigInt{111}, rng);
  const BigInt c2 = Paillier::encrypt(kp.pub, BigInt{222}, rng);
  EXPECT_EQ(
      Paillier::decrypt(kp.pub, kp.priv, Paillier::add(kp.pub, c1, c2))
          .to_u64(),
      333u);
}

INSTANTIATE_TEST_SUITE_P(Bits, PaillierKeySizes,
                         ::testing::Values<std::size_t>(64, 128, 256));

}  // namespace
}  // namespace mpciot::crypto
