#include "crypto/prng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/assert.hpp"

namespace mpciot::crypto {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowOneAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro, NextBelowZeroViolatesContract) {
  Xoshiro256 rng(9);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, NextDoubleMeanIsRoughlyHalf) {
  Xoshiro256 rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Xoshiro, NextFp61InRange) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_fp61().value(), field::Fp61::kModulus);
  }
}

TEST(Xoshiro, NextBoolExtremes) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Xoshiro, NextBoolFrequencyTracksP) {
  Xoshiro256 rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Xoshiro, UniformBitsChiSquaredSane) {
  // Count set bits over many draws; expect ~50% with tight tolerance.
  Xoshiro256 rng(29);
  std::uint64_t ones = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    ones += static_cast<std::uint64_t>(__builtin_popcountll(rng.next_u64()));
  }
  const double frac = static_cast<double>(ones) / (64.0 * n);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
  EXPECT_EQ(splitmix64(s2), second);
  EXPECT_NE(first, second);
}

TEST(CtrDrbg, DeterministicForSeedAndPersonalization) {
  CtrDrbg a(123, 7);
  CtrDrbg b(123, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(CtrDrbg, PersonalizationSeparatesStreams) {
  CtrDrbg a(123, 1);
  CtrDrbg b(123, 2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(CtrDrbg, FillProducesRequestedBytes) {
  CtrDrbg drbg(5, 0);
  for (std::size_t len : {1u, 15u, 16u, 17u, 100u}) {
    std::vector<std::uint8_t> buf(len, 0);
    drbg.fill(buf.data(), buf.size());
    // Not all zeros (probability ~2^-8len).
    bool nonzero = false;
    for (auto b : buf) {
      if (b) nonzero = true;
    }
    EXPECT_TRUE(nonzero);
  }
}

TEST(CtrDrbg, UnalignedFillsMatchAlignedStream) {
  CtrDrbg a(99, 0);
  CtrDrbg b(99, 0);
  std::vector<std::uint8_t> joint(48);
  a.fill(joint.data(), joint.size());
  std::vector<std::uint8_t> pieces(48);
  b.fill(pieces.data(), 5);
  b.fill(pieces.data() + 5, 11);
  b.fill(pieces.data() + 16, 32);
  EXPECT_EQ(joint, pieces);
}

TEST(CtrDrbg, NextFp61InRange) {
  CtrDrbg drbg(31, 0);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(drbg.next_fp61().value(), field::Fp61::kModulus);
  }
}

TEST(CtrDrbg, NextBelowRespectsBound) {
  CtrDrbg drbg(37, 0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(drbg.next_below(97), 97u);
  }
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
}

TEST(DeriveSeed, EveryComponentSeparatesStreams) {
  const std::uint64_t base = derive_seed(10, 20, 30);
  EXPECT_NE(derive_seed(11, 20, 30), base);
  EXPECT_NE(derive_seed(10, 21, 30), base);
  EXPECT_NE(derive_seed(10, 20, 31), base);
}

TEST(DeriveSeed, ArithmeticAliasesDoNotCollide) {
  // The failure mode of base+index seeding: (S, t+1) and (S+1, t) alias.
  // derive_seed must keep all such tuples apart.
  for (std::uint64_t s = 1; s < 20; ++s) {
    for (std::uint64_t t = 0; t < 20; ++t) {
      EXPECT_NE(derive_seed(s, 0, t + 1), derive_seed(s + 1, 0, t));
      EXPECT_NE(derive_seed(s * 1000, 0, t), derive_seed(s, 0, t * 1000));
      // The `seed * 7919 + 13` flavour of aliasing, too.
      EXPECT_NE(derive_seed(s, 7919, t + 7919), derive_seed(s + 1, 7919, t));
    }
  }
}

TEST(DeriveSeed, NoCollisionsAcrossADenseSweepGrid) {
  // A bench sweep's worth of (seed, trial) tuples must produce unique
  // generator seeds (the birthday bound for 64-bit outputs is ~2^32, so
  // any collision here would indicate a structural flaw).
  std::set<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 64; ++s) {
    for (std::uint64_t t = 0; t < 64; ++t) {
      EXPECT_TRUE(seen.insert(derive_seed(s, 42, t)).second)
          << "collision at seed=" << s << " trial=" << t;
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

}  // namespace
}  // namespace mpciot::crypto
