#include "crypto/aes128.hpp"

#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/prng.hpp"

namespace mpciot::crypto {
namespace {

Aes128::Key key_from_hex(const char* hex) {
  const auto bytes = from_hex(hex);
  Aes128::Key key{};
  std::copy(bytes.begin(), bytes.end(), key.begin());
  return key;
}

Aes128::Block block_from_hex(const char* hex) {
  const auto bytes = from_hex(hex);
  Aes128::Block b{};
  std::copy(bytes.begin(), bytes.end(), b.begin());
  return b;
}

// FIPS-197 Appendix C.1 known-answer test.
TEST(Aes128, Fips197AppendixC1Encrypt) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto ct =
      aes.encrypt_block(block_from_hex("00112233445566778899aabbccddeeff"));
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Fips197AppendixC1Decrypt) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto pt =
      aes.decrypt_block(block_from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
  EXPECT_EQ(to_hex(pt), "00112233445566778899aabbccddeeff");
}

// FIPS-197 Appendix B key/plaintext (the worked example).
TEST(Aes128, Fips197AppendixBExample) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto ct =
      aes.encrypt_block(block_from_hex("3243f6a8885a308d313198a2e0370734"));
  EXPECT_EQ(to_hex(ct), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, SboxDerivationMatchesKnownEntries) {
  // Spot values from the FIPS-197 S-box table.
  EXPECT_EQ(Aes128::sbox(0x00), 0x63);
  EXPECT_EQ(Aes128::sbox(0x01), 0x7c);
  EXPECT_EQ(Aes128::sbox(0x53), 0xed);
  EXPECT_EQ(Aes128::sbox(0xff), 0x16);
  EXPECT_EQ(Aes128::sbox(0x9a), 0xb8);
}

TEST(Aes128, InverseSboxInvertsSbox) {
  for (int i = 0; i < 256; ++i) {
    const auto x = static_cast<std::uint8_t>(i);
    EXPECT_EQ(Aes128::inv_sbox(Aes128::sbox(x)), x);
    EXPECT_EQ(Aes128::sbox(Aes128::inv_sbox(x)), x);
  }
}

TEST(Aes128, EncryptDecryptRoundTripRandomBlocks) {
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    Aes128::Key key{};
    Aes128::Block pt{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u64());
    const Aes128 aes(key);
    EXPECT_EQ(aes.decrypt_block(aes.encrypt_block(pt)), pt);
  }
}

TEST(Aes128, DifferentKeysGiveDifferentCiphertexts) {
  const Aes128 a(key_from_hex("00000000000000000000000000000000"));
  const Aes128 b(key_from_hex("00000000000000000000000000000001"));
  const Aes128::Block pt{};
  EXPECT_NE(a.encrypt_block(pt), b.encrypt_block(pt));
}

TEST(Aes128, EncryptionIsDeterministic) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Aes128::Block pt = block_from_hex("00000000000000000000000000000000");
  EXPECT_EQ(aes.encrypt_block(pt), aes.encrypt_block(pt));
}

TEST(Aes128, InPlaceSpanEncryption) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  auto buf = block_from_hex("00112233445566778899aabbccddeeff");
  aes.encrypt_block(std::span<const std::uint8_t, 16>{buf},
                    std::span<std::uint8_t, 16>{buf});
  EXPECT_EQ(to_hex(buf), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// RAII guard restoring the default AES dispatch after a forced-backend
// test, even on assertion failure.
struct BackendGuard {
  ~BackendGuard() {
    aes_backend::force_aesni(aes_backend::aesni_supported());
  }
};

TEST(Aes128Backend, ForceScalarAlwaysWorks) {
  BackendGuard guard;
  EXPECT_TRUE(aes_backend::force_aesni(false));
  EXPECT_FALSE(aes_backend::aesni_active());
  EXPECT_STREQ(aes_backend::active_name(), "scalar");
  if (aes_backend::aesni_supported()) {
    EXPECT_TRUE(aes_backend::force_aesni(true));
    EXPECT_STREQ(aes_backend::active_name(), "aesni");
  } else {
    EXPECT_FALSE(aes_backend::force_aesni(true));
    EXPECT_FALSE(aes_backend::aesni_active());
  }
}

// The FIPS-197 KAT must hold on BOTH backends — the AES-NI path is the
// same permutation, not an approximation.
TEST(Aes128Backend, Fips197KatOnEveryBackend) {
  BackendGuard guard;
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto pt = block_from_hex("00112233445566778899aabbccddeeff");
  ASSERT_TRUE(aes_backend::force_aesni(false));
  EXPECT_EQ(to_hex(aes.encrypt_block(pt)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
  if (aes_backend::aesni_supported()) {
    ASSERT_TRUE(aes_backend::force_aesni(true));
    EXPECT_EQ(to_hex(aes.encrypt_block(pt)),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
  }
}

// encrypt_blocks == per-block encrypt_block for every count that
// exercises the 8-wide main loop, its tail, and the empty call — on
// every available backend, and identically across backends.
TEST(Aes128Backend, EncryptBlocksMatchesPerBlockOnAllBackends) {
  BackendGuard guard;
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  CtrDrbg filler(99, 0);
  for (const std::size_t nblocks : {0u, 1u, 2u, 7u, 8u, 9u, 16u, 19u}) {
    std::vector<std::uint8_t> in(nblocks * 16);
    filler.fill(in.data(), in.size());
    // Per-block reference on the scalar path.
    ASSERT_TRUE(aes_backend::force_aesni(false));
    std::vector<std::uint8_t> reference(nblocks * 16);
    for (std::size_t b = 0; b < nblocks; ++b) {
      Aes128::Block one{};
      std::copy_n(in.begin() + static_cast<std::ptrdiff_t>(16 * b), 16,
                  one.begin());
      const auto ct = aes.encrypt_block(one);
      std::copy(ct.begin(), ct.end(),
                reference.begin() + static_cast<std::ptrdiff_t>(16 * b));
    }
    std::vector<std::uint8_t> out(nblocks * 16, 0xEE);
    aes.encrypt_blocks(in.data(), out.data(), nblocks);
    EXPECT_EQ(out, reference) << "scalar, nblocks=" << nblocks;
    if (aes_backend::aesni_supported()) {
      ASSERT_TRUE(aes_backend::force_aesni(true));
      std::fill(out.begin(), out.end(), 0xEE);
      aes.encrypt_blocks(in.data(), out.data(), nblocks);
      EXPECT_EQ(out, reference) << "aesni, nblocks=" << nblocks;
    }
  }
}

TEST(Aes128Backend, EncryptBlocksInPlace) {
  BackendGuard guard;
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  std::vector<std::uint8_t> buf(9 * 16, 0x42);
  std::vector<std::uint8_t> expected(buf);
  aes.encrypt_blocks(expected.data(), expected.data(), 0);  // no-op
  EXPECT_EQ(expected, buf);
  aes.encrypt_blocks(buf.data(), buf.data(), 9);
  std::vector<std::uint8_t> copy(9 * 16, 0x42);
  std::vector<std::uint8_t> out(9 * 16);
  aes.encrypt_blocks(copy.data(), out.data(), 9);
  EXPECT_EQ(buf, out);
}

}  // namespace
}  // namespace mpciot::crypto
