#include "crypto/bigint.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "crypto/prng.hpp"

namespace mpciot::crypto {
namespace {

TEST(BigInt, ZeroProperties) {
  const BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_u64(), 0u);
  EXPECT_EQ(z.to_decimal_string(), "0");
  EXPECT_EQ(z.to_hex_string(), "0");
}

TEST(BigInt, FromU64RoundTrip) {
  for (std::uint64_t v : {1ull, 255ull, 0x100000000ull, ~0ull}) {
    EXPECT_EQ(BigInt{v}.to_u64(), v);
  }
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt{1}, BigInt{2});
  EXPECT_LT(BigInt{0xFFFFFFFFull}, BigInt{0x100000000ull});
  EXPECT_EQ(BigInt{7}, BigInt{7});
  EXPECT_GE(BigInt{9}, BigInt{9});
  EXPECT_GT(BigInt::from_hex("10000000000000000"), BigInt{~0ull});
}

TEST(BigInt, AdditionWithCarryChains) {
  const BigInt a = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((a + BigInt{1}).to_hex_string(),
            "100000000000000000000000000000000");
}

TEST(BigInt, SubtractionExact) {
  const BigInt a = BigInt::from_hex("100000000000000000000000000000000");
  EXPECT_EQ((a - BigInt{1}).to_hex_string(),
            "ffffffffffffffffffffffffffffffff");
}

TEST(BigInt, SubtractionUnderflowViolatesContract) {
  EXPECT_THROW(BigInt{1} - BigInt{2}, ContractViolation);
}

TEST(BigInt, MultiplicationKnownValue) {
  const BigInt a = BigInt::from_string("123456789012345678901234567890");
  const BigInt b = BigInt::from_string("987654321098765432109876543210");
  EXPECT_EQ((a * b).to_decimal_string(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigInt, ShiftsInverse) {
  const BigInt a = BigInt::from_hex("deadbeefcafebabe1234567890abcdef");
  for (std::size_t s : {1u, 7u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(((a << s) >> s), a) << "shift " << s;
  }
}

TEST(BigInt, ShiftRightDropsBits) {
  EXPECT_EQ((BigInt{0xFF} >> 4).to_u64(), 0xFu);
  EXPECT_TRUE((BigInt{1} >> 1).is_zero());
}

TEST(BigInt, DivisionByZeroViolatesContract) {
  EXPECT_THROW(BigInt{1} / BigInt{}, ContractViolation);
}

TEST(BigInt, DivModKnownValues) {
  EXPECT_EQ((BigInt{100} / BigInt{7}).to_u64(), 14u);
  EXPECT_EQ((BigInt{100} % BigInt{7}).to_u64(), 2u);
  EXPECT_EQ((BigInt{5} / BigInt{10}).to_u64(), 0u);
  EXPECT_EQ((BigInt{5} % BigInt{10}).to_u64(), 5u);
}

TEST(BigInt, DivModAddBackCase) {
  // Exercise Knuth D with divisors whose top limb forces the add-back
  // correction path: v = B^2/2-ish patterns.
  const BigInt num = BigInt::from_hex("7fffffff800000010000000000000000");
  const BigInt den = BigInt::from_hex("800000008000000200000005");
  const BigInt q = num / den;
  const BigInt r = num % den;
  EXPECT_EQ(q * den + r, num);
  EXPECT_LT(r, den);
}

TEST(BigInt, StringRoundTrips) {
  const char* decimals[] = {
      "0", "1", "4294967296", "18446744073709551616",
      "340282366920938463463374607431768211455",
      "99999999999999999999999999999999999999999999"};
  for (const char* d : decimals) {
    EXPECT_EQ(BigInt::from_string(d).to_decimal_string(), d);
  }
  EXPECT_EQ(BigInt::from_string("0xdeadBEEF").to_u64(), 0xDEADBEEFull);
}

TEST(BigInt, InvalidStringsViolateContract) {
  EXPECT_THROW(BigInt::from_string(""), ContractViolation);
  EXPECT_THROW(BigInt::from_string("12a"), ContractViolation);
  EXPECT_THROW(BigInt::from_hex("xyz"), ContractViolation);
}

TEST(BigInt, PowmodSmallKnown) {
  EXPECT_EQ(BigInt::powmod(BigInt{2}, BigInt{10}, BigInt{1000}).to_u64(),
            24u);  // 1024 mod 1000
  EXPECT_EQ(BigInt::powmod(BigInt{3}, BigInt{0}, BigInt{7}).to_u64(), 1u);
  EXPECT_TRUE(BigInt::powmod(BigInt{3}, BigInt{5}, BigInt{1}).is_zero());
}

TEST(BigInt, PowmodFermat) {
  // 2^(p-1) mod p == 1 for prime p = 2^61 - 1.
  const BigInt p{(std::uint64_t{1} << 61) - 1};
  EXPECT_EQ(BigInt::powmod(BigInt{2}, p - BigInt{1}, p).to_u64(), 1u);
}

TEST(BigInt, GcdLcm) {
  EXPECT_EQ(BigInt::gcd(BigInt{12}, BigInt{18}).to_u64(), 6u);
  EXPECT_EQ(BigInt::gcd(BigInt{17}, BigInt{5}).to_u64(), 1u);
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{9}).to_u64(), 9u);
  EXPECT_EQ(BigInt::lcm(BigInt{4}, BigInt{6}).to_u64(), 12u);
  EXPECT_TRUE(BigInt::lcm(BigInt{0}, BigInt{5}).is_zero());
}

TEST(BigInt, ModinvKnownAndInvalid) {
  // 3 * 5 = 15 == 1 mod 7 -> inv(3, 7) = 5.
  EXPECT_EQ(BigInt::modinv(BigInt{3}, BigInt{7}).to_u64(), 5u);
  // gcd(4, 8) != 1 -> no inverse.
  EXPECT_TRUE(BigInt::modinv(BigInt{4}, BigInt{8}).is_zero());
}

TEST(BigInt, ModinvRandomizedProperty) {
  Xoshiro256 rng(3);
  const BigInt m = BigInt::from_string("1000000007");  // prime
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt{1 + rng.next_below(1000000006ull)};
    const BigInt inv = BigInt::modinv(a, m);
    ASSERT_FALSE(inv.is_zero());
    EXPECT_EQ(BigInt::mulmod(a, inv, m).to_u64(), 1u);
  }
}

TEST(BigInt, RandomBitsHasExactWidth) {
  Xoshiro256 rng(11);
  for (std::size_t bits : {1u, 8u, 31u, 32u, 33u, 64u, 127u, 256u}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(BigInt::random_bits(bits, rng).bit_length(), bits);
    }
  }
}

TEST(BigInt, ProbablePrimeKnownValues) {
  Xoshiro256 rng(13);
  EXPECT_TRUE(BigInt::is_probable_prime(BigInt{2}, 10, rng));
  EXPECT_TRUE(BigInt::is_probable_prime(BigInt{65537}, 10, rng));
  EXPECT_TRUE(BigInt::is_probable_prime(
      BigInt::from_string("170141183460469231731687303715884105727"), 10,
      rng));  // 2^127 - 1 (Mersenne prime)
  EXPECT_FALSE(BigInt::is_probable_prime(BigInt{561}, 10, rng));
  EXPECT_FALSE(BigInt::is_probable_prime(
      BigInt::from_string("170141183460469231731687303715884105725"), 10,
      rng));
}

TEST(BigInt, RandomPrimeIsPrimeAndRightWidth) {
  Xoshiro256 rng(17);
  const BigInt p = BigInt::random_prime(64, rng, 16);
  EXPECT_EQ(p.bit_length(), 64u);
  EXPECT_TRUE(BigInt::is_probable_prime(p, 24, rng));
}

// Property sweep: divmod reconstruction across widths.
class BigIntDivModProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(BigIntDivModProperty, QuotientTimesDivisorPlusRemainder) {
  const auto [num_bits, den_bits] = GetParam();
  Xoshiro256 rng(num_bits * 1000 + den_bits);
  for (int i = 0; i < 25; ++i) {
    const BigInt num = BigInt::random_bits(num_bits, rng);
    const BigInt den = BigInt::random_bits(den_bits, rng);
    const BigInt q = num / den;
    const BigInt r = num % den;
    EXPECT_EQ(q * den + r, num);
    EXPECT_LT(r, den);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, BigIntDivModProperty,
    ::testing::Values(std::make_tuple(64u, 32u), std::make_tuple(128u, 64u),
                      std::make_tuple(256u, 96u), std::make_tuple(256u, 256u),
                      std::make_tuple(512u, 130u), std::make_tuple(96u, 33u),
                      std::make_tuple(1024u, 512u)));

TEST(BigInt, MulmodAgreesWithNaive64) {
  Xoshiro256 rng(21);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = rng.next_below(1u << 30);
    const std::uint64_t b = rng.next_below(1u << 30);
    const std::uint64_t m = 1 + rng.next_below(1u << 30);
    EXPECT_EQ(BigInt::mulmod(BigInt{a}, BigInt{b}, BigInt{m}).to_u64(),
              (a * b) % m);
  }
}

}  // namespace
}  // namespace mpciot::crypto
