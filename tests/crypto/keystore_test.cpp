#include "crypto/keystore.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/assert.hpp"

namespace mpciot::crypto {
namespace {

TEST(KeyStore, PairwiseKeyIsSymmetric) {
  const KeyStore ks(1234, 10);
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = 0; b < 10; ++b) {
      if (a == b) continue;
      EXPECT_EQ(ks.pairwise_key(a, b), ks.pairwise_key(b, a));
    }
  }
}

TEST(KeyStore, PairwiseKeysAreDistinctAcrossPairs) {
  const KeyStore ks(1234, 12);
  std::set<Aes128::Key> keys;
  for (NodeId a = 0; a < 12; ++a) {
    for (NodeId b = a + 1; b < 12; ++b) {
      keys.insert(ks.pairwise_key(a, b));
    }
  }
  EXPECT_EQ(keys.size(), 12u * 11u / 2u);
}

TEST(KeyStore, SelfPairViolatesContract) {
  const KeyStore ks(1, 4);
  EXPECT_THROW(ks.pairwise_key(2, 2), ContractViolation);
}

TEST(KeyStore, OutOfRangeViolatesContract) {
  const KeyStore ks(1, 4);
  EXPECT_THROW(ks.pairwise_key(0, 4), ContractViolation);
  EXPECT_THROW(ks.node_key(4), ContractViolation);
}

TEST(KeyStore, NodeKeysDistinctFromPairwiseAndEachOther) {
  const KeyStore ks(55, 6);
  std::set<Aes128::Key> keys;
  for (NodeId n = 0; n < 6; ++n) keys.insert(ks.node_key(n));
  EXPECT_EQ(keys.size(), 6u);
  keys.insert(ks.pairwise_key(0, 1));
  EXPECT_EQ(keys.size(), 7u);
  keys.insert(ks.group_key());
  EXPECT_EQ(keys.size(), 8u);
}

TEST(KeyStore, DifferentDeploymentSeedsGiveDifferentKeys) {
  const KeyStore a(1, 4);
  const KeyStore b(2, 4);
  EXPECT_NE(a.pairwise_key(0, 1), b.pairwise_key(0, 1));
  EXPECT_NE(a.group_key(), b.group_key());
}

TEST(KeyStore, SameSeedReproducesKeys) {
  const KeyStore a(77, 4);
  const KeyStore b(77, 4);
  EXPECT_EQ(a.pairwise_key(1, 3), b.pairwise_key(1, 3));
  EXPECT_EQ(a.node_key(2), b.node_key(2));
  EXPECT_EQ(a.group_key(), b.group_key());
}

TEST(KeyStore, RequiresAtLeastTwoNodes) {
  EXPECT_THROW(KeyStore(1, 1), ContractViolation);
}

}  // namespace
}  // namespace mpciot::crypto
