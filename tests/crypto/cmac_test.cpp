#include "crypto/cmac.hpp"

#include <gtest/gtest.h>

#include "common/hex.hpp"

namespace mpciot::crypto {
namespace {

Aes128::Key rfc_key() {
  const auto bytes = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128::Key key{};
  std::copy(bytes.begin(), bytes.end(), key.begin());
  return key;
}

// RFC 4493 test vectors (AES-CMAC with the FIPS example key).
TEST(Cmac, Rfc4493EmptyMessage) {
  const Cmac mac(rfc_key());
  EXPECT_EQ(to_hex(mac.compute({})), "bb1d6929e95937287fa37d129b756746");
}

TEST(Cmac, Rfc4493Length16) {
  const Cmac mac(rfc_key());
  const auto msg = from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(to_hex(mac.compute(msg)), "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST(Cmac, Rfc4493Length40) {
  const Cmac mac(rfc_key());
  const auto msg = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411");
  EXPECT_EQ(to_hex(mac.compute(msg)), "dfa66747de9ae63030ca32611497c827");
}

TEST(Cmac, Rfc4493Length64) {
  const Cmac mac(rfc_key());
  const auto msg = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  EXPECT_EQ(to_hex(mac.compute(msg)), "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST(Cmac, TagChangesWithSingleBitFlip) {
  const Cmac mac(rfc_key());
  auto msg = from_hex("6bc1bee22e409f96e93d7e117393172a");
  const auto tag1 = mac.compute(msg);
  msg[0] ^= 0x01;
  const auto tag2 = mac.compute(msg);
  EXPECT_FALSE(Cmac::verify(tag1, tag2));
}

TEST(Cmac, TagChangesWithKey) {
  const Cmac mac1(rfc_key());
  Aes128::Key other = rfc_key();
  other[15] ^= 0xFF;
  const Cmac mac2(other);
  const auto msg = from_hex("00112233");
  EXPECT_FALSE(Cmac::verify(mac1.compute(msg), mac2.compute(msg)));
}

TEST(Cmac, VerifyAcceptsEqualTags) {
  const Cmac mac(rfc_key());
  const auto msg = from_hex("deadbeef");
  EXPECT_TRUE(Cmac::verify(mac.compute(msg), mac.compute(msg)));
}

TEST(Cmac, DistinctLengthsNearBlockBoundary) {
  // Tags for messages of length 15, 16 and 17 must all differ (the
  // complete-block/padding paths diverge here).
  const Cmac mac(rfc_key());
  const std::vector<std::uint8_t> m15(15, 0xAA);
  const std::vector<std::uint8_t> m16(16, 0xAA);
  const std::vector<std::uint8_t> m17(17, 0xAA);
  const auto t15 = mac.compute(m15);
  const auto t16 = mac.compute(m16);
  const auto t17 = mac.compute(m17);
  EXPECT_FALSE(Cmac::verify(t15, t16));
  EXPECT_FALSE(Cmac::verify(t16, t17));
  EXPECT_FALSE(Cmac::verify(t15, t17));
}

}  // namespace
}  // namespace mpciot::crypto
