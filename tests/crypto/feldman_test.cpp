// Feldman VSS commitments: group sanity against externally computed
// vectors, then derive_seed-keyed property sweeps over the laws the
// protocol's cheater detection stands on — every honest share verifies,
// every single-field tamper (share value, evaluation point, commitment
// coefficient) is caught, and commitments combine homomorphically so
// aggregated point-sums verify against the product commitment.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/shamir.hpp"
#include "crypto/feldman.hpp"
#include "crypto/prng.hpp"
#include "field/fp61.hpp"
#include "field/polynomial.hpp"

namespace mpciot::crypto::feldman {
namespace {

using field::Fp61;
using field::Polynomial;

constexpr std::uint64_t kBase = 0x46454C44ull;  // "FELD"

constexpr GroupElement kIdentity{0, 1};

Polynomial random_poly(Fp61 secret, std::size_t degree, Xoshiro256& rng) {
  return Polynomial::random_with_secret(secret, degree,
                                        [&] { return rng.next_fp61(); });
}

TEST(FeldmanGroup, GeneratorHasOrderExactlyP) {
  const GroupElement g = generator();
  EXPECT_NE(g, kIdentity);
  EXPECT_TRUE(in_group(g));
  EXPECT_EQ(pow(g, Fp61::kModulus), kIdentity);
  // Order p is prime, so any power g^e with e != 0 mod p is not 1.
  EXPECT_NE(pow(g, 1), kIdentity);
  EXPECT_NE(pow(g, Fp61::kModulus - 1), kIdentity);
}

TEST(FeldmanGroup, MatchesExternallyComputedVectors) {
  // Computed independently with arbitrary-precision integers:
  // q = 73786976294838206446 * (2^61 - 1) + 1, g = 2^h mod q.
  const GroupElement c0{0x38a2f0aa4e699d2bull, 0x285085a83d2d50d2ull};
  const GroupElement c1{0x57cc13be910c9b62ull, 0x02d84138efcabf56ull};
  EXPECT_EQ(power_of_g(Fp61{5}), c0);
  EXPECT_EQ(power_of_g(Fp61{7}), c1);
  const GroupElement g26{0x1190f8167701526eull, 0x22df8742177fa6f4ull};
  EXPECT_EQ(power_of_g(Fp61{26}), g26);
  // The commitment identity for P(x) = 5 + 7x at x = 3: P(3) = 26.
  EXPECT_EQ(mul(c0, pow(c1, 3)), g26);
}

TEST(FeldmanGroup, ExponentLawsHoldOnRandomInputs) {
  constexpr int kCases = 600;
  for (int c = 0; c < kCases; ++c) {
    Xoshiro256 rng(derive_seed(kBase, 1, c));
    const Fp61 a = rng.next_fp61();
    const Fp61 b = rng.next_fp61();
    const GroupElement ga = power_of_g(a);
    const GroupElement gb = power_of_g(b);
    EXPECT_TRUE(in_group(ga));
    // g^a * g^b == g^{a+b} (exponents add in Fp61: the group has order p).
    EXPECT_EQ(mul(ga, gb), power_of_g(a + b)) << "case " << c;
    EXPECT_EQ(mul(ga, gb), mul(gb, ga)) << "case " << c;
    // (g^a)^e == g^{a*e mod p}.
    const std::uint64_t e = rng.next_below(1u << 20);
    EXPECT_EQ(pow(ga, e), power_of_g(a * Fp61{e})) << "case " << c;
  }
}

TEST(FeldmanProperty, EveryHonestShareVerifies) {
  constexpr int kCases = 800;
  for (int c = 0; c < kCases; ++c) {
    Xoshiro256 rng(derive_seed(kBase, 2, c));
    const std::size_t degree = 1 + rng.next_below(12);
    const Polynomial poly = random_poly(rng.next_fp61(), degree, rng);
    const Commitment com = commit(poly);
    ASSERT_EQ(com.elements.size(), degree + 1);
    // A random holder subset out of a sparse id universe.
    const std::size_t holders = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < holders; ++i) {
      const NodeId holder =
          static_cast<NodeId>(rng.next_below(1000));
      const Fp61 x = core::public_point(holder);
      EXPECT_TRUE(verify_share(com, x, poly.evaluate(x)))
          << "case " << c << " holder " << holder;
    }
  }
}

TEST(FeldmanProperty, TamperedShareValueIsDetected) {
  constexpr int kCases = 800;
  for (int c = 0; c < kCases; ++c) {
    Xoshiro256 rng(derive_seed(kBase, 3, c));
    const std::size_t degree = 1 + rng.next_below(10);
    const Polynomial poly = random_poly(rng.next_fp61(), degree, rng);
    const Commitment com = commit(poly);
    const Fp61 x = core::public_point(
        static_cast<NodeId>(rng.next_below(500)));
    // Any nonzero additive offset moves the share off the polynomial.
    const Fp61 delta{1 + rng.next_below(Fp61::kModulus - 1)};
    EXPECT_FALSE(verify_share(com, x, poly.evaluate(x) + delta))
        << "case " << c;
  }
}

TEST(FeldmanProperty, ShareAtWrongIndexIsDetected) {
  constexpr int kCases = 600;
  for (int c = 0; c < kCases; ++c) {
    Xoshiro256 rng(derive_seed(kBase, 4, c));
    const std::size_t degree = 1 + rng.next_below(10);
    const Polynomial poly = random_poly(rng.next_fp61(), degree, rng);
    const Commitment com = commit(poly);
    const NodeId holder =
        static_cast<NodeId>(rng.next_below(500));
    const NodeId other =
        static_cast<NodeId>(501 + rng.next_below(500));
    // Replaying holder A's share as holder B's fails B's check unless the
    // polynomial takes the same value at both points — excluded below.
    const Fp61 xa = core::public_point(holder);
    const Fp61 xb = core::public_point(other);
    if (poly.evaluate(xa) == poly.evaluate(xb)) continue;
    EXPECT_FALSE(verify_share(com, xb, poly.evaluate(xa))) << "case " << c;
  }
}

TEST(FeldmanProperty, TamperedCommitmentCoefficientIsDetected) {
  constexpr int kCases = 600;
  for (int c = 0; c < kCases; ++c) {
    Xoshiro256 rng(derive_seed(kBase, 5, c));
    const std::size_t degree = 1 + rng.next_below(10);
    const Polynomial poly = random_poly(rng.next_fp61(), degree, rng);
    Commitment com = commit(poly);
    const Fp61 x = core::public_point(
        static_cast<NodeId>(rng.next_below(500)));
    const Fp61 share = poly.evaluate(x);
    ASSERT_TRUE(verify_share(com, x, share));
    // Multiply one coefficient commitment by g^d (d != 0): the product
    // side moves by g^{d * x^j} != 1, so verification must fail.
    const std::size_t j = rng.next_below(com.elements.size());
    const Fp61 d{1 + rng.next_below(Fp61::kModulus - 1)};
    com.elements[j] = mul(com.elements[j], power_of_g(d));
    EXPECT_FALSE(verify_share(com, x, share)) << "case " << c << " j " << j;
  }
}

TEST(FeldmanProperty, CombinedCommitmentVerifiesAggregatedSums) {
  constexpr int kCases = 250;
  for (int c = 0; c < kCases; ++c) {
    Xoshiro256 rng(derive_seed(kBase, 6, c));
    const std::size_t degree = 1 + rng.next_below(8);
    const std::size_t dealers = 2 + rng.next_below(6);
    std::vector<Polynomial> polys;
    std::vector<Commitment> coms;
    for (std::size_t d = 0; d < dealers; ++d) {
      polys.push_back(random_poly(rng.next_fp61(), degree, rng));
      coms.push_back(commit(polys.back()));
    }
    std::vector<const Commitment*> parts;
    for (const Commitment& com : coms) parts.push_back(&com);
    const Commitment sum_com = combine(parts);

    const Fp61 x = core::public_point(
        static_cast<NodeId>(rng.next_below(200)));
    Fp61 sum;
    for (const Polynomial& poly : polys) sum += poly.evaluate(x);
    EXPECT_TRUE(verify_share(sum_com, x, sum)) << "case " << c;
    EXPECT_FALSE(verify_share(sum_com, x, sum + Fp61{1})) << "case " << c;
  }
}

TEST(FeldmanWire, SerializeRoundTripsAndSizesMatch) {
  for (int c = 0; c < 50; ++c) {
    Xoshiro256 rng(derive_seed(kBase, 7, c));
    const std::size_t degree = 1 + rng.next_below(10);
    const Commitment com = commit(random_poly(rng.next_fp61(), degree, rng));
    EXPECT_EQ(com.wire_size(), (degree + 1) * Commitment::kElementBytes);
    const std::vector<std::uint8_t> wire = serialize(com);
    ASSERT_EQ(wire.size(), com.wire_size());
    EXPECT_EQ(deserialize(wire.data(), wire.size()), com);
  }
}

TEST(FeldmanWire, DeserializeRejectsMalformedInput) {
  Xoshiro256 rng(derive_seed(kBase, 8, 0));
  const Commitment com = commit(random_poly(Fp61{42}, 3, rng));
  std::vector<std::uint8_t> wire = serialize(com);

  // Truncation off the element boundary.
  EXPECT_TRUE(deserialize(wire.data(), wire.size() - 1).elements.empty());
  EXPECT_TRUE(deserialize(wire.data(), 0).elements.empty());

  // Element outside the subgroup: the value 2 generates a different
  // subgroup of Z_q^* (2^p != 1 mod q — verified externally).
  std::vector<std::uint8_t> bad = wire;
  for (std::size_t i = 0; i < Commitment::kElementBytes; ++i) bad[i] = 0;
  bad[Commitment::kElementBytes - 1] = 2;
  EXPECT_TRUE(deserialize(bad.data(), bad.size()).elements.empty());

  // The zero word is never a group element.
  bad[Commitment::kElementBytes - 1] = 0;
  EXPECT_TRUE(deserialize(bad.data(), bad.size()).elements.empty());

  // Out-of-range value >= q (all-ones is > q since q < 2^127).
  std::vector<std::uint8_t> big = wire;
  for (std::size_t i = 0; i < Commitment::kElementBytes; ++i) big[i] = 0xFF;
  EXPECT_TRUE(deserialize(big.data(), big.size()).elements.empty());
}

TEST(FeldmanShamir, VerifiesDealerSharesEndToEnd) {
  // The exact arrangement the protocol uses: a ShamirDealer's polynomial
  // committed with commit(), shares checked at public_point(holder).
  for (int c = 0; c < 40; ++c) {
    CtrDrbg drbg(derive_seed(kBase, 9, c));
    const Fp61 secret{static_cast<std::uint64_t>(c) * 1000003ull};
    const std::size_t degree = 1 + static_cast<std::size_t>(c % 9);
    const core::ShamirDealer dealer(secret, degree, drbg);
    const Commitment com = commit(dealer.polynomial());
    for (NodeId h = 0; h < 20; ++h) {
      const core::Share s = dealer.share_for(h);
      EXPECT_TRUE(verify_share(com, core::public_point(h), s.value));
    }
    // The constant-term commitment is g^secret: binding to the secret.
    EXPECT_EQ(com.elements.front(), power_of_g(secret));
  }
}

}  // namespace
}  // namespace mpciot::crypto::feldman
