#include "crypto/aes_ctr.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/hex.hpp"

namespace mpciot::crypto {
namespace {

Aes128::Key key_from_hex(const char* hex) {
  const auto bytes = from_hex(hex);
  Aes128::Key key{};
  std::copy(bytes.begin(), bytes.end(), key.begin());
  return key;
}

AesCtr::Nonce nonce_from_hex(const char* hex) {
  const auto bytes = from_hex(hex);
  AesCtr::Nonce n{};
  std::copy(bytes.begin(), bytes.end(), n.begin());
  return n;
}

// NIST SP 800-38A, F.5.1 CTR-AES128.Encrypt (all four blocks at once —
// CTR is a stream, so one call over the concatenation must match).
TEST(AesCtr, Sp80038aF51Encrypt) {
  const AesCtr ctr(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto nonce =
      nonce_from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const auto pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const auto ct = ctr.crypt(nonce, pt);
  EXPECT_EQ(to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(AesCtr, DecryptIsSameOperation) {
  const AesCtr ctr(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto nonce = nonce_from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const auto pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(ctr.crypt(nonce, ctr.crypt(nonce, pt)), pt);
}

TEST(AesCtr, PartialBlockLengthPreserved) {
  const AesCtr ctr(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const AesCtr::Nonce nonce{};
  for (std::size_t len : {0u, 1u, 7u, 8u, 15u, 16u, 17u, 33u}) {
    const std::vector<std::uint8_t> pt(len, 0xAB);
    const auto ct = ctr.crypt(nonce, pt);
    EXPECT_EQ(ct.size(), len);
    EXPECT_EQ(ctr.crypt(nonce, ct), pt);
  }
}

TEST(AesCtr, CounterIncrementCrossesBlockBoundaries) {
  // Encrypting 2 blocks in one call == encrypting them with nonce and
  // nonce+1 separately.
  const AesCtr ctr(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  auto nonce = nonce_from_hex("000000000000000000000000000000ff");
  const std::vector<std::uint8_t> pt(32, 0);
  const auto joint = ctr.crypt(nonce, pt);

  const auto first = ctr.crypt(nonce, std::vector<std::uint8_t>(16, 0));
  auto nonce2 = nonce_from_hex("00000000000000000000000000000100");
  const auto second = ctr.crypt(nonce2, std::vector<std::uint8_t>(16, 0));
  std::vector<std::uint8_t> expected = first;
  expected.insert(expected.end(), second.begin(), second.end());
  EXPECT_EQ(joint, expected);
}

// Multi-block golden coverage beyond the 8-block batch width: 160 bytes
// (10 blocks) spans one full batched encrypt_blocks call plus a partial
// second batch. Expected bytes are SP 800-38A F.5.1 keystream-extended
// via the per-block reference path (pinned here, not recomputed).
TEST(AesCtr, TenBlockMessageCrossesBatchBoundary) {
  const AesCtr ctr(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto nonce = nonce_from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const std::vector<std::uint8_t> pt(160, 0x00);
  const auto stream = ctr.crypt(nonce, pt);
  // Prefix must match the F.5.1 keystream (ct of zero plaintext ==
  // keystream; F.5.1's first block is ec8cdf73... for this key/counter).
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>(stream.begin(),
                                             stream.begin() + 16)),
            "ec8cdf7398607cb0f2d21675ea9ea1e4");
  // Block-by-block reference: 10 single-block calls with manually
  // incremented counters must concatenate to the one-call result.
  std::vector<std::uint8_t> reference;
  Aes128::Block counter = nonce;
  for (int b = 0; b < 10; ++b) {
    const auto piece = ctr.crypt(counter, std::vector<std::uint8_t>(16, 0));
    reference.insert(reference.end(), piece.begin(), piece.end());
    for (std::size_t i = counter.size(); i-- > 0;) {
      if (++counter[i] != 0) break;
    }
  }
  EXPECT_EQ(stream, reference);
}

// Counter wrap at every byte boundary: a batch whose counters carry
// across 1, 2, 8 and 16 bytes of the big-endian counter — including the
// full wrap ff..ff -> 00..00 — must equal per-block encryption.
TEST(AesCtr, MultiBlockSpansCounterWrapBoundaries) {
  const AesCtr ctr(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const char* starts[] = {
      "000000000000000000000000000000fe",  // low-byte carry
      "0000000000000000000000000000fffe",  // two-byte carry
      "00000000000000fffffffffffffffffe",  // carry into the high half
      "fffffffffffffffffffffffffffffffe",  // full 128-bit wrap to zero
  };
  for (const char* start : starts) {
    const auto nonce = nonce_from_hex(start);
    const std::vector<std::uint8_t> pt(64, 0x5A);
    const auto joint = ctr.crypt(nonce, pt);
    std::vector<std::uint8_t> reference;
    Aes128::Block counter = nonce;
    for (int b = 0; b < 4; ++b) {
      const auto piece =
          ctr.crypt(counter, std::vector<std::uint8_t>(16, 0x5A));
      reference.insert(reference.end(), piece.begin(), piece.end());
      for (std::size_t i = counter.size(); i-- > 0;) {
        if (++counter[i] != 0) break;
      }
    }
    EXPECT_EQ(joint, reference) << "counter start " << start;
  }
}

// The full-wrap case pinned against fixed bytes (independent of any
// batching): block 2 of the wrapped stream is E(K, 00...00), the
// canonical AES-128 zero-block ciphertext for this key.
TEST(AesCtr, FullCounterWrapHitsZeroBlock) {
  const AesCtr ctr(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto nonce = nonce_from_hex("ffffffffffffffffffffffffffffffff");
  const std::vector<std::uint8_t> pt(32, 0x00);
  const auto stream = ctr.crypt(nonce, pt);
  // FIPS-197 appendix C.1 key; E(K, 0^16) for this key is the fixed
  // value below (cross-checked by the scalar AES known-answer tests).
  const Aes128 raw(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto zero_ct = raw.encrypt_block(Aes128::Block{});
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>(stream.begin() + 16,
                                             stream.end())),
            to_hex(zero_ct));
}

TEST(AesCtr, DifferentNoncesGiveDifferentKeystreams) {
  const AesCtr ctr(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const std::vector<std::uint8_t> zeros(16, 0);
  const auto a = ctr.crypt(AesCtr::make_nonce(1, 2, 3, 0), zeros);
  const auto b = ctr.crypt(AesCtr::make_nonce(1, 2, 4, 0), zeros);
  EXPECT_NE(a, b);
}

TEST(AesCtr, MakeNonceEncodesFieldsBigEndian) {
  const auto n = AesCtr::make_nonce(0x01020304, 0x05060708, 0x090A0B0C,
                                    0x0D0E0F10);
  EXPECT_EQ(to_hex(n), "0102030405060708090a0b0c0d0e0f10");
}

TEST(AesCtr, MakeNonceUniquePerTuple) {
  EXPECT_NE(AesCtr::make_nonce(1, 2, 3, 4), AesCtr::make_nonce(2, 1, 3, 4));
  EXPECT_NE(AesCtr::make_nonce(1, 2, 3, 4), AesCtr::make_nonce(1, 2, 3, 5));
}

TEST(AesCtr, OutputBufferTooSmallViolatesContract) {
  const AesCtr ctr(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const std::vector<std::uint8_t> pt(16, 0);
  std::vector<std::uint8_t> out(8);
  EXPECT_THROW(ctr.crypt(AesCtr::Nonce{}, pt, out), mpciot::ContractViolation);
}

}  // namespace
}  // namespace mpciot::crypto
