#include "crypto/aes_ctr.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/hex.hpp"

namespace mpciot::crypto {
namespace {

Aes128::Key key_from_hex(const char* hex) {
  const auto bytes = from_hex(hex);
  Aes128::Key key{};
  std::copy(bytes.begin(), bytes.end(), key.begin());
  return key;
}

AesCtr::Nonce nonce_from_hex(const char* hex) {
  const auto bytes = from_hex(hex);
  AesCtr::Nonce n{};
  std::copy(bytes.begin(), bytes.end(), n.begin());
  return n;
}

// NIST SP 800-38A, F.5.1 CTR-AES128.Encrypt (all four blocks at once —
// CTR is a stream, so one call over the concatenation must match).
TEST(AesCtr, Sp80038aF51Encrypt) {
  const AesCtr ctr(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto nonce =
      nonce_from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const auto pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const auto ct = ctr.crypt(nonce, pt);
  EXPECT_EQ(to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(AesCtr, DecryptIsSameOperation) {
  const AesCtr ctr(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto nonce = nonce_from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const auto pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(ctr.crypt(nonce, ctr.crypt(nonce, pt)), pt);
}

TEST(AesCtr, PartialBlockLengthPreserved) {
  const AesCtr ctr(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const AesCtr::Nonce nonce{};
  for (std::size_t len : {0u, 1u, 7u, 8u, 15u, 16u, 17u, 33u}) {
    const std::vector<std::uint8_t> pt(len, 0xAB);
    const auto ct = ctr.crypt(nonce, pt);
    EXPECT_EQ(ct.size(), len);
    EXPECT_EQ(ctr.crypt(nonce, ct), pt);
  }
}

TEST(AesCtr, CounterIncrementCrossesBlockBoundaries) {
  // Encrypting 2 blocks in one call == encrypting them with nonce and
  // nonce+1 separately.
  const AesCtr ctr(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  auto nonce = nonce_from_hex("000000000000000000000000000000ff");
  const std::vector<std::uint8_t> pt(32, 0);
  const auto joint = ctr.crypt(nonce, pt);

  const auto first = ctr.crypt(nonce, std::vector<std::uint8_t>(16, 0));
  auto nonce2 = nonce_from_hex("00000000000000000000000000000100");
  const auto second = ctr.crypt(nonce2, std::vector<std::uint8_t>(16, 0));
  std::vector<std::uint8_t> expected = first;
  expected.insert(expected.end(), second.begin(), second.end());
  EXPECT_EQ(joint, expected);
}

TEST(AesCtr, DifferentNoncesGiveDifferentKeystreams) {
  const AesCtr ctr(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const std::vector<std::uint8_t> zeros(16, 0);
  const auto a = ctr.crypt(AesCtr::make_nonce(1, 2, 3, 0), zeros);
  const auto b = ctr.crypt(AesCtr::make_nonce(1, 2, 4, 0), zeros);
  EXPECT_NE(a, b);
}

TEST(AesCtr, MakeNonceEncodesFieldsBigEndian) {
  const auto n = AesCtr::make_nonce(0x01020304, 0x05060708, 0x090A0B0C,
                                    0x0D0E0F10);
  EXPECT_EQ(to_hex(n), "0102030405060708090a0b0c0d0e0f10");
}

TEST(AesCtr, MakeNonceUniquePerTuple) {
  EXPECT_NE(AesCtr::make_nonce(1, 2, 3, 4), AesCtr::make_nonce(2, 1, 3, 4));
  EXPECT_NE(AesCtr::make_nonce(1, 2, 3, 4), AesCtr::make_nonce(1, 2, 3, 5));
}

TEST(AesCtr, OutputBufferTooSmallViolatesContract) {
  const AesCtr ctr(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const std::vector<std::uint8_t> pt(16, 0);
  std::vector<std::uint8_t> out(8);
  EXPECT_THROW(ctr.crypt(AesCtr::Nonce{}, pt, out), mpciot::ContractViolation);
}

}  // namespace
}  // namespace mpciot::crypto
