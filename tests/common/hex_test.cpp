#include "common/hex.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace mpciot {
namespace {

TEST(Hex, EncodeEmpty) { EXPECT_EQ(to_hex({}), ""); }

TEST(Hex, EncodeBytes) {
  const std::vector<std::uint8_t> bytes{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x7F};
  EXPECT_EQ(to_hex(bytes), "deadbeef007f");
}

TEST(Hex, DecodeLowercase) {
  EXPECT_EQ(from_hex("deadbeef"),
            (std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(Hex, DecodeUppercaseAndMixed) {
  EXPECT_EQ(from_hex("DeAdBEef"),
            (std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(Hex, DecodeWithWhitespaceBetweenBytes) {
  EXPECT_EQ(from_hex("de ad  be\tef"),
            (std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(Hex, DecodeEmpty) { EXPECT_TRUE(from_hex("").empty()); }

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), ContractViolation);
}

TEST(Hex, RejectsInvalidCharacter) {
  EXPECT_THROW(from_hex("zz"), ContractViolation);
}

TEST(Hex, RejectsWhitespaceInsidePair) {
  EXPECT_THROW(from_hex("d e"), ContractViolation);
}

TEST(Hex, RoundTripAllByteValues) {
  std::vector<std::uint8_t> all(256);
  for (int i = 0; i < 256; ++i) all[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(from_hex(to_hex(all)), all);
}

}  // namespace
}  // namespace mpciot
