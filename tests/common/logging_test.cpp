#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace mpciot {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Warn); }
};

TEST_F(LoggingTest, DefaultLevelIsWarn) {
  EXPECT_EQ(log_level(), LogLevel::Warn);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST_F(LoggingTest, MacroDoesNotEvaluateBelowThreshold) {
  set_log_level(LogLevel::Off);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  MPCIOT_LOG_DEBUG(expensive());
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, MacroEvaluatesAtOrAboveThreshold) {
  set_log_level(LogLevel::Debug);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  MPCIOT_LOG_ERROR(expensive());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace mpciot
