#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mpciot {
namespace {

TEST(Contracts, RequirePassesOnTrue) {
  EXPECT_NO_THROW(MPCIOT_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Contracts, RequireThrowsOnFalse) {
  EXPECT_THROW(MPCIOT_REQUIRE(false, "always fails"), ContractViolation);
}

TEST(Contracts, EnsureThrowsOnFalse) {
  EXPECT_THROW(MPCIOT_ENSURE(false, "postcondition"), ContractViolation);
}

TEST(Contracts, MessageContainsExpressionAndText) {
  try {
    MPCIOT_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contracts, EnsureMessageSaysPostcondition) {
  try {
    MPCIOT_ENSURE(false, "x");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
}

TEST(Contracts, IsLogicError) {
  EXPECT_THROW(MPCIOT_REQUIRE(false, ""), std::logic_error);
}

}  // namespace
}  // namespace mpciot
