#include "ct/glossy.hpp"

#include <gtest/gtest.h>

#include "net/testbeds.hpp"

namespace mpciot::ct {
namespace {

net::Topology make_line(std::size_t n = 5) {
  net::RadioParams radio;
  radio.shadowing_sigma_db = 0.0;
  radio.tx_defer_prob = 0.0;
  std::vector<net::Position> pos;
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back(net::Position{static_cast<double>(i) * 14.0, 0.0});
  }
  return net::Topology(std::move(pos), radio, 1);
}

TEST(Glossy, FloodCoversLine) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(1);
  GlossyConfig cfg;
  cfg.initiator = 0;
  cfg.ntx = 4;
  const GlossyResult res = run_glossy(topo, cfg, rng);
  EXPECT_EQ(res.coverage(), 1.0);
  EXPECT_EQ(res.first_rx_slot[0], MiniCastResult::kOwnEntry);
}

TEST(Glossy, PropagationRespectsHopDistance) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(2);
  GlossyConfig cfg;
  cfg.initiator = 0;
  cfg.ntx = 5;
  const GlossyResult res = run_glossy(topo, cfg, rng);
  for (NodeId n = 1; n < 5; ++n) {
    ASSERT_NE(res.first_rx_slot[n], MiniCastResult::kNever);
    EXPECT_GE(res.first_rx_slot[n], static_cast<std::int32_t>(n - 1));
  }
}

TEST(Glossy, LowNtxLimitsReach) {
  // NTX=1 on a 7-hop line: each node transmits once; flood still walks
  // the line but a *lossy* line with weak links would truncate. Use a
  // spacing where adjacent links are ~70%.
  net::RadioParams radio;
  radio.shadowing_sigma_db = 0.0;
  radio.tx_defer_prob = 0.0;
  std::vector<net::Position> pos;
  for (int i = 0; i < 8; ++i) pos.push_back({i * 21.5, 0.0});
  const net::Topology topo(std::move(pos), radio, 1);
  double cov1 = 0;
  double cov6 = 0;
  for (int t = 0; t < 30; ++t) {
    crypto::Xoshiro256 rng(200 + t);
    GlossyConfig cfg;
    cfg.initiator = 0;
    cfg.ntx = 1;
    cov1 += run_glossy(topo, cfg, rng).coverage();
    crypto::Xoshiro256 rng2(200 + t);
    cfg.ntx = 6;
    cov6 += run_glossy(topo, cfg, rng2).coverage();
  }
  EXPECT_GT(cov6, cov1 + 1.0);  // summed over 30 trials
}

TEST(Glossy, RadioOnBoundedByRoundDuration) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(3);
  GlossyConfig cfg;
  cfg.initiator = 2;
  cfg.ntx = 3;
  const GlossyResult res = run_glossy(topo, cfg, rng);
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_LE(res.radio_on_us[n], res.duration_us);
  }
  EXPECT_GT(res.duration_us, 0);
}

TEST(Glossy, CoverageOfTrivialNetworkIsComplete) {
  net::RadioParams radio;
  radio.shadowing_sigma_db = 0.0;
  radio.tx_defer_prob = 0.0;
  const net::Topology topo({net::Position{0, 0}, net::Position{5, 0}}, radio,
                           1);
  crypto::Xoshiro256 rng(4);
  GlossyConfig cfg;
  cfg.initiator = 1;
  cfg.ntx = 2;
  const GlossyResult res = run_glossy(topo, cfg, rng);
  EXPECT_EQ(res.coverage(), 1.0);
}

}  // namespace
}  // namespace mpciot::ct
