// The channel dimension of the CT layer: configs carry a channel, the
// engines echo it into their results, and ChannelTimeline lays
// same-channel rounds out sequentially while distinct channels overlap.
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "ct/glossy.hpp"
#include "ct/minicast.hpp"
#include "ct/transport.hpp"
#include "net/testbeds.hpp"

namespace mpciot::ct {
namespace {

net::Topology make_grid9() {
  net::RadioParams radio;
  radio.shadowing_sigma_db = 0.0;
  std::vector<net::Position> pos;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      pos.push_back(net::Position{c * 12.0, r * 12.0});
    }
  }
  return net::Topology(std::move(pos), radio, 7);
}

TEST(Channel, MiniCastEchoesChannel) {
  const net::Topology topo = make_grid9();
  MiniCastConfig cfg;
  cfg.initiator = 0;
  cfg.channel = 11;
  crypto::Xoshiro256 rng(1);
  const MiniCastResult res =
      run_minicast(topo, {ChainEntry{0}}, cfg, rng);
  EXPECT_EQ(res.channel, 11u);
}

TEST(Channel, GlossyEchoesChannel) {
  const net::Topology topo = make_grid9();
  GlossyConfig cfg;
  cfg.initiator = 0;
  cfg.channel = 5;
  crypto::Xoshiro256 rng(1);
  EXPECT_EQ(run_glossy(topo, cfg, rng).channel, 5u);
}

TEST(Channel, EveryTransportEchoesChannel) {
  const net::Topology topo = make_grid9();
  for (const std::string& name : transport_names()) {
    const auto transport = make_transport(name);
    GlossyConfig fcfg;
    fcfg.initiator = 0;
    fcfg.channel = 3;
    crypto::Xoshiro256 rng(2);
    EXPECT_EQ(transport->flood(topo, fcfg, rng).channel, 3u) << name;

    MiniCastConfig ccfg;
    ccfg.initiator = 0;
    ccfg.channel = 9;
    crypto::Xoshiro256 rng2(3);
    EXPECT_EQ(transport
                  ->chain_round(topo, {ChainEntry{0}, ChainEntry{4}}, ccfg,
                                rng2)
                  .channel,
              9u)
        << name;
  }
}

TEST(Channel, ChannelDoesNotPerturbTheRound) {
  // The channel is layout metadata: the same rng must produce the same
  // round regardless of the channel number.
  const net::Topology topo = make_grid9();
  MiniCastConfig a;
  a.initiator = 0;
  MiniCastConfig b = a;
  b.channel = 7;
  crypto::Xoshiro256 rng_a(9);
  crypto::Xoshiro256 rng_b(9);
  const MiniCastResult ra =
      run_minicast(topo, {ChainEntry{0}, ChainEntry{8}}, a, rng_a);
  const MiniCastResult rb =
      run_minicast(topo, {ChainEntry{0}, ChainEntry{8}}, b, rng_b);
  EXPECT_EQ(ra.rx_slot, rb.rx_slot);
  EXPECT_EQ(ra.duration_us, rb.duration_us);
  EXPECT_EQ(ra.radio_on_us, rb.radio_on_us);
}

TEST(ChannelTimeline, SameChannelSerializes) {
  ChannelTimeline timeline(1);
  EXPECT_EQ(timeline.book(0, 100), 0);
  EXPECT_EQ(timeline.book(0, 50), 100);
  EXPECT_EQ(timeline.channel_end_us(0), 150);
  EXPECT_EQ(timeline.end_us(), 150);
}

TEST(ChannelTimeline, DistinctChannelsOverlap) {
  ChannelTimeline timeline(3);
  EXPECT_EQ(timeline.book(0, 100), 0);
  EXPECT_EQ(timeline.book(1, 70), 0);
  EXPECT_EQ(timeline.book(2, 30), 0);
  EXPECT_EQ(timeline.book(2, 10), 30);
  EXPECT_EQ(timeline.end_us(), 100);
}

TEST(ChannelTimeline, EarliestConstraintDelaysBooking) {
  ChannelTimeline timeline(2);
  EXPECT_EQ(timeline.book(0, 10, /*earliest_us=*/500), 500);
  EXPECT_EQ(timeline.book(0, 10, /*earliest_us=*/100), 510);
  EXPECT_EQ(timeline.channel_end_us(1), 0);
}

TEST(ChannelTimeline, ZeroDurationBookingsTakeNoTime) {
  // A zero-duration op books the current end and moves nothing: later
  // bookings (same or other channel) must be unaffected, including a
  // zero-duration op under an `earliest` constraint beyond the end.
  ChannelTimeline timeline(2);
  EXPECT_EQ(timeline.book(0, 0), 0);
  EXPECT_EQ(timeline.channel_end_us(0), 0);
  EXPECT_EQ(timeline.book(0, 100), 0);
  EXPECT_EQ(timeline.book(0, 0), 100);
  EXPECT_EQ(timeline.channel_end_us(0), 100);
  EXPECT_EQ(timeline.book(0, 0, /*earliest_us=*/250), 250);
  EXPECT_EQ(timeline.channel_end_us(0), 250);
  EXPECT_EQ(timeline.book(1, 0), 0);
  EXPECT_EQ(timeline.channel_end_us(1), 0);
  EXPECT_EQ(timeline.end_us(), 250);
}

TEST(ChannelTimeline, SameChannelInterleaveKeepsBookingOrder) {
  // Bookings alternating across channels: each channel's sequence must
  // stay contiguous and ordered exactly as booked, with the other
  // channel's bookings invisible to it.
  ChannelTimeline timeline(3);
  SimTime c0 = 0;
  SimTime c1 = 0;
  for (int i = 1; i <= 6; ++i) {
    const std::uint16_t ch = i % 2;
    const SimTime dur = 10 * i;
    const SimTime start = timeline.book(ch, dur);
    SimTime& cursor = ch == 0 ? c0 : c1;
    EXPECT_EQ(start, cursor) << "booking " << i;
    cursor += dur;
  }
  EXPECT_EQ(timeline.channel_end_us(0), 20 + 40 + 60);
  EXPECT_EQ(timeline.channel_end_us(1), 10 + 30 + 50);
  EXPECT_EQ(timeline.channel_end_us(2), 0);  // untouched channel stays empty
  EXPECT_EQ(timeline.end_us(), 120);

  // An earliest-constraint on one channel must not leak into the other.
  EXPECT_EQ(timeline.book(0, 5, /*earliest_us=*/500), 500);
  EXPECT_EQ(timeline.channel_end_us(1), 90);
  EXPECT_EQ(timeline.end_us(), 505);
}

TEST(ChannelTimeline, RejectsBadArguments) {
  ChannelTimeline timeline(2);
  EXPECT_THROW(timeline.book(2, 10), ContractViolation);
  EXPECT_THROW(timeline.channel_end_us(5), ContractViolation);
  EXPECT_THROW(ChannelTimeline(0), ContractViolation);
}

}  // namespace
}  // namespace mpciot::ct
