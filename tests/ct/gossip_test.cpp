// The lossy slotted-gossip engine behind the "gossip" transport.
#include "ct/gossip.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "net/testbeds.hpp"

namespace mpciot::ct {
namespace {

net::Topology make_line(std::size_t n = 5, double spacing = 14.0) {
  net::RadioParams radio;
  radio.shadowing_sigma_db = 0.0;
  std::vector<net::Position> pos;
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back(net::Position{static_cast<double>(i) * spacing, 0.0});
  }
  return net::Topology(std::move(pos), radio, 1);
}

TEST(Gossip, ValidatesConfig) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(1);
  MiniCastConfig cfg;
  EXPECT_THROW(run_gossip(topo, {}, cfg, GossipParams{}, rng),
               ContractViolation);
  cfg.ntx = 0;
  EXPECT_THROW(run_gossip(topo, {ChainEntry{0}}, cfg, GossipParams{}, rng),
               ContractViolation);
  cfg.ntx = 3;
  GossipParams bad;
  bad.tx_prob = 0.0;
  EXPECT_THROW(run_gossip(topo, {ChainEntry{0}}, cfg, bad, rng),
               ContractViolation);
  EXPECT_THROW(run_gossip(topo, {ChainEntry{77}}, cfg, GossipParams{}, rng),
               ContractViolation);
  cfg.disabled = {1};  // wrong size
  EXPECT_THROW(run_gossip(topo, {ChainEntry{0}}, cfg, GossipParams{}, rng),
               ContractViolation);
}

TEST(Gossip, DisseminatesAlongTheLine) {
  // Relayed push gossip with a healthy budget delivers the single entry
  // end to end in (nearly) every round.
  const net::Topology topo = make_line();
  int full = 0;
  for (int t = 0; t < 20; ++t) {
    crypto::Xoshiro256 rng(100 + t);
    MiniCastConfig cfg;
    cfg.ntx = 6;
    const MiniCastResult res =
        run_gossip(topo, {ChainEntry{0}}, cfg, GossipParams{}, rng);
    if (res.delivery_ratio() == 1.0) ++full;
  }
  EXPECT_GE(full, 18);
}

TEST(Gossip, DeterministicPerSeed) {
  const net::Topology topo = net::testbeds::random_uniform(10, 60, 60, 4);
  std::vector<ChainEntry> entries;
  for (NodeId i = 0; i < topo.size(); ++i) entries.push_back(ChainEntry{i});
  MiniCastConfig cfg;
  cfg.ntx = 3;
  crypto::Xoshiro256 rng1(11);
  crypto::Xoshiro256 rng2(11);
  const MiniCastResult a = run_gossip(topo, entries, cfg, GossipParams{}, rng1);
  const MiniCastResult b = run_gossip(topo, entries, cfg, GossipParams{}, rng2);
  EXPECT_EQ(a.rx_slot, b.rx_slot);
  EXPECT_EQ(a.tx_count, b.tx_count);
  EXPECT_EQ(a.radio_on_us, b.radio_on_us);
  EXPECT_EQ(a.chain_slots_used, b.chain_slots_used);
}

TEST(Gossip, DisabledNodeNeverParticipates) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(6);
  MiniCastConfig cfg;
  cfg.ntx = 6;
  cfg.disabled = {0, 0, 1, 0, 0};  // node 2 dead: line is cut
  const MiniCastResult res =
      run_gossip(topo, {ChainEntry{0}, ChainEntry{4}}, cfg, GossipParams{},
                 rng);
  EXPECT_EQ(res.tx_count[2], 0u);
  EXPECT_EQ(res.radio_on_us[2], 0);
  EXPECT_FALSE(res.node_has(3, 0));
  EXPECT_FALSE(res.node_has(4, 0));
}

TEST(Gossip, BudgetCapsTransmissions) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(9);
  std::vector<ChainEntry> entries{ChainEntry{0}, ChainEntry{1}};
  MiniCastConfig cfg;
  cfg.ntx = 2;
  const MiniCastResult res =
      run_gossip(topo, entries, cfg, GossipParams{}, rng);
  for (NodeId n = 0; n < topo.size(); ++n) {
    // At most ntx transmissions per entry the node ever held.
    EXPECT_LE(res.tx_count[n], 2u * entries.size()) << "node " << n;
  }
}

TEST(Gossip, EarlyOffLeavesOnlyAfterBudgetSpent) {
  // Under kEarlyOff a done node keeps relaying until its per-entry send
  // budget is gone — so origins always inject their data.
  const net::Topology topo = make_line();
  MiniCastConfig cfg;
  cfg.ntx = 2;
  cfg.radio_policy = RadioPolicy::kEarlyOff;
  // Relay-style predicate: everyone is "done" immediately.
  cfg.done = [](NodeId, BitView) { return true; };
  int delivered = 0;
  for (int t = 0; t < 20; ++t) {
    crypto::Xoshiro256 rng(50 + t);
    const MiniCastResult res =
        run_gossip(topo, {ChainEntry{0}}, cfg, GossipParams{}, rng);
    if (res.node_has(1, 0)) ++delivered;
  }
  // The origin's neighbour hears the entry in most rounds despite the
  // instant done predicate.
  EXPECT_GE(delivered, 15);
}

}  // namespace
}  // namespace mpciot::ct
