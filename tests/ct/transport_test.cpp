// The transport seam: registry contract, and the equivalences that pin
// the seam to the concrete engines — the default transport must be
// bit-identical to calling run_glossy/run_minicast directly, and the
// single-entry MiniCast chain must equal a Glossy flood.
#include "ct/transport.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "ct/glossy.hpp"
#include "net/testbeds.hpp"

namespace mpciot::ct {
namespace {

net::Topology make_line(std::size_t n = 5, double spacing = 14.0) {
  net::RadioParams radio;
  radio.shadowing_sigma_db = 0.0;  // near-perfect adjacent links
  std::vector<net::Position> pos;
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back(net::Position{static_cast<double>(i) * spacing, 0.0});
  }
  return net::Topology(std::move(pos), radio, 1);
}

TEST(Transport, RegistryNamesRoundTrip) {
  const std::vector<std::string> names = transport_names();
  ASSERT_EQ(names.size(), 4u);
  for (const std::string& name : names) {
    const std::unique_ptr<Transport> t = make_transport(name);
    ASSERT_NE(t, nullptr) << name;
    EXPECT_EQ(t->name(), name);
  }
  EXPECT_THROW(make_transport("carrier-pigeon"), ContractViolation);
}

TEST(Transport, DefaultIsMiniCast) {
  EXPECT_STREQ(minicast_transport().name(), "minicast");
}

TEST(Transport, MiniCastFloodEqualsRunGlossy) {
  const net::Topology topo = net::testbeds::random_uniform(12, 70, 70, 5);
  GlossyConfig cfg;
  cfg.initiator = topo.center_node();
  cfg.ntx = 3;

  crypto::Xoshiro256 rng1(42);
  const GlossyResult direct = run_glossy(topo, cfg, rng1);
  crypto::Xoshiro256 rng2(42);
  const GlossyResult seam = minicast_transport().flood(topo, cfg, rng2);

  EXPECT_EQ(direct.first_rx_slot, seam.first_rx_slot);
  EXPECT_EQ(direct.tx_count, seam.tx_count);
  EXPECT_EQ(direct.radio_on_us, seam.radio_on_us);
  EXPECT_EQ(direct.slots_used, seam.slots_used);
  EXPECT_EQ(direct.duration_us, seam.duration_us);
}

TEST(Transport, MiniCastChainRoundEqualsRunMiniCast) {
  const net::Topology topo = net::testbeds::random_uniform(12, 70, 70, 5);
  std::vector<ChainEntry> entries;
  for (NodeId i = 0; i < topo.size(); ++i) entries.push_back(ChainEntry{i});
  MiniCastConfig cfg;
  cfg.initiator = topo.center_node();
  cfg.ntx = 4;

  crypto::Xoshiro256 rng1(7);
  const MiniCastResult direct = run_minicast(topo, entries, cfg, rng1);
  crypto::Xoshiro256 rng2(7);
  const MiniCastResult seam =
      minicast_transport().chain_round(topo, entries, cfg, rng2);

  EXPECT_EQ(direct.rx_slot, seam.rx_slot);
  EXPECT_EQ(direct.tx_count, seam.tx_count);
  EXPECT_EQ(direct.done_slot, seam.done_slot);
  EXPECT_EQ(direct.radio_on_us, seam.radio_on_us);
  EXPECT_EQ(direct.chain_slots_used, seam.chain_slots_used);
}

TEST(Transport, SingleEntryMiniCastChainEqualsGlossyFlood) {
  // Glossy is the single-entry special case of the chain engine: for
  // identical seeds the flood and the one-entry chain round must agree
  // on every per-node observable.
  const net::Topology topo = net::testbeds::random_uniform(14, 80, 80, 9);
  const NodeId initiator = topo.center_node();

  GlossyConfig gcfg;
  gcfg.initiator = initiator;
  gcfg.ntx = 3;
  crypto::Xoshiro256 rng1(99);
  const GlossyResult flood = run_glossy(topo, gcfg, rng1);

  MiniCastConfig mcfg;
  mcfg.initiator = initiator;
  mcfg.ntx = 3;
  mcfg.payload_bytes = gcfg.payload_bytes;
  mcfg.max_chain_slots = gcfg.max_slots;
  crypto::Xoshiro256 rng2(99);
  const MiniCastResult chain = minicast_transport().chain_round(
      topo, {ChainEntry{initiator}}, mcfg, rng2);

  ASSERT_EQ(chain.rx_slot.size(), flood.first_rx_slot.size());
  for (NodeId n = 0; n < topo.size(); ++n) {
    EXPECT_EQ(chain.rx_slot[n][0], flood.first_rx_slot[n]) << "node " << n;
  }
  EXPECT_EQ(chain.tx_count, flood.tx_count);
  EXPECT_EQ(chain.radio_on_us, flood.radio_on_us);
  EXPECT_EQ(chain.chain_slots_used, flood.slots_used);
  EXPECT_EQ(chain.duration_us, flood.duration_us);
}

TEST(Transport, GlossyFloodsSingleEntryEqualsGlossy) {
  const net::Topology topo = make_line();
  const std::unique_ptr<Transport> lwb = make_transport("glossy_floods");

  GlossyConfig gcfg;
  gcfg.initiator = 0;
  gcfg.ntx = 3;
  crypto::Xoshiro256 rng1(5);
  const GlossyResult flood = run_glossy(topo, gcfg, rng1);

  MiniCastConfig mcfg;
  mcfg.initiator = 0;
  mcfg.ntx = 3;
  mcfg.payload_bytes = gcfg.payload_bytes;
  mcfg.max_chain_slots = gcfg.max_slots;
  crypto::Xoshiro256 rng2(5);
  const MiniCastResult chain =
      lwb->chain_round(topo, {ChainEntry{0}}, mcfg, rng2);

  for (NodeId n = 0; n < topo.size(); ++n) {
    EXPECT_EQ(chain.rx_slot[n][0], flood.first_rx_slot[n]);
  }
  EXPECT_EQ(chain.duration_us, flood.duration_us);
}

TEST(Transport, GlossyFloodsChainsSequentially) {
  const net::Topology topo = make_line();
  const std::unique_ptr<Transport> lwb = make_transport("glossy_floods");
  std::vector<ChainEntry> entries{ChainEntry{0}, ChainEntry{4}};
  MiniCastConfig cfg;
  cfg.initiator = 0;
  cfg.ntx = 4;
  crypto::Xoshiro256 rng(3);
  const MiniCastResult res = lwb->chain_round(topo, entries, cfg, rng);
  EXPECT_EQ(res.delivery_ratio(), 1.0);
  // Entry 1's flood starts strictly after entry 0's finished: every
  // reception of entry 1 sits at a later cumulative slot than any of
  // entry 0's.
  std::int32_t last_e0 = 0;
  std::int32_t first_e1 = INT32_MAX;
  for (NodeId n = 0; n < topo.size(); ++n) {
    if (res.rx_slot[n][0] >= 0) last_e0 = std::max(last_e0, res.rx_slot[n][0]);
    if (res.rx_slot[n][1] >= 0) {
      first_e1 = std::min(first_e1, res.rx_slot[n][1]);
    }
  }
  EXPECT_GT(first_e1, last_e0);
}

TEST(Transport, UnicastChainRoundHonorsDestinations) {
  const net::Topology topo = make_line();
  const UnicastTransport unicast;
  // Entry 0: point-to-point 0 -> 2; entry 1: broadcast from 4.
  std::vector<ChainEntry> entries{ChainEntry{0, 2}, ChainEntry{4}};
  MiniCastConfig cfg;
  crypto::Xoshiro256 rng(8);
  const MiniCastResult res =
      unicast.chain_round(topo, entries, cfg, rng, nullptr);

  EXPECT_TRUE(res.node_has(2, 0));
  // Point-to-point delivery must not leak the entry to non-destinations.
  EXPECT_FALSE(res.node_has(1, 0) && res.rx_slot[1][0] >= 0);
  EXPECT_EQ(res.rx_slot[3][0], MiniCastResult::kNever);
  // Broadcast entry reaches everyone.
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_TRUE(res.node_has(n, 1)) << "node " << n;
  }
  EXPECT_GT(res.duration_us, 0);
}

TEST(Transport, UnicastNeverRoutesThroughDisabledRelays) {
  // On a line the only good-link path 0 -> 2 crosses node 1: with node 1
  // dead the message must drop, and the dead node must never forward or
  // accrue radio time.
  const net::Topology topo = make_line();
  const UnicastTransport unicast;
  std::vector<ChainEntry> entries{ChainEntry{0, 2}};
  MiniCastConfig cfg;
  cfg.disabled = {0, 1, 0, 0, 0};
  crypto::Xoshiro256 rng(13);
  const MiniCastResult res =
      unicast.chain_round(topo, entries, cfg, rng, nullptr);
  EXPECT_FALSE(res.node_has(2, 0));
  EXPECT_EQ(res.tx_count[1], 0u);
  EXPECT_EQ(res.radio_on_us[1], 0);
}

TEST(Transport, UnicastDeterministicPerSeed) {
  const net::Topology topo = make_line();
  const UnicastTransport unicast;
  std::vector<ChainEntry> entries{ChainEntry{0}, ChainEntry{2, 4}};
  MiniCastConfig cfg;
  crypto::Xoshiro256 rng1(21);
  crypto::Xoshiro256 rng2(21);
  const MiniCastResult a = unicast.chain_round(topo, entries, cfg, rng1,
                                               nullptr);
  const MiniCastResult b = unicast.chain_round(topo, entries, cfg, rng2,
                                               nullptr);
  EXPECT_EQ(a.rx_slot, b.rx_slot);
  EXPECT_EQ(a.radio_on_us, b.radio_on_us);
  EXPECT_EQ(a.duration_us, b.duration_us);
}

}  // namespace
}  // namespace mpciot::ct
