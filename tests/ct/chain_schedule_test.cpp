#include "ct/chain_schedule.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace mpciot::ct {
namespace {

TEST(SharingSchedule, GridLayoutAndOrigins) {
  const SharingSchedule s =
      make_sharing_schedule({10, 20, 30}, {10, 20});
  EXPECT_EQ(s.size(), 6u);
  // Entry (src_idx, dst_idx) origin is the source.
  for (std::size_t src = 0; src < 3; ++src) {
    for (std::size_t dst = 0; dst < 2; ++dst) {
      const std::size_t e = s.entry_index(src, dst);
      ASSERT_LT(e, s.entries.size());
      EXPECT_EQ(s.entries[e].origin, s.sources[src]);
    }
  }
}

TEST(SharingSchedule, IndexIsBijective) {
  const SharingSchedule s =
      make_sharing_schedule({0, 1, 2, 3}, {4, 5, 6});
  std::vector<bool> seen(s.size(), false);
  for (std::size_t src = 0; src < 4; ++src) {
    for (std::size_t dst = 0; dst < 3; ++dst) {
      const std::size_t e = s.entry_index(src, dst);
      EXPECT_FALSE(seen[e]);
      seen[e] = true;
    }
  }
}

TEST(SharingSchedule, NaiveS3SizeIsQuadratic) {
  std::vector<NodeId> nodes;
  for (NodeId i = 0; i < 26; ++i) nodes.push_back(i);
  EXPECT_EQ(make_sharing_schedule(nodes, nodes).size(), 26u * 26u);
}

TEST(SharingSchedule, RejectsEmptyAndDuplicates) {
  EXPECT_THROW(make_sharing_schedule({}, {1}), ContractViolation);
  EXPECT_THROW(make_sharing_schedule({1}, {}), ContractViolation);
  EXPECT_THROW(make_sharing_schedule({1, 1}, {2}), ContractViolation);
  EXPECT_THROW(make_sharing_schedule({1}, {2, 2}), ContractViolation);
}

TEST(ReconstructionSchedule, OneEntryPerHolder) {
  const ReconstructionSchedule r = make_reconstruction_schedule({5, 7, 9});
  EXPECT_EQ(r.size(), 3u);
  for (std::size_t h = 0; h < 3; ++h) {
    EXPECT_EQ(r.entries[r.entry_index(h)].origin, r.holders[h]);
  }
}

TEST(ReconstructionSchedule, RejectsEmptyAndDuplicates) {
  EXPECT_THROW(make_reconstruction_schedule({}), ContractViolation);
  EXPECT_THROW(make_reconstruction_schedule({3, 3}), ContractViolation);
}

}  // namespace
}  // namespace mpciot::ct
