#include "ct/minicast.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "net/testbeds.hpp"

namespace mpciot::ct {
namespace {

net::RadioParams ideal_radio() {
  net::RadioParams radio;
  radio.shadowing_sigma_db = 0.0;
  radio.tx_defer_prob = 0.0;  // deterministic waves for unit tests
  return radio;
}

/// 5-node line, adjacent links near-perfect.
net::Topology make_line(std::size_t n = 5, double spacing = 14.0) {
  std::vector<net::Position> pos;
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back(net::Position{static_cast<double>(i) * spacing, 0.0});
  }
  return net::Topology(std::move(pos), ideal_radio(), 1);
}

TEST(MiniCast, ValidatesConfig) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(1);
  MiniCastConfig cfg;
  EXPECT_THROW(run_minicast(topo, {}, cfg, rng), ContractViolation);
  cfg.initiator = 99;
  EXPECT_THROW(run_minicast(topo, {ChainEntry{0}}, cfg, rng),
               ContractViolation);
  cfg.initiator = 0;
  cfg.ntx = 0;
  EXPECT_THROW(run_minicast(topo, {ChainEntry{0}}, cfg, rng),
               ContractViolation);
  cfg.ntx = 1;
  EXPECT_THROW(run_minicast(topo, {ChainEntry{77}}, cfg, rng),
               ContractViolation);
  cfg.disabled = {1};  // wrong size
  EXPECT_THROW(run_minicast(topo, {ChainEntry{0}}, cfg, rng),
               ContractViolation);
}

TEST(MiniCast, SingleEntryFloodsWholeLine) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(2);
  MiniCastConfig cfg;
  cfg.initiator = 0;
  cfg.ntx = 4;
  const MiniCastResult res =
      run_minicast(topo, {ChainEntry{0}}, cfg, rng);
  EXPECT_EQ(res.rx_slot[0][0], MiniCastResult::kOwnEntry);
  for (NodeId n = 1; n < 5; ++n) {
    EXPECT_TRUE(res.node_has(n, 0)) << "node " << n;
    // Reception slot respects hop distance (can't arrive before the wave).
    EXPECT_GE(res.rx_slot[n][0], static_cast<std::int32_t>(n - 1));
  }
  EXPECT_EQ(res.delivery_ratio(), 1.0);
}

TEST(MiniCast, AllToAllOnLineDelivers) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(3);
  std::vector<ChainEntry> entries;
  for (NodeId n = 0; n < 5; ++n) entries.push_back(ChainEntry{n});
  MiniCastConfig cfg;
  cfg.initiator = 2;
  cfg.ntx = 8;
  cfg.scheduled_owners = {0, 1, 2, 3, 4};
  const MiniCastResult res = run_minicast(topo, entries, cfg, rng);
  EXPECT_EQ(res.delivery_ratio(), 1.0);
  EXPECT_EQ(res.done_ratio(), 1.0);
}

TEST(MiniCast, TxCountNeverExceedsNtx) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(4);
  MiniCastConfig cfg;
  cfg.initiator = 0;
  cfg.ntx = 3;
  const MiniCastResult res =
      run_minicast(topo, {ChainEntry{0}}, cfg, rng);
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_LE(res.tx_count[n], 3u);
  }
}

TEST(MiniCast, CoverageIsMonotoneInNtxOnAverage) {
  // Property: mean delivery at NTX=6 >= mean delivery at NTX=1 on a
  // lossy random topology.
  const net::Topology topo = net::testbeds::random_uniform(12, 70, 70, 5);
  auto mean_delivery = [&](std::uint32_t ntx) {
    double total = 0;
    for (int t = 0; t < 10; ++t) {
      crypto::Xoshiro256 rng(100 + t);
      std::vector<ChainEntry> entries;
      for (NodeId n = 0; n < topo.size(); ++n) entries.push_back(ChainEntry{n});
      MiniCastConfig cfg;
      cfg.initiator = topo.center_node();
      cfg.ntx = ntx;
      total += run_minicast(topo, entries, cfg, rng).delivery_ratio();
    }
    return total / 10;
  };
  EXPECT_GE(mean_delivery(6) + 0.02, mean_delivery(1));
  EXPECT_GT(mean_delivery(6), 0.5);
}

TEST(MiniCast, DisabledNodeNeverParticipates) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(6);
  std::vector<ChainEntry> entries{ChainEntry{0}, ChainEntry{4}};
  MiniCastConfig cfg;
  cfg.initiator = 0;
  cfg.ntx = 6;
  cfg.disabled = {0, 0, 1, 0, 0};  // node 2 dead: line is cut
  cfg.scheduled_owners = {0, 4};
  const MiniCastResult res = run_minicast(topo, entries, cfg, rng);
  EXPECT_EQ(res.tx_count[2], 0u);
  EXPECT_EQ(res.radio_on_us[2], 0);
  // Entry 0 cannot cross the dead node to reach node 3 or 4.
  EXPECT_FALSE(res.node_has(3, 0));
  EXPECT_FALSE(res.node_has(4, 0));
  // But node 1 still gets it.
  EXPECT_TRUE(res.node_has(1, 0));
}

TEST(MiniCast, EarlyOffReducesRadioOn) {
  const net::Topology topo = make_line();
  std::vector<ChainEntry> entries{ChainEntry{0}};
  MiniCastConfig base;
  base.initiator = 0;
  base.ntx = 6;
  base.done = [](NodeId, BitView have) { return have.test(0); };

  crypto::Xoshiro256 rng1(7);
  MiniCastConfig on = base;
  on.radio_policy = RadioPolicy::kUntilQuiescence;
  const MiniCastResult full = run_minicast(topo, entries, on, rng1);

  crypto::Xoshiro256 rng2(7);
  MiniCastConfig off = base;
  off.radio_policy = RadioPolicy::kEarlyOff;
  const MiniCastResult early = run_minicast(topo, entries, off, rng2);

  SimTime full_total = 0;
  SimTime early_total = 0;
  for (NodeId n = 0; n < 5; ++n) {
    full_total += full.radio_on_us[n];
    early_total += early.radio_on_us[n];
  }
  EXPECT_LT(early_total, full_total);
}

TEST(MiniCast, DoneSlotRecordsFirstSatisfaction) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(8);
  MiniCastConfig cfg;
  cfg.initiator = 0;
  cfg.ntx = 5;
  const MiniCastResult res =
      run_minicast(topo, {ChainEntry{0}}, cfg, rng);
  // Initiator owns the entry: done at slot 0 (checked before the round).
  EXPECT_EQ(res.done_slot[0], 0);
  // Last node in the line can only be done at or after its rx slot.
  ASSERT_TRUE(res.node_has(4, 0));
  EXPECT_GE(res.done_slot[4], res.rx_slot[4][0]);
}

TEST(MiniCast, ChainSlotDurationScalesWithEntries) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(9);
  MiniCastConfig cfg;
  cfg.initiator = 0;
  cfg.ntx = 2;
  cfg.payload_bytes = 16;
  const MiniCastResult one =
      run_minicast(topo, {ChainEntry{0}}, cfg, rng);
  const MiniCastResult three = run_minicast(
      topo, {ChainEntry{0}, ChainEntry{0}, ChainEntry{0}}, cfg, rng);
  EXPECT_EQ(three.chain_slot_us, 3 * one.chain_slot_us);
  EXPECT_EQ(one.chain_slot_us,
            topo.radio().subslot_us(16));
}

TEST(MiniCast, DeterministicGivenSameRngSeed) {
  const net::Topology topo = make_line();
  std::vector<ChainEntry> entries{ChainEntry{0}, ChainEntry{2}, ChainEntry{4}};
  MiniCastConfig cfg;
  cfg.initiator = 2;
  cfg.ntx = 4;
  cfg.scheduled_owners = {0, 2, 4};
  crypto::Xoshiro256 rng1(77);
  crypto::Xoshiro256 rng2(77);
  const MiniCastResult a = run_minicast(topo, entries, cfg, rng1);
  const MiniCastResult b = run_minicast(topo, entries, cfg, rng2);
  EXPECT_EQ(a.rx_slot, b.rx_slot);
  EXPECT_EQ(a.tx_count, b.tx_count);
  EXPECT_EQ(a.radio_on_us, b.radio_on_us);
  EXPECT_EQ(a.chain_slots_used, b.chain_slots_used);
}

TEST(MiniCast, MaxChainSlotsCapsRound) {
  const net::Topology topo = make_line();
  crypto::Xoshiro256 rng(10);
  MiniCastConfig cfg;
  cfg.initiator = 0;
  cfg.ntx = 100;
  cfg.max_chain_slots = 3;
  const MiniCastResult res =
      run_minicast(topo, {ChainEntry{0}}, cfg, rng);
  EXPECT_LE(res.chain_slots_used, 3u);
}

TEST(MiniCast, ScheduledOwnerInjectsDespiteDeafness) {
  // Node 4 hangs off the line with a degraded receiver: it rarely hears
  // the wave, but as a scheduled owner it must still get its entry out.
  net::RadioParams radio = ideal_radio();
  std::vector<net::Position> pos;
  for (int i = 0; i < 5; ++i) pos.push_back({i * 14.0, 0.0});
  const net::Topology topo(std::move(pos), radio, 1,
                           {0.0, 0.0, 0.0, 0.0, 9.0});
  // The timeout path is probabilistic; the property is that the entry
  // escapes the deaf owner in (almost) every round, not in a lucky one.
  int escaped = 0;
  for (int t = 0; t < 20; ++t) {
    crypto::Xoshiro256 rng(11 + t);
    std::vector<ChainEntry> entries{ChainEntry{4}};
    MiniCastConfig cfg;
    cfg.initiator = 0;
    cfg.ntx = 6;
    cfg.scheduled_owners = {4};
    const MiniCastResult res = run_minicast(topo, entries, cfg, rng);
    if (res.node_has(3, 0)) ++escaped;
  }
  EXPECT_GE(escaped, 18);
}

}  // namespace
}  // namespace mpciot::ct
